package paropt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"paropt"
	"paropt/internal/engine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/sim"
	"paropt/internal/storage"
)

// smallWorkload generates a catalog/query pair small enough to execute
// in-memory and cross-check against brute-force evaluation.
func smallWorkload(shape query.Shape, n int, seed int64) (*paropt.Catalog, *paropt.Query) {
	return paropt.Generate(paropt.GenConfig{
		Relations: n, Shape: shape,
		MinCard: 50, MaxCard: 400,
		Disks: 4, IndexProb: 0.5, SortedProb: 0.3, Seed: seed,
	})
}

// randomBushyPlan builds a random bushy plan with random methods over the
// query, using only legal joins (cross products via nested loops).
func randomBushyPlan(est *plan.Estimator, q *paropt.Query, rng *rand.Rand) (*plan.Node, error) {
	perm := rng.Perm(len(q.Relations))
	nodes := make([]*plan.Node, len(perm))
	for i, pos := range perm {
		leaf, err := est.Leaf(q.Relations[pos], plan.SeqScan, nil)
		if err != nil {
			return nil, err
		}
		nodes[i] = leaf
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes) - 1)
		method := plan.AllJoinMethods[rng.Intn(3)]
		if len(est.Q.JoinsBetween(nodes[i].Rels, nodes[i+1].Rels)) == 0 {
			method = plan.NestedLoops
		}
		j, err := est.Join(nodes[i], nodes[i+1], method)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes[:i], append([]*plan.Node{j}, nodes[i+2:]...)...)
	}
	return nodes[0], nil
}

// TestIntegrationEveryPlanSameResult is the repository's central semantic
// property: for random workloads and random plans, join-tree execution,
// operator-tree execution and brute-force reference evaluation all agree.
func TestIntegrationEveryPlanSameResult(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, shape := range []query.Shape{query.Chain, query.Star, query.Cycle} {
		for n := 3; n <= 4; n++ {
			cat, q := smallWorkload(shape, n, int64(n)*7+int64(shape))
			db := storage.NewDatabase(cat, 3)
			est := plan.NewEstimator(cat, q)
			e := &engine.Executor{DB: db, Q: q, Parallel: 1}
			ref, err := engine.ReferenceJoin(e)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Fingerprint()
			for trial := 0; trial < 6; trial++ {
				p, err := randomBushyPlan(est, q, rng)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%v/n=%d/trial=%d plan=%s", shape, n, trial, p)
				got, err := e.Execute(p)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if got.Fingerprint() != want {
					t.Fatalf("%s: join-tree result differs from reference (%d vs %d rows)",
						label, got.Len(), ref.Len())
				}
				op, err := optree.Expand(p, est, optree.DefaultExpandOptions())
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				gotOp, err := e.ExecuteOp(op)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if gotOp.Fingerprint() != want {
					t.Fatalf("%s: operator-tree result differs from reference", label)
				}
				// Parallel execution agrees too.
				e.Parallel = 3
				gotPar, err := e.Execute(p)
				e.Parallel = 1
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if gotPar.Fingerprint() != want {
					t.Fatalf("%s: parallel result differs from reference", label)
				}
			}
		}
	}
}

// TestIntegrationOptimizerPlansExecuteCorrectly: every algorithm's chosen
// plan computes the reference result.
func TestIntegrationOptimizerPlansExecuteCorrectly(t *testing.T) {
	cat, q := smallWorkload(query.Star, 4, 21)
	db := storage.NewDatabase(cat, 9)
	e := &engine.Executor{DB: db, Q: q, Parallel: 1}
	ref, err := engine.ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []paropt.Algorithm{
		paropt.PartialOrderDP, paropt.PartialOrderDPBushy, paropt.WorkDP,
		paropt.NaiveRTDP, paropt.TwoPhase, paropt.SimulatedAnnealing,
	} {
		opt, err := paropt.NewOptimizer(cat, q, paropt.Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		p, err := opt.Optimize()
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got, err := opt.Execute(p, db, 2)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got.Fingerprint() != ref.Fingerprint() {
			t.Errorf("%v: optimized plan computes a different result", alg)
		}
	}
}

// TestIntegrationModelSimulatorWorkAgreement: for optimizer plans across
// algorithms, model work and simulated work agree exactly.
func TestIntegrationModelSimulatorWorkAgreement(t *testing.T) {
	cat, q := smallWorkload(query.Chain, 5, 4)
	for _, alg := range []paropt.Algorithm{paropt.PartialOrderDP, paropt.WorkDP} {
		opt, err := paropt.NewOptimizer(cat, q, paropt.Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		p, err := opt.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Simulate(p.Op, opt.Mod)
		if err != nil {
			t.Fatal(err)
		}
		if diff := res.Work - p.Work(); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v: sim work %g != model work %g", alg, res.Work, p.Work())
		}
		if res.RT > p.Work()+1e-9 {
			t.Errorf("%v: simulated RT exceeds total work", alg)
		}
	}
}
