package paropt

import (
	"paropt/internal/catalog"
	"paropt/internal/core"
	"paropt/internal/cost"
	"paropt/internal/engine"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/search"
	"paropt/internal/service"
	"paropt/internal/sim"
	"paropt/internal/storage"
	"paropt/internal/workload"
)

// Schema & statistics (System R style catalog).
type (
	// Catalog holds relations, statistics and indexes.
	Catalog = catalog.Catalog
	// Relation describes a base table.
	Relation = catalog.Relation
	// Column describes one attribute with its NDV statistic.
	Column = catalog.Column
	// Index describes an access path (clustered / covering / placement).
	Index = catalog.Index
)

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return catalog.New() }

// Queries.
type (
	// Query is a Select-Project-Join query.
	Query = query.Query
	// ColumnRef names a relation column.
	ColumnRef = query.ColumnRef
	// JoinPredicate is an equijoin between two relations.
	JoinPredicate = query.JoinPredicate
	// Selection is a single-relation equality filter.
	Selection = query.Selection
	// GenConfig configures random workload generation.
	GenConfig = query.GenConfig
	// Shape is a join-graph topology (Chain, Star, Cycle, Clique).
	Shape = query.Shape
)

// Join-graph shapes for GenConfig.
const (
	Chain  = query.Chain
	Star   = query.Star
	Cycle  = query.Cycle
	Clique = query.Clique
)

// Generate builds a random catalog and query.
func Generate(cfg GenConfig) (*Catalog, *Query) { return query.Generate(cfg) }

// Machine model.
type (
	// MachineConfig sizes the parallel machine.
	MachineConfig = machine.Config
	// Machine is the built resource set.
	Machine = machine.Machine
)

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) *Machine { return machine.New(cfg) }

// Plans and operator trees.
type (
	// PlanNode is a node of an annotated join tree.
	PlanNode = plan.Node
	// JoinMethod annotates join nodes (NestedLoops, SortMerge, HashJoin).
	JoinMethod = plan.JoinMethod
	// Op is an operator-tree node (§4.2).
	Op = optree.Op
	// Estimator derives plan properties from statistics.
	Estimator = plan.Estimator
)

// Join methods.
const (
	NestedLoops = plan.NestedLoops
	SortMerge   = plan.SortMerge
	HashJoin    = plan.HashJoin
)

// NewEstimator builds a property estimator for a validated query.
func NewEstimator(cat *Catalog, q *Query) *Estimator { return plan.NewEstimator(cat, q) }

// Cost model.
type (
	// CostParams are the work-model knobs.
	CostParams = cost.Params
	// ResDescriptor is the §5.2 two-part resource descriptor.
	ResDescriptor = cost.ResDescriptor
	// CostModel prices operator trees on a machine.
	CostModel = cost.Model
)

// DefaultCostParams is the reference parameterization.
func DefaultCostParams() CostParams { return cost.DefaultParams() }

// Search.
type (
	// Metric is a pruning metric (partial order over plans).
	Metric = search.Metric
	// Bound is a §2 extra-work bound.
	Bound = search.Bound
	// ThroughputDegradation bounds Wp ≤ K·Wo.
	ThroughputDegradation = search.ThroughputDegradation
	// CostBenefit bounds extra work per unit of response time saved.
	CostBenefit = search.CostBenefit
	// SearchStats are the Table 1 counters.
	SearchStats = search.Stats
	// LayerRecord is one DP layer's telemetry (time, candidates kept,
	// prunes by reason).
	LayerRecord = search.LayerRecord
	// SearchProfile aggregates a search's per-layer records.
	SearchProfile = search.SearchProfile
)

// Optimizer facade.
type (
	// Config assembles an optimization session.
	Config = core.Config
	// Optimizer optimizes one query.
	Optimizer = core.Optimizer
	// Plan is an optimized plan with costs and provenance.
	Plan = core.Plan
	// Algorithm selects the search strategy.
	Algorithm = core.Algorithm
	// Provenance explains why a plan was chosen: the winner's cost
	// breakdown plus rejected frontier alternatives with loss reasons
	// (Optimizer.PlanProvenance, `paropt -why`, /explain?why=1).
	Provenance = core.Provenance
)

// Algorithms (the rows of Table 1).
const (
	PartialOrderDP       = core.PartialOrderDP
	PartialOrderDPBushy  = core.PartialOrderDPBushy
	WorkDP               = core.WorkDP
	NaiveRTDP            = core.NaiveRTDP
	BruteForceLeftDeep   = core.BruteForceLeftDeep
	BruteForceBushy      = core.BruteForceBushy
	TwoPhase             = core.TwoPhase
	IterativeImprovement = core.IterativeImprovement
	SimulatedAnnealing   = core.SimulatedAnnealing
)

// NewOptimizer validates the query and assembles a session.
func NewOptimizer(cat *Catalog, q *Query, cfg Config) (*Optimizer, error) {
	return core.NewOptimizer(cat, q, cfg)
}

// Serving layer (the optimizer as a daemon).
type (
	// Service is the long-running optimizer daemon: fingerprint-keyed plan
	// cache over cover sets, bounded worker pool, singleflight dedup, and
	// /metrics. Expose it over HTTP with Service.Handler (cmd/paroptd).
	Service = service.Service
	// ServiceConfig sizes the daemon.
	ServiceConfig = service.Config
	// OptimizeRequest is one serving request (query text + §2 bound knobs).
	OptimizeRequest = service.OptimizeRequest
	// OptimizeResponse is the served plan with cache provenance.
	OptimizeResponse = service.OptimizeResponse
	// CoverSet is a reusable search result: baseline + root Pareto
	// frontier, re-filterable under any §2 bound.
	CoverSet = core.CoverSet
	// SearchLogEntry is one recorded search with per-layer telemetry
	// (Service.SearchLog, /debug/search).
	SearchLogEntry = service.SearchLogEntry
	// PlanChange is one plan-change audit entry (Service.PlanChanges,
	// /debug/planlog).
	PlanChange = service.PlanChange
)

// NewService builds and starts an optimizer daemon.
func NewService(cfg ServiceConfig) (*Service, error) { return service.New(cfg) }

// Fingerprint canonicalizes a query (relation order, predicate order and
// side, literals stripped) and hashes it — the plan-cache identity of the
// query template.
func Fingerprint(q *Query) string { return query.Fingerprint(q) }

// CatalogFingerprint hashes everything the optimizer reads from a catalog;
// it versions plan-cache entries so statistics refreshes invalidate them.
func CatalogFingerprint(cat *Catalog) string { return cat.Fingerprint() }

// Execution substrates.
type (
	// Database holds generated tables.
	Database = storage.Database
	// Executor runs plans with real goroutine parallelism.
	Executor = engine.Executor
	// Resultset is a materialized query result.
	Resultset = engine.Resultset
	// SimResult is a simulated execution outcome.
	SimResult = sim.Result
)

// NewDatabase generates data for every relation of the catalog.
func NewDatabase(cat *Catalog, seed int64) *Database { return storage.NewDatabase(cat, seed) }

// Simulate executes an operator tree on the machine simulator.
func Simulate(op *Op, m *CostModel) (*SimResult, error) { return sim.Simulate(op, m) }

// Workloads.

// PortfolioWorkload is the paper's §1 decision-support scenario: a trades
// fact table star-joined to stocks, sectors, accounts and dates.
func PortfolioWorkload(disks int) (*Catalog, *Query) { return workload.Portfolio(disks) }

// PortfolioWorkloadSmall is the same schema scaled down ~1000× for in-memory
// execution.
func PortfolioWorkloadSmall(disks int) (*Catalog, *Query) { return workload.PortfolioSmall(disks) }

// TPCHWorkload is a TPC-H-shaped decision-support schema at the given scale
// with three SPJ queries modeled on Q3, Q5 and Q10's join cores.
func TPCHWorkload(disks int, scale float64) (*Catalog, []*Query) {
	return workload.TPCHLike(disks, scale)
}

// DistortNDVs returns a catalog copy with every NDV statistic multiplied by
// factor — the input to misestimation-sensitivity experiments.
func DistortNDVs(cat *Catalog, factor float64) *Catalog { return core.DistortNDVs(cat, factor) }

// MisestimationRegret optimizes under distorted statistics and re-prices
// the chosen plan under the truth, returning (chosen RT, optimal RT).
func MisestimationRegret(cat *Catalog, q *Query, cfg Config, factor float64) (chosen, optimum float64, err error) {
	return core.MisestimationRegret(cat, q, cfg, factor)
}
