#!/usr/bin/env bash
# Replay smoke test: start paroptd with a query log, serve a small workload,
# then check the workload gauges and replay the log with `paropt replay
# -strict` — any plan change or error fails the run. Exercises the full
# record → profile → replay loop the workload-analytics layer provides.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'kill $pid 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/paroptd" ./cmd/paroptd
go build -o "$tmp/paropt" ./cmd/paropt

addr=localhost:7171
"$tmp/paroptd" -addr "$addr" -workload portfolio -query-log "$tmp/q.jsonl" -log none &
pid=$!

for i in $(seq 1 50); do
  kill -0 $pid 2>/dev/null || { echo "replay_smoke: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "replay_smoke: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

# ~12 queries over a few portfolio templates so the profiler sees more than
# one fingerprint and the cache sees both misses and hits.
queries=(
  "SELECT * FROM trades, stocks WHERE trades.stock_id = stocks.stock_id"
  "SELECT * FROM trades, stocks, sectors WHERE trades.stock_id = stocks.stock_id AND stocks.sector_id = sectors.sector_id"
  "SELECT * FROM trades, stocks, sectors WHERE trades.stock_id = stocks.stock_id AND stocks.sector_id = sectors.sector_id AND sectors.sector_id = 3"
  "SELECT * FROM trades, accounts WHERE trades.account_id = accounts.account_id"
)
for round in 1 2 3; do
  for q in "${queries[@]}"; do
    curl -fsS -X POST "http://$addr/optimize" \
      -H 'Content-Type: application/json' \
      -d "{\"query\": \"$q\"}" >/dev/null
  done
done

metrics=$(curl -fsS "http://$addr/metrics")
fp=$(echo "$metrics" | awk '$1 == "paroptd_workload_fingerprints" {print $2}')
recs=$(echo "$metrics" | awk '$1 == "paroptd_querylog_records_total" {print $2}')
if [ -z "$fp" ] || [ "$fp" -lt 1 ]; then
  echo "replay_smoke: expected nonzero paroptd_workload_fingerprints, got '$fp'" >&2
  exit 1
fi
if [ -z "$recs" ] || [ "$recs" -lt 12 ]; then
  echo "replay_smoke: expected >=12 paroptd_querylog_records_total, got '$recs'" >&2
  exit 1
fi
echo "replay_smoke: $fp fingerprints, $recs records logged"

# Stop the daemon before replaying so the replay traffic isn't appended to
# the same log, and so the async writer is fully flushed.
kill -TERM $pid
wait $pid || true

"$tmp/paropt" workload "$tmp/q.jsonl"

out=$("$tmp/paropt" replay -strict "$tmp/q.jsonl")
echo "$out"
echo "$out" | grep -q "plan changes: 0" || {
  echo "replay_smoke: replay reported plan changes" >&2
  exit 1
}
echo "replay_smoke: OK"
