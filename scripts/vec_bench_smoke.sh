#!/usr/bin/env bash
# Vector-engine smoke: run the 2M-row pair join through the preserved
# row-at-a-time baseline and the vectorized Volcano iterators (blocking and
# symmetric hash join) and fail if the vectorized engine is slower than the
# row engine — the columnar refactor must never cost throughput.
#
# Each benchmark runs -count 3 and the minimum ns/op is compared, so a single
# noisy run cannot fail (or mask) the check. A 5% tolerance absorbs scheduler
# jitter; the observed margin is ~30%.
set -euo pipefail

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench '^BenchmarkPairJoin(Row|Vec|Sym)$' -benchtime 1x -count 3 ./internal/engine/)
echo "$out"

min() { awk -v pat="$1" '$0 ~ pat { if (m == "" || $3 < m) m = $3 } END { print m }' <<<"$out"; }

row=$(min '^BenchmarkPairJoinRow')
vec=$(min '^BenchmarkPairJoinVec')
sym=$(min '^BenchmarkPairJoinSym')

if [ -z "$row" ] || [ -z "$vec" ] || [ -z "$sym" ]; then
  echo "vec_bench_smoke: could not parse benchmark output" >&2
  exit 1
fi

echo "vec_bench_smoke: row ${row} ns/op, vectorized ${vec} ns/op, symmetric ${sym} ns/op"

if ! awk -v r="$row" -v v="$vec" 'BEGIN { exit !(v <= 1.05 * r) }'; then
  echo "vec_bench_smoke: vectorized join is slower than the row baseline" >&2
  exit 1
fi
# The symmetric join buffers both inputs to pipeline its output; it trades a
# few percent of bulk throughput for that, so it only has to stay close.
if ! awk -v r="$row" -v s="$sym" 'BEGIN { exit !(s <= 1.10 * r) }'; then
  echo "vec_bench_smoke: symmetric join is >10% slower than the row baseline" >&2
  exit 1
fi
echo "vec_bench_smoke: ok"
