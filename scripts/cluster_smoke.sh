#!/usr/bin/env bash
# Cluster smoke test: start paroptd plus two paroptw loopback workers, run a
# repartitioned join end-to-end over the TCP exchange (explain-analyze with
# ?distributed=1), and check the per-link traffic counters in /metrics moved.
# Exercises worker registration, fragment dispatch, the wire codec, and the
# credit-window streaming path as real processes rather than in-process mocks.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

go build -o "$tmp/paroptd" ./cmd/paroptd
go build -o "$tmp/paroptw" ./cmd/paroptw

addr=localhost:7272
"$tmp/paroptd" -addr "$addr" -workload portfolio -nodes 2 -log none &
pids+=($!)

for i in $(seq 1 50); do
  kill -0 "${pids[0]}" 2>/dev/null || { echo "cluster_smoke: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cluster_smoke: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

# Two workers on fixed loopback ports; each registers itself with the daemon.
"$tmp/paroptw" -listen 127.0.0.1:7281 -daemon "http://$addr" &
pids+=($!)
"$tmp/paroptw" -listen 127.0.0.1:7282 -daemon "http://$addr" &
pids+=($!)

# Count members of the "workers" array only — the cumulative "links" section
# also names worker addresses, but under an "addr" key.
members() {
  curl -fsS "http://$addr/cluster/workers" | grep -c '^ *"127.0.0.1:728' || true
}
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 2 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never registered (got $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: 2 workers registered"

# A repartitioned two-join query, executed on the workers. The response must
# carry an accuracy report (the analyze ran) with no error.
q="SELECT * FROM trades, stocks, sectors WHERE trades.stock_id = stocks.stock_id AND stocks.sector_id = sectors.sector_id"
out=$(curl -fsS -X POST "http://$addr/explain?analyze=1&distributed=1" \
  -H 'Content-Type: application/json' \
  -d "{\"query\": \"$q\"}")
echo "$out" | grep -q '"analyze"' || {
  echo "cluster_smoke: distributed explain-analyze returned no report: $out" >&2
  exit 1
}

metrics=$(curl -fsS "http://$addr/metrics")
frags=$(echo "$metrics" | awk '$1 == "paroptd_exchange_fragments_total" {print $2}')
if [ -z "$frags" ] || [ "$frags" -lt 1 ]; then
  echo "cluster_smoke: expected nonzero paroptd_exchange_fragments_total, got '$frags'" >&2
  exit 1
fi
# Every registered worker link must have carried bytes in both directions.
for port in 7281 7282; do
  for dir in sent recv; do
    bytes=$(echo "$metrics" | awk -v l="127.0.0.1:$port" -v d="$dir" \
      '$1 == "paroptd_exchange_link_bytes_total{link=\"" l "\",direction=\"" d "\"}" {print $2}')
    if [ -z "$bytes" ] || [ "$bytes" -lt 1 ]; then
      echo "cluster_smoke: link 127.0.0.1:$port $dir carried no bytes: '$bytes'" >&2
      echo "$metrics" | grep paroptd_exchange || true
      exit 1
    fi
  done
done
echo "cluster_smoke: $frags fragments dispatched, all links carried traffic"

# Workers deregister on SIGTERM.
kill -TERM "${pids[1]}" "${pids[2]}"
wait "${pids[1]}" "${pids[2]}" 2>/dev/null || true
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 0 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never deregistered (still $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: workers deregistered cleanly"
echo "cluster_smoke: OK"
