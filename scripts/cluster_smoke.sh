#!/usr/bin/env bash
# Cluster smoke test: start paroptd plus three paroptw loopback workers, run
# the portfolio Q5-style queries end-to-end over the TCP exchange
# (explain-analyze with ?distributed=1), then install a placement map and run
# them again. With placement the leaf scans ship to the workers that own the
# shards, so the fully-shipped trades⋈stocks join must move at least 50%
# fewer coordinator-sent bytes than the stream-everything baseline — the
# acceptance bar for worker-side data placement, asserted on real processes
# and real sockets rather than in-process mocks. Also exercises worker
# registration, fragment dispatch, the wire codec, credit-window streaming,
# and deregistration. Set PAROPT_SMOKE_RACE=1 to build the binaries with the
# race detector.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

build_flags=()
[ "${PAROPT_SMOKE_RACE:-}" = 1 ] && build_flags+=(-race)
go build "${build_flags[@]}" -o "$tmp/paroptd" ./cmd/paroptd
go build "${build_flags[@]}" -o "$tmp/paroptw" ./cmd/paroptw

addr=localhost:7272
# -exchange-window 2 keeps the credit windows tiny so backpressure stalls are
# guaranteed to register on the stall metric during the streamed runs.
"$tmp/paroptd" -addr "$addr" -workload portfolio -nodes 3 -log none -exchange-window 2 &
pids+=($!)

for i in $(seq 1 50); do
  kill -0 "${pids[0]}" 2>/dev/null || { echo "cluster_smoke: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cluster_smoke: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

# Three workers on fixed loopback ports; each registers itself with the daemon.
for port in 7281 7282 7283; do
  "$tmp/paroptw" -listen 127.0.0.1:$port -daemon "http://$addr" &
  pids+=($!)
done

# Count members of the "workers" array only — the cumulative "links" section
# also names worker addresses, but under an "addr" key.
members() {
  curl -fsS "http://$addr/cluster/workers" | grep -c '^ *"127.0.0.1:728' || true
}
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 3 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never registered (got $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: 3 workers registered"

# Coordinator-side bytes shipped to workers so far (cumulative across runs;
# callers diff two snapshots to get one run's traffic).
sent_bytes() {
  curl -fsS "http://$addr/metrics" | awk '
    /^paroptd_exchange_link_bytes_total\{.*direction="sent"/ {s += $2}
    END {printf "%.0f\n", s}'
}
metric() {
  curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1 == m {print $2}'
}
# run_query QUERY → "actRows elapsedMs" of a distributed explain-analyze.
# Bounded so a wedged exchange fails the run with goroutine dumps from every
# process instead of hanging CI until the job-level timeout.
run_query() {
  local out
  out=$(curl -fsS --max-time 120 -X POST "http://$addr/explain?analyze=1&distributed=1" \
    -H 'Content-Type: application/json' -d "{\"query\": \"$1\"}") || {
    echo "cluster_smoke: distributed explain-analyze stalled; dumping stacks" >&2
    for p in "${pids[@]}"; do kill -QUIT "$p" 2>/dev/null || true; done
    sleep 2
    exit 1
  }
  echo "$out" | jq -e '.analyze' >/dev/null || {
    echo "cluster_smoke: distributed explain-analyze returned no report: $out" >&2
    exit 1
  }
  echo "$out" | jq -r '[(.analyze.ops[] | select(.root) | .actRows), (.elapsedMicros / 1000 | floor)] | @tsv'
}

# The Q5-style chain (two joins: the first fully shipped under placement, the
# second streams the intermediate) and its heavy core pair (one join, fully
# shipped — both inputs live at the workers, so almost nothing leaves the
# coordinator once placement is installed).
chain="SELECT * FROM trades, stocks, sectors WHERE trades.stock_id = stocks.stock_id AND stocks.sector_id = sectors.sector_id"
pair="SELECT * FROM trades, stocks WHERE trades.stock_id = stocks.stock_id"

s0=$(sent_bytes)
read -r chain_rows chain_ms < <(run_query "$chain")
s1=$(sent_bytes)
read -r pair_rows pair_ms < <(run_query "$pair")
s2=$(sent_bytes)
chain_base=$((s1 - s0))
pair_base=$((s2 - s1))

metrics=$(curl -fsS "http://$addr/metrics")
frags=$(echo "$metrics" | awk '$1 == "paroptd_exchange_fragments_total" {print $2}')
if [ -z "$frags" ] || [ "$frags" -lt 1 ]; then
  echo "cluster_smoke: expected nonzero paroptd_exchange_fragments_total, got '$frags'" >&2
  exit 1
fi
# Every registered worker link must have carried bytes in both directions.
for port in 7281 7282 7283; do
  for dir in sent recv; do
    bytes=$(echo "$metrics" | awk -v l="127.0.0.1:$port" -v d="$dir" \
      '$1 == "paroptd_exchange_link_bytes_total{link=\"" l "\",direction=\"" d "\"}" {print $2}')
    if [ -z "$bytes" ] || [ "$bytes" -lt 1 ]; then
      echo "cluster_smoke: link 127.0.0.1:$port $dir carried no bytes: '$bytes'" >&2
      echo "$metrics" | grep paroptd_exchange || true
      exit 1
    fi
  done
done
echo "cluster_smoke: $frags fragments dispatched, all links carried traffic"
echo "cluster_smoke: streamed chain: $chain_base bytes sent, $chain_rows rows, ${chain_ms} ms"
echo "cluster_smoke: streamed pair:  $pair_base bytes sent, $pair_rows rows, ${pair_ms} ms"

# The repartitioned joins above ran under a 2-frame credit window, so the
# per-link stall counters — the first direct measurement of the paper's
# pipeline sync penalty — must be nonzero.
stall=$(echo "$metrics" | awk '/^paroptd_exchange_stall_seconds_total\{/ {s += $2} END {printf "%.9f\n", s}')
if ! awk -v s="$stall" 'BEGIN {exit (s > 0) ? 0 : 1}'; then
  echo "cluster_smoke: expected nonzero credit-stall seconds, got '$stall'" >&2
  echo "$metrics" | grep paroptd_exchange_stall || true
  exit 1
fi
echo "cluster_smoke: $stall s of credit-window stall measured across links"

# Distributed trace merge: a traced query must return ONE trace whose
# worker-side fragment spans (with their join children) were grafted into the
# coordinator's tree, and the ring listing must count them per entry.
traced=$(curl -fsS --max-time 120 -X POST "http://$addr/explain?analyze=1&distributed=1&trace=1" \
  -H 'Content-Type: application/json' -d "{\"query\": \"$pair\"}")
tid=$(echo "$traced" | jq -r '.traceId')
if [ -z "$tid" ] || [ "$tid" = null ]; then
  echo "cluster_smoke: traced explain returned no traceId: $traced" >&2
  exit 1
fi
trace=$(curl -fsS "http://$addr/debug/trace/$tid")
wspans=$(echo "$trace" | jq '[.. | objects | select(.name? == "fragment")] | length')
wjoins=$(echo "$trace" | jq '[.. | objects | select(.name? == "fragment") | .children[]? | select(.name == "join")] | length')
if [ "$wspans" -lt 1 ] || [ "$wjoins" -lt 1 ]; then
  echo "cluster_smoke: merged trace has $wspans fragment spans / $wjoins join children, want >=1 each" >&2
  echo "$trace" | jq '.root.children[].name' >&2 || true
  exit 1
fi
listed=$(curl -fsS "http://$addr/debug/traces" | jq --arg id "$tid" '.entries[] | select(.id == $id) | .fragments')
if [ -z "$listed" ] || [ "$listed" -lt 1 ]; then
  echo "cluster_smoke: /debug/traces entry for $tid counts no fragments: '$listed'" >&2
  exit 1
fi
echo "cluster_smoke: merged trace $tid carries $wspans worker fragment spans ($wjoins join children)"

# Fleet federation: the daemon scrapes each worker's own /healthz and all
# three must report live (their HTTP URLs rode along with registration).
fleet=$(curl -fsS "http://$addr/cluster/metrics")
live=$(echo "$fleet" | jq -r '.live')
total=$(echo "$fleet" | jq -r '.total')
if [ "$live" != 3 ] || [ "$total" != 3 ]; then
  echo "cluster_smoke: /cluster/metrics reports $live/$total workers live, want 3/3: $fleet" >&2
  exit 1
fi
served=$(echo "$fleet" | jq '[.workers[].health.stats.fragments_served] | add')
if [ -z "$served" ] || [ "$served" = null ] || [ "$served" -lt 1 ]; then
  echo "cluster_smoke: federated snapshot shows no fragments served: $fleet" >&2
  exit 1
fi
up=$(curl -fsS "http://$addr/metrics" | grep -c '^paroptd_cluster_worker_up{.*} 1$' || true)
if [ "$up" != 3 ]; then
  echo "cluster_smoke: expected 3 worker_up gauges at 1, got $up" >&2
  exit 1
fi
echo "cluster_smoke: /cluster/metrics federates 3/3 live workers, $served fragments served fleet-wide"

# Install a placement map over the registered workers: partition every
# relation of the default catalog on its join key and hand each worker its
# shards. Queries from here on ship leaf scans instead of streaming tables.
place=$(curl -fsS -X POST "http://$addr/cluster/placement" \
  -H 'Content-Type: application/json' -d '{}')
fp=$(echo "$place" | jq -r '.fingerprint')
if [ -z "$fp" ] || [ "$fp" = null ]; then
  echo "cluster_smoke: placement install returned no fingerprint: $place" >&2
  exit 1
fi
got_fp=$(curl -fsS "http://$addr/cluster/placement" | jq -r '.fingerprint')
[ "$got_fp" = "$fp" ] || {
  echo "cluster_smoke: GET placement fingerprint $got_fp != installed $fp" >&2
  exit 1
}
echo "cluster_smoke: placement $fp installed"

# Re-anchor the byte snapshot: the traced query above ran pre-placement and
# streamed the pair inputs again, so its traffic must not be charged to the
# placed runs below.
s2=$(sent_bytes)
read -r placed_pair_rows placed_pair_ms < <(run_query "$pair")
s3=$(sent_bytes)
read -r placed_chain_rows placed_chain_ms < <(run_query "$chain")
s4=$(sent_bytes)
pair_placed=$((s3 - s2))
chain_placed=$((s4 - s3))

[ "$placed_pair_rows" = "$pair_rows" ] || {
  echo "cluster_smoke: placed pair returned $placed_pair_rows rows, streamed run $pair_rows" >&2
  exit 1
}
[ "$placed_chain_rows" = "$chain_rows" ] || {
  echo "cluster_smoke: placed chain returned $placed_chain_rows rows, streamed run $chain_rows" >&2
  exit 1
}
shipped=$(metric paroptd_exchange_shipped_scans_total)
if [ -z "$shipped" ] || [ "$shipped" -lt 1 ]; then
  echo "cluster_smoke: no leaf scans shipped despite installed placement (shipped='$shipped')" >&2
  exit 1
fi
# The acceptance bar: a fully-shipped join sources both inputs at the
# workers, so the coordinator must send at least 50% fewer bytes than the
# stream-everything baseline for the same query (in practice it only sends
# fragment descriptors and credits — a >99% cut).
if [ "$((pair_placed * 2))" -gt "$pair_base" ]; then
  echo "cluster_smoke: placed pair sent $pair_placed bytes vs $pair_base streamed; want >=50% cut" >&2
  exit 1
fi
echo "cluster_smoke: $shipped scans shipped"
echo "cluster_smoke: placed pair:  $pair_placed bytes sent ($((100 - 100 * pair_placed / pair_base))% cut), ${placed_pair_ms} ms"
echo "cluster_smoke: placed chain: $chain_placed bytes sent ($((100 - 100 * chain_placed / chain_base))% cut), ${placed_chain_ms} ms"

# Live registry + cluster-wide cancellation: start a distributed join in the
# background, catch it in /debug/queries, and cancel it via DELETE. The
# DELETE must return fast, the workers must free every staged partition, and
# the daemon must stay healthy and keep serving. A run can finish before the
# cancel lands (the placed joins are quick), so retry a few times until one
# is caught in flight.
cancelled_ok=0
for attempt in $(seq 1 10); do
  curl -sS --max-time 120 -X POST "http://$addr/explain?analyze=1&distributed=1" \
    -H 'Content-Type: application/json' -d "{\"query\": \"$chain\"}" >/dev/null 2>&1 &
  qpid=$!
  qid=""
  for i in $(seq 1 100); do
    qid=$(curl -fsS "http://$addr/debug/queries" | jq -r '.queries[0].id // empty')
    [ -n "$qid" ] && break
    kill -0 "$qpid" 2>/dev/null || break
  done
  if [ -n "$qid" ]; then
    t0=$(date +%s%N)
    code=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "http://$addr/debug/queries/$qid")
    t1=$(date +%s%N)
    wait "$qpid" 2>/dev/null || true
    if [ "$code" = 200 ]; then
      cancel_ms=$(( (t1 - t0) / 1000000 ))
      if [ "$cancel_ms" -gt 200 ]; then
        echo "cluster_smoke: cancel DELETE took ${cancel_ms}ms, want <=200ms" >&2
        exit 1
      fi
      cancelled_ok=1
      echo "cluster_smoke: cancelled in-flight query $qid in ${cancel_ms}ms (attempt $attempt)"
      break
    fi
  else
    wait "$qpid" 2>/dev/null || true
  fi
done
if [ "$cancelled_ok" != 1 ]; then
  echo "cluster_smoke: never caught a distributed query in flight to cancel" >&2
  exit 1
fi
cancelled_total=$(curl -fsS "http://$addr/metrics" \
  | awk '$1 == "paroptd_query_cancelled_total{reason=\"client\"}" {print $2}')
if [ -z "$cancelled_total" ] || [ "$cancelled_total" -lt 1 ]; then
  echo "cluster_smoke: paroptd_query_cancelled_total{reason=client} = '$cancelled_total', want >=1" >&2
  exit 1
fi
# The workers abandon their fragments and free the staged shipped-scan
# partitions; the gauge drains asynchronously, so poll it to zero.
for i in $(seq 1 50); do
  staged=$(curl -fsS "http://$addr/cluster/metrics" \
    | jq '[.workers[].health.stats.staged_bytes] | add')
  [ "$staged" = 0 ] && break
  [ "$i" = 50 ] && {
    echo "cluster_smoke: workers still stage $staged bytes after cancel" >&2
    exit 1
  }
  sleep 0.2
done
# Daemon healthy and still serving the same answers after the cancel.
curl -fsS "http://$addr/healthz" >/dev/null
read -r after_rows after_ms < <(run_query "$pair")
[ "$after_rows" = "$pair_rows" ] || {
  echo "cluster_smoke: post-cancel pair returned $after_rows rows, want $pair_rows" >&2
  exit 1
}
echo "cluster_smoke: workers freed staged partitions; daemon healthy post-cancel (${after_ms} ms)"

# Workers deregister on SIGTERM.
kill -TERM "${pids[1]}" "${pids[2]}" "${pids[3]}"
wait "${pids[1]}" "${pids[2]}" "${pids[3]}" 2>/dev/null || true
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 0 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never deregistered (still $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: workers deregistered cleanly"
echo "cluster_smoke: OK"
