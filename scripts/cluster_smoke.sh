#!/usr/bin/env bash
# Cluster smoke test: start paroptd plus three paroptw loopback workers, run
# the portfolio Q5-style queries end-to-end over the TCP exchange
# (explain-analyze with ?distributed=1), then install a placement map and run
# them again. With placement the leaf scans ship to the workers that own the
# shards, so the fully-shipped trades⋈stocks join must move at least 50%
# fewer coordinator-sent bytes than the stream-everything baseline — the
# acceptance bar for worker-side data placement, asserted on real processes
# and real sockets rather than in-process mocks. Also exercises worker
# registration, fragment dispatch, the wire codec, credit-window streaming,
# and deregistration. Set PAROPT_SMOKE_RACE=1 to build the binaries with the
# race detector.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

build_flags=()
[ "${PAROPT_SMOKE_RACE:-}" = 1 ] && build_flags+=(-race)
go build "${build_flags[@]}" -o "$tmp/paroptd" ./cmd/paroptd
go build "${build_flags[@]}" -o "$tmp/paroptw" ./cmd/paroptw

addr=localhost:7272
"$tmp/paroptd" -addr "$addr" -workload portfolio -nodes 3 -log none &
pids+=($!)

for i in $(seq 1 50); do
  kill -0 "${pids[0]}" 2>/dev/null || { echo "cluster_smoke: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "cluster_smoke: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

# Three workers on fixed loopback ports; each registers itself with the daemon.
for port in 7281 7282 7283; do
  "$tmp/paroptw" -listen 127.0.0.1:$port -daemon "http://$addr" &
  pids+=($!)
done

# Count members of the "workers" array only — the cumulative "links" section
# also names worker addresses, but under an "addr" key.
members() {
  curl -fsS "http://$addr/cluster/workers" | grep -c '^ *"127.0.0.1:728' || true
}
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 3 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never registered (got $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: 3 workers registered"

# Coordinator-side bytes shipped to workers so far (cumulative across runs;
# callers diff two snapshots to get one run's traffic).
sent_bytes() {
  curl -fsS "http://$addr/metrics" | awk '
    /^paroptd_exchange_link_bytes_total\{.*direction="sent"/ {s += $2}
    END {printf "%.0f\n", s}'
}
metric() {
  curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1 == m {print $2}'
}
# run_query QUERY → "actRows elapsedMs" of a distributed explain-analyze.
# Bounded so a wedged exchange fails the run with goroutine dumps from every
# process instead of hanging CI until the job-level timeout.
run_query() {
  local out
  out=$(curl -fsS --max-time 120 -X POST "http://$addr/explain?analyze=1&distributed=1" \
    -H 'Content-Type: application/json' -d "{\"query\": \"$1\"}") || {
    echo "cluster_smoke: distributed explain-analyze stalled; dumping stacks" >&2
    for p in "${pids[@]}"; do kill -QUIT "$p" 2>/dev/null || true; done
    sleep 2
    exit 1
  }
  echo "$out" | jq -e '.analyze' >/dev/null || {
    echo "cluster_smoke: distributed explain-analyze returned no report: $out" >&2
    exit 1
  }
  echo "$out" | jq -r '[(.analyze.ops[] | select(.root) | .actRows), (.elapsedMicros / 1000 | floor)] | @tsv'
}

# The Q5-style chain (two joins: the first fully shipped under placement, the
# second streams the intermediate) and its heavy core pair (one join, fully
# shipped — both inputs live at the workers, so almost nothing leaves the
# coordinator once placement is installed).
chain="SELECT * FROM trades, stocks, sectors WHERE trades.stock_id = stocks.stock_id AND stocks.sector_id = sectors.sector_id"
pair="SELECT * FROM trades, stocks WHERE trades.stock_id = stocks.stock_id"

s0=$(sent_bytes)
read -r chain_rows chain_ms < <(run_query "$chain")
s1=$(sent_bytes)
read -r pair_rows pair_ms < <(run_query "$pair")
s2=$(sent_bytes)
chain_base=$((s1 - s0))
pair_base=$((s2 - s1))

metrics=$(curl -fsS "http://$addr/metrics")
frags=$(echo "$metrics" | awk '$1 == "paroptd_exchange_fragments_total" {print $2}')
if [ -z "$frags" ] || [ "$frags" -lt 1 ]; then
  echo "cluster_smoke: expected nonzero paroptd_exchange_fragments_total, got '$frags'" >&2
  exit 1
fi
# Every registered worker link must have carried bytes in both directions.
for port in 7281 7282 7283; do
  for dir in sent recv; do
    bytes=$(echo "$metrics" | awk -v l="127.0.0.1:$port" -v d="$dir" \
      '$1 == "paroptd_exchange_link_bytes_total{link=\"" l "\",direction=\"" d "\"}" {print $2}')
    if [ -z "$bytes" ] || [ "$bytes" -lt 1 ]; then
      echo "cluster_smoke: link 127.0.0.1:$port $dir carried no bytes: '$bytes'" >&2
      echo "$metrics" | grep paroptd_exchange || true
      exit 1
    fi
  done
done
echo "cluster_smoke: $frags fragments dispatched, all links carried traffic"
echo "cluster_smoke: streamed chain: $chain_base bytes sent, $chain_rows rows, ${chain_ms} ms"
echo "cluster_smoke: streamed pair:  $pair_base bytes sent, $pair_rows rows, ${pair_ms} ms"

# Install a placement map over the registered workers: partition every
# relation of the default catalog on its join key and hand each worker its
# shards. Queries from here on ship leaf scans instead of streaming tables.
place=$(curl -fsS -X POST "http://$addr/cluster/placement" \
  -H 'Content-Type: application/json' -d '{}')
fp=$(echo "$place" | jq -r '.fingerprint')
if [ -z "$fp" ] || [ "$fp" = null ]; then
  echo "cluster_smoke: placement install returned no fingerprint: $place" >&2
  exit 1
fi
got_fp=$(curl -fsS "http://$addr/cluster/placement" | jq -r '.fingerprint')
[ "$got_fp" = "$fp" ] || {
  echo "cluster_smoke: GET placement fingerprint $got_fp != installed $fp" >&2
  exit 1
}
echo "cluster_smoke: placement $fp installed"

read -r placed_pair_rows placed_pair_ms < <(run_query "$pair")
s3=$(sent_bytes)
read -r placed_chain_rows placed_chain_ms < <(run_query "$chain")
s4=$(sent_bytes)
pair_placed=$((s3 - s2))
chain_placed=$((s4 - s3))

[ "$placed_pair_rows" = "$pair_rows" ] || {
  echo "cluster_smoke: placed pair returned $placed_pair_rows rows, streamed run $pair_rows" >&2
  exit 1
}
[ "$placed_chain_rows" = "$chain_rows" ] || {
  echo "cluster_smoke: placed chain returned $placed_chain_rows rows, streamed run $chain_rows" >&2
  exit 1
}
shipped=$(metric paroptd_exchange_shipped_scans_total)
if [ -z "$shipped" ] || [ "$shipped" -lt 1 ]; then
  echo "cluster_smoke: no leaf scans shipped despite installed placement (shipped='$shipped')" >&2
  exit 1
fi
# The acceptance bar: a fully-shipped join sources both inputs at the
# workers, so the coordinator must send at least 50% fewer bytes than the
# stream-everything baseline for the same query (in practice it only sends
# fragment descriptors and credits — a >99% cut).
if [ "$((pair_placed * 2))" -gt "$pair_base" ]; then
  echo "cluster_smoke: placed pair sent $pair_placed bytes vs $pair_base streamed; want >=50% cut" >&2
  exit 1
fi
echo "cluster_smoke: $shipped scans shipped"
echo "cluster_smoke: placed pair:  $pair_placed bytes sent ($((100 - 100 * pair_placed / pair_base))% cut), ${placed_pair_ms} ms"
echo "cluster_smoke: placed chain: $chain_placed bytes sent ($((100 - 100 * chain_placed / chain_base))% cut), ${placed_chain_ms} ms"

# Workers deregister on SIGTERM.
kill -TERM "${pids[1]}" "${pids[2]}" "${pids[3]}"
wait "${pids[1]}" "${pids[2]}" "${pids[3]}" 2>/dev/null || true
for i in $(seq 1 50); do
  n=$(members)
  [ "$n" = 0 ] && break
  [ "$i" = 50 ] && { echo "cluster_smoke: workers never deregistered (still $n)" >&2; exit 1; }
  sleep 0.2
done
echo "cluster_smoke: workers deregistered cleanly"
echo "cluster_smoke: OK"
