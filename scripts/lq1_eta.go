//go:build ignore

// LQ1 harness: live (tf, tl)-predicted progress vs ground truth.
//
// Runs an in-process service, executes an explain-analyze over the
// 6-relation acceptance chain, samples the in-flight registry while the
// engine runs, and reports how accurate the model-predicted ETA was at each
// sample point against the actually-remaining wall time. The first analyze
// warms the plan cache and the synthetic database so the measured run is
// execute-dominated. Output is markdown, ready to paste into EXPERIMENTS.md
// §LQ1:
//
//	go run scripts/lq1_eta.go [-parallel 2] [-interval 25ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"paropt/internal/parser"
	"paropt/internal/service"
)

// Same 6-relation chain schema the service tests use as the acceptance
// workload.
const ddl = `
relation R1 card=50000 pages=500 disk=0
column R1.a ndv=50000
column R1.b ndv=2000
relation R2 card=80000 pages=800 disk=1
column R2.a ndv=2000
column R2.b ndv=4000
relation R3 card=60000 pages=600 disk=2
column R3.a ndv=4000
column R3.b ndv=3000
relation R4 card=90000 pages=900 disk=3
column R4.a ndv=3000
column R4.b ndv=5000
relation R5 card=70000 pages=700 disk=0
column R5.a ndv=5000
column R5.b ndv=2500
relation R6 card=40000 pages=400 disk=1
column R6.a ndv=2500
column R6.b ndv=1000
`

func chainSQL(n, literal int) string {
	rels := make([]string, n)
	for i := range rels {
		rels[i] = fmt.Sprintf("R%d", i+1)
	}
	var preds []string
	for i := 1; i < n; i++ {
		preds = append(preds, fmt.Sprintf("R%d.b = R%d.a", i, i+1))
	}
	preds = append(preds, fmt.Sprintf("R1.a = %d", literal))
	return "SELECT * FROM " + strings.Join(rels, ", ") + " WHERE " + strings.Join(preds, " AND ")
}

func main() {
	parallel := flag.Int("parallel", 2, "engine parallelism for the analyze")
	interval := flag.Duration("interval", 25*time.Millisecond, "sample interval")
	flag.Parse()

	cat, err := parser.ParseSchema(ddl)
	if err != nil {
		fatal(err)
	}
	s, err := service.New(service.Config{Catalog: cat})
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	sql := chainSQL(6, 7)
	req := service.OptimizeRequest{Query: sql, Analyze: true, AnalyzeParallel: *parallel}

	// Warm-up: populates the plan cache and generates the synthetic
	// database, so the measured run below is execution, not setup.
	warmStart := time.Now()
	if _, err := s.Explain(context.Background(), req); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "warm-up analyze: %s\n", time.Since(warmStart).Round(time.Millisecond))

	type sample struct {
		at time.Time
		qs service.QuerySnapshot
	}
	var samples []sample
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := s.Explain(context.Background(), req)
		done <- err
	}()
	var finish time.Time
loop:
	for {
		select {
		case err := <-done:
			finish = time.Now()
			if err != nil {
				fatal(err)
			}
			break loop
		case <-time.After(*interval):
			for _, qs := range s.InflightQueries() {
				if qs.Phase == "execute" && qs.Progress != nil {
					samples = append(samples, sample{time.Now(), qs})
				}
			}
		}
	}
	wall := finish.Sub(start)

	fmt.Printf("Measured run: %s wall, parallel=%d, %d execute-phase samples at %s.\n\n",
		wall.Round(time.Millisecond), *parallel, len(samples), *interval)
	fmt.Println("| t (ms) | progress | calibrated predicted wall (ms) | ETA (ms) | true remaining (ms) | ETA rel err | drift |")
	fmt.Println("|-------:|---------:|-------------------------------:|---------:|--------------------:|------------:|-------|")
	var relErrs []float64
	nextDecile := 0.0
	for _, sm := range samples {
		p := sm.qs.Progress
		if p.ETAMs < 0 || !p.Calibrated {
			continue
		}
		trueRem := float64(finish.Sub(sm.at)) / 1e6
		// Floor the denominator: near the finish line "remaining" goes to
		// zero and relative error stops being meaningful.
		denom := math.Max(trueRem, 100)
		re := math.Abs(p.ETAMs-trueRem) / denom
		relErrs = append(relErrs, re)
		if p.Percent >= nextDecile {
			drift := ""
			if p.Drift {
				drift = "DRIFT"
			}
			fmt.Printf("| %.0f | %.0f%% | %.0f | %.0f | %.0f | %.2f | %s |\n",
				float64(sm.at.Sub(start))/1e6, p.Percent*100, p.PredictedWallMs, p.ETAMs, trueRem, re, drift)
			nextDecile = math.Floor(p.Percent*10)/10 + 0.1
		}
	}
	if len(relErrs) == 0 {
		fmt.Println()
		fmt.Println("No calibrated samples landed — run was too fast for the interval.")
		return
	}
	sort.Float64s(relErrs)
	var sum float64
	for _, re := range relErrs {
		sum += re
	}
	fmt.Printf("\n%d calibrated samples: ETA rel-err median %.2f, mean %.2f, p90 %.2f.\n",
		len(relErrs), relErrs[len(relErrs)/2], sum/float64(len(relErrs)), relErrs[len(relErrs)*9/10])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lq1:", err)
	os.Exit(1)
}
