#!/usr/bin/env bash
# Fault-tolerance smoke test: a placed distributed query must survive losing
# a worker mid-membership. Starts paroptd plus three paroptw workers, installs
# a placement map, then SIGKILLs one worker WITHOUT deregistering it — the
# daemon still lists the dead address, so fragment dispatch hits a refused
# connection and must re-dispatch to a survivor (fully-shipped fragments are
# side-effect-free at the workers, which is what makes the retry sound). The
# query has to return exactly the rows a local run produces, with at least one
# retry and zero coordinator fallbacks. Then the dead worker is deregistered,
# restarted on the same port (exercising startup re-registration and the lazy
# placement fetch), and the query is run once more over the healed cluster.
# Set PAROPT_SMOKE_RACE=1 to build both binaries with the race detector.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
pids=()
trap 'for p in "${pids[@]}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT

build_flags=()
[ "${PAROPT_SMOKE_RACE:-}" = 1 ] && build_flags+=(-race)
go build "${build_flags[@]}" -o "$tmp/paroptd" ./cmd/paroptd
go build "${build_flags[@]}" -o "$tmp/paroptw" ./cmd/paroptw

addr=localhost:7273
"$tmp/paroptd" -addr "$addr" -workload portfolio -nodes 3 -log none &
pids+=($!)

for i in $(seq 1 50); do
  kill -0 "${pids[0]}" 2>/dev/null || { echo "fault_smoke: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "fault_smoke: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

start_worker() {
  "$tmp/paroptw" -listen "127.0.0.1:$1" -daemon "http://$addr" &
  pids+=($!)
}
for port in 7285 7286 7287; do start_worker "$port"; done

members() {
  curl -fsS "http://$addr/cluster/workers" | grep -c '^ *"127.0.0.1:728' || true
}
wait_members() {
  for i in $(seq 1 50); do
    n=$(members)
    [ "$n" = "$1" ] && return 0
    sleep 0.2
  done
  echo "fault_smoke: membership never reached $1 (got $n)" >&2
  exit 1
}
wait_members 3
echo "fault_smoke: 3 workers registered"

metric() {
  curl -fsS "http://$addr/metrics" | awk -v m="$1" '$1 == m {print $2}'
}
# run_query distributed? QUERY → root actRows. Bounded so a wedged exchange
# fails the run with goroutine dumps instead of hanging CI.
run_query() {
  local url="http://$addr/explain?analyze=1" out
  [ "$1" = 1 ] && url="$url&distributed=1"
  out=$(curl -fsS --max-time 120 -X POST "$url" \
    -H 'Content-Type: application/json' -d "{\"query\": \"$2\"}") || {
    echo "fault_smoke: explain-analyze stalled; dumping stacks" >&2
    for p in "${pids[@]}"; do kill -QUIT "$p" 2>/dev/null || true; done
    sleep 2
    exit 1
  }
  echo "$out" | jq -e '.analyze' >/dev/null || {
    echo "fault_smoke: explain-analyze returned no report: $out" >&2
    exit 1
  }
  echo "$out" | jq -r '.analyze.ops[] | select(.root) | .actRows'
}

fp=$(curl -fsS -X POST "http://$addr/cluster/placement" \
  -H 'Content-Type: application/json' -d '{}' | jq -r '.fingerprint')
[ -n "$fp" ] && [ "$fp" != null ] || { echo "fault_smoke: placement install failed" >&2; exit 1; }
echo "fault_smoke: placement $fp installed"

# Both sides of the pair join live at the workers under this placement, so
# every fragment is fully shipped — the class the retry path covers.
pair="SELECT * FROM trades, stocks WHERE trades.stock_id = stocks.stock_id"
base_rows=$(run_query 0 "$pair")
[ -n "$base_rows" ] && [ "$base_rows" -gt 0 ] || {
  echo "fault_smoke: local baseline returned no rows" >&2
  exit 1
}
echo "fault_smoke: local baseline: $base_rows rows"

# Kill a worker outright: no SIGTERM handler runs, so it never deregisters
# and the daemon keeps dispatching to the dead address.
kill -9 "${pids[1]}"
wait "${pids[1]}" 2>/dev/null || true
echo "fault_smoke: worker 127.0.0.1:7285 killed (still registered)"

rows=$(run_query 1 "$pair")
[ "$rows" = "$base_rows" ] || {
  echo "fault_smoke: query over degraded cluster returned $rows rows, local run $base_rows" >&2
  exit 1
}
retries=$(metric paroptd_exchange_retries_total)
fallbacks=$(metric paroptd_exchange_fallbacks_total)
if [ -z "$retries" ] || [ "$retries" -lt 1 ]; then
  echo "fault_smoke: dead worker produced no retries (retries='$retries')" >&2
  exit 1
fi
if [ "$fallbacks" != 0 ]; then
  echo "fault_smoke: survivors should have absorbed every fragment, but fallbacks=$fallbacks" >&2
  exit 1
fi
echo "fault_smoke: degraded query OK: $rows rows, $retries retries, 0 fallbacks"

# Operator removes the dead address, then the worker comes back on the same
# port: it re-registers at startup and refetches the placement lazily on its
# first shipped scan.
curl -fsS -X POST "http://$addr/cluster/deregister" \
  -H 'Content-Type: application/json' -d '{"addr": "127.0.0.1:7285"}' >/dev/null
wait_members 2
start_worker 7285
wait_members 3
echo "fault_smoke: worker restarted and re-registered"

rows=$(run_query 1 "$pair")
[ "$rows" = "$base_rows" ] || {
  echo "fault_smoke: query over healed cluster returned $rows rows, local run $base_rows" >&2
  exit 1
}
echo "fault_smoke: healed query OK: $rows rows"

kill -TERM "${pids[2]}" "${pids[3]}" "${pids[4]}"
wait "${pids[2]}" "${pids[3]}" "${pids[4]}" 2>/dev/null || true
wait_members 0
echo "fault_smoke: OK"
