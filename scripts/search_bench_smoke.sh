#!/usr/bin/env bash
# Search-bench smoke: run the PODP search benchmark untraced and traced and
# fail if tracing costs more than 10% wall time or adds meaningful per-op
# allocations — the telemetry layer must stay out of the untraced hot path,
# and a live tracer must stay cheap enough to leave on in production.
#
# Each benchmark runs -count 3 and the minimum ns/op is compared, so a single
# noisy run cannot fail (or mask) the regression check.
set -euo pipefail

cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench '^BenchmarkPODP(Traced)?$' -benchtime 3x -count 3 ./internal/search/)
echo "$out"

min() { awk -v pat="$1" '$0 ~ pat { if (m == "" || $3 < m) m = $3 } END { print m }' <<<"$out"; }
allocs() { awk -v pat="$1" '$0 ~ pat { if (m == "" || $7 < m) m = $7 } END { print m }' <<<"$out"; }

base=$(min '^BenchmarkPODP-|^BenchmarkPODP[[:space:]]')
traced=$(min '^BenchmarkPODPTraced')
base_allocs=$(allocs '^BenchmarkPODP-|^BenchmarkPODP[[:space:]]')
traced_allocs=$(allocs '^BenchmarkPODPTraced')

if [ -z "$base" ] || [ -z "$traced" ]; then
  echo "search_bench_smoke: could not parse benchmark output" >&2
  exit 1
fi

echo "search_bench_smoke: untraced ${base} ns/op (${base_allocs} allocs/op), traced ${traced} ns/op (${traced_allocs} allocs/op)"

if ! awk -v b="$base" -v t="$traced" 'BEGIN { exit !(t <= 1.10 * b) }'; then
  echo "search_bench_smoke: traced search is >10% slower than untraced" >&2
  exit 1
fi
# The tracer fans out one Layer record per DP layer; per-op allocations may
# grow by a few events, never proportionally to the search.
if ! awk -v b="$base_allocs" -v t="$traced_allocs" 'BEGIN { exit !(t <= 1.01 * b + 64) }'; then
  echo "search_bench_smoke: tracing adds per-op allocations beyond the layer records" >&2
  exit 1
fi
echo "search_bench_smoke: ok"
