#!/usr/bin/env bash
# Metrics-exposition lint: start paroptd, serve a little traffic, then check
# that /metrics is well-formed Prometheus text — every sample belongs to a
# family that declared # HELP and # TYPE, every name is a valid identifier,
# and the exported family set matches the golden list the unit tests pin
# (internal/service/testdata/metrics.golden), so a new metric cannot ship
# without updating the golden and its HELP text.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
trap 'kill $pid 2>/dev/null || true; rm -rf "$tmp"' EXIT

go build -o "$tmp/paroptd" ./cmd/paroptd

addr=localhost:7173
"$tmp/paroptd" -addr "$addr" -workload portfolio -log none &
pid=$!

for i in $(seq 1 50); do
  kill -0 $pid 2>/dev/null || { echo "metrics_lint: daemon exited (port in use?)" >&2; exit 1; }
  curl -fsS "http://$addr/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && { echo "metrics_lint: daemon never became healthy" >&2; exit 1; }
  sleep 0.2
done

curl -fsS -X POST "http://$addr/optimize" -H 'Content-Type: application/json' \
  -d '{"query": "SELECT * FROM trades, stocks WHERE trades.stock_id = stocks.stock_id"}' >/dev/null
curl -fsS "http://$addr/metrics" > "$tmp/metrics.txt"

awk '
  /^# HELP / { help[$3] = 1; next }
  /^# TYPE / { type[$3] = 1; next }
  /^#/ { next }
  /^[[:space:]]*$/ { next }
  {
    name = $1; sub(/\{.*/, "", name)
    base = name; sub(/_(bucket|sum|count)$/, "", base)
    if (name !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*$/) { print "invalid metric name: " name; bad = 1 }
    if (!(name in type) && !(base in type)) { print "sample without # TYPE: " name; bad = 1 }
    if (!(name in help) && !(base in help)) { print "sample without # HELP: " name; bad = 1 }
  }
  END { exit bad }
' "$tmp/metrics.txt" || { echo "metrics_lint: exposition malformed" >&2; exit 1; }

grep '^# TYPE' "$tmp/metrics.txt" > "$tmp/types.txt"
if ! diff -u internal/service/testdata/metrics.golden "$tmp/types.txt"; then
  echo "metrics_lint: live /metrics families drifted from internal/service/testdata/metrics.golden" >&2
  exit 1
fi

echo "metrics_lint: $(grep -c '^# TYPE' "$tmp/types.txt") families, exposition well-formed"
