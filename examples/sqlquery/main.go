// Sqlquery drives the optimizer entirely from text: a schema written in the
// DDL grammar and a query written in the SQL-ish SELECT grammar (see
// internal/parser), optimized under a work bound and then executed on
// generated data — the path an ad-hoc reporting tool would take.
package main

import (
	"fmt"
	"log"

	"paropt"
	"paropt/internal/parser"
)

const schema = `
# A small order-management schema across four disks.
relation orders card=400000 pages=4000 disk=0
column orders.order_id ndv=400000 width=8
column orders.cust_id ndv=30000 width=8
column orders.part_id ndv=8000 width=8
column orders.qty ndv=50 width=8

relation customers card=30000 pages=300 disk=1 sorted=cust_id
column customers.cust_id ndv=30000 width=8
column customers.region ndv=25 width=8

relation parts card=8000 pages=80 disk=2
column parts.part_id ndv=8000 width=8
column parts.category ndv=40 width=8

index customers_pk on customers(cust_id) clustered disk=1
index parts_pk on parts(part_id) disk=3
`

const sql = `
SELECT parts.category, orders.qty
FROM orders, customers, parts
WHERE orders.cust_id = customers.cust_id
  AND orders.part_id = parts.part_id
  AND customers.region = 7
`

func main() {
	cat, err := parser.ParseSchema(schema)
	if err != nil {
		log.Fatal(err)
	}
	q, err := parser.ParseQuery(sql, cat)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed: %s\n\n", q)

	opt, err := paropt.NewOptimizer(cat, q, paropt.Config{
		Machine: paropt.MachineConfig{CPUs: 4, Disks: 4, Networks: 1},
		Bound:   paropt.ThroughputDegradation{K: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt.Explain(p))

	// Execute on generated data and aggregate by category — everything
	// after the SPJ core is plain post-processing.
	db := paropt.NewDatabase(cat, 3)
	rows, err := opt.Execute(p, db, 4)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := rows.GroupBy(
		[]paropt.ColumnRef{{Relation: "parts", Column: "category"}},
		paropt.ColumnRef{Relation: "orders", Column: "qty"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted: %d rows, %d categories; top categories by quantity:\n",
		rows.Len(), len(groups))
	shown := 0
	for _, g := range groups {
		if shown == 5 {
			break
		}
		fmt.Printf("  category %d: orders=%d sum(qty)=%d\n", g.Key[0], g.Count, g.Sum)
		shown++
	}
}
