// Tradeoff sweeps the §2 work bounds and prints the response-time / work
// Pareto frontier: how much latency each increment of allowed extra work
// buys, under both bounding policies (throughput degradation and
// cost–benefit ratio), plus the search-space reduction the bound provides
// ("work bounds ... in fact cut down the search space", §6.4).
package main

import (
	"fmt"
	"log"

	"paropt"
)

func main() {
	cat, q := paropt.PortfolioWorkload(8)
	mc := paropt.MachineConfig{CPUs: 8, Disks: 8, Networks: 1}

	baselinePlan := mustOptimize(cat, q, paropt.Config{Machine: mc, Algorithm: paropt.WorkDP})
	wo, to := baselinePlan.Work(), baselinePlan.RT()
	fmt.Printf("work-optimal baseline: Wo=%.1f To=%.1f\n\n", wo, to)

	fmt.Println("Throughput-degradation bound Wp ≤ k·Wo:")
	fmt.Printf("%6s %12s %12s %10s %10s %12s\n", "k", "RT", "work", "RT/To", "W/Wo", "considered")
	for _, k := range []float64{1.0, 1.1, 1.25, 1.5, 2, 3, 5, 0} {
		cfg := paropt.Config{Machine: mc, Algorithm: paropt.PartialOrderDP}
		label := "∞"
		if k > 0 {
			cfg.Bound = paropt.ThroughputDegradation{K: k}
			label = fmt.Sprintf("%.2f", k)
		}
		p := mustOptimize(cat, q, cfg)
		fmt.Printf("%6s %12.1f %12.1f %10.2f %10.2f %12d\n",
			label, p.RT(), p.Work(), p.RT()/to, p.Work()/wo, p.Stats.PlansConsidered)
	}

	fmt.Println("\nCost-benefit bound (extra work ≤ k × seconds saved):")
	fmt.Printf("%6s %12s %12s %10s %10s\n", "k", "RT", "work", "RT/To", "W/Wo")
	for _, k := range []float64{0.5, 1, 2, 5, 20} {
		p := mustOptimize(cat, q, paropt.Config{
			Machine:   mc,
			Algorithm: paropt.PartialOrderDP,
			Bound:     paropt.CostBenefit{K: k},
		})
		fmt.Printf("%6.1f %12.1f %12.1f %10.2f %10.2f\n",
			k, p.RT(), p.Work(), p.RT()/to, p.Work()/wo)
	}
	fmt.Println("\nReading the frontier: k=1 forbids extra work (the plan is the")
	fmt.Println("baseline); growing k admits plans that spend more total work to")
	fmt.Println("finish sooner, until the unbounded RT optimum is reached. Tighter")
	fmt.Println("bounds also prune the search (smaller 'considered').")
}

func mustOptimize(cat *paropt.Catalog, q *paropt.Query, cfg paropt.Config) *paropt.Plan {
	opt, err := paropt.NewOptimizer(cat, q, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	return p
}
