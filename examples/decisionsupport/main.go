// Decisionsupport runs the paper's motivating scenario end to end: a stock
// portfolio manager's star query, optimized two ways — the traditional
// work optimizer vs the response-time optimizer — across machine sizes,
// with both plans validated on the machine simulator. It shows the paper's
// thesis: on a parallel machine, minimizing response time (at bounded extra
// work) beats the throughput-optimal plan on latency.
package main

import (
	"fmt"
	"log"

	"paropt"
)

func main() {
	fmt.Println("Decision support: portfolio-by-sector star query (§1 scenario)")
	fmt.Println()
	fmt.Printf("%8s | %12s %12s | %12s %12s | %8s %8s\n",
		"machine", "workOpt RT", "rtOpt RT", "workOpt W", "rtOpt W", "simWork", "simRT")

	for _, size := range []struct{ cpus, disks int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16},
	} {
		cat, q := paropt.PortfolioWorkload(size.disks)
		mc := paropt.MachineConfig{CPUs: size.cpus, Disks: size.disks, Networks: 1}

		workOpt := optimize(cat, q, paropt.Config{Machine: mc, Algorithm: paropt.WorkDP})
		rtOpt := optimize(cat, q, paropt.Config{
			Machine:   mc,
			Algorithm: paropt.PartialOrderDP,
			Bound:     paropt.ThroughputDegradation{K: 2},
		})

		simW := simulateRT(cat, q, paropt.Config{Machine: mc, Algorithm: paropt.WorkDP})
		simR := simulateRT(cat, q, paropt.Config{
			Machine: mc, Algorithm: paropt.PartialOrderDP,
			Bound: paropt.ThroughputDegradation{K: 2},
		})

		fmt.Printf("%3dc/%2dd | %12.1f %12.1f | %12.1f %12.1f | %8.1f %8.1f\n",
			size.cpus, size.disks,
			workOpt.RT(), rtOpt.RT(), workOpt.Work(), rtOpt.Work(), simW, simR)
	}
	fmt.Println()
	fmt.Println("Columns: model response time and work of the work-optimal vs the")
	fmt.Println("RT-optimal (k=2) plan, then simulator-measured response times.")
	fmt.Println("The RT optimizer's advantage grows with the machine: it buys")
	fmt.Println("latency with bounded extra work, the §2 dual objective.")
}

func optimize(cat *paropt.Catalog, q *paropt.Query, cfg paropt.Config) *paropt.Plan {
	opt, err := paropt.NewOptimizer(cat, q, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	return p
}

func simulateRT(cat *paropt.Catalog, q *paropt.Query, cfg paropt.Config) float64 {
	opt, err := paropt.NewOptimizer(cat, q, cfg)
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	res, err := opt.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	return res.RT
}
