// Parallelexec runs an optimized plan on the real goroutine execution
// engine at increasing parallelism degrees, verifying that every degree
// produces the identical result multiset and reporting wall-clock speedup —
// the cloning (intra-operator parallelism) of §4.1 made concrete.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"paropt"
)

func main() {
	cat, q := paropt.PortfolioWorkloadSmall(4)
	// Scale the fact table up a bit so parallelism has something to chew,
	// and drop the point selections so the join output is substantial.
	trades := cat.MustRelation("trades")
	trades.Card = 400_000
	trades.Pages = 4_000
	q.Selections = nil

	opt, err := paropt.NewOptimizer(cat, q, paropt.Config{
		Machine: paropt.MachineConfig{CPUs: runtime.NumCPU(), Disks: 4, Networks: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", p.Tree)
	fmt.Printf("model: rt=%.1f work=%.1f\n\n", p.RT(), p.Work())

	fmt.Println("generating data...")
	db := paropt.NewDatabase(cat, 7)

	fmt.Printf("%8s %12s %10s %10s\n", "degree", "wall-clock", "rows", "speedup")
	var base time.Duration
	var want uint64
	for _, deg := range []int{1, 2, 4, 8} {
		start := time.Now()
		res, err := opt.Execute(p, db, deg)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if deg == 1 {
			base = elapsed
			want = res.Fingerprint()
		} else if res.Fingerprint() != want {
			log.Fatalf("degree %d produced a different result!", deg)
		}
		fmt.Printf("%8d %12s %10d %9.2fx\n",
			deg, elapsed.Round(time.Millisecond), res.Len(),
			float64(base)/float64(elapsed))
	}
	fmt.Println("\nAll degrees produced identical result multisets (fingerprint-checked).")
	if runtime.NumCPU() == 1 {
		fmt.Println("(single-core host: expect speedup ≈ 1; run on a multi-core box to see it grow)")
	}
}
