// Paperexamples replays Examples 1, 2 and 3 of the paper verbatim:
//
//	Example 1 (§4.2): macro expansion of nested-loops(sort-merge(R1,R2),R3)
//	  into an operator tree with its annotation table.
//	Example 2 (§5.1): the time-descriptor computation, reproducing the
//	  paper's table — sort1=(6,6), sort2=(13,13), merge=(13,15),
//	  nloops=(13,15).
//	Example 3 (§6.1.3): response time violating the principle of
//	  optimality — RT(p1)=20 < RT(p2)=25 yet the extension of p1 costs 60
//	  while the extension of p2 costs 40.
package main

import (
	"fmt"
	"log"

	"paropt"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
)

func main() {
	example1()
	example2()
	example3()
}

// example1 expands the join tree of Example 1 and prints the annotation
// table in the paper's format.
func example1() {
	fmt.Println("=== Example 1 (§4.2): operator tree of NL(SM(R1,R2), R3) ===")
	cat := paropt.NewCatalog()
	for i, card := range []int64{50_000, 40_000, 30_000} {
		name := fmt.Sprintf("R%d", i+1)
		cat.MustAddRelation(paropt.Relation{
			Name: name,
			Columns: []paropt.Column{
				{Name: "id", NDV: card, Width: 8},
				{Name: "fk", NDV: card / 10, Width: 8},
			},
			Card: card, Pages: card / 50, Disk: i,
		})
	}
	col := func(r, c string) paropt.ColumnRef { return paropt.ColumnRef{Relation: r, Column: c} }
	q := &paropt.Query{
		Name:      "example1",
		Relations: []string{"R1", "R2", "R3"},
		Joins: []paropt.JoinPredicate{
			{Left: col("R1", "id"), Right: col("R2", "fk")},
			{Left: col("R2", "id"), Right: col("R3", "fk")},
		},
	}
	if err := q.Validate(cat); err != nil {
		log.Fatal(err)
	}
	est := paropt.NewEstimator(cat, q)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	r3, _ := est.Leaf("R3", plan.SeqScan, nil)
	sm, _ := est.Join(r1, r2, plan.SortMerge)
	nl, err := est.Join(sm, r3, plan.NestedLoops)
	if err != nil {
		log.Fatal(err)
	}
	op, err := optree.Expand(nl, est, optree.DefaultExpandOptions())
	if err != nil {
		log.Fatal(err)
	}
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	optree.Annotate(op, m, est, optree.DefaultAnnotateOptions())
	fmt.Printf("join tree:     %s\n", nl)
	fmt.Printf("operator tree: %s\n\n", op)
	fmt.Print(op.AnnotationTable())
	fmt.Println()
}

// example2 reruns the paper's hypothetical time descriptors through the
// calculus.
func example2() {
	fmt.Println("=== Example 2 (§5.1): time-descriptor computation ===")
	scanR1 := cost.TD(0, 1)
	scanR2 := cost.TD(0, 3)
	scanR3 := cost.TD(0, 2)
	sort1 := scanR1.Pipe(cost.TD(5, 5)).Sync()
	sort2 := scanR2.Pipe(cost.TD(10, 10)).Sync()
	merge := cost.Tree(sort1, sort2, cost.TD(0, 2))
	nloops := cost.Tree(merge, scanR3, cost.TD(0, 2))
	fmt.Printf("%-8s %-10s %-34s %s\n", "Oper.", "(tf,tl)", "formula", "value")
	fmt.Printf("%-8s %-10s %-34s %s\n", "scan R1", "(0,1)", "", scanR1)
	fmt.Printf("%-8s %-10s %-34s %s\n", "scan R2", "(0,3)", "", scanR2)
	fmt.Printf("%-8s %-10s %-34s %s\n", "scan R3", "(0,2)", "", scanR3)
	fmt.Printf("%-8s %-10s %-34s %s\n", "sort1", "(5,5)", "sync((0,1)|(5,5))", sort1)
	fmt.Printf("%-8s %-10s %-34s %s\n", "sort2", "(10,10)", "sync((0,3)|(10,10))", sort2)
	fmt.Printf("%-8s %-10s %-34s %s\n", "merge", "(0,2)", "tree((6,6),(13,13),(0,2))", merge)
	fmt.Printf("%-8s %-10s %-34s %s\n", "n.loops", "(0,2)", "tree((13,15),(0,2),(0,2))", nloops)
	fmt.Println("\npaper's values: sort1=(6,6) sort2=(13,13) merge=(13,15) n.loops=(13,15)")
	fmt.Println()
}

// example3 replays the optimality violation with the resource-vector
// calculus at the paper's exact numbers.
func example3() {
	fmt.Println("=== Example 3 (§6.1.3): response time violates optimality ===")
	// Resources: (disk1, disk2).
	p1 := cost.ResDescriptor{First: cost.ZeroRV(2), Last: cost.RV(20, cost.Vec{20, 0})}
	p2 := cost.ResDescriptor{First: cost.ZeroRV(2), Last: cost.RV(25, cost.Vec{0, 25})}
	join := cost.ResDescriptor{First: cost.ZeroRV(2), Last: cost.RV(40, cost.Vec{40, 0})}
	nl1 := p1.Pipe(join, 0)
	nl2 := p2.Pipe(join, 0)
	fmt.Printf("p1 = indexScan(I_CT): usage %v  → RT %g\n", p1.Last, p1.RT())
	fmt.Printf("p2 = indexScan(I_CR): usage %v  → RT %g\n", p2.Last, p2.RT())
	fmt.Printf("NL(*, indexScan(I_C)) own usage: %v\n\n", join.Last)
	fmt.Printf("NL(p1, indexScan(I_C)): usage %v → RT %g\n", nl1.Last, nl1.RT())
	fmt.Printf("NL(p2, indexScan(I_C)): usage %v → RT %g\n", nl2.Last, nl2.RT())
	fmt.Printf("\nRT(p1)=%g < RT(p2)=%g, but RT(NL(p1,·))=%g > RT(NL(p2,·))=%g:\n",
		p1.RT(), p2.RT(), nl1.RT(), nl2.RT())
	fmt.Println("the better subplan yields the worse plan — the principle of")
	fmt.Println("optimality fails for response time, so Figure 1's DP is unsound")
	fmt.Println("and Figure 2's partial-order DP (keeping both incomparable")
	fmt.Println("resource vectors) is required.")
}
