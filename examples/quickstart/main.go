// Quickstart: build a schema, pose an SPJ query, optimize it for response
// time under a work bound, and inspect the chosen parallel plan.
package main

import (
	"fmt"
	"log"

	"paropt"
)

func main() {
	// A small warehouse schema spread over four disks.
	cat := paropt.NewCatalog()
	cat.MustAddRelation(paropt.Relation{
		Name: "orders",
		Columns: []paropt.Column{
			{Name: "order_id", NDV: 500_000, Width: 8},
			{Name: "cust_id", NDV: 40_000, Width: 8},
			{Name: "part_id", NDV: 10_000, Width: 8},
		},
		Card: 500_000, Pages: 5_000, Disk: 0,
	})
	cat.MustAddRelation(paropt.Relation{
		Name: "customers",
		Columns: []paropt.Column{
			{Name: "cust_id", NDV: 40_000, Width: 8},
			{Name: "region", NDV: 25, Width: 8},
		},
		Card: 40_000, Pages: 400, Disk: 1,
	})
	cat.MustAddRelation(paropt.Relation{
		Name: "parts",
		Columns: []paropt.Column{
			{Name: "part_id", NDV: 10_000, Width: 8},
			{Name: "supplier", NDV: 500, Width: 8},
		},
		Card: 10_000, Pages: 100, Disk: 2,
	})
	cat.MustAddIndex(paropt.Index{
		Name: "customers_pk", Relation: "customers", Columns: []string{"cust_id"},
		Clustered: true, Disk: 1,
	})

	// SELECT * FROM orders, customers, parts
	// WHERE orders.cust_id = customers.cust_id
	//   AND orders.part_id = parts.part_id AND customers.region = 7.
	col := func(r, c string) paropt.ColumnRef { return paropt.ColumnRef{Relation: r, Column: c} }
	q := &paropt.Query{
		Name:      "orders-by-region",
		Relations: []string{"orders", "customers", "parts"},
		Joins: []paropt.JoinPredicate{
			{Left: col("orders", "cust_id"), Right: col("customers", "cust_id")},
			{Left: col("orders", "part_id"), Right: col("parts", "part_id")},
		},
		Selections: []paropt.Selection{{Column: col("customers", "region"), Value: 7}},
	}

	// Minimize response time, allowing at most 1.5× the optimal work —
	// the paper's §2 formulation with a throughput-degradation bound.
	opt, err := paropt.NewOptimizer(cat, q, paropt.Config{
		Machine: paropt.MachineConfig{CPUs: 4, Disks: 4, Networks: 1},
		Bound:   paropt.ThroughputDegradation{K: 1.5},
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt.Explain(p))

	// Validate the prediction on the machine simulator.
	res, err := opt.Simulate(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulator: rt=%.1f (model said %.1f), utilization %.0f%%\n",
		res.RT, p.RT(), 100*res.Utilization())

	// And actually run it on generated data with 4-way parallelism.
	db := paropt.NewDatabase(cat, 1)
	rows, err := opt.Execute(p, db, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed for real: %d result rows\n", rows.Len())
}
