// Explain demonstrates the optimizer's observability surface: a traced
// partial-order DP run, the chosen plan's per-operator cost breakdown, its
// Graphviz rendering, a simulated execution timeline, and a grouped
// aggregation of the real result — everything a user needs to see *why* a
// plan was chosen and what it does.
package main

import (
	"fmt"
	"log"
	"os"

	"paropt"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/search"
)

func main() {
	cat, q := paropt.PortfolioWorkloadSmall(4)
	q.Selections = nil // keep the demo result non-empty

	// 1. Trace the search itself.
	fmt.Println("=== search trace (partial-order DP) ===")
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	model := cost.NewModel(cat, m, est, cost.DefaultParams())
	s := search.New(search.Options{
		Model:              model,
		Expand:             optree.DefaultExpandOptions(),
		Annotate:           optree.DefaultAnnotateOptions(),
		AvoidCrossProducts: true,
		Trace:              &search.WriterTracer{W: os.Stdout},
	})
	res, err := s.PODPLeftDeep()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Per-operator cost breakdown of the winner.
	fmt.Println("\n=== cost breakdown ===")
	op, err := optree.Expand(res.Best.Node, est, optree.DefaultExpandOptions())
	if err != nil {
		log.Fatal(err)
	}
	optree.Annotate(op, m, est, optree.DefaultAnnotateOptions())
	fmt.Print(model.BreakdownTable(op))

	// 3. Graphviz rendering (pipe to `dot -Tpng`).
	fmt.Println("\n=== graphviz ===")
	fmt.Print(op.Dot(q.Name))

	// 4. Simulated execution timeline.
	fmt.Println("\n=== simulated timeline ===")
	sres, err := paropt.Simulate(op, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sres.Timeline(56))

	// 5. Run it for real and aggregate by sector (the §1 scenario's
	// "graph the results by category").
	fmt.Println("\n=== executed + grouped by sector ===")
	db := paropt.NewDatabase(cat, 7)
	opt, err := paropt.NewOptimizer(cat, q, paropt.Config{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	rows, err := opt.Execute(p, db, 2)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := rows.GroupBy(
		[]paropt.ColumnRef{{Relation: "sectors", Column: "name"}},
		paropt.ColumnRef{Relation: "trades", Column: "amount"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d result rows in %d sector groups; first groups:\n", rows.Len(), len(groups))
	for i, g := range groups {
		if i == 5 {
			break
		}
		fmt.Printf("  sector %v: count=%d sum(amount)=%d\n", g.Key, g.Count, g.Sum)
	}
}
