// Extension benchmarks: the §7 future-work features built in this
// reproduction (two-phase baseline, non-exhaustive search, memory
// constraint, scheduling policies) and the TPC-H-like workload.
package paropt_test

import (
	"fmt"
	"testing"

	"paropt"
	"paropt/internal/engine"
	"paropt/internal/machine"
	"paropt/internal/sim"
	"paropt/internal/storage"
	"paropt/internal/workload"
)

// BenchmarkBaselines compares the recommended algorithm with the §1/§7
// alternatives on the portfolio query: plan quality (rt metric) and search
// cost (plans-considered metric).
func BenchmarkBaselines(b *testing.B) {
	algs := []paropt.Algorithm{
		paropt.PartialOrderDP, paropt.TwoPhase,
		paropt.IterativeImprovement, paropt.SimulatedAnnealing,
	}
	for _, alg := range algs {
		b.Run(alg.String(), func(b *testing.B) {
			cat, q := workload.Portfolio(4)
			opt, err := paropt.NewOptimizer(cat, q, paropt.Config{Algorithm: alg})
			if err != nil {
				b.Fatal(err)
			}
			var p *paropt.Plan
			for i := 0; i < b.N; i++ {
				p, err = opt.Optimize()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.RT(), "rt")
			b.ReportMetric(float64(p.Stats.PlansConsidered), "plans-considered")
		})
	}
}

// BenchmarkSchedulingPolicies measures simulated response time under the
// preemptive (paper assumption) and non-preemptive schedulers.
func BenchmarkSchedulingPolicies(b *testing.B) {
	cat, q := workload.Portfolio(4)
	opt, err := paropt.NewOptimizer(cat, q, paropt.Config{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []sim.Policy{sim.ProcessorSharing, sim.RunToCompletion} {
		b.Run(pol.String(), func(b *testing.B) {
			var res *sim.Result
			for i := 0; i < b.N; i++ {
				res, err = sim.SimulateWithPolicy(p.Op, opt.Mod, pol)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.RT, "sim-rt")
		})
	}
}

// BenchmarkMemoryBound measures the cost of tightening the §7 memory
// constraint: response time of the best plan that fits.
func BenchmarkMemoryBound(b *testing.B) {
	cat, q := workload.Portfolio(4)
	free, err := paropt.NewOptimizer(cat, q, paropt.Config{})
	if err != nil {
		b.Fatal(err)
	}
	pFree, err := free.Optimize()
	if err != nil {
		b.Fatal(err)
	}
	peak := free.Mod.MemoryEstimate(pFree.Op).PeakPages
	for _, frac := range []float64{1, 0.5, 0.25} {
		limit := int64(float64(peak) * frac)
		if limit < 1 {
			limit = 1
		}
		b.Run(fmt.Sprintf("limit=%dpages", limit), func(b *testing.B) {
			opt, err := paropt.NewOptimizer(cat, q, paropt.Config{MemoryPages: limit})
			if err != nil {
				b.Fatal(err)
			}
			var p *paropt.Plan
			for i := 0; i < b.N; i++ {
				p, err = opt.Optimize()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.RT(), "rt")
			b.ReportMetric(float64(opt.Mod.MemoryEstimate(p.Op).PeakPages), "peak-pages")
		})
	}
}

// BenchmarkTPCH optimizes the three TPC-H-like queries end to end.
func BenchmarkTPCH(b *testing.B) {
	cat, queries := workload.TPCHLike(4, 1)
	for _, q := range queries {
		b.Run(q.Name, func(b *testing.B) {
			opt, err := paropt.NewOptimizer(cat, q, paropt.Config{
				Machine: machine.Config{CPUs: 4, Disks: 4, Networks: 1},
				Bound:   paropt.ThroughputDegradation{K: 2},
			})
			if err != nil {
				b.Fatal(err)
			}
			var p *paropt.Plan
			for i := 0; i < b.N; i++ {
				p, err = opt.Optimize()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.RT(), "rt")
			b.ReportMetric(p.Work(), "work")
		})
	}
}

// BenchmarkCalibratedVsDefault optimizes with default vs a synthetic
// "slow-CPU" parameterization, showing parameter sensitivity (the reason
// internal/calibrate exists).
func BenchmarkCalibratedVsDefault(b *testing.B) {
	cat, q := workload.Portfolio(4)
	slow := paropt.DefaultCostParams()
	slow.CPUTuple *= 20
	slow.CPUCompare *= 20
	for _, tc := range []struct {
		name   string
		params paropt.CostParams
	}{
		{"default", paropt.DefaultCostParams()},
		{"cpu-bound", slow},
	} {
		b.Run(tc.name, func(b *testing.B) {
			params := tc.params
			opt, err := paropt.NewOptimizer(cat, q, paropt.Config{Params: &params})
			if err != nil {
				b.Fatal(err)
			}
			var p *paropt.Plan
			for i := 0; i < b.N; i++ {
				p, err = opt.Optimize()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(p.RT(), "rt")
		})
	}
}

// BenchmarkSkewImbalance quantifies the §5.2.1 footnote — the uniformity
// assumption "loses some ability to model hot spots" — as the max/mean
// partition-size ratio of a hash-partitioned join key under rising Zipf
// skew. The cost model predicts an even split (ratio 1); the real ratio is
// the factor by which a cloned join's slowest clone exceeds the model.
func BenchmarkSkewImbalance(b *testing.B) {
	for _, skew := range []float64{0, 0.5, 1, 2} {
		b.Run(fmt.Sprintf("zipf=%g", skew), func(b *testing.B) {
			cat := paropt.NewCatalog()
			rel := cat.MustAddRelation(paropt.Relation{
				Name:    "S",
				Columns: []paropt.Column{{Name: "k", NDV: 10_000, Width: 8, Skew: skew}},
				Card:    100_000,
				Pages:   1_000,
			})
			tab := storage.Generate(rel, 5)
			var imb float64
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				imb, err = engine.PartitionImbalance(tab, "k", 8)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(imb, "max-over-mean")
		})
	}
}
