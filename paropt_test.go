package paropt

import (
	"strings"
	"testing"
)

// TestQuickstartFlow exercises the whole public API surface the way the
// README's quick start does.
func TestQuickstartFlow(t *testing.T) {
	cat, q := PortfolioWorkload(4)
	opt, err := NewOptimizer(cat, q, Config{
		Bound: ThroughputDegradation{K: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if p.RT() <= 0 || p.Baseline == nil {
		t.Fatalf("plan incomplete: rt=%g", p.RT())
	}
	if !strings.Contains(opt.Explain(p), "response time:") {
		t.Error("Explain output incomplete")
	}
	res, err := opt.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.RT <= 0 {
		t.Error("simulation empty")
	}
}

func TestHandBuiltCatalog(t *testing.T) {
	cat := NewCatalog()
	cat.MustAddRelation(Relation{
		Name: "emp",
		Columns: []Column{
			{Name: "id", NDV: 10_000, Width: 8},
			{Name: "dept_id", NDV: 100, Width: 8},
		},
		Card: 10_000, Pages: 100, Disk: 0,
	})
	cat.MustAddRelation(Relation{
		Name: "dept",
		Columns: []Column{
			{Name: "id", NDV: 100, Width: 8},
			{Name: "budget", NDV: 50, Width: 8},
		},
		Card: 100, Pages: 1, Disk: 1,
	})
	cat.MustAddIndex(Index{Name: "dept_pk", Relation: "dept", Columns: []string{"id"}, Clustered: true, Disk: 1})
	q := &Query{
		Name:      "emp-dept",
		Relations: []string{"emp", "dept"},
		Joins: []JoinPredicate{{
			Left:  ColumnRef{Relation: "emp", Column: "dept_id"},
			Right: ColumnRef{Relation: "dept", Column: "id"},
		}},
	}
	opt, err := NewOptimizer(cat, q, Config{Machine: MachineConfig{CPUs: 2, Disks: 2}})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase(cat, 1)
	res, err := opt.Execute(p, db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Error("execution returned no rows")
	}
}

func TestGeneratedWorkloadAllAlgorithms(t *testing.T) {
	cfg := GenConfig{
		Relations: 4, Shape: Star, MinCard: 1000, MaxCard: 100_000,
		Disks: 4, IndexProb: 0.5, Seed: 2,
	}
	cat, q := Generate(cfg)
	for _, alg := range []Algorithm{PartialOrderDP, WorkDP, PartialOrderDPBushy} {
		opt, err := NewOptimizer(cat, q, Config{Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Optimize(); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
	}
}

func TestSimulateViaFacade(t *testing.T) {
	cat, q := PortfolioWorkloadSmall(2)
	opt, err := NewOptimizer(cat, q, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(p.Op, opt.Mod)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization() <= 0 {
		t.Error("utilization should be positive")
	}
}

func TestDefaultCostParams(t *testing.T) {
	p := DefaultCostParams()
	if p.IOPage != 1 || p.PipelineK <= 0 {
		t.Errorf("unexpected defaults: %+v", p)
	}
}

func TestTPCHWorkloadFacade(t *testing.T) {
	cat, queries := TPCHWorkload(4, 1)
	if len(queries) != 3 {
		t.Fatalf("queries = %d", len(queries))
	}
	opt, err := NewOptimizer(cat, queries[0], Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if p.RT() <= 0 {
		t.Error("empty plan cost")
	}
}

func TestMisestimationFacade(t *testing.T) {
	cat, q := PortfolioWorkload(2)
	d := DistortNDVs(cat, 2)
	if d.MustRelation("trades").MustColumn("stock_id").NDV !=
		2*cat.MustRelation("trades").MustColumn("stock_id").NDV {
		t.Error("DistortNDVs facade broken")
	}
	chosen, optimum, err := MisestimationRegret(cat, q, Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if chosen < optimum-1e-6 {
		t.Errorf("regret below 1: %g vs %g", chosen, optimum)
	}
}
