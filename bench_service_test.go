// Serving-layer benchmarks: the plan-cache hot path of internal/service.
// BenchmarkServiceCacheMiss pays a full partial-order DP search (plus the
// work-optimal baseline) per request; BenchmarkServiceCacheHit re-filters
// the cached cover set under a per-request work bound. The acceptance
// target is hit ≥ 10× faster than miss on this 6-relation chain.
package paropt_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"paropt"
)

// serviceChainCatalog is a 6-relation chain: R1.b=R2.a, ..., R5.b=R6.a.
func serviceChainCatalog() *paropt.Catalog {
	cat := paropt.NewCatalog()
	cards := []int64{50_000, 80_000, 60_000, 90_000, 70_000, 40_000}
	ndvB := []int64{2_000, 4_000, 3_000, 5_000, 2_500, 1_000}
	prevB := int64(50_000)
	for i, card := range cards {
		cat.MustAddRelation(paropt.Relation{
			Name: fmt.Sprintf("R%d", i+1),
			Columns: []paropt.Column{
				{Name: "a", NDV: prevB, Width: 8},
				{Name: "b", NDV: ndvB[i], Width: 8},
			},
			Card:  card,
			Pages: card / 100,
			Disk:  i % 4,
		})
		prevB = ndvB[i]
	}
	return cat
}

// serviceChainSQL joins the whole chain with a literal selection.
func serviceChainSQL(literal int) string {
	var preds []string
	for i := 1; i < 6; i++ {
		preds = append(preds, fmt.Sprintf("R%d.b = R%d.a", i, i+1))
	}
	preds = append(preds, fmt.Sprintf("R1.a = %d", literal))
	return "SELECT * FROM R1, R2, R3, R4, R5, R6 WHERE " + strings.Join(preds, " AND ")
}

func newBenchService(b *testing.B, mutate func(*paropt.ServiceConfig)) *paropt.Service {
	b.Helper()
	cfg := paropt.ServiceConfig{Catalog: serviceChainCatalog()}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := paropt.NewService(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	return svc
}

// tracingOff disables the request tracer; the headline benchmarks measure
// the untraced fast path, the *Traced variants measure the overhead of the
// default (tracing-on) configuration.
func tracingOff(cfg *paropt.ServiceConfig) { cfg.TraceCapacity = -1 }

func benchServiceCacheMiss(b *testing.B, mutate func(*paropt.ServiceConfig)) {
	svc := newBenchService(b, mutate)
	ctx := context.Background()
	req := paropt.OptimizeRequest{Query: serviceChainSQL(7)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		svc.InvalidateCache()
		if _, err := svc.Optimize(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(svc.Metrics().FullSearch.Load())/float64(b.N), "searches/op")
}

func benchServiceCacheHit(b *testing.B, mutate func(*paropt.ServiceConfig)) {
	svc := newBenchService(b, mutate)
	ctx := context.Background()
	if _, err := svc.Optimize(ctx, paropt.OptimizeRequest{Query: serviceChainSQL(0)}); err != nil {
		b.Fatal(err) // warm the cache
	}
	ks := []float64{0, 1.2, 1.5, 2, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := paropt.OptimizeRequest{Query: serviceChainSQL(i + 1), K: ks[i%len(ks)]}
		resp, err := svc.Optimize(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CoverSetReused {
			b.Fatalf("iteration %d missed the cache", i)
		}
	}
	b.StopTimer()
	if got := svc.Metrics().FullSearch.Load(); got != 1 {
		b.Fatalf("hit benchmark ran %d searches, want 1", got)
	}
	b.ReportMetric(float64(svc.Metrics().CoverReuse.Load())/float64(b.N), "reuses/op")
}

// BenchmarkServiceCacheMiss is the cold path: every request runs the DP
// search and the work-optimal baseline from scratch. Tracing off.
func BenchmarkServiceCacheMiss(b *testing.B) { benchServiceCacheMiss(b, tracingOff) }

// BenchmarkServiceCacheMissTraced is the same cold path with the default
// request tracer recording a span tree per request.
func BenchmarkServiceCacheMissTraced(b *testing.B) { benchServiceCacheMiss(b, nil) }

// BenchmarkServiceCacheHit is the warm path: parameter-varying instances of
// one template with per-request work bounds, every one answered by
// re-filtering the cached cover set. Tracing off.
func BenchmarkServiceCacheHit(b *testing.B) { benchServiceCacheHit(b, tracingOff) }

// BenchmarkServiceCacheHitTraced is the same warm path with the default
// request tracer recording a span tree per request.
func BenchmarkServiceCacheHitTraced(b *testing.B) { benchServiceCacheHit(b, nil) }
