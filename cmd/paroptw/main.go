// Command paroptw is the shared-nothing execution worker: it serves join
// fragments over TCP for paroptd's distributed analyze path. The daemon's
// coordinator dials one connection per fragment, streams both hash-partitioned
// inputs under credit-based flow control, and the worker runs the fragment's
// join (the same engine.FragmentJoin the in-process transport uses) and
// streams result batches back.
//
// Usage:
//
//	paroptw [-listen 127.0.0.1:0] [-daemon http://localhost:7077]
//	        [-advertise host:port] [-window 16]
//
// With -daemon the worker registers its address at POST /cluster/register on
// startup and deregisters on SIGINT/SIGTERM. -advertise overrides the
// registered address when the listen address is not reachable as-is (e.g.
// binding 0.0.0.0). Without -daemon the worker just serves; register it by
// hand.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "fragment listen address")
	daemon := flag.String("daemon", "", "paroptd base URL to register with (empty = no registration)")
	advertise := flag.String("advertise", "", "address to register at the daemon (default: the resolved listen address)")
	window := flag.Int("window", 0, "per-direction credit window (0 = default)")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("paroptw: %v", err)
	}
	addr := ln.Addr().String()
	reg := *advertise
	if reg == "" {
		reg = addr
	}
	log.Printf("paroptw: serving fragments on %s", addr)

	if *daemon != "" {
		if err := postCluster(*daemon, "/cluster/register", reg); err != nil {
			log.Fatalf("paroptw: register with %s: %v", *daemon, err)
		}
		log.Printf("paroptw: registered %s with %s", reg, *daemon)
	}

	w := &exchange.Worker{Join: engine.FragmentJoin, Window: *window}
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("paroptw: %v", err)
	case <-sig:
	}
	log.Printf("paroptw: shutting down")
	if *daemon != "" {
		if err := postCluster(*daemon, "/cluster/deregister", reg); err != nil {
			log.Printf("paroptw: deregister: %v", err)
		}
	}
	ln.Close()
}

// postCluster posts {"addr": addr} to the daemon's cluster endpoint.
func postCluster(base, path, addr string) error {
	body, err := json.Marshal(map[string]string{"addr": addr})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}
