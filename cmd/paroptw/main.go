// Command paroptw is the shared-nothing execution worker: it serves join
// fragments over TCP for paroptd's distributed analyze path. The daemon's
// coordinator dials one connection per fragment and streams hash-partitioned
// inputs under credit-based flow control; the worker runs the fragment's
// join (the same engine.FragmentJoin the in-process transport uses) and
// streams result batches back. When a placement map is installed at the
// daemon, fragments arrive with leaf-scan specs instead of streamed inputs
// and the worker sources those partitions from its local placement store —
// bootstrapped from GET /cluster/placement (catalog snapshot + assignments)
// and prewarmed with the shards this worker owns.
//
// Usage:
//
//	paroptw [-listen 127.0.0.1:0] [-daemon http://localhost:7077]
//	        [-advertise host:port] [-window 16]
//	        [-heartbeat 5s] [-max-reconnect 120]
//	        [-http 127.0.0.1:0] [-debug-addr localhost:0]
//
// With -daemon the worker registers its address at POST /cluster/register on
// startup (retrying with backoff while the daemon is unreachable) and keeps
// re-registering on every heartbeat — registration is idempotent, so a
// daemon restart that loses the membership table is healed by the next
// heartbeat instead of the worker silently dropping out of the cluster. The
// heartbeat also refreshes the placement map when its fingerprint changes.
// After -max-reconnect consecutive heartbeat failures the worker exits
// nonzero so a supervisor can restart it (0 = retry forever). -advertise
// overrides the registered address when the listen address is not reachable
// as-is (e.g. binding 0.0.0.0). Without -daemon the worker just serves;
// register it by hand.
//
// The worker also serves its own observability plane on -http: GET /healthz
// (uptime, fragments served/failed, shipped scans, rows/batches emitted,
// result-window stall seconds, cached shard rows) and GET /metrics (the same
// counters as paroptw_* Prometheus families). The HTTP URL rides along with
// the registration, so the daemon's GET /cluster/metrics can scrape the
// fleet and report per-worker liveness. -http "" disables the listener (the
// worker then registers address-only, like pre-observability builds).
// -debug-addr starts a separate net/http/pprof listener, kept off both the
// fragment port and the metrics port.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/placement"
	"paropt/internal/storage"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "fragment listen address")
	daemon := flag.String("daemon", "", "paroptd base URL to register with (empty = no registration)")
	advertise := flag.String("advertise", "", "address to register at the daemon (default: the resolved listen address)")
	window := flag.Int("window", 0, "per-direction credit window (0 = default)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "re-register and placement-refresh interval")
	maxReconnect := flag.Int("max-reconnect", 120, "consecutive failed heartbeats before exiting (0 = retry forever)")
	httpAddr := flag.String("http", "127.0.0.1:0", "listener for the worker's own /metrics and /healthz (empty = disabled)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled)")
	flag.Parse()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("paroptw: %v", err)
	}
	addr := ln.Addr().String()
	reg := *advertise
	if reg == "" {
		reg = addr
	}
	log.Printf("paroptw: serving fragments on %s", addr)

	box := &storeBox{daemon: *daemon, self: reg, client: &http.Client{Timeout: 10 * time.Second}}
	stats := &exchange.WorkerStats{}
	w := &exchange.Worker{Join: engine.FragmentJoin, Window: *window, Store: box, ID: reg, Stats: stats}
	errc := make(chan error, 1)
	go func() { errc <- w.Serve(ln) }()

	// The worker's own observability plane. Its URL rides along with the
	// registration so the daemon can scrape the fleet.
	httpURL := ""
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("paroptw: http listener: %v", err)
		}
		httpURL = "http://" + hln.Addr().String()
		hsrv := &http.Server{
			Handler:           obsMux(reg, stats, box, time.Now()),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := hsrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				log.Printf("paroptw: http listener: %v", err)
			}
		}()
		defer hsrv.Close()
		log.Printf("paroptw: metrics on %s/metrics", httpURL)
	}
	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("paroptw: debug listener: %v", err)
			}
		}()
		defer dbg.Close()
		log.Printf("paroptw: pprof on %s/debug/pprof/", *debugAddr)
	}

	fatalc := make(chan error, 1)
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	if *daemon != "" {
		if err := registerWithRetry(*daemon, reg, httpURL, *maxReconnect); err != nil {
			log.Fatalf("paroptw: register with %s: %v", *daemon, err)
		}
		log.Printf("paroptw: registered %s with %s", reg, *daemon)
		if err := box.refresh(); err != nil {
			log.Printf("paroptw: placement prefetch: %v", err)
		}
		go heartbeatLoop(*daemon, reg, httpURL, box, *heartbeat, *maxReconnect, fatalc, hbStop, hbDone)
	} else {
		close(hbDone)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("paroptw: %v", err)
	case err := <-fatalc:
		log.Fatalf("paroptw: %v", err)
	case <-sig:
	}
	log.Printf("paroptw: shutting down")
	// Quiesce the heartbeat before deregistering: an in-flight heartbeat
	// landing after the deregister would re-register the dying worker.
	close(hbStop)
	<-hbDone
	if *daemon != "" {
		if err := postCluster(*daemon, "/cluster/deregister", reg, ""); err != nil {
			log.Printf("paroptw: deregister: %v", err)
		}
	}
	ln.Close()
}

// registerWithRetry posts the worker's address to the daemon, retrying with
// a fixed backoff while the daemon is unreachable (it may still be coming
// up). maxAttempts <= 0 retries forever.
func registerWithRetry(daemon, addr, httpURL string, maxAttempts int) error {
	const backoff = time.Second
	var lastErr error
	for attempt := 1; maxAttempts <= 0 || attempt <= maxAttempts; attempt++ {
		lastErr = postCluster(daemon, "/cluster/register", addr, httpURL)
		if lastErr == nil {
			return nil
		}
		if attempt == 1 || attempt%10 == 0 {
			log.Printf("paroptw: register attempt %d: %v (retrying)", attempt, lastErr)
		}
		time.Sleep(backoff)
	}
	return lastErr
}

// obsMux serves the worker's own observability endpoints: /healthz as JSON
// for the daemon's fleet scrape, /metrics as Prometheus text.
func obsMux(id string, stats *exchange.WorkerStats, box *storeBox, start time.Time) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		shards, rows := box.shardStats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
			"status":         "ok",
			"worker":         id,
			"uptime_seconds": int64(time.Since(start).Seconds()),
			"stats":          stats.Snapshot(),
			"shards":         shards,
			"shard_rows":     rows,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s := stats.Snapshot()
		shards, rows := box.shardStats()
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		gauge := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
		}
		gauge("paroptw_uptime_seconds", "Seconds since the worker started.", int64(time.Since(start).Seconds()))
		counter("paroptw_fragments_served_total", "Join fragments finished cleanly.", s.FragmentsServed)
		counter("paroptw_fragments_failed_total", "Join fragments that ended in an error frame.", s.FragmentsFailed)
		counter("paroptw_shipped_scans_total", "Scan sides sourced from the local placement store.", s.ShippedScans)
		counter("paroptw_rows_emitted_total", "Result rows streamed back to coordinators.", s.RowsEmitted)
		counter("paroptw_batches_emitted_total", "Result batches streamed back to coordinators.", s.BatchesEmitted)
		fmt.Fprintf(w, "# HELP paroptw_result_stall_seconds_total Seconds blocked on the result credit window (backpressure from coordinators).\n# TYPE paroptw_result_stall_seconds_total counter\nparoptw_result_stall_seconds_total %g\n", s.ResultStallSeconds)
		gauge("paroptw_active_fragments", "Fragments currently executing.", s.ActiveFragments)
		gauge("paroptw_staged_bytes", "Bytes of shipped-scan partitions currently staged for in-flight fragments.", s.StagedBytes)
		counter("paroptw_fragments_cancelled_total", "Fragments abandoned on a coordinator cancel frame.", s.Cancelled)
		gauge("paroptw_store_shards", "Placement shards materialized in the local store.", int64(shards))
		gauge("paroptw_store_rows", "Rows held across materialized placement shards.", rows)
	})
	return mux
}

// pprofMux serves net/http/pprof on its own mux, so profiling stays off the
// fragment and metrics ports (and off http.DefaultServeMux).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// heartbeatLoop keeps the worker registered and its placement store fresh.
// Registration is idempotent on the daemon side (the epoch only advances on
// real membership changes), so the steady-state heartbeat is free; after a
// daemon restart it re-establishes membership instead of letting the worker
// drop out silently. maxFail consecutive failures abort via fatalc. Closing
// stop ends the loop; done is closed on return so shutdown can wait out an
// in-flight heartbeat before deregistering.
func heartbeatLoop(daemon, addr, httpURL string, box *storeBox, every time.Duration, maxFail int, fatalc chan<- error, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	fails := 0
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if err := postCluster(daemon, "/cluster/register", addr, httpURL); err != nil {
			fails++
			if fails == 1 || fails%10 == 0 {
				log.Printf("paroptw: heartbeat %d failed: %v", fails, err)
			}
			if maxFail > 0 && fails >= maxFail {
				fatalc <- fmt.Errorf("daemon unreachable for %d heartbeats: %w", fails, err)
				return
			}
			continue
		}
		if fails > 0 {
			log.Printf("paroptw: re-registered %s with %s after %d failed heartbeats", addr, daemon, fails)
			fails = 0
		}
		if err := box.refresh(); err != nil {
			log.Printf("paroptw: placement refresh: %v", err)
		}
	}
}

// postCluster posts {"addr": addr} (plus the worker's HTTP base URL when it
// has one) to the daemon's cluster endpoint.
func postCluster(base, path, addr, httpURL string) error {
	doc := map[string]string{"addr": addr}
	if httpURL != "" {
		doc["http"] = httpURL
	}
	body, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", path, resp.StatusCode)
	}
	return nil
}

// placementDoc mirrors the daemon's GET /cluster/placement response.
type placementDoc struct {
	Map         *placement.Map      `json:"map"`
	Fingerprint string              `json:"fingerprint"`
	Epoch       int64               `json:"epoch"`
	Snapshot    catalog.SnapshotDoc `json:"snapshot"`
}

// storeBox is the worker's exchange.Store: a swappable placement store
// bootstrapped lazily from the daemon. The first shipped scan that arrives
// before a heartbeat has populated the store triggers a synchronous fetch,
// so a worker started mid-placement still serves it; if the daemon has no
// placement (or is unreachable) the scan fails cleanly and the coordinator
// falls back or retries elsewhere.
type storeBox struct {
	daemon string
	self   string
	client *http.Client

	mu    sync.Mutex // serializes refresh; fp is the installed fingerprint
	fp    string
	store atomic.Pointer[placement.Store]
}

// shardStats reports the local store's materialized shard count and rows
// (zeros before any placement is installed).
func (b *storeBox) shardStats() (int, int64) {
	if st := b.store.Load(); st != nil {
		return st.ShardStats()
	}
	return 0, 0
}

func (b *storeBox) ScanPartition(spec exchange.ScanSpec, part, parts int) ([]storage.Row, error) {
	if st := b.store.Load(); st != nil {
		return st.ScanPartition(spec, part, parts)
	}
	if b.daemon == "" {
		return nil, errors.New("paroptw: shipped scan but no -daemon to fetch placement from")
	}
	if err := b.refresh(); err != nil {
		return nil, fmt.Errorf("paroptw: fetch placement: %w", err)
	}
	st := b.store.Load()
	if st == nil {
		return nil, errors.New("paroptw: no placement installed at daemon")
	}
	return st.ScanPartition(spec, part, parts)
}

// refresh fetches the daemon's placement and rebuilds the local store when
// the fingerprint changed. A 404 (placement retired or never installed)
// clears the store so stale shards from an old catalog version are never
// served.
func (b *storeBox) refresh() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	resp, err := b.client.Get(b.daemon + "/cluster/placement")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		if b.fp != "" {
			log.Printf("paroptw: placement retired at daemon; clearing local shards")
			b.fp = ""
			b.store.Store(nil)
		}
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/cluster/placement: HTTP %d", resp.StatusCode)
	}
	var doc placementDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return err
	}
	if doc.Map == nil {
		return errors.New("/cluster/placement: empty map")
	}
	if doc.Fingerprint == b.fp {
		return nil
	}
	cat, err := catalog.FromSnapshot(doc.Snapshot)
	if err != nil {
		return fmt.Errorf("placement snapshot: %w", err)
	}
	st := placement.NewStore(cat, doc.Map.Seed)
	if err := st.Prewarm(doc.Map, b.self); err != nil {
		return fmt.Errorf("prewarm shards: %w", err)
	}
	b.store.Store(st)
	b.fp = doc.Fingerprint
	log.Printf("paroptw: placement %s installed (catalog %s, %d relations, epoch %d)",
		doc.Fingerprint, doc.Map.CatalogVersion, len(doc.Map.Assignments), doc.Epoch)
	return nil
}
