// Command coverset runs the Theorem 3 experiment: the expected cover-set
// size of m random points in l dimensions, measured against the paper's
// bound 2^l·(1 − (1 − 2^{−l})^m), for both the binary-dimension model
// (where the bound is tight) and continuous dimensions (where the paper's
// independence assumption is "optimistic").
//
// Usage:
//
//	coverset [-trials 200] [-seed 7]
package main

import (
	"flag"
	"fmt"

	"paropt/internal/search"
)

func main() {
	trials := flag.Int("trials", 200, "Monte Carlo trials per point")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	fmt.Println("Theorem 3 — expected cover-set size vs bound 2^l(1-(1-2^-l)^m)")
	fmt.Println()
	for _, dist := range []search.Dist{search.Binary, search.Continuous} {
		fmt.Printf("%s dimensions:\n", dist)
		fmt.Printf("  %4s %4s %12s %12s %8s\n", "l", "m", "measured", "bound", "2^l")
		for _, l := range []int{1, 2, 3, 4, 5} {
			for _, m := range []int{4, 16, 64, 256} {
				mean, bound := search.Theorem3Experiment(m, l, *trials, dist, *seed)
				fmt.Printf("  %4d %4d %12.3f %12.3f %8d\n", l, m, mean, bound, 1<<uint(l))
			}
		}
		fmt.Println()
	}
	fmt.Println("Binary dimensions respect the bound (it is the expected occupied-cell")
	fmt.Println("count); continuous dimensions exceed it at large m, which is the")
	fmt.Println("\"independence is optimistic\" caveat of §6.2 made concrete.")
}
