// Command table1 regenerates Table 1 of the paper ("Comparison of Search
// Algorithms"): for each algorithm it reports the measured number of plans
// considered and the peak number of plans stored, next to the paper's
// analytic formulas, over clique queries (where every join order is
// predicate-connected, so the closed forms are exact).
//
// Usage:
//
//	table1 [-min 2] [-max 7] [-bushymax 5] [-spaces]
package main

import (
	"flag"
	"fmt"
	"os"

	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/search"
)

func main() {
	minN := flag.Int("min", 2, "smallest relation count")
	maxN := flag.Int("max", 7, "largest relation count (left-deep algorithms)")
	bushyMax := flag.Int("bushymax", 5, "largest relation count for bushy/brute algorithms")
	spaces := flag.Bool("spaces", false, "print only the size-of-space columns (§6.4 discussion)")
	flag.Parse()

	if *spaces {
		printSpaces(*minN, *maxN)
		return
	}

	fmt.Println("Table 1 — Comparison of Search Algorithms (measured vs analytic)")
	fmt.Println()
	for n := *minN; n <= *maxN; n++ {
		fmt.Printf("n = %d relations (clique query)\n", n)
		fmt.Printf("  %-28s %14s %14s %12s %12s\n",
			"algorithm", "considered", "analytic", "stored", "analytic")
		row(n, "brute force for left-deep",
			func(s *search.Searcher) (*search.Result, error) { return s.BruteForceLeftDeep() },
			search.LeftDeepSpaceSize(n), 1, n <= *maxN)
		row(n, "DP for left-deep",
			func(s *search.Searcher) (*search.Result, error) { return s.DPLeftDeep() },
			search.DPLeftDeepPlansFormula(n), search.DPLeftDeepSpaceFormula(n), true)
		row(n, "p.o. DP for left-deep",
			func(s *search.Searcher) (*search.Result, error) { return s.PODPLeftDeep() },
			-1, -1, true)
		row(n, "brute force for bushy",
			func(s *search.Searcher) (*search.Result, error) { return s.BruteForceBushy() },
			search.BushySpaceSize(n), 1, n <= *bushyMax)
		row(n, "DP for bushy",
			func(s *search.Searcher) (*search.Result, error) { return s.DPBushy() },
			search.DPBushyPlansFormula(n), -1, n <= *bushyMax+1)
		row(n, "p.o. DP for bushy",
			func(s *search.Searcher) (*search.Result, error) { return s.PODPBushy() },
			-1, -1, n <= *bushyMax)
		fmt.Println()
	}
	fmt.Println("p.o. DP rows have no closed form: the paper bounds them by 2^l × the")
	fmt.Println("total-order counts (Theorem 3); compare the measured columns directly.")
}

// row runs one algorithm and prints its counters next to the formulas.
func row(n int, name string, run func(*search.Searcher) (*search.Result, error),
	analyticConsidered, analyticStored float64, enabled bool) {
	if !enabled {
		fmt.Printf("  %-28s %14s\n", name, "(skipped)")
		return
	}
	res, err := run(newCliqueSearcher(n))
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %s n=%d: %v\n", name, n, err)
		return
	}
	fmtF := func(f float64) string {
		if f < 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f", f)
	}
	fmt.Printf("  %-28s %14d %14s %12d %12s\n",
		name, res.Stats.PlansConsidered, fmtF(analyticConsidered),
		res.Stats.MaxLayerPlans, fmtF(analyticStored))
}

// newCliqueSearcher builds the counting fixture: a clique query with a
// single access path per relation.
func newCliqueSearcher(n int) *search.Searcher {
	cfg := query.GenConfig{
		Relations: n, Shape: query.Clique,
		MinCard: 1_000, MaxCard: 1_000_000,
		Disks: 4, Seed: 1,
	}
	cat, q := query.Generate(cfg)
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	return search.New(search.Options{
		Model:    cost.NewModel(cat, m, est, cost.DefaultParams()),
		Expand:   optree.DefaultExpandOptions(),
		Annotate: optree.DefaultAnnotateOptions(),
	})
}

// printSpaces reproduces the §6.4 size-of-space discussion, including the
// "three orders of magnitude at ten relations" observation.
func printSpaces(minN, maxN int) {
	if maxN < 10 {
		maxN = 10
	}
	fmt.Printf("%4s %18s %22s %10s\n", "n", "left-deep (n!)", "bushy ((2(n-1))!/(n-1)!)", "ratio")
	for n := minN; n <= maxN; n++ {
		ld := search.LeftDeepSpaceSize(n)
		b := search.BushySpaceSize(n)
		fmt.Printf("%4d %18.0f %22.0f %10.0f\n", n, ld, b, b/ld)
	}
}
