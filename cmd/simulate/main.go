// Command simulate cross-validates the cost model against the machine
// simulator: it enumerates a population of plans for a generated query,
// prices each with the §5 calculus, executes each on the simulator, and
// reports the rank correlation plus the biggest disagreements.
//
// Usage:
//
//	simulate [-n 5] [-shape chain] [-seed 3] [-cpus 4] [-disks 4] [-top 5]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/sim"
	"paropt/internal/stats"
)

func main() {
	n := flag.Int("n", 5, "relations")
	shapeName := flag.String("shape", "chain", "chain, star, cycle or clique")
	seed := flag.Int64("seed", 3, "workload seed")
	cpus := flag.Int("cpus", 4, "machine CPUs")
	disks := flag.Int("disks", 4, "machine disks")
	top := flag.Int("top", 5, "worst disagreements to list")
	flag.Parse()

	shape := map[string]query.Shape{
		"chain": query.Chain, "star": query.Star,
		"cycle": query.Cycle, "clique": query.Clique,
	}[*shapeName]
	cat, q := query.Generate(query.GenConfig{
		Relations: *n, Shape: shape,
		MinCard: 10_000, MaxCard: 1_000_000,
		Disks: *disks, Seed: *seed,
	})
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: *cpus, Disks: *disks, Networks: 1})
	model := cost.NewModel(cat, m, est, cost.DefaultParams())

	type sample struct {
		name      string
		modelRT   float64
		simRT     float64
		modelWork float64
		simWork   float64
	}
	var samples []sample
	perms := stats.Permutations(*n)
	for pi, perm := range perms {
		node, ok := buildLeftDeep(est, q, perm, pi)
		if !ok {
			continue
		}
		op, err := optree.Expand(node, est, optree.DefaultExpandOptions())
		if err != nil {
			continue
		}
		optree.Annotate(op, m, est, optree.DefaultAnnotateOptions())
		res, err := sim.Simulate(op, model)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(1)
		}
		samples = append(samples, sample{
			name:      node.String(),
			modelRT:   model.RT(op),
			simRT:     res.RT,
			modelWork: model.Work(op),
			simWork:   res.Work,
		})
	}

	mrt := make([]float64, len(samples))
	srt := make([]float64, len(samples))
	for i, s := range samples {
		mrt[i], srt[i] = s.modelRT, s.simRT
	}
	fmt.Printf("plans: %d   rank correlation (model RT vs simulated RT): %.3f\n",
		len(samples), stats.Spearman(mrt, srt))

	sort.Slice(samples, func(i, j int) bool {
		return relErr(samples[i]) > relErr(samples[j])
	})
	fmt.Printf("\nworst %d relative RT disagreements:\n", *top)
	for i, s := range samples {
		if i >= *top {
			break
		}
		fmt.Printf("  %+6.1f%%  model=%.0f sim=%.0f  %s\n",
			100*(s.modelRT-s.simRT)/s.simRT, s.modelRT, s.simRT, s.name)
	}
	// Work should agree exactly: both sides draw the same demands.
	var worst float64
	for _, s := range samples {
		if d := math.Abs(s.modelWork - s.simWork); d > worst {
			worst = d
		}
	}
	fmt.Printf("\nmax |model work − simulated work| = %g (should be ~0)\n", worst)
}

func relErr(s struct {
	name      string
	modelRT   float64
	simRT     float64
	modelWork float64
	simWork   float64
}) float64 {
	if s.simRT == 0 {
		return 0
	}
	return math.Abs(s.modelRT-s.simRT) / s.simRT
}

func buildLeftDeep(est *plan.Estimator, q *query.Query, perm []int, variant int) (*plan.Node, bool) {
	var cur *plan.Node
	for i, pos := range perm {
		leaf, err := est.Leaf(q.Relations[pos], plan.SeqScan, nil)
		if err != nil {
			return nil, false
		}
		if i == 0 {
			cur = leaf
			continue
		}
		method := plan.AllJoinMethods[(variant+i)%len(plan.AllJoinMethods)]
		j, err := est.Join(cur, leaf, method)
		if err != nil {
			return nil, false
		}
		cur = j
	}
	return cur, true
}
