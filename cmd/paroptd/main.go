// Command paroptd runs the optimizer as a long-lived HTTP daemon: a
// fingerprint-keyed plan cache over the partial-order DP, a bounded worker
// pool with admission control, and Prometheus-style metrics.
//
// Usage:
//
//	paroptd [-addr :7077] [-schema schema.ddl | -workload portfolio]
//	        [-alg podp|podp-bushy] [-cpus 4] [-disks 4] [-aggdisks]
//	        [-nodes 1] [-networks 1] [-net-latency 0] [-agglinks]
//	        [-workers N] [-queue 64] [-cache 512] [-shards 8]
//	        [-timeout 30s] [-beam 0] [-traces 256] [-log text|json|none]
//	        [-debug-addr localhost:7078]
//	        [-query-log q.jsonl] [-profiles 4096] [-negcache 256]
//	        [-sweep 1m] [-drift-threshold 2] [-sweep-limit 4]
//	        [-exchange-window 16]
//	        [-search-log 64] [-plan-log 256] [-plan-log-file changes.jsonl]
//	        [-inflight-log queries.jsonl] [-drain 5s]
//
// Endpoints:
//
//	POST /optimize          {"query": "SELECT ...", "k": 1.5}  → plan JSON
//	POST /explain           same request (?trace=1 ?analyze=1) → plan + report
//	                        (?why=1 adds plan provenance — the chosen plan's
//	                         cost breakdown plus rejected alternatives;
//	                         ?distributed=1 executes join fragments on
//	                         registered paroptw workers)
//	POST /schema            {"ddl": "relation R card=1000 ..."}→ catalog version
//	                        ("default": true makes it the default — the
//	                         statistics-refresh path the sweeper reacts to;
//	                         the retired version's cache entries are swept)
//	POST /cluster/register   {"addr": "host:port"}             → worker joins
//	POST /cluster/deregister {"addr": "host:port"}             → worker leaves
//	GET  /cluster/workers                                      → membership + link traffic
//	GET  /cluster/metrics                                      → federated worker health
//	                        (scrapes each worker's own /healthz; feeds the
//	                         per-worker liveness gauges on /metrics)
//	POST /cluster/placement  {"catalog": v, "columns": {...}}  → install placement map
//	                        (partitions every relation across the registered
//	                         workers; later distributed analyzes ship leaf
//	                         scans to the owners instead of streaming inputs,
//	                         and searches price co-located joins as local)
//	GET  /cluster/placement  [?catalog=v]                      → map + catalog snapshot
//	                        (what paroptw bootstraps its shard store from)
//	GET  /healthz                                              → liveness
//	GET  /metrics                                              → Prometheus text
//	GET  /debug/traces                                         → trace IDs
//	GET  /debug/trace/{id}                                     → one span tree
//	GET  /debug/workload                                       → per-template profiles
//	GET  /debug/search                                         → recent searches with
//	                                                             per-layer telemetry
//	GET  /debug/planlog                                        → plan-change audit log
//	GET  /debug/queries                                        → in-flight queries with
//	                                                             live (tf, tl) progress + ETA
//	GET  /debug/queries/{id}                                   → one in-flight query
//	DELETE /debug/queries/{id}                                 → cancel it (workers too)
//
// The default catalog comes from -schema (DDL file) or -workload; requests
// can also carry inline "schema" DDL or a registered "catalog" version.
// SIGINT/SIGTERM drain in-flight requests for up to -drain, then cancel the
// stragglers (reason "shutdown") before exit.
//
// Workload analytics: every served request feeds the per-fingerprint
// profiler behind /debug/workload and, with -query-log, an append-only JSONL
// log that `paropt replay` re-executes and `paropt workload` summarizes.
// With -sweep, a background sweeper re-optimizes hot templates whose
// explain-analyze accuracy has drifted past -drift-threshold.
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ — kept off the service port so profiling is never exposed
// where the optimizer API is.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paropt"
	"paropt/internal/machine"
	"paropt/internal/obs/workload"
	"paropt/internal/parser"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	schemaFile := flag.String("schema", "", "schema DDL file for the default catalog")
	wl := flag.String("workload", "portfolio", "built-in default catalog when -schema is absent (portfolio, tpch or none)")
	alg := flag.String("alg", "podp", "podp or podp-bushy (partial-order algorithms only)")
	cpus := flag.Int("cpus", 4, "machine CPUs")
	disks := flag.Int("disks", 4, "machine disks")
	networks := flag.Int("networks", 1, "machine network links")
	nodes := flag.Int("nodes", 1, "shared-nothing nodes the machine is spread across (1 = shared-memory)")
	netLatency := flag.Float64("net-latency", 0, "per-transfer network latency in page-times (multi-node only)")
	aggDisks := flag.Bool("aggdisks", false, "model all disks as one RAID resource (§6.3 aggregation)")
	aggLinks := flag.Bool("agglinks", false, "model all network links as one resource (§6.3 aggregation)")
	workers := flag.Int("workers", 0, "concurrent searches (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "search queue depth before 429s")
	cacheCap := flag.Int("cache", 512, "plan-cache capacity (entries)")
	shards := flag.Int("shards", 8, "plan-cache shards")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	beam := flag.Int("beam", 0, "cap cover sets at this many plans (0 = exact search)")
	traces := flag.Int("traces", 0, "request traces retained for /debug/trace (0 = default 256, negative disables tracing)")
	logMode := flag.String("log", "text", "request log format on stderr: text, json or none")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled)")
	dataSeed := flag.Int64("data-seed", 1, "seed for the synthetic data analyze requests execute against")
	queryLog := flag.String("query-log", "", "append-only JSONL query log file (empty = disabled); feed it to `paropt replay` / `paropt workload`")
	queryLogMax := flag.Int64("query-log-max-bytes", 0, "rotate the query log beyond this size (0 = 64 MiB)")
	profiles := flag.Int("profiles", 0, "per-fingerprint workload profiles tracked for /debug/workload (0 = 4096, negative disables)")
	driftThreshold := flag.Float64("drift-threshold", 0, "EWMA row q-error above which a cached plan counts as drifted (0 = 2)")
	driftSamples := flag.Int("drift-samples", 0, "minimum analyze accuracy samples before marking drift (0 = 2)")
	sweep := flag.Duration("sweep", 0, "drift-sweeper interval: re-optimize drifted hot templates in the background (0 = disabled)")
	sweepLimit := flag.Int("sweep-limit", 0, "max re-optimizations per sweeper pass (0 = 4)")
	negCache := flag.Int("negcache", 0, "negative-cache capacity for parse/resolve failures (0 = 256, negative disables)")
	exchWindow := flag.Int("exchange-window", 0, "credit window (frames in flight per direction) for distributed exchanges (0 = exchange default)")
	batchRows := flag.Int("batch-rows", 0, "columnar batch size (rows per vector) for analyze executions (0 = engine default)")
	searchLog := flag.Int("search-log", 0, "recent searches retained with per-layer telemetry for /debug/search (0 = 64, negative disables)")
	planLog := flag.Int("plan-log", 0, "plan-change audit entries retained for /debug/planlog (0 = 256, negative disables)")
	planLogFile := flag.String("plan-log-file", "", "additionally append plan changes as JSONL to this file (empty = memory only)")
	inflightLog := flag.String("inflight-log", "", "append one JSONL record per finished query (normal, failed or cancelled) to this file (empty = disabled)")
	drain := flag.Duration("drain", 5*time.Second, "how long shutdown waits for in-flight queries before cancelling them")
	flag.Parse()

	var logger *slog.Logger
	switch *logMode {
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "none":
	default:
		log.Fatalf("paroptd: -log must be text, json or none (got %q)", *logMode)
	}

	algorithm := paropt.PartialOrderDP
	switch *alg {
	case "podp":
	case "podp-bushy":
		algorithm = paropt.PartialOrderDPBushy
	default:
		log.Fatalf("paroptd: -alg must be podp or podp-bushy (got %q): only partial-order searches produce a reusable cover set", *alg)
	}

	cat, err := defaultCatalog(*schemaFile, *wl, *disks)
	if err != nil {
		log.Fatalf("paroptd: %v", err)
	}

	var qlog *workload.Log
	if *queryLog != "" {
		qlog, err = workload.NewLog(*queryLog, *queryLogMax)
		if err != nil {
			log.Fatalf("paroptd: %v", err)
		}
		// Closed after svc.Close() so every served request is flushed.
		defer func() {
			if err := qlog.Close(); err != nil {
				log.Printf("paroptd: query log: %v", err)
			}
		}()
		log.Printf("paroptd: query log at %s", *queryLog)
	}

	svc, err := paropt.NewService(paropt.ServiceConfig{
		Catalog: cat,
		Machine: machine.Config{
			CPUs: *cpus, Disks: *disks, Networks: *networks, Nodes: *nodes,
			NetLatency: *netLatency, AggregateDisks: *aggDisks, AggregateLinks: *aggLinks,
		},
		Algorithm:         algorithm,
		CoverCap:          *beam,
		Workers:           *workers,
		QueueDepth:        *queue,
		CacheShards:       *shards,
		CacheCapacity:     *cacheCap,
		RequestTimeout:    *timeout,
		TraceCapacity:     *traces,
		Logger:            logger,
		DataSeed:          *dataSeed,
		QueryLog:          qlog,
		WorkloadCapacity:  *profiles,
		DriftThreshold:    *driftThreshold,
		SweepMinSamples:   *driftSamples,
		SweepInterval:     *sweep,
		SweepLimit:        *sweepLimit,
		NegCacheCapacity:  *negCache,
		ExchangeWindow:    *exchWindow,
		BatchRows:         *batchRows,
		SearchLogCapacity: *searchLog,
		PlanLogCapacity:   *planLog,
		PlanLogPath:       *planLogFile,
		InflightLogPath:   *inflightLog,
	})
	if err != nil {
		log.Fatalf("paroptd: %v", err)
	}

	if *debugAddr != "" {
		dbg := &http.Server{
			Addr:              *debugAddr,
			Handler:           pprofMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("paroptd: debug listener: %v", err)
			}
		}()
		defer dbg.Close()
		log.Printf("paroptd: pprof on %s/debug/pprof/", *debugAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if cat != nil {
		log.Printf("paroptd: serving on %s (default catalog: %d relations)", *addr, cat.NumRelations())
	} else {
		log.Printf("paroptd: serving on %s (no default catalog; use /schema)", *addr)
	}

	select {
	case err := <-errc:
		log.Fatalf("paroptd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("paroptd: shutting down (drain %s)", *drain)
	// Drain or cancel in-flight queries first — cancelled queries unwind
	// through the engine's checkpoints and tear down worker fragments — then
	// stop the HTTP listener.
	svc.Shutdown(*drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("paroptd: shutdown: %v", err)
	}
}

// pprofMux serves net/http/pprof on its own mux, so profiling stays off the
// service handler (and off http.DefaultServeMux).
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// defaultCatalog loads the daemon's default catalog: a DDL file, a built-in
// workload, or none.
func defaultCatalog(schemaFile, workload string, disks int) (*paropt.Catalog, error) {
	if schemaFile != "" {
		src, err := os.ReadFile(schemaFile)
		if err != nil {
			return nil, err
		}
		return parser.ParseSchema(string(src))
	}
	switch workload {
	case "portfolio":
		cat, _ := paropt.PortfolioWorkload(disks)
		return cat, nil
	case "tpch":
		cat, _ := paropt.TPCHWorkload(disks, 1)
		return cat, nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (portfolio, tpch or none)", workload)
	}
}
