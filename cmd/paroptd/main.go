// Command paroptd runs the optimizer as a long-lived HTTP daemon: a
// fingerprint-keyed plan cache over the partial-order DP, a bounded worker
// pool with admission control, and Prometheus-style metrics.
//
// Usage:
//
//	paroptd [-addr :7077] [-schema schema.ddl | -workload portfolio]
//	        [-alg podp|podp-bushy] [-cpus 4] [-disks 4] [-aggdisks]
//	        [-workers N] [-queue 64] [-cache 512] [-shards 8]
//	        [-timeout 30s] [-beam 0]
//
// Endpoints:
//
//	POST /optimize  {"query": "SELECT ...", "k": 1.5}        → plan JSON
//	POST /explain   same request                              → plan + report
//	POST /schema    {"ddl": "relation R card=1000 ..."}       → catalog version
//	GET  /healthz                                             → liveness
//	GET  /metrics                                             → Prometheus text
//
// The default catalog comes from -schema (DDL file) or -workload; requests
// can also carry inline "schema" DDL or a registered "catalog" version.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"paropt"
	"paropt/internal/machine"
	"paropt/internal/parser"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	schemaFile := flag.String("schema", "", "schema DDL file for the default catalog")
	wl := flag.String("workload", "portfolio", "built-in default catalog when -schema is absent (portfolio, tpch or none)")
	alg := flag.String("alg", "podp", "podp or podp-bushy (partial-order algorithms only)")
	cpus := flag.Int("cpus", 4, "machine CPUs")
	disks := flag.Int("disks", 4, "machine disks")
	networks := flag.Int("networks", 1, "machine network links")
	aggDisks := flag.Bool("aggdisks", false, "model all disks as one RAID resource (§6.3 aggregation)")
	workers := flag.Int("workers", 0, "concurrent searches (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "search queue depth before 429s")
	cacheCap := flag.Int("cache", 512, "plan-cache capacity (entries)")
	shards := flag.Int("shards", 8, "plan-cache shards")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout")
	beam := flag.Int("beam", 0, "cap cover sets at this many plans (0 = exact search)")
	flag.Parse()

	algorithm := paropt.PartialOrderDP
	switch *alg {
	case "podp":
	case "podp-bushy":
		algorithm = paropt.PartialOrderDPBushy
	default:
		log.Fatalf("paroptd: -alg must be podp or podp-bushy (got %q): only partial-order searches produce a reusable cover set", *alg)
	}

	cat, err := defaultCatalog(*schemaFile, *wl, *disks)
	if err != nil {
		log.Fatalf("paroptd: %v", err)
	}

	svc, err := paropt.NewService(paropt.ServiceConfig{
		Catalog:        cat,
		Machine:        machine.Config{CPUs: *cpus, Disks: *disks, Networks: *networks, AggregateDisks: *aggDisks},
		Algorithm:      algorithm,
		CoverCap:       *beam,
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheShards:    *shards,
		CacheCapacity:  *cacheCap,
		RequestTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("paroptd: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	if cat != nil {
		log.Printf("paroptd: serving on %s (default catalog: %d relations)", *addr, cat.NumRelations())
	} else {
		log.Printf("paroptd: serving on %s (no default catalog; use /schema)", *addr)
	}

	select {
	case err := <-errc:
		log.Fatalf("paroptd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("paroptd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("paroptd: shutdown: %v", err)
	}
	svc.Close()
}

// defaultCatalog loads the daemon's default catalog: a DDL file, a built-in
// workload, or none.
func defaultCatalog(schemaFile, workload string, disks int) (*paropt.Catalog, error) {
	if schemaFile != "" {
		src, err := os.ReadFile(schemaFile)
		if err != nil {
			return nil, err
		}
		return parser.ParseSchema(string(src))
	}
	switch workload {
	case "portfolio":
		cat, _ := paropt.PortfolioWorkload(disks)
		return cat, nil
	case "tpch":
		cat, _ := paropt.TPCHWorkload(disks, 1)
		return cat, nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (portfolio, tpch or none)", workload)
	}
}
