// Command calibrate measures the execution engine's micro-operations on
// this machine and prints a fitted cost-model parameter set, plus the
// effect on an optimized plan.
//
// Usage:
//
//	calibrate [-scale 100000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"paropt"
	"paropt/internal/calibrate"
)

func main() {
	scale := flag.Int64("scale", 100_000, "tuples per micro-benchmark")
	seed := flag.Int64("seed", 1, "data seed")
	flag.Parse()

	rep, err := calibrate.Run(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "calibrate:", err)
		os.Exit(1)
	}
	fmt.Print(rep.String())

	// Show what calibration changes on a real optimization.
	cat, q := paropt.PortfolioWorkload(4)
	def := paropt.DefaultCostParams()
	for _, tc := range []struct {
		name   string
		params paropt.CostParams
	}{
		{"default params", def},
		{"calibrated params", rep.Params},
	} {
		params := tc.params
		opt, err := paropt.NewOptimizer(cat, q, paropt.Config{Params: &params})
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		p, err := opt.Optimize()
		if err != nil {
			fmt.Fprintln(os.Stderr, "calibrate:", err)
			os.Exit(1)
		}
		fmt.Printf("\n%s → plan %s\n  rt=%.1f work=%.1f\n", tc.name, p.Tree, p.RT(), p.Work())
	}
}
