package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"paropt"
	"paropt/internal/machine"
	"paropt/internal/obs/workload"
	"paropt/internal/parser"
	"paropt/internal/service"
)

// replayMain implements `paropt replay <query-log.jsonl>`: it re-executes a
// recorded workload — against a running daemon (-addr) or an in-process
// service built from the same flags paroptd takes — and reports plan-choice
// and latency deltas. Plan choices are deterministic for a fixed catalog and
// configuration, so with -strict any plan change or replay error exits 1:
// the query log turned regression harness.
func replayMain(args []string) {
	fs := flag.NewFlagSet("paropt replay", flag.ExitOnError)
	addr := fs.String("addr", "", "daemon base URL (e.g. http://localhost:7077); empty replays in-process")
	strict := fs.Bool("strict", false, "exit 1 on any plan change or replay error")
	verbose := fs.Bool("verbose", false, "report every replayed record, not just changes and errors")
	// In-process service knobs, mirroring paroptd's defaults so a log
	// recorded by a default daemon replays identically.
	wl := fs.String("workload", "portfolio", "in-process default catalog (portfolio, tpch or none)")
	schemaFile := fs.String("schema", "", "in-process schema DDL file (overrides -workload)")
	alg := fs.String("alg", "podp", "in-process algorithm: podp or podp-bushy")
	cpus := fs.Int("cpus", 4, "in-process machine CPUs")
	disks := fs.Int("disks", 4, "in-process machine disks")
	beam := fs.Int("beam", 0, "in-process cover-set cap (0 = exact)")
	planLogFile := fs.String("plan-log-file", "", "append detected plan changes as JSONL audit entries to this file (in-process mode only)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paropt replay [flags] <query-log.jsonl>")
		fs.PrintDefaults()
		os.Exit(2)
	}
	recs, err := workload.ReadLog(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	var exec workload.Executor
	var svc *paropt.Service
	if *addr != "" {
		if *planLogFile != "" {
			fatal(fmt.Errorf("replay: -plan-log-file needs in-process mode (drop -addr); a daemon keeps its own /debug/planlog"))
		}
		exec = httpExecutor(*addr)
	} else {
		svc, exec, err = inProcessExecutor(*schemaFile, *wl, *alg, *cpus, *disks, *beam, *planLogFile)
		if err != nil {
			fatal(err)
		}
		defer svc.Close()
	}
	rep := workload.Replay(recs, exec, *verbose)
	// Feed detected regressions into the plan-change audit log: with
	// -plan-log-file each one persists as a JSONL entry for post-hoc audits.
	if svc != nil {
		for _, d := range rep.Deltas {
			if d.PlanChanged {
				svc.RecordReplayChange(d.Fingerprint, "", d.RecordedPlan, d.ReplayedPlan, d.RecordedRT, d.ReplayedRT)
			}
		}
	}
	fmt.Print(rep.Table())
	if *strict && (rep.PlanChanges > 0 || rep.Errors > 0) {
		os.Exit(1)
	}
}

// httpExecutor replays one record as POST /optimize against a daemon.
func httpExecutor(base string) workload.Executor {
	client := &http.Client{Timeout: 60 * time.Second}
	return func(r workload.Record) workload.Outcome {
		body, err := json.Marshal(service.OptimizeRequest{
			Query:       r.Query,
			Catalog:     r.Catalog,
			K:           r.K,
			CostBenefit: r.CostBenefit,
		})
		if err != nil {
			return workload.Outcome{Err: err}
		}
		start := time.Now()
		resp, err := client.Post(base+"/optimize", "application/json", bytes.NewReader(body))
		if err != nil {
			return workload.Outcome{Err: err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
			return workload.Outcome{Err: fmt.Errorf("daemon: %d %s", resp.StatusCode, e.Error)}
		}
		var out service.OptimizeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return workload.Outcome{Err: err}
		}
		return workload.Outcome{
			PlanSig:       out.PlanSignature,
			Cache:         out.Cache,
			RT:            out.Summary.ResponseTime,
			Work:          out.Summary.Work,
			ElapsedMicros: time.Since(start).Microseconds(),
		}
	}
}

// inProcessExecutor replays against a fresh service in this process (also
// returned so replayMain can feed regressions into its plan-change audit
// log). Records that name a catalog version other than the configured default
// fail — an in-process replay can only know the catalogs its flags build.
func inProcessExecutor(schemaFile, wl, alg string, cpus, disks, beam int, planLogFile string) (*paropt.Service, workload.Executor, error) {
	cat, err := defaultCatalog(schemaFile, wl, disks)
	if err != nil {
		return nil, nil, err
	}
	algorithm := paropt.PartialOrderDP
	switch alg {
	case "podp":
	case "podp-bushy":
		algorithm = paropt.PartialOrderDPBushy
	default:
		return nil, nil, fmt.Errorf("replay: -alg must be podp or podp-bushy (got %q)", alg)
	}
	svc, err := paropt.NewService(paropt.ServiceConfig{
		Catalog:     cat,
		Machine:     machine.Config{CPUs: cpus, Disks: disks, Networks: 1},
		Algorithm:   algorithm,
		CoverCap:    beam,
		PlanLogPath: planLogFile,
	})
	if err != nil {
		return nil, nil, err
	}
	ctx := context.Background()
	return svc, func(r workload.Record) workload.Outcome {
		start := time.Now()
		resp, err := svc.Optimize(ctx, service.OptimizeRequest{
			Query:       r.Query,
			Catalog:     r.Catalog,
			K:           r.K,
			CostBenefit: r.CostBenefit,
		})
		if err != nil {
			return workload.Outcome{Err: err}
		}
		return workload.Outcome{
			PlanSig:       resp.PlanSignature,
			Cache:         resp.Cache,
			RT:            resp.Summary.ResponseTime,
			Work:          resp.Summary.Work,
			ElapsedMicros: time.Since(start).Microseconds(),
		}
	}, nil
}

// defaultCatalog mirrors paroptd's default-catalog selection.
func defaultCatalog(schemaFile, wl string, disks int) (*paropt.Catalog, error) {
	if schemaFile != "" {
		src, err := os.ReadFile(schemaFile)
		if err != nil {
			return nil, err
		}
		return parser.ParseSchema(string(src))
	}
	switch wl {
	case "portfolio":
		cat, _ := paropt.PortfolioWorkload(disks)
		return cat, nil
	case "tpch":
		cat, _ := paropt.TPCHWorkload(disks, 1)
		return cat, nil
	case "none", "":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown workload %q (portfolio, tpch or none)", wl)
	}
}
