package main

import (
	"flag"
	"fmt"
	"os"

	"paropt/internal/obs/workload"
)

// workloadMain implements `paropt workload <query-log.jsonl>`: an offline,
// human-readable workload report built by folding the log through the same
// aggregation the live profiler runs — top templates by traffic/latency/
// drift, streaming latency quantiles, and the drift table (templates whose
// recorded analyze accuracy marks their plans stale).
func workloadMain(args []string) {
	fs := flag.NewFlagSet("paropt workload", flag.ExitOnError)
	top := fs.Int("top", 20, "templates to show")
	by := fs.String("by", "traffic", "order: traffic, latency or drift")
	threshold := fs.Float64("threshold", 2, "EWMA row q-error above which a template counts as drifted")
	minSamples := fs.Int("min-samples", 2, "minimum accuracy samples before marking drift")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: paropt workload [flags] <query-log.jsonl>")
		fs.PrintDefaults()
		os.Exit(2)
	}
	switch *by {
	case "traffic", "latency", "drift":
	default:
		fatal(fmt.Errorf("workload: -by must be traffic, latency or drift (got %q)", *by))
	}
	recs, err := workload.ReadLog(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	snaps := workload.Aggregate(recs, *threshold, *minSamples)
	var errors, analyzed int
	for _, r := range recs {
		if r.Error != "" {
			errors++
		}
		if r.QErr > 0 || r.RelErr > 0 {
			analyzed++
		}
	}
	var drifted []workload.ProfileSnapshot
	for _, s := range snaps {
		if s.Drifted {
			drifted = append(drifted, s)
		}
	}
	fmt.Printf("query log: %s\n", fs.Arg(0))
	fmt.Printf("records: %d (%d failed, %d with accuracy samples), templates: %d, drifted: %d\n\n",
		len(recs), errors, analyzed, len(snaps), len(drifted))

	workload.SortBy(snaps, *by)
	if len(snaps) > *top {
		snaps = snaps[:*top]
	}
	fmt.Printf("top %d templates by %s:\n", len(snaps), *by)
	fmt.Print(workload.FormatTable(snaps))

	if len(drifted) > 0 {
		workload.SortBy(drifted, "drift")
		fmt.Printf("\ndrifted templates (EWMA q-error ≥ %g over ≥ %d samples) — re-optimization candidates:\n",
			*threshold, *minSamples)
		fmt.Print(workload.FormatTable(drifted))
	}
}
