// Command paropt optimizes a workload query and explains the chosen plan.
//
// Usage:
//
//	paropt [-workload portfolio|chain|star|cycle|clique] [-n 5] [-seed 1]
//	       [-alg podp|podp-bushy|work|naive-rt|brute|brute-bushy|two-phase|anneal]
//	       [-cpus 4] [-disks 4] [-k 0] [-costbenefit 0] [-simulate] [-analyze]
//	       [-why] [-profile]
//	       [-schema schema.ddl -query "SELECT ... FROM ... WHERE ..."]
//	paropt replay [-addr http://host:7077 | -workload ...] [-strict] <log.jsonl>
//	paropt workload [-top 20] [-by traffic|latency|drift] <log.jsonl>
//	paropt top [-addr http://host:7077] [-interval 2s] [-once] [-cancel id]
//
// The replay and workload subcommands consume the JSONL query log a daemon
// writes with -query-log: replay re-executes the recorded requests (against
// a daemon or in-process) and reports plan-choice and latency deltas;
// workload renders the per-template traffic/latency/drift report offline.
// top polls a daemon's /debug/queries and renders the in-flight queries with
// live per-operator progress and model-predicted ETAs; -cancel sends a
// DELETE for one query and exits.
//
// -k sets the §2 throughput-degradation factor (0 = unbounded);
// -costbenefit sets the cost–benefit ratio bound instead. With -schema and
// -query, the catalog and query are parsed from text instead of a built-in
// workload (see internal/parser for the grammar). -analyze executes the
// chosen plan on synthetic data (seeded by -seed) and prints an EXPLAIN
// ANALYZE style table joining the cost model's predicted (tf, tl)
// descriptors against the measured ones (text mode only).
package main

import (
	"flag"
	"fmt"
	"os"

	"paropt"
	"paropt/internal/machine"
	"paropt/internal/parser"
	"paropt/internal/search"
	"paropt/internal/storage"
)

func main() {
	// Subcommand dispatch; anything else is the classic flag-driven
	// one-shot optimizer invocation.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "replay":
			replayMain(os.Args[2:])
			return
		case "workload":
			workloadMain(os.Args[2:])
			return
		case "top":
			topMain(os.Args[2:])
			return
		}
	}
	wl := flag.String("workload", "portfolio", "portfolio, tpch, chain, star, cycle or clique")
	schemaFile := flag.String("schema", "", "schema DDL file (overrides -workload; requires -query)")
	queryText := flag.String("query", "", "SQL-ish SELECT text (requires -schema)")
	n := flag.Int("n", 5, "relation count for generated workloads")
	seed := flag.Int64("seed", 1, "workload seed")
	alg := flag.String("alg", "podp", "podp, podp-bushy, work, naive-rt, brute, brute-bushy, two-phase, ii or anneal")
	cpus := flag.Int("cpus", 4, "machine CPUs")
	disks := flag.Int("disks", 4, "machine disks")
	aggDisks := flag.Bool("aggdisks", false, "model all disks as one RAID resource (§6.3 aggregation)")
	beam := flag.Int("beam", 0, "cap cover sets at this many plans (0 = exact search)")
	k := flag.Float64("k", 0, "throughput-degradation factor (0 = unbounded)")
	cb := flag.Float64("costbenefit", 0, "cost-benefit ratio bound (0 = off)")
	simulate := flag.Bool("simulate", false, "also run the plan on the machine simulator")
	timeline := flag.Bool("timeline", false, "with -simulate, print a Gantt timeline of the execution")
	dot := flag.Bool("dot", false, "print the operator tree as Graphviz DOT")
	trace := flag.Bool("trace", false, "trace the search as it runs")
	why := flag.Bool("why", false, "print plan provenance: the chosen plan's cost breakdown plus rejected frontier alternatives with loss reasons")
	profile := flag.Bool("profile", false, "print the per-layer search profile (time, candidates kept, prunes by reason)")
	jsonOut := flag.Bool("json", false, "print the plan as JSON instead of text")
	analyze := flag.Bool("analyze", false, "execute the plan on deterministic synthetic data and print per-operator predicted-vs-actual (tf, tl) descriptors")
	analyzePar := flag.Int("analyze-parallel", 0, "engine parallelism for -analyze (0 = machine CPUs)")
	batchRows := flag.Int("batch-rows", 0, "columnar batch size (rows per vector) for -analyze execution (0 = engine default)")
	flag.Parse()

	var cat *paropt.Catalog
	var q *paropt.Query
	var err error
	if *schemaFile != "" || *queryText != "" {
		cat, q, err = parseInput(*schemaFile, *queryText)
	} else {
		cat, q, err = buildWorkload(*wl, *n, *seed, *disks)
	}
	if err != nil {
		fatal(err)
	}
	cfg := paropt.Config{
		Machine:   machine.Config{CPUs: *cpus, Disks: *disks, Networks: 1, AggregateDisks: *aggDisks},
		Algorithm: parseAlg(*alg),
		CoverCap:  *beam,
		BatchRows: *batchRows,
	}
	switch {
	case *k > 0:
		cfg.Bound = search.ThroughputDegradation{K: *k}
	case *cb > 0:
		cfg.Bound = search.CostBenefit{K: *cb}
	}
	if *trace {
		cfg.Trace = &search.WriterTracer{W: os.Stderr}
	}
	opt, err := paropt.NewOptimizer(cat, q, cfg)
	if err != nil {
		fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		raw, err := opt.ExplainJSON(p)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(raw))
		return
	}
	fmt.Print(opt.Explain(p))
	if *why {
		fmt.Println()
		fmt.Print(opt.PlanProvenance(p, cfg.Bound, 5).Text())
	}
	if *profile {
		fmt.Println()
		fmt.Print(p.Profile().Table())
	}
	if *dot {
		fmt.Println()
		fmt.Print(p.Op.Dot(q.Name))
	}

	if *simulate {
		res, err := opt.Simulate(p)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nsimulated execution: rt=%.2f work=%.2f utilization=%.1f%% (%d events)\n",
			res.RT, res.Work, 100*res.Utilization(), res.Steps)
		fmt.Printf("model vs simulator rt: %.2f vs %.2f (%+.1f%%)\n",
			p.RT(), res.RT, 100*(p.RT()-res.RT)/res.RT)
		if *timeline {
			fmt.Println()
			fmt.Print(res.Timeline(64))
		}
	}

	if *analyze {
		par := *analyzePar
		if par <= 0 {
			par = *cpus
		}
		rep, _, err := opt.Analyze(p, storage.NewDatabase(cat, *seed), par)
		if err != nil {
			fatal(err)
		}
		fmt.Println()
		fmt.Print(rep.Table())
	}
}

func parseInput(schemaFile, queryText string) (*paropt.Catalog, *paropt.Query, error) {
	if schemaFile == "" || queryText == "" {
		return nil, nil, fmt.Errorf("-schema and -query must be used together")
	}
	src, err := os.ReadFile(schemaFile)
	if err != nil {
		return nil, nil, err
	}
	cat, err := parser.ParseSchema(string(src))
	if err != nil {
		return nil, nil, err
	}
	q, err := parser.ParseQuery(queryText, cat)
	if err != nil {
		return nil, nil, err
	}
	return cat, q, nil
}

func buildWorkload(name string, n int, seed int64, disks int) (*paropt.Catalog, *paropt.Query, error) {
	switch name {
	case "portfolio":
		cat, q := paropt.PortfolioWorkload(disks)
		return cat, q, nil
	case "tpch":
		cat, qs := paropt.TPCHWorkload(disks, 1)
		return cat, qs[n%len(qs)], nil // -n selects Q3/Q5/Q10
	case "chain", "star", "cycle", "clique":
		shape := map[string]paropt.Shape{
			"chain": paropt.Chain, "star": paropt.Star,
			"cycle": paropt.Cycle, "clique": paropt.Clique,
		}[name]
		cat, q := paropt.Generate(paropt.GenConfig{
			Relations: n, Shape: shape,
			MinCard: 10_000, MaxCard: 1_000_000,
			Disks: disks, IndexProb: 0.5, SortedProb: 0.25, Seed: seed,
		})
		return cat, q, nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q", name)
	}
}

func parseAlg(s string) paropt.Algorithm {
	switch s {
	case "podp":
		return paropt.PartialOrderDP
	case "podp-bushy":
		return paropt.PartialOrderDPBushy
	case "work":
		return paropt.WorkDP
	case "naive-rt":
		return paropt.NaiveRTDP
	case "brute":
		return paropt.BruteForceLeftDeep
	case "brute-bushy":
		return paropt.BruteForceBushy
	case "two-phase":
		return paropt.TwoPhase
	case "anneal":
		return paropt.SimulatedAnnealing
	case "ii":
		return paropt.IterativeImprovement
	default:
		fatal(fmt.Errorf("unknown algorithm %q", s))
		return 0
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paropt:", err)
	os.Exit(1)
}
