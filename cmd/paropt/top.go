package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"paropt/internal/service"
)

// topMain implements `paropt top`: poll a daemon's /debug/queries registry
// and render the in-flight queries — phase, elapsed time, per-operator
// percent complete mapped against the plan's (tf, tl) descriptors, the
// model-predicted ETA, and the drift flag. With -cancel it instead sends
// DELETE /debug/queries/{id} and exits.
func topMain(args []string) {
	fs := flag.NewFlagSet("paropt top", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:7077", "daemon base URL")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "print one snapshot and exit")
	count := fs.Int("n", 0, "snapshots to print before exiting (0 = until interrupted)")
	cancel := fs.Int64("cancel", 0, "cancel this query ID (DELETE /debug/queries/{id}) and exit")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	base := strings.TrimSuffix(*addr, "/")

	if *cancel > 0 {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/debug/queries/%d", base, *cancel), nil)
		if err != nil {
			fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("top: cancel %d: %s: %s", *cancel, resp.Status, strings.TrimSpace(string(body))))
		}
		fmt.Printf("cancelled query %d\n", *cancel)
		return
	}

	for i := 0; ; i++ {
		snaps, err := fetchQueries(base)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s  %s\n", time.Now().Format("15:04:05"), base)
		renderQueries(os.Stdout, snaps)
		if *once || (*count > 0 && i+1 >= *count) {
			return
		}
		time.Sleep(*interval)
		fmt.Println()
	}
}

// fetchQueries pulls one /debug/queries snapshot.
func fetchQueries(base string) ([]service.QuerySnapshot, error) {
	resp, err := http.Get(base + "/debug/queries")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("top: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var out struct {
		Queries []service.QuerySnapshot `json:"queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Queries, nil
}

// renderQueries renders the snapshot as a table, one summary row per query
// plus an indented per-operator progress row for executing queries.
func renderQueries(w io.Writer, snaps []service.QuerySnapshot) {
	if len(snaps) == 0 {
		fmt.Fprintln(w, "no queries in flight")
		return
	}
	fmt.Fprintf(w, "%4s %-9s %-9s %10s %6s %12s %-6s %s\n",
		"id", "kind", "phase", "elapsed", "pct", "eta", "drift", "query")
	for _, qs := range snaps {
		pct, eta, drift := "-", "-", ""
		if p := qs.Progress; p != nil {
			pct = fmt.Sprintf("%.0f%%", p.Percent*100)
			if p.ETAMs >= 0 {
				eta = fmt.Sprintf("%.0fms", p.ETAMs)
			}
			if p.Drift {
				drift = "DRIFT"
			}
		}
		kind := qs.Kind
		if qs.Distributed {
			kind += "*"
		}
		query := qs.Query
		if len(query) > 48 {
			query = query[:45] + "..."
		}
		fmt.Fprintf(w, "%4d %-9s %-9s %9.0fms %6s %12s %-6s %s\n",
			qs.ID, kind, qs.Phase, qs.ElapsedMs, pct, eta, drift, query)
		if qs.Progress != nil {
			for _, op := range qs.Progress.Ops {
				done := ""
				if op.Done {
					done = " done"
				}
				fmt.Fprintf(w, "     · %-24s %d/%d rows (%.0f%%)%s\n",
					op.Label, op.Rows, op.PredRows, op.Percent*100, done)
			}
		}
	}
}
