package workload

import (
	"testing"

	"paropt/internal/engine"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

func TestPortfolioValid(t *testing.T) {
	cat, q := Portfolio(4)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	if got := cat.NumRelations(); got != 5 {
		t.Fatalf("relations = %d, want 5", got)
	}
	if !q.Connected(query.FullSet(len(q.Relations))) {
		t.Error("portfolio query must be connected")
	}
	// Star hub: trades joins three dimensions directly.
	hub := 0
	for _, j := range q.Joins {
		if j.Touches("trades") {
			hub++
		}
	}
	if hub != 3 {
		t.Errorf("trades participates in %d joins, want 3", hub)
	}
}

func TestPortfolioSingleDisk(t *testing.T) {
	cat, q := Portfolio(1)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	for _, name := range cat.RelationNames() {
		if d := cat.MustRelation(name).Disk; d != 0 {
			t.Errorf("relation %s on disk %d with 1 disk", name, d)
		}
	}
}

func TestPortfolioSmallExecutes(t *testing.T) {
	cat, q := PortfolioSmall(2)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	if cat.MustRelation("trades").Card > 10_000 {
		t.Error("small portfolio should be scaled down")
	}
	db := storage.NewDatabase(cat, 1)
	est := plan.NewEstimator(cat, q)
	e := &engine.Executor{DB: db, Q: q, Parallel: 2}
	// Left-deep plan in declaration order.
	var cur *plan.Node
	for i, rel := range q.Relations {
		leaf, err := est.Leaf(rel, plan.SeqScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			cur = leaf
			continue
		}
		j, err := est.Join(cur, leaf, plan.HashJoin)
		if err != nil {
			t.Fatal(err)
		}
		cur = j
	}
	res, err := e.Execute(cur)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := engine.ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint() != ref.Fingerprint() {
		t.Error("portfolio execution differs from reference")
	}
}

func TestSweepBuild(t *testing.T) {
	s := Sweep{Relations: 5, Shape: query.Star, Mix: FactDimension, Seed: 3}
	cat, q := s.Build()
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	fact := cat.MustRelation(q.Relations[0])
	for _, name := range q.Relations[1:] {
		if cat.MustRelation(name).Card >= fact.Card {
			t.Errorf("dimension %s as large as the fact table", name)
		}
	}
	if s.String() == "" {
		t.Error("sweep label empty")
	}
}

func TestSweepUniform(t *testing.T) {
	s := Sweep{Relations: 4, Shape: query.Chain, Mix: Uniform, Seed: 9}
	cat, q := s.Build()
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	if len(q.Joins) != 3 {
		t.Errorf("chain joins = %d", len(q.Joins))
	}
}
