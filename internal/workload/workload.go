// Package workload provides ready-made catalogs and queries shaped by the
// paper's motivation: decision-support databases (a stock-portfolio star
// schema for the §1 scenario), TPC-like relation size mixes, and parametric
// sweeps used by the benchmark harness.
package workload

import (
	"fmt"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// Portfolio builds the §1 scenario: "a system for stock portfolio managers
// ... running a non-trivial query at the click of a button" — a star schema
// with a large trades fact table joined to stocks, sectors, accounts and
// dates dimensions, spread over the given number of disks.
func Portfolio(disks int) (*catalog.Catalog, *query.Query) {
	if disks < 1 {
		disks = 1
	}
	cat := catalog.New()
	cat.MustAddRelation(catalog.Relation{
		Name: "trades",
		Columns: []catalog.Column{
			{Name: "trade_id", NDV: 2_000_000, Width: 8},
			{Name: "stock_id", NDV: 20_000, Width: 8},
			{Name: "account_id", NDV: 50_000, Width: 8},
			{Name: "date_id", NDV: 2_000, Width: 8},
			{Name: "amount", NDV: 100_000, Width: 8},
		},
		Card:  2_000_000,
		Pages: 20_000,
		Disk:  0,
	})
	cat.MustAddRelation(catalog.Relation{
		Name: "stocks",
		Columns: []catalog.Column{
			{Name: "stock_id", NDV: 20_000, Width: 8},
			{Name: "sector_id", NDV: 100, Width: 8},
			{Name: "listed", NDV: 50, Width: 8},
		},
		Card:  20_000,
		Pages: 200,
		Disk:  1 % disks,
	})
	cat.MustAddRelation(catalog.Relation{
		Name: "sectors",
		Columns: []catalog.Column{
			{Name: "sector_id", NDV: 100, Width: 8},
			{Name: "name", NDV: 100, Width: 32},
		},
		Card:  100,
		Pages: 1,
		Disk:  2 % disks,
	})
	cat.MustAddRelation(catalog.Relation{
		Name: "accounts",
		Columns: []catalog.Column{
			{Name: "account_id", NDV: 50_000, Width: 8},
			{Name: "manager", NDV: 200, Width: 8},
		},
		Card:  50_000,
		Pages: 500,
		Disk:  3 % disks,
	})
	cat.MustAddRelation(catalog.Relation{
		Name: "dates",
		Columns: []catalog.Column{
			{Name: "date_id", NDV: 2_000, Width: 8},
			{Name: "quarter", NDV: 8, Width: 8},
		},
		Card:  2_000,
		Pages: 20,
		Disk:  0,
	})
	cat.MustAddIndex(catalog.Index{
		Name: "trades_stock", Relation: "trades", Columns: []string{"stock_id"},
		Clustered: true, Disk: 0,
	})
	cat.MustAddIndex(catalog.Index{
		Name: "stocks_pk", Relation: "stocks", Columns: []string{"stock_id"},
		Clustered: true, Disk: 1 % disks,
	})
	cat.MustAddIndex(catalog.Index{
		Name: "accounts_pk", Relation: "accounts", Columns: []string{"account_id"},
		Disk: 3 % disks,
	})

	col := func(rel, c string) query.ColumnRef { return query.ColumnRef{Relation: rel, Column: c} }
	q := &query.Query{
		Name:      "portfolio-by-sector",
		Relations: []string{"trades", "stocks", "sectors", "accounts", "dates"},
		Joins: []query.JoinPredicate{
			{Left: col("trades", "stock_id"), Right: col("stocks", "stock_id")},
			{Left: col("stocks", "sector_id"), Right: col("sectors", "sector_id")},
			{Left: col("trades", "account_id"), Right: col("accounts", "account_id")},
			{Left: col("trades", "date_id"), Right: col("dates", "date_id")},
		},
		Selections: []query.Selection{
			{Column: col("dates", "quarter"), Value: 3},
			{Column: col("accounts", "manager"), Value: 17},
		},
		Projection: []query.ColumnRef{
			col("sectors", "name"), col("trades", "amount"),
		},
	}
	return cat, q
}

// PortfolioSmall is Portfolio scaled down ~1000× so it can be generated and
// executed by the in-memory engine in tests and examples. Foreign-key
// domains are aligned with the referenced dimension's scaled cardinality so
// the generated data joins productively.
func PortfolioSmall(disks int) (*catalog.Catalog, *query.Query) {
	cat, q := Portfolio(disks)
	scaledCard := map[string]int64{}
	for _, name := range cat.RelationNames() {
		scaledCard[name] = cat.MustRelation(name).Card/1000 + 10
	}
	// FK column → the dimension whose key domain it must share.
	fkTarget := map[string]string{
		"stock_id": "stocks", "account_id": "accounts",
		"date_id": "dates", "sector_id": "sectors",
	}
	scaled := catalog.New()
	for _, name := range cat.RelationNames() {
		rel := *cat.MustRelation(name)
		rel.Card = scaledCard[name]
		rel.Pages = rel.Pages/1000 + 1
		cols := make([]catalog.Column, len(rel.Columns))
		copy(cols, rel.Columns)
		for i := range cols {
			if dim, ok := fkTarget[cols[i].Name]; ok {
				cols[i].NDV = scaledCard[dim]
			}
			if cols[i].NDV > rel.Card {
				cols[i].NDV = rel.Card
			}
		}
		rel.Columns = cols
		scaled.MustAddRelation(rel)
	}
	return scaled, q
}

// SizeMix names a relative size distribution for generated relations.
type SizeMix int

const (
	// Uniform draws cardinalities log-uniformly.
	Uniform SizeMix = iota
	// FactDimension makes R0 large and the rest small (star workloads).
	FactDimension
)

// Sweep describes one point of a parameter sweep in the bench harness.
type Sweep struct {
	Relations int
	Shape     query.Shape
	Mix       SizeMix
	Seed      int64
}

// Build realizes a sweep point as a catalog and query.
func (s Sweep) Build() (*catalog.Catalog, *query.Query) {
	cfg := query.GenConfig{
		Relations:  s.Relations,
		Shape:      s.Shape,
		MinCard:    10_000,
		MaxCard:    1_000_000,
		Disks:      4,
		IndexProb:  0.5,
		SortedProb: 0.25,
		Seed:       s.Seed,
	}
	cat, q := query.Generate(cfg)
	if s.Mix == FactDimension {
		for i, name := range q.Relations {
			rel := cat.MustRelation(name)
			if i == 0 {
				rel.Card = 2_000_000
				rel.Pages = 20_000
			} else {
				rel.Card = 10_000 + int64(i)*5_000
				rel.Pages = rel.Card / 100
			}
			for j := range rel.Columns {
				if rel.Columns[j].NDV > rel.Card {
					rel.Columns[j].NDV = rel.Card
				}
			}
		}
	}
	return cat, q
}

// String labels the sweep point in bench output.
func (s Sweep) String() string {
	return fmt.Sprintf("n=%d/%s/seed=%d", s.Relations, s.Shape, s.Seed)
}
