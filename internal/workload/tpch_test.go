package workload

import (
	"testing"

	"paropt/internal/core"
	"paropt/internal/engine"
	"paropt/internal/query"
	"paropt/internal/storage"
)

func TestTPCHLikeValid(t *testing.T) {
	cat, queries := TPCHLike(4, 1)
	if cat.NumRelations() != 6 {
		t.Fatalf("relations = %d, want 6", cat.NumRelations())
	}
	if len(queries) != 3 {
		t.Fatalf("queries = %d, want 3", len(queries))
	}
	for _, q := range queries {
		if err := q.Validate(cat); err != nil {
			t.Errorf("%s: %v", q.Name, err)
		}
		if !q.Connected(query.FullSet(len(q.Relations))) {
			t.Errorf("%s: join graph disconnected", q.Name)
		}
	}
	// Fact table dwarfs dimensions.
	li := cat.MustRelation("lineitem")
	if li.Card <= cat.MustRelation("nation").Card {
		t.Error("lineitem should dominate")
	}
}

func TestTPCHLikeScaling(t *testing.T) {
	cat1, _ := TPCHLike(2, 1)
	cat2, _ := TPCHLike(2, 2)
	if cat2.MustRelation("lineitem").Card != 2*cat1.MustRelation("lineitem").Card {
		t.Error("scale factor should scale cardinalities linearly")
	}
	// Degenerate inputs clamp.
	cat0, qs := TPCHLike(0, -1)
	if cat0.NumRelations() != 6 || len(qs) != 3 {
		t.Error("degenerate inputs should clamp")
	}
}

func TestTPCHLikeOptimizes(t *testing.T) {
	cat, queries := TPCHLike(4, 1)
	for _, q := range queries {
		o, err := core.NewOptimizer(cat, q, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := o.Optimize()
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if p.RT() <= 0 {
			t.Errorf("%s: rt = %g", q.Name, p.RT())
		}
		if got := len(p.Tree.Leaves()); got != len(q.Relations) {
			t.Errorf("%s: plan covers %d relations, want %d", q.Name, got, len(q.Relations))
		}
	}
}

func TestTPCHLikeExecutes(t *testing.T) {
	cat, queries := TPCHLike(2, 0.2) // tiny for brute-force reference
	db := storage.NewDatabase(cat, 13)
	for _, q := range queries[:1] { // Q3: 3 relations, cheap reference
		o, err := core.NewOptimizer(cat, q, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		p, err := o.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		got, err := o.Execute(p, db, 2)
		if err != nil {
			t.Fatal(err)
		}
		e := &engine.Executor{DB: db, Q: q, Parallel: 1}
		ref, err := engine.ReferenceJoin(e)
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != ref.Fingerprint() {
			t.Errorf("%s: optimized result differs from reference", q.Name)
		}
	}
}
