package workload

import (
	"paropt/internal/catalog"
	"paropt/internal/query"
)

// TPCHLike builds a schema shaped like the TPC-H decision-support benchmark
// (the modern descendant of the workloads the paper motivates) at the given
// scale factor, spread over the given disks, together with three SPJ
// queries modeled on Q3, Q5 and Q10's join cores. Scale 1.0 approximates
// SF-0.01 of the real benchmark so optimizer experiments stay fast; cards
// scale linearly.
func TPCHLike(disks int, scale float64) (*catalog.Catalog, []*query.Query) {
	if disks < 1 {
		disks = 1
	}
	if scale <= 0 {
		scale = 1
	}
	card := func(base int64) int64 {
		c := int64(float64(base) * scale)
		if c < 1 {
			c = 1
		}
		return c
	}
	cat := catalog.New()
	add := func(name string, base int64, disk int, cols ...catalog.Column) {
		c := card(base)
		for i := range cols {
			if cols[i].NDV > c {
				cols[i].NDV = c
			}
			if cols[i].Width == 0 {
				cols[i].Width = 8
			}
		}
		cat.MustAddRelation(catalog.Relation{
			Name: name, Columns: cols, Card: c,
			Pages: c/100 + 1, Disk: disk % disks,
		})
	}

	add("region", 5, 0, catalog.Column{Name: "r_regionkey", NDV: 5})
	add("nation", 25, 1,
		catalog.Column{Name: "n_nationkey", NDV: 25},
		catalog.Column{Name: "n_regionkey", NDV: 5})
	add("supplier", 100, 2,
		catalog.Column{Name: "s_suppkey", NDV: 100},
		catalog.Column{Name: "s_nationkey", NDV: 25})
	add("customer", 1500, 3,
		catalog.Column{Name: "c_custkey", NDV: 1500},
		catalog.Column{Name: "c_nationkey", NDV: 25},
		catalog.Column{Name: "c_mktsegment", NDV: 5})
	add("orders", 15000, 0,
		catalog.Column{Name: "o_orderkey", NDV: 15000},
		catalog.Column{Name: "o_custkey", NDV: 1500},
		catalog.Column{Name: "o_orderdate", NDV: 2400})
	add("lineitem", 60000, 1,
		catalog.Column{Name: "l_orderkey", NDV: 15000},
		catalog.Column{Name: "l_suppkey", NDV: 100},
		catalog.Column{Name: "l_extendedprice", NDV: 10000})

	cat.MustAddIndex(catalog.Index{
		Name: "orders_pk", Relation: "orders", Columns: []string{"o_orderkey"},
		Clustered: true, Disk: 0 % disks,
	})
	cat.MustAddIndex(catalog.Index{
		Name: "lineitem_ok", Relation: "lineitem", Columns: []string{"l_orderkey"},
		Clustered: true, Disk: 1 % disks,
	})
	cat.MustAddIndex(catalog.Index{
		Name: "customer_pk", Relation: "customer", Columns: []string{"c_custkey"},
		Disk: 3 % disks,
	})

	col := func(r, c string) query.ColumnRef { return query.ColumnRef{Relation: r, Column: c} }
	q3 := &query.Query{
		Name:      "q3-shipping-priority",
		Relations: []string{"customer", "orders", "lineitem"},
		Joins: []query.JoinPredicate{
			{Left: col("customer", "c_custkey"), Right: col("orders", "o_custkey")},
			{Left: col("orders", "o_orderkey"), Right: col("lineitem", "l_orderkey")},
		},
		Selections: []query.Selection{{Column: col("customer", "c_mktsegment"), Value: 2}},
		Projection: []query.ColumnRef{
			col("orders", "o_orderkey"), col("lineitem", "l_extendedprice"),
		},
	}
	q5 := &query.Query{
		Name:      "q5-local-supplier-volume",
		Relations: []string{"customer", "orders", "lineitem", "supplier", "nation", "region"},
		Joins: []query.JoinPredicate{
			{Left: col("customer", "c_custkey"), Right: col("orders", "o_custkey")},
			{Left: col("orders", "o_orderkey"), Right: col("lineitem", "l_orderkey")},
			{Left: col("lineitem", "l_suppkey"), Right: col("supplier", "s_suppkey")},
			{Left: col("supplier", "s_nationkey"), Right: col("nation", "n_nationkey")},
			{Left: col("nation", "n_regionkey"), Right: col("region", "r_regionkey")},
		},
		Projection: []query.ColumnRef{
			col("nation", "n_nationkey"), col("lineitem", "l_extendedprice"),
		},
	}
	q10 := &query.Query{
		Name:      "q10-returned-items",
		Relations: []string{"customer", "orders", "lineitem", "nation"},
		Joins: []query.JoinPredicate{
			{Left: col("customer", "c_custkey"), Right: col("orders", "o_custkey")},
			{Left: col("orders", "o_orderkey"), Right: col("lineitem", "l_orderkey")},
			{Left: col("customer", "c_nationkey"), Right: col("nation", "n_nationkey")},
		},
		Projection: []query.ColumnRef{
			col("customer", "c_custkey"), col("lineitem", "l_extendedprice"),
		},
	}
	return cat, []*query.Query{q3, q5, q10}
}
