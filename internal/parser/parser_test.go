package parser

import (
	"strings"
	"testing"

	"paropt/internal/query"
)

const demoSchema = `
# demo warehouse
relation orders card=500000 pages=5000 disk=0
column orders.order_id ndv=500000 width=8
column orders.cust_id ndv=40000 width=8
relation customers card=40000 pages=400 disk=1 sorted=cust_id
column customers.cust_id ndv=40000 width=8
column customers.region ndv=25 width=8
relation tiny card=10 pages=1
index customers_pk on customers(cust_id) clustered disk=1
index orders_cust on orders(cust_id) covering disk=2 pages=300
`

func TestParseSchema(t *testing.T) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		t.Fatal(err)
	}
	orders := cat.MustRelation("orders")
	if orders.Card != 500000 || orders.Pages != 5000 || orders.Disk != 0 {
		t.Fatalf("orders = %+v", orders)
	}
	if len(orders.Columns) != 2 || orders.Columns[1].Name != "cust_id" {
		t.Fatalf("orders columns = %v", orders.Columns)
	}
	cust := cat.MustRelation("customers")
	if cust.SortedBy != "cust_id" {
		t.Error("sorted option ignored")
	}
	if got := cust.MustColumn("region").NDV; got != 25 {
		t.Errorf("region NDV = %d", got)
	}
	// Relation without columns gets a default id column.
	tiny := cat.MustRelation("tiny")
	if len(tiny.Columns) != 1 || tiny.Columns[0].Name != "id" {
		t.Errorf("tiny columns = %v", tiny.Columns)
	}
	pk, ok := cat.Index("customers_pk")
	if !ok || !pk.Clustered || pk.Disk != 1 {
		t.Fatalf("customers_pk = %+v", pk)
	}
	oc, ok := cat.Index("orders_cust")
	if !ok || !oc.Covering || oc.Pages != 300 || oc.Disk != 2 {
		t.Fatalf("orders_cust = %+v", oc)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unknown statement", "table foo card=1"},
		{"column before relation", "column r.c ndv=5"},
		{"index missing on", "relation r card=1\nindex i r(id)"},
		{"index bad paren", "relation r card=1\nindex i on r id)"},
		{"bad option value", "relation r card=(5)"},
		{"bad char", "relation r card=1 !"},
		{"index unknown relation", "index i on ghost(id)"},
		{"trailing tokens", "relation r card=1 pages=2 . extra"},
	}
	for _, tc := range cases {
		if _, err := ParseSchema(tc.src); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestParseQuery(t *testing.T) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(
		"SELECT orders.order_id, customers.region FROM orders, customers "+
			"WHERE orders.cust_id = customers.cust_id AND customers.region = 7", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 2 || len(q.Joins) != 1 || len(q.Selections) != 1 {
		t.Fatalf("parsed query = %+v", q)
	}
	if q.Selections[0].Value != 7 {
		t.Errorf("selection value = %d", q.Selections[0].Value)
	}
	if len(q.Projection) != 2 || q.Projection[1] != (query.ColumnRef{Relation: "customers", Column: "region"}) {
		t.Errorf("projection = %v", q.Projection)
	}
}

func TestParseQueryStar(t *testing.T) {
	cat, _ := ParseSchema(demoSchema)
	q, err := ParseQuery("select * from orders", cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Projection) != 0 || len(q.Relations) != 1 {
		t.Fatalf("star query = %+v", q)
	}
}

func TestParseQueryCaseInsensitive(t *testing.T) {
	cat, _ := ParseSchema(demoSchema)
	if _, err := ParseQuery("SeLeCt * FrOm orders, customers wHeRe orders.cust_id = customers.cust_id", cat); err != nil {
		t.Fatal(err)
	}
}

func TestParseQueryNegativeConstant(t *testing.T) {
	cat, _ := ParseSchema(demoSchema)
	q, err := ParseQuery("select * from customers where customers.region = -3", cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Selections[0].Value != -3 {
		t.Errorf("value = %d", q.Selections[0].Value)
	}
}

func TestParseQueryErrors(t *testing.T) {
	cat, _ := ParseSchema(demoSchema)
	cases := []struct{ name, src string }{
		{"no select", "FROM orders"},
		{"no from", "SELECT *"},
		{"bad projection", "SELECT orders FROM orders"},
		{"missing dot", "SELECT * FROM orders WHERE orders = 3"},
		{"bad rhs", "SELECT * FROM orders WHERE orders.cust_id = ,"},
		{"trailing", "SELECT * FROM orders extra.junk = 3"},
		{"unknown relation", "SELECT * FROM ghosts"},
		{"unknown column", "SELECT * FROM orders WHERE orders.ghost = 1"},
		{"join outside query", "SELECT * FROM orders WHERE orders.cust_id = customers.cust_id"},
		{"lex error", "SELECT * FROM orders WHERE orders.cust_id = @"},
	}
	for _, tc := range cases {
		if _, err := ParseQuery(tc.src, cat); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestLexerCoverage(t *testing.T) {
	toks, err := lex("a.b = 12, (x) * # comment\nnext")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	want := []tokenKind{tokIdent, tokDot, tokIdent, tokEq, tokNumber, tokComma,
		tokLParen, tokIdent, tokRParen, tokStar, tokIdent, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	// EOF is sticky.
	s, _ := newStream("x")
	s.next()
	if s.next().kind != tokEOF || s.next().kind != tokEOF {
		t.Error("EOF must be sticky")
	}
}

func TestRoundTripThroughOptimizerShapes(t *testing.T) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(
		"SELECT * FROM orders, customers WHERE orders.cust_id = customers.cust_id", cat)
	if err != nil {
		t.Fatal(err)
	}
	// The parsed query renders back to SQL-ish text that mentions both
	// relations and the predicate.
	s := q.String()
	for _, want := range []string{"orders", "customers", "orders.cust_id = customers.cust_id"} {
		if !strings.Contains(s, want) {
			t.Errorf("round trip missing %q in %q", want, s)
		}
	}
}
