package parser

import "testing"

// Native fuzz targets: `go test` runs the seed corpus; `go test -fuzz` digs
// deeper. The invariant in both cases is "no panic, error or value".

func FuzzParseQuery(f *testing.F) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		f.Fatal(err)
	}
	seeds := []string{
		"SELECT * FROM orders",
		"SELECT orders.order_id FROM orders, customers WHERE orders.cust_id = customers.cust_id",
		"SELECT * FROM orders WHERE orders.cust_id = -42",
		"select * from orders where",
		"SELECT",
		"",
		"SELECT * FROM orders WHERE orders.cust_id = customers",
		"SELECT *, FROM orders",
		"# comment only",
		"SELECT * FROM orders WHERE orders.cust_id = 99999999999999999999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src, cat)
		if err == nil && q == nil {
			t.Fatal("nil query without error")
		}
	})
}

func FuzzParseSchema(f *testing.F) {
	seeds := []string{
		demoSchema,
		"relation r card=1",
		"relation r card=1\ncolumn r.a ndv=1\nindex i on r(a) clustered",
		"relation r card=-5 pages=-5",
		"index orphan on ghost(x)",
		"column ghost.c ndv=1",
		"relation r card=1 sorted=missing",
		"relation r\n\n\n",
		"### \n relation # inline",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		cat, err := ParseSchema(src)
		if err == nil && cat == nil {
			t.Fatal("nil catalog without error")
		}
	})
}
