// Package parser turns text into catalogs and queries: a minimal SQL-ish
// SELECT grammar for SPJ queries and a small schema DDL, so the command
// line tools (and downstream users) can feed the optimizer real input
// instead of hand-built structs.
//
// Query grammar (keywords case-insensitive):
//
//	SELECT * | rel.col [, rel.col ...]
//	FROM rel [, rel ...]
//	[WHERE pred [AND pred ...]]
//	pred := rel.col = rel.col | rel.col = <integer>
//
// Schema grammar (one statement per line; '#' comments):
//
//	relation <name> card=<n> pages=<n> [disk=<n>] [sorted=<col>]
//	column   <rel>.<col> [ndv=<n>] [width=<n>]
//	index    <name> on <rel>(<col>[,<col>...]) [clustered] [covering] [disk=<n>] [pages=<n>]
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokEq
	tokStar
	tokLParen
	tokRParen
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes one input string.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex scans the whole input up front; SPJ inputs are tiny.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == ',':
			l.emit(tokComma, ",")
		case c == '.':
			l.emit(tokDot, ".")
		case c == '=':
			l.emit(tokEq, "=")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '-' || (c >= '0' && c <= '9'):
			start := l.pos
			l.pos++
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokNumber, l.src[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.tokens = append(l.tokens, token{tokIdent, l.src[start:l.pos], start})
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, l.pos)
		}
	}
	l.tokens = append(l.tokens, token{tokEOF, "", l.pos})
	return l.tokens, nil
}

func (l *lexer) emit(k tokenKind, text string) {
	l.tokens = append(l.tokens, token{k, text, l.pos})
	l.pos += len(text)
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// stream is a token cursor shared by the parsers.
type stream struct {
	toks []token
	i    int
}

func newStream(src string) (*stream, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &stream{toks: toks}, nil
}

func (s *stream) peek() token { return s.toks[s.i] }

func (s *stream) next() token {
	t := s.toks[s.i]
	if t.kind != tokEOF {
		s.i++
	}
	return t
}

// keyword consumes an identifier equal (case-insensitively) to kw.
func (s *stream) keyword(kw string) bool {
	t := s.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		s.next()
		return true
	}
	return false
}

// expect consumes a token of the given kind or fails.
func (s *stream) expect(k tokenKind, what string) (token, error) {
	t := s.next()
	if t.kind != k {
		return t, fmt.Errorf("parser: expected %s at offset %d, got %q", what, t.pos, t.text)
	}
	return t, nil
}

// ident consumes an identifier.
func (s *stream) ident(what string) (string, error) {
	t, err := s.expect(tokIdent, what)
	if err != nil {
		return "", err
	}
	return t.text, nil
}
