package parser

import (
	"fmt"
	"strconv"
	"strings"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// ParseQuery parses a SELECT statement into a Query and validates it
// against the catalog.
func ParseQuery(src string, cat *catalog.Catalog) (*query.Query, error) {
	s, err := newStream(src)
	if err != nil {
		return nil, err
	}
	q := &query.Query{Name: "parsed"}

	if !s.keyword("select") {
		return nil, fmt.Errorf("parser: query must start with SELECT")
	}
	if s.peek().kind == tokStar {
		s.next()
	} else {
		for {
			col, err := parseColumnRef(s)
			if err != nil {
				return nil, err
			}
			q.Projection = append(q.Projection, col)
			if s.peek().kind != tokComma {
				break
			}
			s.next()
		}
	}

	if !s.keyword("from") {
		return nil, fmt.Errorf("parser: expected FROM at offset %d", s.peek().pos)
	}
	for {
		rel, err := s.ident("relation name")
		if err != nil {
			return nil, err
		}
		q.Relations = append(q.Relations, rel)
		if s.peek().kind != tokComma {
			break
		}
		s.next()
	}

	if s.keyword("where") {
		for {
			if err := parsePredicate(s, q); err != nil {
				return nil, err
			}
			if !s.keyword("and") {
				break
			}
		}
	}
	if t := s.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q at offset %d", t.text, t.pos)
	}
	if err := q.Validate(cat); err != nil {
		return nil, err
	}
	return q, nil
}

// parseColumnRef parses rel.col.
func parseColumnRef(s *stream) (query.ColumnRef, error) {
	rel, err := s.ident("relation name")
	if err != nil {
		return query.ColumnRef{}, err
	}
	if _, err := s.expect(tokDot, "'.'"); err != nil {
		return query.ColumnRef{}, err
	}
	col, err := s.ident("column name")
	if err != nil {
		return query.ColumnRef{}, err
	}
	return query.ColumnRef{Relation: rel, Column: col}, nil
}

// parsePredicate parses one equality predicate: a join (rel.col = rel.col)
// or a selection (rel.col = <int>).
func parsePredicate(s *stream, q *query.Query) error {
	left, err := parseColumnRef(s)
	if err != nil {
		return err
	}
	if _, err := s.expect(tokEq, "'='"); err != nil {
		return err
	}
	switch t := s.peek(); t.kind {
	case tokNumber:
		s.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return fmt.Errorf("parser: bad integer %q at offset %d", t.text, t.pos)
		}
		q.Selections = append(q.Selections, query.Selection{Column: left, Value: v})
		return nil
	case tokIdent:
		right, err := parseColumnRef(s)
		if err != nil {
			return err
		}
		q.Joins = append(q.Joins, query.JoinPredicate{Left: left, Right: right})
		return nil
	default:
		return fmt.Errorf("parser: expected column or constant after '=' at offset %d", t.pos)
	}
}

// ParseSchema parses the schema DDL (see the package comment) into a fresh
// catalog. Column statements must follow their relation statement; an
// omitted column list gives the relation a single "id" key column.
func ParseSchema(src string) (*catalog.Catalog, error) {
	cat := catalog.New()
	type pendingRel struct {
		rel  catalog.Relation
		cols []catalog.Column
	}
	var rels []*pendingRel
	byName := map[string]*pendingRel{}
	type pendingIdx struct{ idx catalog.Index }
	var idxs []pendingIdx

	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := newStream(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		switch {
		case s.keyword("relation"):
			name, err := s.ident("relation name")
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			pr := &pendingRel{rel: catalog.Relation{Name: name}}
			opts, err := parseOptions(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			pr.rel.Card = opts.num("card", 1)
			pr.rel.Pages = opts.num("pages", 1)
			pr.rel.Disk = int(opts.num("disk", 0))
			pr.rel.SortedBy = opts.str("sorted")
			rels = append(rels, pr)
			byName[name] = pr

		case s.keyword("column"):
			col, err := parseColumnRef(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			pr, ok := byName[col.Relation]
			if !ok {
				return nil, fmt.Errorf("line %d: column for undeclared relation %s", lineNo+1, col.Relation)
			}
			opts, err := parseOptions(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			pr.cols = append(pr.cols, catalog.Column{
				Name:  col.Column,
				NDV:   opts.num("ndv", pr.rel.Card),
				Width: int(opts.num("width", 8)),
			})

		case s.keyword("index"):
			name, err := s.ident("index name")
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			if !s.keyword("on") {
				return nil, fmt.Errorf("line %d: expected ON", lineNo+1)
			}
			rel, err := s.ident("relation name")
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			if _, err := s.expect(tokLParen, "'('"); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			var cols []string
			for {
				c, err := s.ident("column name")
				if err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
				}
				cols = append(cols, c)
				if s.peek().kind != tokComma {
					break
				}
				s.next()
			}
			if _, err := s.expect(tokRParen, "')'"); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			idx := catalog.Index{Name: name, Relation: rel, Columns: cols}
			for {
				if s.keyword("clustered") {
					idx.Clustered = true
					continue
				}
				if s.keyword("covering") {
					idx.Covering = true
					continue
				}
				break
			}
			opts, err := parseOptions(s)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
			}
			idx.Disk = int(opts.num("disk", 0))
			idx.Pages = opts.num("pages", 0)
			idxs = append(idxs, pendingIdx{idx})

		default:
			return nil, fmt.Errorf("line %d: expected relation, column or index", lineNo+1)
		}
	}

	for _, pr := range rels {
		if len(pr.cols) == 0 {
			pr.cols = []catalog.Column{{Name: "id", NDV: pr.rel.Card, Width: 8}}
		}
		pr.rel.Columns = pr.cols
		if _, err := cat.AddRelation(pr.rel); err != nil {
			return nil, err
		}
	}
	for _, pi := range idxs {
		if _, err := cat.AddIndex(pi.idx); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// options is a parsed key=value list.
type options map[string]string

func (o options) num(key string, def int64) int64 {
	v, ok := o[key]
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return n
}

func (o options) str(key string) string { return o[key] }

// parseOptions reads trailing key=value pairs until end of statement.
func parseOptions(s *stream) (options, error) {
	opts := options{}
	for s.peek().kind == tokIdent {
		key, _ := s.ident("option name")
		if _, err := s.expect(tokEq, "'=' after option "+key); err != nil {
			return nil, err
		}
		t := s.next()
		if t.kind != tokNumber && t.kind != tokIdent {
			return nil, fmt.Errorf("parser: bad value for option %s at offset %d", key, t.pos)
		}
		opts[strings.ToLower(key)] = t.text
	}
	if t := s.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("parser: trailing input %q at offset %d", t.text, t.pos)
	}
	return opts, nil
}
