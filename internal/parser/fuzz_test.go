package parser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestQuickParserNeverPanics: arbitrary byte soup must produce an error or
// a query, never a panic.
func TestQuickParserNeverPanics(t *testing.T) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseQuery(string(raw), cat)
		_, _ = ParseSchema(string(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneratedQueriesRoundTrip: queries synthesized from the demo
// schema's vocabulary always parse and validate.
func TestQuickGeneratedQueriesRoundTrip(t *testing.T) {
	cat, err := ParseSchema(demoSchema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		if rng.Intn(2) == 0 {
			sb.WriteString("*")
		} else {
			sb.WriteString("orders.order_id")
		}
		sb.WriteString(" FROM orders")
		withCustomers := rng.Intn(2) == 0
		if withCustomers {
			sb.WriteString(", customers")
		}
		var preds []string
		if withCustomers {
			preds = append(preds, "orders.cust_id = customers.cust_id")
			if rng.Intn(2) == 0 {
				preds = append(preds, fmt.Sprintf("customers.region = %d", rng.Intn(30)))
			}
		}
		if rng.Intn(2) == 0 {
			preds = append(preds, fmt.Sprintf("orders.cust_id = %d", rng.Intn(100)))
		}
		if len(preds) > 0 {
			sb.WriteString(" WHERE " + strings.Join(preds, " AND "))
		}
		q, err := ParseQuery(sb.String(), cat)
		if err != nil {
			t.Fatalf("trial %d: %q: %v", trial, sb.String(), err)
		}
		if len(q.Relations) == 0 {
			t.Fatalf("trial %d: empty query", trial)
		}
	}
}

// TestQuickSchemaGeneratedRoundTrip: synthesized schemas always parse into
// consistent catalogs.
func TestQuickSchemaGeneratedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		nRels := 1 + rng.Intn(4)
		var sb strings.Builder
		for r := 0; r < nRels; r++ {
			card := 10 + rng.Intn(10000)
			fmt.Fprintf(&sb, "relation t%d card=%d pages=%d disk=%d\n", r, card, 1+card/100, rng.Intn(4))
			for c := 0; c < 1+rng.Intn(3); c++ {
				fmt.Fprintf(&sb, "column t%d.c%d ndv=%d width=%d\n", r, c, 1+rng.Intn(card), 4+rng.Intn(12))
			}
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "index ix%d on t%d(c0) disk=%d\n", r, r, rng.Intn(4))
			}
		}
		cat, err := ParseSchema(sb.String())
		if err != nil {
			t.Fatalf("trial %d:\n%s\n%v", trial, sb.String(), err)
		}
		if cat.NumRelations() != nRels {
			t.Fatalf("trial %d: %d relations, want %d", trial, cat.NumRelations(), nRels)
		}
	}
}
