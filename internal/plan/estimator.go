package plan

import (
	"fmt"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// Estimator derives logical and physical properties of plan nodes from
// catalog statistics, following the System R conventions the paper assumes.
// It also canonicalizes orderings through join equivalence classes so that
// interesting orders survive joins.
type Estimator struct {
	Cat *catalog.Catalog
	Q   *query.Query

	// classRep maps each query column to its equivalence-class
	// representative (the smallest member), so orderings compare equal
	// across join predicates.
	classRep map[query.ColumnRef]query.ColumnRef
}

// NewEstimator builds an estimator for a validated query.
func NewEstimator(cat *catalog.Catalog, q *query.Query) *Estimator {
	e := &Estimator{Cat: cat, Q: q, classRep: map[query.ColumnRef]query.ColumnRef{}}
	for _, class := range q.EquivalenceClasses() {
		rep := class[0]
		for _, c := range class {
			e.classRep[c] = rep
		}
	}
	return e
}

// Canon maps a column to its equivalence-class representative; columns
// outside any join class map to themselves.
func (e *Estimator) Canon(c query.ColumnRef) query.ColumnRef {
	if rep, ok := e.classRep[c]; ok {
		return rep
	}
	return c
}

// CanonOrdering canonicalizes every column of an ordering.
func (e *Estimator) CanonOrdering(o Ordering) Ordering {
	if len(o) == 0 {
		return nil
	}
	out := make(Ordering, len(o))
	for i, c := range o {
		out[i] = e.Canon(c)
	}
	return out
}

// columnNDV resolves a column's NDV from the catalog.
func (e *Estimator) columnNDV(c query.ColumnRef) int64 {
	rel, ok := e.Cat.Relation(c.Relation)
	if !ok {
		return 1
	}
	col, ok := rel.Column(c.Column)
	if !ok {
		return 1
	}
	return col.NDV
}

// selSelectivity is the estimated selectivity of a leaf selection.
func (e *Estimator) selSelectivity(s query.Selection) float64 {
	if s.Selectivity > 0 {
		return s.Selectivity
	}
	rel, ok := e.Cat.Relation(s.Column.Relation)
	if !ok {
		return 1
	}
	col, ok := rel.Column(s.Column.Column)
	if !ok {
		return 1
	}
	return catalog.EqSelectivity(col)
}

// joinSelectivity is the estimated selectivity of a join predicate.
func (e *Estimator) joinSelectivity(p query.JoinPredicate) float64 {
	if p.Selectivity > 0 {
		return p.Selectivity
	}
	lrel, lok := e.Cat.Relation(p.Left.Relation)
	rrel, rok := e.Cat.Relation(p.Right.Relation)
	if !lok || !rok {
		return 1
	}
	lcol, lok := lrel.Column(p.Left.Column)
	rcol, rok := rrel.Column(p.Right.Column)
	if !lok || !rok {
		return 1
	}
	return catalog.JoinSelectivity(lcol, rcol)
}

// Leaf builds a leaf node for the relation with the given access path,
// deriving cardinality (after the query's selections on that relation),
// width and ordering.
func (e *Estimator) Leaf(rel string, access Access, idx *catalog.Index) (*Node, error) {
	r, ok := e.Cat.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("plan: unknown relation %s", rel)
	}
	pos := e.Q.RelationIndex(rel)
	if pos < 0 {
		return nil, fmt.Errorf("plan: relation %s not in query %s", rel, e.Q.Name)
	}
	if access == IndexScan {
		if idx == nil {
			return nil, fmt.Errorf("plan: index scan on %s needs an index", rel)
		}
		if idx.Relation != rel {
			return nil, fmt.Errorf("plan: index %s is on %s, not %s", idx.Name, idx.Relation, rel)
		}
	}
	card := r.Card
	for _, s := range e.Q.SelectionsOn(rel) {
		card = int64(float64(card) * e.selSelectivity(s))
	}
	if card < 1 {
		card = 1
	}
	n := &Node{
		Relation: rel,
		Access:   access,
		Index:    idx,
		Rels:     query.NewRelSet(pos),
		Card:     card,
		Width:    r.TupleWidth(),
	}
	switch {
	case access == IndexScan:
		o := make(Ordering, len(idx.Columns))
		for i, c := range idx.Columns {
			o[i] = query.ColumnRef{Relation: rel, Column: c}
		}
		n.Order = e.CanonOrdering(o)
	case r.SortedBy != "":
		n.Order = e.CanonOrdering(Ordering{{Relation: rel, Column: r.SortedBy}})
	}
	return n, nil
}

// Join builds a join node over two disjoint subtrees with the given method,
// collecting every query predicate that spans them and deriving output
// properties. Joining two subtrees with no spanning predicate is a cross
// product; it is permitted (Card multiplies) but flagged by CrossProduct.
func (e *Estimator) Join(left, right *Node, method JoinMethod) (*Node, error) {
	if !left.Rels.Intersect(right.Rels).Empty() {
		return nil, fmt.Errorf("plan: join operands overlap: %v and %v", left.Rels, right.Rels)
	}
	preds := e.Q.JoinsBetween(left.Rels, right.Rels)
	sel := 1.0
	for _, p := range preds {
		sel *= e.joinSelectivity(p)
	}
	n := &Node{
		Left:   left,
		Right:  right,
		Method: method,
		Preds:  preds,
		Rels:   left.Rels.Union(right.Rels),
		Card:   catalog.JoinCard(left.Card, right.Card, sel),
		Width:  left.Width + right.Width,
	}
	switch method {
	case NestedLoops:
		// Pipelined on the outer: preserves the outer (left) order.
		n.Order = left.Order
	case SortMerge:
		// Output is ordered on the (canonicalized) merge column.
		if len(preds) > 0 {
			n.Order = e.CanonOrdering(Ordering{preds[0].Left})
		}
	case HashJoin:
		// Hash partitioning destroys order.
	}
	return n, nil
}

// CrossProduct reports whether the join node has no spanning predicate.
func CrossProduct(n *Node) bool { return !n.IsLeaf() && len(n.Preds) == 0 }

// MergeOrder returns the ordering a sort-merge join over the predicates
// needs on the given side (left or right), canonicalized.
func (e *Estimator) MergeOrder(preds []query.JoinPredicate, leftSide bool) Ordering {
	if len(preds) == 0 {
		return nil
	}
	p := preds[0]
	if leftSide {
		return e.CanonOrdering(Ordering{p.Left})
	}
	return e.CanonOrdering(Ordering{p.Right})
}

// JoinColumnNDV estimates the distinct values of the first join predicate's
// column on the chosen side, used to bound partitioning fan-out.
func (e *Estimator) JoinColumnNDV(preds []query.JoinPredicate, leftSide bool) int64 {
	if len(preds) == 0 {
		return 1
	}
	if leftSide {
		return e.columnNDV(preds[0].Left)
	}
	return e.columnNDV(preds[0].Right)
}
