package plan

import (
	"math/rand"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// Estimator invariants over random catalogs and plans: cardinalities are
// positive and bounded by the cross product, widths add up, relation sets
// partition, and orderings only ever reference query columns.

func randWorld(t *testing.T, seed int64) (*catalog.Catalog, *query.Query, *Estimator, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := query.GenConfig{
		Relations:  3 + rng.Intn(3),
		Shape:      query.Shape(rng.Intn(4)),
		MinCard:    10,
		MaxCard:    100_000,
		Disks:      4,
		IndexProb:  0.5,
		SortedProb: 0.3,
		Seed:       seed,
	}
	cat, q := query.Generate(cfg)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	return cat, q, NewEstimator(cat, q), rng
}

func randPlanFor(t *testing.T, est *Estimator, q *query.Query, rng *rand.Rand) *Node {
	t.Helper()
	perm := rng.Perm(len(q.Relations))
	nodes := make([]*Node, len(perm))
	for i, pos := range perm {
		leaf, err := est.Leaf(q.Relations[pos], SeqScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = leaf
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes) - 1)
		m := AllJoinMethods[rng.Intn(3)]
		j, err := est.Join(nodes[i], nodes[i+1], m)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes[:i], append([]*Node{j}, nodes[i+2:]...)...)
	}
	return nodes[0]
}

func TestQuickEstimatorInvariants(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		cat, q, est, rng := randWorld(t, seed)
		p := randPlanFor(t, est, q, rng)
		var walk func(n *Node) (card float64)
		walk = func(n *Node) float64 {
			if n.Card < 1 {
				t.Fatalf("seed %d: non-positive card %d at %s", seed, n.Card, n)
			}
			if n.IsLeaf() {
				rel := cat.MustRelation(n.Relation)
				if n.Card > rel.Card {
					t.Fatalf("seed %d: leaf card %d exceeds relation card %d", seed, n.Card, rel.Card)
				}
				if n.Width != rel.TupleWidth() {
					t.Fatalf("seed %d: leaf width %d != relation width %d", seed, n.Width, rel.TupleWidth())
				}
				return float64(n.Card)
			}
			lc := walk(n.Left)
			rc := walk(n.Right)
			// Compare in float64: the cross product of several 100k-row
			// relations overflows int64.
			if float64(n.Card) > lc*rc*(1+1e-9) {
				t.Fatalf("seed %d: join card %d exceeds cross product %g", seed, n.Card, lc*rc)
			}
			if n.Width != n.Left.Width+n.Right.Width {
				t.Fatalf("seed %d: join width %d != %d+%d", seed, n.Width, n.Left.Width, n.Right.Width)
			}
			if !n.Left.Rels.Intersect(n.Right.Rels).Empty() {
				t.Fatalf("seed %d: overlapping operand relations", seed)
			}
			if n.Rels != n.Left.Rels.Union(n.Right.Rels) {
				t.Fatalf("seed %d: Rels not the union of operands", seed)
			}
			for _, c := range n.Order {
				if q.RelationIndex(c.Relation) < 0 {
					t.Fatalf("seed %d: ordering column %v outside the query", seed, c)
				}
			}
			return float64(n.Card)
		}
		walk(p)
		if p.Rels != query.FullSet(len(q.Relations)) {
			t.Fatalf("seed %d: root does not cover all relations", seed)
		}
	}
}

// TestExplicitSelectivityOverrides: user-supplied selectivities take
// precedence over NDV-derived ones.
func TestExplicitSelectivityOverrides(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"A", "B"} {
		cat.MustAddRelation(catalog.Relation{
			Name:    name,
			Columns: []catalog.Column{{Name: "k", NDV: 100, Width: 8}},
			Card:    10_000, Pages: 100,
		})
	}
	q := &query.Query{
		Relations: []string{"A", "B"},
		Joins: []query.JoinPredicate{{
			Left:        query.ColumnRef{Relation: "A", Column: "k"},
			Right:       query.ColumnRef{Relation: "B", Column: "k"},
			Selectivity: 0.5,
		}},
		Selections: []query.Selection{{
			Column:      query.ColumnRef{Relation: "A", Column: "k"},
			Selectivity: 0.1,
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(cat, q)
	a, _ := est.Leaf("A", SeqScan, nil)
	if a.Card != 1000 { // 10k × 0.1 explicit
		t.Errorf("selection override: card = %d, want 1000", a.Card)
	}
	b, _ := est.Leaf("B", SeqScan, nil)
	j, _ := est.Join(a, b, HashJoin)
	if j.Card != 1000*10_000/2 { // explicit 0.5
		t.Errorf("join override: card = %d, want %d", j.Card, 1000*10_000/2)
	}
}
