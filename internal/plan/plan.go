// Package plan defines the execution space of annotated join trees (§3 of
// the paper): binary trees whose internal nodes are joins and whose leaves
// are base-relation accesses, with annotations such as the join method and
// access path. Trees may be left-deep or bushy; the semantic constraint that
// every subtree tuple is computed exactly once is enforced by construction
// (each relation appears in exactly one leaf).
//
// Nodes are immutable after construction and may be shared between plans,
// which is what dynamic programming over subsets requires.
package plan

import (
	"fmt"
	"strings"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// JoinMethod is the join-method annotation of a join node.
type JoinMethod uint8

const (
	// NestedLoops probes the inner once per outer tuple, ideally through an
	// index; output preserves the outer order and is fully pipelined.
	NestedLoops JoinMethod = iota
	// SortMerge sorts both inputs (unless already ordered) and merges;
	// output is ordered on the join column; the sorts materialize.
	SortMerge
	// HashJoin builds a hash table on the inner and probes with the outer;
	// the build materializes, the probe pipelines; output is unordered.
	HashJoin
)

// AllJoinMethods lists every method, in the order optimizers enumerate them.
var AllJoinMethods = []JoinMethod{NestedLoops, SortMerge, HashJoin}

// String names the method as in the paper's examples.
func (m JoinMethod) String() string {
	switch m {
	case NestedLoops:
		return "nested-loops"
	case SortMerge:
		return "sort-merge"
	case HashJoin:
		return "hash-join"
	default:
		return fmt.Sprintf("join-method(%d)", int(m))
	}
}

// Access is the access-path annotation of a leaf.
type Access uint8

const (
	// SeqScan reads the heap sequentially.
	SeqScan Access = iota
	// IndexScan reads through an index; clustered indexes read the heap in
	// key order, unclustered ones fetch one page per qualifying tuple.
	IndexScan
)

// String names the access path.
func (a Access) String() string {
	switch a {
	case SeqScan:
		return "scan"
	case IndexScan:
		return "indexScan"
	default:
		return fmt.Sprintf("access(%d)", int(a))
	}
}

// Ordering is a physical tuple ordering: a sequence of columns, normalized
// to equivalence-class representatives so that an order on R.id is
// recognized as an order on S.fk after an R.id = S.fk join. The paper (§6.3)
// compares orderings by the "subsequence of" relation.
type Ordering []query.ColumnRef

// Empty reports whether no ordering is known.
func (o Ordering) Empty() bool { return len(o) == 0 }

// Equal reports element-wise equality.
func (o Ordering) Equal(p Ordering) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Prefix reports whether o is a prefix of p. A plan ordered by p satisfies
// any requirement that is a prefix of p.
func (o Ordering) Prefix(p Ordering) bool {
	if len(o) > len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// Subsequence reports whether o is a (not necessarily contiguous)
// subsequence of p — the paper's ≤ordering relation.
func (o Ordering) Subsequence(p Ordering) bool {
	i := 0
	for _, c := range p {
		if i < len(o) && o[i] == c {
			i++
		}
	}
	return i == len(o)
}

// String renders "R.a,R.b" or "-" when empty.
func (o Ordering) String() string {
	if len(o) == 0 {
		return "-"
	}
	parts := make([]string, len(o))
	for i, c := range o {
		parts[i] = c.String()
	}
	return strings.Join(parts, ",")
}

// Node is one node of an annotated join tree. A node is a leaf when Left is
// nil, and a join when Left and Right are both non-nil.
type Node struct {
	// Leaf fields.
	Relation string
	Access   Access
	// Index is the access index when Access == IndexScan.
	Index *catalog.Index

	// Join fields.
	Left, Right *Node
	Method      JoinMethod
	// Preds are the equijoin predicates applied at this node.
	Preds []query.JoinPredicate

	// Derived logical and physical properties, filled by the Estimator.

	// Rels is the set of base relations under this node.
	Rels query.RelSet
	// Card is the estimated output cardinality.
	Card int64
	// Width is the estimated output tuple byte width.
	Width int
	// Order is the physical output ordering (canonicalized), possibly empty.
	Order Ordering
}

// IsLeaf reports whether the node is a base-relation access.
func (n *Node) IsLeaf() bool { return n.Left == nil }

// Leaves appends the leaf nodes in left-to-right order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsLeaf() {
			out = append(out, m)
			return
		}
		walk(m.Left)
		walk(m.Right)
	}
	walk(n)
	return out
}

// LeftDeep reports whether every right child is a leaf — the System R shape.
func (n *Node) LeftDeep() bool {
	if n.IsLeaf() {
		return true
	}
	return n.Right.IsLeaf() && n.Left.LeftDeep()
}

// Depth is the number of join levels (0 for a leaf).
func (n *Node) Depth() int {
	if n.IsLeaf() {
		return 0
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return l + 1
}

// NumJoins counts the join nodes.
func (n *Node) NumJoins() int {
	if n.IsLeaf() {
		return 0
	}
	return 1 + n.Left.NumJoins() + n.Right.NumJoins()
}

// String renders the plan in the paper's functional notation, e.g.
// "NL(SM(scan(R1), scan(R2)), indexScan(I_R3))".
func (n *Node) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *Node) write(b *strings.Builder) {
	if n.IsLeaf() {
		if n.Access == IndexScan && n.Index != nil {
			fmt.Fprintf(b, "indexScan(%s)", n.Index.Name)
		} else {
			fmt.Fprintf(b, "scan(%s)", n.Relation)
		}
		return
	}
	switch n.Method {
	case NestedLoops:
		b.WriteString("NL(")
	case SortMerge:
		b.WriteString("SM(")
	case HashJoin:
		b.WriteString("HJ(")
	default:
		b.WriteString("J(")
	}
	n.Left.write(b)
	b.WriteString(", ")
	n.Right.write(b)
	b.WriteString(")")
}

// Indent renders a multi-line tree for explain output.
func (n *Node) Indent() string {
	var b strings.Builder
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		if m.IsLeaf() {
			fmt.Fprintf(&b, "%s %s", m.Access, m.Relation)
			if m.Index != nil {
				fmt.Fprintf(&b, " via %s", m.Index.Name)
			}
		} else {
			fmt.Fprintf(&b, "%s", m.Method)
			if len(m.Preds) > 0 {
				preds := make([]string, len(m.Preds))
				for i, p := range m.Preds {
					preds[i] = p.String()
				}
				fmt.Fprintf(&b, " on %s", strings.Join(preds, " AND "))
			}
		}
		fmt.Fprintf(&b, "  [card=%d order=%s]\n", m.Card, m.Order)
		if !m.IsLeaf() {
			walk(m.Left, depth+1)
			walk(m.Right, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
