package plan

import (
	"strings"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/query"
)

// fixture builds a 3-relation chain query R-S-T with indexes on S and T.
func fixture(t *testing.T) (*catalog.Catalog, *query.Query, *Estimator) {
	t.Helper()
	cat := catalog.New()
	add := func(name string, card int64, sortedBy string) {
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", NDV: card, Width: 8},
				{Name: "fk", NDV: card / 10, Width: 8},
			},
			Card:     card,
			Pages:    card / 50,
			SortedBy: sortedBy,
		})
	}
	add("R", 10000, "")
	add("S", 2000, "id")
	add("T", 500, "")
	cat.MustAddIndex(catalog.Index{Name: "S_fk", Relation: "S", Columns: []string{"fk"}, Clustered: true, Disk: 1})
	cat.MustAddIndex(catalog.Index{Name: "T_fk", Relation: "T", Columns: []string{"fk"}, Disk: 2})
	q := &query.Query{
		Name:      "chain3",
		Relations: []string{"R", "S", "T"},
		Joins: []query.JoinPredicate{
			{Left: query.ColumnRef{Relation: "R", Column: "id"}, Right: query.ColumnRef{Relation: "S", Column: "fk"}},
			{Left: query.ColumnRef{Relation: "S", Column: "id"}, Right: query.ColumnRef{Relation: "T", Column: "fk"}},
		},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	return cat, q, NewEstimator(cat, q)
}

func TestLeafSeqScan(t *testing.T) {
	_, _, e := fixture(t)
	n, err := e.Leaf("R", SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsLeaf() || n.Card != 10000 || n.Width != 16 {
		t.Fatalf("leaf = %+v", n)
	}
	if !n.Order.Empty() {
		t.Errorf("unsorted heap should have empty order, got %v", n.Order)
	}
	if n.Rels != query.NewRelSet(0) {
		t.Errorf("Rels = %v", n.Rels)
	}
}

func TestLeafSortedHeapOrder(t *testing.T) {
	_, _, e := fixture(t)
	n, err := e.Leaf("S", SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	// S.id is equivalent to T.fk; the class representative is S.id.
	want := query.ColumnRef{Relation: "S", Column: "id"}
	if len(n.Order) != 1 || n.Order[0] != want {
		t.Fatalf("order = %v, want [%v]", n.Order, want)
	}
}

func TestLeafIndexScan(t *testing.T) {
	cat, _, e := fixture(t)
	idx, _ := cat.Index("S_fk")
	n, err := e.Leaf("S", IndexScan, idx)
	if err != nil {
		t.Fatal(err)
	}
	// S.fk is in the class of R.id; representative is R.id.
	want := query.ColumnRef{Relation: "R", Column: "id"}
	if len(n.Order) != 1 || n.Order[0] != want {
		t.Fatalf("index order = %v, want [%v]", n.Order, want)
	}
}

func TestLeafErrors(t *testing.T) {
	cat, _, e := fixture(t)
	if _, err := e.Leaf("X", SeqScan, nil); err == nil {
		t.Error("unknown relation should error")
	}
	if _, err := e.Leaf("R", IndexScan, nil); err == nil {
		t.Error("index scan without index should error")
	}
	idx, _ := cat.Index("S_fk")
	if _, err := e.Leaf("R", IndexScan, idx); err == nil {
		t.Error("index on wrong relation should error")
	}
}

func TestLeafSelectionReducesCard(t *testing.T) {
	cat, q, _ := fixture(t)
	q.Selections = []query.Selection{{Column: query.ColumnRef{Relation: "R", Column: "fk"}}}
	e := NewEstimator(cat, q)
	n, err := e.Leaf("R", SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	// R.fk NDV = 1000, so card = 10000/1000 = 10.
	if n.Card != 10 {
		t.Fatalf("selected card = %d, want 10", n.Card)
	}
}

func TestJoinProperties(t *testing.T) {
	_, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	s, _ := e.Leaf("S", SeqScan, nil)
	j, err := e.Join(r, s, HashJoin)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Preds) != 1 {
		t.Fatalf("preds = %v", j.Preds)
	}
	// sel = 1/max(NDV(R.id)=10000, NDV(S.fk)=200) = 1e-4; card = 1e4*2e3*1e-4 = 2000.
	if j.Card != 2000 {
		t.Fatalf("join card = %d, want 2000", j.Card)
	}
	if j.Width != 32 {
		t.Fatalf("join width = %d, want 32", j.Width)
	}
	if !j.Order.Empty() {
		t.Error("hash join output must be unordered")
	}
	if j.Rels != query.NewRelSet(0, 1) {
		t.Errorf("Rels = %v", j.Rels)
	}
}

func TestJoinOrderPropagation(t *testing.T) {
	_, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	s, _ := e.Leaf("S", SeqScan, nil) // ordered by class rep of S.id
	nl, err := e.Join(s, r, NestedLoops)
	if err != nil {
		t.Fatal(err)
	}
	if !nl.Order.Equal(s.Order) {
		t.Errorf("NL should preserve outer order: got %v want %v", nl.Order, s.Order)
	}
	sm, err := e.Join(r, s, SortMerge)
	if err != nil {
		t.Fatal(err)
	}
	want := query.ColumnRef{Relation: "R", Column: "id"}
	if len(sm.Order) != 1 || sm.Order[0] != want {
		t.Errorf("SM order = %v, want [%v]", sm.Order, want)
	}
}

func TestJoinOverlapError(t *testing.T) {
	_, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	s, _ := e.Leaf("S", SeqScan, nil)
	rs, _ := e.Join(r, s, HashJoin)
	if _, err := e.Join(rs, s, HashJoin); err == nil {
		t.Error("overlapping operands should error")
	}
}

func TestCrossProduct(t *testing.T) {
	_, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	tt, _ := e.Leaf("T", SeqScan, nil)
	x, err := e.Join(r, tt, NestedLoops) // R and T not directly joined
	if err != nil {
		t.Fatal(err)
	}
	if !CrossProduct(x) {
		t.Error("R×T should be a cross product")
	}
	if x.Card != 10000*500 {
		t.Errorf("cross card = %d", x.Card)
	}
	if CrossProduct(r) {
		t.Error("a leaf is not a cross product")
	}
}

func TestTreeShapeHelpers(t *testing.T) {
	_, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	s, _ := e.Leaf("S", SeqScan, nil)
	tt, _ := e.Leaf("T", SeqScan, nil)
	rs, _ := e.Join(r, s, HashJoin)
	rst, _ := e.Join(rs, tt, NestedLoops)
	if !rst.LeftDeep() {
		t.Error("rst should be left-deep")
	}
	st, _ := e.Join(s, tt, HashJoin)
	bushyR, _ := e.Leaf("R", SeqScan, nil)
	bushy, _ := e.Join(bushyR, st, HashJoin)
	if bushy.LeftDeep() {
		t.Error("R⨝(S⨝T) is not left-deep")
	}
	if rst.Depth() != 2 || bushy.Depth() != 2 {
		t.Errorf("depths = %d, %d", rst.Depth(), bushy.Depth())
	}
	if rst.NumJoins() != 2 {
		t.Errorf("NumJoins = %d", rst.NumJoins())
	}
	leaves := rst.Leaves()
	if len(leaves) != 3 || leaves[0].Relation != "R" || leaves[2].Relation != "T" {
		t.Errorf("Leaves = %v", leaves)
	}
}

func TestStringRendering(t *testing.T) {
	cat, _, e := fixture(t)
	r, _ := e.Leaf("R", SeqScan, nil)
	idx, _ := cat.Index("S_fk")
	s, _ := e.Leaf("S", IndexScan, idx)
	j, _ := e.Join(r, s, SortMerge)
	if got := j.String(); got != "SM(scan(R), indexScan(S_fk))" {
		t.Errorf("String = %q", got)
	}
	ind := j.Indent()
	for _, want := range []string{"sort-merge", "scan R", "via S_fk", "card="} {
		if !strings.Contains(ind, want) {
			t.Errorf("Indent missing %q:\n%s", want, ind)
		}
	}
}

func TestOrderingRelations(t *testing.T) {
	a := query.ColumnRef{Relation: "R", Column: "a"}
	b := query.ColumnRef{Relation: "R", Column: "b"}
	c := query.ColumnRef{Relation: "R", Column: "c"}
	o := Ordering{a, c}
	p := Ordering{a, b, c}
	if !o.Subsequence(p) {
		t.Error("a,c should be a subsequence of a,b,c")
	}
	if p.Subsequence(o) {
		t.Error("a,b,c is not a subsequence of a,c")
	}
	if !(Ordering{}).Subsequence(o) {
		t.Error("empty is a subsequence of anything")
	}
	if !(Ordering{a}).Prefix(p) || (Ordering{b}).Prefix(p) {
		t.Error("Prefix wrong")
	}
	if !o.Equal(Ordering{a, c}) || o.Equal(p) {
		t.Error("Equal wrong")
	}
	if got := p.String(); got != "R.a,R.b,R.c" {
		t.Errorf("String = %q", got)
	}
	if got := Ordering(nil).String(); got != "-" {
		t.Errorf("empty String = %q", got)
	}
}

func TestMergeOrderAndNDV(t *testing.T) {
	_, q, e := fixture(t)
	preds := q.Joins[:1] // R.id = S.fk
	lo := e.MergeOrder(preds, true)
	ro := e.MergeOrder(preds, false)
	if !lo.Equal(ro) {
		t.Errorf("merge orders should canonicalize equal: %v vs %v", lo, ro)
	}
	if e.MergeOrder(nil, true) != nil {
		t.Error("no preds, no merge order")
	}
	if got := e.JoinColumnNDV(preds, true); got != 10000 {
		t.Errorf("NDV(R.id) = %d", got)
	}
	if got := e.JoinColumnNDV(preds, false); got != 200 {
		t.Errorf("NDV(S.fk) = %d", got)
	}
	if got := e.JoinColumnNDV(nil, true); got != 1 {
		t.Errorf("NDV(no preds) = %d", got)
	}
}

func TestMethodAndAccessStrings(t *testing.T) {
	if NestedLoops.String() != "nested-loops" || SortMerge.String() != "sort-merge" || HashJoin.String() != "hash-join" {
		t.Error("JoinMethod strings wrong")
	}
	if JoinMethod(9).String() != "join-method(9)" {
		t.Error("unknown method string wrong")
	}
	if SeqScan.String() != "scan" || IndexScan.String() != "indexScan" {
		t.Error("Access strings wrong")
	}
	if Access(9).String() != "access(9)" {
		t.Error("unknown access string wrong")
	}
}

func TestCanonFallback(t *testing.T) {
	_, _, e := fixture(t)
	outside := query.ColumnRef{Relation: "Z", Column: "zz"}
	if got := e.Canon(outside); got != outside {
		t.Errorf("Canon of unknown column = %v", got)
	}
	if got := e.CanonOrdering(nil); got != nil {
		t.Errorf("CanonOrdering(nil) = %v", got)
	}
}
