// Package stats provides the small statistical helpers the experiment
// harness and tools share: rank correlation, permutation enumeration, and
// summary aggregates.
package stats

import (
	"math"
	"sort"
)

// Ranks assigns 0-based ranks by ascending value (ties broken by index).
func Ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	r := make([]float64, len(xs))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// Spearman computes the rank correlation coefficient of paired samples;
// zero for degenerate inputs.
func Spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := Ranks(a), Ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// Permutations enumerates all orderings of 0..n-1. Factorial growth; meant
// for n ≤ 8.
func Permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), prefix...))
			return
		}
		for i := range rest {
			next := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			rec(append(prefix, rest[i]), next)
		}
	}
	rec(nil, base)
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MaxAbsRelErr returns max_i |a_i − b_i| / max(|b_i|, eps).
func MaxAbsRelErr(a, b []float64) float64 {
	const eps = 1e-12
	worst := 0.0
	for i := range a {
		d := math.Abs(a[i] - b[i])
		den := math.Abs(b[i])
		if den < eps {
			den = eps
		}
		if r := d / den; r > worst {
			worst = r
		}
	}
	return worst
}
