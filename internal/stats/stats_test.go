package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRanks(t *testing.T) {
	r := Ranks([]float64{30, 10, 20})
	if r[0] != 2 || r[1] != 0 || r[2] != 1 {
		t.Fatalf("Ranks = %v", r)
	}
}

func TestSpearmanPerfect(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{10, 20, 30, 40}
	if got := Spearman(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %g", got)
	}
	rev := []float64{40, 30, 20, 10}
	if got := Spearman(a, rev); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %g", got)
	}
}

func TestSpearmanDegenerate(t *testing.T) {
	if Spearman([]float64{1}, []float64{2}) != 0 {
		t.Error("single sample should be 0")
	}
	if Spearman([]float64{1, 2}, []float64{3}) != 0 {
		t.Error("length mismatch should be 0")
	}
}

func TestPermutations(t *testing.T) {
	ps := Permutations(3)
	if len(ps) != 6 {
		t.Fatalf("3! = %d", len(ps))
	}
	seen := map[[3]int]bool{}
	for _, p := range ps {
		var key [3]int
		copy(key[:], p)
		if seen[key] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[key] = true
	}
	if got := Permutations(0); len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Permutations(0) = %v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("mean wrong")
	}
}

func TestMaxAbsRelErr(t *testing.T) {
	if got := MaxAbsRelErr([]float64{11, 20}, []float64{10, 20}); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("rel err = %g", got)
	}
	if got := MaxAbsRelErr(nil, nil); got != 0 {
		t.Errorf("empty rel err = %g", got)
	}
}

// Property: Spearman is bounded in [-1, 1].
func TestQuickSpearmanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(raw[i])
			b[i] = float64(raw[n+i])
		}
		rho := Spearman(a, b)
		return rho >= -1-1e-9 && rho <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
