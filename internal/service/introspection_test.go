package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/parser"
)

// wideDDL is a 10-relation chain schema for the introspection acceptance
// scenarios (a search deep enough to produce ten DP layers).
const wideDDL = testDDL + `
relation R7 card=55000 pages=550 disk=2
column R7.a ndv=1000
column R7.b ndv=3500
relation R8 card=85000 pages=850 disk=3
column R8.a ndv=3500
column R8.b ndv=4500
relation R9 card=65000 pages=650 disk=0
column R9.a ndv=4500
column R9.b ndv=2800
relation R10 card=45000 pages=450 disk=1
column R10.a ndv=2800
column R10.b ndv=1500
`

func mustSchema(t *testing.T, ddl string) *catalog.Catalog {
	t.Helper()
	cat, err := parser.ParseSchema(ddl)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// newWideServer serves the 10-relation catalog with a beam-bounded search:
// an unbounded 10-relation PODP frontier is too expensive for a unit test,
// and the cap additionally exercises the beam prune counter.
func newWideServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	return newTestServer(t, func(cfg *Config) {
		cfg.Catalog = mustSchema(t, wideDDL)
		cfg.CoverCap = 12
	})
}

// TestDebugSearchPerLayerRecords is the tentpole acceptance scenario:
// /debug/search returns per-layer telemetry for a 10-relation search, cache
// hits bump the originating entry's counter and flip its cached flag, and the
// new Prometheus families appear on /metrics.
func TestDebugSearchPerLayerRecords(t *testing.T) {
	s, srv := newWideServer(t)
	ctx := context.Background()

	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(10, 7)}); err != nil {
		t.Fatal(err)
	}
	resp, body := getBody(t, srv.URL+"/debug/search")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/search: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Searches []SearchLogEntry `json:"searches"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Searches) != 1 {
		t.Fatalf("want 1 recorded search, got %d", len(out.Searches))
	}
	e := out.Searches[0]
	if e.Relations != 10 || e.Source != "search" {
		t.Errorf("entry = relations %d source %q, want 10/search", e.Relations, e.Source)
	}
	if len(e.Layers) != 10 {
		t.Fatalf("10-relation PODP search should record 10 layers, got %d", len(e.Layers))
	}
	var kept, pruned int64
	for i, l := range e.Layers {
		if l.Card != i+1 {
			t.Errorf("layer %d has cardinality %d", i, l.Card)
		}
		kept += l.Kept
		pruned += l.Pruned()
	}
	if kept == 0 {
		t.Error("layers should retain candidates")
	}
	if pruned != e.Pruned {
		t.Errorf("per-layer pruned sum %d != total %d", pruned, e.Pruned)
	}
	if e.Pruned != e.PrunedDominance+e.PrunedWork+e.PrunedMemory+e.PrunedBeam {
		t.Errorf("prune reasons don't partition the total: %+v", e)
	}
	if e.PeakBytesRetained <= 0 || e.FrontierSize < 1 || e.ElapsedMicros <= 0 {
		t.Errorf("entry missing aggregates: %+v", e)
	}
	if e.Cached || e.CacheHits != 0 {
		t.Errorf("fresh search must not be marked cached: %+v", e)
	}

	// A cache hit bumps the originating entry instead of adding a new one.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(10, 99)}); err != nil {
		t.Fatal(err)
	}
	_, body = getBody(t, srv.URL+"/debug/search")
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Searches) != 1 {
		t.Fatalf("cache hit must not add a search entry, got %d", len(out.Searches))
	}
	if !out.Searches[0].Cached || out.Searches[0].CacheHits != 1 {
		t.Errorf("hit should mark the entry cached with 1 hit: %+v", out.Searches[0])
	}

	// Text rendering carries the per-layer table.
	resp, body = getBody(t, srv.URL+"/debug/search?format=text")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/search?format=text: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{"relations=10", "cached=true", "layer", "total"} {
		if !strings.Contains(text, want) {
			t.Errorf("text listing missing %q:\n%s", want, text)
		}
	}

	// The new exposition families.
	_, body = getBody(t, srv.URL+"/metrics")
	text = string(body)
	for _, want := range []string{
		`paroptd_search_pruned_total{reason="dominance"}`,
		`paroptd_search_pruned_total{reason="beam"}`,
		`paroptd_plan_changes_total{source="sweeper"}`,
		`paroptd_search_layer_seconds_bucket{le="+Inf"} 10`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Bad ?n is rejected.
	resp, _ = getBody(t, srv.URL+"/debug/search?n=0")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("n=0 should 400, got %d", resp.StatusCode)
	}
}

// TestExplainWhyProvenance: ?why=1 returns the chosen plan's cost-descriptor
// breakdown and at least three rejected frontier alternatives with reasons.
func TestExplainWhyProvenance(t *testing.T) {
	s, srv := newWideServer(t)

	out, err := s.Explain(context.Background(), OptimizeRequest{Query: chainSQL(10, 7), Why: true})
	if err != nil {
		t.Fatal(err)
	}
	pv := out.Why
	if pv == nil {
		t.Fatal("Why: true should attach provenance")
	}
	if pv.Plan == "" || pv.Plan != out.PlanSignature {
		t.Errorf("provenance plan %q != chosen signature %q", pv.Plan, out.PlanSignature)
	}
	if pv.Cost.ResponseTime <= 0 || pv.Cost.Work <= 0 || pv.Cost.FirstTuple < 0 {
		t.Errorf("chosen breakdown incomplete: %+v", pv.Cost)
	}
	if len(pv.Cost.Charges) == 0 {
		t.Error("chosen breakdown should carry per-resource charges")
	}
	if len(pv.Rejected) < 3 {
		t.Fatalf("want >= 3 rejected alternatives, got %d (frontier %d)", len(pv.Rejected), pv.FrontierSize)
	}
	for _, alt := range pv.Rejected {
		if alt.Plan == "" || alt.Reason == "" || alt.Cost.ResponseTime <= 0 {
			t.Errorf("rejected alternative incomplete: %+v", alt)
		}
		if alt.Plan == pv.Plan {
			t.Errorf("chosen plan listed as rejected: %s", alt.Plan)
		}
	}
	for _, want := range []string{"why:", "chosen:", "rejected alternatives", "charges:"} {
		if !strings.Contains(out.WhyText, want) {
			t.Errorf("WhyText missing %q:\n%s", want, out.WhyText)
		}
	}

	// The curl spelling: POST /explain?why=1.
	resp, body := postJSON(t, srv.URL+"/explain?why=1", OptimizeRequest{Query: chainSQL(10, 7)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/explain?why=1: %d: %s", resp.StatusCode, body)
	}
	var http1 ExplainResponse
	if err := json.Unmarshal(body, &http1); err != nil {
		t.Fatal(err)
	}
	if http1.Why == nil || len(http1.Why.Rejected) < 3 {
		t.Errorf("HTTP why should carry provenance with rejected alternatives: %+v", http1.Why)
	}

	// Without the flag the payload stays lean.
	plain, err := s.Explain(context.Background(), OptimizeRequest{Query: chainSQL(10, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Why != nil || plain.WhyText != "" {
		t.Error("provenance should be opt-in")
	}
}

// TestSweeperPlanChangeAuditLog: a sweeper-triggered re-optimization after a
// statistics refresh lands in /debug/planlog with cost deltas and a
// structural diff, and the JSONL persister mirrors it.
func TestSweeperPlanChangeAuditLog(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "planlog.jsonl")
	s := newTestService(t, func(cfg *Config) {
		cfg.Catalog = poisonedCatalog()
		cfg.DriftThreshold = 3
		cfg.SweepMinSamples = 1
		cfg.PlanLogPath = logPath
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx := context.Background()

	first, err := s.Explain(ctx, OptimizeRequest{Query: poisonedSQL, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	s.RefreshCatalog(refreshedCatalog())
	if n := s.SweepNow(); n != 1 {
		t.Fatalf("sweep should re-optimize 1 template, got %d", n)
	}

	changes := s.PlanChanges()
	if len(changes) != 1 {
		t.Fatalf("want 1 plan change, got %d", len(changes))
	}
	c := changes[0]
	if c.Source != "sweeper" {
		t.Errorf("source = %q, want sweeper", c.Source)
	}
	if c.Fingerprint != first.Fingerprint {
		t.Errorf("fingerprint = %q, want %q", c.Fingerprint, first.Fingerprint)
	}
	if c.PrevPlan == c.NewPlan {
		t.Errorf("refreshed statistics should swap the plan, still %s", c.NewPlan)
	}
	if c.PrevRT == c.NewRT && c.PrevWork == c.NewWork {
		t.Error("plan change should carry a cost delta")
	}
	if len(c.Diff) == 0 {
		t.Error("plan change should carry a structural diff")
	}
	if c.PrevCatalog == c.Catalog {
		t.Error("refresh should move the catalog version across the change")
	}

	// The endpoint serves it, JSON and text.
	resp, body := getBody(t, srv.URL+"/debug/planlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/planlog: %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Changes []PlanChange `json:"changes"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Changes) != 1 || out.Changes[0].ID != c.ID {
		t.Errorf("endpoint should serve the recorded change, got %+v", out.Changes)
	}
	_, body = getBody(t, srv.URL+"/debug/planlog?format=text")
	for _, want := range []string{"source=sweeper", "rt:", "plan:"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("text planlog missing %q:\n%s", want, body)
		}
	}

	// The metrics counter and the JSONL persister both saw it.
	_, body = getBody(t, srv.URL+"/metrics")
	if !strings.Contains(string(body), `paroptd_plan_changes_total{source="sweeper"} 1`) {
		t.Error("/metrics should count the sweeper plan change")
	}
	persisted := readFileT(t, logPath)
	var row PlanChange
	if err := json.Unmarshal([]byte(strings.TrimSpace(persisted)), &row); err != nil {
		t.Fatalf("JSONL row should parse: %v\n%s", err, persisted)
	}
	if row.Fingerprint != c.Fingerprint || row.Source != "sweeper" {
		t.Errorf("persisted row mismatch: %+v", row)
	}
}

// TestReplayChangeEntersAuditLog covers the replay feed-in path the CLI uses.
func TestReplayChangeEntersAuditLog(t *testing.T) {
	s := newTestService(t, nil)
	s.RecordReplayChange("fp123", "cat1", "join(A,B)", "join(B,A)", 10, 8)
	changes := s.PlanChanges()
	if len(changes) != 1 {
		t.Fatalf("want 1 change, got %d", len(changes))
	}
	c := changes[0]
	if c.Source != "replay" || c.PrevPlan != "join(A,B)" || c.NewPlan != "join(B,A)" ||
		c.PrevRT != 10 || c.NewRT != 8 || len(c.Diff) != 2 {
		t.Errorf("replay change mismatch: %+v", c)
	}
	if s.met.PlanChangesReplay.Load() != 1 {
		t.Error("replay counter should advance")
	}
}

// TestIntrospectionDisabled: negative capacities disable both logs, and every
// surface degrades to empty rather than breaking.
func TestIntrospectionDisabled(t *testing.T) {
	s, srv := newTestServer(t, func(cfg *Config) {
		cfg.SearchLogCapacity = -1
		cfg.PlanLogCapacity = -1
	})
	if _, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(6, 7)}); err != nil {
		t.Fatal(err)
	}
	if got := s.SearchLog(); got != nil {
		t.Errorf("disabled search log should return nil, got %v", got)
	}
	if got := s.PlanChanges(); got != nil {
		t.Errorf("disabled plan log should return nil, got %v", got)
	}
	s.RecordReplayChange("fp", "", "a", "b", 1, 2) // must not panic
	resp, body := getBody(t, srv.URL+"/debug/search")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"searches": []`) {
		t.Errorf("/debug/search disabled: %d %s", resp.StatusCode, body)
	}
	resp, body = getBody(t, srv.URL+"/debug/planlog")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"changes": []`) {
		t.Errorf("/debug/planlog disabled: %d %s", resp.StatusCode, body)
	}
}
