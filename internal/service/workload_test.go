package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/obs/workload"
)

func TestNegativeCacheShortCircuitsParseFailures(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	bad := "SELECT * FROM NoSuchRelation"
	for i := 0; i < 3; i++ {
		_, err := s.Optimize(ctx, OptimizeRequest{Query: bad})
		var br badRequestError
		if !errors.As(err, &br) {
			t.Fatalf("attempt %d: want badRequestError, got %v", i, err)
		}
	}
	if got := s.met.NegCacheHits.Load(); got != 2 {
		t.Errorf("negative-cache hits = %d, want 2 (first failure parses, repeats do not)", got)
	}
	if got := s.neg.Len(); got != 1 {
		t.Errorf("negative-cache entries = %d, want 1", got)
	}
	// A valid query is unaffected.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 7)}); err != nil {
		t.Fatal(err)
	}
	// A different catalog version re-parses: negative entries are
	// version-relative.
	version, err := s.RegisterSchema("relation NoSuchRelation card=10 pages=1 disk=0\ncolumn NoSuchRelation.a ndv=10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: bad, Catalog: version}); err != nil {
		t.Errorf("query should parse against the new catalog, got %v", err)
	}
}

func TestNegativeCacheLRUBound(t *testing.T) {
	c := newNegCache(2)
	c.Put("a", errors.New("ea"))
	c.Put("b", errors.New("eb"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be resident")
	}
	c.Put("c", errors.New("ec")) // evicts b (a was refreshed by the Get)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should survive (recently used)")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	var nilCache *negCache
	nilCache.Put("x", errors.New("x"))
	if _, ok := nilCache.Get("x"); ok || nilCache.Len() != 0 {
		t.Error("nil negative cache should be inert")
	}
}

// poisonedCatalog builds statistics that are wrong about the data: the
// selection column A.s is heavily Zipf-skewed (hot value 0 holds most rows)
// while the optimizer's uniformity assumption predicts Card/NDV rows — so an
// explain-analyze run reports a large row q-error and marks the template
// drifted.
func poisonedCatalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddRelation(catalog.Relation{
		Name: "A", Card: 2000, Pages: 20, Disk: 0,
		Columns: []catalog.Column{
			{Name: "s", NDV: 100, Width: 8, Skew: 1.0},
			{Name: "b", NDV: 500, Width: 8},
		},
	})
	c.MustAddRelation(catalog.Relation{
		Name: "B", Card: 3000, Pages: 30, Disk: 1,
		Columns: []catalog.Column{
			{Name: "a", NDV: 500, Width: 8},
			{Name: "b", NDV: 800, Width: 8},
		},
	})
	c.MustAddRelation(catalog.Relation{
		Name: "C", Card: 2500, Pages: 25, Disk: 2,
		Columns: []catalog.Column{
			{Name: "a", NDV: 800, Width: 8},
		},
	})
	return c
}

// refreshedCatalog is the statistics refresh: radically different relative
// cardinalities, so the DP search must pick a different join tree.
func refreshedCatalog() *catalog.Catalog {
	c := catalog.New()
	c.MustAddRelation(catalog.Relation{
		Name: "A", Card: 400000, Pages: 4000, Disk: 0,
		Columns: []catalog.Column{
			{Name: "s", NDV: 2, Width: 8},
			{Name: "b", NDV: 500, Width: 8},
		},
	})
	c.MustAddRelation(catalog.Relation{
		Name: "B", Card: 300, Pages: 3, Disk: 1,
		Columns: []catalog.Column{
			{Name: "a", NDV: 300, Width: 8},
			{Name: "b", NDV: 300, Width: 8},
		},
	})
	c.MustAddRelation(catalog.Relation{
		Name: "C", Card: 250000, Pages: 2500, Disk: 2,
		Columns: []catalog.Column{
			{Name: "a", NDV: 800, Width: 8},
		},
	})
	return c
}

const poisonedSQL = "SELECT * FROM A, B, C WHERE A.b = B.a AND B.b = C.a AND A.s = 0"

// TestSweeperReoptimizesPoisonedEntry is the acceptance scenario: wrong
// statistics are detected by analyze (q-error drift), the operator refreshes
// the catalog, and the sweeper re-optimizes the hot template so the next
// request hits a warm entry with a different plan.
func TestSweeperReoptimizesPoisonedEntry(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		cfg.Catalog = poisonedCatalog()
		cfg.DriftThreshold = 3
		cfg.SweepMinSamples = 1
	})
	ctx := context.Background()

	first, err := s.Explain(ctx, OptimizeRequest{Query: poisonedSQL, Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Analyze == nil || first.Analyze.MaxQErrRows < 3 {
		t.Fatalf("poisoned statistics should produce a large row q-error, got %+v", first.Analyze)
	}
	if s.Workload().DriftedCount() != 1 {
		t.Fatalf("template should be marked drifted, got %d", s.Workload().DriftedCount())
	}

	// Statistics refresh + one sweep.
	s.RefreshCatalog(refreshedCatalog())
	if n := s.SweepNow(); n != 1 {
		t.Fatalf("sweep should re-optimize 1 template, got %d", n)
	}
	if got := s.met.SweepReoptimized.Load(); got != 1 {
		t.Errorf("SweepReoptimized = %d, want 1", got)
	}
	if s.Workload().DriftedCount() != 0 {
		t.Error("sweep should clear the drift mark")
	}

	// The next default-catalog request hits the entry the sweeper installed —
	// no second client-facing search — and serves the refreshed plan.
	searches := s.met.FullSearch.Load()
	second, err := s.Optimize(ctx, OptimizeRequest{Query: poisonedSQL})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Errorf("post-sweep request should hit the refreshed entry, got %q", second.Cache)
	}
	if s.met.FullSearch.Load() != searches {
		t.Error("post-sweep request should not run another search")
	}
	if second.Catalog == first.Catalog {
		t.Error("refresh should move the default catalog version")
	}
	if second.PlanSignature == first.PlanSignature {
		t.Errorf("refreshed statistics should change the chosen plan, still %s", second.PlanSignature)
	}
}

// TestWorkloadEndpointUnderLoad exercises /debug/workload (JSON and text)
// and /metrics concurrently with optimize traffic; run under -race in CI.
func TestWorkloadEndpointUnderLoad(t *testing.T) {
	s := newTestService(t, nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const (
		writers = 4
		perG    = 15
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body, _ := json.Marshal(OptimizeRequest{Query: chainSQL(3+i%3, g*100+i)})
				resp, err := http.Post(srv.URL+"/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}(g)
	}
	// Readers race against the writers by design.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			for _, path := range []string{"/debug/workload", "/debug/workload?format=text&by=latency", "/metrics"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()

	resp, err := http.Get(srv.URL + "/debug/workload?top=2&by=traffic")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Fingerprints int                        `json:"fingerprints"`
		Profiles     []workload.ProfileSnapshot `json:"profiles"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Fingerprints != 3 {
		t.Errorf("expected 3 templates (literal varies within each), got %d", report.Fingerprints)
	}
	if len(report.Profiles) != 2 {
		t.Fatalf("top=2 should bound profiles, got %d", len(report.Profiles))
	}
	var total int64
	for _, p := range s.Workload().Snapshot() {
		total += p.Count
	}
	if total != writers*perG {
		t.Errorf("profiled %d requests, want %d", total, writers*perG)
	}

	// Text rendering and parameter validation.
	tresp, err := http.Get(srv.URL + "/debug/workload?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(text), "fingerprint") {
		t.Errorf("text report missing header:\n%s", text)
	}
	bresp, err := http.Get(srv.URL + "/debug/workload?by=bogus")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad sort key should 400, got %d", bresp.StatusCode)
	}

	// Metrics expose the workload gauges.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(met), "paroptd_workload_fingerprints 3") {
		t.Errorf("metrics missing workload fingerprints gauge:\n%.500s", met)
	}
}

// TestQueryLogAndReplayInProcess: traffic recorded to the query log replays
// deterministically — same daemon configuration, same plan choices.
func TestQueryLogAndReplayInProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	qlog, err := workload.NewLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestService(t, func(cfg *Config) { cfg.QueryLog = qlog })
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3+i%4, i)}); err != nil {
			t.Fatal(err)
		}
	}
	// One recorded failure; replay must skip it.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: "SELECT * FROM Nope"}); err == nil {
		t.Fatal("expected failure")
	}
	if err := qlog.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := workload.ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("logged %d records, want 9", len(recs))
	}
	if recs[0].PlanSig == "" || recs[0].Fingerprint == "" || recs[0].Kind != "optimize" {
		t.Fatalf("record missing fields: %+v", recs[0])
	}
	if recs[8].Error == "" {
		t.Fatalf("failure record missing error: %+v", recs[8])
	}

	// Replay against a fresh identically-configured service.
	s2 := newTestService(t, nil)
	rep := workload.Replay(recs, func(r workload.Record) workload.Outcome {
		start := time.Now()
		resp, err := s2.Optimize(ctx, OptimizeRequest{Query: r.Query, Catalog: r.Catalog, K: r.K, CostBenefit: r.CostBenefit})
		if err != nil {
			return workload.Outcome{Err: err}
		}
		return workload.Outcome{
			PlanSig:       resp.PlanSignature,
			Cache:         resp.Cache,
			RT:            resp.Summary.ResponseTime,
			Work:          resp.Summary.Work,
			ElapsedMicros: time.Since(start).Microseconds(),
		}
	}, false)
	if rep.PlanChanges != 0 || rep.Errors != 0 {
		t.Errorf("deterministic replay regressed:\n%s", rep.Table())
	}
	if rep.PlanMatches != 8 || rep.Skipped != 1 {
		t.Errorf("replay accounting wrong: %+v", rep)
	}
}

// TestSweepNowDisabledProfiler: a service with profiling disabled treats
// sweeps (and the workload surface) as no-ops.
func TestSweepNowDisabledProfiler(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		cfg.WorkloadCapacity = -1
		cfg.NegCacheCapacity = -1
	})
	if _, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if s.Workload() != nil || s.SweepNow() != 0 {
		t.Error("disabled profiler should be nil and sweeps no-ops")
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/workload")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("disabled workload endpoint should still serve, got %d", resp.StatusCode)
	}
	var report map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if n, _ := report["fingerprints"].(float64); n != 0 {
		t.Errorf("disabled profiler should report 0 fingerprints, got %v", report["fingerprints"])
	}
}

// TestSweeperLoopRunsInBackground: the ticker-driven loop picks up drifted
// templates without an explicit SweepNow.
func TestSweeperLoopRunsInBackground(t *testing.T) {
	s := newTestService(t, func(cfg *Config) {
		cfg.Catalog = poisonedCatalog()
		cfg.DriftThreshold = 3
		cfg.SweepMinSamples = 1
		cfg.SweepInterval = 10 * time.Millisecond
	})
	ctx := context.Background()
	if _, err := s.Explain(ctx, OptimizeRequest{Query: poisonedSQL, Analyze: true}); err != nil {
		t.Fatal(err)
	}
	if s.Workload().DriftedCount() != 1 {
		t.Fatal("template should be marked drifted")
	}
	waitFor(t, func() bool { return s.met.SweepReoptimized.Load() >= 1 })
	if s.Workload().DriftedCount() != 0 {
		t.Error("background sweep should clear the drift mark")
	}
}
