package service

import (
	"container/list"
	"sync"
)

// negCache is the negative cache: a bounded LRU from (raw query text,
// catalog version) to the parse/resolve error that query produced. Parsing
// is the serve path's only per-request cost that admission control cannot
// shed — a client retrying an invalid query in a tight loop would otherwise
// re-lex and re-validate it on every attempt. With the negative cache the
// repeat costs one mutex'd map lookup and returns the recorded 400.
//
// The catalog version is part of the key because resolution errors are
// version-relative: a query naming a relation that does not exist yet must
// be re-parsed after a schema refresh, not rejected from stale memory.
// A nil *negCache disables negative caching (every method is a no-op).
type negCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type negItem struct {
	key string
	err error
}

// newNegCache builds a cache holding at most capacity errors; capacity < 1
// disables it (returns nil).
func newNegCache(capacity int) *negCache {
	if capacity < 1 {
		return nil
	}
	return &negCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// negKey builds the lookup key. The separator cannot appear in a catalog
// version (hex fingerprint), so keys are unambiguous.
func negKey(query, version string) string { return query + "\x00" + version }

// Get returns the cached error for the key, refreshing its recency.
func (c *negCache) Get(key string) (error, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*negItem).err, true
}

// Put records a parse/resolve failure, evicting the least-recently-used
// entry at capacity.
func (c *negCache) Put(key string, err error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*negItem).err = err
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&negItem{key: key, err: err})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*negItem).key)
	}
}

// PurgeWhere drops every entry whose key satisfies pred and returns how many
// were dropped (catalog-version GC: a retired version's resolution errors
// must not outlive the version).
func (c *negCache) PurgeWhere(pred func(key string) bool) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		it := el.Value.(*negItem)
		if pred(it.key) {
			c.ll.Remove(el)
			delete(c.items, it.key)
			n++
		}
		el = next
	}
	return n
}

// Len is the resident entry count.
func (c *negCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
