package service

import "sync"

// workerPool runs optimization jobs on a fixed set of goroutines fed by a
// bounded queue. A full queue rejects the job immediately — admission
// control in favor of fast 429s over unbounded latency under overload.
type workerPool struct {
	mu     sync.RWMutex
	closed bool
	jobs   chan func()
	wg     sync.WaitGroup
}

func newWorkerPool(workers, queue int) *workerPool {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &workerPool{jobs: make(chan func(), queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// TrySubmit enqueues f, reporting false when the queue is full or the pool
// is closed.
func (p *workerPool) TrySubmit(f func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- f:
		return true
	default:
		return false
	}
}

// QueueDepth is the number of jobs waiting (not yet picked up by a worker).
func (p *workerPool) QueueDepth() int { return len(p.jobs) }

// Close stops accepting jobs, drains the queue, and waits for workers —
// the graceful-shutdown half-close.
func (p *workerPool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
