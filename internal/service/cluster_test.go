package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs/accuracy"
	"paropt/internal/parser"
	"paropt/internal/placement"
)

// TestRefreshCatalogRetiresVersion: moving the default catalog must retire
// the previous default — its plan-cache and negative-cache entries are swept,
// the catalog itself is dropped, and the retirement is counted.
func TestRefreshCatalogRetiresVersion(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()

	s.mu.RLock()
	v0 := s.defaultVersion
	s.mu.RUnlock()

	// Populate the plan cache and negative cache under v0.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: "SELECT * FROM Nope"}); err == nil {
		t.Fatal("bad query should fail")
	}
	if s.CacheLen() != 1 || s.neg.Len() != 1 {
		t.Fatalf("precondition: cache=%d neg=%d, want 1 and 1", s.CacheLen(), s.neg.Len())
	}

	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	cat, err := parser.ParseSchema(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.RefreshCatalog(cat)
	if v1 == v0 {
		t.Fatal("refreshed catalog should have a new version")
	}
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("CatalogRetired = %d, want 1", got)
	}
	if s.CacheLen() != 0 {
		t.Errorf("retired version's plan-cache entries not swept: %d resident", s.CacheLen())
	}
	if s.neg.Len() != 0 {
		t.Errorf("retired version's negative-cache entries not swept: %d resident", s.neg.Len())
	}

	// The retired version is gone: naming it explicitly is now a 400.
	_, err = s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1), Catalog: v0})
	var bad badRequestError
	if !errors.As(err, &bad) {
		t.Errorf("request against retired version: err = %v, want badRequestError", err)
	}

	// The new default serves (a fresh miss under v1).
	resp, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Catalog != v1 || resp.Cache != "miss" {
		t.Errorf("post-refresh request: catalog=%s cache=%s, want %s/miss", resp.Catalog, resp.Cache, v1)
	}

	// Re-refreshing the same catalog retires nothing (old == new).
	s.RefreshCatalog(cat)
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("idempotent refresh should not retire: CatalogRetired = %d", got)
	}
}

// TestHTTPSchemaDefaultRetiresOldVersion: the /schema "default": true path
// must route through RefreshCatalog and GC the previous default.
func TestHTTPSchemaDefaultRetiresOldVersion(t *testing.T) {
	s, srv := newTestServer(t, nil)
	if _, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1)}); body == nil {
		t.Fatal("optimize failed")
	}
	if s.CacheLen() != 1 {
		t.Fatalf("precondition: cache=%d, want 1", s.CacheLen())
	}
	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	resp, _ := postJSON(t, srv.URL+"/schema", SchemaRequest{DDL: refreshed, Default: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema refresh: status %d", resp.StatusCode)
	}
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("CatalogRetired = %d, want 1", got)
	}
	if s.CacheLen() != 0 {
		t.Errorf("plan cache should be swept, %d resident", s.CacheLen())
	}
	// Registering without "default" must NOT retire anything.
	again := strings.Replace(testDDL, "relation R3 card=60000", "relation R3 card=120000", 1)
	postJSON(t, srv.URL+"/schema", SchemaRequest{DDL: again})
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("non-default registration retired a version: CatalogRetired = %d", got)
	}
}

// TestClusterMembershipEndpoints drives register/deregister/list over HTTP.
func TestClusterMembershipEndpoints(t *testing.T) {
	_, srv := newTestServer(t, nil)

	resp, body := postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.2:7200"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.1:7200"})
	postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.1:7200"}) // idempotent

	_, body = getBody(t, srv.URL+"/cluster/workers")
	var list struct {
		Workers []string `json:"workers"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 || list.Workers[0] != "10.0.0.1:7200" || list.Workers[1] != "10.0.0.2:7200" {
		t.Fatalf("workers = %v, want the two addresses sorted", list.Workers)
	}

	resp, _ = postJSON(t, srv.URL+"/cluster/deregister", ClusterRequest{Addr: "10.0.0.2:7200"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	_, body = getBody(t, srv.URL+"/cluster/workers")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0] != "10.0.0.1:7200" {
		t.Fatalf("workers after deregister = %v", list.Workers)
	}

	// Empty address is a 400.
	resp, _ = postJSON(t, srv.URL+"/cluster/register", ClusterRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty register: status %d, want 400", resp.StatusCode)
	}
}

// TestDistributedAnalyze runs explain-analyze over loopback worker processes
// and checks the per-link traffic surfaces in the daemon's metrics.
func TestDistributedAnalyze(t *testing.T) {
	lb, err := exchange.StartLoopback(2, engine.FragmentJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	s := newTestService(t, nil)
	ctx := context.Background()
	for _, addr := range lb.Addrs() {
		if _, err := s.RegisterWorker(addr, ""); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline: the same query analyzed in-process.
	local, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 7), Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 7), Analyze: true, Distributed: true})
	if err != nil {
		t.Fatalf("distributed analyze: %v", err)
	}
	if dist.Analyze == nil {
		t.Fatal("distributed analyze returned no accuracy report")
	}
	// Same plan, same data: identical measured root cardinalities.
	rootRows := func(rep *accuracy.Report) int64 {
		for _, op := range rep.Ops {
			if op.Root {
				return op.ActRows
			}
		}
		return -1
	}
	if lr, dr := rootRows(local.Analyze), rootRows(dist.Analyze); lr != dr || lr < 0 {
		t.Errorf("distributed analyze root rows = %d, in-process = %d", dr, lr)
	}

	if got := s.met.ExchangeFragments.Load(); got == 0 {
		t.Error("no fragments dispatched")
	}
	links := s.linkSnapshots()
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	for _, l := range links {
		if l.BytesSent == 0 || l.BytesRecv == 0 {
			t.Errorf("link %s carried no traffic: %+v", l.Addr, l)
		}
	}

	// No workers registered → a clean 400-class error, not a hang.
	for _, addr := range lb.Addrs() {
		s.DeregisterWorker(addr)
	}
	_, err = s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 8), Analyze: true, Distributed: true})
	var bad badRequestError
	if !errors.As(err, &bad) {
		t.Errorf("no-worker distributed analyze: err = %v, want badRequestError", err)
	}
}

// TestPlacementInstallAndShippedAnalyze drives the full placement flow over
// HTTP: install a placement map, bootstrap worker stores from the same
// catalog + seed, and verify a distributed analyze ships leaf scans to the
// workers while producing the in-process result.
func TestPlacementInstallAndShippedAnalyze(t *testing.T) {
	s, srv := newTestServer(t, nil)
	ctx := context.Background()

	// Nothing installed and no workers yet.
	if resp, _ := getBody(t, srv.URL+"/cluster/placement"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before install: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := postJSON(t, srv.URL+"/cluster/placement", PlacementRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("install with no workers: status %d, want 400", resp.StatusCode)
	}

	// Two workers whose stores share the service's catalog and data seed —
	// exactly what paroptw builds from GET /cluster/placement.
	s.mu.RLock()
	version := s.defaultVersion
	cat := s.catalogs[version]
	s.mu.RUnlock()
	lb, err := exchange.StartLoopbackWorkers([]*exchange.Worker{
		{Join: engine.FragmentJoin, Store: placement.NewStore(cat, s.cfg.DataSeed)},
		{Join: engine.FragmentJoin, Store: placement.NewStore(cat, s.cfg.DataSeed)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	for _, addr := range lb.Addrs() {
		if _, err := s.RegisterWorker(addr, ""); err != nil {
			t.Fatal(err)
		}
	}

	// A plan cached before the placement must not be served after it: the
	// placement fingerprint is part of the cache key.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 7)}); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, srv.URL+"/cluster/placement", PlacementRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install: status %d: %s", resp.StatusCode, body)
	}
	var installed PlacementResponse
	if err := json.Unmarshal(body, &installed); err != nil {
		t.Fatal(err)
	}
	if installed.Fingerprint == "" || installed.Map == nil {
		t.Fatalf("install response incomplete: %s", body)
	}
	if got, want := len(installed.Map.Assignments), cat.NumRelations(); got != want {
		t.Errorf("placement covers %d relations, want %d", got, want)
	}
	if got, want := len(installed.Snapshot.Relations), cat.NumRelations(); got != want {
		t.Errorf("snapshot carries %d relations, want %d", got, want)
	}
	resp, body = getBody(t, srv.URL+"/cluster/placement")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after install: status %d", resp.StatusCode)
	}
	var fetched PlacementResponse
	if err := json.Unmarshal(body, &fetched); err != nil {
		t.Fatal(err)
	}
	if fetched.Fingerprint != installed.Fingerprint {
		t.Errorf("GET fingerprint %s != installed %s", fetched.Fingerprint, installed.Fingerprint)
	}

	second, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if second.Cache != "miss" {
		t.Errorf("optimize after placement install served cache=%s, want miss (stale pre-placement plan)", second.Cache)
	}

	local, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(3, 7), Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(3, 7), Analyze: true, Distributed: true})
	if err != nil {
		t.Fatalf("distributed analyze with placement: %v", err)
	}
	rootRows := func(rep *accuracy.Report) int64 {
		for _, op := range rep.Ops {
			if op.Root {
				return op.ActRows
			}
		}
		return -1
	}
	if lr, dr := rootRows(local.Analyze), rootRows(dist.Analyze); lr != dr || lr < 0 {
		t.Errorf("shipped analyze root rows = %d, in-process = %d", dr, lr)
	}
	if got := s.met.ShippedScans.Load(); got == 0 {
		t.Error("no leaf scans shipped despite installed placement")
	}
	if got := s.placementCount(); got != 1 {
		t.Errorf("placementCount = %d, want 1", got)
	}

	// Retiring the catalog drops its placement.
	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	cat2, err := parser.ParseSchema(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	s.RefreshCatalog(cat2)
	if got := s.placementCount(); got != 0 {
		t.Errorf("placement survived catalog retirement: count = %d", got)
	}
	if resp, _ := getBody(t, srv.URL+"/cluster/placement"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET after retirement: status %d, want 404", resp.StatusCode)
	}
}
