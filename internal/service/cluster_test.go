package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs/accuracy"
	"paropt/internal/parser"
)

// TestRefreshCatalogRetiresVersion: moving the default catalog must retire
// the previous default — its plan-cache and negative-cache entries are swept,
// the catalog itself is dropped, and the retirement is counted.
func TestRefreshCatalogRetiresVersion(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()

	s.mu.RLock()
	v0 := s.defaultVersion
	s.mu.RUnlock()

	// Populate the plan cache and negative cache under v0.
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: "SELECT * FROM Nope"}); err == nil {
		t.Fatal("bad query should fail")
	}
	if s.CacheLen() != 1 || s.neg.Len() != 1 {
		t.Fatalf("precondition: cache=%d neg=%d, want 1 and 1", s.CacheLen(), s.neg.Len())
	}

	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	cat, err := parser.ParseSchema(refreshed)
	if err != nil {
		t.Fatal(err)
	}
	v1 := s.RefreshCatalog(cat)
	if v1 == v0 {
		t.Fatal("refreshed catalog should have a new version")
	}
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("CatalogRetired = %d, want 1", got)
	}
	if s.CacheLen() != 0 {
		t.Errorf("retired version's plan-cache entries not swept: %d resident", s.CacheLen())
	}
	if s.neg.Len() != 0 {
		t.Errorf("retired version's negative-cache entries not swept: %d resident", s.neg.Len())
	}

	// The retired version is gone: naming it explicitly is now a 400.
	_, err = s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1), Catalog: v0})
	var bad badRequestError
	if !errors.As(err, &bad) {
		t.Errorf("request against retired version: err = %v, want badRequestError", err)
	}

	// The new default serves (a fresh miss under v1).
	resp, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Catalog != v1 || resp.Cache != "miss" {
		t.Errorf("post-refresh request: catalog=%s cache=%s, want %s/miss", resp.Catalog, resp.Cache, v1)
	}

	// Re-refreshing the same catalog retires nothing (old == new).
	s.RefreshCatalog(cat)
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("idempotent refresh should not retire: CatalogRetired = %d", got)
	}
}

// TestHTTPSchemaDefaultRetiresOldVersion: the /schema "default": true path
// must route through RefreshCatalog and GC the previous default.
func TestHTTPSchemaDefaultRetiresOldVersion(t *testing.T) {
	s, srv := newTestServer(t, nil)
	if _, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1)}); body == nil {
		t.Fatal("optimize failed")
	}
	if s.CacheLen() != 1 {
		t.Fatalf("precondition: cache=%d, want 1", s.CacheLen())
	}
	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	resp, _ := postJSON(t, srv.URL+"/schema", SchemaRequest{DDL: refreshed, Default: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema refresh: status %d", resp.StatusCode)
	}
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("CatalogRetired = %d, want 1", got)
	}
	if s.CacheLen() != 0 {
		t.Errorf("plan cache should be swept, %d resident", s.CacheLen())
	}
	// Registering without "default" must NOT retire anything.
	again := strings.Replace(testDDL, "relation R3 card=60000", "relation R3 card=120000", 1)
	postJSON(t, srv.URL+"/schema", SchemaRequest{DDL: again})
	if got := s.met.CatalogRetired.Load(); got != 1 {
		t.Errorf("non-default registration retired a version: CatalogRetired = %d", got)
	}
}

// TestClusterMembershipEndpoints drives register/deregister/list over HTTP.
func TestClusterMembershipEndpoints(t *testing.T) {
	_, srv := newTestServer(t, nil)

	resp, body := postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.2:7200"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, body)
	}
	postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.1:7200"})
	postJSON(t, srv.URL+"/cluster/register", ClusterRequest{Addr: "10.0.0.1:7200"}) // idempotent

	_, body = getBody(t, srv.URL+"/cluster/workers")
	var list struct {
		Workers []string `json:"workers"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 || list.Workers[0] != "10.0.0.1:7200" || list.Workers[1] != "10.0.0.2:7200" {
		t.Fatalf("workers = %v, want the two addresses sorted", list.Workers)
	}

	resp, _ = postJSON(t, srv.URL+"/cluster/deregister", ClusterRequest{Addr: "10.0.0.2:7200"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	_, body = getBody(t, srv.URL+"/cluster/workers")
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0] != "10.0.0.1:7200" {
		t.Fatalf("workers after deregister = %v", list.Workers)
	}

	// Empty address is a 400.
	resp, _ = postJSON(t, srv.URL+"/cluster/register", ClusterRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty register: status %d, want 400", resp.StatusCode)
	}
}

// TestDistributedAnalyze runs explain-analyze over loopback worker processes
// and checks the per-link traffic surfaces in the daemon's metrics.
func TestDistributedAnalyze(t *testing.T) {
	lb, err := exchange.StartLoopback(2, engine.FragmentJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	s := newTestService(t, nil)
	ctx := context.Background()
	for _, addr := range lb.Addrs() {
		if _, err := s.RegisterWorker(addr); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline: the same query analyzed in-process.
	local, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 7), Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 7), Analyze: true, Distributed: true})
	if err != nil {
		t.Fatalf("distributed analyze: %v", err)
	}
	if dist.Analyze == nil {
		t.Fatal("distributed analyze returned no accuracy report")
	}
	// Same plan, same data: identical measured root cardinalities.
	rootRows := func(rep *accuracy.Report) int64 {
		for _, op := range rep.Ops {
			if op.Root {
				return op.ActRows
			}
		}
		return -1
	}
	if lr, dr := rootRows(local.Analyze), rootRows(dist.Analyze); lr != dr || lr < 0 {
		t.Errorf("distributed analyze root rows = %d, in-process = %d", dr, lr)
	}

	if got := s.met.ExchangeFragments.Load(); got == 0 {
		t.Error("no fragments dispatched")
	}
	links := s.linkSnapshots()
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	for _, l := range links {
		if l.BytesSent == 0 || l.BytesRecv == 0 {
			t.Errorf("link %s carried no traffic: %+v", l.Addr, l)
		}
	}

	// No workers registered → a clean 400-class error, not a hang.
	for _, addr := range lb.Addrs() {
		s.DeregisterWorker(addr)
	}
	_, err = s.Explain(ctx, OptimizeRequest{Query: chainSQL(4, 8), Analyze: true, Distributed: true})
	var bad badRequestError
	if !errors.As(err, &bad) {
		t.Errorf("no-worker distributed analyze: err = %v, want badRequestError", err)
	}
}
