package service

import (
	"container/list"
	"hash/fnv"
	"sync"
)

// planCache is a sharded, size-bounded LRU over cache entries. Sharding
// keeps lock contention off the serving hot path: each key hashes to one
// shard, and shards evict independently so a burst of distinct queries
// cannot serialize the whole cache behind one mutex.
type planCache struct {
	shards  []cacheShard
	onEvict func()
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	val *cacheEntry
}

// newPlanCache builds a cache with the given shard count and *total*
// capacity, split evenly across shards (each shard holds at least one
// entry).
func newPlanCache(shards, capacity int, onEvict func()) *planCache {
	if shards < 1 {
		shards = 1
	}
	per := capacity / shards
	if per < 1 {
		per = 1
	}
	c := &planCache{shards: make([]cacheShard, shards), onEvict: onEvict}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *planCache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the entry and refreshes its recency.
func (c *planCache) Get(key string) (*cacheEntry, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

// Put inserts or refreshes an entry, evicting the least-recently-used one
// when the shard overflows.
func (c *planCache) Put(key string, val *cacheEntry) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheItem).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&cacheItem{key: key, val: val})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*cacheItem).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// Len is the resident entry count across shards.
func (c *planCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry (e.g. after a statistics refresh makes whole
// catalog versions stale). Purged entries do not count as evictions.
func (c *planCache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[string]*list.Element)
		s.mu.Unlock()
	}
}

// PurgeWhere drops every entry whose key satisfies pred and returns how many
// were dropped — the catalog-version GC path: retiring a version sweeps its
// keys out instead of waiting for LRU pressure to age them. Dropped entries
// do not count as evictions.
func (c *planCache) PurgeWhere(pred func(key string) bool) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			it := el.Value.(*cacheItem)
			if pred(it.key) {
				s.ll.Remove(el)
				delete(s.items, it.key)
				n++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return n
}
