package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, mutate func(*Config)) (*Service, *httptest.Server) {
	t.Helper()
	s := newTestService(t, mutate)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// metricValue extracts one sample value from Prometheus text output.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHTTPOptimizeExplainHealthzMetrics(t *testing.T) {
	_, srv := newTestServer(t, nil)

	// Miss, then a changed-k hit: the acceptance path asserted through the
	// public HTTP surface, including the cover-set-reuse counter.
	resp, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(6, 7)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
	}
	var first OptimizeResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.Fingerprint == "" || len(first.Plan) == 0 {
		t.Errorf("unexpected first response: cache=%s fp=%q planBytes=%d", first.Cache, first.Fingerprint, len(first.Plan))
	}

	resp, body = postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(6, 99), K: 1.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize(k=1.5): %d: %s", resp.StatusCode, body)
	}
	var second OptimizeResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CoverSetReused || second.Cache != "hit" {
		t.Errorf("changed-k request should re-use the cover set: %s", body)
	}

	// /explain returns the text report and the cost breakdown.
	resp, body = postJSON(t, srv.URL+"/explain", OptimizeRequest{Query: chainSQL(6, 7), K: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: %d: %s", resp.StatusCode, body)
	}
	var exp ExplainResponse
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exp.Text, "operator tree:") || !strings.Contains(exp.Text, "response time:") {
		t.Errorf("explain text missing sections:\n%s", exp.Text)
	}
	if exp.Breakdown == "" {
		t.Error("explain should include the cost breakdown table")
	}

	// /healthz liveness.
	resp, body = getBody(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Errorf("healthz: %d: %s", resp.StatusCode, body)
	}

	// /metrics: the acceptance counters. 3 requests so far: 1 full search,
	// 2 answered from the cached cover set (changed-k optimize + explain).
	resp, body = getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	if got := metricValue(t, text, "paroptd_full_search_total"); got != 1 {
		t.Errorf("full_search_total = %g, want 1", got)
	}
	if got := metricValue(t, text, "paroptd_cover_reuse_total"); got != 2 {
		t.Errorf("cover_reuse_total = %g, want 2", got)
	}
	if got := metricValue(t, text, "paroptd_cache_hits_total"); got != 2 {
		t.Errorf("cache_hits_total = %g, want 2", got)
	}
	if got := metricValue(t, text, "paroptd_optimize_latency_seconds_count"); got != 3 {
		t.Errorf("latency count = %g, want 3", got)
	}
	for _, q := range []string{"0.5", "0.95", "0.99"} {
		if !strings.Contains(text, fmt.Sprintf(`paroptd_optimize_latency_seconds{quantile="%s"}`, q)) {
			t.Errorf("missing p%s latency quantile", q)
		}
	}
}

func TestHTTPSchemaRegistrationAndUse(t *testing.T) {
	// No default catalog: everything goes through /schema.
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)

	// Query without any catalog → 400.
	resp, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("expected 400 without a catalog, got %d: %s", resp.StatusCode, body)
	}

	resp, body = postJSON(t, srv.URL+"/schema", SchemaRequest{DDL: testDDL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schema: %d: %s", resp.StatusCode, body)
	}
	var sr SchemaResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Relations != 6 || sr.Catalog == "" {
		t.Fatalf("unexpected schema response: %+v", sr)
	}

	// Optimize against the registered version explicitly.
	resp, body = postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1), Catalog: sr.Catalog})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize with catalog version: %d: %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if or.Catalog != sr.Catalog {
		t.Errorf("response catalog %q should echo registered version %q", or.Catalog, sr.Catalog)
	}

	// Unknown version → 400.
	resp, _ = postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1), Catalog: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown catalog version should be 400, got %d", resp.StatusCode)
	}
}

func TestHTTPConcurrentIdenticalRequestsSearchOnce(t *testing.T) {
	s, srv := newTestServer(t, func(c *Config) { c.Workers = 4 })
	const n = 12
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(6, i+1)})
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("request %d: status %d", i, c)
		}
	}
	if got := s.met.FullSearch.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests ran %d searches, want exactly 1 (singleflight)", n, got)
	}
}

func TestHTTPOverloadReturns429AndQueueMetric(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s, srv := newTestServer(t, func(c *Config) { c.Workers = 1; c.QueueDepth = 1 })
	s.searchHook = func() {
		started <- struct{}{}
		<-gate
	}

	done := make(chan int, 2)
	post := func(sql string) {
		resp, _ := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: sql})
		done <- resp.StatusCode
	}
	go post(chainSQL(2, 1)) // occupies the worker
	<-started
	go post(chainSQL(3, 1)) // occupies the queue slot
	waitFor(t, func() bool { return s.pool.QueueDepth() == 1 })

	// Queue-depth gauge is visible while the system is saturated.
	_, body := getBody(t, srv.URL+"/metrics")
	if got := metricValue(t, string(body), "paroptd_queue_depth"); got != 1 {
		t.Errorf("queue_depth = %g, want 1", got)
	}

	resp, _ := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(4, 1)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("expected 429 under overload, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if c := <-done; c != http.StatusOK {
			t.Errorf("gated request finished with %d", c)
		}
	}
	_, body = getBody(t, srv.URL+"/metrics")
	if got := metricValue(t, string(body), "paroptd_rejected_total"); got != 1 {
		t.Errorf("rejected_total = %g, want 1", got)
	}
}

func TestHTTPMethodAndBodyErrors(t *testing.T) {
	_, srv := newTestServer(t, nil)
	// Wrong method.
	resp, err := http.Get(srv.URL + "/optimize")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /optimize should be 405, got %d", resp.StatusCode)
	}
	// Malformed body.
	resp, err = http.Post(srv.URL+"/optimize", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body should be 400, got %d", resp.StatusCode)
	}
}
