package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var (
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)
	labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

// validateExposition asserts the text parses as Prometheus exposition format
// 0.0.4 and returns the `# TYPE` lines in order. Every sample must belong to
// a declared family, and every histogram family must close with its +Inf
// bucket, _sum and _count series.
func validateExposition(t *testing.T, text string) []string {
	t.Helper()
	families := map[string]string{} // family name → type
	var typeLines []string
	histSeen := map[string]map[string]bool{} // histogram family → {inf, sum, count}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case line == "":
			t.Errorf("line %d: empty line", ln+1)
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			if _, dup := families[m[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for family %s", ln+1, m[1])
			}
			families[m[1]] = m[2]
			typeLines = append(typeLines, line)
			if m[2] == "histogram" {
				histSeen[m[1]] = map[string]bool{}
			}
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment form: %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed sample: %q", ln+1, line)
				continue
			}
			name, labels := m[1], m[2]
			if labels != "" {
				for _, l := range strings.Split(labels[1:len(labels)-1], ",") {
					if !labelRe.MatchString(l) {
						t.Errorf("line %d: malformed label %q", ln+1, l)
					}
				}
			}
			family := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && families[base] == "histogram" {
					family = base
					switch suffix {
					case "_bucket":
						if strings.Contains(labels, `le="+Inf"`) {
							histSeen[base]["inf"] = true
						}
					case "_sum":
						histSeen[base]["sum"] = true
					case "_count":
						histSeen[base]["count"] = true
					}
				}
			}
			if _, ok := families[family]; !ok {
				t.Errorf("line %d: sample %s has no TYPE declaration", ln+1, name)
			}
		}
	}
	for fam, seen := range histSeen {
		for _, part := range []string{"inf", "sum", "count"} {
			if !seen[part] {
				t.Errorf("histogram %s missing %s series", fam, part)
			}
		}
	}
	return typeLines
}

// TestMetricsExpositionGolden drives real traffic, renders /metrics, checks
// the output parses cleanly, and pins the set of exported families to the
// golden file.
func TestMetricsExpositionGolden(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 7)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(6, 7), Analyze: true}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	g := s.gauges()
	g.Uptime = time.Second
	s.met.WritePrometheus(&buf, g)
	got := strings.Join(validateExposition(t, buf.String()), "\n") + "\n"

	goldenPath := filepath.Join("testdata", "metrics.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("exported metric families drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// The acceptance signal: an analyze run leaves a nonzero cost-model
	// error histogram on /metrics.
	text := buf.String()
	re := regexp.MustCompile(`paroptd_cost_rel_error_bucket\{le="\+Inf"\} (\d+)`)
	m := re.FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		t.Errorf("cost-model error histogram should be nonzero after analyze, got %v", m)
	}
	if !strings.Contains(text, "paroptd_build_info{version=") {
		t.Error("metrics missing build info")
	}
	if !strings.Contains(text, "paroptd_uptime_seconds 1") {
		t.Error("metrics missing uptime gauge")
	}
	if !strings.Contains(text, `paroptd_phase_seconds_count{phase="execute"} 1`) {
		t.Error("metrics missing execute phase count")
	}
}

// TestMetricsZeroValueRenders guards the zero-value path: a fresh Metrics
// must render parseable output with the right cost-error buckets.
func TestMetricsZeroValueRenders(t *testing.T) {
	var m Metrics
	var buf bytes.Buffer
	m.WritePrometheus(&buf, Gauges{})
	validateExposition(t, buf.String())
	if !strings.Contains(buf.String(), `paroptd_cost_rel_error_bucket{le="0.01"} 0`) {
		t.Error("zero-value metrics should still use the relative-error buckets")
	}
}
