package service

import (
	"sync"
	"sync/atomic"
	"time"

	"paropt/internal/search"
)

// Search telemetry log: a bounded ring of recent DP searches with their
// per-layer breakdowns, served at /debug/search. One entry is recorded per
// search actually run (request misses and sweeper re-optimizations); cache
// hits bump the originating entry's hit counter instead, so the listing
// shows which searches are still earning their keep.

// SearchLogEntry describes one recorded search.
type SearchLogEntry struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Source is what triggered the search: "search" (request miss) or
	// "sweeper" (drift re-optimization).
	Source      string `json:"source"`
	Fingerprint string `json:"fingerprint"`
	Catalog     string `json:"catalog"`
	Relations   int    `json:"relations"`
	// FrontierSize is the root cover set's size; ElapsedMicros the search
	// wall time (baseline + partial-order DP).
	FrontierSize  int   `json:"frontierSize"`
	ElapsedMicros int64 `json:"elapsedMicros"`

	// Totals from the search counters.
	PlansConsidered int64 `json:"plansConsidered"`
	PhysicalPlans   int64 `json:"physicalPlans"`
	MaxCoverSize    int   `json:"maxCoverSize"`
	Pruned          int64 `json:"pruned"`
	PrunedDominance int64 `json:"prunedDominance"`
	PrunedWork      int64 `json:"prunedWork"`
	PrunedMemory    int64 `json:"prunedMemory"`
	PrunedBeam      int64 `json:"prunedBeam"`
	// PeakBytesRetained is the largest per-layer retained-bytes estimate.
	PeakBytesRetained int64 `json:"peakBytesRetained"`

	// CacheHits counts requests served from this search's cached cover set
	// after it was computed (filled at snapshot time).
	CacheHits int64 `json:"cacheHits"`
	// Cached marks a snapshot entry whose trace/profile is being replayed
	// from cache rather than freshly computed (true iff CacheHits > 0).
	Cached bool `json:"cached"`

	// Layers is the per-layer telemetry (cardinality order).
	Layers []search.LayerRecord `json:"layers"`
}

// searchLogRecord is the mutable stored form: the hit counter advances on
// every cache hit without taking the log mutex.
type searchLogRecord struct {
	entry SearchLogEntry
	hits  atomic.Int64
}

// noteHit is nil-safe: cache entries from a disabled log carry no record.
func (r *searchLogRecord) noteHit() {
	if r != nil {
		r.hits.Add(1)
	}
}

// searchLog is the bounded ring. A nil *searchLog is a disabled log: every
// method is a cheap no-op.
type searchLog struct {
	mu     sync.Mutex
	cap    int
	nextID int64
	recs   []*searchLogRecord
}

// newSearchLog builds a log retaining up to capacity entries.
func newSearchLog(capacity int) *searchLog {
	return &searchLog{cap: capacity}
}

// add records one search and returns the stored record (for hit counting).
func (l *searchLog) add(e SearchLogEntry) *searchLogRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	e.Time = time.Now()
	e.ID = l.nextID
	rec := &searchLogRecord{entry: e}
	l.recs = append(l.recs, rec)
	if len(l.recs) > l.cap {
		l.recs = append(l.recs[:0:0], l.recs[len(l.recs)-l.cap:]...)
	}
	return rec
}

// snapshot returns the retained entries newest-first with hit counts filled.
func (l *searchLog) snapshot() []SearchLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SearchLogEntry, 0, len(l.recs))
	for i := len(l.recs) - 1; i >= 0; i-- {
		e := l.recs[i].entry
		e.CacheHits = l.recs[i].hits.Load()
		e.Cached = e.CacheHits > 0
		out = append(out, e)
	}
	return out
}

// SearchLog returns the retained search-telemetry entries, newest first
// (nil when the log is disabled).
func (s *Service) SearchLog() []SearchLogEntry { return s.searchlog.snapshot() }
