package service

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"paropt/internal/obs"
)

// findSpan walks a rendered trace tree for a span by name (depth-first).
func findSpan(s *obs.SpanJSON, name string) *obs.SpanJSON {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if hit := findSpan(c, name); hit != nil {
			return hit
		}
	}
	return nil
}

func TestOptimizeProducesTraceTree(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()

	miss, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if miss.TraceID == "" {
		t.Fatal("tracing is on by default; response should carry a trace ID")
	}
	tr := s.Tracer().Get(miss.TraceID)
	if tr == nil {
		t.Fatalf("trace %q not retained", miss.TraceID)
	}
	j := tr.JSON()
	if j.Root.Name != "optimize" {
		t.Errorf("root span = %q, want optimize", j.Root.Name)
	}
	if j.Root.EndMicros < 0 {
		t.Error("root span should be closed after the response")
	}
	for _, phase := range []string{"parse", "search", "select", "render"} {
		sp := findSpan(j.Root, phase)
		if sp == nil {
			t.Errorf("trace missing %q span", phase)
			continue
		}
		if sp.EndMicros < 0 {
			t.Errorf("%q span left open", phase)
		}
	}
	// The search span carries DP events and counters from the span tracer.
	search := findSpan(j.Root, "search")
	if search != nil {
		if search.Attrs["plansConsidered"] == "" || search.Attrs["frontier"] == "" {
			t.Errorf("search span missing DP counters: %v", search.Attrs)
		}
		if findSpan(search, "dp-layer-2") == nil {
			t.Error("search span should contain per-layer DP event spans")
		}
	}
	if j.Root.Attrs["cache"] != "miss" || j.Root.Attrs["fingerprint"] == "" {
		t.Errorf("root attrs = %v", j.Root.Attrs)
	}

	hit, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 8), K: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if hit.TraceID == miss.TraceID {
		t.Error("each request gets its own trace")
	}
	hj := s.Tracer().Get(hit.TraceID).JSON()
	if hj.Root.Attrs["cache"] != "hit" {
		t.Errorf("second request should trace as a hit: %v", hj.Root.Attrs)
	}
	if findSpan(hj.Root, "search") != nil {
		t.Error("cache hit should not contain a search span")
	}
	if got := s.Tracer().Len(); got != 2 {
		t.Errorf("tracer retains %d traces, want 2", got)
	}
}

func TestTracingDisabled(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.TraceCapacity = -1 })
	resp, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != "" {
		t.Errorf("disabled tracing should yield no trace ID, got %q", resp.TraceID)
	}
	if s.Tracer() != nil {
		t.Error("Tracer() should be nil when disabled")
	}
	// Phase metrics still work without a tracer.
	if s.met.PhaseParse.Count() == 0 || s.met.PhaseSearch.Count() == 0 {
		t.Error("phase histograms should observe even with tracing disabled")
	}
}

func TestExplainSearchTraceSurvivesCacheHits(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	req := OptimizeRequest{Query: chainSQL(6, 7), Trace: true}

	miss, err := s.Explain(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(miss.SearchTrace, "layer 2:") || !strings.Contains(miss.SearchTrace, "best:") {
		t.Errorf("search trace missing DP layers/final:\n%s", miss.SearchTrace)
	}
	if miss.SearchTraceCached {
		t.Error("fresh search must not be labeled as replayed from cache")
	}
	hit, err := s.Explain(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Cache != "hit" {
		t.Fatalf("second explain should hit the cache, got %q", hit.Cache)
	}
	if !hit.SearchTraceCached {
		t.Error("cache hits should label the replayed trace as cached")
	}
	if !strings.HasPrefix(hit.SearchTrace, "replayed from cache") {
		t.Errorf("cached trace should carry a replayed-from-cache label:\n%s", hit.SearchTrace)
	}
	if !strings.HasSuffix(hit.SearchTrace, miss.SearchTrace) {
		t.Error("cache hits should return the trace captured at search time")
	}
	// Without the flag the trace stays out of the payload.
	plain, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(6, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SearchTrace != "" {
		t.Error("trace text should be opt-in")
	}
}

func TestExplainAnalyzeJoinsPredictedAndActual(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()

	out, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(6, 7), Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := out.Analyze
	if rep == nil {
		t.Fatal("analyze=1 should attach an accuracy report")
	}
	if len(rep.Ops) != 11 {
		t.Errorf("6-relation chain: 6 scans + 5 joins = 11 ops, got %d", len(rep.Ops))
	}
	if rep.Scale <= 0 || rep.WallSeconds <= 0 {
		t.Errorf("degenerate calibration: scale %g, wall %gs", rep.Scale, rep.WallSeconds)
	}
	if !strings.Contains(out.AnalyzeTable, "cost-model accuracy") {
		t.Errorf("analyze table missing header:\n%s", out.AnalyzeTable)
	}
	// The error histogram saw the report's samples.
	if got := s.met.CostRelErr.Count(); got != int64(len(rep.Errors())) {
		t.Errorf("cost-error histogram has %d samples, report has %d", got, len(rep.Errors()))
	}
	if s.met.CostRelErr.Count() == 0 {
		t.Error("a real execution should produce error samples")
	}
	if s.met.PhaseExecute.Count() != 1 || s.met.AnalyzeRuns.Load() != 1 {
		t.Error("execute phase and analyze counter should record the run")
	}

	// The trace tree shows per-operator predicted vs actual descriptors.
	j := s.Tracer().Get(out.TraceID).JSON()
	exec := findSpan(j.Root, "execute")
	if exec == nil {
		t.Fatal("trace missing execute span")
	}
	if len(exec.Children) != len(rep.Ops) {
		t.Fatalf("execute span has %d operator children, want %d", len(exec.Children), len(rep.Ops))
	}
	scan := findSpan(exec, "scan(R1)")
	if scan == nil {
		t.Fatal("execute span missing scan(R1) operator")
	}
	for _, attr := range []string{"rows", "predTfMicros", "predTlMicros", "estRows"} {
		if scan.Attrs[attr] == "" {
			t.Errorf("operator span missing %q attr: %v", attr, scan.Attrs)
		}
	}

	// A second analyze reuses the generated database.
	if _, err := s.Explain(ctx, OptimizeRequest{Query: chainSQL(6, 8), Analyze: true}); err != nil {
		t.Fatal(err)
	}
	s.dbMu.Lock()
	n := len(s.dbs)
	s.dbMu.Unlock()
	if n != 1 {
		t.Errorf("one catalog version should generate one database, got %d", n)
	}
}

func TestHTTPDebugTraceEndpoints(t *testing.T) {
	_, srv := newTestServer(t, nil)

	// ?analyze=1&trace=1 are the query-param spellings of the body fields.
	resp, body := postJSON(t, srv.URL+"/explain?analyze=1&trace=1", OptimizeRequest{Query: chainSQL(6, 7)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain?analyze=1: %d: %s", resp.StatusCode, body)
	}
	var exp ExplainResponse
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.Analyze == nil || exp.AnalyzeTable == "" {
		t.Error("?analyze=1 should attach the accuracy report")
	}
	if exp.SearchTrace == "" {
		t.Error("?trace=1 should attach the search trace")
	}
	if exp.TraceID == "" {
		t.Fatal("response should carry a trace ID")
	}

	resp, body = getBody(t, srv.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: %d", resp.StatusCode)
	}
	var list struct {
		Traces []string `json:"traces"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0] != exp.TraceID {
		t.Errorf("trace listing = %v, want [%s]", list.Traces, exp.TraceID)
	}

	resp, body = getBody(t, srv.URL+"/debug/trace/"+exp.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace/{id}: %d: %s", resp.StatusCode, body)
	}
	var tj obs.TraceJSON
	if err := json.Unmarshal(body, &tj); err != nil {
		t.Fatal(err)
	}
	if tj.ID != exp.TraceID || tj.Root == nil || tj.Root.Name != "explain" {
		t.Errorf("unexpected trace payload: id=%s root=%+v", tj.ID, tj.Root)
	}
	if findSpan(tj.Root, "execute") == nil {
		t.Error("served trace should include the execute span")
	}

	resp, _ = getBody(t, srv.URL+"/debug/trace/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace should 404, got %d", resp.StatusCode)
	}
}

func TestHTTPDebugTraceDisabled(t *testing.T) {
	_, srv := newTestServer(t, func(c *Config) { c.TraceCapacity = -1 })
	resp, body := getBody(t, srv.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"traces": []`) {
		t.Errorf("disabled tracing should list no traces: %d: %s", resp.StatusCode, body)
	}
	resp, _ = getBody(t, srv.URL+"/debug/trace/any")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("disabled tracing: any trace ID should 404, got %d", resp.StatusCode)
	}
}

func TestAnalyzeRefusesOversizedCatalogs(t *testing.T) {
	s := newTestService(t, nil)
	const bigDDL = `
relation BIG card=10000000 pages=100000 disk=0
column BIG.a ndv=1000
relation TINY card=10 pages=1 disk=1
column TINY.a ndv=1000
`
	_, err := s.Explain(context.Background(), OptimizeRequest{
		Query:   "SELECT * FROM BIG, TINY WHERE BIG.a = TINY.a",
		Schema:  bigDDL,
		Analyze: true,
	})
	if err == nil || !strings.Contains(err.Error(), "analyze refused") {
		t.Fatalf("oversized catalog should be refused, got %v", err)
	}
}
