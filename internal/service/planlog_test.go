package service

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestPlanLogSurvivesRestart: the JSONL audit file is opened in append mode,
// so plan changes recorded before a daemon restart remain readable after it,
// and every line parses back as a PlanChange (the format `paropt replay
// -plan-log-file` emits and post-hoc audits consume).
func TestPlanLogSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "changes.jsonl")
	record := func(fp string) {
		s := newTestService(t, func(c *Config) { c.PlanLogPath = path })
		s.RecordReplayChange(fp, "cat-v1", "HJ(R1,R2)", "SM(R1,R2)", 10, 12)
		s.Close()
	}
	record("fp-before-restart")
	record("fp-after-restart") // second daemon lifetime, same audit file

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var changes []PlanChange
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var c PlanChange
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("audit line %q does not parse back: %v", sc.Text(), err)
		}
		changes = append(changes, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(changes) != 2 {
		t.Fatalf("audit log has %d entries, want 2 (restart must append, not truncate)", len(changes))
	}
	if changes[0].Fingerprint != "fp-before-restart" || changes[1].Fingerprint != "fp-after-restart" {
		t.Errorf("entries out of order or overwritten: %+v", changes)
	}
	for i, c := range changes {
		if c.Source != "replay" || c.PrevPlan != "HJ(R1,R2)" || c.NewPlan != "SM(R1,R2)" || c.Time.IsZero() {
			t.Errorf("entry %d malformed: %+v", i, c)
		}
	}
}
