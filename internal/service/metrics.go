package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// latencyBuckets are the histogram upper bounds in seconds, chosen around
// the expected serving profile: cache hits in the tens of microseconds,
// full searches from hundreds of microseconds (small chains) to seconds
// (large cliques).
var latencyBuckets = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numLatencyBuckets must track len(latencyBuckets); checked in init.
const numLatencyBuckets = 18

func init() {
	if len(latencyBuckets) != numLatencyBuckets {
		panic("service: numLatencyBuckets out of sync with latencyBuckets")
	}
}

// Histogram is a fixed-bucket latency histogram with atomic counters. The
// zero value is ready to use.
type Histogram struct {
	counts [numLatencyBuckets + 1]atomic.Int64 // last bucket is +Inf
	count  atomic.Int64
	sumNs  atomic.Int64
}

// Observe records one latency in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(latencyBuckets) && seconds > latencyBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(seconds * 1e9))
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the total observed time in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNs.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it; 0 when nothing was observed. The +Inf
// bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= target {
			lo := 0.0
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			if i >= len(latencyBuckets) {
				return lo
			}
			hi := latencyBuckets[i]
			if n == 0 {
				return hi
			}
			frac := (target - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// Metrics aggregates the service counters exported at /metrics. All fields
// are safe for concurrent use.
type Metrics struct {
	// Per-endpoint request counters.
	OptimizeRequests atomic.Int64
	ExplainRequests  atomic.Int64
	SchemaRequests   atomic.Int64

	// Plan-cache traffic.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Evictions   atomic.Int64

	// CoverReuse counts requests answered by re-filtering a cached cover
	// set (no DP search); FullSearch counts DP searches actually run;
	// Deduped counts requests that joined an identical in-flight search
	// via singleflight instead of running their own.
	CoverReuse atomic.Int64
	FullSearch atomic.Int64
	Deduped    atomic.Int64

	// Admission control and failures.
	Rejected atomic.Int64 // 429s: queue full
	Errors   atomic.Int64

	// Latency is the end-to-end /optimize latency histogram.
	Latency Histogram
}

// WritePrometheus renders the metrics in Prometheus text exposition format.
// queueDepth and cacheLen are sampled gauges supplied by the service.
func (m *Metrics) WritePrometheus(w io.Writer, queueDepth, cacheLen int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP paroptd_requests_total Requests by endpoint.\n# TYPE paroptd_requests_total counter\n")
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"optimize\"} %d\n", m.OptimizeRequests.Load())
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"explain\"} %d\n", m.ExplainRequests.Load())
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"schema\"} %d\n", m.SchemaRequests.Load())
	counter("paroptd_cache_hits_total", "Plan-cache hits.", m.CacheHits.Load())
	counter("paroptd_cache_misses_total", "Plan-cache misses.", m.CacheMisses.Load())
	counter("paroptd_cache_evictions_total", "Plan-cache LRU evictions.", m.Evictions.Load())
	counter("paroptd_cover_reuse_total", "Requests answered by re-filtering a cached cover set (no search).", m.CoverReuse.Load())
	counter("paroptd_full_search_total", "Partial-order DP searches run.", m.FullSearch.Load())
	counter("paroptd_deduped_total", "Requests deduplicated onto an identical in-flight search.", m.Deduped.Load())
	counter("paroptd_rejected_total", "Requests rejected by admission control (429).", m.Rejected.Load())
	counter("paroptd_errors_total", "Requests that failed.", m.Errors.Load())
	gauge("paroptd_queue_depth", "Optimization jobs waiting in the worker-pool queue.", int64(queueDepth))
	gauge("paroptd_cache_entries", "Plan-cache entries resident.", int64(cacheLen))

	h := &m.Latency
	fmt.Fprintf(w, "# HELP paroptd_optimize_latency_seconds End-to-end /optimize latency.\n")
	fmt.Fprintf(w, "# TYPE paroptd_optimize_latency_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "paroptd_optimize_latency_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "paroptd_optimize_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "paroptd_optimize_latency_seconds_sum %g\n", h.Sum())
	fmt.Fprintf(w, "paroptd_optimize_latency_seconds_count %d\n", h.Count())
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "paroptd_optimize_latency_seconds{quantile=\"%g\"} %g\n", q, h.Quantile(q))
	}
}
