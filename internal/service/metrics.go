package service

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"time"

	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
)

// sortedKeys returns m's keys sorted, for deterministic exposition order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Histogram is the general bucketed histogram (internal/obs). The zero value
// is ready to use and adopts the default latency buckets.
type Histogram = obs.Histogram

// buildVersion resolves the module version stamped into the binary, or
// "dev" for test binaries and plain `go build` without VCS info.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			return v
		}
	}
	return "dev"
}

// Metrics aggregates the service counters exported at /metrics. All fields
// are safe for concurrent use.
type Metrics struct {
	// Per-endpoint request counters.
	OptimizeRequests atomic.Int64
	ExplainRequests  atomic.Int64
	SchemaRequests   atomic.Int64

	// Plan-cache traffic.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Evictions   atomic.Int64

	// CoverReuse counts requests answered by re-filtering a cached cover
	// set (no DP search); FullSearch counts DP searches actually run;
	// Deduped counts requests that joined an identical in-flight search
	// via singleflight instead of running their own.
	CoverReuse atomic.Int64
	FullSearch atomic.Int64
	Deduped    atomic.Int64

	// AnalyzeRuns counts explain-analyze executions against synthetic data.
	AnalyzeRuns atomic.Int64

	// Admission control and failures.
	Rejected atomic.Int64 // 429s: queue full
	Errors   atomic.Int64

	// NegCacheHits counts parse/resolve failures answered from the negative
	// cache (no re-parse).
	NegCacheHits atomic.Int64

	// SweepRuns counts drift-sweeper passes; SweepReoptimized counts cache
	// entries the sweeper replaced with a fresh search.
	SweepRuns        atomic.Int64
	SweepReoptimized atomic.Int64

	// Search prune counters by rejecting test, accumulated across every DP
	// search run: the Theorem 3 cover-set dominance test, the §2 work bound,
	// the memory constraint, and beam (cover-cap) eviction.
	PrunedDominance atomic.Int64
	PrunedWork      atomic.Int64
	PrunedMemory    atomic.Int64
	PrunedBeam      atomic.Int64

	// Plan-change audit counters by source (see planlog.go): "search" swaps
	// under unchanged inputs, "refresh" after a catalog move, "sweeper" drift
	// re-optimizations, "replay" regressions reported by replay runs.
	PlanChangesSearch  atomic.Int64
	PlanChangesRefresh atomic.Int64
	PlanChangesSweeper atomic.Int64
	PlanChangesReplay  atomic.Int64

	// Live-query cancellations by reason: client (DELETE /debug/queries/id),
	// deadline (RequestTimeout expired mid-request), shutdown (drain timeout
	// at daemon stop).
	QueryCancelledClient   atomic.Int64
	QueryCancelledDeadline atomic.Int64
	QueryCancelledShutdown atomic.Int64

	// CatalogRetired counts catalog versions retired by RefreshCatalog (each
	// retirement sweeps the version's plan-cache and negative-cache entries).
	CatalogRetired atomic.Int64

	// ExchangeFragments counts join fragments dispatched to worker processes
	// by distributed analyze runs (a re-dispatch after a failure counts
	// again). ShippedScans counts leaf-scan sides sourced at workers instead
	// of streamed from the coordinator; ExchangeRetries counts fragment
	// re-dispatches after worker failures; ExchangeFallbacks counts
	// fragments the coordinator ran itself after every worker dispatch
	// failed.
	ExchangeFragments atomic.Int64
	ShippedScans      atomic.Int64
	ExchangeRetries   atomic.Int64
	ExchangeFallbacks atomic.Int64

	// Latency is the end-to-end request latency histogram.
	Latency Histogram

	// Per-phase latency: one request decomposes into parse (resolve +
	// fingerprint), search (cache lookup through cover-set computation),
	// select (§2 re-filtering + plan materialization), render (JSON), and —
	// for analyze requests — execute (instrumented engine run).
	PhaseParse   Histogram
	PhaseSearch  Histogram
	PhaseSelect  Histogram
	PhaseRender  Histogram
	PhaseExecute Histogram

	// CostRelErr observes |relative error| of calibrated per-operator
	// (tf, tl) predictions from analyze runs — the live fidelity signal of
	// the §5 cost model. Buckets are obs.RelErrorBuckets.
	CostRelErr Histogram

	// SearchLayerSeconds observes the wall time of every DP layer (one
	// observation per layer per search) — where time goes inside the lattice.
	SearchLayerSeconds Histogram
}

// notePlanChange bumps the audit counter for one plan-change source.
func (m *Metrics) notePlanChange(source string) {
	switch source {
	case "search":
		m.PlanChangesSearch.Add(1)
	case "refresh":
		m.PlanChangesRefresh.Add(1)
	case "sweeper":
		m.PlanChangesSweeper.Add(1)
	case "replay":
		m.PlanChangesReplay.Add(1)
	}
}

// ensureInit pins non-default bucket bounds; called from New and defensively
// before rendering (a zero-value Metrics must still expose correct buckets).
func (m *Metrics) ensureInit() {
	m.CostRelErr.EnsureBuckets(obs.RelErrorBuckets)
}

// Gauges carries the point-in-time values sampled by the service when the
// exposition is rendered — queue and cache occupancy, workload-profiler and
// query-log state — plus the uptime. The query-log fields are cumulative
// counters maintained by the log's writer goroutine; they are sampled here
// rather than mirrored into Metrics so the log remains usable standalone.
type Gauges struct {
	QueueDepth     int
	CacheEntries   int
	TracesRetained int
	Uptime         time.Duration

	// Workload profiler occupancy (internal/obs/workload).
	WorkloadFingerprints int
	WorkloadDrifted      int
	WorkloadOverflow     int64

	// Negative-cache occupancy.
	NegCacheEntries int

	// ClusterWorkers is the registered worker-process count; ClusterEpoch
	// the membership epoch (bumped per register/deregister); Placements the
	// installed placement-map count; Links carries the cumulative per-link
	// exchange traffic (one entry per worker address that has ever carried
	// a distributed join).
	ClusterWorkers int
	ClusterEpoch   int64
	Placements     int
	Links          []exchange.LinkSnapshot

	// FallbackReasons are the cumulative coordinator-fallback counts by typed
	// reason (worker_died, worker_unreachable, worker_error). WorkerUp is the
	// per-worker liveness outcome of the last /cluster/metrics scrape.
	FallbackReasons map[string]int64
	WorkerUp        map[string]bool

	// Query-log cumulative counters.
	QueryLogRecords   int64
	QueryLogDropped   int64
	QueryLogRotations int64

	// InflightQueries is the live-registry occupancy; ProgressDrift counts
	// in-flight queries whose measured progress currently lags the model's
	// predicted timeline.
	InflightQueries int
	ProgressDrift   int
}

// WritePrometheus renders the metrics in Prometheus text exposition format,
// combining the cumulative counters with the sampled gauges.
func (m *Metrics) WritePrometheus(w io.Writer, g Gauges) {
	m.ensureInit()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP paroptd_build_info Build metadata; the value is always 1.\n# TYPE paroptd_build_info gauge\n")
	fmt.Fprintf(w, "paroptd_build_info{version=%q,goversion=%q} 1\n", buildVersion(), runtime.Version())
	fmt.Fprintf(w, "# HELP paroptd_uptime_seconds Seconds since the service started.\n# TYPE paroptd_uptime_seconds gauge\n")
	fmt.Fprintf(w, "paroptd_uptime_seconds %g\n", g.Uptime.Seconds())
	fmt.Fprintf(w, "# HELP paroptd_requests_total Requests by endpoint.\n# TYPE paroptd_requests_total counter\n")
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"optimize\"} %d\n", m.OptimizeRequests.Load())
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"explain\"} %d\n", m.ExplainRequests.Load())
	fmt.Fprintf(w, "paroptd_requests_total{endpoint=\"schema\"} %d\n", m.SchemaRequests.Load())
	counter("paroptd_cache_hits_total", "Plan-cache hits.", m.CacheHits.Load())
	counter("paroptd_cache_misses_total", "Plan-cache misses.", m.CacheMisses.Load())
	counter("paroptd_cache_evictions_total", "Plan-cache LRU evictions.", m.Evictions.Load())
	counter("paroptd_cover_reuse_total", "Requests answered by re-filtering a cached cover set (no search).", m.CoverReuse.Load())
	counter("paroptd_full_search_total", "Partial-order DP searches run.", m.FullSearch.Load())
	counter("paroptd_deduped_total", "Requests deduplicated onto an identical in-flight search.", m.Deduped.Load())
	counter("paroptd_analyze_total", "Explain-analyze executions against synthetic data.", m.AnalyzeRuns.Load())
	counter("paroptd_rejected_total", "Requests rejected by admission control (429).", m.Rejected.Load())
	counter("paroptd_errors_total", "Requests that failed.", m.Errors.Load())
	counter("paroptd_negcache_hits_total", "Parse/resolve failures answered from the negative cache.", m.NegCacheHits.Load())
	counter("paroptd_sweeper_runs_total", "Drift-sweeper passes.", m.SweepRuns.Load())
	counter("paroptd_sweeper_reoptimized_total", "Cache entries re-optimized by the drift sweeper.", m.SweepReoptimized.Load())
	fmt.Fprintf(w, "# HELP paroptd_search_pruned_total Candidates pruned during DP search, by rejecting test.\n# TYPE paroptd_search_pruned_total counter\n")
	fmt.Fprintf(w, "paroptd_search_pruned_total{reason=\"dominance\"} %d\n", m.PrunedDominance.Load())
	fmt.Fprintf(w, "paroptd_search_pruned_total{reason=\"work\"} %d\n", m.PrunedWork.Load())
	fmt.Fprintf(w, "paroptd_search_pruned_total{reason=\"memory\"} %d\n", m.PrunedMemory.Load())
	fmt.Fprintf(w, "paroptd_search_pruned_total{reason=\"beam\"} %d\n", m.PrunedBeam.Load())
	fmt.Fprintf(w, "# HELP paroptd_plan_changes_total Cached-plan swaps recorded in the plan-change audit log, by source.\n# TYPE paroptd_plan_changes_total counter\n")
	fmt.Fprintf(w, "paroptd_plan_changes_total{source=\"search\"} %d\n", m.PlanChangesSearch.Load())
	fmt.Fprintf(w, "paroptd_plan_changes_total{source=\"refresh\"} %d\n", m.PlanChangesRefresh.Load())
	fmt.Fprintf(w, "paroptd_plan_changes_total{source=\"sweeper\"} %d\n", m.PlanChangesSweeper.Load())
	fmt.Fprintf(w, "paroptd_plan_changes_total{source=\"replay\"} %d\n", m.PlanChangesReplay.Load())
	fmt.Fprintf(w, "# HELP paroptd_query_cancelled_total In-flight queries cancelled, by reason.\n# TYPE paroptd_query_cancelled_total counter\n")
	fmt.Fprintf(w, "paroptd_query_cancelled_total{reason=\"client\"} %d\n", m.QueryCancelledClient.Load())
	fmt.Fprintf(w, "paroptd_query_cancelled_total{reason=\"deadline\"} %d\n", m.QueryCancelledDeadline.Load())
	fmt.Fprintf(w, "paroptd_query_cancelled_total{reason=\"shutdown\"} %d\n", m.QueryCancelledShutdown.Load())
	counter("paroptd_catalog_versions_retired", "Catalog versions retired by statistics refreshes (plan + negative caches swept).", m.CatalogRetired.Load())
	counter("paroptd_exchange_fragments_total", "Join fragments dispatched to worker processes (re-dispatches count again).", m.ExchangeFragments.Load())
	counter("paroptd_exchange_shipped_scans_total", "Leaf-scan sides sourced at workers instead of streamed from the coordinator.", m.ShippedScans.Load())
	counter("paroptd_exchange_retries_total", "Fragment re-dispatches after a worker failure.", m.ExchangeRetries.Load())
	counter("paroptd_exchange_fallbacks_total", "Fragments the coordinator ran itself after every worker dispatch failed.", m.ExchangeFallbacks.Load())
	counter("paroptd_workload_overflow_total", "Fingerprints dropped because the workload profiler was full.", g.WorkloadOverflow)
	counter("paroptd_querylog_records_total", "Query-log records written to disk.", g.QueryLogRecords)
	counter("paroptd_querylog_dropped_total", "Query-log records dropped (writer behind or log closed).", g.QueryLogDropped)
	counter("paroptd_querylog_rotations_total", "Query-log size-based rotations.", g.QueryLogRotations)
	gauge("paroptd_queue_depth", "Optimization jobs waiting in the worker-pool queue.", int64(g.QueueDepth))
	gauge("paroptd_cache_entries", "Plan-cache entries resident.", int64(g.CacheEntries))
	gauge("paroptd_traces_retained", "Request traces retained for /debug/trace.", int64(g.TracesRetained))
	gauge("paroptd_workload_fingerprints", "Query templates tracked by the workload profiler.", int64(g.WorkloadFingerprints))
	gauge("paroptd_workload_drifted", "Profiles whose EWMA q-error currently exceeds the drift threshold.", int64(g.WorkloadDrifted))
	gauge("paroptd_negcache_entries", "Negative-cache entries resident.", int64(g.NegCacheEntries))
	gauge("paroptd_cluster_workers", "Worker processes registered for distributed execution.", int64(g.ClusterWorkers))
	gauge("paroptd_cluster_epoch", "Cluster-membership epoch (bumped per register/deregister).", g.ClusterEpoch)
	gauge("paroptd_placements", "Installed data-placement maps (one per catalog version).", int64(g.Placements))
	gauge("paroptd_queries_inflight", "Queries currently being served (live registry occupancy).", int64(g.InflightQueries))
	gauge("paroptd_query_progress_drift", "In-flight queries whose measured progress lags the predicted (tf, tl) timeline.", int64(g.ProgressDrift))

	fmt.Fprintf(w, "# HELP paroptd_exchange_link_bytes_total Bytes moved per worker link by distributed joins.\n# TYPE paroptd_exchange_link_bytes_total counter\n")
	for _, l := range g.Links {
		fmt.Fprintf(w, "paroptd_exchange_link_bytes_total{link=%q,direction=\"sent\"} %d\n", l.Addr, l.BytesSent)
		fmt.Fprintf(w, "paroptd_exchange_link_bytes_total{link=%q,direction=\"recv\"} %d\n", l.Addr, l.BytesRecv)
	}
	fmt.Fprintf(w, "# HELP paroptd_exchange_link_batches_total Tuple batches moved per worker link by distributed joins.\n# TYPE paroptd_exchange_link_batches_total counter\n")
	for _, l := range g.Links {
		fmt.Fprintf(w, "paroptd_exchange_link_batches_total{link=%q,direction=\"sent\"} %d\n", l.Addr, l.BatchesSent)
		fmt.Fprintf(w, "paroptd_exchange_link_batches_total{link=%q,direction=\"recv\"} %d\n", l.Addr, l.BatchesRecv)
	}
	fmt.Fprintf(w, "# HELP paroptd_exchange_stall_seconds_total Seconds exchange senders spent blocked on credit-window backpressure, per link and stream direction — the measured pipeline sync penalty.\n# TYPE paroptd_exchange_stall_seconds_total counter\n")
	for _, l := range g.Links {
		fmt.Fprintf(w, "paroptd_exchange_stall_seconds_total{link=%q,direction=\"left\"} %g\n", l.Addr, float64(l.StallLeftNanos)/1e9)
		fmt.Fprintf(w, "paroptd_exchange_stall_seconds_total{link=%q,direction=\"right\"} %g\n", l.Addr, float64(l.StallRightNanos)/1e9)
		fmt.Fprintf(w, "paroptd_exchange_stall_seconds_total{link=%q,direction=\"result\"} %g\n", l.Addr, float64(l.StallResultNanos)/1e9)
	}
	fmt.Fprintf(w, "# HELP paroptd_exchange_send_seconds_total Seconds spent writing frames to each worker link (wire time, coordinator side).\n# TYPE paroptd_exchange_send_seconds_total counter\n")
	for _, l := range g.Links {
		fmt.Fprintf(w, "paroptd_exchange_send_seconds_total{link=%q} %g\n", l.Addr, float64(l.SendNanos)/1e9)
	}
	fmt.Fprintf(w, "# HELP paroptd_exchange_fallback_reason_total Coordinator fallbacks by typed failure reason.\n# TYPE paroptd_exchange_fallback_reason_total counter\n")
	for _, reason := range sortedKeys(g.FallbackReasons) {
		fmt.Fprintf(w, "paroptd_exchange_fallback_reason_total{reason=%q} %d\n", reason, g.FallbackReasons[reason])
	}
	fmt.Fprintf(w, "# HELP paroptd_cluster_worker_up Per-worker liveness from the last /cluster/metrics scrape (1 = healthz answered).\n# TYPE paroptd_cluster_worker_up gauge\n")
	for _, addr := range sortedKeys(g.WorkerUp) {
		up := 0
		if g.WorkerUp[addr] {
			up = 1
		}
		fmt.Fprintf(w, "paroptd_cluster_worker_up{worker=%q} %d\n", addr, up)
	}

	fmt.Fprintf(w, "# HELP paroptd_optimize_latency_seconds End-to-end request latency.\n")
	fmt.Fprintf(w, "# TYPE paroptd_optimize_latency_seconds histogram\n")
	m.Latency.WritePrometheus(w, "paroptd_optimize_latency_seconds", "")
	for _, q := range []float64{0.5, 0.95, 0.99} {
		fmt.Fprintf(w, "paroptd_optimize_latency_seconds{quantile=\"%g\"} %g\n", q, m.Latency.Quantile(q))
	}

	fmt.Fprintf(w, "# HELP paroptd_phase_seconds Request latency by phase.\n")
	fmt.Fprintf(w, "# TYPE paroptd_phase_seconds histogram\n")
	for _, ph := range []struct {
		name string
		h    *Histogram
	}{
		{"parse", &m.PhaseParse},
		{"search", &m.PhaseSearch},
		{"select", &m.PhaseSelect},
		{"render", &m.PhaseRender},
		{"execute", &m.PhaseExecute},
	} {
		ph.h.WritePrometheus(w, "paroptd_phase_seconds", fmt.Sprintf("phase=%q", ph.name))
	}

	fmt.Fprintf(w, "# HELP paroptd_cost_rel_error Absolute relative error of calibrated per-operator (tf, tl) predictions, from analyze runs.\n")
	fmt.Fprintf(w, "# TYPE paroptd_cost_rel_error histogram\n")
	m.CostRelErr.WritePrometheus(w, "paroptd_cost_rel_error", "")

	fmt.Fprintf(w, "# HELP paroptd_search_layer_seconds Wall time per DP search layer (one observation per layer per search).\n")
	fmt.Fprintf(w, "# TYPE paroptd_search_layer_seconds histogram\n")
	m.SearchLayerSeconds.WritePrometheus(w, "paroptd_search_layer_seconds", "")
}
