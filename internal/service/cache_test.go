package service

import (
	"fmt"
	"sync"
	"testing"
)

func TestPlanCacheLRUEviction(t *testing.T) {
	evicted := 0
	c := newPlanCache(1, 3, func() { evicted++ })
	e := func() *cacheEntry { return &cacheEntry{} }
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), e())
	}
	if c.Len() != 3 || evicted != 0 {
		t.Fatalf("len=%d evicted=%d after 3 puts at cap 3", c.Len(), evicted)
	}
	// Touch k0 so k1 becomes the LRU victim.
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 should be resident")
	}
	c.Put("k3", e())
	if evicted != 1 {
		t.Fatalf("expected 1 eviction, got %d", evicted)
	}
	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should be resident", k)
		}
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("purge should empty the cache, len=%d", c.Len())
	}
}

func TestPlanCacheShardingIsConcurrencySafe(t *testing.T) {
	c := newPlanCache(8, 64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-i%d", g, i%20)
				c.Put(k, &cacheEntry{})
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n == 0 || n > 64 {
		t.Errorf("cache len %d out of bounds (0, 64]", n)
	}
}

func TestPlanCacheOverwriteRefreshes(t *testing.T) {
	c := newPlanCache(1, 2, nil)
	a, b := &cacheEntry{}, &cacheEntry{}
	c.Put("k", a)
	c.Put("k", b)
	if c.Len() != 1 {
		t.Fatalf("overwrite should not grow the cache, len=%d", c.Len())
	}
	got, _ := c.Get("k")
	if got != b {
		t.Error("overwrite should replace the value")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// 100 observations at ~1ms, 10 at ~100ms: p50 in the 1ms bucket, p99
	// in the 100ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.0009)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.09)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 < 0.0005 || p50 > 0.001 {
		t.Errorf("p50 = %g, want within (0.0005, 0.001]", p50)
	}
	if p99 < 0.05 || p99 > 0.1 {
		t.Errorf("p99 = %g, want within (0.05, 0.1]", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}
