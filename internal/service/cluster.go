package service

import (
	"errors"
	"fmt"
	"sort"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
	"paropt/internal/placement"
	"paropt/internal/storage"
)

// Worker membership for distributed execution: paroptw processes announce
// themselves via POST /cluster/register and each distributed analyze request
// builds an exchange.Cluster over the membership of the moment. The daemon
// never dials workers outside a request, so registration is plain bookkeeping
// — a dead worker surfaces as a typed *exchange.WorkerError on the request
// that tried to use it, and the operator (or the worker's own restart)
// deregisters it. Every membership change bumps the epoch; in-flight
// fragment retries consult the live membership through it, so a mid-query
// deregistration shrinks the candidate set instead of failing the query.

// RegisterWorker adds a worker address to the cluster membership and returns
// the resulting worker count. Idempotent; the epoch advances only when the
// membership actually changes (steady-state heartbeat re-registrations are
// free).
func (s *Service) RegisterWorker(addr string) (int, error) {
	if addr == "" {
		return 0, badRequestError{errors.New("service: empty worker address")}
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if _, ok := s.workers[addr]; !ok {
		s.workers[addr] = struct{}{}
		s.epoch++
	}
	return len(s.workers), nil
}

// DeregisterWorker removes a worker address, reporting whether it was
// registered, and the remaining count.
func (s *Service) DeregisterWorker(addr string) (bool, int) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	_, ok := s.workers[addr]
	if ok {
		delete(s.workers, addr)
		s.epoch++
	}
	return ok, len(s.workers)
}

// WorkerAddrs returns the registered worker addresses, sorted.
func (s *Service) WorkerAddrs() []string {
	addrs, _ := s.Members()
	return addrs
}

// Members returns the live worker addresses (sorted) and the membership
// epoch, sampled atomically — the exchange layer's re-dispatch callback.
func (s *Service) Members() ([]string, int64) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	addrs := make([]string, 0, len(s.workers))
	for a := range s.workers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs, s.epoch
}

// Epoch returns the current cluster-membership epoch.
func (s *Service) Epoch() int64 {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.epoch
}

// PlacementFor returns the installed placement map for a catalog version,
// or nil when none is installed.
func (s *Service) PlacementFor(version string) *placement.Map {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.placements[version]
}

// InstallPlacement builds a placement map for the catalog version over the
// currently registered workers (optionally pinning partitioning columns)
// and installs it. Subsequent searches under that version are placement-
// aware and distributed analyzes ship leaf scans to the owners.
func (s *Service) InstallPlacement(version string, columns map[string]string) (*placement.Map, error) {
	if version == "" {
		s.mu.RLock()
		version = s.defaultVersion
		s.mu.RUnlock()
	}
	s.mu.RLock()
	cat := s.catalogs[version]
	s.mu.RUnlock()
	if cat == nil {
		return nil, badRequestError{fmt.Errorf("service: unknown catalog version %q", version)}
	}
	workers, epoch := s.Members()
	if len(workers) == 0 {
		return nil, badRequestError{errors.New("service: no workers registered to place data on")}
	}
	m, err := placement.Build(cat, version, workers, s.cfg.DataSeed, columns)
	if err != nil {
		return nil, badRequestError{err}
	}
	m.Epoch = epoch
	s.clusterMu.Lock()
	s.placements[version] = m
	n := len(s.placements)
	s.clusterMu.Unlock()
	s.logger.Info("placement installed", "catalog", version, "workers", len(workers),
		"fingerprint", m.Fingerprint(), "placements", n)
	return m, nil
}

// placementCount is the number of installed placement maps (a gauge).
func (s *Service) placementCount() int {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return len(s.placements)
}

// placedConfig renders the installed placement for a catalog version as the
// cost model's Placed map: worker i of an assignment maps to shared-nothing
// node i (mod the machine's node count). Nil when no placement is
// installed — searches then price every redistribution as before.
func (s *Service) placedConfig(version string) map[string]cost.PlacedRelation {
	m := s.PlacementFor(version)
	if m == nil {
		return nil
	}
	nodes := s.mcfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	out := make(map[string]cost.PlacedRelation, len(m.Assignments))
	for name, a := range m.Assignments {
		pr := cost.PlacedRelation{Column: a.Column}
		seen := make(map[int]bool, nodes)
		for i := range a.Workers {
			n := i % nodes
			if !seen[n] {
				seen[n] = true
				pr.Nodes = append(pr.Nodes, n)
			}
		}
		sort.Ints(pr.Nodes)
		out[name] = pr
	}
	return out
}

// fallbackStore returns the coordinator-side placement store for a catalog
// version, building it on first use seeded with the analyze database's
// tables (so fallback scans slice instead of regenerating).
func (s *Service) fallbackStore(version string, cat *catalog.Catalog, db *storage.Database) *placement.Store {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if st, ok := s.fstores[version]; ok {
		return st
	}
	st := placement.NewStore(cat, s.cfg.DataSeed)
	for _, name := range cat.RelationNames() {
		if t, ok := db.Table(name); ok {
			st.AddTable(t)
		}
	}
	s.fstores[version] = st
	return st
}

// recordExchange folds one request's cluster traffic into the daemon's
// cumulative per-link counters (exposed at /metrics) and grafts the totals
// onto the request's execute span. Each request uses a fresh Cluster, so the
// cluster's counters are exactly this request's delta.
func (s *Service) recordExchange(sp *obs.Span, c *exchange.Cluster) {
	frags := c.Fragments()
	s.met.ExchangeFragments.Add(frags)
	sp.SetAttr("fragments", frags)
	if n := c.ShippedScans(); n > 0 {
		s.met.ShippedScans.Add(n)
		sp.SetAttr("shippedScans", n)
	}
	if n := c.Retries(); n > 0 {
		s.met.ExchangeRetries.Add(n)
		sp.SetAttr("retries", n)
	}
	if n := c.Fallbacks(); n > 0 {
		s.met.ExchangeFallbacks.Add(n)
		sp.SetAttr("fallbacks", n)
	}
	s.clusterMu.Lock()
	for _, l := range c.Links() {
		cum, ok := s.links[l.Addr]
		if !ok {
			cum = &exchange.LinkSnapshot{Addr: l.Addr}
			s.links[l.Addr] = cum
		}
		cum.BytesSent += l.BytesSent
		cum.BytesRecv += l.BytesRecv
		cum.BatchesSent += l.BatchesSent
		cum.BatchesRecv += l.BatchesRecv
		sp.SetAttr("link."+l.Addr+".sent", l.BytesSent)
		sp.SetAttr("link."+l.Addr+".recv", l.BytesRecv)
	}
	s.clusterMu.Unlock()
}

// linkSnapshots copies the cumulative per-link traffic, sorted by address.
func (s *Service) linkSnapshots() []exchange.LinkSnapshot {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make([]exchange.LinkSnapshot, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
