package service

import (
	"errors"
	"sort"

	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
)

// Worker membership for distributed execution: paroptw processes announce
// themselves via POST /cluster/register and each distributed analyze request
// builds an exchange.Cluster over the membership of the moment. The daemon
// never dials workers outside a request, so registration is plain bookkeeping
// — a dead worker surfaces as a typed *exchange.WorkerError on the request
// that tried to use it, and the operator (or the worker's own restart)
// deregisters it.

// RegisterWorker adds a worker address to the cluster membership and returns
// the resulting worker count. Idempotent.
func (s *Service) RegisterWorker(addr string) (int, error) {
	if addr == "" {
		return 0, badRequestError{errors.New("service: empty worker address")}
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	s.workers[addr] = struct{}{}
	return len(s.workers), nil
}

// DeregisterWorker removes a worker address, reporting whether it was
// registered, and the remaining count.
func (s *Service) DeregisterWorker(addr string) (bool, int) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	_, ok := s.workers[addr]
	delete(s.workers, addr)
	return ok, len(s.workers)
}

// WorkerAddrs returns the registered worker addresses, sorted.
func (s *Service) WorkerAddrs() []string {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	addrs := make([]string, 0, len(s.workers))
	for a := range s.workers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// recordExchange folds one request's cluster traffic into the daemon's
// cumulative per-link counters (exposed at /metrics) and grafts the totals
// onto the request's execute span. Each request uses a fresh Cluster, so the
// cluster's counters are exactly this request's delta.
func (s *Service) recordExchange(sp *obs.Span, c *exchange.Cluster) {
	frags := c.Fragments()
	s.met.ExchangeFragments.Add(frags)
	sp.SetAttr("fragments", frags)
	s.clusterMu.Lock()
	for _, l := range c.Links() {
		cum, ok := s.links[l.Addr]
		if !ok {
			cum = &exchange.LinkSnapshot{Addr: l.Addr}
			s.links[l.Addr] = cum
		}
		cum.BytesSent += l.BytesSent
		cum.BytesRecv += l.BytesRecv
		cum.BatchesSent += l.BatchesSent
		cum.BatchesRecv += l.BatchesRecv
		sp.SetAttr("link."+l.Addr+".sent", l.BytesSent)
		sp.SetAttr("link."+l.Addr+".recv", l.BytesRecv)
	}
	s.clusterMu.Unlock()
}

// linkSnapshots copies the cumulative per-link traffic, sorted by address.
func (s *Service) linkSnapshots() []exchange.LinkSnapshot {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make([]exchange.LinkSnapshot, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
