package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
	"paropt/internal/placement"
	"paropt/internal/storage"
)

// Worker membership for distributed execution: paroptw processes announce
// themselves via POST /cluster/register and each distributed analyze request
// builds an exchange.Cluster over the membership of the moment. The daemon
// never dials workers outside a request, so registration is plain bookkeeping
// — a dead worker surfaces as a typed *exchange.WorkerError on the request
// that tried to use it, and the operator (or the worker's own restart)
// deregisters it. Every membership change bumps the epoch; in-flight
// fragment retries consult the live membership through it, so a mid-query
// deregistration shrinks the candidate set instead of failing the query.

// RegisterWorker adds a worker address to the cluster membership and returns
// the resulting worker count. httpURL, when non-empty, is the worker's own
// HTTP base URL (its /metrics and /healthz), which GET /cluster/metrics
// scrapes; workers predating the field register with "". Idempotent; the
// epoch advances only when the membership actually changes (steady-state
// heartbeat re-registrations are free).
func (s *Service) RegisterWorker(addr, httpURL string) (int, error) {
	if addr == "" {
		return 0, badRequestError{errors.New("service: empty worker address")}
	}
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	if _, ok := s.workers[addr]; !ok {
		s.epoch++
	}
	s.workers[addr] = httpURL
	return len(s.workers), nil
}

// workerHTTP returns the registered workers' HTTP base URLs keyed by
// exchange address ("" for workers that registered without one).
func (s *Service) workerHTTP() map[string]string {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make(map[string]string, len(s.workers))
	for a, h := range s.workers {
		out[a] = h
	}
	return out
}

// DeregisterWorker removes a worker address, reporting whether it was
// registered, and the remaining count.
func (s *Service) DeregisterWorker(addr string) (bool, int) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	_, ok := s.workers[addr]
	if ok {
		delete(s.workers, addr)
		s.epoch++
	}
	return ok, len(s.workers)
}

// WorkerAddrs returns the registered worker addresses, sorted.
func (s *Service) WorkerAddrs() []string {
	addrs, _ := s.Members()
	return addrs
}

// Members returns the live worker addresses (sorted) and the membership
// epoch, sampled atomically — the exchange layer's re-dispatch callback.
func (s *Service) Members() ([]string, int64) {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	addrs := make([]string, 0, len(s.workers))
	for a := range s.workers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs, s.epoch
}

// Epoch returns the current cluster-membership epoch.
func (s *Service) Epoch() int64 {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.epoch
}

// PlacementFor returns the installed placement map for a catalog version,
// or nil when none is installed.
func (s *Service) PlacementFor(version string) *placement.Map {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return s.placements[version]
}

// InstallPlacement builds a placement map for the catalog version over the
// currently registered workers (optionally pinning partitioning columns)
// and installs it. Subsequent searches under that version are placement-
// aware and distributed analyzes ship leaf scans to the owners.
func (s *Service) InstallPlacement(version string, columns map[string]string) (*placement.Map, error) {
	if version == "" {
		s.mu.RLock()
		version = s.defaultVersion
		s.mu.RUnlock()
	}
	s.mu.RLock()
	cat := s.catalogs[version]
	s.mu.RUnlock()
	if cat == nil {
		return nil, badRequestError{fmt.Errorf("service: unknown catalog version %q", version)}
	}
	workers, epoch := s.Members()
	if len(workers) == 0 {
		return nil, badRequestError{errors.New("service: no workers registered to place data on")}
	}
	m, err := placement.Build(cat, version, workers, s.cfg.DataSeed, columns)
	if err != nil {
		return nil, badRequestError{err}
	}
	m.Epoch = epoch
	s.clusterMu.Lock()
	s.placements[version] = m
	n := len(s.placements)
	s.clusterMu.Unlock()
	s.logger.Info("placement installed", "catalog", version, "workers", len(workers),
		"fingerprint", m.Fingerprint(), "placements", n)
	return m, nil
}

// placementCount is the number of installed placement maps (a gauge).
func (s *Service) placementCount() int {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	return len(s.placements)
}

// placedConfig renders the installed placement for a catalog version as the
// cost model's Placed map: worker i of an assignment maps to shared-nothing
// node i (mod the machine's node count). Nil when no placement is
// installed — searches then price every redistribution as before.
func (s *Service) placedConfig(version string) map[string]cost.PlacedRelation {
	m := s.PlacementFor(version)
	if m == nil {
		return nil
	}
	nodes := s.mcfg.Nodes
	if nodes < 1 {
		nodes = 1
	}
	out := make(map[string]cost.PlacedRelation, len(m.Assignments))
	for name, a := range m.Assignments {
		pr := cost.PlacedRelation{Column: a.Column}
		seen := make(map[int]bool, nodes)
		for i := range a.Workers {
			n := i % nodes
			if !seen[n] {
				seen[n] = true
				pr.Nodes = append(pr.Nodes, n)
			}
		}
		sort.Ints(pr.Nodes)
		out[name] = pr
	}
	return out
}

// fallbackStore returns the coordinator-side placement store for a catalog
// version, building it on first use seeded with the analyze database's
// tables (so fallback scans slice instead of regenerating).
func (s *Service) fallbackStore(version string, cat *catalog.Catalog, db *storage.Database) *placement.Store {
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if st, ok := s.fstores[version]; ok {
		return st
	}
	st := placement.NewStore(cat, s.cfg.DataSeed)
	for _, name := range cat.RelationNames() {
		if t, ok := db.Table(name); ok {
			st.AddTable(t)
		}
	}
	s.fstores[version] = st
	return st
}

// recordExchange folds one request's cluster traffic into the daemon's
// cumulative per-link counters (exposed at /metrics) and grafts the totals
// onto the request's execute span. Each request uses a fresh Cluster, so the
// cluster's counters are exactly this request's delta.
func (s *Service) recordExchange(sp *obs.Span, c *exchange.Cluster) {
	frags := c.Fragments()
	s.met.ExchangeFragments.Add(frags)
	sp.SetAttr("fragments", frags)
	if n := c.ShippedScans(); n > 0 {
		s.met.ShippedScans.Add(n)
		sp.SetAttr("shippedScans", n)
	}
	if n := c.Retries(); n > 0 {
		s.met.ExchangeRetries.Add(n)
		sp.SetAttr("retries", n)
	}
	if n := c.Fallbacks(); n > 0 {
		s.met.ExchangeFallbacks.Add(n)
		sp.SetAttr("fallbacks", n)
		// The typed reason distinguishes worker death from dispatch errors
		// on both the span and the per-reason counter family.
		for reason, n := range c.FallbackReasons() {
			sp.SetAttr("fallbackReason."+reason, n)
		}
	}
	s.clusterMu.Lock()
	for reason, n := range c.FallbackReasons() {
		s.fallbackReasons[reason] += n
	}
	for _, l := range c.Links() {
		cum, ok := s.links[l.Addr]
		if !ok {
			cum = &exchange.LinkSnapshot{Addr: l.Addr}
			s.links[l.Addr] = cum
		}
		cum.BytesSent += l.BytesSent
		cum.BytesRecv += l.BytesRecv
		cum.BatchesSent += l.BatchesSent
		cum.BatchesRecv += l.BatchesRecv
		cum.StallLeftNanos += l.StallLeftNanos
		cum.StallRightNanos += l.StallRightNanos
		cum.StallResultNanos += l.StallResultNanos
		cum.SendNanos += l.SendNanos
		sp.SetAttr("link."+l.Addr+".sent", l.BytesSent)
		sp.SetAttr("link."+l.Addr+".recv", l.BytesRecv)
		if stall := l.StallLeftNanos + l.StallRightNanos + l.StallResultNanos; stall > 0 {
			sp.SetAttr("link."+l.Addr+".stallMicros", stall/1e3)
		}
	}
	s.clusterMu.Unlock()
}

// fallbackReasonCounts copies the cumulative fallback-reason counters.
func (s *Service) fallbackReasonCounts() map[string]int64 {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make(map[string]int64, len(s.fallbackReasons))
	for k, v := range s.fallbackReasons {
		out[k] = v
	}
	return out
}

// Worker federation: GET /cluster/metrics scrapes every registered worker's
// own /healthz and returns one snapshot of the fleet. The scrape is also the
// daemon's liveness probe — its outcome feeds the per-worker
// paroptd_cluster_worker_up gauge on /metrics.

// scrapeTimeout bounds one worker health probe; a worker that cannot answer
// within it is reported down rather than stalling the federated response.
const scrapeTimeout = 2 * time.Second

// WorkerStatus is one worker's row in the federated snapshot. Health is the
// worker's own /healthz document, passed through verbatim; Error explains a
// failed scrape.
type WorkerStatus struct {
	Addr   string          `json:"addr"`
	HTTP   string          `json:"http,omitempty"`
	Up     bool            `json:"up"`
	Health json.RawMessage `json:"health,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// ClusterMetrics is the federated fleet snapshot returned by
// GET /cluster/metrics.
type ClusterMetrics struct {
	Workers []WorkerStatus          `json:"workers"`
	Live    int                     `json:"live"`
	Total   int                     `json:"total"`
	Epoch   int64                   `json:"epoch"`
	Links   []exchange.LinkSnapshot `json:"links,omitempty"`
}

// scrapeWorkers probes every registered worker's /healthz in parallel and
// records the liveness outcome for the /metrics worker_up gauges. Workers
// that registered without an HTTP URL (pre-observability paroptw builds)
// cannot be probed and are reported down with an explanatory error.
func (s *Service) scrapeWorkers(ctx context.Context) ClusterMetrics {
	ctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	targets := s.workerHTTP()
	addrs := make([]string, 0, len(targets))
	for a := range targets {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	out := ClusterMetrics{
		Workers: make([]WorkerStatus, len(addrs)),
		Total:   len(addrs),
		Epoch:   s.Epoch(),
		Links:   s.linkSnapshots(),
	}
	var wg sync.WaitGroup
	for i, addr := range addrs {
		ws := &out.Workers[i]
		ws.Addr, ws.HTTP = addr, targets[addr]
		if ws.HTTP == "" {
			ws.Error = "worker registered without an http endpoint"
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.HTTP+"/healthz", nil)
			if err != nil {
				ws.Error = err.Error()
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				ws.Error = err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
			if err != nil {
				ws.Error = err.Error()
				return
			}
			if resp.StatusCode != http.StatusOK {
				ws.Error = fmt.Sprintf("healthz returned %d", resp.StatusCode)
				return
			}
			if json.Valid(body) {
				ws.Health = json.RawMessage(body)
			}
			ws.Up = true
		}()
	}
	wg.Wait()
	s.clusterMu.Lock()
	s.workerUp = make(map[string]bool, len(out.Workers))
	for _, ws := range out.Workers {
		s.workerUp[ws.Addr] = ws.Up
	}
	s.clusterMu.Unlock()
	for _, ws := range out.Workers {
		if ws.Up {
			out.Live++
		}
	}
	return out
}

// workerLiveness copies the per-worker liveness from the last scrape.
// Workers registered since the last scrape are absent (unknown), not false.
func (s *Service) workerLiveness() map[string]bool {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make(map[string]bool, len(s.workerUp))
	for k, v := range s.workerUp {
		out[k] = v
	}
	return out
}

// linkSnapshots copies the cumulative per-link traffic, sorted by address.
func (s *Service) linkSnapshots() []exchange.LinkSnapshot {
	s.clusterMu.Lock()
	defer s.clusterMu.Unlock()
	out := make([]exchange.LinkSnapshot, 0, len(s.links))
	for _, l := range s.links {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
