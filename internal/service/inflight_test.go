package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// startBlockedQuery posts one optimize request that parks in the search
// phase until gate closes, and waits for it to appear in the registry.
func startBlockedQuery(t *testing.T, s *Service, srv string, sql string) (QuerySnapshot, chan int) {
	t.Helper()
	code := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, srv+"/optimize", OptimizeRequest{Query: sql})
		code <- resp.StatusCode
	}()
	waitFor(t, func() bool {
		for _, qs := range s.InflightQueries() {
			if qs.Query == sql && qs.Phase == "search" {
				return true
			}
		}
		return false
	})
	for _, qs := range s.InflightQueries() {
		if qs.Query == sql {
			return qs, code
		}
	}
	t.Fatal("query vanished from the registry")
	return QuerySnapshot{}, nil
}

func TestHTTPInflightRegistryAndClientCancel(t *testing.T) {
	gate := make(chan struct{})
	s, srv := newTestServer(t, func(c *Config) { c.Workers = 1 })
	t.Cleanup(func() { close(gate) })
	s.searchHook = func() { <-gate }

	sql := chainSQL(3, 1)
	qs, code := startBlockedQuery(t, s, srv.URL, sql)
	if qs.Kind != "optimize" || qs.ID == 0 {
		t.Fatalf("unexpected snapshot: %+v", qs)
	}

	// The JSON listing carries the query.
	resp, body := getBody(t, srv.URL+"/debug/queries")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries: %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Queries []QuerySnapshot `json:"queries"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Queries) != 1 || list.Queries[0].Query != sql || list.Queries[0].Phase != "search" {
		t.Fatalf("unexpected listing: %s", body)
	}
	id := list.Queries[0].ID

	// Text form and the single-query endpoint.
	resp, body = getBody(t, fmt.Sprintf("%s/debug/queries?format=text", srv.URL))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "1 in-flight") {
		t.Errorf("text listing: %d: %s", resp.StatusCode, body)
	}
	resp, _ = getBody(t, fmt.Sprintf("%s/debug/queries/%d", srv.URL, id))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/queries/%d: %d", id, resp.StatusCode)
	}

	// The inflight gauge is visible while the query runs.
	_, mbody := getBody(t, srv.URL+"/metrics")
	if got := metricValue(t, string(mbody), "paroptd_queries_inflight"); got != 1 {
		t.Errorf("queries_inflight = %g, want 1", got)
	}

	// Unknown / malformed IDs.
	resp, _ = getBody(t, srv.URL+"/debug/queries/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id should be 404, got %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/debug/queries/999999", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("DELETE unknown id should be 404, got %d", resp.StatusCode)
		}
	}
	resp, _ = getBody(t, srv.URL+"/debug/queries/garbage")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage id should be 400, got %d", resp.StatusCode)
	}

	// Cancel it: the DELETE returns immediately and the parked request
	// surfaces as 499 even though the search worker is still busy.
	start := time.Now()
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/debug/queries/%d", srv.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", dresp.StatusCode)
	}
	select {
	case c := <-code:
		if c != statusClientCancelled {
			t.Errorf("cancelled request returned %d, want %d", c, statusClientCancelled)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled request did not return within 5s")
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("cancel round-trip took %s, want <200ms", elapsed)
	}

	waitFor(t, func() bool { return len(s.InflightQueries()) == 0 })
	_, mbody = getBody(t, srv.URL+"/metrics")
	if got := metricValue(t, string(mbody), `paroptd_query_cancelled_total{reason="client"}`); got != 1 {
		t.Errorf(`cancelled_total{client} = %g, want 1`, got)
	}
}

func TestHTTPDeadlineCancelsRequest(t *testing.T) {
	gate := make(chan struct{})
	s, srv := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.RequestTimeout = 50 * time.Millisecond
	})
	t.Cleanup(func() { close(gate) })
	s.searchHook = func() { <-gate }

	resp, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1)})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline expiry returned %d (%s), want 504", resp.StatusCode, body)
	}
	waitFor(t, func() bool { return s.met.QueryCancelledDeadline.Load() == 1 })
}

func TestServiceShutdownCancelsInflight(t *testing.T) {
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	s, srv := newTestServer(t, func(c *Config) { c.Workers = 1 })
	t.Cleanup(release)
	s.searchHook = func() { <-gate }

	_, code := startBlockedQuery(t, s, srv.URL, chainSQL(3, 1))
	// Shutdown's final Close waits for the pool worker still parked on the
	// gate, so it must run concurrently; the cancelled request unblocks as
	// soon as the drain deadline fires cancelAll.
	shutdownDone := make(chan struct{})
	go func() {
		s.Shutdown(20 * time.Millisecond)
		close(shutdownDone)
	}()
	select {
	case c := <-code:
		if c != http.StatusServiceUnavailable {
			t.Errorf("shutdown-cancelled request returned %d, want 503", c)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not return after shutdown")
	}
	release()
	select {
	case <-shutdownDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after the pool was released")
	}
	if got := s.met.QueryCancelledShutdown.Load(); got != 1 {
		t.Errorf("QueryCancelledShutdown = %d, want 1", got)
	}
	// Shutdown implies Close: new requests are rejected.
	resp, _ := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 2)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown request returned %d, want 503", resp.StatusCode)
	}
}

// TestInflightCompletionLog: every query leaves exactly one JSONL record,
// and the file is appended — not truncated — across service restarts.
func TestInflightCompletionLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.jsonl")
	run := func(sql string) {
		s := newTestService(t, func(c *Config) { c.InflightLogPath = path })
		srv := httptest.NewServer(s.Handler())
		defer srv.Close()
		resp, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: sql})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
		}
		s.Close()
	}
	run(chainSQL(3, 1))
	run(chainSQL(4, 1)) // second daemon lifetime, same log file

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var recs []inflightLogRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var rec inflightLogRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad log line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 2 {
		t.Fatalf("log has %d records, want 2 (restart must append, not truncate)", len(recs))
	}
	for i, rec := range recs {
		if rec.Kind != "optimize" || rec.Cancelled != "" || rec.Fingerprint == "" {
			t.Errorf("record %d unexpected: %+v", i, rec)
		}
	}
}

// TestHTTPTraceFilters: /debug/traces?fingerprint= and ?min_ms= narrow the
// trace listing.
func TestHTTPTraceFilters(t *testing.T) {
	_, srv := newTestServer(t, nil)
	resp, body := postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(3, 1)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: %d: %s", resp.StatusCode, body)
	}
	var or OptimizeResponse
	if err := json.Unmarshal(body, &or); err != nil {
		t.Fatal(err)
	}
	if resp, body = postJSON(t, srv.URL+"/optimize", OptimizeRequest{Query: chainSQL(4, 2)}); resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize 2: %d: %s", resp.StatusCode, body)
	}

	type listing struct {
		Traces []string `json:"traces"`
	}
	get := func(params string) (int, listing) {
		resp, body := getBody(t, srv.URL+"/debug/traces"+params)
		var l listing
		_ = json.Unmarshal(body, &l)
		return resp.StatusCode, l
	}

	if code, l := get(""); code != http.StatusOK || len(l.Traces) != 2 {
		t.Fatalf("unfiltered: %d, %d traces, want 2", code, len(l.Traces))
	}
	if code, l := get("?fingerprint=" + or.Fingerprint); code != http.StatusOK || len(l.Traces) != 1 {
		t.Errorf("fingerprint filter kept %d traces, want 1", len(l.Traces))
	}
	if code, l := get("?fingerprint=no-such-fp"); code != http.StatusOK || len(l.Traces) != 0 {
		t.Errorf("bogus fingerprint kept %d traces, want 0", len(l.Traces))
	}
	// Every real trace took well under an hour.
	if code, l := get("?min_ms=3600000"); code != http.StatusOK || len(l.Traces) != 0 {
		t.Errorf("min_ms=1h kept %d traces, want 0", len(l.Traces))
	}
	if code, l := get("?min_ms=0"); code != http.StatusOK || len(l.Traces) != 2 {
		t.Errorf("min_ms=0 kept %d traces, want 2", len(l.Traces))
	}
	if code, _ := get("?min_ms=banana"); code != http.StatusBadRequest {
		t.Errorf("bad min_ms returned %d, want 400", code)
	}
}

// TestInflightProgressDuringAnalyze polls the registry while an
// explain-analyze executes; any observed progress snapshot must be
// internally consistent. (Whether a sample lands inside the execute window
// is timing-dependent, so absence is not a failure.)
func TestInflightProgressDuringAnalyze(t *testing.T) {
	s, srv := newTestServer(t, nil)
	stop := make(chan struct{})
	sampledCh := make(chan []QuerySnapshot, 1)
	go func() {
		var sampled []QuerySnapshot
		for {
			select {
			case <-stop:
				sampledCh <- sampled
				return
			default:
			}
			for _, qs := range s.InflightQueries() {
				if qs.Phase == "execute" && qs.Progress != nil {
					sampled = append(sampled, qs)
				}
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	resp, body := postJSON(t, srv.URL+"/explain",
		OptimizeRequest{Query: chainSQL(6, 7), Analyze: true, AnalyzeParallel: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain analyze: %d: %s", resp.StatusCode, body)
	}
	waitFor(t, func() bool { return len(s.InflightQueries()) == 0 })
	close(stop)
	sampled := <-sampledCh
	if len(sampled) == 0 {
		t.Log("no execute-phase sample landed (analyze finished too fast); nothing to assert")
		return
	}
	for _, qs := range sampled {
		p := qs.Progress
		if p.Percent < 0 || p.Percent > 1 {
			t.Errorf("Percent = %g, want [0,1]", p.Percent)
		}
		for _, op := range p.Ops {
			if op.Label == "" {
				t.Errorf("op with empty label: %+v", op)
			}
			if op.Percent < 0 || op.Percent > 1 {
				t.Errorf("op %s Percent = %g, want [0,1]", op.Label, op.Percent)
			}
		}
	}
}
