// Package service runs the optimizer as a long-lived daemon: a serving
// layer that amortizes partial-order DP search cost across queries. One-shot
// use (the CLIs) pays full catalog setup and a fresh search per query; the
// service instead
//
//   - canonicalizes each query into a fingerprint (internal/query), so
//     parameter-varying instances of one template share a plan;
//   - caches the *full cover set* — the root Pareto frontier plus the §2
//     work-optimal baseline — in a sharded LRU keyed by (fingerprint,
//     catalog version, machine config, optimizer options), so a later
//     request with a different work bound (throughput-degradation k,
//     cost–benefit k) is answered by re-filtering the cached frontier
//     without re-running the search;
//   - deduplicates identical in-flight searches (singleflight), bounds
//     concurrent searches with a worker pool, and rejects on a full queue
//     (HTTP 429) instead of queueing unboundedly;
//   - exports counters and latency histograms at /metrics.
//
// The HTTP surface (stdlib net/http only) is in http.go; cmd/paroptd wires
// it to a listener with graceful shutdown.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/core"
	"paropt/internal/machine"
	"paropt/internal/parser"
	"paropt/internal/query"
	"paropt/internal/search"
)

// ErrOverloaded is returned when the worker-pool queue is full; HTTP maps
// it to 429 Too Many Requests.
var ErrOverloaded = errors.New("service: optimizer overloaded")

// ErrClosed is returned after Close; HTTP maps it to 503.
var ErrClosed = errors.New("service: shutting down")

// badRequestError marks client errors (parse/validation); HTTP maps it to
// 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Catalog is the default catalog served when a request names none.
	// Optional: requests can carry inline schema DDL or a registered
	// catalog version instead.
	Catalog *catalog.Catalog
	// Machine is the target machine; zero value means the default
	// 4-CPU/4-disk/1-net node.
	Machine machine.Config
	// Algorithm must be a partial-order algorithm (the only ones with a
	// reusable cover set); default PartialOrderDP.
	Algorithm core.Algorithm
	// CoverCap bounds cover sets (beam search) when > 0.
	CoverCap int
	// MemoryPages constrains plans' peak memory when > 0.
	MemoryPages int64
	// Workers bounds concurrent searches; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds searches waiting for a worker; beyond it requests
	// are rejected with ErrOverloaded. Default 64.
	QueueDepth int
	// CacheShards and CacheCapacity size the plan cache; defaults 8 shards,
	// 512 entries total.
	CacheShards   int
	CacheCapacity int
	// RequestTimeout bounds each request (queue wait + search); default
	// 30s. The search itself is not preempted on timeout — it completes in
	// the worker and populates the cache for later requests.
	RequestTimeout time.Duration
}

// cacheEntry is one plan-cache value: the optimization session pinned to
// the canonical query instance the cover set was computed for, plus the
// reusable cover set. Materialization must go through entry.opt (not a
// per-request optimizer) because the frontier's plan nodes index relations
// in that query instance's declaration order.
type cacheEntry struct {
	opt   *core.Optimizer
	cover *core.CoverSet
}

// Service is the optimizer daemon. Safe for concurrent use.
type Service struct {
	cfg     Config
	mcfg    machine.Config
	sessKey string // machine + optimizer-options component of cache keys

	mu             sync.RWMutex
	catalogs       map[string]*catalog.Catalog // keyed by version fingerprint
	defaultVersion string

	cache   *planCache
	flights flightGroup
	pool    *workerPool
	met     Metrics
	start   time.Time
	closed  bool

	// searchHook, when non-nil, runs at the start of every search on the
	// worker goroutine — a test hook that makes overload and timeout
	// scenarios deterministic. Set it before serving traffic.
	searchHook func()
}

// New builds and starts a service (its worker pool runs until Close).
func New(cfg Config) (*Service, error) {
	switch cfg.Algorithm {
	case core.PartialOrderDP, core.PartialOrderDPBushy:
	default:
		return nil, fmt.Errorf("service: algorithm %v has no reusable cover set (use PartialOrderDP or PartialOrderDPBushy)", cfg.Algorithm)
	}
	mcfg := cfg.Machine
	if mcfg.CPUs == 0 && mcfg.Disks == 0 {
		mcfg = machine.DefaultConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 512
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s := &Service{
		cfg:      cfg,
		mcfg:     mcfg,
		catalogs: make(map[string]*catalog.Catalog),
		pool:     newWorkerPool(cfg.Workers, cfg.QueueDepth),
		start:    time.Now(),
	}
	s.cache = newPlanCache(cfg.CacheShards, cfg.CacheCapacity, func() { s.met.Evictions.Add(1) })
	s.sessKey = fmt.Sprintf("m=%dc%dd%dn,cs%g,ds%g,ns%g,agg%t|alg=%d,cover=%d,mem=%d",
		mcfg.CPUs, mcfg.Disks, mcfg.Networks, mcfg.CPUSpeed, mcfg.DiskSpeed, mcfg.NetSpeed,
		mcfg.AggregateDisks, cfg.Algorithm, cfg.CoverCap, cfg.MemoryPages)
	if cfg.Catalog != nil {
		s.defaultVersion = s.RegisterCatalog(cfg.Catalog)
	}
	return s, nil
}

// Close stops accepting requests and drains in-flight searches.
func (s *Service) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.pool.Close()
	}
}

// Metrics exposes the service counters (read-only use expected).
func (s *Service) Metrics() *Metrics { return &s.met }

// CacheLen is the resident plan-cache entry count.
func (s *Service) CacheLen() int { return s.cache.Len() }

// InvalidateCache drops every cached plan — for operators, after an
// out-of-band statistics refresh, and for benchmarks that need a cold
// cache. (In-band refreshes need no invalidation: a changed catalog has a
// new fingerprint and misses naturally.)
func (s *Service) InvalidateCache() { s.cache.Purge() }

// RegisterCatalog registers a catalog under its version fingerprint and
// returns the version. Idempotent.
func (s *Service) RegisterCatalog(cat *catalog.Catalog) string {
	v := cat.Fingerprint()
	s.mu.Lock()
	if _, ok := s.catalogs[v]; !ok {
		s.catalogs[v] = cat
	}
	if s.defaultVersion == "" {
		s.defaultVersion = v
	}
	s.mu.Unlock()
	return v
}

// RegisterSchema parses schema DDL (internal/parser grammar) and registers
// the resulting catalog, returning its version.
func (s *Service) RegisterSchema(ddl string) (string, error) {
	cat, err := parser.ParseSchema(ddl)
	if err != nil {
		return "", badRequestError{err}
	}
	return s.RegisterCatalog(cat), nil
}

// OptimizeRequest is one optimization request. Exactly one catalog source
// applies: inline Schema DDL, a registered Catalog version, or the service
// default.
type OptimizeRequest struct {
	// Query is the SQL-ish SELECT text (internal/parser grammar).
	Query string `json:"query"`
	// Schema optionally carries inline DDL; it is registered on the fly
	// (idempotently) and used for this request.
	Schema string `json:"schema,omitempty"`
	// Catalog optionally names a registered catalog version (from /schema).
	Catalog string `json:"catalog,omitempty"`
	// K, when > 0, applies the §2 throughput-degradation bound Wp ≤ K·Wo.
	K float64 `json:"k,omitempty"`
	// CostBenefit, when > 0, applies the §2 cost–benefit bound instead.
	CostBenefit float64 `json:"costBenefit,omitempty"`
}

// bound maps the request knobs to a §2 bound (nil = unbounded).
func (r *OptimizeRequest) bound() search.Bound {
	switch {
	case r.K > 0:
		return search.ThroughputDegradation{K: r.K}
	case r.CostBenefit > 0:
		return search.CostBenefit{K: r.CostBenefit}
	}
	return nil
}

// PlanSummary is the cost summary of a served plan.
type PlanSummary struct {
	ResponseTime float64 `json:"responseTime"`
	Work         float64 `json:"work"`
}

// OptimizeResponse is the service's answer.
type OptimizeResponse struct {
	// Fingerprint is the query's canonical fingerprint; Catalog the catalog
	// version — together with the daemon's machine/options they key the
	// plan cache.
	Fingerprint string `json:"fingerprint"`
	Catalog     string `json:"catalog"`
	// Cache is "hit" or "miss"; Deduped marks misses that joined another
	// request's in-flight search. CoverSetReused is true when the plan came
	// from re-filtering a cached cover set rather than a fresh search.
	Cache          string `json:"cache"`
	Deduped        bool   `json:"deduped,omitempty"`
	CoverSetReused bool   `json:"coverSetReused"`
	// CoverSize is the cached Pareto-frontier size; Bound names the §2
	// bound applied during re-filtering, if any.
	CoverSize int    `json:"coverSize"`
	Bound     string `json:"bound,omitempty"`
	// Summary and Baseline give the chosen plan's costs and the
	// work-optimal baseline it is bounded against.
	Summary  PlanSummary  `json:"summary"`
	Baseline *PlanSummary `json:"baseline,omitempty"`
	// Plan is the full plan rendering (core.PlanJSON shape).
	Plan json.RawMessage `json:"plan"`
	// ElapsedMicros is the service-side latency.
	ElapsedMicros int64 `json:"elapsedMicros"`
}

// ExplainResponse extends OptimizeResponse with human-readable renderings.
type ExplainResponse struct {
	OptimizeResponse
	// Text is the full Explain report: query, join tree, operator tree with
	// Example 1 style annotations, cost summary.
	Text string `json:"text"`
	// Breakdown is the per-operator cost-breakdown table (resource demands
	// and cumulative descriptors).
	Breakdown string `json:"breakdown"`
}

// resolve parses the request against its catalog and builds the cache key.
func (s *Service) resolve(req *OptimizeRequest) (cat *catalog.Catalog, version string, q *query.Query, fp, key string, err error) {
	switch {
	case req.Schema != "":
		version, err = s.RegisterSchema(req.Schema)
		if err != nil {
			return nil, "", nil, "", "", err
		}
	case req.Catalog != "":
		version = req.Catalog
	default:
		s.mu.RLock()
		version = s.defaultVersion
		s.mu.RUnlock()
		if version == "" {
			return nil, "", nil, "", "", badRequestError{errors.New("service: no default catalog; supply schema DDL or a catalog version")}
		}
	}
	s.mu.RLock()
	cat = s.catalogs[version]
	s.mu.RUnlock()
	if cat == nil {
		return nil, "", nil, "", "", badRequestError{fmt.Errorf("service: unknown catalog version %q", version)}
	}
	if req.Query == "" {
		return nil, "", nil, "", "", badRequestError{errors.New("service: empty query")}
	}
	q, err = parser.ParseQuery(req.Query, cat)
	if err != nil {
		return nil, "", nil, "", "", badRequestError{err}
	}
	fp = query.Fingerprint(q)
	return cat, version, q, fp, fp + "|" + version + "|" + s.sessKey, nil
}

// entryFor returns the cache entry for the key, running (or joining) a
// search on miss. hit reports a cache hit, deduped a joined search.
func (s *Service) entryFor(ctx context.Context, key string, cat *catalog.Catalog, q *query.Query) (e *cacheEntry, hit, deduped bool, err error) {
	if e, ok := s.cache.Get(key); ok {
		s.met.CacheHits.Add(1)
		s.met.CoverReuse.Add(1)
		return e, true, false, nil
	}
	s.met.CacheMisses.Add(1)
	e, deduped, err = s.flights.Do(ctx, key, func() (*cacheEntry, error) {
		// Re-check under the flight: the entry may have landed between the
		// miss above and this leader starting.
		if e, ok := s.cache.Get(key); ok {
			return e, nil
		}
		type result struct {
			e   *cacheEntry
			err error
		}
		ch := make(chan result, 1)
		if !s.pool.TrySubmit(func() {
			e, err := s.runSearch(cat, q)
			if err == nil {
				s.cache.Put(key, e)
			}
			ch <- result{e, err}
		}) {
			s.met.Rejected.Add(1)
			return nil, ErrOverloaded
		}
		select {
		case r := <-ch:
			return r.e, r.err
		case <-ctx.Done():
			// The worker keeps searching and still populates the cache;
			// only this request gives up.
			return nil, ctx.Err()
		}
	})
	if deduped && err == nil {
		s.met.Deduped.Add(1)
	}
	return e, false, deduped, err
}

// runSearch builds a session and computes the reusable cover set.
func (s *Service) runSearch(cat *catalog.Catalog, q *query.Query) (*cacheEntry, error) {
	if hook := s.searchHook; hook != nil {
		hook()
	}
	s.met.FullSearch.Add(1)
	opt, err := core.NewOptimizer(cat, q, core.Config{
		Machine:     s.mcfg,
		Algorithm:   s.cfg.Algorithm,
		CoverCap:    s.cfg.CoverCap,
		MemoryPages: s.cfg.MemoryPages,
	})
	if err != nil {
		return nil, badRequestError{err}
	}
	cover, err := opt.CoverSet()
	if err != nil {
		return nil, err
	}
	return &cacheEntry{opt: opt, cover: cover}, nil
}

// Optimize serves one request: parse, fingerprint, cache lookup or search,
// then re-filter the cover set under the request's bound.
func (s *Service) Optimize(ctx context.Context, req OptimizeRequest) (*OptimizeResponse, error) {
	start := time.Now()
	s.met.OptimizeRequests.Add(1)
	resp, _, err := s.serve(ctx, &req, start)
	return resp, err
}

// Explain serves one request and additionally renders the chosen operator
// tree with its cost breakdown.
func (s *Service) Explain(ctx context.Context, req OptimizeRequest) (*ExplainResponse, error) {
	start := time.Now()
	s.met.ExplainRequests.Add(1)
	resp, plan, err := s.serve(ctx, &req, start)
	if err != nil {
		return nil, err
	}
	return &ExplainResponse{
		OptimizeResponse: *resp,
		Text:             plan.entry.opt.Explain(plan.plan),
		Breakdown:        plan.entry.opt.Mod.BreakdownTable(plan.plan.Op),
	}, nil
}

// servedPlan carries the materialized plan alongside the response for
// Explain.
type servedPlan struct {
	plan  *core.Plan
	entry *cacheEntry
}

func (s *Service) serve(ctx context.Context, req *OptimizeRequest, start time.Time) (*OptimizeResponse, *servedPlan, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()

	fail := func(err error) (*OptimizeResponse, *servedPlan, error) {
		s.met.Errors.Add(1)
		return nil, nil, err
	}
	cat, version, q, fp, key, err := s.resolve(req)
	if err != nil {
		return fail(err)
	}
	entry, hit, deduped, err := s.entryFor(ctx, key, cat, q)
	if err != nil {
		return fail(err)
	}
	plan, err := entry.opt.SelectBounded(entry.cover, req.bound())
	if err != nil {
		return fail(err)
	}
	planJSON, err := entry.opt.ExplainJSON(plan)
	if err != nil {
		return fail(err)
	}
	resp := &OptimizeResponse{
		Fingerprint:    fp,
		Catalog:        version,
		Cache:          "miss",
		Deduped:        deduped,
		CoverSetReused: hit,
		CoverSize:      len(entry.cover.Frontier),
		Summary:        PlanSummary{ResponseTime: plan.RT(), Work: plan.Work()},
		Plan:           planJSON,
	}
	if hit {
		resp.Cache = "hit"
	}
	if b := req.bound(); b != nil {
		resp.Bound = b.Name()
	}
	if plan.Baseline != nil {
		resp.Baseline = &PlanSummary{ResponseTime: plan.Baseline.RT(), Work: plan.Baseline.Work()}
	}
	resp.ElapsedMicros = time.Since(start).Microseconds()
	s.met.Latency.Observe(time.Since(start).Seconds())
	return resp, &servedPlan{plan: plan, entry: entry}, nil
}
