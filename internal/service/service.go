// Package service runs the optimizer as a long-lived daemon: a serving
// layer that amortizes partial-order DP search cost across queries. One-shot
// use (the CLIs) pays full catalog setup and a fresh search per query; the
// service instead
//
//   - canonicalizes each query into a fingerprint (internal/query), so
//     parameter-varying instances of one template share a plan;
//   - caches the *full cover set* — the root Pareto frontier plus the §2
//     work-optimal baseline — in a sharded LRU keyed by (fingerprint,
//     catalog version, machine config, optimizer options), so a later
//     request with a different work bound (throughput-degradation k,
//     cost–benefit k) is answered by re-filtering the cached frontier
//     without re-running the search;
//   - deduplicates identical in-flight searches (singleflight), bounds
//     concurrent searches with a worker pool, and rejects on a full queue
//     (HTTP 429) instead of queueing unboundedly;
//   - exports counters and latency histograms at /metrics.
//
// The HTTP surface (stdlib net/http only) is in http.go; cmd/paroptd wires
// it to a listener with graceful shutdown.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/core"
	"paropt/internal/cost"
	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/machine"
	"paropt/internal/obs"
	"paropt/internal/obs/accuracy"
	"paropt/internal/obs/workload"
	"paropt/internal/parser"
	"paropt/internal/placement"
	"paropt/internal/query"
	"paropt/internal/search"
	"paropt/internal/storage"
)

// ErrOverloaded is returned when the worker-pool queue is full; HTTP maps
// it to 429 Too Many Requests.
var ErrOverloaded = errors.New("service: optimizer overloaded")

// ErrClosed is returned after Close; HTTP maps it to 503.
var ErrClosed = errors.New("service: shutting down")

// badRequestError marks client errors (parse/validation); HTTP maps it to
// 400.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Catalog is the default catalog served when a request names none.
	// Optional: requests can carry inline schema DDL or a registered
	// catalog version instead.
	Catalog *catalog.Catalog
	// Machine is the target machine; zero value means the default
	// 4-CPU/4-disk/1-net node.
	Machine machine.Config
	// Algorithm must be a partial-order algorithm (the only ones with a
	// reusable cover set); default PartialOrderDP.
	Algorithm core.Algorithm
	// CoverCap bounds cover sets (beam search) when > 0.
	CoverCap int
	// MemoryPages constrains plans' peak memory when > 0.
	MemoryPages int64
	// Workers bounds concurrent searches; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds searches waiting for a worker; beyond it requests
	// are rejected with ErrOverloaded. Default 64.
	QueueDepth int
	// CacheShards and CacheCapacity size the plan cache; defaults 8 shards,
	// 512 entries total.
	CacheShards   int
	CacheCapacity int
	// RequestTimeout bounds each request end to end (queue wait + search +
	// analyze execution); default 30s. The deadline rides the request
	// context into the engine's cancellation checkpoints, so a timed-out
	// analyze execution is preempted, not just abandoned. The DP search
	// itself is the one exception — it completes in the worker and
	// populates the cache for later requests.
	RequestTimeout time.Duration
	// TraceCapacity sizes the ring of request traces retained for the
	// /debug/trace endpoints. 0 means the default (256); negative disables
	// tracing entirely (requests then carry no trace ID and the traced
	// code paths allocate nothing).
	TraceCapacity int
	// Logger receives structured per-request log lines (request ID,
	// fingerprint, cache outcome, latency). Nil discards them.
	Logger *slog.Logger
	// DataSeed seeds the deterministic synthetic database analyze requests
	// execute against; 0 means 1. One database is generated per catalog
	// version on first use.
	DataSeed int64
	// QueryLog, when non-nil, receives one JSONL record per served request
	// (including failures). The caller owns the log and closes it after the
	// service's Close; nil disables logging at zero cost.
	QueryLog *workload.Log
	// WorkloadCapacity bounds the per-fingerprint profiles the workload
	// profiler tracks; 0 means 4096; negative disables profiling entirely
	// (the /debug/workload endpoint then reports an empty workload and the
	// drift sweeper never finds work).
	WorkloadCapacity int
	// DriftThreshold is the EWMA row q-error above which a profile is marked
	// drifted (a re-optimization candidate); 0 means 2.
	DriftThreshold float64
	// SweepMinSamples is the minimum analyze accuracy samples before a
	// profile can be marked drifted; 0 means 2.
	SweepMinSamples int
	// SweepInterval enables the background drift sweeper when > 0: every
	// interval it re-runs the DP search for up to SweepLimit drifted
	// templates against the current default catalog and swaps the cached
	// cover sets. 0 disables the goroutine (SweepNow still works).
	SweepInterval time.Duration
	// SweepLimit bounds re-optimizations per sweeper pass; 0 means 4.
	SweepLimit int
	// NegCacheCapacity sizes the negative cache over parse/resolve failures;
	// 0 means 256; negative disables it.
	NegCacheCapacity int
	// ExchangeWindow overrides the credit window (frames in flight per
	// direction) for distributed exchanges when > 0; 0 keeps the exchange
	// default. Small windows make backpressure stalls visible on /metrics,
	// which is how EXPERIMENTS §OB3 measures the pipeline sync penalty.
	ExchangeWindow int
	// BatchRows overrides the engine's columnar batch size (rows per Vec)
	// for analyze executions when > 0; 0 keeps engine.DefaultBatchRows.
	BatchRows int
	// SearchLogCapacity sizes the ring of search-telemetry entries served at
	// /debug/search (per-layer breakdowns of recent DP searches). 0 means the
	// default (64); negative disables the log.
	SearchLogCapacity int
	// PlanLogCapacity sizes the plan-change audit log served at
	// /debug/planlog. 0 means the default (256); negative disables it.
	PlanLogCapacity int
	// PlanLogPath, when non-empty, additionally appends every plan change as
	// one JSON line to this file, so swaps survive restarts.
	PlanLogPath string
	// InflightLogPath, when non-empty, appends one JSON line per finished
	// query (normal, failed, or cancelled) — the durable tail of the live
	// /debug/queries registry.
	InflightLogPath string
}

// cacheEntry is one plan-cache value: the optimization session pinned to
// the canonical query instance the cover set was computed for, plus the
// reusable cover set. Materialization must go through entry.opt (not a
// per-request optimizer) because the frontier's plan nodes index relations
// in that query instance's declaration order. searchTrace is the DP trace
// text captured while the cover set was computed, so trace-requesting
// explains are answered on cache hits too.
type cacheEntry struct {
	opt         *core.Optimizer
	cover       *core.CoverSet
	searchTrace string
	// logRec points at the /debug/search entry recorded when this search
	// ran; cache hits bump its counter so replayed traces are labeled.
	logRec *searchLogRecord
}

// Service is the optimizer daemon. Safe for concurrent use.
type Service struct {
	cfg     Config
	mcfg    machine.Config
	sessKey string // machine + optimizer-options component of cache keys

	mu             sync.RWMutex
	catalogs       map[string]*catalog.Catalog // keyed by version fingerprint
	defaultVersion string

	cache   *planCache
	flights flightGroup
	pool    *workerPool
	met     Metrics
	tracer  *obs.Tracer
	logger  *slog.Logger
	start   time.Time
	closed  bool

	// Workload analytics: prof aggregates served traffic per fingerprint,
	// neg short-circuits repeated parse/resolve failures, qlog persists one
	// record per request. All three are nil when disabled; every use is
	// nil-safe, so the disabled paths cost one nil check each.
	prof *workload.Profiler
	neg  *negCache
	qlog *workload.Log

	// clusterMu guards the distributed-execution state: workers is the
	// registered worker-process membership, epoch the membership epoch
	// (bumped on every register/deregister so in-flight queries can detect
	// churn and re-dispatch fragments), placements the installed data-
	// placement maps keyed by catalog version, links the cumulative
	// per-address exchange traffic from distributed analyze runs (see
	// cluster.go).
	clusterMu       sync.Mutex
	workers         map[string]string // exchange addr → worker HTTP base URL ("" when unknown)
	epoch           int64
	placements      map[string]*placement.Map
	links           map[string]*exchange.LinkSnapshot
	fallbackReasons map[string]int64 // cumulative typed fallback reasons
	workerUp        map[string]bool  // liveness from the last /cluster/metrics scrape

	// Optimizer introspection: searchlog retains recent searches' per-layer
	// telemetry (/debug/search), planlog the plan-change audit trail
	// (/debug/planlog), lastPlans the per-fingerprint "before" side swap
	// detection compares against. All nil-safe when disabled.
	searchlog *searchLog
	planlog   *planLog
	planMu    sync.Mutex
	lastPlans map[string]prevPlan

	// inflight is the live-query registry behind /debug/queries: every
	// served request is admitted with a cancellable context and retired
	// when it finishes. Never nil.
	inflight *inflightRegistry
	stopped  bool // teardown ran (distinct from closed: Shutdown rejects first, tears down later)

	// sweepStop/sweepWG manage the background drift sweeper (SweepInterval).
	sweepStop chan struct{}
	sweepWG   sync.WaitGroup

	// dbMu guards dbs, the per-catalog-version synthetic databases analyze
	// requests execute against (generated lazily, kept for reuse), and
	// fstores, the per-version coordinator-fallback placement stores. A
	// separate mutex so generation never blocks the serving path's s.mu.
	dbMu    sync.Mutex
	dbs     map[string]*storage.Database
	fstores map[string]*placement.Store

	// searchHook, when non-nil, runs at the start of every search on the
	// worker goroutine — a test hook that makes overload and timeout
	// scenarios deterministic. Set it before serving traffic.
	searchHook func()
}

// New builds and starts a service (its worker pool runs until Close).
func New(cfg Config) (*Service, error) {
	switch cfg.Algorithm {
	case core.PartialOrderDP, core.PartialOrderDPBushy:
	default:
		return nil, fmt.Errorf("service: algorithm %v has no reusable cover set (use PartialOrderDP or PartialOrderDPBushy)", cfg.Algorithm)
	}
	mcfg := cfg.Machine
	if mcfg.CPUs == 0 && mcfg.Disks == 0 {
		mcfg = machine.DefaultConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 512
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DataSeed == 0 {
		cfg.DataSeed = 1
	}
	if cfg.SweepLimit <= 0 {
		cfg.SweepLimit = 4
	}
	s := &Service{
		cfg:             cfg,
		mcfg:            mcfg,
		catalogs:        make(map[string]*catalog.Catalog),
		pool:            newWorkerPool(cfg.Workers, cfg.QueueDepth),
		logger:          cfg.Logger,
		dbs:             make(map[string]*storage.Database),
		fstores:         make(map[string]*placement.Store),
		workers:         make(map[string]string),
		placements:      make(map[string]*placement.Map),
		links:           make(map[string]*exchange.LinkSnapshot),
		fallbackReasons: make(map[string]int64),
		workerUp:        make(map[string]bool),
		lastPlans:       make(map[string]prevPlan),
		start:           time.Now(),
	}
	if cfg.SearchLogCapacity >= 0 {
		n := cfg.SearchLogCapacity
		if n == 0 {
			n = 64
		}
		s.searchlog = newSearchLog(n)
	}
	if cfg.PlanLogCapacity >= 0 {
		n := cfg.PlanLogCapacity
		if n == 0 {
			n = 256
		}
		pl, err := newPlanLog(n, cfg.PlanLogPath)
		if err != nil {
			return nil, fmt.Errorf("service: plan log: %w", err)
		}
		s.planlog = pl
	}
	ifr, err := newInflightRegistry(cfg.InflightLogPath)
	if err != nil {
		return nil, fmt.Errorf("service: inflight log: %w", err)
	}
	s.inflight = ifr
	if s.logger == nil {
		s.logger = obs.DiscardLogger()
	}
	if cfg.TraceCapacity >= 0 {
		s.tracer = obs.NewTracer(cfg.TraceCapacity)
	}
	s.met.ensureInit()
	s.cache = newPlanCache(cfg.CacheShards, cfg.CacheCapacity, func() { s.met.Evictions.Add(1) })
	s.sessKey = fmt.Sprintf("m=%dc%dd%dn%dN,cs%g,ds%g,ns%g,nl%g,agg%t,aggl%t|alg=%d,cover=%d,mem=%d",
		mcfg.CPUs, mcfg.Disks, mcfg.Networks, mcfg.Nodes, mcfg.CPUSpeed, mcfg.DiskSpeed, mcfg.NetSpeed,
		mcfg.NetLatency, mcfg.AggregateDisks, mcfg.AggregateLinks, cfg.Algorithm, cfg.CoverCap, cfg.MemoryPages)
	if cfg.WorkloadCapacity >= 0 {
		s.prof = workload.NewProfiler(0, cfg.WorkloadCapacity, cfg.DriftThreshold, cfg.SweepMinSamples)
	}
	if cfg.NegCacheCapacity >= 0 {
		n := cfg.NegCacheCapacity
		if n == 0 {
			n = 256
		}
		s.neg = newNegCache(n)
	}
	s.qlog = cfg.QueryLog
	if cfg.Catalog != nil {
		s.defaultVersion = s.RegisterCatalog(cfg.Catalog)
	}
	if cfg.SweepInterval > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepWG.Add(1)
		go s.sweeperLoop(cfg.SweepInterval)
	}
	return s, nil
}

// Close stops accepting requests, cancels in-flight queries, stops the
// drift sweeper and drains in-flight searches. The query log (owned by the
// caller) stays open. For a graceful stop that lets running queries finish
// first, use Shutdown.
func (s *Service) Close() {
	s.mu.Lock()
	s.closed = true
	already := s.stopped
	s.stopped = true
	s.mu.Unlock()
	if !already {
		s.inflight.cancelAll(CancelShutdown)
		if s.sweepStop != nil {
			close(s.sweepStop)
			s.sweepWG.Wait()
		}
		s.pool.Close()
		s.planlog.close()
		s.inflight.close()
	}
}

// Shutdown is the graceful stop: it rejects new requests immediately, waits
// up to drain for in-flight queries to finish on their own, cancels the
// stragglers (reason "shutdown"), and then tears the service down. A
// non-positive drain cancels immediately.
func (s *Service) Shutdown(drain time.Duration) {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	deadline := time.Now().Add(drain)
	for s.inflight.len() > 0 && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
	}
	if n := s.inflight.cancelAll(CancelShutdown); n > 0 {
		s.logger.Info("shutdown: cancelled in-flight queries", "count", n)
		// Give the cancelled queries a beat to unwind through their
		// checkpoints before the worker pool closes under them.
		grace := time.Now().Add(2 * time.Second)
		for s.inflight.len() > 0 && time.Now().Before(grace) {
			time.Sleep(25 * time.Millisecond)
		}
	}
	s.Close()
}

// Metrics exposes the service counters (read-only use expected).
func (s *Service) Metrics() *Metrics { return &s.met }

// Tracer exposes the request-trace ring, or nil when tracing is disabled.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// CacheLen is the resident plan-cache entry count.
func (s *Service) CacheLen() int { return s.cache.Len() }

// InvalidateCache drops every cached plan — for operators, after an
// out-of-band statistics refresh, and for benchmarks that need a cold
// cache. (In-band refreshes need no invalidation: a changed catalog has a
// new fingerprint and misses naturally.)
func (s *Service) InvalidateCache() { s.cache.Purge() }

// RegisterCatalog registers a catalog under its version fingerprint and
// returns the version. Idempotent.
func (s *Service) RegisterCatalog(cat *catalog.Catalog) string {
	v := cat.Fingerprint()
	s.mu.Lock()
	if _, ok := s.catalogs[v]; !ok {
		s.catalogs[v] = cat
	}
	if s.defaultVersion == "" {
		s.defaultVersion = v
	}
	s.mu.Unlock()
	return v
}

// RefreshCatalog registers cat and makes it the service default — the
// statistics-refresh entry point. Unlike RegisterCatalog it always moves the
// default, and it *retires* the previous default version: the retired
// catalog is dropped, its plan-cache and negative-cache entries are swept
// eagerly (instead of aging out of the LRU while still consuming capacity),
// and its synthetic analyze database is released. The drift sweeper closes
// the loop: hot templates whose accuracy had drifted are re-optimized
// against the refreshed statistics in the background, so the first
// post-refresh request hits a warm entry instead of paying a search.
func (s *Service) RefreshCatalog(cat *catalog.Catalog) string {
	v := cat.Fingerprint()
	s.mu.Lock()
	old := s.defaultVersion
	s.catalogs[v] = cat
	s.defaultVersion = v
	if old != "" && old != v {
		delete(s.catalogs, old)
	}
	s.mu.Unlock()
	if old != "" && old != v {
		s.retireCatalog(old)
	}
	return v
}

// retireCatalog garbage-collects every artifact keyed under a retired
// catalog version. The plan cache's keys embed the version as "|version|",
// the negative cache's as a "\x00version" suffix; both separators cannot
// occur inside a version fingerprint (hex), so the sweeps are exact.
func (s *Service) retireCatalog(version string) {
	plans := s.cache.PurgeWhere(func(key string) bool {
		return strings.Contains(key, "|"+version+"|")
	})
	negs := s.neg.PurgeWhere(func(key string) bool {
		return strings.HasSuffix(key, "\x00"+version)
	})
	s.dbMu.Lock()
	delete(s.dbs, version)
	delete(s.fstores, version)
	s.dbMu.Unlock()
	s.clusterMu.Lock()
	delete(s.placements, version)
	s.clusterMu.Unlock()
	s.met.CatalogRetired.Add(1)
	s.logger.Info("catalog retired", "version", version, "plans", plans, "negatives", negs)
}

// Workload exposes the per-fingerprint profiler (nil when disabled).
func (s *Service) Workload() *workload.Profiler { return s.prof }

// QueryLog exposes the persistent query log (nil when disabled).
func (s *Service) QueryLog() *workload.Log { return s.qlog }

// RegisterSchema parses schema DDL (internal/parser grammar) and registers
// the resulting catalog, returning its version.
func (s *Service) RegisterSchema(ddl string) (string, error) {
	cat, err := parser.ParseSchema(ddl)
	if err != nil {
		return "", badRequestError{err}
	}
	return s.RegisterCatalog(cat), nil
}

// OptimizeRequest is one optimization request. Exactly one catalog source
// applies: inline Schema DDL, a registered Catalog version, or the service
// default.
type OptimizeRequest struct {
	// Query is the SQL-ish SELECT text (internal/parser grammar).
	Query string `json:"query"`
	// Schema optionally carries inline DDL; it is registered on the fly
	// (idempotently) and used for this request.
	Schema string `json:"schema,omitempty"`
	// Catalog optionally names a registered catalog version (from /schema).
	Catalog string `json:"catalog,omitempty"`
	// K, when > 0, applies the §2 throughput-degradation bound Wp ≤ K·Wo.
	K float64 `json:"k,omitempty"`
	// CostBenefit, when > 0, applies the §2 cost–benefit bound instead.
	CostBenefit float64 `json:"costBenefit,omitempty"`
	// Trace includes the DP search trace text in Explain responses (also
	// settable as ?trace=1 on POST /explain). Cache hits return the trace
	// captured when the cover set was computed, labeled as replayed.
	Trace bool `json:"trace,omitempty"`
	// Why (Explain only; ?why=1) includes the plan provenance: the chosen
	// plan's full cost-descriptor breakdown plus the top rejected frontier
	// alternatives with the reason each one lost.
	Why bool `json:"why,omitempty"`
	// Analyze (Explain only; ?analyze=1) executes the chosen plan against
	// deterministic synthetic data and reports per-operator predicted vs
	// actual (tf, tl) descriptors with relative errors.
	Analyze bool `json:"analyze,omitempty"`
	// AnalyzeParallel is the engine parallelism for Analyze; 0 means the
	// machine's CPU count.
	AnalyzeParallel int `json:"analyzeParallel,omitempty"`
	// Distributed (Explain+Analyze only; ?distributed=1) executes the plan's
	// join fragments on the registered worker processes instead of
	// in-process, streaming partitioned batches over TCP. Requires at least
	// one registered worker (POST /cluster/register).
	Distributed bool `json:"distributed,omitempty"`
}

// bound maps the request knobs to a §2 bound (nil = unbounded).
func (r *OptimizeRequest) bound() search.Bound {
	switch {
	case r.K > 0:
		return search.ThroughputDegradation{K: r.K}
	case r.CostBenefit > 0:
		return search.CostBenefit{K: r.CostBenefit}
	}
	return nil
}

// PlanSummary is the cost summary of a served plan.
type PlanSummary struct {
	ResponseTime float64 `json:"responseTime"`
	Work         float64 `json:"work"`
}

// OptimizeResponse is the service's answer.
type OptimizeResponse struct {
	// Fingerprint is the query's canonical fingerprint; Catalog the catalog
	// version — together with the daemon's machine/options they key the
	// plan cache.
	Fingerprint string `json:"fingerprint"`
	Catalog     string `json:"catalog"`
	// Cache is "hit" or "miss"; Deduped marks misses that joined another
	// request's in-flight search. CoverSetReused is true when the plan came
	// from re-filtering a cached cover set rather than a fresh search.
	Cache          string `json:"cache"`
	Deduped        bool   `json:"deduped,omitempty"`
	CoverSetReused bool   `json:"coverSetReused"`
	// CoverSize is the cached Pareto-frontier size; Bound names the §2
	// bound applied during re-filtering, if any.
	CoverSize int    `json:"coverSize"`
	Bound     string `json:"bound,omitempty"`
	// PlanSignature is the chosen join tree in functional notation — the
	// deterministic plan identity the query log records and replay compares.
	PlanSignature string `json:"planSignature"`
	// Summary and Baseline give the chosen plan's costs and the
	// work-optimal baseline it is bounded against.
	Summary  PlanSummary  `json:"summary"`
	Baseline *PlanSummary `json:"baseline,omitempty"`
	// Plan is the full plan rendering (core.PlanJSON shape).
	Plan json.RawMessage `json:"plan"`
	// ElapsedMicros is the service-side latency.
	ElapsedMicros int64 `json:"elapsedMicros"`
	// TraceID identifies this request's span tree; fetch it from
	// /debug/trace/{id}. Empty when tracing is disabled.
	TraceID string `json:"traceId,omitempty"`
}

// ExplainResponse extends OptimizeResponse with human-readable renderings.
type ExplainResponse struct {
	OptimizeResponse
	// Text is the full Explain report: query, join tree, operator tree with
	// Example 1 style annotations, cost summary.
	Text string `json:"text"`
	// Breakdown is the per-operator cost-breakdown table (resource demands
	// and cumulative descriptors).
	Breakdown string `json:"breakdown"`
	// SearchTrace is the DP search trace text (requests with Trace set);
	// SearchTraceCached marks it as replayed from the cached cover set
	// rather than freshly produced by this request's search.
	SearchTrace       string `json:"searchTrace,omitempty"`
	SearchTraceCached bool   `json:"searchTraceCached,omitempty"`
	// Why is the plan provenance (requests with Why set): chosen-plan cost
	// breakdown plus top rejected alternatives with loss reasons. WhyText is
	// its report rendering.
	Why     *core.Provenance `json:"why,omitempty"`
	WhyText string           `json:"whyText,omitempty"`
	// Analyze is the predicted-vs-actual accuracy report and AnalyzeTable
	// its text rendering (requests with Analyze set).
	Analyze      *accuracy.Report `json:"analyze,omitempty"`
	AnalyzeTable string           `json:"analyzeTable,omitempty"`
}

// resolve parses the request against its catalog and builds the cache key.
func (s *Service) resolve(req *OptimizeRequest) (cat *catalog.Catalog, version string, q *query.Query, fp, key string, err error) {
	switch {
	case req.Schema != "":
		version, err = s.RegisterSchema(req.Schema)
		if err != nil {
			return nil, "", nil, "", "", err
		}
	case req.Catalog != "":
		version = req.Catalog
	default:
		s.mu.RLock()
		version = s.defaultVersion
		s.mu.RUnlock()
		if version == "" {
			return nil, "", nil, "", "", badRequestError{errors.New("service: no default catalog; supply schema DDL or a catalog version")}
		}
	}
	s.mu.RLock()
	cat = s.catalogs[version]
	s.mu.RUnlock()
	if cat == nil {
		return nil, "", nil, "", "", badRequestError{fmt.Errorf("service: unknown catalog version %q", version)}
	}
	if req.Query == "" {
		return nil, "", nil, "", "", badRequestError{errors.New("service: empty query")}
	}
	// Negative cache: a query text that already failed to parse or resolve
	// against this catalog version fails again without re-parsing.
	nk := negKey(req.Query, version)
	if negErr, ok := s.neg.Get(nk); ok {
		s.met.NegCacheHits.Add(1)
		return nil, "", nil, "", "", negErr
	}
	q, err = parser.ParseQuery(req.Query, cat)
	if err != nil {
		err = badRequestError{err}
		s.neg.Put(nk, err)
		return nil, "", nil, "", "", err
	}
	fp = query.Fingerprint(q)
	return cat, version, q, fp, s.cacheKey(fp, version), nil
}

// cacheKey builds a plan-cache key. It embeds the catalog version between
// "|" separators (retireCatalog's purge matches on that) and the installed
// placement's fingerprint, so installing or changing a placement re-costs
// plans instead of serving cover sets computed without it.
func (s *Service) cacheKey(fp, version string) string {
	pfp := "none"
	if m := s.PlacementFor(version); m != nil {
		pfp = m.Fingerprint()
	}
	return fp + "|" + version + "|pl=" + pfp + "|" + s.sessKey
}

// entryFor returns the cache entry for the key, running (or joining) a
// search on miss. hit reports a cache hit, deduped a joined search.
func (s *Service) entryFor(ctx context.Context, key, version string, cat *catalog.Catalog, q *query.Query) (e *cacheEntry, hit, deduped bool, err error) {
	if e, ok := s.cache.Get(key); ok {
		s.met.CacheHits.Add(1)
		s.met.CoverReuse.Add(1)
		e.logRec.noteHit()
		return e, true, false, nil
	}
	s.met.CacheMisses.Add(1)
	e, deduped, err = s.flights.Do(ctx, key, func() (*cacheEntry, error) {
		// Re-check under the flight: the entry may have landed between the
		// miss above and this leader starting.
		if e, ok := s.cache.Get(key); ok {
			return e, nil
		}
		placed := s.placedConfig(version)
		// The search span lives on the flight leader's trace; followers
		// see only their own wait. The worker ends it, so a leader that
		// times out still gets the span's true extent recorded.
		_, sp := obs.StartSpan(ctx, "search")
		type result struct {
			e   *cacheEntry
			err error
		}
		ch := make(chan result, 1)
		if !s.pool.TrySubmit(func() {
			e, err := s.runSearch(cat, q, placed, sp, "search", version)
			sp.Err(err)
			sp.End()
			if err == nil {
				s.cache.Put(key, e)
			}
			ch <- result{e, err}
		}) {
			s.met.Rejected.Add(1)
			sp.Err(ErrOverloaded)
			sp.End()
			return nil, ErrOverloaded
		}
		select {
		case r := <-ch:
			return r.e, r.err
		case <-ctx.Done():
			// The worker keeps searching and still populates the cache;
			// only this request gives up.
			return nil, ctx.Err()
		}
	})
	if deduped && err == nil {
		s.met.Deduped.Add(1)
	}
	return e, false, deduped, err
}

// runSearch builds a session and computes the reusable cover set. The DP is
// always observed by a text tracer (the trace rides the cache entry for
// trace-requesting explains) and, when sp is live, by a span adapter feeding
// the request trace. source attributes the search ("search" for request
// misses, "sweeper" for drift re-optimizations) in the search-telemetry log,
// the layer-seconds histogram, the prune-reason counters, and — when the
// representative plan swapped — the plan-change audit log.
func (s *Service) runSearch(cat *catalog.Catalog, q *query.Query, placed map[string]cost.PlacedRelation, sp *obs.Span, source, version string) (*cacheEntry, error) {
	if hook := s.searchHook; hook != nil {
		hook()
	}
	s.met.FullSearch.Add(1)
	start := time.Now()
	var buf bytes.Buffer
	trace := search.MultiTracer{&search.WriterTracer{W: &buf}}
	if sp != nil {
		trace = append(trace, spanTracer{sp})
	}
	opt, err := core.NewOptimizer(cat, q, core.Config{
		Machine:     s.mcfg,
		Algorithm:   s.cfg.Algorithm,
		CoverCap:    s.cfg.CoverCap,
		MemoryPages: s.cfg.MemoryPages,
		Trace:       trace,
		Placed:      placed,
		BatchRows:   s.cfg.BatchRows,
	})
	if err != nil {
		return nil, badRequestError{err}
	}
	cover, err := opt.CoverSet()
	if err != nil {
		return nil, err
	}
	sp.SetAttr("frontier", len(cover.Frontier))
	logRec := s.recordSearch(source, version, q, cover, time.Since(start))
	fp := query.Fingerprint(q)
	s.notePlan(source, fp, version, search.FilterFrontier(cover.Frontier, nil, 0, 0, nil))
	return &cacheEntry{opt: opt, cover: cover, searchTrace: buf.String(), logRec: logRec}, nil
}

// recordSearch feeds one finished search into the telemetry surfaces: the
// /debug/search ring, the per-layer wall-time histogram, and the
// prune-reason counters.
func (s *Service) recordSearch(source, version string, q *query.Query, cover *core.CoverSet, elapsed time.Duration) *searchLogRecord {
	st := cover.Stats
	s.met.PrunedDominance.Add(st.PrunedDominance)
	s.met.PrunedWork.Add(st.PrunedWork)
	s.met.PrunedMemory.Add(st.PrunedMemory)
	s.met.PrunedBeam.Add(st.PrunedBeam)
	for _, l := range st.Layers {
		s.met.SearchLayerSeconds.Observe(float64(l.WallNanos) / 1e9)
	}
	if s.searchlog == nil {
		return nil
	}
	prof := st.Profile()
	return s.searchlog.add(SearchLogEntry{
		Source:            source,
		Fingerprint:       query.Fingerprint(q),
		Catalog:           version,
		Relations:         len(q.Relations),
		FrontierSize:      len(cover.Frontier),
		ElapsedMicros:     elapsed.Microseconds(),
		PlansConsidered:   st.PlansConsidered,
		PhysicalPlans:     st.PhysicalPlans,
		MaxCoverSize:      st.MaxCoverSize,
		Pruned:            st.Pruned,
		PrunedDominance:   st.PrunedDominance,
		PrunedWork:        st.PrunedWork,
		PrunedMemory:      st.PrunedMemory,
		PrunedBeam:        st.PrunedBeam,
		PeakBytesRetained: prof.PeakBytesRetained,
		Layers:            st.Layers,
	})
}

// Optimize serves one request: parse, fingerprint, cache lookup or search,
// then re-filter the cover set under the request's bound.
func (s *Service) Optimize(ctx context.Context, req OptimizeRequest) (*OptimizeResponse, error) {
	start := time.Now()
	s.met.OptimizeRequests.Add(1)
	resp, served, err := s.serve(ctx, &req, start, "optimize")
	if err != nil {
		return nil, err
	}
	s.finishRequest(served, "optimize", resp)
	return resp, nil
}

// Explain serves one request and additionally renders the chosen operator
// tree with its cost breakdown, the DP search trace (req.Trace), and the
// predicted-vs-actual accuracy report of an instrumented execution
// (req.Analyze).
func (s *Service) Explain(ctx context.Context, req OptimizeRequest) (*ExplainResponse, error) {
	start := time.Now()
	s.met.ExplainRequests.Add(1)
	resp, served, err := s.serve(ctx, &req, start, "explain")
	if err != nil {
		return nil, err
	}
	out := &ExplainResponse{
		OptimizeResponse: *resp,
		Text:             served.entry.opt.Explain(served.plan),
		Breakdown:        served.entry.opt.Mod.BreakdownTable(served.plan.Op),
	}
	if req.Trace {
		out.SearchTrace = served.entry.searchTrace
		if resp.Cache == "hit" {
			// The trace was captured when the cover set was computed, not by
			// this request; say so in-band for text consumers too.
			out.SearchTraceCached = true
			out.SearchTrace = "replayed from cache (captured when the cover set was computed)\n" + out.SearchTrace
		}
	}
	if req.Why {
		pv := served.entry.opt.PlanProvenance(served.plan, req.bound(), 5)
		out.Why = pv
		out.WhyText = pv.Text()
	}
	if req.Analyze {
		if err := s.analyze(&req, served, out); err != nil {
			s.finishInflight(served.iq, err)
			s.met.Errors.Add(1)
			served.root.Err(err)
			served.root.End()
			s.observeFailure("explain", &req, resp.Fingerprint, resp.Catalog, start, err)
			s.logger.Warn("explain analyze failed", "id", resp.TraceID, "err", err)
			return nil, err
		}
	}
	out.ElapsedMicros = time.Since(start).Microseconds()
	s.finishRequest(served, "explain", &out.OptimizeResponse)
	return out, nil
}

// servedPlan carries the materialized plan — and the request's trace — from
// serve to the endpoint finishing the response. relErr/qErr hold the analyze
// accuracy summary (explain-analyze only) so the query-log record and the
// workload profiler see the same drift signal.
type servedPlan struct {
	plan  *core.Plan
	entry *cacheEntry
	trace *obs.Trace
	root  *obs.Span
	req   *OptimizeRequest
	// ctx is the request context with the end-to-end deadline and the
	// registry's cancel cause; iq the live-registry entry. Analyze threads
	// ctx into the engine; finishInflight retires iq.
	ctx    context.Context
	iq     *inflightQuery
	relErr float64
	qErr   float64
}

// finishRequest closes the request's root span, feeds the workload profiler
// and query log, and emits the structured per-request log line.
func (s *Service) finishRequest(p *servedPlan, kind string, resp *OptimizeResponse) {
	s.finishInflight(p.iq, nil)
	p.root.End()
	s.prof.Observe(workload.Sample{
		Fingerprint:    resp.Fingerprint,
		Catalog:        resp.Catalog,
		Query:          p.req.Query,
		PlanSig:        resp.PlanSignature,
		Cache:          resp.Cache,
		Deduped:        resp.Deduped,
		LatencySeconds: float64(resp.ElapsedMicros) / 1e6,
	})
	if s.qlog != nil {
		s.qlog.Write(workload.Record{
			Time:          time.Now(),
			Kind:          kind,
			Fingerprint:   resp.Fingerprint,
			Catalog:       resp.Catalog,
			Query:         p.req.Query,
			K:             p.req.K,
			CostBenefit:   p.req.CostBenefit,
			Cache:         resp.Cache,
			Deduped:       resp.Deduped,
			PlanSig:       resp.PlanSignature,
			RT:            resp.Summary.ResponseTime,
			Work:          resp.Summary.Work,
			RelErr:        p.relErr,
			QErr:          p.qErr,
			ElapsedMicros: resp.ElapsedMicros,
		})
	}
	s.logger.Info(kind,
		"id", resp.TraceID,
		"fingerprint", resp.Fingerprint,
		"catalog", resp.Catalog,
		"cache", resp.Cache,
		"coverSize", resp.CoverSize,
		"elapsedMicros", resp.ElapsedMicros)
}

// observeFailure records a failed request in the profiler (when it got far
// enough to have a fingerprint) and the query log.
func (s *Service) observeFailure(kind string, req *OptimizeRequest, fp, version string, start time.Time, err error) {
	s.prof.Observe(workload.Sample{
		Fingerprint: fp,
		Catalog:     version,
		Query:       req.Query,
		Err:         true,
	})
	if s.qlog != nil {
		s.qlog.Write(workload.Record{
			Time:          time.Now(),
			Kind:          kind,
			Fingerprint:   fp,
			Catalog:       version,
			Query:         req.Query,
			K:             req.K,
			CostBenefit:   req.CostBenefit,
			ElapsedMicros: time.Since(start).Microseconds(),
			Error:         err.Error(),
		})
	}
}

func (s *Service) serve(ctx context.Context, req *OptimizeRequest, start time.Time, kind string) (*OptimizeResponse, *servedPlan, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, nil, ErrClosed
	}
	// End-to-end deadline plus a cancel cause the live registry owns: the
	// same context reaches the engine's checkpoints during analyze, so both
	// a DELETE /debug/queries/{id} and a deadline expiry preempt execution.
	// No defers — the context must outlive serve (Explain's analyze runs
	// after it returns); finishInflight releases both cancels.
	ctx, stopTimeout := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	ctx, cancelCause := context.WithCancelCause(ctx)
	iq := s.inflight.add(kind, req.Query, req.Distributed, cancelCause, stopTimeout)

	// Root span of the request; phase child spans hang off it and the
	// search span joins via the context (entryFor). Everything is nil-safe,
	// so a disabled tracer costs nothing here.
	tr, root := s.tracer.Start(kind)
	ctx = obs.ContextWithSpan(ctx, root)

	var fp, version string
	fail := func(err error) (*OptimizeResponse, *servedPlan, error) {
		// A cancelled context surfaces as context.Canceled from whatever
		// phase it interrupted; report the installed cause instead so
		// clients and logs see *why*.
		if errors.Is(err, context.Canceled) {
			if cause := context.Cause(ctx); cause != nil {
				err = cause
			}
		}
		s.finishInflight(iq, err)
		s.met.Errors.Add(1)
		root.Err(err)
		root.End()
		s.observeFailure(kind, req, fp, version, start, err)
		s.logger.Warn(kind+" failed", "id", tr.ID(), "err", err)
		return nil, nil, err
	}
	t := time.Now()
	sp := root.Child("parse")
	cat, version, q, fp, key, err := s.resolve(req)
	sp.End()
	s.met.PhaseParse.Observe(time.Since(t).Seconds())
	if err != nil {
		return fail(err)
	}
	root.SetAttr("fingerprint", fp)
	root.SetAttr("catalog", version)
	iq.note(fp, version)

	t = time.Now()
	iq.setPhase("search")
	entry, hit, deduped, err := s.entryFor(ctx, key, version, cat, q)
	s.met.PhaseSearch.Observe(time.Since(t).Seconds())
	if err != nil {
		return fail(err)
	}
	if hit {
		root.SetAttr("cache", "hit")
	} else {
		root.SetAttr("cache", "miss")
	}
	if deduped {
		root.SetAttr("deduped", true)
	}

	t = time.Now()
	iq.setPhase("select")
	sp = root.Child("select")
	plan, err := entry.opt.SelectBounded(entry.cover, req.bound())
	sp.End()
	s.met.PhaseSelect.Observe(time.Since(t).Seconds())
	if err != nil {
		return fail(err)
	}

	t = time.Now()
	sp = root.Child("render")
	planJSON, err := entry.opt.ExplainJSON(plan)
	sp.End()
	s.met.PhaseRender.Observe(time.Since(t).Seconds())
	if err != nil {
		return fail(err)
	}
	resp := &OptimizeResponse{
		Fingerprint:    fp,
		Catalog:        version,
		Cache:          "miss",
		Deduped:        deduped,
		CoverSetReused: hit,
		CoverSize:      len(entry.cover.Frontier),
		PlanSignature:  plan.Tree.String(),
		Summary:        PlanSummary{ResponseTime: plan.RT(), Work: plan.Work()},
		Plan:           planJSON,
		TraceID:        tr.ID(),
	}
	if hit {
		resp.Cache = "hit"
	}
	if b := req.bound(); b != nil {
		resp.Bound = b.Name()
	}
	if plan.Baseline != nil {
		resp.Baseline = &PlanSummary{ResponseTime: plan.Baseline.RT(), Work: plan.Baseline.Work()}
	}
	resp.ElapsedMicros = time.Since(start).Microseconds()
	s.met.Latency.Observe(time.Since(start).Seconds())
	return resp, &servedPlan{plan: plan, entry: entry, trace: tr, root: root, req: req, ctx: ctx, iq: iq}, nil
}

// finishInflight retires a query from the live registry and counts its
// cancellation, if any, on the per-reason metric.
func (s *Service) finishInflight(iq *inflightQuery, err error) {
	switch s.inflight.finish(iq, err) {
	case CancelClient:
		s.met.QueryCancelledClient.Add(1)
	case CancelDeadline:
		s.met.QueryCancelledDeadline.Add(1)
	case CancelShutdown:
		s.met.QueryCancelledShutdown.Add(1)
	}
}

// InflightQueries snapshots the live registry (the /debug/queries payload).
func (s *Service) InflightQueries() []QuerySnapshot { return s.inflight.snapshots() }

// InflightQuery snapshots one live query by ID.
func (s *Service) InflightQuery(id int64) (QuerySnapshot, bool) {
	q := s.inflight.get(id)
	if q == nil {
		return QuerySnapshot{}, false
	}
	return q.snapshot(time.Now()), true
}

// CancelQuery cancels one live query (reason "client" — the DELETE
// /debug/queries/{id} path); false when no such query is in flight.
func (s *Service) CancelQuery(id int64) bool {
	return s.inflight.cancel(id, CancelClient)
}

// analyzeMaxRows bounds the synthetic data an analyze request may generate
// and join — an admission guard, since execution happens inline.
const analyzeMaxRows = 4 << 20

// analyzeDB returns the synthetic database for a catalog version, generating
// it on first use.
func (s *Service) analyzeDB(version string, cat *catalog.Catalog) (*storage.Database, error) {
	var rows int64
	for _, name := range cat.RelationNames() {
		rows += cat.MustRelation(name).Card
	}
	if rows > analyzeMaxRows {
		return nil, badRequestError{fmt.Errorf("service: analyze refused: catalog has %d base rows (limit %d)", rows, int64(analyzeMaxRows))}
	}
	s.dbMu.Lock()
	defer s.dbMu.Unlock()
	if db, ok := s.dbs[version]; ok {
		return db, nil
	}
	db := storage.NewDatabase(cat, s.cfg.DataSeed)
	s.dbs[version] = db
	return db, nil
}

// analyze executes the served plan with engine instrumentation, joins the
// measured descriptors against the cost model's predictions, grafts the
// per-operator timings into the request trace, and feeds the cost-model
// error histogram.
func (s *Service) analyze(req *OptimizeRequest, served *servedPlan, out *ExplainResponse) error {
	t := time.Now()
	served.iq.setPhase("execute")
	sp := served.root.Child("execute")
	db, err := s.analyzeDB(out.Catalog, served.entry.opt.Cat)
	if err != nil {
		sp.Err(err)
		sp.End()
		return err
	}
	par := req.AnalyzeParallel
	if par <= 0 {
		par = s.mcfg.CPUs
	}
	if par < 1 {
		par = 1
	}
	sp.SetAttr("parallel", par)
	// Distributed execution: build an exchange.Cluster over the current
	// worker membership. The transport interface stays nil for the
	// in-process path (a typed-nil *Cluster would dodge the engine's
	// nil check).
	var tr exchange.Transport
	var cluster *exchange.Cluster
	if req.Distributed {
		addrs := s.WorkerAddrs()
		if len(addrs) == 0 {
			err := badRequestError{errors.New("service: distributed analyze requested but no workers are registered")}
			sp.Err(err)
			sp.End()
			return err
		}
		ccfg := exchange.ClusterConfig{
			Members: s.Members,
			Window:  s.cfg.ExchangeWindow,
			// Trace propagation: fragments carry the request's trace ID so
			// worker-side spans come home tagged with it.
			TraceID: served.trace.ID(),
		}
		if pm := s.PlacementFor(out.Catalog); pm != nil {
			// Ship leaf scans to the data: restrict ownership to live
			// members (any worker can materialize any shard, so pruning
			// just re-shards across survivors), and arm the coordinator
			// fallback so a query outlives the last owner.
			live := pm.Prune(addrs)
			ccfg.Owners = live.OwnerMap()
			ccfg.Store = s.fallbackStore(out.Catalog, served.entry.opt.Cat, db)
			ccfg.Fn = engine.FragmentJoin
			sp.SetAttr("placement", pm.Fingerprint())
		}
		cluster = exchange.NewCluster(addrs, ccfg)
		sp.SetAttr("workers", len(addrs))
		tr = cluster
	}
	// Arm live progress before execution starts: the registry entry holds
	// the stats collector the executor will update lock-free plus the
	// plan's predicted (tf, tl) timeline, so /debug/queries can sample
	// per-operator percent-complete and a model-predicted ETA mid-run.
	stats := &engine.ExecStats{}
	timeline, predRT := accuracy.Timeline(served.entry.opt.Mod, served.plan.Op)
	served.iq.attachExec(stats, timeline, predRT, cluster)
	ctx := served.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if cluster != nil {
		// Cluster-wide cancellation: the moment the request context dies —
		// client DELETE, deadline, shutdown — every worker gets a cancel
		// frame and abandons its fragment, freeing staged partitions.
		stop := context.AfterFunc(ctx, cluster.Cancel)
		defer stop()
	}
	rep, _, err := served.entry.opt.AnalyzeLive(ctx, served.plan, db, par, tr, stats)
	if cluster != nil {
		// Record traffic even on failure: partial transfers are exactly
		// what an operator debugging a dead worker wants to see.
		s.recordExchange(sp, cluster)
	}
	if err != nil && errors.Is(err, context.Canceled) {
		if cause := context.Cause(ctx); cause != nil {
			err = cause
		}
	}
	sp.Err(err)
	sp.End()
	s.met.PhaseExecute.Observe(time.Since(t).Seconds())
	if err != nil {
		return err
	}
	if cluster != nil {
		// Join the interconnect predictions against observed wire time and
		// merge the workers' span trees into this request's trace.
		rep.AttachLinks(cluster.Links())
	}
	graftAnalyze(sp, rep, stats)
	graftRemote(sp, stats)
	for _, e := range rep.Errors() {
		s.met.CostRelErr.Observe(e)
	}
	// Feed the drift signal: the profiler's accuracy EWMAs decide whether
	// this template's cached cover set still matches measured reality.
	s.prof.ObserveAccuracy(out.Fingerprint, rep.MeanAbsRelErr, rep.MaxQErrRows)
	served.relErr, served.qErr = rep.MeanAbsRelErr, rep.MaxQErrRows
	s.met.AnalyzeRuns.Add(1)
	out.Analyze = rep
	out.AnalyzeTable = rep.Table()
	return nil
}
