package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
)

// TestDistributedAnalyzeMergesWorkerTrace is the tentpole end-to-end check:
// a ?distributed=1&analyze=1&trace=1 request must come back with ONE trace
// spanning processes — worker fragment spans (with their join children and
// measured offsets) grafted under the coordinator's execute span — plus the
// per-fragment accuracy rows and link section in the report.
func TestDistributedAnalyzeMergesWorkerTrace(t *testing.T) {
	lb, err := exchange.StartLoopback(2, engine.FragmentJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	s, srv := newTestServer(t, func(c *Config) { c.ExchangeWindow = 4 })
	for _, addr := range lb.Addrs() {
		if _, err := s.RegisterWorker(addr, ""); err != nil {
			t.Fatal(err)
		}
	}

	resp, body := postJSON(t, srv.URL+"/explain?analyze=1&trace=1&distributed=1",
		OptimizeRequest{Query: chainSQL(4, 7)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distributed explain: %d: %s", resp.StatusCode, body)
	}
	var exp ExplainResponse
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatal(err)
	}
	if exp.TraceID == "" {
		t.Fatal("response carries no trace ID")
	}
	if exp.Analyze == nil {
		t.Fatal("no accuracy report")
	}
	if len(exp.Analyze.Fragments) == 0 {
		t.Error("accuracy report has no per-fragment worker rows")
	}
	for _, f := range exp.Analyze.Fragments {
		if f.ActLast <= 0 {
			t.Errorf("fragment %s[%d]: measured tl = %g, want > 0", f.Label, f.Part, f.ActLast)
		}
		if f.PredLastSec <= 0 {
			t.Errorf("fragment %s[%d]: predicted tl = %g, want > 0 (joined against descriptors)", f.Label, f.Part, f.PredLastSec)
		}
	}
	if len(exp.Analyze.Links) == 0 {
		t.Error("accuracy report has no interconnect link rows")
	}

	// The merged trace: fragment spans live under execute, carry the worker
	// measurements, and contain the stable join child.
	resp, body = getBody(t, srv.URL+"/debug/trace/"+exp.TraceID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace: %d: %s", resp.StatusCode, body)
	}
	var tj obs.TraceJSON
	if err := json.Unmarshal(body, &tj); err != nil {
		t.Fatal(err)
	}
	execSpan := findSpan(tj.Root, "execute")
	if execSpan == nil {
		t.Fatal("no execute span in the merged trace")
	}
	fragments := 0
	for _, c := range execSpan.Children {
		if c.Name != "fragment" {
			continue
		}
		fragments++
		if c.Attrs["addr"] == "" {
			t.Error("fragment span missing the worker link address")
		}
		join := findSpan(c, "join")
		if join == nil {
			t.Fatal("fragment span has no join child")
		}
		if join.EndMicros < join.StartMicros {
			t.Errorf("join span times out of order: [%d, %d]", join.StartMicros, join.EndMicros)
		}
	}
	if fragments == 0 {
		t.Fatal("no worker fragment spans merged into the trace")
	}

	// The ring listing counts them without refetching the tree.
	resp, body = getBody(t, srv.URL+"/debug/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/traces: %d", resp.StatusCode)
	}
	var list struct {
		Traces  []string     `json:"traces"`
		Entries []TraceEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Entries) != len(list.Traces) {
		t.Fatalf("entries = %d, traces = %d; the listings drifted apart", len(list.Entries), len(list.Traces))
	}
	found := false
	for _, e := range list.Entries {
		if e.ID == exp.TraceID {
			found = true
			if e.Fragments != fragments {
				t.Errorf("listing counts %d fragments, trace holds %d", e.Fragments, fragments)
			}
			if e.Workers == 0 {
				t.Error("listing counts no workers for a distributed trace")
			}
		}
	}
	if !found {
		t.Errorf("trace %s missing from the listing", exp.TraceID)
	}
}

// TestClusterMetricsFederation: GET /cluster/metrics scrapes each registered
// worker's own /healthz, reports per-worker liveness, and feeds the
// paroptd_cluster_worker_up gauges on /metrics.
func TestClusterMetricsFederation(t *testing.T) {
	healthy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","worker":"up:1","stats":{"fragments_served":3}}`)) //nolint:errcheck
	}))
	defer healthy.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	s, srv := newTestServer(t, nil)
	if _, err := s.RegisterWorker("up:1", healthy.URL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterWorker("down:1", dead.URL); err != nil {
		t.Fatal(err)
	}

	resp, body := getBody(t, srv.URL+"/cluster/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster/metrics: %d: %s", resp.StatusCode, body)
	}
	var cm ClusterMetrics
	if err := json.Unmarshal(body, &cm); err != nil {
		t.Fatal(err)
	}
	if cm.Total != 2 || cm.Live != 1 {
		t.Errorf("live/total = %d/%d, want 1/2", cm.Live, cm.Total)
	}
	for _, ws := range cm.Workers {
		switch ws.Addr {
		case "up:1":
			if !ws.Up || len(ws.Health) == 0 {
				t.Errorf("healthy worker reported %+v", ws)
			}
		case "down:1":
			if ws.Up || ws.Error == "" {
				t.Errorf("dead worker reported %+v", ws)
			}
		default:
			t.Errorf("unexpected worker %q in snapshot", ws.Addr)
		}
	}

	resp, body = getBody(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	text := string(body)
	if !strings.Contains(text, `paroptd_cluster_worker_up{worker="up:1"} 1`) {
		t.Error("metrics missing up gauge for the healthy worker")
	}
	if !strings.Contains(text, `paroptd_cluster_worker_up{worker="down:1"} 0`) {
		t.Error("metrics missing down gauge for the dead worker")
	}
}

// TestRegisterWorkerKeepsEpochOnHTTPUpdate: re-registering the same address
// (heartbeats, or an upgrade that starts sending an HTTP URL) must not churn
// the membership epoch.
func TestRegisterWorkerKeepsEpochOnHTTPUpdate(t *testing.T) {
	s := newTestService(t, nil)
	if _, err := s.RegisterWorker("w:1", ""); err != nil {
		t.Fatal(err)
	}
	epoch := s.Epoch()
	if _, err := s.RegisterWorker("w:1", "http://127.0.0.1:9"); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != epoch {
		t.Errorf("epoch advanced %d -> %d on a same-address re-register", epoch, got)
	}
	if got := s.workerHTTP()["w:1"]; got != "http://127.0.0.1:9" {
		t.Errorf("http URL not updated: %q", got)
	}
}
