package service

import (
	"fmt"
	"time"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs"
	"paropt/internal/obs/accuracy"
	"paropt/internal/query"
	"paropt/internal/search"
)

// spanTracer bridges search.Tracer events into the request's span tree: each
// DP layer becomes a zero-duration event span carrying its counters, and the
// final search statistics land as attributes on the search span itself.
type spanTracer struct{ sp *obs.Span }

// Layer implements search.Tracer.
func (t spanTracer) Layer(rec search.LayerRecord) {
	c := t.sp.Child(fmt.Sprintf("dp-layer-%d", rec.Card))
	c.SetAttr("subsets", rec.Subsets)
	c.SetAttr("plansStored", rec.Kept)
	c.SetAttr("considered", rec.Considered)
	c.SetAttr("pruned", rec.Pruned())
	c.SetAttr("maxCover", rec.MaxCover)
	c.End()
}

// Subset implements search.Tracer. Per-subset events fire in the DP's inner
// loop; they are deliberately not recorded.
func (t spanTracer) Subset(query.RelSet, int, int64) {}

// Final implements search.Tracer.
func (t spanTracer) Final(best *search.Candidate, stats search.Stats) {
	t.sp.SetAttr("plansConsidered", stats.PlansConsidered)
	t.sp.SetAttr("physicalPlans", stats.PhysicalPlans)
	t.sp.SetAttr("maxCoverSize", stats.MaxCoverSize)
	t.sp.SetAttr("pruned", stats.Pruned)
}

// graftAnalyze grafts an instrumented execution under the execute span: one
// child span per join-tree node whose (start, first-output, end) are the
// measured runtime descriptor, annotated with the calibrated predictions so
// the trace tree shows predicted vs actual (tf, tl) side by side.
func graftAnalyze(sp *obs.Span, rep *accuracy.Report, stats *engine.ExecStats) {
	if sp == nil {
		return
	}
	byLabel := make(map[string]accuracy.OpAccuracy, len(rep.Ops))
	for _, oa := range rep.Ops {
		byLabel[oa.Label] = oa
	}
	t0 := stats.T0
	for _, st := range stats.Nodes() {
		c := sp.Child(st.Label)
		var first time.Time
		if st.Rows > 0 {
			first = t0.Add(st.First)
		}
		c.SetTimes(t0.Add(st.Start), first, t0.Add(st.Last))
		c.SetAttr("rows", st.Rows)
		c.SetAttr("batches", st.Batches)
		if oa, ok := byLabel[st.Label]; ok {
			c.SetAttr("predTfMicros", int64(oa.PredFirstSec*1e6))
			c.SetAttr("predTlMicros", int64(oa.PredLastSec*1e6))
			c.SetAttr("estRows", oa.EstRows)
			if !oa.Root && oa.ActLast > 0 {
				c.SetAttr("relErrTl", fmt.Sprintf("%+.2f", oa.RelErrLast))
			}
		}
	}
}

// graftRemote merges the workers' span trees into the request trace: each
// fragment a worker executed arrives as a RemoteSpan tree of relative
// nanosecond offsets, which is grafted under the execute span anchored at
// the coordinator's dispatch timestamp. No cross-machine clock agreement is
// needed — the offsets are worker-local durations and the anchor is
// coordinator-local, so the merged tree lines up modulo one network hop.
func graftRemote(sp *obs.Span, stats *engine.ExecStats) {
	if sp == nil || stats == nil {
		return
	}
	for _, rf := range stats.Remote() {
		for _, fs := range rf.Stats {
			if fs == nil || fs.Span == nil {
				continue
			}
			anchor := fs.Dispatched
			if anchor.IsZero() {
				anchor = stats.T0
			}
			c := graftRemoteSpan(sp, fs.Span, anchor)
			c.SetAttr("node", rf.Label)
			c.SetAttr("part", fmt.Sprintf("%d/%d", fs.Part, fs.Parts))
			if fs.Addr != "" {
				c.SetAttr("addr", fs.Addr)
			}
			if fs.ResultStallNanos > 0 {
				c.SetAttr("resultStallMicros", fs.ResultStallNanos/1e3)
			}
			if fs.Retried > 0 {
				c.SetAttr("retried", fs.Retried)
			}
			if fs.FallbackReason != "" {
				c.SetAttr("fallbackReason", fs.FallbackReason)
			}
		}
	}
}

// graftRemoteSpan recursively converts one worker-measured span (relative
// offsets) into a trace span anchored at the coordinator-side timestamp.
func graftRemoteSpan(parent *obs.Span, rs *exchange.RemoteSpan, anchor time.Time) *obs.Span {
	c := parent.Child(rs.Name)
	var first time.Time
	if rs.FirstNanos > 0 {
		first = anchor.Add(time.Duration(rs.FirstNanos))
	}
	c.SetTimes(anchor.Add(time.Duration(rs.StartNanos)), first, anchor.Add(time.Duration(rs.EndNanos)))
	for k, v := range rs.Attrs {
		c.SetAttr(k, v)
	}
	for _, child := range rs.Children {
		graftRemoteSpan(c, child, anchor)
	}
	return c
}
