package service

import (
	"fmt"
	"time"

	"paropt/internal/engine"
	"paropt/internal/obs"
	"paropt/internal/obs/accuracy"
	"paropt/internal/query"
	"paropt/internal/search"
)

// spanTracer bridges search.Tracer events into the request's span tree: each
// DP layer becomes a zero-duration event span carrying its counters, and the
// final search statistics land as attributes on the search span itself.
type spanTracer struct{ sp *obs.Span }

// Layer implements search.Tracer.
func (t spanTracer) Layer(card int, subsets int, plansStored int64) {
	c := t.sp.Child(fmt.Sprintf("dp-layer-%d", card))
	c.SetAttr("subsets", subsets)
	c.SetAttr("plansStored", plansStored)
	c.End()
}

// Subset implements search.Tracer. Per-subset events fire in the DP's inner
// loop; they are deliberately not recorded.
func (t spanTracer) Subset(query.RelSet, int, int64) {}

// Final implements search.Tracer.
func (t spanTracer) Final(best *search.Candidate, stats search.Stats) {
	t.sp.SetAttr("plansConsidered", stats.PlansConsidered)
	t.sp.SetAttr("physicalPlans", stats.PhysicalPlans)
	t.sp.SetAttr("maxCoverSize", stats.MaxCoverSize)
	t.sp.SetAttr("pruned", stats.Pruned)
}

// graftAnalyze grafts an instrumented execution under the execute span: one
// child span per join-tree node whose (start, first-output, end) are the
// measured runtime descriptor, annotated with the calibrated predictions so
// the trace tree shows predicted vs actual (tf, tl) side by side.
func graftAnalyze(sp *obs.Span, rep *accuracy.Report, stats *engine.ExecStats) {
	if sp == nil {
		return
	}
	byLabel := make(map[string]accuracy.OpAccuracy, len(rep.Ops))
	for _, oa := range rep.Ops {
		byLabel[oa.Label] = oa
	}
	t0 := stats.T0
	for _, st := range stats.Nodes() {
		c := sp.Child(st.Label)
		var first time.Time
		if st.Rows > 0 {
			first = t0.Add(st.First)
		}
		c.SetTimes(t0.Add(st.Start), first, t0.Add(st.Last))
		c.SetAttr("rows", st.Rows)
		c.SetAttr("batches", st.Batches)
		if oa, ok := byLabel[st.Label]; ok {
			c.SetAttr("predTfMicros", int64(oa.PredFirstSec*1e6))
			c.SetAttr("predTlMicros", int64(oa.PredLastSec*1e6))
			c.SetAttr("estRows", oa.EstRows)
			if !oa.Root && oa.ActLast > 0 {
				c.SetAttr("relErrTl", fmt.Sprintf("%+.2f", oa.RelErrLast))
			}
		}
	}
}
