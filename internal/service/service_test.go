package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"paropt/internal/parser"
)

// testDDL is a 6-relation chain schema (the acceptance workload).
const testDDL = `
relation R1 card=50000 pages=500 disk=0
column R1.a ndv=50000
column R1.b ndv=2000
relation R2 card=80000 pages=800 disk=1
column R2.a ndv=2000
column R2.b ndv=4000
relation R3 card=60000 pages=600 disk=2
column R3.a ndv=4000
column R3.b ndv=3000
relation R4 card=90000 pages=900 disk=3
column R4.a ndv=3000
column R4.b ndv=5000
relation R5 card=70000 pages=700 disk=0
column R5.a ndv=5000
column R5.b ndv=2500
relation R6 card=40000 pages=400 disk=1
column R6.a ndv=2500
column R6.b ndv=1000
`

// chainSQL joins R1..Rn along the chain with a literal selection on R1.a.
func chainSQL(n int, literal int) string {
	rels := make([]string, n)
	for i := range rels {
		rels[i] = fmt.Sprintf("R%d", i+1)
	}
	var preds []string
	for i := 1; i < n; i++ {
		preds = append(preds, fmt.Sprintf("R%d.b = R%d.a", i, i+1))
	}
	preds = append(preds, fmt.Sprintf("R1.a = %d", literal))
	return "SELECT * FROM " + strings.Join(rels, ", ") + " WHERE " + strings.Join(preds, " AND ")
}

func newTestService(t *testing.T, mutate func(*Config)) *Service {
	t.Helper()
	cat, err := parser.ParseSchema(testDDL)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Catalog: cat}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestOptimizeMissThenHitRefiltersCoverSet(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()

	first, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" || first.CoverSetReused {
		t.Errorf("first request should be a miss, got cache=%s reused=%t", first.Cache, first.CoverSetReused)
	}
	if got := s.met.FullSearch.Load(); got != 1 {
		t.Fatalf("first request should run exactly one search, got %d", got)
	}
	if first.CoverSize < 1 {
		t.Fatalf("cached cover set is empty")
	}
	if first.Baseline == nil {
		t.Fatal("response should carry the work-optimal baseline")
	}

	// Same template, different literal, and a work bound the first request
	// did not use: must be served by re-filtering the cached cover set.
	second, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 12345), K: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if second.Fingerprint != first.Fingerprint {
		t.Errorf("literal change altered the fingerprint: %s vs %s", first.Fingerprint, second.Fingerprint)
	}
	if second.Cache != "hit" || !second.CoverSetReused {
		t.Errorf("second request should re-use the cover set, got cache=%s reused=%t", second.Cache, second.CoverSetReused)
	}
	if got := s.met.FullSearch.Load(); got != 1 {
		t.Errorf("changed-k request must not re-run the search; searches=%d", got)
	}
	if got := s.met.CoverReuse.Load(); got != 1 {
		t.Errorf("cover-reuse counter should be 1, got %d", got)
	}
	if second.Bound == "" {
		t.Error("bounded request should echo the bound name")
	}
	// The §2 bound must hold against the baseline.
	if wo := second.Baseline.Work; second.Summary.Work > 1.5*wo*(1+1e-9) {
		t.Errorf("bounded plan exceeds Wp ≤ 1.5·Wo: work=%g, wo=%g", second.Summary.Work, wo)
	}
	// And the unbounded plan (first) can be no slower than the bounded one.
	if first.Summary.ResponseTime > second.Summary.ResponseTime*(1+1e-9) {
		t.Errorf("unbounded RT %g should be ≤ bounded RT %g",
			first.Summary.ResponseTime, second.Summary.ResponseTime)
	}
}

func TestTightAndLooseBoundsFromOneCoverSet(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	var prevRT float64
	// k = 1 forbids any extra work; growing k can only improve RT. All
	// requests after the first must be answered from the cache.
	for i, k := range []float64{1.0, 1.2, 2.0, 4.0} {
		resp, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(6, 7), K: k})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Summary.Work > k*resp.Baseline.Work*(1+1e-9) {
			t.Errorf("k=%g: work %g exceeds %g·Wo=%g", k, resp.Summary.Work, k, k*resp.Baseline.Work)
		}
		if i > 0 && resp.Summary.ResponseTime > prevRT*(1+1e-9) {
			t.Errorf("k=%g: RT %g worse than RT %g at smaller k", k, resp.Summary.ResponseTime, prevRT)
		}
		prevRT = resp.Summary.ResponseTime
	}
	if got := s.met.FullSearch.Load(); got != 1 {
		t.Errorf("all bounds should share one search, got %d", got)
	}
}

func TestSingleflightDeduplicatesConcurrentSearches(t *testing.T) {
	s := newTestService(t, func(c *Config) { c.Workers = 4; c.QueueDepth = 64 })
	const n = 16
	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Different literals on purpose: all share one fingerprint.
			_, errs[i] = s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(6, i+1)})
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.met.FullSearch.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests should run exactly 1 search, ran %d", n, got)
	}
	if hits, misses := s.met.CacheHits.Load(), s.met.CacheMisses.Load(); hits+misses != n {
		t.Errorf("hits (%d) + misses (%d) should account for all %d requests", hits, misses, n)
	}
}

func TestOverloadRejectsWith429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s := newTestService(t, func(c *Config) { c.Workers = 1; c.QueueDepth = 1 })
	s.searchHook = func() {
		started <- struct{}{}
		<-gate
	}

	results := make(chan error, 2)
	// A occupies the single worker (blocked on the gate)...
	go func() {
		_, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(2, 1)})
		results <- err
	}()
	<-started
	// ...B occupies the single queue slot (a different fingerprint, so it
	// cannot piggyback on A's singleflight)...
	go func() {
		_, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 1)})
		results <- err
	}()
	waitFor(t, func() bool { return s.pool.QueueDepth() == 1 })

	// ...so C must be rejected immediately.
	_, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(4, 1)})
	if err != ErrOverloaded {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if got := s.met.Rejected.Load(); got != 1 {
		t.Errorf("rejected counter should be 1, got %d", got)
	}

	// Releasing the gate drains A and B successfully.
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("queued request failed after gate release: %v", err)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestTimeoutDoesNotAbortSearch(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, func(c *Config) { c.RequestTimeout = 20 * time.Millisecond })
	s.searchHook = func() { <-gate }

	_, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 1)})
	if err != context.DeadlineExceeded {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
	// The abandoned search still completes and populates the cache.
	close(gate)
	waitFor(t, func() bool { return s.CacheLen() == 1 })
	resp, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "hit" {
		t.Errorf("follow-up should hit the cache populated by the abandoned search, got %s", resp.Cache)
	}
}

func TestCatalogVersionKeysTheCache(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	if _, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1)}); err != nil {
		t.Fatal(err)
	}
	// Same query against a catalog with refreshed statistics: different
	// version, so it must miss and re-search.
	refreshed := strings.Replace(testDDL, "relation R2 card=80000", "relation R2 card=160000", 1)
	resp, err := s.Optimize(ctx, OptimizeRequest{Query: chainSQL(3, 1), Schema: refreshed})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache != "miss" {
		t.Errorf("statistics refresh should invalidate via the catalog version; got %s", resp.Cache)
	}
	if got := s.met.FullSearch.Load(); got != 2 {
		t.Errorf("expected 2 searches across catalog versions, got %d", got)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestService(t, nil)
	ctx := context.Background()
	cases := []OptimizeRequest{
		{Query: ""},
		{Query: "SELECT * FROM Nope"},
		{Query: "not sql"},
		{Query: chainSQL(3, 1), Catalog: "deadbeef"},
		{Query: chainSQL(3, 1), Schema: "relation ???"},
	}
	for i, req := range cases {
		_, err := s.Optimize(ctx, req)
		var bad badRequestError
		if err == nil {
			t.Errorf("case %d: expected error", i)
		} else if !errors.As(err, &bad) {
			t.Errorf("case %d: expected badRequestError, got %T: %v", i, err, err)
		}
	}
	if got := s.met.Errors.Load(); got != int64(len(cases)) {
		t.Errorf("error counter should be %d, got %d", len(cases), got)
	}
}

func TestCloseRejectsNewRequests(t *testing.T) {
	s := newTestService(t, nil)
	s.Close()
	if _, err := s.Optimize(context.Background(), OptimizeRequest{Query: chainSQL(3, 1)}); err != ErrClosed {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}
