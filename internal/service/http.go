package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/obs"
	"paropt/internal/obs/workload"
	"paropt/internal/parser"
	"paropt/internal/placement"
	"paropt/internal/search"
)

// HTTP surface of the daemon (stdlib net/http only):
//
//	POST /optimize          OptimizeRequest JSON  → OptimizeResponse JSON
//	POST /explain           OptimizeRequest JSON  → ExplainResponse JSON
//	                        (?trace=1 adds the DP search trace — labeled
//	                         "replayed from cache" on cache hits,
//	                         ?why=1 adds plan provenance: the chosen plan's
//	                         full cost breakdown plus rejected alternatives,
//	                         ?analyze=1 executes + reports accuracy,
//	                         ?distributed=1 executes on registered workers)
//	POST /schema            {"ddl": "..."}        → {"catalog": "<version>"}
//	POST /cluster/register   {"addr": "host:port", "http"?: "url"} → membership
//	POST /cluster/deregister {"addr": "host:port"} → worker membership
//	GET  /cluster/workers                         → registered workers + links
//	GET  /cluster/metrics                         → federated worker snapshot
//	                        (scrapes each registered worker's /healthz and
//	                         reports per-worker liveness)
//	POST /cluster/placement {"catalog"?, "columns"?} → build + install a
//	                        placement map over the registered workers
//	GET  /cluster/placement (?catalog=version)    → installed placement map
//	                        + catalog snapshot (what paroptw bootstraps from)
//	GET  /healthz                                 → liveness + uptime
//	GET  /metrics                                 → Prometheus text format
//	GET  /debug/traces                            → retained trace IDs
//	                        (?fingerprint=fp keeps traces of one query
//	                         template, ?min_ms=N keeps traces at least that
//	                         long — combined, both must hold)
//	GET  /debug/trace/{id}                        → one request's span tree
//	GET  /debug/queries                           → in-flight queries with
//	                        live per-operator progress, model-predicted ETA
//	                        and drift flags (?format=text renders a table)
//	GET  /debug/queries/{id}                      → one in-flight query
//	DELETE /debug/queries/{id}                    → cancel an in-flight query
//	                        (cooperative: engine checkpoints + cluster-wide
//	                         worker cancel frames)
//	GET  /debug/workload                          → per-fingerprint profiles
//	                        (?top=K bounds rows, ?by=traffic|latency|drift
//	                         orders them, ?format=text renders a table)
//	GET  /debug/search                            → recent DP searches with
//	                        per-layer telemetry (?n=K bounds entries,
//	                         ?format=text renders layer tables)
//	GET  /debug/planlog                           → plan-change audit log
//	                        (?n=K bounds entries, ?format=text renders it)
//
// Error mapping: client errors (parse/validation/unknown catalog) → 400,
// queue-full admission rejection → 429 with Retry-After, request timeout →
// 504, shutdown → 503.

// Handler returns the daemon's HTTP mux.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /schema", s.handleSchema)
	mux.HandleFunc("POST /cluster/register", s.handleClusterRegister)
	mux.HandleFunc("POST /cluster/deregister", s.handleClusterDeregister)
	mux.HandleFunc("GET /cluster/workers", s.handleClusterWorkers)
	mux.HandleFunc("GET /cluster/metrics", s.handleClusterMetrics)
	mux.HandleFunc("POST /cluster/placement", s.handleClusterPlacementInstall)
	mux.HandleFunc("GET /cluster/placement", s.handleClusterPlacement)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /debug/queries", s.handleQueries)
	mux.HandleFunc("GET /debug/queries/{id}", s.handleQuery)
	mux.HandleFunc("DELETE /debug/queries/{id}", s.handleQueryCancel)
	mux.HandleFunc("GET /debug/workload", s.handleWorkload)
	mux.HandleFunc("GET /debug/search", s.handleSearchLog)
	mux.HandleFunc("GET /debug/planlog", s.handlePlanLog)
	return mux
}

// maxBodyBytes bounds request bodies (schemas can be large; queries are
// small).
const maxBodyBytes = 4 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a failed write
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusClientCancelled is nginx's non-standard 499 "client closed
// request" — the closest thing HTTP has to "you asked us to stop".
const statusClientCancelled = 499

// writeServiceError maps service errors to HTTP statuses.
func writeServiceError(w http.ResponseWriter, err error) {
	var bad badRequestError
	var qc *QueryCancelledError
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &qc):
		// Client cancellations are the client's own doing; shutdown and
		// deadline cancels map like their non-cancelled analogues.
		switch qc.Reason {
		case CancelClient:
			writeError(w, statusClientCancelled, err)
		case CancelShutdown:
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusGatewayTimeout, err)
		}
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.As(err, &bad):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (s *Service) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	resp, err := s.Optimize(r.Context(), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	// URL query flags are the curl-friendly spelling of the body fields.
	q := r.URL.Query()
	if q.Get("trace") == "1" {
		req.Trace = true
	}
	if q.Get("analyze") == "1" {
		req.Analyze = true
	}
	if q.Get("distributed") == "1" {
		req.Distributed = true
	}
	if q.Get("why") == "1" {
		req.Why = true
	}
	resp, err := s.Explain(r.Context(), req)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// SchemaRequest registers a catalog from DDL text. Default additionally
// makes it the service's default catalog (the statistics-refresh path: the
// plan cache misses naturally under the new version and the drift sweeper
// re-optimizes hot templates against it).
type SchemaRequest struct {
	DDL     string `json:"ddl"`
	Default bool   `json:"default,omitempty"`
}

// SchemaResponse returns the registered catalog version.
type SchemaResponse struct {
	Catalog   string `json:"catalog"`
	Relations int    `json:"relations"`
}

func (s *Service) handleSchema(w http.ResponseWriter, r *http.Request) {
	s.met.SchemaRequests.Add(1)
	var req SchemaRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	cat, err := parser.ParseSchema(req.DDL)
	if err != nil {
		s.met.Errors.Add(1)
		writeServiceError(w, badRequestError{err})
		return
	}
	var version string
	if req.Default {
		// The statistics-refresh path: move the default and retire the
		// previous default version (catalog-version GC).
		version = s.RefreshCatalog(cat)
	} else {
		version = s.RegisterCatalog(cat)
	}
	writeJSON(w, http.StatusOK, SchemaResponse{Catalog: version, Relations: cat.NumRelations()})
}

// ClusterRequest names one worker process by its exchange listen address.
// HTTP, when present, is the worker's own HTTP base URL (its /metrics and
// /healthz), which GET /cluster/metrics federates.
type ClusterRequest struct {
	Addr string `json:"addr"`
	HTTP string `json:"http,omitempty"`
}

// ClusterResponse reports the membership after a register/deregister.
type ClusterResponse struct {
	Workers []string `json:"workers"`
}

func (s *Service) handleClusterRegister(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if _, err := s.RegisterWorker(req.Addr, req.HTTP); err != nil {
		writeServiceError(w, err)
		return
	}
	s.logger.Info("worker registered", "addr", req.Addr)
	writeJSON(w, http.StatusOK, ClusterResponse{Workers: s.WorkerAddrs()})
}

func (s *Service) handleClusterDeregister(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if ok, _ := s.DeregisterWorker(req.Addr); ok {
		s.logger.Info("worker deregistered", "addr", req.Addr)
	}
	writeJSON(w, http.StatusOK, ClusterResponse{Workers: s.WorkerAddrs()})
}

func (s *Service) handleClusterWorkers(w http.ResponseWriter, r *http.Request) {
	workers, epoch := s.Members()
	if workers == nil {
		workers = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"workers":   workers,
		"epoch":     epoch,
		"fragments": s.met.ExchangeFragments.Load(),
		"links":     s.linkSnapshots(),
	})
}

func (s *Service) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.scrapeWorkers(r.Context()))
}

// PlacementRequest installs a placement map: Catalog optionally names a
// registered version (default: the service default), Columns optionally
// pins relation → partitioning column (unpinned relations get the
// co-location heuristic).
type PlacementRequest struct {
	Catalog string            `json:"catalog,omitempty"`
	Columns map[string]string `json:"columns,omitempty"`
}

// PlacementResponse describes an installed placement map. Workers bootstrap
// from the GET form: Snapshot carries the full catalog (statistics
// included), Map the assignments and generation seed, Epoch the membership
// epoch sampled with it.
type PlacementResponse struct {
	Map         *placement.Map      `json:"map"`
	Fingerprint string              `json:"fingerprint"`
	Epoch       int64               `json:"epoch"`
	Snapshot    catalog.SnapshotDoc `json:"snapshot"`
}

func (s *Service) handleClusterPlacementInstall(w http.ResponseWriter, r *http.Request) {
	var req PlacementRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := s.InstallPlacement(req.Catalog, req.Columns)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	s.mu.RLock()
	cat := s.catalogs[m.CatalogVersion]
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, PlacementResponse{
		Map: m, Fingerprint: m.Fingerprint(), Epoch: s.Epoch(), Snapshot: cat.Snapshot(),
	})
}

func (s *Service) handleClusterPlacement(w http.ResponseWriter, r *http.Request) {
	version := r.URL.Query().Get("catalog")
	if version == "" {
		s.mu.RLock()
		version = s.defaultVersion
		s.mu.RUnlock()
	}
	m := s.PlacementFor(version)
	if m == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no placement installed for catalog %q", version))
		return
	}
	s.mu.RLock()
	cat := s.catalogs[version]
	s.mu.RUnlock()
	if cat == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown catalog version %q", version))
		return
	}
	writeJSON(w, http.StatusOK, PlacementResponse{
		Map: m, Fingerprint: m.Fingerprint(), Epoch: s.Epoch(), Snapshot: cat.Snapshot(),
	})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	catalogs := len(s.catalogs)
	closed := s.closed
	s.mu.RUnlock()
	status := "ok"
	code := http.StatusOK
	if closed {
		status = "shutting-down"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":        status,
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
		"catalogs":      catalogs,
		"cacheEntries":  s.cache.Len(),
		"queueDepth":    s.pool.QueueDepth(),
	})
}

// gauges samples the point-in-time values the exposition combines with the
// cumulative counters. Every source is nil-safe, so disabled subsystems
// contribute zeros.
func (s *Service) gauges() Gauges {
	records, dropped, rotations := s.qlog.Stats()
	return Gauges{
		QueueDepth:           s.pool.QueueDepth(),
		CacheEntries:         s.cache.Len(),
		TracesRetained:       s.tracer.Len(),
		Uptime:               time.Since(s.start),
		WorkloadFingerprints: s.prof.Len(),
		WorkloadDrifted:      s.prof.DriftedCount(),
		WorkloadOverflow:     s.prof.Overflow(),
		NegCacheEntries:      s.neg.Len(),
		ClusterWorkers:       len(s.WorkerAddrs()),
		ClusterEpoch:         s.Epoch(),
		Placements:           s.placementCount(),
		Links:                s.linkSnapshots(),
		FallbackReasons:      s.fallbackReasonCounts(),
		WorkerUp:             s.workerLiveness(),
		QueryLogRecords:      records,
		QueryLogDropped:      dropped,
		QueryLogRotations:    rotations,
		InflightQueries:      s.inflight.len(),
		ProgressDrift:        s.inflight.driftCount(),
	}
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.WritePrometheus(w, s.gauges())
}

// TraceEntry summarizes one retained trace for the ring listing: how many
// worker fragment spans it holds and how many distinct workers ran them, so
// distributed queries stand out without fetching each full tree.
type TraceEntry struct {
	ID        string `json:"id"`
	Fragments int    `json:"fragments"`
	Workers   int    `json:"workers"`
}

func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	wantFP := q.Get("fingerprint")
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min_ms %q", v))
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	ids := s.tracer.IDs()
	kept := make([]string, 0, len(ids))
	entries := make([]TraceEntry, 0, len(ids))
	for _, id := range ids {
		tr := s.tracer.Get(id)
		if minDur > 0 && tr.Root().Duration() < minDur {
			continue
		}
		e := TraceEntry{ID: id}
		workers := map[string]bool{}
		fpMatch := wantFP == ""
		tr.Walk(func(name string, attrs []obs.Attr) {
			for _, a := range attrs {
				if a.Key == "fingerprint" && a.Value == wantFP {
					fpMatch = true
				}
				if name == "fragment" && a.Key == "worker" {
					workers[a.Value] = true
				}
			}
			if name == "fragment" {
				e.Fragments++
			}
		})
		if !fpMatch {
			continue
		}
		e.Workers = len(workers)
		kept = append(kept, id)
		entries = append(entries, e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": kept, "entries": entries})
}

// handleQueries lists the in-flight queries with live progress: per-operator
// percent complete against predicted cardinalities, a model-predicted ETA
// from the plan's (tf, tl) descriptors, and the drift flag.
func (s *Service) handleQueries(w http.ResponseWriter, r *http.Request) {
	snaps := s.InflightQueries()
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeQueriesText(w, snaps)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"queries": snaps})
}

// writeQueriesText renders the in-flight listing as a fixed-width table
// (the ?format=text form).
func writeQueriesText(w io.Writer, snaps []QuerySnapshot) {
	fmt.Fprintf(w, "%d in-flight\n", len(snaps))
	fmt.Fprintf(w, "%4s %-8s %-9s %9s %8s %10s %6s %s\n",
		"id", "kind", "phase", "elapsed", "pct", "eta", "drift", "query")
	for _, qs := range snaps {
		pct, eta, drift := "-", "-", ""
		if p := qs.Progress; p != nil {
			pct = fmt.Sprintf("%.0f%%", p.Percent*100)
			if p.ETAMs >= 0 {
				eta = fmt.Sprintf("%.0fms", p.ETAMs)
			}
			if p.Drift {
				drift = "DRIFT"
			}
		}
		flags := qs.Kind
		if qs.Distributed {
			flags += "*"
		}
		query := qs.Query
		if len(query) > 60 {
			query = query[:57] + "..."
		}
		fmt.Fprintf(w, "%4d %-8s %-9s %8.0fms %8s %10s %6s %s\n",
			qs.ID, flags, qs.Phase, qs.ElapsedMs, pct, eta, drift, query)
	}
}

// queryID parses the {id} path segment; -1 and a 400 on garbage.
func queryID(w http.ResponseWriter, r *http.Request) int64 {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil || id < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad query id %q", r.PathValue("id")))
		return -1
	}
	return id
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := queryID(w, r)
	if id < 0 {
		return
	}
	snap, ok := s.InflightQuery(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight query %d", id))
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleQueryCancel(w http.ResponseWriter, r *http.Request) {
	id := queryID(w, r)
	if id < 0 {
		return
	}
	if !s.CancelQuery(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no in-flight query %d", id))
		return
	}
	s.logger.Info("query cancelled by client", "queryId", id)
	writeJSON(w, http.StatusOK, map[string]any{"cancelled": id})
}

// handleWorkload serves the live per-fingerprint workload report: top-K
// profiles by traffic, latency or drift, as JSON or a fixed-width table.
func (s *Service) handleWorkload(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	top := 20
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad top %q", v))
			return
		}
		top = n
	}
	by := q.Get("by")
	switch by {
	case "", "traffic", "latency", "drift":
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad by %q (want traffic, latency or drift)", by))
		return
	}
	snaps := s.prof.Snapshot()
	workload.SortBy(snaps, by)
	if len(snaps) > top {
		snaps = snaps[:top]
	}
	if q.Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "workload: %d fingerprints, %d drifted, %d overflow\n\n",
			s.prof.Len(), s.prof.DriftedCount(), s.prof.Overflow())
		io.WriteString(w, workload.FormatTable(snaps)) //nolint:errcheck
		return
	}
	if snaps == nil {
		snaps = []workload.ProfileSnapshot{}
	}
	records, dropped, rotations := s.qlog.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprints": s.prof.Len(),
		"drifted":      s.prof.DriftedCount(),
		"overflow":     s.prof.Overflow(),
		"queryLog": map[string]any{
			"path":      s.qlog.Path(),
			"records":   records,
			"dropped":   dropped,
			"rotations": rotations,
		},
		"profiles": snaps,
	})
}

// limitParam parses an optional ?n=K bound (default def); returns -1 and
// writes a 400 on a bad value.
func limitParam(w http.ResponseWriter, r *http.Request, def int) int {
	v := r.URL.Query().Get("n")
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad n %q", v))
		return -1
	}
	return n
}

// handleSearchLog serves the recent-search telemetry ring: per-layer records
// for every search actually run, newest first.
func (s *Service) handleSearchLog(w http.ResponseWriter, r *http.Request) {
	n := limitParam(w, r, 20)
	if n < 0 {
		return
	}
	entries := s.SearchLog()
	if len(entries) > n {
		entries = entries[:n]
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range entries {
			fmt.Fprintf(w, "#%d %s source=%s fingerprint=%s catalog=%s relations=%d frontier=%d elapsed=%.3fms hits=%d cached=%v\n",
				e.ID, e.Time.Format(time.RFC3339), e.Source, e.Fingerprint, e.Catalog,
				e.Relations, e.FrontierSize, float64(e.ElapsedMicros)/1e3, e.CacheHits, e.Cached)
			p := search.SearchProfile{
				Relations:         e.Relations,
				WallNanos:         e.ElapsedMicros * 1e3,
				PeakBytesRetained: e.PeakBytesRetained,
				Layers:            e.Layers,
			}
			io.WriteString(w, p.Table()) //nolint:errcheck
			fmt.Fprintln(w)
		}
		return
	}
	if entries == nil {
		entries = []SearchLogEntry{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"searches": entries})
}

// handlePlanLog serves the plan-change audit log, newest first.
func (s *Service) handlePlanLog(w http.ResponseWriter, r *http.Request) {
	n := limitParam(w, r, 50)
	if n < 0 {
		return
	}
	changes := s.PlanChanges()
	if len(changes) > n {
		changes = changes[:n]
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, c := range changes {
			fmt.Fprintf(w, "#%d %s source=%s fingerprint=%s catalog=%s->%s\n",
				c.ID, c.Time.Format(time.RFC3339), c.Source, c.Fingerprint, c.PrevCatalog, c.Catalog)
			fmt.Fprintf(w, "  plan: %s -> %s\n", c.PrevPlan, c.NewPlan)
			fmt.Fprintf(w, "  rt: %.2f -> %.2f (%+.1f%%)  work: %.2f -> %.2f\n",
				c.PrevRT, c.NewRT, pctDelta(c.PrevRT, c.NewRT), c.PrevWork, c.NewWork)
			for _, d := range c.Diff {
				fmt.Fprintf(w, "  %s\n", d)
			}
			fmt.Fprintln(w)
		}
		return
	}
	if changes == nil {
		changes = []PlanChange{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"changes": changes})
}

// pctDelta is the relative change in percent (0 when the base is zero).
func pctDelta(prev, next float64) float64 {
	if prev == 0 {
		return 0
	}
	return (next - prev) / prev * 100
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer.Get(r.PathValue("id"))
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown trace %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, tr.JSON())
}
