package service

import (
	"time"

	"paropt/internal/obs/workload"
	"paropt/internal/parser"
	"paropt/internal/query"
)

// Background drift sweeper: the feedback loop from measured accuracy back
// into the plan cache. Explain-analyze runs feed each fingerprint's EWMA row
// q-error (profiler.ObserveAccuracy); when a template's EWMA crosses the
// drift threshold its cached cover set was computed from statistics that no
// longer match measured reality. The sweeper re-runs the DP search for the
// hottest drifted templates against the *current default catalog* — so after
// an operator refreshes statistics (RefreshCatalog), hot templates get warm
// entries under the new version before the next request pays a search.
//
// Sweeps run on the sweeper goroutine, not through the worker pool: they are
// background work that must not consume the pool's admission slots, and
// SweepLimit bounds how many searches one pass may run.

// sweeperLoop ticks until Close.
func (s *Service) sweeperLoop(interval time.Duration) {
	defer s.sweepWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-t.C:
			s.SweepNow()
		}
	}
}

// SweepNow runs one sweeper pass immediately (also the loop body): it
// re-optimizes up to SweepLimit drifted templates, hottest first, and
// returns how many cache entries it replaced. Exported so tests and
// operators can force a pass without waiting for the ticker.
func (s *Service) SweepNow() int {
	if s.prof == nil {
		return 0
	}
	s.met.SweepRuns.Add(1)
	n := 0
	for _, d := range s.prof.Drifted() {
		if n >= s.cfg.SweepLimit {
			break
		}
		if s.sweepOne(d) {
			n++
		}
	}
	return n
}

// sweepOne re-optimizes one drifted template against the current default
// catalog. Whatever the outcome, the profile's drift mark is cleared: a
// successful sweep installed a fresh cover set whose accuracy must be
// re-measured, and a template that no longer parses (relation dropped)
// must not be retried forever.
func (s *Service) sweepOne(d workload.ProfileSnapshot) bool {
	s.mu.RLock()
	version := s.defaultVersion
	cat := s.catalogs[version]
	closed := s.closed
	s.mu.RUnlock()
	if closed || cat == nil || d.Query == "" {
		return false
	}
	q, err := parser.ParseQuery(d.Query, cat)
	if err != nil {
		s.prof.MarkSwept(d.Fingerprint)
		s.logger.Warn("sweep: template no longer parses", "fingerprint", d.Fingerprint, "err", err)
		return false
	}
	fp := query.Fingerprint(q)
	entry, err := s.runSearch(cat, q, s.placedConfig(version), nil, "sweeper", version)
	s.prof.MarkSwept(d.Fingerprint)
	if err != nil {
		s.logger.Warn("sweep: search failed", "fingerprint", fp, "err", err)
		return false
	}
	s.cache.Put(s.cacheKey(fp, version), entry)
	s.met.SweepReoptimized.Add(1)
	s.logger.Info("sweep: re-optimized", "fingerprint", fp, "catalog", version,
		"frontier", len(entry.cover.Frontier))
	return true
}
