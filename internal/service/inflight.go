package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/obs/accuracy"
	"paropt/internal/plan"
)

// Cancellation reasons, used as the {reason} label of
// paroptd_query_cancelled_total and recorded on the completion log.
const (
	CancelClient   = "client"   // DELETE /debug/queries/{id}
	CancelDeadline = "deadline" // request deadline (Config.RequestTimeout)
	CancelShutdown = "shutdown" // daemon drain timeout at shutdown
)

// QueryCancelledError is the cause installed on a query's context when it is
// cancelled through the registry; it propagates out of the engine's
// checkpoints as the request error. HTTP maps client cancellations to 499.
type QueryCancelledError struct{ Reason string }

func (e *QueryCancelledError) Error() string {
	return "service: query cancelled (" + e.Reason + ")"
}

// progressDriftThreshold is how far (in fractions of the predicted
// timeline) measured progress may fall behind the model's schedule before
// the query is flagged as drifting.
const progressDriftThreshold = 0.15

// inflightQuery is one live entry of the registry: identity and phase from
// the serving path, plus — once execution starts — the live engine counters
// and the plan's predicted (tf, tl) timeline to map them against.
type inflightQuery struct {
	id    int64
	kind  string
	start time.Time

	// cancelCause cancels the request context with a typed cause;
	// stopTimeout releases the deadline timer. Both set at admission.
	cancelCause context.CancelCauseFunc
	stopTimeout context.CancelFunc

	mu          sync.Mutex
	query       string
	fingerprint string
	catalog     string
	phase       string // parse → search → select → execute
	distributed bool
	reason      string // cancellation reason, "" while running
	stats       *engine.ExecStats
	timeline    []accuracy.OpTimeline
	predRT      float64
	cluster     *exchange.Cluster
}

func (q *inflightQuery) setPhase(p string) {
	q.mu.Lock()
	q.phase = p
	q.mu.Unlock()
}

func (q *inflightQuery) note(fp, catalog string) {
	q.mu.Lock()
	q.fingerprint, q.catalog = fp, catalog
	q.mu.Unlock()
}

// attachExec arms live progress: the pre-registered stats collector the
// executor will update, the predicted per-operator timeline, and (for
// distributed runs) the cluster to tear down on cancellation.
func (q *inflightQuery) attachExec(stats *engine.ExecStats, tl []accuracy.OpTimeline, predRT float64, cluster *exchange.Cluster) {
	q.mu.Lock()
	q.stats, q.timeline, q.predRT, q.cluster = stats, tl, predRT, cluster
	q.mu.Unlock()
}

// cancel installs the typed cause and cancels the context. The first reason
// wins; later cancels are no-ops.
func (q *inflightQuery) cancel(reason string) {
	q.mu.Lock()
	if q.reason != "" {
		q.mu.Unlock()
		return
	}
	q.reason = reason
	cluster := q.cluster
	q.mu.Unlock()
	q.cancelCause(&QueryCancelledError{Reason: reason})
	if cluster != nil {
		// The context's AfterFunc also triggers this, but calling it here
		// makes the worker-side teardown independent of whether execution
		// reached the analyze phase yet.
		cluster.Cancel()
	}
}

// OpProgressSnapshot is one operator's live progress joined against its
// predicted cardinality (/debug/queries).
type OpProgressSnapshot struct {
	Label    string  `json:"label"`
	Rows     int64   `json:"rows"`
	PredRows int64   `json:"predRows"`
	Percent  float64 `json:"percent"`
	Done     bool    `json:"done,omitempty"`
	FirstMs  float64 `json:"firstMs,omitempty"`
	LastMs   float64 `json:"lastMs,omitempty"`
}

// ProgressSnapshot maps the engine's lock-free live counters onto the
// plan's predicted (tf, tl) timeline: per-operator percent complete, a
// model-predicted wall time calibrated from the operators observed so far,
// and the remaining-time estimate derived from it.
type ProgressSnapshot struct {
	// Percent is overall fraction complete in [0,1]: predicted-row-weighted
	// mean of per-operator progress.
	Percent float64 `json:"percent"`
	// Calibrated reports whether at least one operator measurement anchored
	// the model units to seconds (the live analogue of the accuracy report's
	// Scale).
	Calibrated bool `json:"calibrated,omitempty"`
	// PredictedWallMs is the calibrated end-to-end prediction; 0 before
	// calibration.
	PredictedWallMs float64 `json:"predictedWallMs,omitempty"`
	// ETAMs estimates remaining milliseconds (model-predicted when
	// calibrated, rows-extrapolated otherwise); -1 when unknown.
	ETAMs float64 `json:"etaMs"`
	// Drift is set when measured progress has fallen more than 15 points of
	// the predicted timeline behind the model's schedule.
	Drift bool                 `json:"drift,omitempty"`
	Ops   []OpProgressSnapshot `json:"ops,omitempty"`
}

// QuerySnapshot is one in-flight query's public state (/debug/queries).
type QuerySnapshot struct {
	ID          int64             `json:"id"`
	Kind        string            `json:"kind"`
	Query       string            `json:"query"`
	Fingerprint string            `json:"fingerprint,omitempty"`
	Catalog     string            `json:"catalog,omitempty"`
	Phase       string            `json:"phase"`
	Distributed bool              `json:"distributed,omitempty"`
	Start       time.Time         `json:"start"`
	ElapsedMs   float64           `json:"elapsedMs"`
	Cancelled   string            `json:"cancelled,omitempty"`
	Progress    *ProgressSnapshot `json:"progress,omitempty"`
}

// snapshot samples the query's state without stalling its execution: the
// engine counters are atomics, so holding q.mu never blocks an operator.
func (q *inflightQuery) snapshot(now time.Time) QuerySnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	snap := QuerySnapshot{
		ID:          q.id,
		Kind:        q.kind,
		Query:       q.query,
		Fingerprint: q.fingerprint,
		Catalog:     q.catalog,
		Phase:       q.phase,
		Distributed: q.distributed,
		Start:       q.start,
		ElapsedMs:   float64(now.Sub(q.start)) / 1e6,
		Cancelled:   q.reason,
	}
	if q.stats != nil && len(q.timeline) > 0 {
		snap.Progress = liveProgress(q.stats, q.timeline, q.predRT, now)
	}
	return snap
}

// liveProgress joins one sample of the engine's live counters against the
// predicted timeline. Calibration anchors model units to seconds by
// position: every finished operator pins the query at least at its
// predicted last-tuple time, every running one interpolates between its
// (tf, tl) pair by row progress, and the furthest such point is where the
// query currently sits on the model's own timeline. Seconds per model unit
// is then simply elapsed over position — re-derived at every sample, so the
// estimate keeps correcting itself as slower downstream operators come into
// view (a frozen early ratio would lock in the speed of the cheap scans).
// Progress itself is row-based: rows produced over predicted cardinality,
// clamped, weighted by predicted rows.
func liveProgress(stats *engine.ExecStats, tl []accuracy.OpTimeline, predRT float64, now time.Time) *ProgressSnapshot {
	prog := stats.Progress()
	if len(prog) == 0 {
		return &ProgressSnapshot{ETAMs: -1}
	}
	started := stats.Started()
	var elapsed time.Duration
	if !started.IsZero() {
		elapsed = now.Sub(started)
	}
	byNode := make(map[*plan.Node]engine.NodeProgress, len(prog))
	for _, p := range prog {
		byNode[p.Node] = p
	}
	ps := &ProgressSnapshot{ETAMs: -1}
	var wsum, wdone float64
	var pos float64 // current position on the model timeline, in model units
	for _, t := range tl {
		p, ok := byNode[t.Node]
		if !ok {
			continue
		}
		op := OpProgressSnapshot{
			Label:    p.Label,
			Rows:     p.Rows,
			PredRows: t.PredRows,
			Done:     p.Last > 0,
			FirstMs:  float64(p.First) / 1e6,
			LastMs:   float64(p.Last) / 1e6,
		}
		switch {
		case op.Done:
			op.Percent = 1
		case t.PredRows > 0:
			op.Percent = float64(p.Rows) / float64(t.PredRows)
			if op.Percent > 1 {
				op.Percent = 1
			}
		}
		if w := float64(t.PredRows); w > 0 {
			wsum += w
			wdone += w * op.Percent
		}
		switch {
		case op.Done:
			if t.PredLast > pos {
				pos = t.PredLast
			}
		case p.First > 0:
			if at := t.PredFirst + op.Percent*(t.PredLast-t.PredFirst); at > pos {
				pos = at
			}
		}
		ps.Ops = append(ps.Ops, op)
	}
	if wsum > 0 {
		ps.Percent = wdone / wsum
	}
	if pos > 0 && predRT > 0 && elapsed > 0 {
		if pos > predRT {
			pos = predRT
		}
		scale := elapsed.Seconds() / pos
		ps.Calibrated = true
		ps.PredictedWallMs = predRT * scale * 1e3
		eta := ps.PredictedWallMs - float64(elapsed)/1e6
		if eta < 0 {
			eta = 0
		}
		ps.ETAMs = eta
		// Drift: where the model says we are on its own timeline vs where
		// row progress says we are.
		ps.Drift = pos/predRT-ps.Percent > progressDriftThreshold
	} else if ps.Percent > 0 && elapsed > 0 {
		// Uncalibrated fallback: extrapolate rows linearly.
		ps.ETAMs = float64(elapsed) / 1e6 * (1 - ps.Percent) / ps.Percent
	}
	return ps
}

// inflightLogRecord is one JSONL line of the completion log
// (Config.InflightLogPath): every query leaves exactly one record when it
// finishes, succeeds or not.
type inflightLogRecord struct {
	Time        time.Time `json:"time"`
	ID          int64     `json:"id"`
	Kind        string    `json:"kind"`
	Fingerprint string    `json:"fingerprint,omitempty"`
	Catalog     string    `json:"catalog,omitempty"`
	Phase       string    `json:"phase"`
	ElapsedMs   float64   `json:"elapsedMs"`
	Cancelled   string    `json:"cancelled,omitempty"`
	Error       string    `json:"error,omitempty"`
}

// inflightRegistry tracks every request currently inside the service. IDs
// are dense and monotonic for the daemon's lifetime, so operators can
// reference them across /debug/queries calls and DELETEs.
type inflightRegistry struct {
	mu      sync.Mutex
	nextID  int64
	queries map[int64]*inflightQuery

	logMu sync.Mutex
	logF  *os.File
}

func newInflightRegistry(path string) (*inflightRegistry, error) {
	r := &inflightRegistry{queries: make(map[int64]*inflightQuery)}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		r.logF = f
	}
	return r, nil
}

// add admits one request. cancelCause/stopTimeout release the request's
// context when the query finishes or is cancelled.
func (r *inflightRegistry) add(kind, query string, distributed bool, cancelCause context.CancelCauseFunc, stopTimeout context.CancelFunc) *inflightQuery {
	q := &inflightQuery{
		kind:        kind,
		query:       query,
		distributed: distributed,
		start:       time.Now(),
		phase:       "parse",
		cancelCause: cancelCause,
		stopTimeout: stopTimeout,
	}
	r.mu.Lock()
	r.nextID++
	q.id = r.nextID
	r.queries[q.id] = q
	r.mu.Unlock()
	return q
}

// finish retires a query: removes it, releases its context, appends the
// completion record, and returns the cancellation reason ("" for a normal
// finish) so the caller can bump the right counter. Deadline expiry counts
// as a cancellation even though nobody called cancel explicitly.
func (r *inflightRegistry) finish(q *inflightQuery, err error) string {
	if q == nil {
		return ""
	}
	r.mu.Lock()
	delete(r.queries, q.id)
	r.mu.Unlock()
	q.cancelCause(nil)
	q.stopTimeout()
	q.mu.Lock()
	reason := q.reason
	if reason == "" && errors.Is(err, context.DeadlineExceeded) {
		reason = CancelDeadline
		q.reason = reason
	}
	rec := inflightLogRecord{
		Time:        time.Now(),
		ID:          q.id,
		Kind:        q.kind,
		Fingerprint: q.fingerprint,
		Catalog:     q.catalog,
		Phase:       q.phase,
		ElapsedMs:   float64(time.Since(q.start)) / 1e6,
		Cancelled:   reason,
	}
	q.mu.Unlock()
	if err != nil {
		rec.Error = err.Error()
	}
	if r.logF != nil {
		if b, jerr := json.Marshal(rec); jerr == nil {
			r.logMu.Lock()
			fmt.Fprintf(r.logF, "%s\n", b)
			r.logMu.Unlock()
		}
	}
	return reason
}

func (r *inflightRegistry) get(id int64) *inflightQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries[id]
}

func (r *inflightRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// snapshots returns every in-flight query's state, oldest first.
func (r *inflightRegistry) snapshots() []QuerySnapshot {
	r.mu.Lock()
	qs := make([]*inflightQuery, 0, len(r.queries))
	for _, q := range r.queries {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	sort.Slice(qs, func(i, j int) bool { return qs[i].id < qs[j].id })
	now := time.Now()
	out := make([]QuerySnapshot, 0, len(qs))
	for _, q := range qs {
		out = append(out, q.snapshot(now))
	}
	return out
}

// cancel cancels one query by ID; false when no such query is in flight.
func (r *inflightRegistry) cancel(id int64, reason string) bool {
	q := r.get(id)
	if q == nil {
		return false
	}
	q.cancel(reason)
	return true
}

// cancelAll cancels every in-flight query and returns how many.
func (r *inflightRegistry) cancelAll(reason string) int {
	r.mu.Lock()
	qs := make([]*inflightQuery, 0, len(r.queries))
	for _, q := range r.queries {
		qs = append(qs, q)
	}
	r.mu.Unlock()
	for _, q := range qs {
		q.cancel(reason)
	}
	return len(qs)
}

// driftCount is how many in-flight queries currently report progress drift
// (the paroptd_query_progress_drift gauge).
func (r *inflightRegistry) driftCount() int {
	n := 0
	for _, s := range r.snapshots() {
		if s.Progress != nil && s.Progress.Drift {
			n++
		}
	}
	return n
}

func (r *inflightRegistry) close() {
	if r == nil || r.logF == nil {
		return
	}
	r.logMu.Lock()
	_ = r.logF.Close()
	r.logF = nil
	r.logMu.Unlock()
}
