package service

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent searches for the same cache key: the
// first caller (the leader) runs the search; followers block until the
// leader finishes and share its result. Unlike x/sync/singleflight,
// followers honor their own context — a follower whose deadline fires
// stops waiting without cancelling the leader's search (which completes
// and populates the cache for everyone else).
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done  chan struct{}
	entry *cacheEntry
	err   error
}

// Do runs fn once per key among concurrent callers. shared reports whether
// this caller was a follower (joined another caller's execution).
func (g *flightGroup) Do(ctx context.Context, key string, fn func() (*cacheEntry, error)) (entry *cacheEntry, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.entry, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.entry, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.entry, false, c.err
}
