package service

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"time"

	"paropt/internal/search"
)

// Plan-change audit log: every time the service's answer for a query
// fingerprint *changes* — the drift sweeper re-optimized it, a statistics
// refresh moved the catalog, or a replay regression was reported — one
// PlanChange records the before/after plan fingerprints, the cost deltas,
// and a structural diff of the join trees. The log is a bounded in-memory
// ring served at /debug/planlog, optionally persisted as JSONL so swaps
// survive a restart for post-hoc audits.

// PlanChange is one recorded plan swap.
type PlanChange struct {
	ID   int64     `json:"id"`
	Time time.Time `json:"time"`
	// Source attributes the swap: "search" (a later request's search chose
	// differently under unchanged inputs — should not happen for a fixed
	// catalog), "refresh" (catalog version moved under the template),
	// "sweeper" (drift re-optimization), "replay" (a replay run reported a
	// regression against a recorded log).
	Source      string `json:"source"`
	Fingerprint string `json:"fingerprint"`
	// PrevCatalog/Catalog are the catalog versions before and after.
	PrevCatalog string `json:"prevCatalog,omitempty"`
	Catalog     string `json:"catalog"`
	// PrevPlan/NewPlan are the plan signatures (join trees in functional
	// notation).
	PrevPlan string `json:"prevPlan"`
	NewPlan  string `json:"newPlan"`
	// Cost deltas: estimated response time and work before and after.
	PrevRT   float64 `json:"prevRT"`
	NewRT    float64 `json:"newRT"`
	PrevWork float64 `json:"prevWork"`
	NewWork  float64 `json:"newWork"`
	// Diff is the structural plan diff: tree-rendering lines only in the
	// previous plan ("- ") or only in the new one ("+ ").
	Diff []string `json:"diff,omitempty"`
}

// planLog is the bounded ring plus the optional JSONL persister. A nil
// *planLog is disabled: every method is a cheap no-op.
type planLog struct {
	mu      sync.Mutex
	cap     int
	nextID  int64
	entries []PlanChange
	file    *os.File
}

// newPlanLog builds a log retaining up to capacity changes; a non-empty path
// additionally appends one JSON line per change to that file.
func newPlanLog(capacity int, path string) (*planLog, error) {
	l := &planLog{cap: capacity}
	if path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.file = f
	}
	return l, nil
}

// add records one change and persists it when a file is attached.
func (l *planLog) add(c PlanChange) PlanChange {
	if l == nil {
		return c
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextID++
	c.ID = l.nextID
	c.Time = time.Now()
	l.entries = append(l.entries, c)
	if len(l.entries) > l.cap {
		l.entries = append(l.entries[:0:0], l.entries[len(l.entries)-l.cap:]...)
	}
	if l.file != nil {
		if b, err := json.Marshal(c); err == nil {
			l.file.Write(append(b, '\n')) //nolint:errcheck // audit log is best-effort
		}
	}
	return c
}

// snapshot returns the retained changes newest-first.
func (l *planLog) snapshot() []PlanChange {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PlanChange, 0, len(l.entries))
	for i := len(l.entries) - 1; i >= 0; i-- {
		out = append(out, l.entries[i])
	}
	return out
}

// close releases the JSONL file, if any.
func (l *planLog) close() {
	if l == nil || l.file == nil {
		return
	}
	l.file.Close() //nolint:errcheck
}

// PlanChanges returns the retained audit-log entries, newest first (nil when
// the log is disabled).
func (s *Service) PlanChanges() []PlanChange { return s.planlog.snapshot() }

// prevPlan is the last answer remembered per query fingerprint — the "before"
// side of the next swap.
type prevPlan struct {
	catalog string
	sig     string
	rt      float64
	work    float64
	lines   []string
}

// lastPlansCap bounds the per-fingerprint memory; beyond it an arbitrary
// entry is dropped (the map is advisory — a dropped fingerprint just misses
// one swap's "before" side).
const lastPlansCap = 4096

// notePlan observes the representative plan a fresh search produced for a
// fingerprint and records a PlanChange when it differs from the last one. The
// representative is the frontier's unbounded best (minimum response time):
// the answer an unbounded request would get, which makes swap detection
// independent of per-request bound knobs. A swap seen under a new catalog
// version is reclassified from "search" to "refresh".
func (s *Service) notePlan(source, fp, version string, best *search.Candidate) {
	if s.planlog == nil || best == nil {
		return
	}
	sig := best.Node.String()
	lines := treeLines(best.Node.Indent())
	next := prevPlan{catalog: version, sig: sig, rt: best.RT(), work: best.Work(), lines: lines}

	s.planMu.Lock()
	prev, seen := s.lastPlans[fp]
	if !seen && len(s.lastPlans) >= lastPlansCap {
		for k := range s.lastPlans {
			delete(s.lastPlans, k)
			break
		}
	}
	s.lastPlans[fp] = next
	s.planMu.Unlock()

	if !seen || (prev.sig == sig && prev.catalog == version && prev.rt == next.rt && prev.work == next.work) {
		return
	}
	if source == "search" && prev.catalog != version {
		source = "refresh"
	}
	c := s.planlog.add(PlanChange{
		Source:      source,
		Fingerprint: fp,
		PrevCatalog: prev.catalog,
		Catalog:     version,
		PrevPlan:    prev.sig,
		NewPlan:     sig,
		PrevRT:      prev.rt,
		NewRT:       next.rt,
		PrevWork:    prev.work,
		NewWork:     next.work,
		Diff:        diffLines(prev.lines, lines),
	})
	s.met.notePlanChange(source)
	s.logger.Info("plan change",
		"source", source, "fingerprint", fp,
		"prevRT", prev.rt, "newRT", next.rt,
		"prevWork", prev.work, "newWork", next.work,
		"id", c.ID)
}

// RecordReplayChange feeds one replay-detected regression into the audit log:
// a replayed request whose plan signature no longer matches the recorded one.
// Exported for the replay CLI's in-process mode.
func (s *Service) RecordReplayChange(fingerprint, catalog, recordedPlan, replayedPlan string, recordedRT, replayedRT float64) {
	if s.planlog == nil {
		return
	}
	s.planlog.add(PlanChange{
		Source:      "replay",
		Fingerprint: fingerprint,
		Catalog:     catalog,
		PrevPlan:    recordedPlan,
		NewPlan:     replayedPlan,
		PrevRT:      recordedRT,
		NewRT:       replayedRT,
		Diff:        diffLines([]string{recordedPlan}, []string{replayedPlan}),
	})
	s.met.notePlanChange("replay")
}

// treeLines splits an indented tree rendering into diffable lines.
func treeLines(indent string) []string {
	return strings.Split(strings.TrimRight(indent, "\n"), "\n")
}

// diffLines is a deterministic multiset line diff: lines of prev not in next
// come out "- ", lines of next not in prev "+ ", each side in original order.
func diffLines(prev, next []string) []string {
	prevCount := make(map[string]int, len(prev))
	for _, l := range prev {
		prevCount[l]++
	}
	nextCount := make(map[string]int, len(next))
	for _, l := range next {
		nextCount[l]++
	}
	var out []string
	for _, l := range prev {
		if nextCount[l] > 0 {
			nextCount[l]--
		} else {
			out = append(out, "- "+l)
		}
	}
	for _, l := range next {
		if prevCount[l] > 0 {
			prevCount[l]--
		} else {
			out = append(out, "+ "+l)
		}
	}
	return out
}
