package catalog

import (
	"testing"
	"testing/quick"
)

func twoColRelation(name string, card int64) Relation {
	return Relation{
		Name: name,
		Columns: []Column{
			{Name: "a", NDV: card, Width: 4},
			{Name: "b", NDV: card / 10, Width: 8},
		},
		Card:  card,
		Pages: card / 100,
	}
}

func TestAddRelation(t *testing.T) {
	c := New()
	r, err := c.AddRelation(twoColRelation("R", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "R" || r.Card != 1000 {
		t.Fatalf("unexpected relation %+v", r)
	}
	got, ok := c.Relation("R")
	if !ok || got != r {
		t.Fatal("Relation lookup failed")
	}
	if c.NumRelations() != 1 {
		t.Fatalf("NumRelations = %d, want 1", c.NumRelations())
	}
}

func TestAddRelationErrors(t *testing.T) {
	c := New()
	cases := []struct {
		name string
		rel  Relation
	}{
		{"empty name", Relation{Columns: []Column{{Name: "a"}}, Card: 1}},
		{"no columns", Relation{Name: "R", Card: 1}},
		{"unnamed column", Relation{Name: "R", Columns: []Column{{}}, Card: 1}},
		{"duplicate column", Relation{Name: "R", Columns: []Column{{Name: "a"}, {Name: "a"}}, Card: 1}},
		{"bad sortedBy", Relation{Name: "R", Columns: []Column{{Name: "a"}}, Card: 1, SortedBy: "zz"}},
	}
	for _, tc := range cases {
		if _, err := c.AddRelation(tc.rel); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	c.MustAddRelation(twoColRelation("R", 10))
	if _, err := c.AddRelation(twoColRelation("R", 10)); err == nil {
		t.Error("duplicate relation: expected error")
	}
}

func TestStatClamping(t *testing.T) {
	c := New()
	r := c.MustAddRelation(Relation{
		Name:    "R",
		Columns: []Column{{Name: "a", NDV: 9999}, {Name: "b", NDV: -5, Width: -1}},
		Card:    100,
		Pages:   0,
	})
	if got := r.MustColumn("a").NDV; got != 100 {
		t.Errorf("NDV clamped to card: got %d, want 100", got)
	}
	if got := r.MustColumn("b").NDV; got != 1 {
		t.Errorf("negative NDV clamped to 1: got %d", got)
	}
	if got := r.MustColumn("b").Width; got != 4 {
		t.Errorf("non-positive width defaulted: got %d, want 4", got)
	}
	if r.Pages != 1 {
		t.Errorf("Pages clamped to 1, got %d", r.Pages)
	}
}

func TestColumnLookup(t *testing.T) {
	c := New()
	r := c.MustAddRelation(twoColRelation("R", 1000))
	if _, ok := r.Column("nope"); ok {
		t.Error("Column(nope) should report false")
	}
	if !r.HasColumn("a") || r.HasColumn("zz") {
		t.Error("HasColumn wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustColumn on missing column should panic")
		}
	}()
	r.MustColumn("zz")
}

func TestTupleWidth(t *testing.T) {
	c := New()
	r := c.MustAddRelation(twoColRelation("R", 1000))
	if got := r.TupleWidth(); got != 12 {
		t.Errorf("TupleWidth = %d, want 12", got)
	}
}

func TestAddIndex(t *testing.T) {
	c := New()
	c.MustAddRelation(twoColRelation("R", 100000))
	ix, err := c.AddIndex(Index{Name: "R_a", Relation: "R", Columns: []string{"a"}, Clustered: true, Disk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Pages != 100000/400+1 {
		t.Errorf("default index pages = %d", ix.Pages)
	}
	got, ok := c.Index("R_a")
	if !ok || got != ix {
		t.Fatal("Index lookup failed")
	}
	on := c.IndexesOn("R")
	if len(on) != 1 || on[0] != ix {
		t.Fatalf("IndexesOn = %v", on)
	}
}

func TestAddIndexErrors(t *testing.T) {
	c := New()
	c.MustAddRelation(twoColRelation("R", 100))
	cases := []Index{
		{Relation: "R", Columns: []string{"a"}},              // no name
		{Name: "i1", Relation: "S", Columns: []string{"a"}},  // unknown relation
		{Name: "i2", Relation: "R"},                          // no columns
		{Name: "i3", Relation: "R", Columns: []string{"zz"}}, // unknown column
	}
	for i, ix := range cases {
		if _, err := c.AddIndex(ix); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	c.MustAddIndex(Index{Name: "dup", Relation: "R", Columns: []string{"a"}})
	if _, err := c.AddIndex(Index{Name: "dup", Relation: "R", Columns: []string{"b"}}); err == nil {
		t.Error("duplicate index name: expected error")
	}
}

func TestIndexesOnSorted(t *testing.T) {
	c := New()
	c.MustAddRelation(twoColRelation("R", 100))
	c.MustAddIndex(Index{Name: "zz", Relation: "R", Columns: []string{"a"}})
	c.MustAddIndex(Index{Name: "aa", Relation: "R", Columns: []string{"b"}})
	on := c.IndexesOn("R")
	if len(on) != 2 || on[0].Name != "aa" || on[1].Name != "zz" {
		t.Fatalf("IndexesOn not sorted: %v, %v", on[0].Name, on[1].Name)
	}
	if got := c.IndexesOn("S"); len(got) != 0 {
		t.Errorf("IndexesOn unknown relation = %v, want empty", got)
	}
}

func TestRelationNamesSorted(t *testing.T) {
	c := New()
	c.MustAddRelation(twoColRelation("B", 10))
	c.MustAddRelation(twoColRelation("A", 10))
	names := c.RelationNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("RelationNames = %v", names)
	}
}

func TestMustRelationPanics(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MustRelation("nope")
}

func TestPagesForTuples(t *testing.T) {
	c := New() // 8192-byte pages
	if got := c.PagesForTuples(0, 8); got != 1 {
		t.Errorf("zero tuples = %d pages, want 1", got)
	}
	if got := c.PagesForTuples(1024, 8); got != 1 {
		t.Errorf("1024×8B = %d pages, want 1", got)
	}
	if got := c.PagesForTuples(1025, 8); got != 2 {
		t.Errorf("1025×8B = %d pages, want 2", got)
	}
	if got := c.PagesForTuples(10, 100000); got != 10 {
		t.Errorf("wide tuples: %d pages, want 10 (one per tuple)", got)
	}
}

func TestJoinSelectivity(t *testing.T) {
	a := Column{NDV: 100}
	b := Column{NDV: 1000}
	if got := JoinSelectivity(a, b); got != 0.001 {
		t.Errorf("JoinSelectivity = %v, want 0.001", got)
	}
	if got := JoinSelectivity(Column{}, Column{}); got != 1 {
		t.Errorf("degenerate NDV selectivity = %v, want 1", got)
	}
}

func TestEqSelectivity(t *testing.T) {
	if got := EqSelectivity(Column{NDV: 50}); got != 0.02 {
		t.Errorf("EqSelectivity = %v, want 0.02", got)
	}
	if got := EqSelectivity(Column{NDV: 0}); got != 1 {
		t.Errorf("EqSelectivity(0) = %v, want 1", got)
	}
}

func TestJoinCardFloor(t *testing.T) {
	if got := JoinCard(10, 10, 0.0001); got != 1 {
		t.Errorf("JoinCard floor = %d, want 1", got)
	}
	if got := JoinCard(100, 200, 0.01); got != 200 {
		t.Errorf("JoinCard = %d, want 200", got)
	}
}

func TestNDVAfter(t *testing.T) {
	if got := NDVAfter(1000, 10); got != 10 {
		t.Errorf("NDVAfter = %d, want 10", got)
	}
	if got := NDVAfter(5, 10); got != 5 {
		t.Errorf("NDVAfter = %d, want 5", got)
	}
	if got := NDVAfter(0, 0); got != 1 {
		t.Errorf("NDVAfter floor = %d, want 1", got)
	}
}

// Property: selectivities are always in (0, 1] and JoinCard is monotone in
// its selectivity argument.
func TestQuickSelectivityBounds(t *testing.T) {
	f := func(n1, n2 int32, c1, c2 int32) bool {
		a := Column{NDV: int64(n1)}
		b := Column{NDV: int64(n2)}
		s := JoinSelectivity(a, b)
		if s <= 0 || s > 1 {
			return false
		}
		lc, rc := int64(c1%100000), int64(c2%100000)
		if lc < 0 {
			lc = -lc
		}
		if rc < 0 {
			rc = -rc
		}
		return JoinCard(lc, rc, s) <= JoinCard(lc, rc, 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
