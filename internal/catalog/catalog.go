// Package catalog models the database schema and the statistics the
// optimizer consumes: relation cardinalities, page counts, per-column
// distinct-value counts (NDV), and index metadata including the disk on
// which each object is stored.
//
// The statistics model follows System R [SAC+79] conventions, which the
// paper builds on: join selectivity between columns a and b is
// 1/max(NDV(a), NDV(b)), equality-selection selectivity on column a is
// 1/NDV(a), and cardinalities propagate multiplicatively.
package catalog

import (
	"fmt"
	"sort"
)

// Column describes one attribute of a relation.
type Column struct {
	// Name is unique within the relation.
	Name string
	// NDV is the number of distinct values (≥ 1). It drives selectivity.
	NDV int64
	// Width is the byte width used to derive intermediate-result pages.
	Width int
	// Skew makes generated values Zipf-distributed with exponent 1+Skew
	// (0 = uniform). The optimizer's statistics ignore it — deliberately:
	// the paper's uniformity assumption "loses some ability to model hot
	// spots" (§5.2.1), and the skew experiments quantify that loss.
	Skew float64
}

// Index describes a secondary or primary access path on a relation.
type Index struct {
	// Name is unique within the catalog.
	Name string
	// Relation is the indexed relation's name.
	Relation string
	// Columns is the key, ordered most- to least-significant.
	Columns []string
	// Clustered reports whether the base tuples are stored in key order, so
	// a range scan reads sequential pages rather than one page per tuple.
	Clustered bool
	// Covering marks an index whose entries carry every column a scan
	// needs, so index-only scans skip the heap entirely (Example 3 of the
	// paper computes its query "purely by scanning indexes").
	Covering bool
	// Disk is the placement of the index structure (a disk number the
	// machine maps to a resource).
	Disk int
	// Pages is the size of the index structure itself.
	Pages int64
}

// Relation describes a base table with its statistics and placement.
type Relation struct {
	// Name is unique within the catalog.
	Name string
	// Columns in declaration order.
	Columns []Column
	// Card is the tuple count.
	Card int64
	// Pages is the page count of the heap.
	Pages int64
	// Disk is the placement of the heap (a disk number; the first fragment
	// when declustered).
	Disk int
	// Decluster is the number of horizontal fragments the heap is hash-
	// partitioned into, Gamma-style, on consecutive disks starting at Disk.
	// Values < 2 mean the relation lives on a single disk. Declustering is
	// what lets a cloned scan read in parallel instead of queueing on one
	// spindle.
	Decluster int
	// SortedBy optionally names a column the heap is physically sorted by
	// (a free interesting order); empty if none.
	SortedBy string

	colIndex map[string]int
}

// Column returns the named column and whether it exists.
func (r *Relation) Column(name string) (Column, bool) {
	i, ok := r.colIndex[name]
	if !ok {
		return Column{}, false
	}
	return r.Columns[i], true
}

// MustColumn returns the named column, panicking if absent. Use only where
// the name was produced by the catalog itself.
func (r *Relation) MustColumn(name string) Column {
	c, ok := r.Column(name)
	if !ok {
		panic(fmt.Sprintf("catalog: relation %s has no column %s", r.Name, name))
	}
	return c
}

// HasColumn reports whether the relation declares the column.
func (r *Relation) HasColumn(name string) bool {
	_, ok := r.colIndex[name]
	return ok
}

// TupleWidth is the total byte width of all columns (minimum 1).
func (r *Relation) TupleWidth() int {
	w := 0
	for _, c := range r.Columns {
		w += c.Width
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Catalog is a collection of relations and indexes.
type Catalog struct {
	relations map[string]*Relation
	indexes   map[string]*Index
	byRel     map[string][]*Index
	// PageBytes is the page size used to derive pages for intermediate
	// results; defaults to 8192.
	PageBytes int
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		relations: make(map[string]*Relation),
		indexes:   make(map[string]*Index),
		byRel:     make(map[string][]*Index),
		PageBytes: 8192,
	}
}

// AddRelation validates and registers a relation. Statistics are clamped to
// sane minimums (Card ≥ 1, Pages ≥ 1, NDV in [1, Card]).
func (c *Catalog) AddRelation(r Relation) (*Relation, error) {
	if r.Name == "" {
		return nil, fmt.Errorf("catalog: relation needs a name")
	}
	if _, dup := c.relations[r.Name]; dup {
		return nil, fmt.Errorf("catalog: duplicate relation %s", r.Name)
	}
	if len(r.Columns) == 0 {
		return nil, fmt.Errorf("catalog: relation %s needs at least one column", r.Name)
	}
	if r.Card < 1 {
		r.Card = 1
	}
	if r.Pages < 1 {
		r.Pages = 1
	}
	r.colIndex = make(map[string]int, len(r.Columns))
	for i := range r.Columns {
		col := &r.Columns[i]
		if col.Name == "" {
			return nil, fmt.Errorf("catalog: relation %s has an unnamed column", r.Name)
		}
		if _, dup := r.colIndex[col.Name]; dup {
			return nil, fmt.Errorf("catalog: relation %s duplicates column %s", r.Name, col.Name)
		}
		if col.NDV < 1 {
			col.NDV = 1
		}
		if col.NDV > r.Card {
			col.NDV = r.Card
		}
		if col.Width < 1 {
			col.Width = 4
		}
		r.colIndex[col.Name] = i
	}
	if r.SortedBy != "" {
		if _, ok := r.colIndex[r.SortedBy]; !ok {
			return nil, fmt.Errorf("catalog: relation %s sorted by unknown column %s", r.Name, r.SortedBy)
		}
	}
	rel := r
	c.relations[r.Name] = &rel
	return &rel, nil
}

// MustAddRelation is AddRelation that panics on error; for tests and
// hand-built example catalogs.
func (c *Catalog) MustAddRelation(r Relation) *Relation {
	rel, err := c.AddRelation(r)
	if err != nil {
		panic(err)
	}
	return rel
}

// AddIndex validates and registers an index over an existing relation.
func (c *Catalog) AddIndex(ix Index) (*Index, error) {
	if ix.Name == "" {
		return nil, fmt.Errorf("catalog: index needs a name")
	}
	if _, dup := c.indexes[ix.Name]; dup {
		return nil, fmt.Errorf("catalog: duplicate index %s", ix.Name)
	}
	rel, ok := c.relations[ix.Relation]
	if !ok {
		return nil, fmt.Errorf("catalog: index %s on unknown relation %s", ix.Name, ix.Relation)
	}
	if len(ix.Columns) == 0 {
		return nil, fmt.Errorf("catalog: index %s needs at least one column", ix.Name)
	}
	for _, col := range ix.Columns {
		if !rel.HasColumn(col) {
			return nil, fmt.Errorf("catalog: index %s on unknown column %s.%s", ix.Name, ix.Relation, col)
		}
	}
	if ix.Pages < 1 {
		// A B-tree over Card keys is roughly Card/400 leaf pages.
		ix.Pages = rel.Card/400 + 1
	}
	idx := ix
	c.indexes[ix.Name] = &idx
	c.byRel[ix.Relation] = append(c.byRel[ix.Relation], &idx)
	return &idx, nil
}

// MustAddIndex is AddIndex that panics on error.
func (c *Catalog) MustAddIndex(ix Index) *Index {
	idx, err := c.AddIndex(ix)
	if err != nil {
		panic(err)
	}
	return idx
}

// Relation returns the named relation and whether it exists.
func (c *Catalog) Relation(name string) (*Relation, bool) {
	r, ok := c.relations[name]
	return r, ok
}

// MustRelation returns the named relation, panicking if absent.
func (c *Catalog) MustRelation(name string) *Relation {
	r, ok := c.relations[name]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown relation %s", name))
	}
	return r
}

// Index returns the named index and whether it exists.
func (c *Catalog) Index(name string) (*Index, bool) {
	ix, ok := c.indexes[name]
	return ix, ok
}

// IndexesOn returns the indexes of a relation, sorted by name for
// determinism. The returned slice is fresh and may be modified.
func (c *Catalog) IndexesOn(relation string) []*Index {
	src := c.byRel[relation]
	out := make([]*Index, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RelationNames returns all relation names sorted.
func (c *Catalog) RelationNames() []string {
	names := make([]string, 0, len(c.relations))
	for n := range c.relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NumRelations is the number of registered relations.
func (c *Catalog) NumRelations() int { return len(c.relations) }

// PagesForTuples converts a tuple count of the given width into pages under
// the catalog's page size, rounding up with a 1-page minimum.
func (c *Catalog) PagesForTuples(card int64, width int) int64 {
	if card < 1 {
		return 1
	}
	perPage := int64(c.PageBytes / maxInt(width, 1))
	if perPage < 1 {
		perPage = 1
	}
	return (card + perPage - 1) / perPage
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
