package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Fingerprint hashes everything the optimizer reads from the catalog —
// relations with their statistics and placement, column NDVs and widths,
// and index metadata — into a stable hex digest. It serves as the catalog
// *version* in plan-cache keys: any statistics refresh, schema change, or
// re-placement yields a new fingerprint and therefore invalidates cached
// plans derived from the old statistics.
//
// The digest is independent of declaration order for relations and indexes
// (both are rendered sorted by name); column order within a relation is
// part of the schema and is preserved. Column Skew is included even though
// the estimator ignores it, because the execution substrates read it.
func (c *Catalog) Fingerprint() string {
	var b strings.Builder
	names := c.RelationNames()
	sort.Strings(names)
	for _, name := range names {
		r := c.MustRelation(name)
		fmt.Fprintf(&b, "rel %s card=%d pages=%d disk=%d decluster=%d sorted=%s\n",
			r.Name, r.Card, r.Pages, r.Disk, r.Decluster, r.SortedBy)
		for _, col := range r.Columns {
			fmt.Fprintf(&b, "col %s.%s ndv=%d width=%d skew=%g\n",
				r.Name, col.Name, col.NDV, col.Width, col.Skew)
		}
	}
	idxNames := make([]string, 0, len(c.indexes))
	for n := range c.indexes {
		idxNames = append(idxNames, n)
	}
	sort.Strings(idxNames)
	for _, name := range idxNames {
		ix := c.indexes[name]
		fmt.Fprintf(&b, "idx %s on %s(%s) clustered=%t covering=%t disk=%d pages=%d\n",
			ix.Name, ix.Relation, strings.Join(ix.Columns, ","), ix.Clustered, ix.Covering, ix.Disk, ix.Pages)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
