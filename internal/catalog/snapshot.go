package catalog

import (
	"encoding/json"
	"fmt"
)

// SnapshotDoc is the wire form of a catalog: the full relation and index
// metadata, JSON-encodable. Workers fetch it from the coordinator's
// /cluster/placement endpoint and rebuild an identical catalog with
// FromSnapshot, so worker-side data generation (which reads Card, column
// NDV/Skew, Decluster, SortedBy) produces bit-identical relations to the
// coordinator's — the invariant that makes shipped scans and coordinator
// fallback interchangeable. DDL text would not round-trip here: the schema
// grammar has no syntax for skew or declustering.
type SnapshotDoc struct {
	PageBytes int        `json:"page_bytes"`
	Relations []Relation `json:"relations"`
	Indexes   []Index    `json:"indexes"`
}

// Snapshot captures the catalog's full state in deterministic order.
func (c *Catalog) Snapshot() SnapshotDoc {
	doc := SnapshotDoc{PageBytes: c.PageBytes}
	for _, name := range c.RelationNames() {
		rel := c.relations[name]
		r := *rel
		r.Columns = append([]Column(nil), rel.Columns...)
		r.colIndex = nil
		doc.Relations = append(doc.Relations, r)
		for _, ix := range c.IndexesOn(name) {
			idx := *ix
			idx.Columns = append([]string(nil), ix.Columns...)
			doc.Indexes = append(doc.Indexes, idx)
		}
	}
	return doc
}

// FromSnapshot rebuilds a catalog from a snapshot document.
func FromSnapshot(doc SnapshotDoc) (*Catalog, error) {
	c := New()
	if doc.PageBytes > 0 {
		c.PageBytes = doc.PageBytes
	}
	for _, r := range doc.Relations {
		if _, err := c.AddRelation(r); err != nil {
			return nil, fmt.Errorf("catalog: snapshot: %w", err)
		}
	}
	for _, ix := range doc.Indexes {
		if _, err := c.AddIndex(ix); err != nil {
			return nil, fmt.Errorf("catalog: snapshot: %w", err)
		}
	}
	return c, nil
}

// MarshalSnapshot renders the catalog as snapshot JSON.
func (c *Catalog) MarshalSnapshot() ([]byte, error) {
	return json.Marshal(c.Snapshot())
}

// UnmarshalSnapshot parses snapshot JSON into a fresh catalog.
func UnmarshalSnapshot(data []byte) (*Catalog, error) {
	var doc SnapshotDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("catalog: snapshot: %w", err)
	}
	return FromSnapshot(doc)
}
