package catalog

// Selectivity estimation following System R conventions. These functions are
// pure so the cost model and the search can share them.

// JoinSelectivity estimates the selectivity of an equijoin between two
// columns as 1/max(NDV(a), NDV(b)).
func JoinSelectivity(a, b Column) float64 {
	n := a.NDV
	if b.NDV > n {
		n = b.NDV
	}
	if n < 1 {
		n = 1
	}
	return 1.0 / float64(n)
}

// EqSelectivity estimates the selectivity of column = constant as 1/NDV.
func EqSelectivity(c Column) float64 {
	n := c.NDV
	if n < 1 {
		n = 1
	}
	return 1.0 / float64(n)
}

// JoinCard estimates the output cardinality of joining inputs with the given
// cardinalities through a predicate of the given selectivity, with a 1-tuple
// floor so downstream estimates stay positive.
func JoinCard(leftCard, rightCard int64, sel float64) int64 {
	est := float64(leftCard) * float64(rightCard) * sel
	if est < 1 {
		return 1
	}
	return int64(est)
}

// NDVAfter estimates the distinct-value count of a column after a filter
// reduces the relation to card tuples: min(ndv, card).
func NDVAfter(ndv, card int64) int64 {
	if ndv > card {
		ndv = card
	}
	if ndv < 1 {
		ndv = 1
	}
	return ndv
}
