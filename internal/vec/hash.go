package vec

import "paropt/internal/storage"

// HashTable indexes int64 join keys to the dense row indices of a Buffer
// with chained buckets over flat int32 arrays — no per-key allocations and
// ~10 bytes of metadata per row regardless of key distribution. The keys
// themselves are not stored: the Buffer's key column already holds them, so
// the table keeps only a 32-bit hash per row (probe prefilter and growth
// rehash) and callers verify candidates against their key column. That is
// what lets the symmetric hash join buffer both inputs of a balanced join
// in less heap than one map-based blocking build (see
// engine.TestSymmetricHeapBound).
type HashTable struct {
	heads  []int32  // bucket → 1+index of newest row in chain, 0 = empty
	next   []int32  // row → 1+index of next-older row in its chain, 0 = end
	hashes []uint32 // row → key hash (probe prefilter; rehash on growth)
	mask   uint32
}

// NewHashTable creates an empty table.
func NewHashTable() *HashTable {
	return &HashTable{heads: make([]int32, 16), mask: 15}
}

// Len is the number of inserted rows.
func (h *HashTable) Len() int { return len(h.hashes) }

// Bytes is the table's metadata footprint.
func (h *HashTable) Bytes() int64 {
	return int64(len(h.heads))*4 + int64(cap(h.next))*4 + int64(cap(h.hashes))*4
}

// Insert adds one row under key; rows must be inserted in dense order
// (row == Len() at call time).
func (h *HashTable) Insert(key int64) {
	if len(h.hashes)+1 > 2*len(h.heads) { // chains average ≤ 2
		h.grow()
	}
	row := int32(len(h.hashes))
	hk := uint32(storage.Hash64(key))
	h.hashes = append(h.hashes, hk)
	b := hk & h.mask
	h.next = append(h.next, h.heads[b])
	h.heads[b] = row + 1
}

// Probe iterates the candidate rows for key, newest first, calling fn with
// each dense row index. Candidates are rows whose stored hash equals the
// key's — hash collisions make rare false positives possible, so callers
// must confirm each candidate against the key column they buffered. fn
// returning false stops the scan.
func (h *HashTable) Probe(key int64, fn func(row int32) bool) {
	hk := uint32(storage.Hash64(key))
	for cur := h.heads[hk&h.mask]; cur != 0; {
		r := cur - 1
		if h.hashes[r] == hk && !fn(r) {
			return
		}
		cur = h.next[r]
	}
}

// grow doubles the bucket array and rebuilds the chains from the stored
// hashes.
func (h *HashTable) grow() {
	n := len(h.heads) * 2
	h.mask = uint32(n) - 1
	h.heads = make([]int32, n)
	for r, hk := range h.hashes {
		b := hk & h.mask
		h.next[r] = h.heads[b]
		h.heads[b] = int32(r) + 1
	}
}

// Release drops the table's storage.
func (h *HashTable) Release() {
	h.heads, h.next, h.hashes = nil, nil, nil
	h.mask = 0
}
