package vec

import (
	"math/rand"
	"reflect"
	"testing"

	"paropt/internal/storage"
)

func rows(vals ...[]int64) []storage.Row {
	out := make([]storage.Row, len(vals))
	for i, v := range vals {
		out[i] = storage.Row(v)
	}
	return out
}

func TestFromRowsRoundTrip(t *testing.T) {
	in := rows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30})
	v := FromRows(in)
	if v.Len() != 3 || v.Width() != 2 {
		t.Fatalf("Len/Width = %d/%d, want 3/2", v.Len(), v.Width())
	}
	got := v.AppendRows(nil)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip = %v, want %v", got, in)
	}
	if v.Bytes() != 3*2*8 {
		t.Fatalf("Bytes = %d, want 48", v.Bytes())
	}
}

func TestEmptyVec(t *testing.T) {
	v := FromRows(nil)
	if v.Len() != 0 || v.Bytes() != 0 {
		t.Fatalf("empty vec Len=%d Bytes=%d", v.Len(), v.Bytes())
	}
	if got := v.AppendRows(nil); len(got) != 0 {
		t.Fatalf("empty vec materialized %d rows", len(got))
	}
	var nilVec *Vec
	if nilVec.Len() != 0 {
		t.Fatal("nil vec Len != 0")
	}
}

func TestFilterEqSharesStorage(t *testing.T) {
	v := FromRows(rows([]int64{1, 10}, []int64{2, 20}, []int64{1, 30}))
	f := v.FilterEq(0, 1)
	if f.Len() != 2 {
		t.Fatalf("filtered Len = %d, want 2", f.Len())
	}
	if &f.Cols[0][0] != &v.Cols[0][0] {
		t.Fatal("FilterEq copied column storage")
	}
	want := rows([]int64{1, 10}, []int64{1, 30})
	if got := f.AppendRows(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered rows = %v, want %v", got, want)
	}
	// Filtering an already-selected vec composes.
	f2 := f.FilterEq(1, 30)
	if got := f2.AppendRows(nil); !reflect.DeepEqual(got, rows([]int64{1, 30})) {
		t.Fatalf("double filter = %v", got)
	}
	// Original unchanged.
	if v.Len() != 3 {
		t.Fatal("FilterEq mutated its receiver")
	}
}

// TestFilterEqNoMatches: a filter rejecting every row must yield Len() == 0,
// not a nil selection (which would mean "all rows live").
func TestFilterEqNoMatches(t *testing.T) {
	v := FromRows(rows([]int64{1, 10}, []int64{2, 20}))
	f := v.FilterEq(0, 99)
	if f.Len() != 0 {
		t.Fatalf("no-match filter Len = %d, want 0", f.Len())
	}
	if f.Sel == nil {
		t.Fatal("no-match filter left Sel nil (all rows live)")
	}
	if got := f.AppendRows(nil); len(got) != 0 {
		t.Fatalf("no-match filter materialized %v", got)
	}
	// Filtering the empty result again stays empty.
	if f2 := f.FilterEq(1, 10); f2.Len() != 0 {
		t.Fatalf("refilter of empty = %d rows", f2.Len())
	}
}

func TestCompact(t *testing.T) {
	v := FromRows(rows([]int64{1, 10}, []int64{2, 20}, []int64{1, 30}))
	f := v.FilterEq(0, 1)
	c := f.Compact()
	if c.Sel != nil {
		t.Fatal("Compact left a selection")
	}
	if !reflect.DeepEqual(c.AppendRows(nil), f.AppendRows(nil)) {
		t.Fatal("Compact changed the live rows")
	}
	if d := c.Compact(); d != c {
		t.Fatal("Compact of dense vec should be identity")
	}
}

func TestBatchesSplit(t *testing.T) {
	var in []storage.Row
	for i := int64(0); i < 10; i++ {
		in = append(in, storage.Row{i})
	}
	bs := Batches(in, 4)
	if len(bs) != 3 {
		t.Fatalf("batches = %d, want 3", len(bs))
	}
	var got []storage.Row
	for _, b := range bs {
		got = b.AppendRows(got)
	}
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("batches lost rows: %v", got)
	}
}

func TestBuilderFlushAndSelection(t *testing.T) {
	src := FromRows(rows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	sel := src.FilterEq(0, 2)
	b := NewBuilder(4, 2)
	b.CopyRow(0, sel, 0)  // live row 0 of the selection = physical row 1
	b.CopyPhys(2, src, 0) // physical row 0
	if b.Len() != 1 || b.Full() {
		t.Fatalf("Len=%d Full=%v", b.Len(), b.Full())
	}
	out := b.Flush()
	want := rows([]int64{2, 20, 1, 10})
	if got := out.AppendRows(nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("built = %v, want %v", got, want)
	}
	if b.Len() != 0 {
		t.Fatal("Flush did not reset")
	}
	if b.Flush() != nil {
		t.Fatal("empty Flush should be nil")
	}
}

// TestAppendGather: the columnar join emit — gathered physical indices must
// agree with row-at-a-time copies, including duplicated and out-of-order
// indices (one probe row matching many build rows and vice versa).
func TestAppendGather(t *testing.T) {
	left := FromRows(rows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	buf := NewBuffer(2)
	buf.Append(FromRows(rows([]int64{7, 70}, []int64{8, 80})))

	want := NewBuilder(4, 8)
	b := NewBuilder(4, 8)
	lsel := []int32{2, 0, 0, 1}
	rsel := []int32{1, 0, 1, 0}
	for i := range lsel {
		want.CopyPhys(0, left, int(lsel[i]))
		buf.CopyRowTo(want, 2, int(rsel[i]))
	}
	b.AppendGather(0, left.Cols, lsel)
	buf.Gather(b, 2, rsel)
	if b.Len() != 4 {
		t.Fatalf("gathered Len = %d, want 4", b.Len())
	}
	got, ref := b.Flush().AppendRows(nil), want.Flush().AppendRows(nil)
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("gather = %v, want %v", got, ref)
	}
}

func TestBufferAppendCompactsSelection(t *testing.T) {
	buf := NewBuffer(2)
	v := FromRows(rows([]int64{1, 10}, []int64{2, 20}, []int64{1, 30}))
	start := buf.Append(v.FilterEq(0, 1))
	if start != 0 || buf.Len() != 2 {
		t.Fatalf("start=%d len=%d", start, buf.Len())
	}
	if start = buf.Append(v); start != 2 || buf.Len() != 5 {
		t.Fatalf("second append start=%d len=%d", start, buf.Len())
	}
	if buf.Value(1, 1) != 30 {
		t.Fatalf("Value(1,1) = %d, want 30", buf.Value(1, 1))
	}
	view := buf.Vec(2, 5)
	if !reflect.DeepEqual(view.AppendRows(nil), v.AppendRows(nil)) {
		t.Fatal("Vec view disagrees with appended rows")
	}
	if buf.Bytes() != 5*2*8 {
		t.Fatalf("Bytes = %d", buf.Bytes())
	}
	buf.Release()
	if buf.Len() != 0 || buf.Width() != 2 {
		t.Fatal("Release should zero length, keep width")
	}
}

func TestHashTableProbe(t *testing.T) {
	h := NewHashTable()
	keys := []int64{5, 7, 5, 9, 5}
	for _, k := range keys {
		h.Insert(k)
	}
	// Probe yields hash-equal candidates; callers confirm against the key
	// column they buffered (verify mirrors that contract).
	probe := func(k int64) []int32 {
		var got []int32
		h.Probe(k, func(r int32) bool {
			if keys[r] == k {
				got = append(got, r)
			}
			return true
		})
		return got
	}
	if got := probe(5); !reflect.DeepEqual(got, []int32{4, 2, 0}) {
		t.Fatalf("probe(5) = %v, want [4 2 0]", got)
	}
	if got := probe(9); !reflect.DeepEqual(got, []int32{3}) {
		t.Fatalf("probe(9) = %v", got)
	}
	if got := probe(42); got != nil {
		t.Fatalf("probe of absent key yielded %v", got)
	}
	// Early stop.
	calls := 0
	h.Probe(5, func(r int32) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("early-stop probe made %d calls", calls)
	}
	if h.Bytes() <= 0 {
		t.Fatal("Bytes must report the metadata footprint")
	}
}

// TestHashTableGrowAgainstMap cross-checks the chained table against a Go
// map through many grow cycles and adversarial key patterns (sequential,
// duplicated, negative).
func TestHashTableGrowAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHashTable()
	ref := map[int64][]int32{}
	all := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		var k int64
		switch i % 3 {
		case 0:
			k = int64(i / 2) // sequential with dups
		case 1:
			k = -int64(rng.Intn(50)) // hot negatives
		default:
			k = rng.Int63()
		}
		h.Insert(k)
		all = append(all, k)
		ref[k] = append(ref[k], int32(i))
	}
	if h.Len() != 20000 {
		t.Fatalf("Len = %d", h.Len())
	}
	for k, want := range ref {
		var got []int32
		h.Probe(k, func(r int32) bool {
			if all[r] == k { // caller-side verification
				got = append(got, r)
			}
			return true
		})
		// Probe returns newest first.
		for i, j := 0, len(got)-1; i < j; i, j = i+1, j-1 {
			got[i], got[j] = got[j], got[i]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d: probe = %v, want %v", k, got, want)
		}
	}
}
