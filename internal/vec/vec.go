// Package vec defines the columnar batch that flows between the engine's
// Volcano-style operators and across the exchange wire: one []int64 per
// column plus an optional selection vector. A Vec is the vectorized
// counterpart of a slice of rows — kernels touch whole columns at a time
// (filter produces a selection without moving data, scans alias table
// column slabs without copying) instead of walking tuple pointers, which is
// what turns the paper's pipelined composition `|` from a goroutine-per-row
// channel dance into tight loops over contiguous memory.
//
// Layout invariants:
//   - every column has the same physical length;
//   - Sel, when non-nil, lists the live physical row indices in increasing
//     order; nil means all physical rows are live (a dense Vec);
//   - a Vec is immutable once handed to a consumer — operators that narrow
//     a batch produce a new Vec sharing the column storage.
package vec

import (
	"paropt/internal/storage"
)

// Vec is a columnar batch: Cols[c][r] is column c of physical row r, and
// Sel (when non-nil) selects the live subset of physical rows.
type Vec struct {
	Cols [][]int64
	Sel  []int32
}

// Width is the number of columns.
func (v *Vec) Width() int { return len(v.Cols) }

// Len is the number of live rows.
func (v *Vec) Len() int {
	if v == nil {
		return 0
	}
	if v.Sel != nil {
		return len(v.Sel)
	}
	if len(v.Cols) == 0 {
		return 0
	}
	return len(v.Cols[0])
}

// Bytes is the live payload size (8 bytes per value), the unit the
// exchange's staged-partition gauge and the engine's live byte counters
// meter.
func (v *Vec) Bytes() int64 {
	return int64(v.Len()) * int64(v.Width()) * 8
}

// Value returns column col of live row i (selection-translated).
func (v *Vec) Value(col, i int) int64 {
	if v.Sel != nil {
		return v.Cols[col][v.Sel[i]]
	}
	return v.Cols[col][i]
}

// emptySel marks a batch with zero live rows: Sel must stay non-nil when a
// filter rejects everything, because nil means "all physical rows live".
var emptySel = []int32{}

// FilterEq narrows the batch to live rows whose column col equals val,
// sharing column storage: only the selection vector is (re)built. The
// receiver is unchanged.
func (v *Vec) FilterEq(col int, val int64) *Vec {
	c := v.Cols[col]
	sel := emptySel
	if v.Sel != nil {
		for _, r := range v.Sel {
			if c[r] == val {
				sel = append(sel, r)
			}
		}
	} else {
		for r := range c {
			if c[r] == val {
				sel = append(sel, int32(r))
			}
		}
	}
	return &Vec{Cols: v.Cols, Sel: sel}
}

// Compact materializes the selection: the result is dense, with freshly
// allocated columns when a selection was applied. A dense Vec is returned
// as-is.
func (v *Vec) Compact() *Vec {
	if v.Sel == nil {
		return v
	}
	out := &Vec{Cols: make([][]int64, len(v.Cols))}
	for c, col := range v.Cols {
		dst := make([]int64, len(v.Sel))
		for i, r := range v.Sel {
			dst[i] = col[r]
		}
		out.Cols[c] = dst
	}
	return out
}

// FromRows transposes row-major tuples into a dense Vec. An empty slice
// yields a zero-width, zero-length Vec.
func FromRows(rows []storage.Row) *Vec {
	if len(rows) == 0 {
		return &Vec{}
	}
	width := len(rows[0])
	v := &Vec{Cols: make([][]int64, width)}
	for c := range v.Cols {
		col := make([]int64, len(rows))
		for r, row := range rows {
			col[r] = row[c]
		}
		v.Cols[c] = col
	}
	return v
}

// AppendRows materializes the live rows onto dst in row-major form — the
// boundary back to the row world (Resultset materialization, reference
// oracles).
func (v *Vec) AppendRows(dst []storage.Row) []storage.Row {
	n := v.Len()
	w := v.Width()
	for i := 0; i < n; i++ {
		row := make(storage.Row, w)
		for c := 0; c < w; c++ {
			row[c] = v.Value(c, i)
		}
		dst = append(dst, row)
	}
	return dst
}

// Batches transposes row-major tuples into dense Vecs of at most bs live
// rows each — the staged-partition and fallback-scan path of the exchange.
func Batches(rows []storage.Row, bs int) []*Vec {
	if bs <= 0 {
		bs = 1024
	}
	var out []*Vec
	for start := 0; start < len(rows); start += bs {
		end := start + bs
		if end > len(rows) {
			end = len(rows)
		}
		out = append(out, FromRows(rows[start:end]))
	}
	return out
}

// Builder assembles an output Vec row by row — the emit side of join and
// projection kernels. Flushing hands off the accumulated columns and
// resets, so one Builder serves a whole stream of batches.
type Builder struct {
	cols [][]int64
	bs   int
}

// NewBuilder sizes a builder for batches of bs rows and the given width.
func NewBuilder(width, bs int) *Builder {
	if bs <= 0 {
		bs = 1024
	}
	b := &Builder{cols: make([][]int64, width), bs: bs}
	for c := range b.cols {
		b.cols[c] = make([]int64, 0, bs)
	}
	return b
}

// Len is the number of rows accumulated since the last Flush.
func (b *Builder) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	return len(b.cols[0])
}

// Full reports whether the builder reached its batch size.
func (b *Builder) Full() bool { return b.Len() >= b.bs }

// CopyRow appends live row i of src (all columns, in order) starting at
// output column at.
func (b *Builder) CopyRow(at int, src *Vec, i int) {
	if src.Sel != nil {
		i = int(src.Sel[i])
	}
	for c, col := range src.Cols {
		b.cols[at+c] = append(b.cols[at+c], col[i])
	}
}

// CopyPhys appends physical row r of src starting at output column at —
// for callers that resolved the selection themselves (hash probes store
// physical indices).
func (b *Builder) CopyPhys(at int, src *Vec, r int) {
	for c, col := range src.Cols {
		b.cols[at+c] = append(b.cols[at+c], col[r])
	}
}

// Append appends a single value to output column c.
func (b *Builder) Append(c int, val int64) {
	b.cols[c] = append(b.cols[c], val)
}

// AppendGather appends cols[c][idx[i]] for every i to output column at+c —
// the columnar emit of the join kernels. Callers accumulate matched row
// indices and gather once per batch, turning one multi-column copy per
// output row into one tight loop per column.
func (b *Builder) AppendGather(at int, cols [][]int64, idx []int32) {
	for c, col := range cols {
		dst := b.cols[at+c]
		for _, r := range idx {
			dst = append(dst, col[r])
		}
		b.cols[at+c] = dst
	}
}

// Flush returns the accumulated batch as a dense Vec and resets the
// builder; nil when nothing accumulated.
func (b *Builder) Flush() *Vec {
	if b.Len() == 0 {
		return nil
	}
	v := &Vec{Cols: b.cols}
	b.cols = make([][]int64, len(b.cols))
	for c := range b.cols {
		b.cols[c] = make([]int64, 0, b.bs)
	}
	return v
}

// Buffer is a growable columnar row store: the build side of joins and the
// rewind buffer of re-iterated inputs. Appending compacts selections; rows
// are addressed by dense index.
type Buffer struct {
	cols [][]int64
}

// NewBuffer creates a buffer of the given width.
func NewBuffer(width int) *Buffer {
	return &Buffer{cols: make([][]int64, width)}
}

// Len is the number of buffered rows.
func (t *Buffer) Len() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

// Width is the number of columns.
func (t *Buffer) Width() int { return len(t.cols) }

// Col exposes column c's storage (read-only by convention).
func (t *Buffer) Col(c int) []int64 { return t.cols[c] }

// Value returns column c of buffered row r.
func (t *Buffer) Value(c, r int) int64 { return t.cols[c][r] }

// Append copies the live rows of v into the buffer and returns the index
// of the first appended row.
func (t *Buffer) Append(v *Vec) int {
	start := t.Len()
	for c := range t.cols {
		col := v.Cols[c]
		if v.Sel == nil {
			t.cols[c] = append(t.cols[c], col...)
		} else {
			for _, r := range v.Sel {
				t.cols[c] = append(t.cols[c], col[r])
			}
		}
	}
	return start
}

// CopyRowTo appends buffered row r (all columns) to b starting at output
// column at.
func (t *Buffer) CopyRowTo(b *Builder, at, r int) {
	for c, col := range t.cols {
		b.cols[at+c] = append(b.cols[at+c], col[r])
	}
}

// Gather appends the buffered rows at the given indices to b starting at
// output column at, column at a time.
func (t *Buffer) Gather(b *Builder, at int, idx []int32) {
	b.AppendGather(at, t.cols, idx)
}

// Vec returns a dense view of rows [start, end) sharing the buffer's
// storage.
func (t *Buffer) Vec(start, end int) *Vec {
	v := &Vec{Cols: make([][]int64, len(t.cols))}
	for c := range t.cols {
		v.Cols[c] = t.cols[c][start:end]
	}
	return v
}

// Bytes is the buffered payload size (8 bytes per value).
func (t *Buffer) Bytes() int64 { return int64(t.Len()) * int64(t.Width()) * 8 }

// Release drops the column storage, returning the buffer to zero length
// while keeping its width — the symmetric join frees the no-longer-probed
// side this way the moment one input is exhausted.
func (t *Buffer) Release() {
	for c := range t.cols {
		t.cols[c] = nil
	}
}
