// Package accuracy joins the cost model's predicted two-part descriptors
// (tf, tl) against descriptors measured by an instrumented execution
// (engine.ExecStats) — an "explain analyze" for the paper's §5 calculus.
//
// Predicted times are in abstract model units, actual times in seconds, so
// the two are joined through a single calibration scale: the ratio of
// actual to predicted response time at the plan root. After scaling, the
// root's last-tuple error is zero by construction and every other entry's
// relative error measures how well the model predicted the *shape* of the
// execution — which operators dominate, where pipelines stall, how early
// first tuples flow. Per-operator cardinality error (the classic q-error)
// rides along, since misestimated sizes are the usual root cause of
// misestimated times.
package accuracy

import (
	"fmt"
	"math"
	"strings"

	"paropt/internal/cost"
	"paropt/internal/engine"
	"paropt/internal/engine/exchange"
	"paropt/internal/optree"
	"paropt/internal/plan"
)

// FragmentAccuracy joins one worker-run fragment's measured (tf, tl)
// against its node's calibrated predictions — the distributed analogue of
// OpAccuracy, one row per committed dispatch attempt. Under the paper's
// uniformity assumption every clone of a parallel join shares the node's
// descriptor, so each fragment is compared against the node-level (tf, tl);
// measured times are offsets from the fragment's dispatch, not from
// execution start, which is the same time base to within one frame's wire
// latency.
type FragmentAccuracy struct {
	Label          string  `json:"label"`
	Part           int     `json:"part"`
	Parts          int     `json:"parts"`
	Worker         string  `json:"worker"`
	Addr           string  `json:"addr,omitempty"`
	ActFirst       float64 `json:"actFirstSeconds"`
	ActLast        float64 `json:"actLastSeconds"`
	PredFirstSec   float64 `json:"predFirstSeconds"`
	PredLastSec    float64 `json:"predLastSeconds"`
	RelErrLast     float64 `json:"relErrLast"`
	Rows           int64   `json:"rows"`
	ResultStallSec float64 `json:"resultStallSeconds"`
	Retried        int     `json:"retried,omitempty"`
	FallbackReason string  `json:"fallbackReason,omitempty"`
}

// LinkAccuracy compares the cost model's interconnect charges against what
// one coordinator↔worker link actually did: observed wire-write time and
// credit-window stall vs the calibrated network prediction.
type LinkAccuracy struct {
	Addr           string  `json:"addr"`
	BytesSent      int64   `json:"bytesSent"`
	BytesRecv      int64   `json:"bytesRecv"`
	SendSeconds    float64 `json:"sendSeconds"`
	StallSeconds   float64 `json:"stallSeconds"`
	PredNetSeconds float64 `json:"predNetSeconds"`
}

// OpAccuracy is the predicted-vs-actual join for one join-tree node.
type OpAccuracy struct {
	// Label names the node ("scan(R1)", "hash-join{R1,R2}").
	Label string `json:"label"`
	// PredFirst and PredLast are the model's (tf, tl) in model units.
	PredFirst float64 `json:"predFirst"`
	PredLast  float64 `json:"predLast"`
	// ActFirst and ActLast are the measured (tf, tl) in seconds. ActFirst
	// is 0 when the node produced no rows.
	ActFirst float64 `json:"actFirstSeconds"`
	ActLast  float64 `json:"actLastSeconds"`
	// PredFirstSec and PredLastSec are the predictions calibrated into
	// seconds with the report scale.
	PredFirstSec float64 `json:"predFirstSeconds"`
	PredLastSec  float64 `json:"predLastSeconds"`
	// RelErrFirst and RelErrLast are signed relative errors of the
	// calibrated predictions: (pred − act)/act. Zero when unmeasurable.
	RelErrFirst float64 `json:"relErrFirst"`
	RelErrLast  float64 `json:"relErrLast"`
	// EstRows and ActRows compare the cardinality model against reality;
	// QErrRows is the q-error max(est/act, act/est) (0 when unmeasurable).
	EstRows  int64   `json:"estRows"`
	ActRows  int64   `json:"actRows"`
	QErrRows float64 `json:"qErrRows"`
	// Root marks the plan root (its RelErrLast is 0 by calibration).
	Root bool `json:"root,omitempty"`
}

// Report is the whole plan's accuracy join.
type Report struct {
	// Scale is the calibration factor: seconds of actual execution per
	// model time unit, fixed at the root.
	Scale float64 `json:"scaleSecondsPerUnit"`
	// WallSeconds is the measured end-to-end execution time.
	WallSeconds float64 `json:"wallSeconds"`
	// PredictedRT is the model's root response time (model units).
	PredictedRT float64 `json:"predictedRT"`
	// Ops lists per-node rows in execution (bottom-up) order.
	Ops []OpAccuracy `json:"ops"`
	// MeanAbsRelErr averages |RelErr| over every measurable non-root
	// entry — the single number tracking cost-model fidelity.
	MeanAbsRelErr float64 `json:"meanAbsRelErr"`
	// MaxQErrRows is the worst cardinality q-error in the plan.
	MaxQErrRows float64 `json:"maxQErrRows"`
	// Fragments lists worker-side measurements for distributed executions,
	// one row per committed fragment attempt. Empty for local transports.
	Fragments []FragmentAccuracy `json:"fragments,omitempty"`
	// PredNetSeconds is the model's total calibrated interconnect charge —
	// the sum of every operator's network-resource demands times Scale.
	PredNetSeconds float64 `json:"predNetSeconds,omitempty"`
	// Links compares per-link observed wire time against the model's
	// interconnect charges; attached by AttachLinks after execution.
	Links []LinkAccuracy `json:"links,omitempty"`
}

// Analyze joins predicted descriptors against measured ones. mod prices the
// operator tree root (the expansion of the executed join tree); stats is
// the instrumented execution's collector.
func Analyze(mod *cost.Model, root *optree.Op, stats *engine.ExecStats) *Report {
	// Topmost operator per join-tree node: Walk visits children before
	// parents, so the last op written for a Source is the subtree root
	// whose cumulative descriptor corresponds to that node's output stream.
	topOp := make(map[*plan.Node]*optree.Op)
	root.Walk(func(op *optree.Op) {
		if op.Source != nil {
			topOp[op.Source] = op
		}
	})

	nodes := stats.Nodes()
	rep := &Report{WallSeconds: stats.Wall().Seconds()}

	// Calibrate on the root: the executed tree's own node is the op tree
	// root's Source.
	rootDesc := mod.Descriptor(root)
	rep.PredictedRT = rootDesc.RT()
	var rootStat *engine.NodeStat
	for _, st := range nodes {
		if st.Node == root.Source {
			rootStat = st
		}
	}
	if rootStat != nil && rep.PredictedRT > 0 {
		rep.Scale = rootStat.Last.Seconds() / rep.PredictedRT
	}

	var errSum float64
	var errN int
	predByNode := make(map[*plan.Node]OpAccuracy, len(nodes))
	for _, st := range nodes {
		op := topOp[st.Node]
		if op == nil {
			continue
		}
		desc := mod.Descriptor(op)
		oa := OpAccuracy{
			Label:     st.Label,
			PredFirst: desc.First.T,
			PredLast:  desc.Last.T,
			ActFirst:  st.First.Seconds(),
			ActLast:   st.Last.Seconds(),
			EstRows:   st.Node.Card,
			ActRows:   st.Rows,
			Root:      st.Node == root.Source,
		}
		if rep.Scale > 0 {
			oa.PredFirstSec = desc.First.T * rep.Scale
			oa.PredLastSec = desc.Last.T * rep.Scale
			if oa.ActLast > 0 {
				oa.RelErrLast = (oa.PredLastSec - oa.ActLast) / oa.ActLast
			}
			if oa.ActFirst > 0 {
				oa.RelErrFirst = (oa.PredFirstSec - oa.ActFirst) / oa.ActFirst
			}
		}
		if oa.EstRows > 0 && oa.ActRows > 0 {
			e, a := float64(oa.EstRows), float64(oa.ActRows)
			oa.QErrRows = math.Max(e/a, a/e)
			if oa.QErrRows > rep.MaxQErrRows {
				rep.MaxQErrRows = oa.QErrRows
			}
		}
		if !oa.Root {
			if oa.ActLast > 0 {
				errSum += math.Abs(oa.RelErrLast)
				errN++
			}
			if oa.ActFirst > 0 {
				errSum += math.Abs(oa.RelErrFirst)
				errN++
			}
		}
		rep.Ops = append(rep.Ops, oa)
		predByNode[st.Node] = oa
	}
	if errN > 0 {
		rep.MeanAbsRelErr = errSum / float64(errN)
	}

	// Calibrated total interconnect charge, in seconds: each operator's own
	// demand on the machine's network resources plus its redistribution
	// transfer demands — repartitioned edges charge the wire entirely
	// through the latter. Zero on single-node machines (no network
	// resources) or before calibration.
	if nets := mod.M.Networks(); len(nets) > 0 && rep.Scale > 0 {
		var units float64
		root.Walk(func(op *optree.Op) {
			for _, w := range [2]cost.Vec{mod.OwnDemands(op), mod.TransferDemands(op)} {
				for _, id := range nets {
					if int(id) < len(w) {
						units += w[id]
					}
				}
			}
		})
		rep.PredNetSeconds = units * rep.Scale
	}

	// Join worker-side fragment measurements against their node's calibrated
	// predictions — the distributed half of the report.
	for _, rf := range stats.Remote() {
		pred := predByNode[rf.Node]
		for _, fs := range rf.Stats {
			worker := fs.Worker
			if worker == "" {
				worker = fs.Addr
			}
			fa := FragmentAccuracy{
				Label:          rf.Label,
				Part:           fs.Part,
				Parts:          fs.Parts,
				Worker:         worker,
				Addr:           fs.Addr,
				ActFirst:       float64(fs.FirstNanos) / 1e9,
				ActLast:        float64(fs.LastNanos) / 1e9,
				PredFirstSec:   pred.PredFirstSec,
				PredLastSec:    pred.PredLastSec,
				Rows:           fs.Rows,
				ResultStallSec: float64(fs.ResultStallNanos) / 1e9,
				Retried:        fs.Retried,
				FallbackReason: fs.FallbackReason,
			}
			if fa.ActLast > 0 && fa.PredLastSec > 0 {
				fa.RelErrLast = (fa.PredLastSec - fa.ActLast) / fa.ActLast
			}
			rep.Fragments = append(rep.Fragments, fa)
		}
	}
	return rep
}

// OpTimeline is one join-tree node's predicted (tf, tl) schedule in model
// units, computed before execution so a live coordinator can map measured
// progress onto the model's timeline. PredRows is the cardinality estimate
// the percent-complete heuristic divides measured rows by.
type OpTimeline struct {
	Node      *plan.Node `json:"-"`
	PredFirst float64    `json:"predFirst"`
	PredLast  float64    `json:"predLast"`
	PredRows  int64      `json:"predRows"`
	Root      bool       `json:"root,omitempty"`
}

// Timeline prices every join-tree node under the op tree root and returns
// the per-node predicted schedule plus the root response time (model
// units). It is the plan-time half of Analyze: the same topmost-op walk,
// with no measurements to join against yet.
func Timeline(mod *cost.Model, root *optree.Op) ([]OpTimeline, float64) {
	topOp := make(map[*plan.Node]*optree.Op)
	var order []*plan.Node
	root.Walk(func(op *optree.Op) {
		if op.Source != nil {
			if _, seen := topOp[op.Source]; !seen {
				order = append(order, op.Source)
			}
			topOp[op.Source] = op
		}
	})
	out := make([]OpTimeline, 0, len(order))
	for _, n := range order {
		desc := mod.Descriptor(topOp[n])
		out = append(out, OpTimeline{
			Node:      n,
			PredFirst: desc.First.T,
			PredLast:  desc.Last.T,
			PredRows:  n.Card,
			Root:      n == root.Source,
		})
	}
	return out, mod.Descriptor(root).RT()
}

// AttachLinks joins per-link transport counters against the report's
// calibrated interconnect charge. The model prices total network demand,
// not per-link flows, so the prediction is split evenly across links — a
// documented simplification that still exposes order-of-magnitude drift.
func (r *Report) AttachLinks(links []exchange.LinkSnapshot) {
	if len(links) == 0 {
		return
	}
	per := r.PredNetSeconds / float64(len(links))
	for _, ls := range links {
		r.Links = append(r.Links, LinkAccuracy{
			Addr:           ls.Addr,
			BytesSent:      ls.BytesSent,
			BytesRecv:      ls.BytesRecv,
			SendSeconds:    float64(ls.SendNanos) / 1e9,
			StallSeconds:   float64(ls.StallLeftNanos+ls.StallRightNanos+ls.StallResultNanos) / 1e9,
			PredNetSeconds: per,
		})
	}
}

// Errors returns the |relative error| samples of the report — the values a
// cost-model-error histogram observes. Root last-tuple error is excluded
// (zero by calibration); unmeasurable entries are skipped.
func (r *Report) Errors() []float64 {
	var out []float64
	for _, oa := range r.Ops {
		if oa.ActLast > 0 && !oa.Root {
			out = append(out, math.Abs(oa.RelErrLast))
		}
		if oa.ActFirst > 0 {
			out = append(out, math.Abs(oa.RelErrFirst))
		}
	}
	return out
}

// Table renders the report as an EXPLAIN ANALYZE style text table.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cost-model accuracy (scale: %.3g s/unit, wall %.1f ms, mean |rel err| %.2f, max q-err %.2f)\n",
		r.Scale, r.WallSeconds*1e3, r.MeanAbsRelErr, r.MaxQErrRows)
	fmt.Fprintf(&b, "%-24s %13s %13s %13s %13s %8s %10s %10s %8s\n",
		"node", "pred tf (ms)", "act tf (ms)", "pred tl (ms)", "act tl (ms)", "err tl", "est rows", "act rows", "q-err")
	ms := func(s float64) string {
		if s == 0 {
			return "-"
		}
		return fmt.Sprintf("%.3f", s*1e3)
	}
	for _, oa := range r.Ops {
		errTl := "-"
		if oa.ActLast > 0 && !oa.Root {
			errTl = fmt.Sprintf("%+.0f%%", 100*oa.RelErrLast)
		}
		qe := "-"
		if oa.QErrRows > 0 {
			qe = fmt.Sprintf("%.2f", oa.QErrRows)
		}
		fmt.Fprintf(&b, "%-24s %13s %13s %13s %13s %8s %10d %10d %8s\n",
			oa.Label, ms(oa.PredFirstSec), ms(oa.ActFirst), ms(oa.PredLastSec), ms(oa.ActLast),
			errTl, oa.EstRows, oa.ActRows, qe)
	}
	if len(r.Fragments) > 0 {
		fmt.Fprintf(&b, "\nworker fragments (measured at the worker, offsets from dispatch)\n")
		fmt.Fprintf(&b, "%-24s %6s %-22s %13s %13s %13s %8s %10s %10s\n",
			"node", "part", "worker", "pred tl (ms)", "act tf (ms)", "act tl (ms)", "err tl", "rows", "stall(ms)")
		for _, fa := range r.Fragments {
			errTl := "-"
			if fa.ActLast > 0 && fa.PredLastSec > 0 {
				errTl = fmt.Sprintf("%+.0f%%", 100*fa.RelErrLast)
			}
			who := fa.Worker
			if fa.FallbackReason != "" {
				who += " (fallback: " + fa.FallbackReason + ")"
			} else if fa.Retried > 0 {
				who += fmt.Sprintf(" (retried %d)", fa.Retried)
			}
			fmt.Fprintf(&b, "%-24s %3d/%-2d %-22s %13s %13s %13s %8s %10d %10s\n",
				fa.Label, fa.Part, fa.Parts, who, ms(fa.PredLastSec), ms(fa.ActFirst), ms(fa.ActLast),
				errTl, fa.Rows, ms(fa.ResultStallSec))
		}
	}
	if len(r.Links) > 0 {
		fmt.Fprintf(&b, "\ninterconnect links (predicted charge %.3f ms total, split evenly)\n", r.PredNetSeconds*1e3)
		fmt.Fprintf(&b, "%-22s %12s %12s %13s %13s %13s\n",
			"link", "sent (B)", "recv (B)", "pred (ms)", "wire (ms)", "stall (ms)")
		for _, la := range r.Links {
			fmt.Fprintf(&b, "%-22s %12d %12d %13s %13s %13s\n",
				la.Addr, la.BytesSent, la.BytesRecv, ms(la.PredNetSeconds), ms(la.SendSeconds), ms(la.StallSeconds))
		}
	}
	return b.String()
}
