package accuracy_test

import (
	"strings"
	"testing"

	"paropt/internal/core"
	"paropt/internal/engine/exchange"
	"paropt/internal/machine"
	"paropt/internal/parser"
	"paropt/internal/storage"
)

const chainDDL = `
relation A card=2000 pages=20 disk=0
column A.x ndv=2000
column A.y ndv=50
relation B card=1500 pages=15 disk=1
column B.y ndv=50
column B.z ndv=40
relation C card=1000 pages=10 disk=2
column C.z ndv=40
column C.w ndv=10
`

func analyzeFixture(t *testing.T) (*core.Optimizer, *core.Plan, *storage.Database) {
	t.Helper()
	cat, err := parser.ParseSchema(chainDDL)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("SELECT * FROM A, B, C WHERE A.y = B.y AND B.z = C.z", cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.NewOptimizer(cat, q, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	return opt, p, storage.NewDatabase(cat, 7)
}

func TestAnalyzeJoinsPredictedAndActual(t *testing.T) {
	opt, p, db := analyzeFixture(t)
	rep, stats, err := opt.Analyze(p, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ops) != len(stats.Nodes()) {
		t.Fatalf("report has %d ops, stats %d nodes", len(rep.Ops), len(stats.Nodes()))
	}
	if len(rep.Ops) != 5 {
		t.Fatalf("3 scans + 2 joins should yield 5 rows, got %d", len(rep.Ops))
	}
	if rep.Scale <= 0 {
		t.Fatalf("calibration scale should be positive, got %g", rep.Scale)
	}
	if rep.PredictedRT != p.RT() {
		t.Errorf("predicted RT %g should equal the plan's %g", rep.PredictedRT, p.RT())
	}
	var roots int
	for _, oa := range rep.Ops {
		if oa.Root {
			roots++
			// Calibration makes the root's scaled last-tuple prediction
			// coincide with the measurement.
			if d := oa.PredLastSec - oa.ActLast; d > 1e-9 || d < -1e-9 {
				t.Errorf("root scaled prediction %g != actual %g", oa.PredLastSec, oa.ActLast)
			}
		}
		if oa.PredLast <= 0 {
			t.Errorf("%s: predicted tl should be positive", oa.Label)
		}
		if oa.ActLast <= 0 {
			t.Errorf("%s: actual tl should be positive", oa.Label)
		}
		if oa.PredFirst > oa.PredLast {
			t.Errorf("%s: predicted tf %g > tl %g", oa.Label, oa.PredFirst, oa.PredLast)
		}
	}
	if roots != 1 {
		t.Errorf("exactly one root row expected, got %d", roots)
	}
	// The model is never perfect on wall-clock shapes: some non-root entry
	// must carry a nonzero error sample.
	if len(rep.Errors()) == 0 {
		t.Fatal("no error samples collected")
	}
	if rep.MeanAbsRelErr == 0 {
		t.Error("mean |rel err| of a real execution should be nonzero")
	}
	if rep.MaxQErrRows < 1 {
		t.Errorf("max q-error should be >= 1, got %g", rep.MaxQErrRows)
	}
}

func TestAnalyzeParallelExecution(t *testing.T) {
	opt, p, db := analyzeFixture(t)
	rep, _, err := opt.Analyze(p, db, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ops) != 5 || rep.Scale <= 0 {
		t.Fatalf("parallel analyze degenerate: %d ops, scale %g", len(rep.Ops), rep.Scale)
	}
}

func TestReportTable(t *testing.T) {
	opt, p, db := analyzeFixture(t)
	rep, _, err := opt.Analyze(p, db, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	for _, want := range []string{"cost-model accuracy", "pred tl (ms)", "act rows", "scan(A)"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if got := strings.Count(tbl, "\n"); got != 2+len(rep.Ops) {
		t.Errorf("table should have header+columns+%d rows, got %d lines", len(rep.Ops), got)
	}
}

// TestAnalyzeChargesInterconnect: on a multi-node machine whose chosen plan
// repartitions, the calibrated interconnect charge must be nonzero —
// redistribution demands live in the transfer component, not the operators'
// own demands — and AttachLinks must split it across the observed links.
func TestAnalyzeChargesInterconnect(t *testing.T) {
	cat, err := parser.ParseSchema(chainDDL)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.ParseQuery("SELECT * FROM A, B, C WHERE A.y = B.y AND B.z = C.z", cat)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := core.NewOptimizer(cat, q, core.Config{
		Machine: machine.Config{CPUs: 1, Disks: 1, Nodes: 3, NetLatency: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := opt.Analyze(p, storage.NewDatabase(cat, 7), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PredNetSeconds <= 0 {
		t.Fatalf("PredNetSeconds = %g on a 3-node machine with repartitioned edges, want > 0", rep.PredNetSeconds)
	}
	rep.AttachLinks([]exchange.LinkSnapshot{
		{Addr: "w0", BytesSent: 10, SendNanos: 5e6},
		{Addr: "w1", BytesSent: 10, SendNanos: 5e6},
	})
	if len(rep.Links) != 2 {
		t.Fatalf("AttachLinks produced %d rows, want 2", len(rep.Links))
	}
	for _, la := range rep.Links {
		if want := rep.PredNetSeconds / 2; la.PredNetSeconds != want {
			t.Errorf("link %s charge %g, want even split %g", la.Addr, la.PredNetSeconds, want)
		}
	}
}
