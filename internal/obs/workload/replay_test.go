package workload

import (
	"errors"
	"strings"
	"testing"
)

func TestReplayComparesPlansAndLatency(t *testing.T) {
	recs := []Record{
		{Query: "q1", Fingerprint: "a", PlanSig: "HJ(A,B)", ElapsedMicros: 100},
		{Query: "q2", Fingerprint: "b", PlanSig: "SM(C,D)", ElapsedMicros: 200},
		{Query: "q3", Fingerprint: "c", PlanSig: "NL(E,F)", ElapsedMicros: 300},
		{Query: "bad", Fingerprint: "", Error: "parse error", ElapsedMicros: 10},
	}
	exec := func(r Record) Outcome {
		switch r.Query {
		case "q2": // plan regression
			return Outcome{PlanSig: "HJ(D,C)", ElapsedMicros: 150}
		case "q3": // replay-time failure
			return Outcome{Err: errors.New("boom")}
		default:
			return Outcome{PlanSig: r.PlanSig, ElapsedMicros: 50}
		}
	}
	rep := Replay(recs, exec, false)
	if rep.Total != 4 || rep.Skipped != 1 || rep.Errors != 1 {
		t.Errorf("totals wrong: %+v", rep)
	}
	if rep.PlanMatches != 1 || rep.PlanChanges != 1 {
		t.Errorf("plan accounting wrong: %+v", rep)
	}
	if len(rep.Deltas) != 2 { // the change and the error, not the match
		t.Errorf("non-verbose deltas should hold changes+errors only: %+v", rep.Deltas)
	}
	table := rep.Table()
	for _, want := range []string{"plan changes: 1", "PLAN CHANGED", "HJ(D,C)", "ERROR boom"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}

	// Verbose keeps every replayed comparison.
	rep = Replay(recs, exec, true)
	if len(rep.Deltas) != 3 {
		t.Errorf("verbose should keep all 3 replayed records, got %d", len(rep.Deltas))
	}
}

func TestReplayDeterministicWorkloadHasNoChanges(t *testing.T) {
	var recs []Record
	for i := 0; i < 20; i++ {
		recs = append(recs, Record{Query: "q", Fingerprint: "f", PlanSig: "HJ(A,B)", ElapsedMicros: int64(i)})
	}
	rep := Replay(recs, func(r Record) Outcome {
		return Outcome{PlanSig: r.PlanSig, ElapsedMicros: r.ElapsedMicros}
	}, false)
	if rep.PlanChanges != 0 || rep.PlanMatches != 20 || rep.Errors != 0 {
		t.Errorf("identity replay should be clean: %+v", rep)
	}
	if rep.RecordedMeanMicros != rep.ReplayedMeanMicros {
		t.Errorf("identity replay should preserve latency stats: %+v", rep)
	}
}

func TestAggregateMirrorsProfiler(t *testing.T) {
	recs := []Record{
		{Fingerprint: "a", Query: "qa", Cache: "miss", PlanSig: "P1", ElapsedMicros: 100},
		{Fingerprint: "a", Query: "qa", Cache: "hit", PlanSig: "P1", ElapsedMicros: 10, RelErr: 0.3, QErr: 5},
		{Fingerprint: "a", Query: "qa", Cache: "hit", PlanSig: "P1", ElapsedMicros: 12, RelErr: 0.3, QErr: 5},
		{Fingerprint: "b", Query: "qb", Cache: "miss", PlanSig: "P2", ElapsedMicros: 400},
		{Query: "broken", Error: "no such relation"},
	}
	snaps := Aggregate(recs, 2, 2)
	if len(snaps) != 2 {
		t.Fatalf("expected 2 profiles, got %d", len(snaps))
	}
	SortBy(snaps, "traffic")
	a := snaps[0]
	if a.Fingerprint != "a" || a.Count != 3 || a.Hits != 2 || a.Misses != 1 {
		t.Errorf("profile a wrong: %+v", a)
	}
	if !a.Drifted {
		t.Errorf("two q-err=5 samples should mark drift: %+v", a)
	}
}
