package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// trueQuantile is the empirical quantile of a finished sample.
func trueQuantile(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// TestP2AccuracyBounds pins the documented error bound: ≤ 5% relative error
// against the empirical quantile at n = 10 000 for smooth distributions.
func TestP2AccuracyBounds(t *testing.T) {
	const n = 10_000
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		{"shifted-normal", func(r *rand.Rand) float64 { return 10 + r.NormFloat64() }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			r := rand.New(rand.NewSource(42))
			est := newP2(p)
			xs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := d.gen(r)
				xs = append(xs, x)
				est.add(x)
			}
			want := trueQuantile(xs, p)
			got := est.value()
			rel := math.Abs(got-want) / want
			if rel > 0.05 {
				t.Errorf("%s p%g: estimate %g vs true %g (rel err %.3f > 0.05)",
					d.name, p*100, got, want, rel)
			}
		}
	}
}

// TestP2SmallSamplesExact: below five observations the estimator reports the
// exact empirical quantile.
func TestP2SmallSamplesExact(t *testing.T) {
	est := newP2(0.5)
	if got := est.value(); got != 0 {
		t.Errorf("empty estimator should report 0, got %g", got)
	}
	for _, x := range []float64{5, 1, 3} {
		est.add(x)
	}
	if got := est.value(); got != 3 {
		t.Errorf("median of {5,1,3} should be exactly 3, got %g", got)
	}
}

// TestP2MarkersStayOrdered feeds adversarial (sorted, then reversed) input
// and checks the invariant q0 ≤ q1 ≤ q2 ≤ q3 ≤ q4 after every step.
func TestP2MarkersStayOrdered(t *testing.T) {
	feed := make([]float64, 0, 2000)
	for i := 0; i < 1000; i++ {
		feed = append(feed, float64(i))
	}
	for i := 1000; i > 0; i-- {
		feed = append(feed, float64(i))
	}
	est := newP2(0.9)
	for i, x := range feed {
		est.add(x)
		if est.n < 5 {
			continue
		}
		for j := 0; j < 4; j++ {
			if est.q[j] > est.q[j+1] {
				t.Fatalf("step %d: markers out of order: %v", i, est.q)
			}
		}
	}
}

func TestLatencySketch(t *testing.T) {
	s := NewLatencySketch()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		s.Observe(r.Float64() * 0.01) // 0..10ms
	}
	if s.Count() != 5000 {
		t.Errorf("count = %d", s.Count())
	}
	if m := s.Mean(); m < 0.004 || m > 0.006 {
		t.Errorf("mean of U(0,0.01) should be ≈0.005, got %g", m)
	}
	p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
	if p50 < 0.004 || p50 > 0.006 {
		t.Errorf("p50 ≈ 0.005 expected, got %g", p50)
	}
	if p99 < 0.0095 || p99 > 0.0101 {
		t.Errorf("p99 ≈ 0.0099 expected, got %g", p99)
	}
	if s.Min() < 0 || s.Max() > 0.01 || s.Min() >= s.Max() {
		t.Errorf("min/max out of range: %g %g", s.Min(), s.Max())
	}
}
