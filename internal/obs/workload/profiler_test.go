package workload

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestProfilerObserveAndSnapshot(t *testing.T) {
	p := NewProfiler(4, 100, 2, 2)
	for i := 0; i < 5; i++ {
		cache := "hit"
		if i == 0 {
			cache = "miss"
		}
		p.Observe(Sample{
			Fingerprint:    "fp-a",
			Catalog:        "v1",
			Query:          "SELECT * FROM A",
			PlanSig:        "HJ(scan(A), scan(B))",
			Cache:          cache,
			LatencySeconds: 0.001 * float64(i+1),
		})
	}
	p.Observe(Sample{Fingerprint: "fp-b", Cache: "miss", Err: true})
	p.Observe(Sample{Fingerprint: "", Cache: "miss"}) // ignored

	if p.Len() != 2 {
		t.Fatalf("expected 2 profiles, got %d", p.Len())
	}
	snaps := p.Snapshot()
	byFP := map[string]ProfileSnapshot{}
	for _, s := range snaps {
		byFP[s.Fingerprint] = s
	}
	a := byFP["fp-a"]
	if a.Count != 5 || a.Hits != 4 || a.Misses != 1 {
		t.Errorf("fp-a counts wrong: %+v", a)
	}
	if a.PlanSig != "HJ(scan(A), scan(B))" || a.Query != "SELECT * FROM A" {
		t.Errorf("fp-a identity wrong: %+v", a)
	}
	if a.P50Micros < 1000 || a.P50Micros > 5000 {
		t.Errorf("fp-a p50 out of range: %g", a.P50Micros)
	}
	if b := byFP["fp-b"]; b.Errors != 1 || b.Count != 1 {
		t.Errorf("fp-b error accounting wrong: %+v", b)
	}
}

func TestProfilerDriftMarking(t *testing.T) {
	p := NewProfiler(2, 10, 2.0, 2)
	p.Observe(Sample{Fingerprint: "hot", Cache: "miss", Query: "q"})

	// One huge sample is not enough (minSamples = 2)...
	p.ObserveAccuracy("hot", 0.5, 50)
	if d := p.Drifted(); len(d) != 0 {
		t.Fatalf("one sample should not mark drift, got %v", d)
	}
	// ...a second consistent one is.
	p.ObserveAccuracy("hot", 0.5, 50)
	d := p.Drifted()
	if len(d) != 1 || d[0].Fingerprint != "hot" {
		t.Fatalf("expected hot marked drifted, got %v", d)
	}
	if d[0].EWMAQErr < 2 {
		t.Errorf("EWMA q-error should exceed threshold, got %g", d[0].EWMAQErr)
	}

	// A sweep resets the mark; it must be re-earned.
	p.MarkSwept("hot")
	if d := p.Drifted(); len(d) != 0 {
		t.Fatalf("sweep should clear the mark, got %v", d)
	}
	snap := p.Snapshot()[0]
	if snap.Sweeps != 1 {
		t.Errorf("sweeps counter should be 1, got %d", snap.Sweeps)
	}

	// Accurate samples never mark.
	p.ObserveAccuracy("hot", 0.1, 1.05)
	p.ObserveAccuracy("hot", 0.1, 1.05)
	if d := p.Drifted(); len(d) != 0 {
		t.Fatalf("accurate template marked drifted: %v", d)
	}
}

func TestProfilerCapacityOverflow(t *testing.T) {
	p := NewProfiler(2, 3, 2, 2)
	for i := 0; i < 10; i++ {
		p.Observe(Sample{Fingerprint: fmt.Sprintf("fp-%d", i), Cache: "miss"})
	}
	if p.Len() != 3 {
		t.Errorf("capacity 3 exceeded: %d profiles", p.Len())
	}
	if p.Overflow() != 7 {
		t.Errorf("overflow should be 7, got %d", p.Overflow())
	}
	// Existing fingerprints still update at capacity.
	p.Observe(Sample{Fingerprint: "fp-0", Cache: "hit"})
	if p.Overflow() != 7 {
		t.Errorf("update of resident profile must not overflow, got %d", p.Overflow())
	}
}

func TestProfilerConcurrency(t *testing.T) {
	p := NewProfiler(8, 1000, 2, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fp := fmt.Sprintf("fp-%d", i%20)
				p.Observe(Sample{Fingerprint: fp, Cache: "hit", LatencySeconds: 0.0001})
				if i%50 == 0 {
					p.ObserveAccuracy(fp, 0.2, 1.5)
				}
			}
		}(g)
	}
	// Snapshots race against writers by design.
	for i := 0; i < 20; i++ {
		_ = p.Snapshot()
		_ = p.Drifted()
	}
	wg.Wait()
	var total int64
	for _, s := range p.Snapshot() {
		total += s.Count
	}
	if total != 8*500 {
		t.Errorf("lost observations: %d != %d", total, 8*500)
	}
}

func TestSortByAndFormatTable(t *testing.T) {
	snaps := []ProfileSnapshot{
		{Fingerprint: "aaa", Count: 5, P99Micros: 100, EWMAQErr: 1},
		{Fingerprint: "bbb", Count: 50, P99Micros: 10, EWMAQErr: 9, Drifted: true, PlanSig: "HJ(scan(A), scan(B))"},
		{Fingerprint: "ccc", Count: 20, P99Micros: 1000, EWMAQErr: 3},
	}
	SortBy(snaps, "traffic")
	if snaps[0].Fingerprint != "bbb" {
		t.Errorf("traffic order wrong: %v", snaps)
	}
	SortBy(snaps, "latency")
	if snaps[0].Fingerprint != "ccc" {
		t.Errorf("latency order wrong: %v", snaps)
	}
	SortBy(snaps, "drift")
	if snaps[0].Fingerprint != "bbb" {
		t.Errorf("drift order wrong: %v", snaps)
	}
	table := FormatTable(snaps)
	if !strings.Contains(table, "DRIFT") || !strings.Contains(table, "bbb") {
		t.Errorf("table missing content:\n%s", table)
	}
}

func TestNilProfilerIsNoOp(t *testing.T) {
	var p *Profiler
	p.Observe(Sample{Fingerprint: "x"})
	p.ObserveAccuracy("x", 1, 1)
	p.MarkSwept("x")
	if p.Len() != 0 || p.Overflow() != 0 || p.Snapshot() != nil || p.Drifted() != nil || p.DriftedCount() != 0 {
		t.Error("nil profiler should be inert")
	}
}
