package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one served request in the persistent query log — enough to
// re-execute it (query text, bound knobs, catalog version) and to compare
// the replay against what was served (plan signature, costs, latency).
type Record struct {
	Time        time.Time `json:"t"`
	Kind        string    `json:"kind"` // "optimize" or "explain"
	Fingerprint string    `json:"fp,omitempty"`
	Catalog     string    `json:"catalog,omitempty"`
	Query       string    `json:"query"`
	K           float64   `json:"k,omitempty"`
	CostBenefit float64   `json:"costBenefit,omitempty"`
	Cache       string    `json:"cache,omitempty"`
	Deduped     bool      `json:"deduped,omitempty"`
	PlanSig     string    `json:"plan,omitempty"`
	RT          float64   `json:"rt,omitempty"`
	Work        float64   `json:"work,omitempty"`
	// RelErr and QErr carry the accuracy report of analyze requests (mean
	// |rel err| and max row q-error), so offline reports can build the same
	// drift table the live profiler keeps.
	RelErr        float64 `json:"relErr,omitempty"`
	QErr          float64 `json:"qErr,omitempty"`
	ElapsedMicros int64   `json:"elapsedMicros"`
	Error         string  `json:"error,omitempty"`
}

// DefaultLogMaxBytes is the rotation threshold when none is configured.
const DefaultLogMaxBytes = 64 << 20

// logQueueDepth bounds records waiting for the writer goroutine; beyond it
// Write drops (with a counter) rather than blocking the serve path.
const logQueueDepth = 1024

// Log is the persistent append-only query log: JSONL records, size-based
// rotation (path → path.1, one generation kept), written by a single
// background goroutine fed through a bounded channel. Write never blocks:
// when the writer falls behind, records are dropped and counted. A nil *Log
// is a no-op on every method, so a disabled log costs one nil check per
// request.
type Log struct {
	path     string
	maxBytes int64

	ch   chan Record
	done chan struct{}

	records   atomic.Int64
	dropped   atomic.Int64
	rotations atomic.Int64
	closed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// NewLog opens (appending) or creates the log file. maxBytes ≤ 0 selects
// DefaultLogMaxBytes.
func NewLog(path string, maxBytes int64) (*Log, error) {
	return newLog(path, maxBytes, logQueueDepth)
}

// newLog exists so tests can shrink the queue to force drops.
func newLog(path string, maxBytes int64, depth int) (*Log, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("workload: query log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("workload: query log: %w", err)
	}
	l := &Log{
		path:     path,
		maxBytes: maxBytes,
		ch:       make(chan Record, depth),
		done:     make(chan struct{}),
	}
	go l.run(f, st.Size())
	return l, nil
}

// Path is the log file location.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Write enqueues one record. Non-blocking: if the writer is behind, the
// record is dropped and counted. Nil-safe; no-op after Close.
func (l *Log) Write(rec Record) {
	if l == nil || l.closed.Load() {
		return
	}
	select {
	case l.ch <- rec:
	default:
		l.dropped.Add(1)
	}
}

// run is the writer goroutine: one JSON line per record, rotating when the
// file would exceed maxBytes. Lines are written unbuffered so a live tail
// (or a replay right after traffic) sees records without waiting for Close.
func (l *Log) run(f *os.File, size int64) {
	defer close(l.done)
	for rec := range l.ch {
		line, err := json.Marshal(rec)
		if err != nil {
			l.dropped.Add(1)
			continue
		}
		line = append(line, '\n')
		if size > 0 && size+int64(len(line)) > l.maxBytes {
			f.Close()
			if err := os.Rename(l.path, l.path+".1"); err == nil {
				l.rotations.Add(1)
			}
			nf, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
			if err != nil {
				// Unwritable log: drop everything still queued.
				l.dropped.Add(1)
				for range l.ch {
					l.dropped.Add(1)
				}
				return
			}
			f, size = nf, 0
		}
		if _, err := f.Write(line); err != nil {
			l.dropped.Add(1)
			continue
		}
		size += int64(len(line))
		l.records.Add(1)
	}
	l.closeErr = f.Close()
}

// Close stops accepting records, drains the queue to disk and closes the
// file. Nil-safe and idempotent.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		close(l.ch)
		<-l.done
	})
	return l.closeErr
}

// Stats reports (records written, records dropped, rotations).
func (l *Log) Stats() (records, dropped, rotations int64) {
	if l == nil {
		return 0, 0, 0
	}
	return l.records.Load(), l.dropped.Load(), l.rotations.Load()
}

// ReadLog parses a JSONL query-log file. A trailing partial line (a record
// mid-write) is ignored; a malformed line elsewhere is an error.
func ReadLog(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: read log: %w", err)
	}
	defer f.Close()
	var out []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var pendingErr error
	line := 0
	for sc.Scan() {
		line++
		if pendingErr != nil {
			return nil, pendingErr
		}
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			// Defer the error one line: only a *non-final* malformed line is
			// fatal, the final one is a record still being written.
			pendingErr = fmt.Errorf("workload: read log: line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read log: %w", err)
	}
	return out, nil
}
