package workload

// Aggregate folds query-log records into profiles — the offline counterpart
// of the live profiler, so `paropt workload <log>` renders the same table
// /debug/workload serves. Records without a fingerprint (failures before
// parsing) are counted but not profiled.
func Aggregate(recs []Record, threshold float64, minSamples int) []ProfileSnapshot {
	p := NewProfiler(0, len(recs)+1, threshold, minSamples)
	for _, rec := range recs {
		p.Observe(Sample{
			Fingerprint:    rec.Fingerprint,
			Catalog:        rec.Catalog,
			Query:          rec.Query,
			PlanSig:        rec.PlanSig,
			Cache:          rec.Cache,
			Deduped:        rec.Deduped,
			Err:            rec.Error != "",
			LatencySeconds: float64(rec.ElapsedMicros) / 1e6,
		})
		if rec.QErr > 0 || rec.RelErr > 0 {
			p.ObserveAccuracy(rec.Fingerprint, rec.RelErr, rec.QErr)
		}
	}
	return p.Snapshot()
}
