package workload

import (
	"fmt"
	"sort"
	"strings"
)

// Replay turns a recorded query log into a regression harness: every
// successfully-served record is re-executed through an Executor (an
// in-process service or an HTTP daemon) and the replay's plan choice and
// latency are compared against what was recorded. Plan choices are
// deterministic for a fixed catalog and configuration, so any plan change
// is a signal — a statistics refresh, a code change, or a different daemon
// configuration.

// Outcome is one replayed request's result.
type Outcome struct {
	PlanSig       string
	Cache         string
	RT            float64
	Work          float64
	ElapsedMicros int64
	Err           error
}

// Executor re-executes one recorded request.
type Executor func(Record) Outcome

// Delta compares one record against its replay.
type Delta struct {
	Index         int     `json:"index"`
	Fingerprint   string  `json:"fingerprint"`
	Query         string  `json:"query"`
	RecordedPlan  string  `json:"recordedPlan"`
	ReplayedPlan  string  `json:"replayedPlan"`
	PlanChanged   bool    `json:"planChanged"`
	RecordedRT    float64 `json:"recordedRT,omitempty"`
	ReplayedRT    float64 `json:"replayedRT,omitempty"`
	RecordedMicro int64   `json:"recordedMicros"`
	ReplayedMicro int64   `json:"replayedMicros"`
	Error         string  `json:"error,omitempty"`
}

// Report aggregates a whole replay.
type Report struct {
	Total       int `json:"total"`
	Skipped     int `json:"skipped"` // recorded failures, not replayed
	Errors      int `json:"errors"`  // replay-time failures
	PlanMatches int `json:"planMatches"`
	PlanChanges int `json:"planChanges"`
	// Latency sums and quantiles over the replayed (successful) requests.
	RecordedMeanMicros float64 `json:"recordedMeanMicros"`
	ReplayedMeanMicros float64 `json:"replayedMeanMicros"`
	RecordedP95Micros  float64 `json:"recordedP95Micros"`
	ReplayedP95Micros  float64 `json:"replayedP95Micros"`
	// Deltas lists plan changes and errors (always), plus every record when
	// Verbose was set on Replay.
	Deltas []Delta `json:"deltas,omitempty"`
}

// Replay re-executes recs through exec in recorded order. Records that
// failed when recorded (Error set) are skipped — they prove nothing about
// plan stability. With verbose set, every comparison is kept in Deltas;
// otherwise only plan changes and replay errors are.
func Replay(recs []Record, exec Executor, verbose bool) *Report {
	rep := &Report{Total: len(recs)}
	var recLat, playLat []float64
	for i, rec := range recs {
		if rec.Error != "" {
			rep.Skipped++
			continue
		}
		out := exec(rec)
		d := Delta{
			Index:         i,
			Fingerprint:   rec.Fingerprint,
			Query:         rec.Query,
			RecordedPlan:  rec.PlanSig,
			ReplayedPlan:  out.PlanSig,
			RecordedRT:    rec.RT,
			ReplayedRT:    out.RT,
			RecordedMicro: rec.ElapsedMicros,
			ReplayedMicro: out.ElapsedMicros,
		}
		if out.Err != nil {
			rep.Errors++
			d.Error = out.Err.Error()
			rep.Deltas = append(rep.Deltas, d)
			continue
		}
		recLat = append(recLat, float64(rec.ElapsedMicros))
		playLat = append(playLat, float64(out.ElapsedMicros))
		d.PlanChanged = rec.PlanSig != "" && out.PlanSig != rec.PlanSig
		if d.PlanChanged {
			rep.PlanChanges++
		} else {
			rep.PlanMatches++
		}
		if d.PlanChanged || verbose {
			rep.Deltas = append(rep.Deltas, d)
		}
	}
	rep.RecordedMeanMicros, rep.RecordedP95Micros = meanP95(recLat)
	rep.ReplayedMeanMicros, rep.ReplayedP95Micros = meanP95(playLat)
	return rep
}

// meanP95 computes the mean and exact p95 of a finished sample (replay is
// offline, so no sketch is needed).
func meanP95(xs []float64) (mean, p95 float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := (len(sorted)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return sum / float64(len(xs)), sorted[idx]
}

// Table renders the report as text. The exit-status contract for CLI use:
// PlanChanges > 0 or Errors > 0 is a regression.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d records (%d skipped, %d errors)\n",
		r.Total-r.Skipped, r.Skipped, r.Errors)
	fmt.Fprintf(&b, "plan matches: %d\nplan changes: %d\n", r.PlanMatches, r.PlanChanges)
	fmt.Fprintf(&b, "latency mean: recorded %.0f µs, replayed %.0f µs (%+.1f%%)\n",
		r.RecordedMeanMicros, r.ReplayedMeanMicros, pctDelta(r.RecordedMeanMicros, r.ReplayedMeanMicros))
	fmt.Fprintf(&b, "latency p95:  recorded %.0f µs, replayed %.0f µs (%+.1f%%)\n",
		r.RecordedP95Micros, r.ReplayedP95Micros, pctDelta(r.RecordedP95Micros, r.ReplayedP95Micros))
	for _, d := range r.Deltas {
		switch {
		case d.Error != "":
			fmt.Fprintf(&b, "  #%d %.12s ERROR %s\n", d.Index, d.Fingerprint, d.Error)
		case d.PlanChanged:
			fmt.Fprintf(&b, "  #%d %.12s PLAN CHANGED\n    recorded: %s\n    replayed: %s\n",
				d.Index, d.Fingerprint, d.RecordedPlan, d.ReplayedPlan)
		default:
			fmt.Fprintf(&b, "  #%d %.12s ok %d µs → %d µs\n",
				d.Index, d.Fingerprint, d.RecordedMicro, d.ReplayedMicro)
		}
	}
	return b.String()
}

func pctDelta(recorded, replayed float64) float64 {
	if recorded == 0 {
		return 0
	}
	return 100 * (replayed - recorded) / recorded
}
