package workload

import (
	"math"
	"sort"
)

// Streaming quantile estimation for per-fingerprint latency profiles. The
// profiler observes every served request, so the estimator must be O(1) in
// both time and space per observation — no sample buffers that grow with
// traffic. The P² (piecewise-parabolic) algorithm of Jain & Chlamtac
// [CACM 1985] keeps exactly five markers per tracked quantile and adjusts
// their heights with a parabolic interpolation as observations stream in.
//
// Accuracy: P² is exact for the first five observations and converges on the
// true quantile for stationary inputs; for smooth unimodal distributions the
// relative error is empirically within a few percent once a few hundred
// observations have arrived. TestP2AccuracyBounds pins ≤ 5% relative error at
// n = 10 000 for uniform and exponential inputs at p50/p90/p99 — the
// documented bound the serving layer relies on.

// p2 estimates a single quantile p with five markers.
type p2 struct {
	p     float64
	n     int        // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // marker positions (1-based)
	want  [5]float64 // desired marker positions
	dWant [5]float64 // desired-position increments per observation
}

func newP2(p float64) *p2 {
	e := &p2{p: p}
	e.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// add feeds one observation.
func (e *p2) add(x float64) {
	if e.n < 5 {
		e.q[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := 0; i < 5; i++ {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.dWant[i]
			}
		}
		return
	}
	// Locate the cell containing x, clamping the extreme markers.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := 0; i < 5; i++ {
		e.want[i] += e.dWant[i]
	}
	e.n++
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if e.q[i-1] < qn && qn < e.q[i+1] {
				e.q[i] = qn
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

// parabolic is the P² (piecewise-parabolic) height prediction for moving
// marker i by s ∈ {−1, +1}.
func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback when the parabola would break marker monotonicity.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// value is the current estimate. For fewer than five observations it is the
// exact empirical quantile of the stored samples.
func (e *p2) value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		tmp := make([]float64, e.n)
		copy(tmp, e.q[:e.n])
		sort.Float64s(tmp)
		idx := int(math.Ceil(e.p*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		return tmp[idx]
	}
	return e.q[2]
}

// LatencySketch tracks the streaming quantiles a profile exports (p50, p90,
// p99) plus count/sum/min/max, in constant space. Not safe for concurrent
// use — the owning Profile serializes access.
type LatencySketch struct {
	count    int64
	sum      float64
	min, max float64
	q50      *p2
	q90      *p2
	q99      *p2
}

// NewLatencySketch builds an empty sketch.
func NewLatencySketch() *LatencySketch {
	return &LatencySketch{q50: newP2(0.50), q90: newP2(0.90), q99: newP2(0.99)}
}

// Observe feeds one latency sample (seconds).
func (s *LatencySketch) Observe(v float64) {
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
	s.q50.add(v)
	s.q90.add(v)
	s.q99.add(v)
}

// Count is the number of observations.
func (s *LatencySketch) Count() int64 { return s.count }

// Mean is the arithmetic mean, or 0 when empty.
func (s *LatencySketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Quantile returns the estimate for one of the tracked quantiles (0.5, 0.9,
// 0.99); other values return the nearest tracked one.
func (s *LatencySketch) Quantile(p float64) float64 {
	switch {
	case p <= 0.5:
		return s.q50.value()
	case p <= 0.9:
		return s.q90.value()
	default:
		return s.q99.value()
	}
}

// Min and Max are the observed extremes (0 when empty).
func (s *LatencySketch) Min() float64 { return s.min }

// Max is the largest observed value.
func (s *LatencySketch) Max() float64 { return s.max }
