package workload

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestQueryLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := NewLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Write(Record{
			Kind:          "optimize",
			Fingerprint:   fmt.Sprintf("fp-%d", i%3),
			Query:         fmt.Sprintf("SELECT * FROM R WHERE R.a = %d", i),
			PlanSig:       "HJ(scan(R), scan(S))",
			Cache:         "hit",
			ElapsedMicros: int64(i * 10),
		})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	records, dropped, rotations := l.Stats()
	if records != 10 || dropped != 0 || rotations != 0 {
		t.Errorf("stats = (%d, %d, %d), want (10, 0, 0)", records, dropped, rotations)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	if recs[3].Query != "SELECT * FROM R WHERE R.a = 3" || recs[3].PlanSig == "" {
		t.Errorf("record 3 corrupted: %+v", recs[3])
	}

	// Reopening appends.
	l2, err := NewLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2.Write(Record{Kind: "optimize", Query: "q11"})
	l2.Close()
	recs, err = ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Errorf("append after reopen: %d records, want 11", len(recs))
	}
}

func TestQueryLogRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := NewLog(path, 300) // a couple of records per generation
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		l.Write(Record{Kind: "optimize", Query: fmt.Sprintf("SELECT * FROM R WHERE R.a = %d", i)})
	}
	l.Close()
	_, _, rotations := l.Stats()
	if rotations == 0 {
		t.Fatal("expected at least one rotation")
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("rotated generation missing: %v", err)
	}
	// Current + previous generation together hold the tail of the stream.
	cur, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := ReadLog(path + ".1")
	if err != nil {
		t.Fatal(err)
	}
	if len(cur) == 0 || len(prev) == 0 {
		t.Errorf("generations: current %d, previous %d records", len(cur), len(prev))
	}
	last := cur[len(cur)-1]
	if last.Query != "SELECT * FROM R WHERE R.a = 19" {
		t.Errorf("stream tail lost: %+v", last)
	}
}

func TestQueryLogDropsWhenBehind(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	l, err := newLog(path, 0, 1) // single-slot queue
	if err != nil {
		t.Fatal(err)
	}
	// Flood faster than the writer can possibly drain a 1-slot queue.
	for i := 0; i < 10_000; i++ {
		l.Write(Record{Kind: "optimize", Query: "q"})
	}
	l.Close()
	records, dropped, _ := l.Stats()
	if dropped == 0 {
		t.Error("flooding a 1-slot queue should drop records")
	}
	if records+dropped != 10_000 {
		t.Errorf("accounting leak: %d written + %d dropped != 10000", records, dropped)
	}
	// Write after Close is a counted no-op, not a panic.
	l.Write(Record{Kind: "optimize", Query: "late"})
}

func TestReadLogToleratesTrailingPartialLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	content := `{"kind":"optimize","query":"q1","elapsedMicros":1}
{"kind":"optimize","query":"q2","elapsedMicros":2}
{"kind":"optimize","query":"q3","elapsed`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("expected 2 complete records, got %d", len(recs))
	}

	// A malformed line in the middle is an error.
	bad := "{\"kind\":\"optimize\",\"query\":\"q1\"}\nnot json\n{\"kind\":\"optimize\",\"query\":\"q2\"}\n"
	if err := os.WriteFile(path, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadLog(path); err == nil {
		t.Error("mid-file corruption should error")
	}
}

func TestNilLogIsNoOp(t *testing.T) {
	var l *Log
	l.Write(Record{})
	if err := l.Close(); err != nil {
		t.Error(err)
	}
	if r, d, ro := l.Stats(); r != 0 || d != 0 || ro != 0 {
		t.Error("nil log should report zeros")
	}
	if l.Path() != "" {
		t.Error("nil log path should be empty")
	}
	if _, err := ReadLog(filepath.Join(t.TempDir(), "missing.jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file should surface ErrNotExist, got %v", err)
	}
}
