// Package workload aggregates the serving layer's traffic into
// per-fingerprint profiles — the daemon's answer to "which query templates
// dominate, how fast are they, and whose cached plans have drifted from
// reality". It is distinct from internal/workload, which *generates*
// benchmark catalogs and queries; this package *measures* served ones.
//
// Three pieces compose:
//
//   - Profiler: a lock-sharded map from query fingerprint to Profile —
//     request/hit/miss/dedup/error counts, streaming latency quantiles (P²
//     sketches, constant space), the last selected plan signature, and EWMAs
//     of the cost-model accuracy samples produced by obs/accuracy (mean
//     |relative error| of calibrated (tf, tl) predictions and the worst row
//     q-error). The q-error EWMA is the drift signal: when it exceeds a
//     threshold the cached cover set was computed from statistics that no
//     longer match measured reality, and the entry is a candidate for
//     background re-optimization.
//   - Log (querylog.go): a persistent append-only JSONL record of served
//     requests, the raw material for offline analysis and replay.
//   - Replay (replay.go): re-executes a recorded workload and reports
//     plan-choice and latency deltas — the log turned regression harness.
//
// Everything is nil-safe in the style of internal/obs: a nil *Profiler or
// nil *Log turns every method into a no-op so disabled paths cost nothing.
package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ewmaAlpha weights the newest accuracy sample; 0.3 makes the EWMA cross a
// 2× drift threshold after two to three consistent samples while a single
// outlier decays quickly.
const ewmaAlpha = 0.3

// Sample is one served request fed to the profiler.
type Sample struct {
	// Fingerprint identifies the query template; Catalog the catalog
	// version it was served against.
	Fingerprint string
	Catalog     string
	// Query is the raw request text (any instance of the template); the
	// profile keeps the latest one so a sweeper can re-optimize the
	// template against a refreshed catalog.
	Query string
	// PlanSig is the selected plan's signature (plan.Node.String form).
	PlanSig string
	// Cache is "hit" or "miss"; Deduped marks singleflight followers.
	Cache   string
	Deduped bool
	// Err marks failed requests (no plan served).
	Err bool
	// LatencySeconds is the end-to-end service latency.
	LatencySeconds float64
}

// Profile aggregates one fingerprint's traffic.
type Profile struct {
	mu          sync.Mutex
	fingerprint string
	query       string
	catalog     string
	planSig     string
	firstSeen   time.Time
	lastSeen    time.Time
	count       int64
	hits        int64
	misses      int64
	deduped     int64
	errors      int64
	lat         *LatencySketch
	// Accuracy EWMAs, fed by explain-analyze runs.
	ewmaRelErr float64
	ewmaQErr   float64
	accSamples int64
	// sweeps counts background re-optimizations of this template.
	sweeps int64
}

// ProfileSnapshot is a point-in-time copy of a Profile, safe to sort,
// serialize and render after the profiler has moved on.
type ProfileSnapshot struct {
	Fingerprint string  `json:"fingerprint"`
	Query       string  `json:"query"`
	Catalog     string  `json:"catalog"`
	PlanSig     string  `json:"planSignature"`
	Count       int64   `json:"count"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	Deduped     int64   `json:"deduped,omitempty"`
	Errors      int64   `json:"errors,omitempty"`
	MeanMicros  float64 `json:"meanMicros"`
	P50Micros   float64 `json:"p50Micros"`
	P90Micros   float64 `json:"p90Micros"`
	P99Micros   float64 `json:"p99Micros"`
	MaxMicros   float64 `json:"maxMicros"`
	EWMARelErr  float64 `json:"ewmaRelErr,omitempty"`
	EWMAQErr    float64 `json:"ewmaQErr,omitempty"`
	AccSamples  int64   `json:"accuracySamples,omitempty"`
	Drifted     bool    `json:"drifted,omitempty"`
	Sweeps      int64   `json:"sweeps,omitempty"`
	FirstSeen   int64   `json:"firstSeenUnixMicros"`
	LastSeen    int64   `json:"lastSeenUnixMicros"`
}

// Profiler is the lock-sharded per-fingerprint store. Safe for concurrent
// use: the serving path touches one shard lock plus one profile lock per
// request, so distinct templates never contend.
type Profiler struct {
	shards   []profShard
	capacity int
	size     atomic.Int64
	overflow atomic.Int64
	// Drift marking knobs, fixed at construction.
	threshold  float64
	minSamples int64
}

type profShard struct {
	mu sync.Mutex
	m  map[string]*Profile
}

// NewProfiler builds a profiler with the given shard count, total profile
// capacity (new fingerprints beyond it are counted as overflow and
// dropped), drift threshold (EWMA row q-error above which a profile is
// marked drifted) and the minimum accuracy samples before marking.
// Non-positive arguments select the defaults: 8 shards, 4096 profiles,
// threshold 2, 2 samples.
func NewProfiler(shards, capacity int, threshold float64, minSamples int) *Profiler {
	if shards <= 0 {
		shards = 8
	}
	if capacity <= 0 {
		capacity = 4096
	}
	if threshold <= 0 {
		threshold = 2
	}
	if minSamples <= 0 {
		minSamples = 2
	}
	p := &Profiler{
		shards:     make([]profShard, shards),
		capacity:   capacity,
		threshold:  threshold,
		minSamples: int64(minSamples),
	}
	for i := range p.shards {
		p.shards[i].m = make(map[string]*Profile)
	}
	return p
}

func (p *Profiler) shard(fp string) *profShard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return &p.shards[h.Sum32()%uint32(len(p.shards))]
}

// profile returns (creating if capacity allows) the profile for fp.
func (p *Profiler) profile(fp string) *Profile {
	sh := p.shard(fp)
	sh.mu.Lock()
	pr, ok := sh.m[fp]
	if !ok {
		if p.size.Load() >= int64(p.capacity) {
			sh.mu.Unlock()
			p.overflow.Add(1)
			return nil
		}
		pr = &Profile{fingerprint: fp, lat: NewLatencySketch(), firstSeen: time.Now()}
		sh.m[fp] = pr
		p.size.Add(1)
	}
	sh.mu.Unlock()
	return pr
}

// Observe feeds one served request. Nil-safe; samples without a fingerprint
// are ignored (requests that failed before fingerprinting are the negative
// cache's concern, not the profiler's).
func (p *Profiler) Observe(s Sample) {
	if p == nil || s.Fingerprint == "" {
		return
	}
	pr := p.profile(s.Fingerprint)
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.count++
	pr.lastSeen = time.Now()
	switch {
	case s.Err:
		pr.errors++
	case s.Cache == "hit":
		pr.hits++
	default:
		pr.misses++
	}
	if s.Deduped {
		pr.deduped++
	}
	if s.Query != "" {
		pr.query = s.Query
	}
	if s.Catalog != "" {
		pr.catalog = s.Catalog
	}
	if s.PlanSig != "" {
		pr.planSig = s.PlanSig
	}
	if !s.Err {
		pr.lat.Observe(s.LatencySeconds)
	}
	pr.mu.Unlock()
}

// ObserveAccuracy feeds one explain-analyze accuracy sample: the report's
// mean |relative error| over calibrated (tf, tl) predictions and its worst
// row q-error. Both EWMAs seed with the first sample. Nil-safe.
func (p *Profiler) ObserveAccuracy(fp string, relErr, qErr float64) {
	if p == nil || fp == "" {
		return
	}
	pr := p.profile(fp)
	if pr == nil {
		return
	}
	pr.mu.Lock()
	if pr.accSamples == 0 {
		pr.ewmaRelErr, pr.ewmaQErr = relErr, qErr
	} else {
		pr.ewmaRelErr = ewmaAlpha*relErr + (1-ewmaAlpha)*pr.ewmaRelErr
		pr.ewmaQErr = ewmaAlpha*qErr + (1-ewmaAlpha)*pr.ewmaQErr
	}
	pr.accSamples++
	pr.mu.Unlock()
}

// MarkSwept records a background re-optimization of the template and resets
// its accuracy EWMAs — the old samples measured a plan that no longer
// serves, so the drift mark must be re-earned against the new one.
func (p *Profiler) MarkSwept(fp string) {
	if p == nil {
		return
	}
	sh := p.shard(fp)
	sh.mu.Lock()
	pr := sh.m[fp]
	sh.mu.Unlock()
	if pr == nil {
		return
	}
	pr.mu.Lock()
	pr.sweeps++
	pr.accSamples = 0
	pr.ewmaRelErr, pr.ewmaQErr = 0, 0
	pr.mu.Unlock()
}

// snapshotLocked copies the profile under its own lock.
func (pr *Profile) snapshot(threshold float64, minSamples int64) ProfileSnapshot {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	s := ProfileSnapshot{
		Fingerprint: pr.fingerprint,
		Query:       pr.query,
		Catalog:     pr.catalog,
		PlanSig:     pr.planSig,
		Count:       pr.count,
		Hits:        pr.hits,
		Misses:      pr.misses,
		Deduped:     pr.deduped,
		Errors:      pr.errors,
		MeanMicros:  pr.lat.Mean() * 1e6,
		P50Micros:   pr.lat.Quantile(0.5) * 1e6,
		P90Micros:   pr.lat.Quantile(0.9) * 1e6,
		P99Micros:   pr.lat.Quantile(0.99) * 1e6,
		MaxMicros:   pr.lat.Max() * 1e6,
		EWMARelErr:  pr.ewmaRelErr,
		EWMAQErr:    pr.ewmaQErr,
		AccSamples:  pr.accSamples,
		Sweeps:      pr.sweeps,
		FirstSeen:   pr.firstSeen.UnixMicro(),
		LastSeen:    pr.lastSeen.UnixMicro(),
	}
	s.Drifted = pr.accSamples >= minSamples && pr.ewmaQErr >= threshold
	return s
}

// Snapshot copies every profile. Nil-safe (returns nil).
func (p *Profiler) Snapshot() []ProfileSnapshot {
	if p == nil {
		return nil
	}
	var out []ProfileSnapshot
	for i := range p.shards {
		sh := &p.shards[i]
		sh.mu.Lock()
		profiles := make([]*Profile, 0, len(sh.m))
		for _, pr := range sh.m {
			profiles = append(profiles, pr)
		}
		sh.mu.Unlock()
		for _, pr := range profiles {
			out = append(out, pr.snapshot(p.threshold, p.minSamples))
		}
	}
	return out
}

// Drifted returns snapshots of the profiles currently marked drifted,
// ordered by traffic (hottest first) — the sweeper's work queue.
func (p *Profiler) Drifted() []ProfileSnapshot {
	if p == nil {
		return nil
	}
	var out []ProfileSnapshot
	for _, s := range p.Snapshot() {
		if s.Drifted {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Len is the number of profiles tracked; Overflow counts fingerprints
// dropped at capacity. Nil-safe.
func (p *Profiler) Len() int {
	if p == nil {
		return 0
	}
	return int(p.size.Load())
}

// Overflow counts new fingerprints dropped because the profiler was full.
func (p *Profiler) Overflow() int64 {
	if p == nil {
		return 0
	}
	return p.overflow.Load()
}

// DriftedCount is the number of profiles currently marked drifted.
func (p *Profiler) DriftedCount() int {
	return len(p.Drifted())
}

// SortBy orders snapshots for top-K reporting: "traffic" by request count,
// "latency" by p99, "drift" by the q-error EWMA — always descending, ties
// broken by fingerprint for deterministic output.
func SortBy(snaps []ProfileSnapshot, by string) {
	less := func(i, j int) bool { return snaps[i].Count > snaps[j].Count }
	switch by {
	case "latency":
		less = func(i, j int) bool { return snaps[i].P99Micros > snaps[j].P99Micros }
	case "drift":
		less = func(i, j int) bool { return snaps[i].EWMAQErr > snaps[j].EWMAQErr }
	}
	sort.Slice(snaps, func(i, j int) bool {
		if less(i, j) != less(j, i) {
			return less(i, j)
		}
		return snaps[i].Fingerprint < snaps[j].Fingerprint
	})
}

// FormatTable renders snapshots as a fixed-width text table (the
// /debug/workload?format=text and `paropt workload` rendering).
func FormatTable(snaps []ProfileSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %6s %6s %6s %10s %10s %10s %8s %8s %5s  %s\n",
		"fingerprint", "count", "hits", "miss", "err",
		"p50(µs)", "p90(µs)", "p99(µs)", "qerr", "relerr", "drift", "plan")
	for _, s := range snaps {
		fp := s.Fingerprint
		if len(fp) > 12 {
			fp = fp[:12]
		}
		drift := ""
		if s.Drifted {
			drift = "DRIFT"
		}
		plan := s.PlanSig
		if len(plan) > 60 {
			plan = plan[:57] + "..."
		}
		fmt.Fprintf(&b, "%-12s %8d %6d %6d %6d %10.0f %10.0f %10.0f %8.2f %8.2f %5s  %s\n",
			fp, s.Count, s.Hits, s.Misses, s.Errors,
			s.P50Micros, s.P90Micros, s.P99Micros, s.EWMAQErr, s.EWMARelErr, drift, plan)
	}
	return b.String()
}
