package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceTreeAndJSON(t *testing.T) {
	tr := NewTracer(8)
	trace, root := tr.Start("request")
	if trace == nil || root == nil {
		t.Fatal("Start returned nil trace or span")
	}
	parse := root.Child("parse")
	parse.SetAttr("relations", 6)
	parse.End()
	search := root.Child("search")
	layer := search.Child("layer-2")
	layer.End()
	search.MarkFirst()
	search.Err(context.DeadlineExceeded)
	search.End()
	root.End()

	j := trace.JSON()
	if j.ID != trace.ID() || j.ID == "" {
		t.Fatalf("trace ID mismatch: %q vs %q", j.ID, trace.ID())
	}
	if len(j.Root.Children) != 2 {
		t.Fatalf("root should have 2 children, got %d", len(j.Root.Children))
	}
	p, s := j.Root.Children[0], j.Root.Children[1]
	if p.Name != "parse" || p.Attrs["relations"] != "6" {
		t.Errorf("parse span wrong: %+v", p)
	}
	if s.Name != "search" || s.Error == "" || s.FirstMicros == nil {
		t.Errorf("search span should carry error and first-output: %+v", s)
	}
	if len(s.Children) != 1 || s.Children[0].Name != "layer-2" {
		t.Errorf("search children wrong: %+v", s.Children)
	}
	if j.Root.EndMicros < 0 || j.Root.DurMicros < 0 {
		t.Errorf("ended root should have non-negative end/duration: %+v", j.Root)
	}

	if got := tr.Get(trace.ID()); got != trace {
		t.Error("Get should return the registered trace")
	}
	if got := tr.Get("nope"); got != nil {
		t.Error("Get of unknown ID should be nil")
	}
}

func TestSpansClosedOutOfOrder(t *testing.T) {
	tr := NewTracer(1)
	trace, root := tr.Start("request")
	child := root.Child("slow-worker")
	grand := child.Child("inner")
	// Parent ends first (e.g. a request timing out while the search worker
	// keeps running); children end later, then again redundantly.
	root.End()
	rootEnd := trace.JSON().Root.EndMicros
	time.Sleep(2 * time.Millisecond)
	grand.End()
	child.End()
	child.End() // idempotent
	root.End()  // idempotent: the first End wins

	j := trace.JSON()
	if j.Root.EndMicros != rootEnd {
		t.Errorf("re-End moved the root end: %d vs %d", j.Root.EndMicros, rootEnd)
	}
	c := j.Root.Children[0]
	if c.EndMicros < j.Root.EndMicros {
		t.Errorf("child ended after parent should keep its later timestamp: child=%d root=%d", c.EndMicros, j.Root.EndMicros)
	}
	if len(c.Children) != 1 || c.Children[0].EndMicros < 0 {
		t.Errorf("grandchild should be closed: %+v", c.Children)
	}
}

func TestSpanOnCancelledContext(t *testing.T) {
	tr := NewTracer(4)
	_, root := tr.Start("request")
	ctx, cancel := context.WithCancel(ContextWithSpan(context.Background(), root))
	cancel() // spans must not care about context liveness
	ctx2, s := StartSpan(ctx, "after-cancel")
	if s == nil {
		t.Fatal("StartSpan on a cancelled context should still create a span")
	}
	if SpanFrom(ctx2) != s {
		t.Error("returned context should carry the child span")
	}
	s.SetAttr("ok", true)
	s.End()
	if s.Duration() < 0 {
		t.Error("span on cancelled context should measure a duration")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	trace, span := tr.Start("x")
	if trace != nil || span != nil {
		t.Fatal("nil tracer should return nils")
	}
	// Every method must be callable on nils.
	tr.Get("x")
	tr.IDs()
	if tr.Len() != 0 {
		t.Error("nil tracer length should be 0")
	}
	trace.ID()
	trace.Root()
	trace.JSON()
	span.Child("c")
	span.End()
	span.MarkFirst()
	span.SetAttr("k", 1)
	span.SetTimes(time.Now(), time.Time{}, time.Now())
	span.Err(context.Canceled)
	span.Duration()
}

// TestSpanDisabledZeroAlloc is the nil-tracer fast path acceptance: with no
// span in the context, StartSpan and SpanFrom must not allocate.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		ctx2, s := StartSpan(ctx, "noop")
		if s != nil || ctx2 != ctx {
			t.Fatal("disabled path should pass the context through")
		}
		s.MarkFirst()
		s.SetAttr("k", "v")
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %v times per op, want 0", allocs)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(2)
	t1, s1 := tr.Start("a")
	s1.End()
	t2, _ := tr.Start("b")
	t3, _ := tr.Start("c")
	if tr.Len() != 2 {
		t.Fatalf("ring should cap at 2, got %d", tr.Len())
	}
	if tr.Get(t1.ID()) != nil {
		t.Error("oldest trace should be evicted")
	}
	ids := tr.IDs()
	if len(ids) != 2 || ids[0] != t3.ID() || ids[1] != t2.ID() {
		t.Errorf("IDs should be newest-first: %v (want [%s %s])", ids, t3.ID(), t2.ID())
	}
	if t1.ID() == t2.ID() || t2.ID() == t3.ID() {
		t.Error("trace IDs must be distinct")
	}
}

func TestConcurrentSpanMutation(t *testing.T) {
	tr := NewTracer(1)
	trace, root := tr.Start("request")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			defer close2(done)
			s := root.Child("worker")
			s.SetAttr("i", i)
			s.MarkFirst()
			s.End()
		}(i)
	}
	for i := 0; i < 4; i++ {
		trace.JSON() // render concurrently with mutation
		<-done
	}
	root.End()
	if got := len(trace.JSON().Root.Children); got != 4 {
		t.Fatalf("want 4 children, got %d", got)
	}
}

func close2(ch chan struct{}) { ch <- struct{}{} }
