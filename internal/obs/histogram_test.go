package obs

import (
	"strings"
	"testing"
)

func TestHistogramZeroValueDefaults(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.0009)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.09)
	}
	if h.Count() != 110 {
		t.Fatalf("count = %d", h.Count())
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if p50 < 0.0005 || p50 > 0.001 {
		t.Errorf("p50 = %g, want within (0.0005, 0.001]", p50)
	}
	if p99 < 0.05 || p99 > 0.1 {
		t.Errorf("p99 = %g, want within (0.05, 0.1]", p99)
	}
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
}

func TestHistogramCustomBucketsAndExposition(t *testing.T) {
	h := NewHistogram(RelErrorBuckets)
	h.Observe(0.3)  // le=0.5
	h.Observe(0.02) // le=0.025
	h.Observe(42)   // +Inf
	var b strings.Builder
	h.WritePrometheus(&b, "x_err", "")
	out := b.String()
	for _, want := range []string{
		`x_err_bucket{le="0.025"} 1`,
		`x_err_bucket{le="0.5"} 2`,
		`x_err_bucket{le="10"} 2`,
		`x_err_bucket{le="+Inf"} 3`,
		`x_err_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Labeled form places extra labels before le and on sum/count.
	var lb strings.Builder
	h.WritePrometheus(&lb, "x_err", `phase="search"`)
	lout := lb.String()
	for _, want := range []string{
		`x_err_bucket{phase="search",le="+Inf"} 3`,
		`x_err_sum{phase="search"}`,
		`x_err_count{phase="search"} 3`,
	} {
		if !strings.Contains(lout, want) {
			t.Errorf("missing %q in:\n%s", want, lout)
		}
	}
}

func TestHistogramSum(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	if s := h.Sum(); s < 1.99 || s > 2.01 {
		t.Errorf("sum = %g, want ~2", s)
	}
}
