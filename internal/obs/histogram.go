package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultLatencyBuckets are the histogram upper bounds in seconds used for
// request and phase latency, chosen around the serving profile: cache hits
// in the tens of microseconds, full searches from hundreds of microseconds
// (small chains) to seconds (large cliques).
var DefaultLatencyBuckets = []float64{
	0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RelErrorBuckets are upper bounds for cost-model relative error |e|: a
// prediction off by 1% lands in the first bucket, one off by 10× in the
// last finite one.
var RelErrorBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with atomic counters. The zero
// value is ready to use and adopts DefaultLatencyBuckets on first touch;
// NewHistogram picks custom bucket bounds.
type Histogram struct {
	initOnce sync.Once
	buckets  []float64
	counts   []atomic.Int64 // len(buckets)+1; last bucket is +Inf
	count    atomic.Int64
	sumNano  atomic.Int64 // sum scaled by 1e9 to stay integral under atomics
}

// NewHistogram builds a histogram over the given (ascending) upper bounds.
func NewHistogram(buckets []float64) *Histogram {
	h := &Histogram{}
	h.initOnce.Do(func() { h.init(buckets) })
	return h
}

func (h *Histogram) init(buckets []float64) {
	h.buckets = buckets
	h.counts = make([]atomic.Int64, len(buckets)+1)
}

// ensure lazily adopts the default buckets for zero-value histograms.
func (h *Histogram) ensure() {
	h.initOnce.Do(func() { h.init(DefaultLatencyBuckets) })
}

// EnsureBuckets adopts the given bucket bounds if the histogram has not been
// touched yet — the way an embedded (non-pointer) histogram field opts out
// of the default latency buckets. No-op after the first Observe.
func (h *Histogram) EnsureBuckets(buckets []float64) {
	h.initOnce.Do(func() { h.init(buckets) })
}

// Observe records one value in the bucket containing it.
func (h *Histogram) Observe(v float64) {
	h.ensure()
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNano.Add(int64(v * 1e9))
}

// Count is the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum is the total of all observed values.
func (h *Histogram) Sum() float64 { return float64(h.sumNano.Load()) / 1e9 }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing it; 0 when nothing was observed. The +Inf
// bucket reports its lower bound.
func (h *Histogram) Quantile(q float64) float64 {
	h.ensure()
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if float64(cum)+float64(n) >= target {
			lo := 0.0
			if i > 0 {
				lo = h.buckets[i-1]
			}
			if i >= len(h.buckets) {
				return lo
			}
			hi := h.buckets[i]
			if n == 0 {
				return hi
			}
			frac := (target - float64(cum)) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum += n
	}
	return h.buckets[len(h.buckets)-1]
}

// WritePrometheus renders the histogram in Prometheus text exposition
// format under the given metric name, with optional extra labels rendered
// verbatim inside the braces (e.g. `phase="parse"`). HELP/TYPE headers are
// the caller's job (they must appear once per family, and one family may
// span several labeled histograms).
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	h.ensure()
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", name, labels+sep, ub, cum)
	}
	cum += h.counts[len(h.buckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels+sep, cum)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, h.Sum())
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count())
	}
}
