// Package obs is the observability substrate of the repository: a
// lightweight span tracer threaded through context.Context, a ring-buffered
// store of completed request traces, and general-purpose bucketed
// histograms. It deliberately depends only on the standard library so every
// other package (service, engine, search adapters) can import it without
// cycles.
//
// The tracer mirrors the paper's own vocabulary: a span records not just
// (start, end) but also the *first-output* timestamp, so a finished span is
// exactly a measured two-part descriptor (tf, tl) — the runtime counterpart
// of the §5 cost calculus. Joining these actuals against the model's
// predictions is the job of the obs/accuracy subpackage.
//
// Everything is nil-safe: a nil *Tracer, *Trace or *Span turns every method
// into a no-op, so instrumented code paths need no conditionals and the
// disabled tracer allocates nothing (see TestSpanDisabledZeroAlloc).
package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer creates traces and retains the most recent completed ones in a
// ring buffer for the /debug/trace endpoints. Safe for concurrent use.
type Tracer struct {
	capacity int
	prefix   string
	seq      atomic.Uint64

	mu     sync.Mutex
	order  []string // insertion order, oldest first
	traces map[string]*Trace
}

// NewTracer builds a tracer retaining up to capacity traces (default 256
// when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		capacity: capacity,
		prefix:   strconv.FormatInt(time.Now().UnixNano()&0xffffff, 36),
		traces:   make(map[string]*Trace),
	}
}

// Start opens a new trace with a root span of the given name and registers
// it in the ring (evicting the oldest when full). In-flight traces are
// visible to Get. Nil-safe: a nil tracer returns (nil, nil).
func (t *Tracer) Start(name string) (*Trace, *Span) {
	if t == nil {
		return nil, nil
	}
	id := t.prefix + "-" + strconv.FormatUint(t.seq.Add(1), 36)
	tr := &Trace{id: id, start: time.Now()}
	tr.root = &Span{tr: tr, name: name, start: tr.start}
	t.mu.Lock()
	for len(t.order) >= t.capacity {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	t.order = append(t.order, id)
	t.traces[id] = tr
	t.mu.Unlock()
	return tr, tr.root
}

// Get returns a trace by ID, or nil. The trace may still be in flight;
// render it with Trace.JSON, which locks consistently.
func (t *Tracer) Get(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// IDs lists retained trace IDs, newest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.order))
	for i, id := range t.order {
		out[len(t.order)-1-i] = id
	}
	return out
}

// Len is the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.order)
}

// Trace is one request's span tree. All span mutation goes through the
// trace mutex, so spans may be created and ended from different goroutines
// (e.g. a search running on a worker-pool goroutine).
type Trace struct {
	id    string
	start time.Time
	mu    sync.Mutex
	root  *Span
}

// ID is the trace's request ID.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root is the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Walk visits every span in the trace depth-first (parents before
// children), passing each span's name and attributes. The whole walk runs
// under the trace mutex, so fn must not touch the trace. Nil-safe.
func (t *Trace) Walk(fn func(name string, attrs []Attr)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var visit func(s *Span)
	visit = func(s *Span) {
		fn(s.name, s.attrs)
		for _, c := range s.children {
			visit(c)
		}
	}
	visit(t.root)
}

// Attr is one span attribute (stringified at set time, so rendering a trace
// never chases live pointers).
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation in a trace: (start, first-output, end) plus
// attributes and children. The zero first/end timestamps mean "not yet".
type Span struct {
	tr       *Trace
	name     string
	start    time.Time
	first    time.Time // first-output: the measured tf
	end      time.Time // the measured tl
	attrs    []Attr
	children []*Span
	errMsg   string
}

// Child opens a sub-span. Nil-safe: a nil span returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End closes the span. Idempotent: the first End wins, so spans closed out
// of order (a child after its parent) keep their own timestamps and the
// trace still renders coherently.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// MarkFirst records the first-output timestamp (the actual tf). Only the
// first call sticks.
func (s *Span) MarkFirst() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.first.IsZero() {
		s.first = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetTimes overrides the span's timestamps — used to graft externally
// measured intervals (engine operator timings) into a trace after the fact.
// A zero first means "no first-output recorded".
func (s *Span) SetTimes(start, first, end time.Time) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.start, s.first, s.end = start, first, end
	s.tr.mu.Unlock()
}

// SetAttr attaches a key/value attribute, stringifying the value now.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	var v string
	switch x := value.(type) {
	case string:
		v = x
	case fmt.Stringer:
		v = x.String()
	default:
		v = fmt.Sprint(x)
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
	s.tr.mu.Unlock()
}

// Err records an error on the span (last one wins). Nil errors are ignored.
func (s *Span) Err(err error) {
	if s == nil || err == nil {
		return
	}
	s.tr.mu.Lock()
	s.errMsg = err.Error()
	s.tr.mu.Unlock()
}

// Duration is end − start, or time-to-now for an open span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Context threading.

type ctxKey struct{}

// ContextWithSpan attaches a span to the context.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFrom extracts the current span, or nil. The nil path performs no
// allocation, which is what keeps disabled tracing free.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's span and returns a context
// carrying it. With no span in the context both return values pass through
// ((ctx, nil)) without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	if parent == nil {
		return ctx, nil
	}
	c := parent.Child(name)
	return ContextWithSpan(ctx, c), c
}

// JSON rendering for the /debug/trace endpoint.

// SpanJSON is the wire form of one span. Timestamps are microseconds
// relative to the trace start; FirstMicros is omitted when the span never
// produced output, EndMicros is -1 while the span is still open.
type SpanJSON struct {
	Name        string            `json:"name"`
	StartMicros int64             `json:"startMicros"`
	FirstMicros *int64            `json:"firstOutputMicros,omitempty"`
	EndMicros   int64             `json:"endMicros"`
	DurMicros   int64             `json:"durationMicros"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	Error       string            `json:"error,omitempty"`
	Children    []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the wire form of a whole trace.
type TraceJSON struct {
	ID        string    `json:"id"`
	StartUnix int64     `json:"startUnixMicros"`
	Root      *SpanJSON `json:"root"`
}

// JSON renders the trace tree. Safe to call on an in-flight trace.
func (t *Trace) JSON() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceJSON{
		ID:        t.id,
		StartUnix: t.start.UnixMicro(),
		Root:      t.root.json(t.start),
	}
}

// json renders one span; caller holds the trace mutex.
func (s *Span) json(t0 time.Time) *SpanJSON {
	j := &SpanJSON{
		Name:        s.name,
		StartMicros: s.start.Sub(t0).Microseconds(),
		EndMicros:   -1,
		Error:       s.errMsg,
	}
	if !s.first.IsZero() {
		f := s.first.Sub(t0).Microseconds()
		j.FirstMicros = &f
	}
	if !s.end.IsZero() {
		j.EndMicros = s.end.Sub(t0).Microseconds()
		j.DurMicros = s.end.Sub(s.start).Microseconds()
	} else {
		j.DurMicros = time.Since(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		j.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			j.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		j.Children = append(j.Children, c.json(t0))
	}
	return j
}
