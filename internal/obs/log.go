package obs

import (
	"context"
	"log/slog"
)

// discardHandler drops every record. slog.DiscardHandler exists only from
// go1.24; this keeps the module's go1.22 floor.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// DiscardLogger returns a logger that drops everything — the default for
// components whose caller supplied no logger, so logging call sites need no
// nil checks.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
