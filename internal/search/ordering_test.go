package search

import (
	"strings"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// orderingFixture builds the classic System R situation lifted to the
// parallel setting (§6.3: "tuple ordering may be incorporated as an
// additional dimension"). Three relations chain-join on one attribute
// class; only S is stored sorted on it. For every 2-relation subquery the
// hash join strictly dominates the sort-merge (which must sort the unsorted
// side: more CPU and more spill I/O on the same resources) — but only the
// sort-merge's output carries the order that saves the final join from
// sorting (or hash-probing) a 2-million-row intermediate. The ordering
// dimension is what keeps that dominated-on-cost subplan alive.
func orderingFixture(t *testing.T, metric Metric) *Searcher {
	t.Helper()
	cat := catalog.New()
	add := func(name string, disk int, sorted bool) {
		rel := catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a", NDV: 20_000, Width: 8},
			},
			Card: 200_000, Pages: 2_000, Disk: disk,
		}
		if sorted {
			rel.SortedBy = "a"
		}
		cat.MustAddRelation(rel)
	}
	add("R", 0, false)
	add("S", 1, true)
	add("T", 2, false)
	q := &query.Query{
		Name:      "ordered-chain",
		Relations: []string{"R", "S", "T"},
		Joins: []query.JoinPredicate{
			{Left: query.ColumnRef{Relation: "R", Column: "a"}, Right: query.ColumnRef{Relation: "S", Column: "a"}},
			{Left: query.ColumnRef{Relation: "S", Column: "a"}, Right: query.ColumnRef{Relation: "T", Column: "a"}},
		},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 1, Disks: 3})
	params := cost.DefaultParams()
	params.PipelineK = 0
	params.CPUTuple = 0.001
	params.CPUCompare = 0.002
	params.HashBuild = 0.02
	params.HashProbe = 0.01
	params.SortMemPages = 100 // sorts spill
	return New(Options{
		Model:              cost.NewModel(cat, m, est, params),
		Expand:             optree.DefaultExpandOptions(),
		Annotate:           optree.AnnotateOptions{MaxDegree: 1},
		Metric:             metric,
		AvoidCrossProducts: true,
	})
}

func orderedMetric() Metric { return OrderedMetric{Base: ResourceVectorMetric{L: 4}} }
func plainVector() Metric   { return ResourceVectorMetric{L: 4} }

// TestHashDominatesSortMergeOnCost pins the fixture's premise: for the
// {S,R} subquery the hash join dominates the sorting merge join in every
// resource dimension, so a cost-only cover must discard the ordered plan.
func TestHashDominatesSortMergeOnCost(t *testing.T) {
	s := orderingFixture(t, plainVector())
	sLeaf, err := s.est.Leaf("S", plan.SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	rLeaf, _ := s.est.Leaf("R", plan.SeqScan, nil)
	hj, _ := s.est.Join(sLeaf, rLeaf, plan.HashJoin)
	sm, _ := s.est.Join(sLeaf, rLeaf, plan.SortMerge)
	chj, err := s.cost(hj)
	if err != nil {
		t.Fatal(err)
	}
	csm, err := s.cost(sm)
	if err != nil {
		t.Fatal(err)
	}
	if !plainVector().Dominates(chj, csm) {
		t.Fatalf("fixture broken: HJ %v should dominate SM %v", chj.Desc.Last, csm.Desc.Last)
	}
	if csm.Order().Empty() || !chj.Order().Empty() {
		t.Fatal("fixture broken: SM ordered, HJ unordered expected")
	}
	// Under the ordered metric the two are incomparable.
	if orderedMetric().Dominates(chj, csm) {
		t.Error("ordering dimension must block the domination")
	}
}

// TestOrderingDimensionImprovesFinalPlan: with the ordering dimension, the
// optimizer reaches the sort-free merge pipeline and a strictly better
// response time — the §6.3 payoff measured.
func TestOrderingDimensionImprovesFinalPlan(t *testing.T) {
	withOrder := orderingFixture(t, orderedMetric())
	rOrder, err := withOrder.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	plain := orderingFixture(t, plainVector())
	rPlain, err := plain.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if rOrder.Best.RT() >= rPlain.Best.RT() {
		t.Fatalf("ordering dimension should win: %.0f (with) vs %.0f (without)\nwith:    %s\nwithout: %s",
			rOrder.Best.RT(), rPlain.Best.RT(), rOrder.Best.Node, rPlain.Best.Node)
	}
	// The winner uses sort-merge and — crucially — never sorts the 2M-row
	// intermediate: only base relations (200k rows) get sorted.
	if !strings.Contains(rOrder.Best.Node.String(), "SM(") {
		t.Errorf("expected a sort-merge in the winner, got %s", rOrder.Best.Node)
	}
	op, err := optree.Expand(rOrder.Best.Node, withOrder.est, withOrder.opt.Expand)
	if err != nil {
		t.Fatal(err)
	}
	op.Walk(func(o *optree.Op) {
		if o.Kind == optree.Sort && o.InCard > 250_000 {
			t.Errorf("winner sorts a %d-row intermediate — the order was not exploited: %s",
				o.InCard, op)
		}
	})
}
