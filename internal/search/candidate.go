// Package search implements the paper's §6: the System R dynamic program of
// Figure 1, its partial-order generalization of Figure 2, the bushy-tree
// extensions sketched in §6.4 (and the companion TR [GHK92]), brute-force
// enumerators for both shapes, the pruning metrics of §6.3 (work, response
// time, resource vectors, interesting orders), cover sets with the Theorem 3
// size experiment, and the work bounds of §2 folded into the search.
package search

import (
	"fmt"

	"paropt/internal/cost"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// Candidate is a costed plan: an annotated join tree plus its resource
// descriptor under the session's cost model.
type Candidate struct {
	Node *plan.Node
	Desc cost.ResDescriptor
}

// RT is the response-time estimate (the paper's optimization metric).
func (c *Candidate) RT() float64 { return c.Desc.RT() }

// Work is the total-work estimate (the traditional metric, and the quantity
// the §2 bounds constrain).
func (c *Candidate) Work() float64 { return c.Desc.Work() }

// Order is the plan's physical output ordering.
func (c *Candidate) Order() plan.Ordering { return c.Node.Order }

// String renders "plan  rt=… work=…".
func (c *Candidate) String() string {
	return fmt.Sprintf("%s  rt=%.2f work=%.2f", c.Node, c.RT(), c.Work())
}

// Options configures a search session.
type Options struct {
	// Model is the cost model (carries catalog, query, machine, params).
	Model *cost.Model
	// Expand and Annotate tune operator-tree generation for costing.
	Expand   optree.ExpandOptions
	Annotate optree.AnnotateOptions
	// Metric is the pruning metric: for the Figure 1 algorithms it must be
	// a total order; for the Figure 2 algorithms any partial order.
	// Defaults to WorkMetric for DP* and ResourceVectorMetric for PODP*.
	Metric Metric
	// Final ranks complete plans; defaults to ByRT.
	Final Comparator
	// AvoidCrossProducts skips extensions with no connecting predicate
	// whenever the relation set is connected (the System R heuristic).
	AvoidCrossProducts bool
	// Methods restricts the join methods enumerated; nil means all.
	Methods []plan.JoinMethod
	// WorkLimit, when positive, prunes any (partial or complete) plan whose
	// work exceeds it — the §2 throughput-degradation bound folded into the
	// search, admissible because work only grows under extension.
	WorkLimit float64
	// MemoryLimit, when positive, prunes plans whose peak memory demand (in
	// pages) exceeds it. Memory is non-preemptable (§7), so it is a hard
	// constraint rather than a resource-vector coordinate; pruning is safe
	// because a plan's peak never shrinks under extension.
	MemoryLimit int64
	// ExhaustivePhysical makes the brute-force enumerators enumerate every
	// method/access combination rather than choosing greedily per step;
	// exact but exponentially more expensive, meant for small n.
	ExhaustivePhysical bool
	// Trace, when set, observes the search as it runs.
	Trace Tracer
	// Workers, when > 1, prices candidate plans on that many goroutines.
	// Results are order-stable, so the chosen plan is identical at any
	// worker count.
	Workers int
	// CoverCap, when > 0, bounds every cover set to that many plans (beam
	// search): the worst member under Final is evicted when the cover
	// overflows. Exactness is traded for bounded cost — the practical
	// answer to cover explosion at large n.
	CoverCap int
}

// Result is the outcome of one search.
type Result struct {
	// Best is the winning plan under Final (nil when everything was pruned
	// by the work limit).
	Best *Candidate
	// Frontier is the root cover set (partial-order algorithms) or the
	// single best plan (total-order algorithms).
	Frontier []*Candidate
	// Stats are the Table 1 counters.
	Stats Stats
}

// Stats counts the quantities Table 1 compares across algorithms.
type Stats struct {
	// PlansConsidered counts joinPlan/accessPlan invocations — the "time
	// complexity (#plans considered)" column of Table 1: one per (subplan,
	// added relation) pair for left-deep algorithms, one per ordered subset
	// split for bushy ones, one per permutation for brute force.
	PlansConsidered int64
	// PhysicalPlans counts every method × access-path combination costed.
	PhysicalPlans int64
	// MaxLayerPlans is the peak number of plans stored for subsets of one
	// cardinality — the "space complexity (max #plans stored)" column.
	MaxLayerPlans int64
	// MaxCoverSize is the largest cover set observed (k in §6.2).
	MaxCoverSize int
	// MaxOrderClasses is the largest number of distinct output orderings
	// held in one cover — the measured counterpart of the 2^b "bindings"
	// factor Table 1 assigns to bushy DP (plans kept per physical property
	// of the subquery).
	MaxOrderClasses int
	// Pruned counts candidates rejected by dominance or the work limit.
	Pruned int64
	// Prune reasons: Pruned split by the test that rejected the candidate —
	// the Theorem 3 cover-set test (PrunedDominance), the §2 work bound
	// (PrunedWork), the memory constraint (PrunedMemory), and beam eviction
	// under CoverCap (PrunedBeam). The four always sum to Pruned.
	PrunedDominance int64
	PrunedWork      int64
	PrunedMemory    int64
	PrunedBeam      int64
	// MetricDims is the dimensionality of the pruning metric actually used
	// (partial-order algorithms only; 0 for total orders). On a multi-node
	// machine this grows with the node count — every interconnect link is a
	// resource-vector coordinate — which is what makes local and
	// repartitioned plans incomparable.
	MetricDims int
	// Layers holds one telemetry record per DP layer (one pseudo-layer for
	// non-layered strategies) — the raw material of the SearchProfile.
	Layers []LayerRecord
}

// Searcher runs the §6 algorithms over one query and cost model.
type Searcher struct {
	opt   Options
	est   *plan.Estimator
	q     *query.Query
	stats Stats
}

// New builds a Searcher. It panics if the options carry no model, since
// every algorithm needs one; options are programmer input.
func New(opt Options) *Searcher {
	if opt.Model == nil {
		panic("search: Options.Model is required")
	}
	if opt.Final == nil {
		opt.Final = ByRT
	}
	return &Searcher{opt: opt, est: opt.Model.Est, q: opt.Model.Est.Q}
}

// cost prices a plan tree into a candidate, or nil when the work limit
// prunes it.
func (s *Searcher) cost(n *plan.Node) (*Candidate, error) {
	d, op, err := s.opt.Model.PlanCost(n, s.opt.Expand, s.opt.Annotate)
	if err != nil {
		return nil, err
	}
	s.stats.PhysicalPlans++
	if s.opt.WorkLimit > 0 && d.Work() > s.opt.WorkLimit {
		s.stats.Pruned++
		s.stats.PrunedWork++
		return nil, nil
	}
	if s.opt.MemoryLimit > 0 && s.opt.Model.MemoryEstimate(op).PeakPages > s.opt.MemoryLimit {
		s.stats.Pruned++
		s.stats.PrunedMemory++
		return nil, nil
	}
	return &Candidate{Node: n, Desc: d}, nil
}

// accessCandidates enumerates every access path for the relation at the
// given query position: the sequential scan plus one candidate per index.
func (s *Searcher) accessCandidates(pos int) ([]*Candidate, error) {
	rel := s.q.Relations[pos]
	var out []*Candidate
	leaf, err := s.est.Leaf(rel, plan.SeqScan, nil)
	if err != nil {
		return nil, err
	}
	if c, err := s.cost(leaf); err != nil {
		return nil, err
	} else if c != nil {
		out = append(out, c)
	}
	for _, idx := range s.opt.Model.Cat.IndexesOn(rel) {
		leaf, err := s.est.Leaf(rel, plan.IndexScan, idx)
		if err != nil {
			return nil, err
		}
		c, err := s.cost(leaf)
		if err != nil {
			return nil, err
		}
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// joinCandidates enumerates every join method over a fixed (left, right)
// pair of subtrees, returning the costed survivors. Sort-merge and hash
// join require an equijoin predicate; nested loops also covers cross
// products.
func (s *Searcher) joinCandidates(left, right *plan.Node) ([]*Candidate, error) {
	preds := s.q.JoinsBetween(left.Rels, right.Rels)
	methods := s.opt.Methods
	if methods == nil {
		methods = plan.AllJoinMethods
	}
	var out []*Candidate
	for _, m := range methods {
		if len(preds) == 0 && m != plan.NestedLoops {
			continue
		}
		j, err := s.est.Join(left, right, m)
		if err != nil {
			return nil, err
		}
		c, err := s.cost(j)
		if err != nil {
			return nil, err
		}
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// extendAll builds every (access path × join method) extension of p with the
// relation at pos — the paper's joinPlan(p', R) before its internal "best
// possible way" choice. The candidates are priced through costAll, which
// fans out over Options.Workers when configured.
func (s *Searcher) extendAll(p *plan.Node, pos int) ([]*Candidate, error) {
	leaves, err := s.leafChoices(pos)
	if err != nil {
		return nil, err
	}
	methods := s.opt.Methods
	if methods == nil {
		methods = plan.AllJoinMethods
	}
	var nodes []*plan.Node
	for _, leaf := range leaves {
		preds := s.q.JoinsBetween(p.Rels, leaf.Rels)
		for _, m := range methods {
			if len(preds) == 0 && m != plan.NestedLoops {
				continue
			}
			j, err := s.est.Join(p, leaf, m)
			if err != nil {
				return nil, err
			}
			nodes = append(nodes, j)
		}
	}
	return s.costAll(nodes)
}

// leafChoices returns the raw leaf nodes for a relation (uncosted).
func (s *Searcher) leafChoices(pos int) ([]*plan.Node, error) {
	rel := s.q.Relations[pos]
	var out []*plan.Node
	leaf, err := s.est.Leaf(rel, plan.SeqScan, nil)
	if err != nil {
		return nil, err
	}
	out = append(out, leaf)
	for _, idx := range s.opt.Model.Cat.IndexesOn(rel) {
		l, err := s.est.Leaf(rel, plan.IndexScan, idx)
		if err != nil {
			return nil, err
		}
		out = append(out, l)
	}
	return out, nil
}

// skipExtension applies the cross-product heuristic: when the grown set is
// connected there is always a predicate-connected extension, so
// predicate-less ones are skipped.
func (s *Searcher) skipExtension(left query.RelSet, pos int) bool {
	if !s.opt.AvoidCrossProducts {
		return false
	}
	grown := left.Add(pos)
	if len(s.q.JoinsBetween(left, query.NewRelSet(pos))) > 0 {
		return false
	}
	return s.q.Connected(grown)
}

// skipSplit is skipExtension for bushy splits.
func (s *Searcher) skipSplit(l, r query.RelSet) bool {
	if !s.opt.AvoidCrossProducts {
		return false
	}
	if len(s.q.JoinsBetween(l, r)) > 0 {
		return false
	}
	return s.q.Connected(l.Union(r))
}

// bestOf ranks candidates under the Final comparator.
func (s *Searcher) bestOf(cands []*Candidate) *Candidate {
	var best *Candidate
	for _, c := range cands {
		if best == nil || s.opt.Final(c, best) {
			best = c
		}
	}
	return best
}

// Stats returns the counters accumulated so far.
func (s *Searcher) Stats() Stats { return s.stats }
