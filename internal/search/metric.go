package search

// Metric is a pruning metric α (§6.3): a partial order over candidates.
// Dominates(a, b) means a ≤α b — a is at least as good as b in every
// dimension, so b can never beat a in any extension and may be pruned
// (provided the metric satisfies the principle of optimality).
type Metric interface {
	// Name labels the metric in reports.
	Name() string
	// Dominates reports a ≤α b.
	Dominates(a, b *Candidate) bool
	// Dims is the dimensionality l of the metric, used by the Theorem 3
	// cover-size bound 2^l.
	Dims() int
}

// Comparator is a strict total preference between complete plans: returns
// true when a is strictly preferable to b.
type Comparator func(a, b *Candidate) bool

// ByRT prefers lower response time, breaking ties by lower work and then by
// plan string for determinism.
func ByRT(a, b *Candidate) bool {
	if a.RT() != b.RT() {
		return a.RT() < b.RT()
	}
	if a.Work() != b.Work() {
		return a.Work() < b.Work()
	}
	return a.Node.String() < b.Node.String()
}

// ByWork prefers lower total work — the traditional System R objective.
func ByWork(a, b *Candidate) bool {
	if a.Work() != b.Work() {
		return a.Work() < b.Work()
	}
	if a.RT() != b.RT() {
		return a.RT() < b.RT()
	}
	return a.Node.String() < b.Node.String()
}

// WorkMetric is the traditional 1-dimensional total order on work (§3).
// It satisfies the principle of optimality under physical transparency
// (Theorem 1) but does not predict response time.
type WorkMetric struct{}

// Name implements Metric.
func (WorkMetric) Name() string { return "work" }

// Dims implements Metric.
func (WorkMetric) Dims() int { return 1 }

// Dominates implements Metric.
func (WorkMetric) Dominates(a, b *Candidate) bool { return a.Work() <= b.Work() }

// RTMetric is the naive 1-dimensional total order on response time. Example
// 3 of the paper shows it violates the principle of optimality: it exists
// here so that the violation can be demonstrated, not for production use.
type RTMetric struct{}

// Name implements Metric.
func (RTMetric) Name() string { return "response-time" }

// Dims implements Metric.
func (RTMetric) Dims() int { return 1 }

// Dominates implements Metric.
func (RTMetric) Dominates(a, b *Candidate) bool { return a.RT() <= b.RT() }

// ResourceVectorMetric is the §6.3 fix: the resource vector itself as the
// pruning metric. a dominates b iff a's first- and last-tuple resource
// vectors (time and every work component) are all ≤ b's. By construction it
// correctly predicts response time; the cost calculus is monotone in every
// dimension (for δ disabled), so the principle of optimality holds.
type ResourceVectorMetric struct {
	// L is the machine's resource count, fixed at construction.
	L int
}

// Name implements Metric.
func (m ResourceVectorMetric) Name() string { return "resource-vector" }

// Dims implements Metric: first/last time plus l work components each.
func (m ResourceVectorMetric) Dims() int { return 2 * (m.L + 1) }

// Dominates implements Metric.
func (m ResourceVectorMetric) Dominates(a, b *Candidate) bool {
	const eps = 1e-9
	if a.Desc.First.T > b.Desc.First.T+eps || a.Desc.Last.T > b.Desc.Last.T+eps {
		return false
	}
	for i := range a.Desc.First.W {
		if a.Desc.First.W[i] > b.Desc.First.W[i]+eps {
			return false
		}
		if a.Desc.Last.W[i] > b.Desc.Last.W[i]+eps {
			return false
		}
	}
	return true
}

// OrderedMetric wraps a base metric with the interesting-order dimension of
// §6.3: a dominates b only if, additionally, b's ordering is a subsequence
// of a's (a's order is at least as useful downstream). This is how the
// classic System R interesting-orders heuristic becomes a sound partial
// order instead of a side table.
type OrderedMetric struct {
	Base Metric
}

// Name implements Metric.
func (m OrderedMetric) Name() string { return m.Base.Name() + "+order" }

// Dims implements Metric: one extra dimension for the ordering.
func (m OrderedMetric) Dims() int { return m.Base.Dims() + 1 }

// Dominates implements Metric.
func (m OrderedMetric) Dominates(a, b *Candidate) bool {
	if !b.Order().Subsequence(a.Order()) {
		return false
	}
	return m.Base.Dominates(a, b)
}

// BoundedMetric adds the §6.4 work bound as "a more stringent partial
// order": dominance additionally requires the dominating plan not to exceed
// the work limit (plans above the limit cannot stand in for ones below it).
// Out-of-limit candidates are normally pruned outright via
// Options.WorkLimit; this wrapper exists for metric-level composition.
type BoundedMetric struct {
	Base  Metric
	Limit float64
}

// Name implements Metric.
func (m BoundedMetric) Name() string { return m.Base.Name() + "+bound" }

// Dims implements Metric.
func (m BoundedMetric) Dims() int { return m.Base.Dims() + 1 }

// Dominates implements Metric.
func (m BoundedMetric) Dominates(a, b *Candidate) bool {
	if m.Limit > 0 && a.Work() > m.Limit {
		return false
	}
	return m.Base.Dominates(a, b)
}
