package search

import (
	"testing"

	"paropt/internal/query"
)

func TestThroughputDegradationBound(t *testing.T) {
	b := ThroughputDegradation{K: 2}
	if !b.Admissible(19, 0, 10, 0) || b.Admissible(21, 0, 10, 0) {
		t.Error("throughput-degradation admissibility wrong")
	}
	if b.PruningLimit(10, 99) != 20 {
		t.Error("pruning limit must be k·Wo")
	}
	if b.Name() == "" {
		t.Error("bound needs a name")
	}
}

func TestCostBenefitBound(t *testing.T) {
	b := CostBenefit{K: 2}
	// Wo=10, To=100. Plan work 14 (extra 4), rt 97 (saved 3): 4 ≤ 2·3 ✓.
	if !b.Admissible(14, 97, 10, 100) {
		t.Error("good trade rejected")
	}
	// Extra 8 for saved 3: 8 > 6 ✗.
	if b.Admissible(18, 97, 10, 100) {
		t.Error("bad trade accepted")
	}
	// Extra work with no savings is inadmissible.
	if b.Admissible(11, 100, 10, 100) {
		t.Error("extra work without benefit accepted")
	}
	// No extra work: always admissible, even without savings.
	if !b.Admissible(10, 100, 10, 100) || !b.Admissible(9, 101, 10, 100) {
		t.Error("baseline-or-cheaper plans must be admissible")
	}
	if b.PruningLimit(10, 100) != 210 {
		t.Errorf("pruning limit = %g, want Wo + K·To = 210", b.PruningLimit(10, 100))
	}
	if b.Name() == "" {
		t.Error("bound needs a name")
	}
}

func TestWorkLimitPrunesSearch(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Chain

	free := newSearcher(t, cfg, nil)
	unbounded, err := free.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	wo, err := New(freeOpts(t, cfg)).WorkOptimalBaseline()
	if err != nil {
		t.Fatal(err)
	}
	tight := newSearcher(t, cfg, func(o *Options) { o.WorkLimit = wo.Work() * 1.05 })
	bounded, err := tight.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Best == nil {
		t.Fatal("the work-optimal plan is within any k ≥ 1 limit, so a plan must exist")
	}
	if bounded.Best.Work() > wo.Work()*1.05+1e-9 {
		t.Errorf("bounded search returned work %g above limit %g", bounded.Best.Work(), wo.Work()*1.05)
	}
	if bounded.Stats.Pruned <= unbounded.Stats.Pruned {
		t.Logf("note: pruning counts %d vs %d (bound should prune at least as much)",
			bounded.Stats.Pruned, unbounded.Stats.Pruned)
	}
	if bounded.Best.RT() < unbounded.Best.RT()-1e-9 {
		t.Error("a bounded search cannot find a faster plan than the unbounded one")
	}
}

func freeOpts(t *testing.T, cfg query.GenConfig) Options {
	t.Helper()
	return newSearcher(t, cfg, nil).opt
}

func TestOptimizeBoundedPipeline(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Star

	opt := freeOpts(t, cfg)
	// Unbounded: best RT overall.
	bestFree, baseline, _, err := OptimizeBounded(opt, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if bestFree == nil || baseline == nil {
		t.Fatal("missing plans")
	}
	if bestFree.RT() > baseline.RT()+1e-9 {
		t.Errorf("RT optimizer (%g) must not lose to work baseline (%g)", bestFree.RT(), baseline.RT())
	}

	// k = 1: no extra work allowed; the result's work must equal Wo (within
	// the frontier's granularity it can only be ≤).
	bestK1, base1, _, err := OptimizeBounded(opt, ThroughputDegradation{K: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if bestK1.Work() > base1.Work()+1e-9 {
		t.Errorf("k=1 plan work %g exceeds baseline %g", bestK1.Work(), base1.Work())
	}

	// Larger k must not produce a slower plan than smaller k.
	best2, _, _, err := OptimizeBounded(opt, ThroughputDegradation{K: 2}, false)
	if err != nil {
		t.Fatal(err)
	}
	best4, _, _, err := OptimizeBounded(opt, ThroughputDegradation{K: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if best4.RT() > best2.RT()+1e-9 {
		t.Errorf("k=4 RT %g worse than k=2 RT %g", best4.RT(), best2.RT())
	}
	if best2.RT() > bestK1.RT()+1e-9 {
		t.Errorf("k=2 RT %g worse than k=1 RT %g", best2.RT(), bestK1.RT())
	}
}

func TestOptimizeBoundedCostBenefit(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Chain
	opt := freeOpts(t, cfg)
	best, baseline, _, err := OptimizeBounded(opt, CostBenefit{K: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	extra := best.Work() - baseline.Work()
	saved := baseline.RT() - best.RT()
	if extra > 0 && extra > saved+1e-9 {
		t.Errorf("cost-benefit violated: extra work %g > saved time %g", extra, saved)
	}
}

func TestOptimizeBoundedBushy(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Star
	opt := freeOpts(t, cfg)
	best, _, stats, err := OptimizeBounded(opt, ThroughputDegradation{K: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || stats.PlansConsidered == 0 {
		t.Fatal("bushy bounded search returned nothing")
	}
}
