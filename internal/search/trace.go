package search

import (
	"fmt"
	"io"

	"paropt/internal/query"
)

// Tracer observes the dynamic program as it runs — which subsets were
// solved, how large their cover sets grew, what was pruned — the
// explain-analyze of the optimizer. Implementations must be cheap; the DP
// calls them in its inner loops. When Options.Trace is nil the emit hooks
// are skipped entirely and cost nothing beyond a nil check.
type Tracer interface {
	// Layer is called after all subsets of one cardinality are solved, with
	// the layer's full telemetry record.
	Layer(rec LayerRecord)
	// Subset is called after one relation subset's plans are finalized.
	Subset(set query.RelSet, kept int, considered int64)
	// Final is called with the winning plan (nil if none).
	Final(best *Candidate, stats Stats)
}

// WriterTracer renders trace events as indented text.
type WriterTracer struct {
	W io.Writer
	// Verbose additionally prints every subset line.
	Verbose bool
}

// Layer implements Tracer.
func (t *WriterTracer) Layer(rec LayerRecord) {
	fmt.Fprintf(t.W, "layer %d: %d subsets, %d plans stored, pruned %d (dom %d, work %d, mem %d, beam %d), %.3fms\n",
		rec.Card, rec.Subsets, rec.Kept, rec.Pruned(),
		rec.PrunedDominance, rec.PrunedWork, rec.PrunedMemory, rec.PrunedBeam,
		float64(rec.WallNanos)/1e6)
}

// Subset implements Tracer.
func (t *WriterTracer) Subset(set query.RelSet, kept int, considered int64) {
	if t.Verbose {
		fmt.Fprintf(t.W, "  %v: kept %d (considered %d)\n", set, kept, considered)
	}
}

// Final implements Tracer.
func (t *WriterTracer) Final(best *Candidate, stats Stats) {
	if best == nil {
		fmt.Fprintf(t.W, "no plan (all pruned)\n")
		return
	}
	fmt.Fprintf(t.W, "best: %s\nconsidered=%d physical=%d maxCover=%d pruned=%d\n",
		best, stats.PlansConsidered, stats.PhysicalPlans, stats.MaxCoverSize, stats.Pruned)
}

// MultiTracer fans every event out to several tracers — e.g. a WriterTracer
// capturing text for the service's explain endpoint plus a span adapter
// feeding the request trace. Nil members are skipped, so callers can build
// one from optional tracers without filtering.
type MultiTracer []Tracer

// Layer implements Tracer.
func (m MultiTracer) Layer(rec LayerRecord) {
	for _, t := range m {
		if t != nil {
			t.Layer(rec)
		}
	}
}

// Subset implements Tracer.
func (m MultiTracer) Subset(set query.RelSet, kept int, considered int64) {
	for _, t := range m {
		if t != nil {
			t.Subset(set, kept, considered)
		}
	}
}

// Final implements Tracer.
func (m MultiTracer) Final(best *Candidate, stats Stats) {
	for _, t := range m {
		if t != nil {
			t.Final(best, stats)
		}
	}
}

// CountingTracer accumulates events for tests and tooling.
type CountingTracer struct {
	Layers  []int64 // plans stored per layer
	Records []LayerRecord
	Subsets int
	Best    *Candidate
}

// Layer implements Tracer.
func (t *CountingTracer) Layer(rec LayerRecord) {
	t.Layers = append(t.Layers, rec.Kept)
	t.Records = append(t.Records, rec)
}

// Subset implements Tracer.
func (t *CountingTracer) Subset(query.RelSet, int, int64) { t.Subsets++ }

// Final implements Tracer.
func (t *CountingTracer) Final(best *Candidate, _ Stats) { t.Best = best }

// emitSubset forwards a subset event. The args are scalars already on hand,
// so an uninstalled tracer costs one nil check and no allocation.
func (s *Searcher) emitSubset(set query.RelSet, kept int, considered int64) {
	if s.opt.Trace != nil {
		s.opt.Trace.Subset(set, kept, considered)
	}
}

// emitFinal forwards the final event.
func (s *Searcher) emitFinal(best *Candidate) {
	if s.opt.Trace != nil {
		s.opt.Trace.Final(best, s.stats)
	}
}
