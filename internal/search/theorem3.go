package search

import (
	"math"
	"math/rand"
)

// Theorem3Bound is the paper's upper bound on the expected cover-set size of
// m random points in l dimensions with independent coordinates:
//
//	E[|cover|] ≤ 2^l · (1 − (1 − 2^{−l})^m)
//
// It is at most 2^l for any m, which is what makes partial-order DP with a
// small l practical (§6.2).
//
// The formula is exactly the expected number of distinct cells hit by m
// uniform draws over 2^l cells — the natural model when every metric
// dimension is a coarse two-valued property (an interesting order is either
// present or absent, a resource is either loaded or idle). For continuous
// dimensions the expected number of Pareto minima grows like
// (ln m)^(l−1)/(l−1)! and eventually exceeds the bound; the paper itself
// flags the independence assumption as "likely to be optimistic". The
// experiment below measures both regimes.
func Theorem3Bound(m int, l int) float64 {
	p := math.Pow(2, float64(l))
	return p * (1 - math.Pow(1-1/p, float64(m)))
}

// Dist selects the coordinate distribution for the Theorem 3 experiment.
type Dist int

const (
	// Binary draws each coordinate from {0, 1} — the coarse-dimension
	// model under which the paper's bound is tight.
	Binary Dist = iota
	// Continuous draws each coordinate uniformly from [0, 1).
	Continuous
)

// String names the distribution.
func (d Dist) String() string {
	if d == Binary {
		return "binary"
	}
	return "continuous"
}

// CoverSizeOf computes the exact cover (Pareto-minima) count of a point set
// under component-wise ≤, counting duplicate minima once.
func CoverSizeOf(points [][]float64) int {
	dominates := func(a, b []float64) bool {
		for i := range a {
			if a[i] > b[i] {
				return false
			}
		}
		return true
	}
	count := 0
	for i, p := range points {
		minimal := true
		for j, q := range points {
			if i == j {
				continue
			}
			switch {
			case dominates(q, p) && !dominates(p, q):
				// q strictly covers p.
				minimal = false
			case j < i && dominates(q, p) && dominates(p, q):
				// Duplicates: keep only the first occurrence.
				minimal = false
			}
			if !minimal {
				break
			}
		}
		if minimal {
			count++
		}
	}
	return count
}

// Theorem3Trial draws m points in l dimensions from the distribution and
// returns the cover size.
func Theorem3Trial(m, l int, dist Dist, rng *rand.Rand) int {
	points := make([][]float64, m)
	for i := range points {
		pt := make([]float64, l)
		for d := range pt {
			if dist == Binary {
				pt[d] = float64(rng.Intn(2))
			} else {
				pt[d] = rng.Float64()
			}
		}
		points[i] = pt
	}
	return CoverSizeOf(points)
}

// Theorem3Experiment estimates the expected cover size over trials and
// returns (measured mean, analytic bound). Deterministic for a given seed.
func Theorem3Experiment(m, l, trials int, dist Dist, seed int64) (mean, bound float64) {
	rng := rand.New(rand.NewSource(seed))
	total := 0
	for t := 0; t < trials; t++ {
		total += Theorem3Trial(m, l, dist, rng)
	}
	return float64(total) / float64(trials), Theorem3Bound(m, l)
}
