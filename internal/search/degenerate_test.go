package search

import (
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// Degenerate query shapes every algorithm must handle.

func degenerateSearcher(t *testing.T, rels int, joins bool) *Searcher {
	t.Helper()
	cat := catalog.New()
	var names []string
	for i := 0; i < rels; i++ {
		name := string(rune('A' + i))
		names = append(names, name)
		cat.MustAddRelation(catalog.Relation{
			Name:    name,
			Columns: []catalog.Column{{Name: "k", NDV: 50, Width: 8}},
			Card:    100, Pages: 2, Disk: i,
		})
	}
	q := &query.Query{Relations: names}
	if joins {
		for i := 0; i+1 < rels; i++ {
			q.Joins = append(q.Joins, query.JoinPredicate{
				Left:  query.ColumnRef{Relation: names[i], Column: "k"},
				Right: query.ColumnRef{Relation: names[i+1], Column: "k"},
			})
		}
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 2, Disks: 2})
	return New(Options{
		Model:              cost.NewModel(cat, m, est, cost.DefaultParams()),
		Expand:             optree.DefaultExpandOptions(),
		Annotate:           optree.DefaultAnnotateOptions(),
		AvoidCrossProducts: true,
	})
}

// TestSingleRelationQuery: every algorithm reduces to access-path selection.
func TestSingleRelationQuery(t *testing.T) {
	algs := []struct {
		name string
		run  func(*Searcher) (*Result, error)
	}{
		{"dp", (*Searcher).DPLeftDeep},
		{"podp", (*Searcher).PODPLeftDeep},
		{"dp-bushy", (*Searcher).DPBushy},
		{"podp-bushy", (*Searcher).PODPBushy},
		{"brute", (*Searcher).BruteForceLeftDeep},
		{"brute-bushy", (*Searcher).BruteForceBushy},
		{"two-phase", (*Searcher).TwoPhase},
	}
	for _, a := range algs {
		res, err := a.run(degenerateSearcher(t, 1, false))
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if res.Best == nil || !res.Best.Node.IsLeaf() {
			t.Errorf("%s: expected a bare access plan, got %v", a.name, res.Best)
		}
	}
}

// TestPredicatelessQuery: with no join predicates every join is a cross
// product; the cross-product heuristic must not strand the search.
func TestPredicatelessQuery(t *testing.T) {
	for _, a := range []struct {
		name string
		run  func(*Searcher) (*Result, error)
	}{
		{"dp", (*Searcher).DPLeftDeep},
		{"podp", (*Searcher).PODPLeftDeep},
		{"dp-bushy", (*Searcher).DPBushy},
	} {
		res, err := a.run(degenerateSearcher(t, 3, false))
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		if res.Best == nil {
			t.Fatalf("%s: no plan for the cross-product query", a.name)
		}
		if got := len(res.Best.Node.Leaves()); got != 3 {
			t.Errorf("%s: plan covers %d relations", a.name, got)
		}
		// Cross products execute as nested loops.
		var check func(n *plan.Node)
		check = func(n *plan.Node) {
			if n.IsLeaf() {
				return
			}
			if len(n.Preds) == 0 && n.Method != plan.NestedLoops {
				t.Errorf("%s: cross product via %v", a.name, n.Method)
			}
			check(n.Left)
			check(n.Right)
		}
		check(res.Best.Node)
	}
}

// TestEmptyQueryErrors: zero relations is a caller error everywhere.
func TestEmptyQueryErrors(t *testing.T) {
	s := degenerateSearcher(t, 1, false)
	s.q = &query.Query{} // force empty
	for _, run := range []func(*Searcher) (*Result, error){
		(*Searcher).DPLeftDeep, (*Searcher).PODPLeftDeep,
		(*Searcher).DPBushy, (*Searcher).PODPBushy,
		(*Searcher).BruteForceLeftDeep, (*Searcher).BruteForceBushy,
	} {
		if _, err := run(s); err == nil {
			t.Error("empty query should error")
		}
	}
	if _, err := s.Randomized(DefaultRandomizedOptions()); err == nil {
		t.Error("randomized: empty query should error")
	}
}
