package search

import (
	"testing"

	"paropt/internal/query"
)

// Cross-algorithm consistency checks: different algorithms over the same
// space and metric must agree on the optimum.

// TestDPAndPODPAgreeOnWork: with the total-order work metric, Figure 1 and
// Figure 2 collapse to the same search; their optima must match exactly.
func TestDPAndPODPAgreeOnWork(t *testing.T) {
	for _, shape := range []query.Shape{query.Chain, query.Star, query.Clique} {
		cfg := query.DefaultGenConfig()
		cfg.Relations = 5
		cfg.Shape = shape
		mkOpts := func(o *Options) {
			o.Metric = WorkMetric{}
			o.Final = ByWork
		}
		dp, err := newSearcher(t, cfg, mkOpts).DPLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		podp, err := newSearcher(t, cfg, mkOpts).PODPLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		if dp.Best.Work() != podp.Best.Work() {
			t.Errorf("%v: DP work %g != PODP work %g", shape, dp.Best.Work(), podp.Best.Work())
		}
		// A total order keeps covers at size 1.
		if podp.Stats.MaxCoverSize != 1 {
			t.Errorf("%v: total-order cover grew to %d", shape, podp.Stats.MaxCoverSize)
		}
	}
}

// TestBushyWorkNoWorseThanLeftDeep: the bushy space contains every
// left-deep plan, so the bushy work optimum cannot exceed the left-deep one.
func TestBushyWorkNoWorseThanLeftDeep(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Chain
	mkOpts := func(o *Options) {
		o.Metric = WorkMetric{}
		o.Final = ByWork
	}
	ld, err := newSearcher(t, cfg, mkOpts).DPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	bushy, err := newSearcher(t, cfg, mkOpts).DPBushy()
	if err != nil {
		t.Fatal(err)
	}
	if bushy.Best.Work() > ld.Best.Work()+1e-9 {
		t.Errorf("bushy work %g worse than left-deep %g", bushy.Best.Work(), ld.Best.Work())
	}
}

// TestBruteForceMatchesDPOnWork: brute force with greedy physical choices
// by work must find the DP's work optimum on a clique (same joinPlan logic,
// exhaustive orders).
func TestBruteForceMatchesDPOnWork(t *testing.T) {
	cfg := cliqueCfg(5)
	mkOpts := func(o *Options) {
		o.Metric = WorkMetric{}
		o.Final = ByWork
	}
	dp, err := newSearcher(t, cfg, mkOpts).DPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	brute, err := newSearcher(t, cfg, mkOpts).BruteForceLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if dp.Best.Work() != brute.Best.Work() {
		t.Errorf("DP work %g != brute-force work %g", dp.Best.Work(), brute.Best.Work())
	}
}

// TestTwoPhaseNeverBeatsExhaustive: two-phase restricts the space, so it
// cannot find a lower RT than partial-order DP over the same trees.
func TestTwoPhaseNeverBeatsExhaustive(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		cfg := query.DefaultGenConfig()
		cfg.Relations = 4
		cfg.Seed = seed
		two, err := newSearcher(t, cfg, nil).TwoPhase()
		if err != nil {
			t.Fatal(err)
		}
		podp, err := newSearcher(t, cfg, nil).PODPLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		if podp.Best.RT() > two.Best.RT()+1e-9 {
			t.Errorf("seed %d: PODP rt %g lost to two-phase rt %g", seed, podp.Best.RT(), two.Best.RT())
		}
	}
}

// TestCoverCapBoundsSearch: a beam cap keeps covers at the cap, finds a
// plan, and cannot beat the exact search.
func TestCoverCapBoundsSearch(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Star
	exact, err := newSearcher(t, cfg, nil).PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	beam, err := newSearcher(t, cfg, func(o *Options) { o.CoverCap = 8 }).PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if beam.Best == nil {
		t.Fatal("beam search found no plan")
	}
	if beam.Stats.MaxCoverSize > 9 { // cap + the transient overflow slot
		t.Errorf("beam cover grew to %d despite cap 8", beam.Stats.MaxCoverSize)
	}
	if beam.Best.RT() < exact.Best.RT()-1e-9 {
		t.Errorf("beam rt %g beats exact rt %g — impossible", beam.Best.RT(), exact.Best.RT())
	}
	if beam.Stats.PlansConsidered >= exact.Stats.PlansConsidered {
		t.Errorf("beam considered %d plans, exact %d — cap should shrink the search",
			beam.Stats.PlansConsidered, exact.Stats.PlansConsidered)
	}
}

// TestBeamCoverSetEviction: unit-level behavior of the capped cover.
func TestBeamCoverSetEviction(t *testing.T) {
	cs := NewBeamCoverSet(ResourceVectorMetric{L: 2}, 2, ByRT)
	a := vecCand("a", 1, 9) // rt 9
	b := vecCand("b", 5, 5) // rt 5
	c := vecCand("c", 9, 1) // rt 9
	if !cs.Insert(a) || !cs.Insert(b) {
		t.Fatal("first two incomparable plans must be kept")
	}
	// Inserting c overflows the cap; the worst by RT is evicted. a and c
	// tie at rt 9, work 10 — the tie-break (plan string) keeps "a" ahead
	// of "c", so c is evicted and Insert reports false.
	if cs.Insert(c) {
		t.Error("the overflow victim was the newcomer; Insert should report false")
	}
	if cs.Len() != 2 {
		t.Fatalf("cover size %d, want 2", cs.Len())
	}
	if cs.Evicted != 1 {
		t.Errorf("evicted = %d, want 1", cs.Evicted)
	}
}
