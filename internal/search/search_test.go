package search

import (
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// newSearcher builds a searcher over a generated workload.
func newSearcher(t testing.TB, cfg query.GenConfig, mut func(*Options)) *Searcher {
	t.Helper()
	cat, q := query.Generate(cfg)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	opt := Options{
		Model:    cost.NewModel(cat, m, est, cost.DefaultParams()),
		Expand:   optree.DefaultExpandOptions(),
		Annotate: optree.DefaultAnnotateOptions(),
	}
	if mut != nil {
		mut(&opt)
	}
	return New(opt)
}

func cliqueCfg(n int) query.GenConfig {
	cfg := query.DefaultGenConfig()
	cfg.Relations = n
	cfg.Shape = query.Clique
	cfg.IndexProb = 0 // one access path per relation keeps counting exact
	cfg.SortedProb = 0
	return cfg
}

// exactOpts configures the searcher so the calculus is exactly monotone
// (δ off, no cloning), making partial-order DP provably optimal and
// comparable with exhaustive brute force.
func exactOpts(o *Options) {
	o.Model.P.PipelineK = 0
	o.Annotate.MaxDegree = 1
	o.ExhaustivePhysical = true
}

func TestDPLeftDeepTable1Counts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6} {
		s := newSearcher(t, cliqueCfg(n), nil)
		res, err := s.DPLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		if res.Best == nil {
			t.Fatalf("n=%d: no plan", n)
		}
		want := int64(DPLeftDeepPlansFormula(n))
		if res.Stats.PlansConsidered != want {
			t.Errorf("n=%d: plans considered = %d, want n·2^(n−1) = %d",
				n, res.Stats.PlansConsidered, want)
		}
		wantSpace := int64(DPLeftDeepSpaceFormula(n))
		if res.Stats.MaxLayerPlans != wantSpace {
			t.Errorf("n=%d: max layer = %d, want C(n,⌈n/2⌉) = %d",
				n, res.Stats.MaxLayerPlans, wantSpace)
		}
	}
}

func TestBruteForceLeftDeepTable1Counts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		s := newSearcher(t, cliqueCfg(n), nil)
		res, err := s.BruteForceLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(LeftDeepSpaceSize(n))
		if res.Stats.PlansConsidered != want {
			t.Errorf("n=%d: plans considered = %d, want n! = %d",
				n, res.Stats.PlansConsidered, want)
		}
		if res.Stats.MaxLayerPlans != 1 {
			t.Errorf("n=%d: brute force stores %d, want 1", n, res.Stats.MaxLayerPlans)
		}
	}
}

func TestDPBushyTable1Counts(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		s := newSearcher(t, cliqueCfg(n), nil)
		res, err := s.DPBushy()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(DPBushyPlansFormula(n))
		if res.Stats.PlansConsidered != want {
			t.Errorf("n=%d: plans considered = %d, want 3^n − 2^(n+1) + n + 1 = %d",
				n, res.Stats.PlansConsidered, want)
		}
	}
}

func TestBruteForceBushyTable1Counts(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		s := newSearcher(t, cliqueCfg(n), nil)
		res, err := s.BruteForceBushy()
		if err != nil {
			t.Fatal(err)
		}
		want := int64(BushySpaceSize(n))
		if res.Stats.PlansConsidered != want {
			t.Errorf("n=%d: plans considered = %d, want (2(n−1))!/(n−1)! = %d",
				n, res.Stats.PlansConsidered, want)
		}
	}
}

func TestSpaceFormulas(t *testing.T) {
	if LeftDeepSpaceSize(4) != 24 || LeftDeepSpaceSize(1) != 1 {
		t.Error("LeftDeepSpaceSize wrong")
	}
	// n=3: (2·2)!/2! = 12; n=10: 18!/9! = 17643225600.
	if BushySpaceSize(3) != 12 {
		t.Errorf("BushySpaceSize(3) = %g", BushySpaceSize(3))
	}
	if BushySpaceSize(10) != 17643225600 {
		t.Errorf("BushySpaceSize(10) = %g", BushySpaceSize(10))
	}
	// §6.4: bushy/left-deep ratio at n=10 is three orders of magnitude.
	ratio := BushySpaceSize(10) / LeftDeepSpaceSize(10)
	if ratio < 1000 || ratio > 10000 {
		t.Errorf("bushy/left-deep ratio at n=10 = %.0f, want ~4862 (3 orders)", ratio)
	}
	if Binomial(5, 2) != 10 || Binomial(5, 0) != 1 || Binomial(5, 6) != 0 || Binomial(5, -1) != 0 {
		t.Error("Binomial wrong")
	}
	if DPLeftDeepPlansFormula(4) != 32 {
		t.Error("DPLeftDeepPlansFormula wrong")
	}
	if DPBushyPlansFormula(3) != 27-16+3+1 {
		t.Error("DPBushyPlansFormula wrong")
	}
	if DPLeftDeepSpaceFormula(4) != 6 {
		t.Error("DPLeftDeepSpaceFormula wrong")
	}
}

// TestPODPMatchesExhaustiveBruteForce: with an exactly monotone calculus the
// partial-order DP over left-deep trees must find the same optimal response
// time as exhaustive enumeration — the correctness core of Figure 2.
func TestPODPMatchesExhaustiveBruteForce(t *testing.T) {
	for _, shape := range []query.Shape{query.Chain, query.Star, query.Clique} {
		for _, seed := range []int64{1, 2, 3} {
			cfg := query.DefaultGenConfig()
			cfg.Relations = 4
			cfg.Shape = shape
			cfg.Seed = seed
			cfg.IndexProb = 0.7
			sp := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
			podp, err := sp.PODPLeftDeep()
			if err != nil {
				t.Fatal(err)
			}
			sb := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
			brute, err := sb.BruteForceLeftDeep()
			if err != nil {
				t.Fatal(err)
			}
			if podp.Best == nil || brute.Best == nil {
				t.Fatalf("%v/%d: missing plan", shape, seed)
			}
			if diff := podp.Best.RT() - brute.Best.RT(); diff > 1e-6 || diff < -1e-6 {
				t.Errorf("%v/%d: PODP RT %.4f != brute-force RT %.4f (plan %s vs %s)",
					shape, seed, podp.Best.RT(), brute.Best.RT(), podp.Best.Node, brute.Best.Node)
			}
		}
	}
}

// TestPODPBushyMatchesExhaustive: same agreement over the bushy space.
func TestPODPBushyMatchesExhaustive(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Chain
	cfg.Seed = 7
	sp := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
	podp, err := sp.PODPBushy()
	if err != nil {
		t.Fatal(err)
	}
	sb := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
	brute, err := sb.BruteForceBushy()
	if err != nil {
		t.Fatal(err)
	}
	if podp.Best == nil || brute.Best == nil {
		t.Fatal("missing plan")
	}
	if diff := podp.Best.RT() - brute.Best.RT(); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("PODP bushy RT %.4f != brute RT %.4f", podp.Best.RT(), brute.Best.RT())
	}
}

// TestBushyNoWorseThanLeftDeep: the bushy space contains every left-deep
// plan, so its optimum cannot be worse.
func TestBushyNoWorseThanLeftDeep(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Star
	cfg.IndexProb = 0.3
	sl := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
	ld, err := sl.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	sb := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
	bushy, err := sb.PODPBushy()
	if err != nil {
		t.Fatal(err)
	}
	if bushy.Best.RT() > ld.Best.RT()+1e-6 {
		t.Errorf("bushy RT %.4f worse than left-deep RT %.4f", bushy.Best.RT(), ld.Best.RT())
	}
}

// example3Searcher builds the paper's Example 3 database: CTR with a
// clustered (covering) index I_CT on disk 1 and an unclustered (covering)
// index I_CR on disk 2, CI with covering index I_C on disk 1. CPU costs are
// zeroed ("considering disk1 and disk2 to be the only significant
// resources") and only nested-loops is allowed, as in the example.
func example3Searcher(t testing.TB, metric Metric) *Searcher {
	t.Helper()
	cat := catalogForExample3()
	q := &query.Query{
		Name:      "example3",
		Relations: []string{"CTR", "CI"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "CTR", Column: "course"},
			Right: query.ColumnRef{Relation: "CI", Column: "course"},
		}},
		Projection: []query.ColumnRef{{Relation: "CTR", Column: "course"}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 1, Disks: 2})
	p := cost.Params{IOPage: 1, IndexProbeIO: 0.02} // all CPU costs zero
	return New(Options{
		Model:    cost.NewModel(cat, m, est, p),
		Expand:   optree.ExpandOptions{},
		Annotate: optree.AnnotateOptions{MaxDegree: 1},
		Metric:   metric,
		Methods:  []plan.JoinMethod{plan.NestedLoops},
	})
}

func catalogForExample3() *catalog.Catalog {
	cat := catalog.New()
	cat.MustAddRelation(catalog.Relation{
		Name: "CTR",
		Columns: []catalog.Column{
			{Name: "course", NDV: 20000, Width: 8},
			{Name: "time", NDV: 100, Width: 8},
			{Name: "room", NDV: 200, Width: 8},
		},
		Card: 20000, Pages: 5000, Disk: 0,
	})
	// CI is ten times larger than CTR, so driving the nested loops from CI
	// (200 000 probes) is never attractive — the example's plans keep CTR
	// as the outer.
	cat.MustAddRelation(catalog.Relation{
		Name: "CI",
		Columns: []catalog.Column{
			{Name: "course", NDV: 20000, Width: 8},
			{Name: "instructor", NDV: 500, Width: 8},
		},
		Card: 200000, Pages: 20000, Disk: 1,
	})
	// I_CT: cheaper scan (200 pages) but on disk 0 — the disk I_C shares.
	cat.MustAddIndex(catalog.Index{
		Name: "I_CT", Relation: "CTR", Columns: []string{"course", "time"},
		Clustered: true, Covering: true, Disk: 0, Pages: 200,
	})
	// I_CR: slightly dearer scan (250 pages) but on the idle disk 1.
	cat.MustAddIndex(catalog.Index{
		Name: "I_CR", Relation: "CTR", Columns: []string{"course", "room"},
		Covering: true, Disk: 1, Pages: 250,
	})
	// I_C: the join's inner probes land on disk 0 (0.02 I/O × 20000 = 400).
	cat.MustAddIndex(catalog.Index{
		Name: "I_C", Relation: "CI", Columns: []string{"course"},
		Covering: true, Disk: 0, Pages: 1000,
	})
	return cat
}

// TestExample3OptimalityViolation replays Example 3 end to end through the
// real optimizer: the total-order response-time metric keeps only
// indexScan(I_CT) (RT 200 < 250) and is forced into the contended final plan
// (RT 600), while partial-order DP on resource vectors keeps both access
// plans and finds the true optimum (RT 400).
func TestExample3OptimalityViolation(t *testing.T) {
	// Naive total-order DP on response time.
	sRT := example3Searcher(t, RTMetric{})
	naive, err := sRT.DPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	// Partial-order DP on resource vectors.
	sPO := example3Searcher(t, nil)
	po, err := sPO.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if naive.Best == nil || po.Best == nil {
		t.Fatal("missing plans")
	}
	if got, want := naive.Best.RT(), 600.0; got != want {
		t.Errorf("naive RT-metric DP final RT = %g, want %g (kept the greedy subplan)", got, want)
	}
	if got, want := po.Best.RT(), 400.0; got != want {
		t.Errorf("PO-DP final RT = %g, want %g", got, want)
	}
	if po.Best.RT() >= naive.Best.RT() {
		t.Errorf("PO-DP (%g) must beat naive RT DP (%g): principle of optimality violated by RT",
			po.Best.RT(), naive.Best.RT())
	}
	// The winning outer is the dearer-in-isolation I_CR path.
	if got := po.Best.Node.String(); got != "NL(indexScan(I_CR), indexScan(I_C))" {
		t.Errorf("PO-DP plan = %s, want NL(indexScan(I_CR), indexScan(I_C))", got)
	}
}

// TestExample3AccessPlanRTs pins the subplan response times the example
// hinges on: RT(I_CT scan) < RT(I_CR scan).
func TestExample3AccessPlanRTs(t *testing.T) {
	s := example3Searcher(t, nil)
	cands, err := s.accessCandidates(0) // CTR
	if err != nil {
		t.Fatal(err)
	}
	rts := map[string]float64{}
	for _, c := range cands {
		rts[c.Node.String()] = c.RT()
	}
	if rts["indexScan(I_CT)"] != 200 || rts["indexScan(I_CR)"] != 250 {
		t.Errorf("access RTs = %v, want I_CT:200 I_CR:250", rts)
	}
	if rts["indexScan(I_CT)"] >= rts["indexScan(I_CR)"] {
		t.Error("example requires RT(p1) < RT(p2)")
	}
}
