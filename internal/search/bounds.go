package search

import "fmt"

// The §2 optimization metric: minimize response time subject to a bound on
// extra work. Two bounding policies are provided. Both need the work-optimal
// baseline (Wo, To), obtained from a traditional work optimizer (Figure 1).

// Bound is a §2 admissibility policy for plans relative to the work-optimal
// baseline.
type Bound interface {
	// Name labels the policy.
	Name() string
	// Admissible reports whether the plan's (work, rt) is within the bound
	// given the baseline (wo, to). Inadmissible plans cost "infinite".
	Admissible(work, rt, wo, to float64) bool
	// PruningLimit returns an upper bound on work usable for in-search
	// pruning (0 if none): any partial plan already above the limit can
	// never become admissible, because work only grows under extension.
	PruningLimit(wo, to float64) float64
}

// ThroughputDegradation is the §2 "limit on throughput degradation": a plan
// is admissible iff Wp ≤ k·Wo. k ≥ 1; k = 1 allows no extra work at all.
type ThroughputDegradation struct {
	K float64
}

// Name implements Bound.
func (b ThroughputDegradation) Name() string { return fmt.Sprintf("throughput-degradation(k=%g)", b.K) }

// Admissible implements Bound.
func (b ThroughputDegradation) Admissible(work, _, wo, _ float64) bool {
	return work <= b.K*wo
}

// PruningLimit implements Bound: the limit is directly usable in-search.
func (b ThroughputDegradation) PruningLimit(wo, _ float64) float64 { return b.K * wo }

// CostBenefit is the §2 "cost-benefit ratio" bound: each unit of response
// time bought may cost at most K units of extra work, i.e. a plan is
// admissible iff Wp − Wo ≤ K·(To − Tp). (The paper prints the fraction the
// other way up, (To−Tp)/(Wp−Wo) ≤ k, which would penalize large
// improvements; we implement the prose — "a limit on the ratio of the
// decrease in response time to additional work required" — in its
// economically sensible direction. See DESIGN.md.)
type CostBenefit struct {
	K float64
}

// Name implements Bound.
func (b CostBenefit) Name() string { return fmt.Sprintf("cost-benefit(k=%g)", b.K) }

// Admissible implements Bound.
func (b CostBenefit) Admissible(work, rt, wo, to float64) bool {
	extra := work - wo
	if extra <= 0 {
		return true // no extra work at all
	}
	saved := to - rt
	if saved <= 0 {
		return false // extra work with no response-time benefit
	}
	return extra <= b.K*saved
}

// PruningLimit implements Bound: a plan can save at most To (response time
// cannot drop below zero), so work beyond Wo + K·To is never admissible.
func (b CostBenefit) PruningLimit(wo, to float64) float64 { return wo + b.K*to }

// FilterFrontier picks the best plan under final among the frontier members
// admissible under bound, given the work-optimal baseline (wo, to). A nil
// bound admits everything; a nil final defaults to ByRT. It returns nil when
// no member is admissible (the §2 fallback is then the baseline itself,
// which is always admissible under both policies since Wp = Wo).
//
// This is the serving-layer entry point for cover-set reuse: a cached root
// cover set answers later requests with *different* bound knobs by
// re-filtering the stored Pareto frontier — no new search runs.
func FilterFrontier(frontier []*Candidate, bound Bound, wo, to float64, final Comparator) *Candidate {
	if final == nil {
		final = ByRT
	}
	var best *Candidate
	for _, c := range frontier {
		if bound != nil && !bound.Admissible(c.Work(), c.RT(), wo, to) {
			continue
		}
		if best == nil || final(c, best) {
			best = c
		}
	}
	return best
}

// FullCoverSet runs the work-optimal baseline (Figure 1) and an *unbounded*
// partial-order search, returning the baseline and the complete root cover
// set. Unlike OptimizeBounded it folds no bound into the search, so the
// frontier is the full Pareto set and can be re-filtered under any later
// bound via FilterFrontier — the amortization a plan cache relies on.
// bushy selects the bushy-tree space.
func FullCoverSet(opt Options, bushy bool) (baseline *Candidate, frontier []*Candidate, stats Stats, err error) {
	base := New(opt)
	baseline, err = base.WorkOptimalBaseline()
	if err != nil {
		return nil, nil, Stats{}, err
	}
	s := New(opt)
	var res *Result
	if bushy {
		res, err = s.PODPBushy()
	} else {
		res, err = s.PODPLeftDeep()
	}
	if err != nil {
		return nil, nil, Stats{}, err
	}
	return baseline, res.Frontier, res.Stats, nil
}

// OptimizeBounded runs the full §2 pipeline on this searcher's model:
//  1. a work optimizer (Figure 1) establishes the baseline (Wo, To);
//  2. a partial-order response-time search runs with the bound's pruning
//     limit folded in ("work bounds ... in fact cut down the search space",
//     §6.4);
//  3. the frontier is filtered by the bound and the best admissible plan
//     under Final is returned, together with the baseline.
//
// bushy selects the bushy-tree search space. A nil bound means unbounded.
func OptimizeBounded(opt Options, bound Bound, bushy bool) (best, baseline *Candidate, stats Stats, err error) {
	base := New(opt)
	baseline, err = base.WorkOptimalBaseline()
	if err != nil {
		return nil, nil, Stats{}, err
	}
	wo, to := baseline.Work(), baseline.RT()

	bounded := opt
	if bound != nil {
		bounded.WorkLimit = bound.PruningLimit(wo, to)
	}
	s := New(bounded)
	var res *Result
	if bushy {
		res, err = s.PODPBushy()
	} else {
		res, err = s.PODPLeftDeep()
	}
	if err != nil {
		return nil, nil, Stats{}, err
	}
	stats = res.Stats
	best = FilterFrontier(res.Frontier, bound, wo, to, opt.Final)
	if best == nil {
		// Everything admissible was pruned; the baseline itself is always
		// admissible under both policies (Wp = Wo).
		best = baseline
	}
	return best, baseline, stats, nil
}
