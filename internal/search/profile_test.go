package search

import (
	"strings"
	"testing"

	"paropt/internal/query"
)

// TestMultiTracerNilMembers: nil members are skipped for every event, an
// all-nil fan-out is a no-op, and live members still see everything.
func TestMultiTracerNilMembers(t *testing.T) {
	counting := &CountingTracer{}
	var sb strings.Builder
	tracer := MultiTracer{nil, counting, nil, &WriterTracer{W: &sb}}
	s := newSearcher(t, cliqueCfg(4), func(o *Options) { o.Trace = tracer })
	res, err := s.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if len(counting.Records) != 4 {
		t.Errorf("counting member saw %d layer records, want 4", len(counting.Records))
	}
	if counting.Best != res.Best {
		t.Error("counting member missed the final event")
	}
	if !strings.Contains(sb.String(), "layer 4:") || !strings.Contains(sb.String(), "best:") {
		t.Errorf("writer member missed events:\n%s", sb.String())
	}

	// An entirely-nil fan-out must not panic on any event.
	empty := MultiTracer{nil, nil}
	s2 := newSearcher(t, cliqueCfg(3), func(o *Options) { o.Trace = empty })
	if _, err := s2.PODPLeftDeep(); err != nil {
		t.Fatal(err)
	}
}

// TestLayerRecordsAggregateToStats cross-checks the per-layer telemetry
// against the search totals for every strategy that records layers: the
// deltas captured at layer boundaries must partition the cumulative
// counters, and the prune reasons must partition the prune total.
func TestLayerRecordsAggregateToStats(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Chain

	strategies := []struct {
		name       string
		run        func(s *Searcher) (*Result, error)
		wantLayers int
	}{
		{"brute", (*Searcher).BruteForceLeftDeep, 1},
		{"podp", (*Searcher).PODPLeftDeep, 5},
		{"podp-bushy", (*Searcher).PODPBushy, 5},
		{"dp", (*Searcher).DPLeftDeep, 5},
		{"randomized", func(s *Searcher) (*Result, error) {
			opts := DefaultRandomizedOptions()
			opts.Seed = 42
			return s.Randomized(opts)
		}, 1},
	}
	for _, tc := range strategies {
		t.Run(tc.name, func(t *testing.T) {
			s := newSearcher(t, cfg, nil)
			res, err := tc.run(s)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Stats
			if len(st.Layers) != tc.wantLayers {
				t.Fatalf("recorded %d layers, want %d", len(st.Layers), tc.wantLayers)
			}
			var considered, physical, pruned, kept int64
			for _, l := range st.Layers {
				considered += l.Considered
				physical += l.Physical
				pruned += l.Pruned()
				kept += l.Kept
				if l.Pruned() != l.PrunedDominance+l.PrunedWork+l.PrunedMemory+l.PrunedBeam {
					t.Errorf("layer %d prune reasons don't partition: %+v", l.Card, l)
				}
				if l.WallNanos < 0 || l.BytesRetained < 0 {
					t.Errorf("layer %d has negative aggregates: %+v", l.Card, l)
				}
			}
			if considered != st.PlansConsidered {
				t.Errorf("layer considered sum %d != stats %d", considered, st.PlansConsidered)
			}
			if physical != st.PhysicalPlans {
				t.Errorf("layer physical sum %d != stats %d", physical, st.PhysicalPlans)
			}
			if pruned != st.Pruned {
				t.Errorf("layer pruned sum %d != stats %d", pruned, st.Pruned)
			}
			if st.Pruned != st.PrunedDominance+st.PrunedWork+st.PrunedMemory+st.PrunedBeam {
				t.Errorf("stats prune reasons don't partition the total: %+v", st)
			}
			if res.Best != nil && kept == 0 {
				t.Error("a successful search should retain candidates in its layers")
			}

			// The aggregated profile mirrors the records and renders.
			p := st.Profile()
			if len(p.Layers) != tc.wantLayers {
				t.Errorf("profile layers = %d, want %d", len(p.Layers), tc.wantLayers)
			}
			table := p.Table()
			if !strings.Contains(table, "layer") || !strings.Contains(table, "total") {
				t.Errorf("profile table incomplete:\n%s", table)
			}
		})
	}
}

// TestTwoPhaseRecordsPseudoLayer: the two-phase strategy records exactly one
// pseudo-layer spanning both phases.
func TestTwoPhaseRecordsPseudoLayer(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Star
	s := newSearcher(t, cfg, nil)
	res, err := s.TwoPhase()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Layers) != 1 {
		t.Fatalf("two-phase should record 1 pseudo-layer, got %d", len(res.Stats.Layers))
	}
	l := res.Stats.Layers[0]
	if l.Card != 4 || l.Subsets != 1 {
		t.Errorf("pseudo-layer shape wrong: %+v", l)
	}
	if res.Best != nil && l.Kept != 1 {
		t.Errorf("pseudo-layer should keep the winner: %+v", l)
	}
	if l.Considered != res.Stats.PlansConsidered {
		t.Errorf("pseudo-layer considered %d != stats %d", l.Considered, res.Stats.PlansConsidered)
	}
}
