package search

import (
	"fmt"

	"paropt/internal/query"
)

// BruteForceLeftDeep enumerates all n! join orders. In the default
// (counting) mode each permutation is realized by choosing the best
// physical extension greedily at every step — one plan considered per
// permutation, matching Table 1's n! accounting with constant space. With
// Options.ExhaustivePhysical every method × access-path combination is
// carried through, making the search exact at exponential extra cost (meant
// for small n, where it serves as ground truth for the DP algorithms).
func (s *Searcher) BruteForceLeftDeep() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	mark := s.beginLayer()
	var best *Candidate
	keep := func(c *Candidate) {
		if c != nil && (best == nil || s.opt.Final(c, best)) {
			best = c
		}
	}
	s.stats.MaxLayerPlans = 1

	perm := make([]int, 0, n)
	used := query.RelSet(0)
	var rec func(prefixes []*Candidate) error
	rec = func(prefixes []*Candidate) error {
		if len(perm) == n {
			s.stats.PlansConsidered++ // one complete join order
			for _, p := range prefixes {
				keep(p)
			}
			return nil
		}
		for j := 0; j < n; j++ {
			if used.Has(j) {
				continue
			}
			var next []*Candidate
			if len(perm) == 0 {
				cands, err := s.accessCandidates(j)
				if err != nil {
					return err
				}
				next = s.narrow(cands)
			} else {
				if s.skipExtension(used, j) {
					continue
				}
				for _, p := range prefixes {
					exts, err := s.extendAll(p.Node, j)
					if err != nil {
						return err
					}
					next = append(next, exts...)
				}
				next = s.narrow(next)
			}
			if len(next) == 0 {
				continue
			}
			perm = append(perm, j)
			used = used.Add(j)
			if err := rec(next); err != nil {
				return err
			}
			perm = perm[:len(perm)-1]
			used = used.Remove(j)
		}
		return nil
	}
	if err := rec(nil); err != nil {
		return nil, err
	}
	kept := int64(0)
	if best != nil {
		kept = 1
	}
	// One pseudo-layer: brute force is not layered, but the record still
	// carries the search's totals and wall time for the profile.
	s.endLayer(mark, n, 1, kept, 1)
	if best == nil {
		return &Result{Stats: s.stats}, nil
	}
	return &Result{Best: best, Frontier: []*Candidate{best}, Stats: s.stats}, nil
}

// BruteForceBushy enumerates every bushy tree shape and leaf order — the
// (2(n−1))!/(n−1)! plans of Table 1 — by recursively splitting relation
// sets. Physical choices are greedy per join unless ExhaustivePhysical.
func (s *Searcher) BruteForceBushy() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	mark := s.beginLayer()
	var best *Candidate
	s.stats.MaxLayerPlans = 1

	var build func(set query.RelSet) ([]*Candidate, error)
	build = func(set query.RelSet) ([]*Candidate, error) {
		if set.Count() == 1 {
			cands, err := s.accessCandidates(set.Members()[0])
			if err != nil {
				return nil, err
			}
			return s.narrow(cands), nil
		}
		var out []*Candidate
		set.ProperSubsets(func(l, r query.RelSet) {
			if s.skipSplit(l, r) {
				return
			}
			ls, err := build(l)
			if err != nil || len(ls) == 0 {
				return
			}
			rs, err := build(r)
			if err != nil || len(rs) == 0 {
				return
			}
			for _, pl := range ls {
				for _, pr := range rs {
					cands, err := s.joinCandidates(pl.Node, pr.Node)
					if err != nil {
						return
					}
					out = append(out, s.narrow(cands)...)
				}
			}
		})
		return out, nil
	}
	roots, err := build(query.FullSet(n))
	if err != nil {
		return nil, err
	}
	for _, c := range roots {
		s.stats.PlansConsidered++ // one complete bushy plan
		if best == nil || s.opt.Final(c, best) {
			best = c
		}
	}
	kept := int64(0)
	if best != nil {
		kept = 1
	}
	s.endLayer(mark, n, 1, kept, 1)
	if best == nil {
		return &Result{Stats: s.stats}, nil
	}
	return &Result{Best: best, Frontier: []*Candidate{best}, Stats: s.stats}, nil
}

// narrow keeps all candidates in exhaustive mode, the single best otherwise.
func (s *Searcher) narrow(cands []*Candidate) []*Candidate {
	if s.opt.ExhaustivePhysical || len(cands) <= 1 {
		return cands
	}
	if b := s.bestOf(cands); b != nil {
		return []*Candidate{b}
	}
	return nil
}

// LeftDeepSpaceSize is n!: the number of left-deep join orders.
func LeftDeepSpaceSize(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// BushySpaceSize is (2(n−1))!/(n−1)!: the number of bushy trees (shapes ×
// leaf orders), the "size of space" column of Table 1.
func BushySpaceSize(n int) float64 {
	if n < 1 {
		return 0
	}
	// (2m)!/m! with m = n−1, computed as the product (m+1)(m+2)...(2m).
	m := n - 1
	f := 1.0
	for i := m + 1; i <= 2*m; i++ {
		f *= float64(i)
	}
	return f
}

// DPLeftDeepPlansFormula is n·2^(n−1): Table 1's analytic count of plans
// considered by left-deep DP.
func DPLeftDeepPlansFormula(n int) float64 {
	return float64(n) * pow2(n-1)
}

// DPBushyPlansFormula is 3^n − 2^(n+1) + n + 1: Table 1's analytic count
// for bushy DP.
func DPBushyPlansFormula(n int) float64 {
	p3 := 1.0
	for i := 0; i < n; i++ {
		p3 *= 3
	}
	return p3 - pow2(n+1) + float64(n) + 1
}

// Binomial returns C(n, k) as a float.
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	f := 1.0
	for i := 1; i <= k; i++ {
		f = f * float64(n-k+i) / float64(i)
	}
	return f
}

// DPLeftDeepSpaceFormula is C(n, ⌈n/2⌉): Table 1's analytic peak storage
// for left-deep DP.
func DPLeftDeepSpaceFormula(n int) float64 {
	return Binomial(n, (n+1)/2)
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

// Optimal plan under work: convenience used by the §2 bounds, which need
// the work-optimal baseline (Wo, To).
func (s *Searcher) WorkOptimalBaseline() (*Candidate, error) {
	base := New(Options{
		Model:              s.opt.Model,
		Expand:             s.opt.Expand,
		Annotate:           s.opt.Annotate,
		Metric:             WorkMetric{},
		Final:              ByWork,
		AvoidCrossProducts: s.opt.AvoidCrossProducts,
	})
	res, err := base.DPLeftDeep()
	if err != nil {
		return nil, err
	}
	if res.Best == nil {
		return nil, fmt.Errorf("search: no work-optimal baseline plan")
	}
	return res.Best, nil
}
