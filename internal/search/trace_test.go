package search

import (
	"strings"
	"testing"

	"paropt/internal/query"
)

func TestCountingTracerOnPODP(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Chain
	tracer := &CountingTracer{}
	s := newSearcher(t, cfg, func(o *Options) { o.Trace = tracer })
	res, err := s.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tracer.Layers) != 4 {
		t.Fatalf("layers traced = %d, want 4", len(tracer.Layers))
	}
	if tracer.Subsets == 0 {
		t.Error("no subset events")
	}
	if tracer.Best == nil || tracer.Best != res.Best {
		t.Error("final event missing or inconsistent")
	}
	// Layer plan counts must be positive and the last layer holds the
	// full-set cover.
	for i, n := range tracer.Layers {
		if n <= 0 {
			t.Errorf("layer %d stored %d plans", i+1, n)
		}
	}
	if int(tracer.Layers[3]) != len(res.Frontier) {
		t.Errorf("final layer %d != frontier %d", tracer.Layers[3], len(res.Frontier))
	}
}

func TestCountingTracerOnDP(t *testing.T) {
	tracer := &CountingTracer{}
	s := newSearcher(t, cliqueCfg(4), func(o *Options) { o.Trace = tracer })
	res, err := s.DPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	// DP stores exactly C(4,i) plans per layer on a clique.
	want := []int64{4, 6, 4, 1}
	if len(tracer.Layers) != len(want) {
		t.Fatalf("layers = %v", tracer.Layers)
	}
	for i := range want {
		if tracer.Layers[i] != want[i] {
			t.Errorf("layer %d stored %d, want %d", i+1, tracer.Layers[i], want[i])
		}
	}
	if tracer.Best != res.Best {
		t.Error("final mismatch")
	}
}

func TestWriterTracer(t *testing.T) {
	var sb strings.Builder
	tracer := &WriterTracer{W: &sb, Verbose: true}
	s := newSearcher(t, cliqueCfg(3), func(o *Options) { o.Trace = tracer })
	if _, err := s.PODPLeftDeep(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"layer 1:", "layer 3:", "best:", "considered="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Verbose mode prints subset lines.
	if !strings.Contains(out, "{0,1}") && !strings.Contains(out, "kept") {
		t.Errorf("verbose trace missing subset lines:\n%s", out)
	}
}

func TestWriterTracerNoPlan(t *testing.T) {
	var sb strings.Builder
	tracer := &WriterTracer{W: &sb}
	// An impossible work limit prunes everything.
	s := newSearcher(t, cliqueCfg(3), func(o *Options) {
		o.Trace = tracer
		o.WorkLimit = 0.000001
	})
	res, err := s.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil {
		t.Fatal("expected total pruning")
	}
	if !strings.Contains(sb.String(), "no plan") {
		t.Errorf("trace missing no-plan marker:\n%s", sb.String())
	}
}

// TestOrderClassesStatistic: the bindings statistic (the measured 2^b
// factor) is collected and bounded by the cover size.
func TestOrderClassesStatistic(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Chain
	cfg.SortedProb = 1 // every relation sorted: plenty of orderings
	s := newSearcher(t, cfg, nil)
	res, err := s.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxOrderClasses < 1 {
		t.Error("order classes not collected")
	}
	if res.Stats.MaxOrderClasses > res.Stats.MaxCoverSize {
		t.Errorf("order classes %d exceed max cover %d",
			res.Stats.MaxOrderClasses, res.Stats.MaxCoverSize)
	}
}

// TestWorkersDeterministic: parallel costing returns exactly the serial
// search's plan and statistics that matter (the chosen plan and frontier
// size), at any worker count.
func TestWorkersDeterministic(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Star
	run := func(workers int) *Result {
		s := newSearcher(t, cfg, func(o *Options) { o.Workers = workers })
		res, err := s.PODPLeftDeep()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(0)
	for _, w := range []int{2, 4, 8} {
		par := run(w)
		if par.Best.Node.String() != serial.Best.Node.String() {
			t.Fatalf("workers=%d chose %s, serial chose %s", w, par.Best.Node, serial.Best.Node)
		}
		if par.Best.RT() != serial.Best.RT() {
			t.Fatalf("workers=%d RT %g != serial %g", w, par.Best.RT(), serial.Best.RT())
		}
		if len(par.Frontier) != len(serial.Frontier) {
			t.Fatalf("workers=%d frontier %d != serial %d", w, len(par.Frontier), len(serial.Frontier))
		}
	}
}
