package search

import (
	"fmt"

	"paropt/internal/query"
)

// DPLeftDeep is the System R style dynamic program of Figure 1: one optimal
// plan per relation subset under a total-order metric (default: work). Plans
// for a set of cardinality i are built by extending the optimal plan of each
// (i−1)-subset with the missing relation "in the best possible way".
func (s *Searcher) DPLeftDeep() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	metric := s.opt.Metric
	if metric == nil {
		metric = WorkMetric{}
	}
	mark := s.beginLayer()
	prev := make(map[query.RelSet]*Candidate, n)
	for i := 0; i < n; i++ {
		s.stats.PlansConsidered++ // accessPlan(Ri)
		cands, err := s.accessCandidates(i)
		if err != nil {
			return nil, err
		}
		if best := pickByMetric(cands, metric, s.opt.Final); best != nil {
			prev[query.NewRelSet(i)] = best
		}
	}
	s.noteLayer(int64(len(prev)))
	s.endLayer(mark, 1, len(prev), int64(len(prev)), 1)

	for i := 2; i <= n; i++ {
		mark = s.beginLayer()
		cur := make(map[query.RelSet]*Candidate)
		query.SubsetsOfSize(n, i, func(set query.RelSet) {
			var best *Candidate
			set.Singletons(func(j int, _ query.RelSet) {
				rest := set.Remove(j)
				p, ok := prev[rest]
				if !ok || s.skipExtension(rest, j) {
					return
				}
				s.stats.PlansConsidered++ // joinPlan(optPlan(S_j), R_j)
				exts, err := s.extendAll(p.Node, j)
				if err != nil {
					return
				}
				if e := pickByMetric(exts, metric, s.opt.Final); e != nil {
					if best == nil || metric.Dominates(e, best) {
						best = e
					} else {
						s.stats.Pruned++
						s.stats.PrunedDominance++
					}
				}
			})
			if best != nil {
				cur[set] = best
				s.emitSubset(set, 1, s.stats.PlansConsidered)
			}
		})
		s.noteLayer(int64(len(cur)))
		s.endLayer(mark, i, len(cur), int64(len(cur)), 1)
		prev = cur
	}
	best, ok := prev[query.FullSet(n)]
	if !ok {
		s.emitFinal(nil)
		return &Result{Stats: s.stats}, nil
	}
	s.emitFinal(best)
	return &Result{Best: best, Frontier: []*Candidate{best}, Stats: s.stats}, nil
}

// DPBushy extends Figure 1 to bushy trees: every subset's optimal plan is
// the best join over every ordered split (S1, S2) of the subset, which is
// what takes the plan count from O(2^n) to O(3^n) (§6.4, Table 1).
func (s *Searcher) DPBushy() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	metric := s.opt.Metric
	if metric == nil {
		metric = WorkMetric{}
	}
	mark := s.beginLayer()
	opt := make(map[query.RelSet]*Candidate)
	for i := 0; i < n; i++ {
		s.stats.PlansConsidered++
		cands, err := s.accessCandidates(i)
		if err != nil {
			return nil, err
		}
		if best := pickByMetric(cands, metric, s.opt.Final); best != nil {
			opt[query.NewRelSet(i)] = best
		}
	}
	s.noteLayer(int64(len(opt)))
	s.endLayer(mark, 1, len(opt), int64(len(opt)), 1)

	for i := 2; i <= n; i++ {
		mark = s.beginLayer()
		layer := int64(0)
		query.SubsetsOfSize(n, i, func(set query.RelSet) {
			var best *Candidate
			set.ProperSubsets(func(l, r query.RelSet) {
				pl, okL := opt[l]
				pr, okR := opt[r]
				if !okL || !okR || s.skipSplit(l, r) {
					return
				}
				s.stats.PlansConsidered++ // one ordered split
				cands, err := s.joinCandidates(pl.Node, pr.Node)
				if err != nil {
					return
				}
				if e := pickByMetric(cands, metric, s.opt.Final); e != nil {
					if best == nil || metric.Dominates(e, best) {
						best = e
					} else {
						s.stats.Pruned++
						s.stats.PrunedDominance++
					}
				}
			})
			if best != nil {
				opt[set] = best
				layer++
			}
		})
		s.noteLayer(layer)
		s.endLayer(mark, i, int(layer), layer, 1)
	}
	best, ok := opt[query.FullSet(n)]
	if !ok {
		return &Result{Stats: s.stats}, nil
	}
	return &Result{Best: best, Frontier: []*Candidate{best}, Stats: s.stats}, nil
}

// pickByMetric selects the candidate no other dominates; ties under the
// metric are broken by the final comparator so the choice is deterministic.
func pickByMetric(cands []*Candidate, m Metric, final Comparator) *Candidate {
	var best *Candidate
	for _, c := range cands {
		switch {
		case best == nil:
			best = c
		case m.Dominates(c, best) && m.Dominates(best, c):
			if final(c, best) {
				best = c
			}
		case m.Dominates(c, best):
			best = c
		}
	}
	return best
}

// noteLayer records a layer's stored-plan count for the space statistic.
func (s *Searcher) noteLayer(n int64) {
	if n > s.stats.MaxLayerPlans {
		s.stats.MaxLayerPlans = n
	}
}
