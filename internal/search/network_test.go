package search

import (
	"testing"

	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// searcherOn builds a searcher over a generated workload on a specific
// machine config, so tests can compare topologies.
func searcherOn(t testing.TB, cfg query.GenConfig, mcfg machine.Config) *Searcher {
	t.Helper()
	cat, q := query.Generate(cfg)
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(mcfg)
	return New(Options{
		Model:    cost.NewModel(cat, m, est, cost.DefaultParams()),
		Expand:   optree.DefaultExpandOptions(),
		Annotate: optree.DefaultAnnotateOptions(),
	})
}

// TestNetworkDimensionWidensMetric: moving the same total hardware from one
// shared-everything node to four shared-nothing nodes adds one interconnect
// coordinate per node to the pruning metric.
func TestNetworkDimensionWidensMetric(t *testing.T) {
	cfg := cliqueCfg(4)
	single := machine.Config{CPUs: 4, Disks: 4, Networks: 1}
	multi := machine.Config{CPUs: 1, Disks: 1, Nodes: 4, NetLatency: 1}

	s1 := searcherOn(t, cfg, single)
	if _, err := s1.PODPLeftDeep(); err != nil {
		t.Fatal(err)
	}
	s4 := searcherOn(t, cfg, multi)
	if _, err := s4.PODPLeftDeep(); err != nil {
		t.Fatal(err)
	}
	d1, d4 := s1.Stats().MetricDims, s4.Stats().MetricDims
	if d1 == 0 || d4 == 0 {
		t.Fatalf("MetricDims not recorded: single=%d multi=%d", d1, d4)
	}
	// single: 4 cpu + 4 disk + 1 net = 9 resources → 2·(9+1) dims;
	// multi: 4·(1 cpu + 1 disk + 1 link) = 12 resources → 2·(12+1) dims.
	if d4 <= d1 {
		t.Errorf("multi-node metric dims = %d, want > single-node %d", d4, d1)
	}
}

// TestNetworkDimensionGrowsCoverSets: with redistribution charged to
// per-node interconnect links, local and repartitioned variants of the same
// subplan stop dominating each other, so the partial-order DP must keep at
// least as many plans per subset as on the equivalent single node.
func TestNetworkDimensionGrowsCoverSets(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Chain
	cfg.IndexProb = 0
	cfg.SortedProb = 0

	s1 := searcherOn(t, cfg, machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	r1, err := s1.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	s4 := searcherOn(t, cfg, machine.Config{CPUs: 1, Disks: 1, Nodes: 4, NetLatency: 1})
	r4, err := s4.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best == nil || r4.Best == nil {
		t.Fatal("both searches must find a plan")
	}
	if r4.Stats.MaxCoverSize < r1.Stats.MaxCoverSize {
		t.Errorf("multi-node max cover = %d, want ≥ single-node %d",
			r4.Stats.MaxCoverSize, r1.Stats.MaxCoverSize)
	}
	t.Logf("cover sizes: single=%d multi=%d; frontier: single=%d multi=%d",
		r1.Stats.MaxCoverSize, r4.Stats.MaxCoverSize, len(r1.Frontier), len(r4.Frontier))
}
