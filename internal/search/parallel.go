package search

import (
	"sync"

	"paropt/internal/plan"
)

// Parallel candidate costing: plan pricing (macro-expansion + annotation +
// descriptor evaluation) dominates search time and is read-only over the
// catalog, estimator and machine, so batches of candidates can be priced on
// worker goroutines. Results keep their input order, so cover insertion —
// and therefore every tie-break and the final plan — stays deterministic
// regardless of worker count.

// costAll prices a batch of plan trees, fanning out over Options.Workers
// goroutines when configured. Pruned candidates (work/memory limits) come
// back nil and are filtered; the first error wins.
func (s *Searcher) costAll(nodes []*plan.Node) ([]*Candidate, error) {
	workers := s.opt.Workers
	if workers <= 1 || len(nodes) < 2 {
		out := make([]*Candidate, 0, len(nodes))
		for _, n := range nodes {
			c, err := s.cost(n)
			if err != nil {
				return nil, err
			}
			if c != nil {
				out = append(out, c)
			}
		}
		return out, nil
	}
	if workers > len(nodes) {
		workers = len(nodes)
	}
	results := make([]*Candidate, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	next := make(chan int)
	// Pricing mutates only per-call state except the shared stats counters;
	// guard those with a mutex via costLocked.
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = s.costLocked(&mu, nodes[i])
			}
		}()
	}
	for i := range nodes {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Candidate, 0, len(nodes))
	for _, c := range results {
		if c != nil {
			out = append(out, c)
		}
	}
	return out, nil
}

// costLocked prices one plan with the stats counters under the mutex.
func (s *Searcher) costLocked(mu *sync.Mutex, n *plan.Node) (*Candidate, error) {
	d, op, err := s.opt.Model.PlanCost(n, s.opt.Expand, s.opt.Annotate)
	if err != nil {
		return nil, err
	}
	mu.Lock()
	s.stats.PhysicalPlans++
	mu.Unlock()
	if s.opt.WorkLimit > 0 && d.Work() > s.opt.WorkLimit {
		mu.Lock()
		s.stats.Pruned++
		s.stats.PrunedWork++
		mu.Unlock()
		return nil, nil
	}
	if s.opt.MemoryLimit > 0 && s.opt.Model.MemoryEstimate(op).PeakPages > s.opt.MemoryLimit {
		mu.Lock()
		s.stats.Pruned++
		s.stats.PrunedMemory++
		mu.Unlock()
		return nil, nil
	}
	return &Candidate{Node: n, Desc: d}, nil
}
