package search

// TwoPhase implements the XPRS-style baseline the paper contrasts itself
// with ([HS91], §1): phase one chooses the join order, methods and access
// paths by minimizing *work* with the traditional DP of Figure 1; phase two
// keeps that tree fixed and only tunes its parallelization (the cloning
// annotation), picking the best response time. The paper's thesis is that
// deciding join order without response-time information can strand the
// optimizer on a tree whose parallelized form is inferior to what the
// one-phase partial-order DP finds; benchmarks compare the two.
func (s *Searcher) TwoPhase() (*Result, error) {
	mark := s.beginLayer()
	base, err := s.WorkOptimalBaseline()
	if err != nil {
		return nil, err
	}
	s.stats.PlansConsidered++ // the phase-one plan

	maxDeg := len(s.opt.Model.M.CPUs())
	var best *Candidate
	for deg := 1; deg <= maxDeg; deg++ {
		for _, minTuples := range []int64{1_000, 10_000, 100_000} {
			ann := s.opt.Annotate
			ann.MaxDegree = deg
			ann.MinTuplesPerClone = minTuples
			d, _, err := s.opt.Model.PlanCost(base.Node, s.opt.Expand, ann)
			if err != nil {
				return nil, err
			}
			s.stats.PlansConsidered++
			s.stats.PhysicalPlans++
			c := &Candidate{Node: base.Node, Desc: d}
			if best == nil || s.opt.Final(c, best) {
				best = c
			}
		}
	}
	s.stats.MaxLayerPlans = 1
	kept := int64(0)
	if best != nil {
		kept = 1
	}
	// One pseudo-layer spanning both phases.
	s.endLayer(mark, len(s.q.Relations), 1, kept, 1)
	return &Result{Best: best, Frontier: []*Candidate{best}, Stats: s.stats}, nil
}
