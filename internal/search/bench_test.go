package search

import (
	"testing"

	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// benchOptions builds one reusable option set for the PODP benchmarks (the
// searcher itself is rebuilt per iteration; the model and workload are not).
func benchOptions(tb testing.TB, trace Tracer) Options {
	tb.Helper()
	cfg := query.DefaultGenConfig()
	cfg.Relations = 6
	cfg.Shape = query.Chain
	cat, q := query.Generate(cfg)
	if err := q.Validate(cat); err != nil {
		tb.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	return Options{
		Model:    cost.NewModel(cat, m, est, cost.DefaultParams()),
		Expand:   optree.DefaultExpandOptions(),
		Annotate: optree.DefaultAnnotateOptions(),
		Trace:    trace,
	}
}

// BenchmarkPODP is the untraced baseline the CI smoke compares against; CI
// additionally watches allocs/op so tracer hooks can't quietly start
// allocating on the untraced path.
func BenchmarkPODP(b *testing.B) {
	opt := benchOptions(b, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(opt).PODPLeftDeep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPODPTraced runs the same search with a live tracer; the CI smoke
// fails when it is more than 10% slower than BenchmarkPODP.
func BenchmarkPODPTraced(b *testing.B) {
	tracer := &CountingTracer{}
	opt := benchOptions(b, tracer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer.Layers = tracer.Layers[:0]
		tracer.Records = tracer.Records[:0]
		if _, err := New(opt).PODPLeftDeep(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTracerHooksAllocationFreeWhenUntraced pins the satellite guarantee: an
// uninstalled tracer costs a nil check per emit, never an allocation.
func TestTracerHooksAllocationFreeWhenUntraced(t *testing.T) {
	s := New(benchOptions(t, nil))
	set := query.NewRelSet(0, 1, 2)
	if n := testing.AllocsPerRun(1000, func() {
		s.emitSubset(set, 3, 17)
		s.emitFinal(nil)
	}); n != 0 {
		t.Errorf("untraced emit hooks allocate %.1f per run, want 0", n)
	}
}
