package search

import (
	"fmt"
	"math"
	"math/rand"

	"paropt/internal/plan"
)

// Randomized search over bushy trees — the §7 outlook made concrete: "even
// for ten relations, [bushy search] increases the size of the search space
// by three orders of magnitude. Consequently use of non-exhaustive search
// algorithms may be imperative." Two classic strategies are provided:
// iterative improvement (greedy descent from random starts) and simulated
// annealing (uphill moves accepted with probability e^{−Δ/T}).

// RandomizedOptions tunes the non-exhaustive search.
type RandomizedOptions struct {
	// Restarts is the number of random starting trees (≥ 1).
	Restarts int
	// Moves is the number of candidate moves evaluated per restart.
	Moves int
	// Anneal switches from iterative improvement to simulated annealing.
	Anneal bool
	// InitTemp and Cooling parameterize the annealing schedule; defaults
	// 0.1×(initial RT) and 0.95.
	InitTemp, Cooling float64
	// Seed makes the search deterministic.
	Seed int64
}

// DefaultRandomizedOptions balances quality and cost for n ≤ 15.
func DefaultRandomizedOptions() RandomizedOptions {
	return RandomizedOptions{Restarts: 8, Moves: 400, Seed: 1}
}

// shape is the mutable tree the move operators act on; leaves carry a
// relation position and an access-path choice, internal nodes a method.
type shape struct {
	leaf        int // relation position, -1 for internal nodes
	access      int // index into the relation's access paths
	method      plan.JoinMethod
	left, right *shape
}

func (sh *shape) isLeaf() bool { return sh.leaf >= 0 }

func (sh *shape) clone() *shape {
	if sh == nil {
		return nil
	}
	return &shape{leaf: sh.leaf, access: sh.access, method: sh.method,
		left: sh.left.clone(), right: sh.right.clone()}
}

// nodes appends all internal nodes; leaves appends all leaves.
func (sh *shape) collect(internal *[]*shape, leaves *[]*shape) {
	if sh.isLeaf() {
		*leaves = append(*leaves, sh)
		return
	}
	*internal = append(*internal, sh)
	sh.left.collect(internal, leaves)
	sh.right.collect(internal, leaves)
}

// Randomized runs the configured non-exhaustive search and returns the best
// plan found. The search space is full bushy trees with every method and
// access-path choice; predicate-less joins are realized as nested loops.
func (s *Searcher) Randomized(opts RandomizedOptions) (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	if opts.Restarts < 1 {
		opts.Restarts = 1
	}
	if opts.Moves < 1 {
		opts.Moves = 1
	}
	if opts.Cooling <= 0 || opts.Cooling >= 1 {
		opts.Cooling = 0.95
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	accessCounts, err := s.accessPathCounts()
	if err != nil {
		return nil, err
	}

	mark := s.beginLayer()
	var bestEver *Candidate
	for r := 0; r < opts.Restarts; r++ {
		cur := randomShape(n, rng, accessCounts)
		curCand, err := s.realize(cur)
		if err != nil {
			return nil, err
		}
		if curCand == nil {
			continue
		}
		s.stats.PlansConsidered++
		if bestEver == nil || s.opt.Final(curCand, bestEver) {
			bestEver = curCand
		}
		temp := opts.InitTemp
		if temp <= 0 {
			temp = 0.1 * curCand.RT()
		}
		for m := 0; m < opts.Moves; m++ {
			next := cur.clone()
			mutate(next, rng, accessCounts)
			nextCand, err := s.realize(next)
			if err != nil {
				return nil, err
			}
			if nextCand == nil {
				continue
			}
			s.stats.PlansConsidered++
			accept := s.opt.Final(nextCand, curCand)
			if !accept && opts.Anneal && temp > 0 {
				delta := nextCand.RT() - curCand.RT()
				if rng.Float64() < math.Exp(-delta/temp) {
					accept = true
				}
			}
			if accept {
				cur, curCand = next, nextCand
				if s.opt.Final(curCand, bestEver) {
					bestEver = curCand
				}
			}
			temp *= opts.Cooling
		}
	}
	kept := int64(0)
	if bestEver != nil {
		kept = 1
	}
	// One pseudo-layer covering all restarts and moves.
	s.endLayer(mark, n, 1, kept, 1)
	if bestEver == nil {
		return &Result{Stats: s.stats}, nil
	}
	s.stats.MaxLayerPlans = 1
	return &Result{Best: bestEver, Frontier: []*Candidate{bestEver}, Stats: s.stats}, nil
}

// accessPathCounts returns, per relation position, the number of access
// paths (1 + indexes).
func (s *Searcher) accessPathCounts() ([]int, error) {
	counts := make([]int, len(s.q.Relations))
	for i, rel := range s.q.Relations {
		if _, ok := s.opt.Model.Cat.Relation(rel); !ok {
			return nil, fmt.Errorf("search: unknown relation %s", rel)
		}
		counts[i] = 1 + len(s.opt.Model.Cat.IndexesOn(rel))
	}
	return counts, nil
}

// randomShape builds a random bushy tree over a random permutation.
func randomShape(n int, rng *rand.Rand, accessCounts []int) *shape {
	perm := rng.Perm(n)
	leaves := make([]*shape, n)
	for i, pos := range perm {
		leaves[i] = &shape{leaf: pos, access: rng.Intn(accessCounts[pos]), method: randMethod(rng)}
	}
	for len(leaves) > 1 {
		i := rng.Intn(len(leaves) - 1)
		merged := &shape{leaf: -1, method: randMethod(rng), left: leaves[i], right: leaves[i+1]}
		leaves = append(leaves[:i], append([]*shape{merged}, leaves[i+2:]...)...)
	}
	return leaves[0]
}

func randMethod(rng *rand.Rand) plan.JoinMethod {
	return plan.AllJoinMethods[rng.Intn(len(plan.AllJoinMethods))]
}

// mutate applies one random move in place.
func mutate(sh *shape, rng *rand.Rand, accessCounts []int) {
	var internal, leaves []*shape
	sh.collect(&internal, &leaves)
	switch rng.Intn(5) {
	case 0: // swap two leaves' relations
		if len(leaves) >= 2 {
			a, b := rng.Intn(len(leaves)), rng.Intn(len(leaves))
			leaves[a].leaf, leaves[b].leaf = leaves[b].leaf, leaves[a].leaf
			leaves[a].access = rng.Intn(accessCounts[leaves[a].leaf])
			leaves[b].access = rng.Intn(accessCounts[leaves[b].leaf])
		}
	case 1: // swap children (commutativity)
		if len(internal) > 0 {
			node := internal[rng.Intn(len(internal))]
			node.left, node.right = node.right, node.left
		}
	case 2: // rotate (associativity): ((A B) C) -> (A (B C)) or mirror
		candidates := internal[:0:0]
		for _, nd := range internal {
			if !nd.left.isLeaf() || !nd.right.isLeaf() {
				candidates = append(candidates, nd)
			}
		}
		if len(candidates) > 0 {
			node := candidates[rng.Intn(len(candidates))]
			if !node.left.isLeaf() {
				// ((A B) C) -> (A (B C))
				a, bc := node.left, node.right
				node.left = a.left
				node.right = &shape{leaf: -1, method: a.method, left: a.right, right: bc}
			} else {
				// (A (B C)) -> ((A B) C)
				a, inner := node.left, node.right
				node.left = &shape{leaf: -1, method: inner.method, left: a, right: inner.left}
				node.right = inner.right
			}
		}
	case 3: // change a join method
		if len(internal) > 0 {
			internal[rng.Intn(len(internal))].method = randMethod(rng)
		}
	case 4: // change an access path
		if len(leaves) > 0 {
			l := leaves[rng.Intn(len(leaves))]
			l.access = rng.Intn(accessCounts[l.leaf])
		}
	}
}

// realize builds and costs the plan a shape denotes; it returns nil when the
// work limit prunes the plan.
func (s *Searcher) realize(sh *shape) (*Candidate, error) {
	node, err := s.realizeNode(sh)
	if err != nil {
		return nil, err
	}
	return s.cost(node)
}

func (s *Searcher) realizeNode(sh *shape) (*plan.Node, error) {
	if sh.isLeaf() {
		rel := s.q.Relations[sh.leaf]
		if sh.access == 0 {
			return s.est.Leaf(rel, plan.SeqScan, nil)
		}
		idxs := s.opt.Model.Cat.IndexesOn(rel)
		return s.est.Leaf(rel, plan.IndexScan, idxs[sh.access-1])
	}
	left, err := s.realizeNode(sh.left)
	if err != nil {
		return nil, err
	}
	right, err := s.realizeNode(sh.right)
	if err != nil {
		return nil, err
	}
	method := sh.method
	if len(s.q.JoinsBetween(left.Rels, right.Rels)) == 0 {
		method = plan.NestedLoops // predicate-less joins only as nested loops
	}
	return s.est.Join(left, right, method)
}
