package search

import (
	"math/rand"
	"testing"

	"paropt/internal/query"
)

func TestTwoPhase(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Star
	s := newSearcher(t, cfg, nil)
	res, err := s.TwoPhase()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("two-phase found no plan")
	}
	// Phase one fixes the join tree to the work-optimal one.
	base, err := newSearcher(t, cfg, nil).WorkOptimalBaseline()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Node.String() != base.Node.String() {
		t.Errorf("two-phase changed the tree: %s vs %s", res.Best.Node, base.Node)
	}
	// Phase two may only improve on the baseline's default annotation RT.
	one := newSearcher(t, cfg, nil)
	onePhase, err := one.PODPLeftDeep()
	if err != nil {
		t.Fatal(err)
	}
	if onePhase.Best.RT() > res.Best.RT()+1e-9 {
		t.Errorf("one-phase PO-DP rt %.2f must not lose to two-phase rt %.2f over the same space",
			onePhase.Best.RT(), res.Best.RT())
	}
}

func TestRandomizedFindsValidPlan(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 6
	cfg.Shape = query.Chain
	s := newSearcher(t, cfg, nil)
	opts := DefaultRandomizedOptions()
	opts.Restarts = 4
	opts.Moves = 100
	res, err := s.Randomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("randomized search found no plan")
	}
	if got := len(res.Best.Node.Leaves()); got != 6 {
		t.Fatalf("plan covers %d relations, want 6", got)
	}
	seen := map[string]bool{}
	for _, l := range res.Best.Node.Leaves() {
		if seen[l.Relation] {
			t.Fatalf("relation %s appears twice", l.Relation)
		}
		seen[l.Relation] = true
	}
	if res.Stats.PlansConsidered < int64(opts.Restarts) {
		t.Error("stats not collected")
	}
}

func TestRandomizedDeterministic(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	opts := DefaultRandomizedOptions()
	opts.Restarts = 2
	opts.Moves = 50
	a, err := newSearcher(t, cfg, nil).Randomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newSearcher(t, cfg, nil).Randomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.RT() != b.Best.RT() || a.Best.Node.String() != b.Best.Node.String() {
		t.Error("same seed must find the same plan")
	}
}

// TestRandomizedNearOptimal: on a small query where exhaustive search is
// feasible, the randomized search should land within 2x of the optimum
// (and usually on it).
func TestRandomizedNearOptimal(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 4
	cfg.Shape = query.Star
	exact := newSearcher(t, cfg, func(o *Options) { exactOpts(o) })
	best, err := exact.PODPBushy()
	if err != nil {
		t.Fatal(err)
	}
	rnd := newSearcher(t, cfg, func(o *Options) {
		o.Model.P.PipelineK = 0
		o.Annotate.MaxDegree = 1
	})
	opts := DefaultRandomizedOptions()
	opts.Restarts = 6
	opts.Moves = 300
	res, err := rnd.Randomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.RT() > 2*best.Best.RT() {
		t.Errorf("randomized rt %.2f more than 2x optimal %.2f", res.Best.RT(), best.Best.RT())
	}
	if res.Best.RT() < best.Best.RT()-1e-6 {
		t.Errorf("randomized rt %.2f beats the proven optimum %.2f — optimality bug",
			res.Best.RT(), best.Best.RT())
	}
}

func TestAnnealingAcceptsUphill(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 6
	cfg.Shape = query.Cycle
	opts := DefaultRandomizedOptions()
	opts.Anneal = true
	opts.Restarts = 2
	opts.Moves = 200
	res, err := newSearcher(t, cfg, nil).Randomized(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("annealing found no plan")
	}
}

func TestRandomizedWithWorkLimit(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	base, err := newSearcher(t, cfg, nil).WorkOptimalBaseline()
	if err != nil {
		t.Fatal(err)
	}
	limit := base.Work() * 1.2
	s := newSearcher(t, cfg, func(o *Options) { o.WorkLimit = limit })
	res, err := s.Randomized(DefaultRandomizedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != nil && res.Best.Work() > limit+1e-9 {
		t.Errorf("plan work %g exceeds limit %g", res.Best.Work(), limit)
	}
}

// TestShapeMovesPreservePermutation: every mutation keeps the tree a valid
// bushy tree over exactly the n relations.
func TestShapeMovesPreservePermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := []int{1, 2, 1, 3, 1}
	sh := randomShape(5, rng, counts)
	for i := 0; i < 500; i++ {
		mutate(sh, rng, counts)
		var internal, leaves []*shape
		sh.collect(&internal, &leaves)
		if len(leaves) != 5 || len(internal) != 4 {
			t.Fatalf("move %d: %d leaves, %d internal", i, len(leaves), len(internal))
		}
		seen := map[int]bool{}
		for _, l := range leaves {
			if seen[l.leaf] {
				t.Fatalf("move %d: duplicate relation %d", i, l.leaf)
			}
			seen[l.leaf] = true
			if l.access < 0 || l.access >= counts[l.leaf] {
				t.Fatalf("move %d: access %d out of range", i, l.access)
			}
		}
	}
}

func TestShapeClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sh := randomShape(4, rng, []int{1, 1, 1, 1})
	cp := sh.clone()
	mutate(cp, rng, []int{1, 1, 1, 1})
	// Mutating the clone must never corrupt the original's leaf count.
	var internal, leaves []*shape
	sh.collect(&internal, &leaves)
	if len(leaves) != 4 {
		t.Fatal("clone aliased the original")
	}
}
