package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTheorem3BoundFormula(t *testing.T) {
	// l=1, m→∞: bound → 2.
	if got := Theorem3Bound(1000, 1); math.Abs(got-2) > 1e-6 {
		t.Errorf("bound(1000,1) = %g, want ≈ 2", got)
	}
	// m=1: bound = 1 for any l.
	for l := 1; l <= 6; l++ {
		if got := Theorem3Bound(1, l); math.Abs(got-1) > 1e-9 {
			t.Errorf("bound(1,%d) = %g, want 1", l, got)
		}
	}
	// Monotone in m, bounded by 2^l.
	prev := 0.0
	for m := 1; m <= 64; m *= 2 {
		b := Theorem3Bound(m, 3)
		if b < prev {
			t.Fatalf("bound not monotone at m=%d", m)
		}
		if b > 8 {
			t.Fatalf("bound(%d,3) = %g exceeds 2^l", m, b)
		}
		prev = b
	}
}

func TestCoverSizeOf(t *testing.T) {
	pts := [][]float64{{1, 5}, {5, 1}, {6, 6}, {1, 5}}
	// Minima: (1,5) and (5,1); the duplicate (1,5) counts once.
	if got := CoverSizeOf(pts); got != 2 {
		t.Errorf("CoverSizeOf = %d, want 2", got)
	}
	if got := CoverSizeOf(nil); got != 0 {
		t.Errorf("CoverSizeOf(nil) = %d", got)
	}
	if got := CoverSizeOf([][]float64{{3}}); got != 1 {
		t.Errorf("singleton cover = %d", got)
	}
}

// TestTheorem3BinaryMatchesBound: with binary dimensions the measured cover
// size must respect the bound (and stay close to it for small m).
func TestTheorem3BinaryMatchesBound(t *testing.T) {
	for _, tc := range []struct{ m, l int }{{4, 2}, {16, 2}, {16, 3}, {64, 4}} {
		mean, bound := Theorem3Experiment(tc.m, tc.l, 300, Binary, 7)
		if mean > bound+1e-9 {
			t.Errorf("m=%d l=%d: measured %g exceeds bound %g", tc.m, tc.l, mean, bound)
		}
		if mean <= 0 {
			t.Errorf("m=%d l=%d: measured %g not positive", tc.m, tc.l, mean)
		}
	}
}

// TestTheorem3ContinuousOptimistic documents the independence assumption
// being "optimistic": for continuous dimensions and large m the measured
// expected cover size exceeds the 2^l-capped bound (E[minima] ~ ln m for
// l = 2).
func TestTheorem3ContinuousOptimistic(t *testing.T) {
	mean, bound := Theorem3Experiment(2000, 2, 50, Continuous, 11)
	if mean <= bound {
		t.Errorf("expected continuous mean (%g) to exceed the binary-model bound (%g) at m=2000, l=2",
			mean, bound)
	}
}

func TestTheorem3Deterministic(t *testing.T) {
	a, _ := Theorem3Experiment(32, 3, 50, Binary, 5)
	b, _ := Theorem3Experiment(32, 3, 50, Binary, 5)
	if a != b {
		t.Error("experiment must be deterministic for a fixed seed")
	}
}

func TestDistString(t *testing.T) {
	if Binary.String() != "binary" || Continuous.String() != "continuous" {
		t.Error("Dist strings wrong")
	}
}

// Property: the cover of any point set is non-empty (for non-empty input)
// and no larger than the set, and every point is dominated by some minimum.
func TestQuickCoverSizeBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var pts [][]float64
		for i := 0; i+1 < len(raw) && len(pts) < 40; i += 2 {
			pts = append(pts, []float64{float64(raw[i] % 16), float64(raw[i+1] % 16)})
		}
		k := CoverSizeOf(pts)
		return k >= 1 && k <= len(pts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTheorem3TrialDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := Theorem3Trial(1, 4, Continuous, rng); got != 1 {
		t.Errorf("single point cover = %d", got)
	}
	// 1-dimensional cover is always 1 (total order).
	for i := 0; i < 10; i++ {
		if got := Theorem3Trial(20, 1, Continuous, rng); got != 1 {
			t.Fatalf("1-D cover = %d, want 1", got)
		}
	}
}
