package search

// CoverSet maintains the set of mutually incomparable plans of Figure 2
// (lines L3–L6): inserting a new plan rejects it if some stored plan
// dominates it, otherwise deletes every stored plan the newcomer dominates
// and keeps the newcomer. The invariant is that stored plans are pairwise
// incomparable and every plan ever offered is covered by some stored plan.
//
// An optional cap turns the exact cover into a beam: when the cover
// outgrows Cap, the worst member under Rank is evicted. This forfeits the
// optimality guarantee (an evicted plan might have been the one whose
// extension wins) in exchange for bounded search cost — the practical
// mitigation for the cover explosion continuous metric dimensions cause.
type CoverSet struct {
	metric Metric
	plans  []*Candidate

	// Cap bounds the cover size when > 0; Rank picks eviction victims
	// (true = first argument preferable, i.e. kept longer).
	Cap  int
	Rank Comparator

	// Inserted and Rejected count insertion outcomes for statistics.
	Inserted, Rejected int64
	// Evicted counts cap-driven removals (beam mode only).
	Evicted int64
}

// NewCoverSet builds an empty cover set under the metric.
func NewCoverSet(m Metric) *CoverSet { return &CoverSet{metric: m} }

// NewBeamCoverSet builds a capped cover set (beam) with the eviction rank.
func NewBeamCoverSet(m Metric, cap int, rank Comparator) *CoverSet {
	return &CoverSet{metric: m, Cap: cap, Rank: rank}
}

// Insert offers a candidate; it reports whether the candidate was kept.
func (cs *CoverSet) Insert(c *Candidate) bool {
	for _, p := range cs.plans {
		if cs.metric.Dominates(p, c) {
			cs.Rejected++
			return false
		}
	}
	kept := cs.plans[:0]
	for _, p := range cs.plans {
		if !cs.metric.Dominates(c, p) {
			kept = append(kept, p)
		}
	}
	cs.plans = append(kept, c)
	cs.Inserted++
	if cs.Cap > 0 && cs.Rank != nil && len(cs.plans) > cs.Cap {
		worst := 0
		for i := 1; i < len(cs.plans); i++ {
			if cs.Rank(cs.plans[worst], cs.plans[i]) {
				worst = i
			}
		}
		evicted := cs.plans[worst] == c
		cs.plans[worst] = cs.plans[len(cs.plans)-1]
		cs.plans = cs.plans[:len(cs.plans)-1]
		cs.Evicted++
		if evicted {
			return false
		}
	}
	return true
}

// Plans returns the stored cover; the slice is shared and must not be
// modified by callers.
func (cs *CoverSet) Plans() []*Candidate { return cs.plans }

// Len is the current cover size (the paper's k).
func (cs *CoverSet) Len() int { return len(cs.plans) }

// Empty reports whether nothing survived insertion.
func (cs *CoverSet) Empty() bool { return len(cs.plans) == 0 }
