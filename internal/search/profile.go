package search

import (
	"fmt"
	"strings"
	"time"
)

// Per-layer search telemetry: the lattice of a dynamic program is layered by
// subset cardinality, and parallelizing the search (per-subset sharding with
// cover-set merges at layer barriers) will live or die by where the time and
// the cover growth actually are. Every search therefore records one
// LayerRecord per layer — wall time, subsets expanded, join pairs
// considered, candidates kept, and prunes split by the test that rejected
// them — aggregated into a SearchProfile on the result's Stats.
//
// Collection is deliberately cheap: counters are snapshotted at layer
// boundaries (two time.Now calls and a handful of integer deltas per layer),
// never per subset, so the untraced hot path stays allocation-free.

// LayerRecord is the telemetry of one DP layer (all subsets of one
// cardinality). Non-layered strategies (brute force, randomized, two-phase)
// record their whole run as a single pseudo-layer so totals stay comparable
// across algorithms.
type LayerRecord struct {
	// Card is the subset cardinality this layer solved (the relation count
	// for pseudo-layers).
	Card int `json:"card"`
	// Subsets is the number of subsets with a surviving (non-empty) cover.
	Subsets int `json:"subsets"`
	// Considered counts joinPlan/accessPlan invocations in this layer — the
	// join pairs (cover member × extension) the layer expanded.
	Considered int64 `json:"considered"`
	// Physical counts method × access-path combinations costed.
	Physical int64 `json:"physical"`
	// Kept is the total plans stored across this layer's covers — the
	// layer's frontier size.
	Kept int64 `json:"kept"`
	// Prunes by reason: the Theorem 3 cover-set test (dominance), the §2
	// work bound, the memory constraint, and beam (CoverCap) eviction.
	PrunedDominance int64 `json:"prunedDominance"`
	PrunedWork      int64 `json:"prunedWork"`
	PrunedMemory    int64 `json:"prunedMemory"`
	PrunedBeam      int64 `json:"prunedBeam"`
	// MaxCover is the largest single cover set in the layer (k in §6.2).
	MaxCover int `json:"maxCover"`
	// BytesRetained estimates the memory held by the layer's stored
	// candidates (descriptor vectors dominate; shared plan nodes are not
	// charged per candidate).
	BytesRetained int64 `json:"bytesRetained"`
	// WallNanos is the layer's wall-clock time.
	WallNanos int64 `json:"wallNanos"`
}

// Pruned is the layer's total prune count across all reasons.
func (r LayerRecord) Pruned() int64 {
	return r.PrunedDominance + r.PrunedWork + r.PrunedMemory + r.PrunedBeam
}

// SearchProfile aggregates the per-layer records of one search — the
// white-box view attached to every optimize result.
type SearchProfile struct {
	// Relations is the query size (the deepest layer's cardinality).
	Relations int `json:"relations"`
	// WallNanos is the summed layer wall time.
	WallNanos int64 `json:"wallNanos"`
	// PeakBytesRetained is the largest per-layer retained-bytes estimate.
	PeakBytesRetained int64 `json:"peakBytesRetained"`
	// Layers are the per-layer records in cardinality order.
	Layers []LayerRecord `json:"layers,omitempty"`
}

// Profile aggregates the collected layer records. It is cheap (no search
// state needed) and safe on a zero-value Stats.
func (st Stats) Profile() SearchProfile {
	p := SearchProfile{Layers: st.Layers}
	for _, l := range st.Layers {
		if l.Card > p.Relations {
			p.Relations = l.Card
		}
		p.WallNanos += l.WallNanos
		if l.BytesRetained > p.PeakBytesRetained {
			p.PeakBytesRetained = l.BytesRetained
		}
	}
	return p
}

// Table renders the profile as a fixed-width text table (one row per layer).
func (p SearchProfile) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%5s %8s %11s %9s %7s %8s %7s %7s %7s %9s %10s\n",
		"layer", "subsets", "considered", "physical", "kept",
		"prDom", "prWork", "prMem", "prBeam", "maxCover", "wall")
	for _, l := range p.Layers {
		fmt.Fprintf(&b, "%5d %8d %11d %9d %7d %8d %7d %7d %7d %9d %10s\n",
			l.Card, l.Subsets, l.Considered, l.Physical, l.Kept,
			l.PrunedDominance, l.PrunedWork, l.PrunedMemory, l.PrunedBeam,
			l.MaxCover, time.Duration(l.WallNanos).Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "total: %d relations, wall %s, peak retained ≈ %d bytes\n",
		p.Relations, time.Duration(p.WallNanos).Round(time.Microsecond), p.PeakBytesRetained)
	return b.String()
}

// layerMark snapshots the prune/consider counters at a layer boundary so the
// layer's record can be computed as deltas when it closes.
type layerMark struct {
	start      time.Time
	considered int64
	physical   int64
	prunedDom  int64
	prunedWork int64
	prunedMem  int64
	prunedBeam int64
}

// beginLayer opens a layer: one clock read plus six integer copies.
func (s *Searcher) beginLayer() layerMark {
	return layerMark{
		start:      time.Now(),
		considered: s.stats.PlansConsidered,
		physical:   s.stats.PhysicalPlans,
		prunedDom:  s.stats.PrunedDominance,
		prunedWork: s.stats.PrunedWork,
		prunedMem:  s.stats.PrunedMemory,
		prunedBeam: s.stats.PrunedBeam,
	}
}

// endLayer closes a layer: it appends the record to the stats (the raw
// material of the SearchProfile) and forwards it to the tracer, if any.
func (s *Searcher) endLayer(m layerMark, card, subsets int, kept int64, maxCover int) {
	rec := LayerRecord{
		Card:            card,
		Subsets:         subsets,
		Considered:      s.stats.PlansConsidered - m.considered,
		Physical:        s.stats.PhysicalPlans - m.physical,
		Kept:            kept,
		PrunedDominance: s.stats.PrunedDominance - m.prunedDom,
		PrunedWork:      s.stats.PrunedWork - m.prunedWork,
		PrunedMemory:    s.stats.PrunedMemory - m.prunedMem,
		PrunedBeam:      s.stats.PrunedBeam - m.prunedBeam,
		MaxCover:        maxCover,
		BytesRetained:   kept * s.candidateBytes(),
		WallNanos:       time.Since(m.start).Nanoseconds(),
	}
	s.stats.Layers = append(s.stats.Layers, rec)
	if s.opt.Trace != nil {
		s.opt.Trace.Layer(rec)
	}
}

// candidateBytes estimates the bytes one stored candidate retains: the
// Candidate struct, its resource descriptor (two vectors of T plus one work
// coordinate per machine resource), and the cover-set slot holding it. Plan
// nodes are shared across extensions and not charged per candidate.
func (s *Searcher) candidateBytes() int64 {
	dim := s.opt.Model.Dim()
	const candidateOverhead = 3 * 8 // struct + slice slot + node pointer
	vector := 8 + 24 + 8*int64(dim) // T + slice header + coordinates
	return candidateOverhead + 2*vector
}
