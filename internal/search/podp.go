package search

import (
	"fmt"

	"paropt/internal/query"
)

// PODPLeftDeep is the partial-order dynamic program of Figure 2: instead of
// one optimal plan per relation subset it keeps a cover set of incomparable
// plans under the pruning metric (default: the resource-vector metric of
// §6.3), and extends every plan of every cover set. The final answer is the
// best-cost member of the full set's cover (line 14, bestCost).
func (s *Searcher) PODPLeftDeep() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	metric := s.defaultPartialMetric()

	mark := s.beginLayer()
	prev := make(map[query.RelSet]*CoverSet, n)
	for i := 0; i < n; i++ {
		s.stats.PlansConsidered++ // accessPlans(Ri)
		cands, err := s.accessCandidates(i)
		if err != nil {
			return nil, err
		}
		cs := s.newCover(metric)
		for _, c := range cands {
			s.insert(cs, c)
		}
		if !cs.Empty() {
			prev[query.NewRelSet(i)] = cs
		}
	}
	s.closeCoverLayer(mark, 1, prev)

	for i := 2; i <= n; i++ {
		mark = s.beginLayer()
		cur := make(map[query.RelSet]*CoverSet)
		query.SubsetsOfSize(n, i, func(set query.RelSet) {
			best := s.newCover(metric) // bestPlans := ∅ (line 5)
			set.Singletons(func(j int, _ query.RelSet) {
				rest := set.Remove(j)
				cover, ok := prev[rest]
				if !ok || s.skipExtension(rest, j) {
					return
				}
				for _, p := range cover.Plans() { // line L1
					s.stats.PlansConsidered++ // new := joinPlan(p, Rj) (L2)
					exts, err := s.extendAll(p.Node, j)
					if err != nil {
						return
					}
					for _, e := range exts { // lines L3–L6
						s.insert(best, e)
					}
				}
			})
			if !best.Empty() {
				cur[set] = best
				s.noteOrderClasses(best)
				s.emitSubset(set, best.Len(), s.stats.PlansConsidered)
			}
		})
		s.closeCoverLayer(mark, i, cur)
		prev = cur
	}
	return s.finish(prev[query.FullSet(n)])
}

// coverStats sums stored plans across a layer's covers and finds the
// largest single cover.
func coverStats(layer map[query.RelSet]*CoverSet) (total int64, maxCover int) {
	for _, cs := range layer {
		total += int64(cs.Len())
		if cs.Len() > maxCover {
			maxCover = cs.Len()
		}
	}
	return total, maxCover
}

// closeCoverLayer records a finished cover layer: the space statistic plus
// the layer's telemetry record.
func (s *Searcher) closeCoverLayer(mark layerMark, card int, layer map[query.RelSet]*CoverSet) {
	kept, maxCover := coverStats(layer)
	s.noteLayer(kept)
	s.endLayer(mark, card, len(layer), kept, maxCover)
}

// PODPBushy is Figure 2 generalized to bushy trees per §6.4: cover sets per
// subset, extended over every ordered split and every pair of cover-set
// members.
func (s *Searcher) PODPBushy() (*Result, error) {
	n := len(s.q.Relations)
	if n == 0 {
		return nil, fmt.Errorf("search: query has no relations")
	}
	metric := s.defaultPartialMetric()

	mark := s.beginLayer()
	opt := make(map[query.RelSet]*CoverSet)
	for i := 0; i < n; i++ {
		s.stats.PlansConsidered++
		cands, err := s.accessCandidates(i)
		if err != nil {
			return nil, err
		}
		cs := s.newCover(metric)
		for _, c := range cands {
			s.insert(cs, c)
		}
		if !cs.Empty() {
			opt[query.NewRelSet(i)] = cs
		}
	}
	s.closeCoverLayer(mark, 1, opt)

	for i := 2; i <= n; i++ {
		mark = s.beginLayer()
		layerSets := make(map[query.RelSet]*CoverSet)
		query.SubsetsOfSize(n, i, func(set query.RelSet) {
			best := s.newCover(metric)
			set.ProperSubsets(func(l, r query.RelSet) {
				cl, okL := opt[l]
				cr, okR := opt[r]
				if !okL || !okR || s.skipSplit(l, r) {
					return
				}
				for _, pl := range cl.Plans() {
					for _, pr := range cr.Plans() {
						s.stats.PlansConsidered++
						cands, err := s.joinCandidates(pl.Node, pr.Node)
						if err != nil {
							return
						}
						for _, e := range cands {
							s.insert(best, e)
						}
					}
				}
			})
			if !best.Empty() {
				layerSets[set] = best
				s.noteOrderClasses(best)
				s.emitSubset(set, best.Len(), s.stats.PlansConsidered)
			}
		})
		for set, cs := range layerSets {
			opt[set] = cs
		}
		s.closeCoverLayer(mark, i, layerSets)
	}
	return s.finish(opt[query.FullSet(n)])
}

// defaultPartialMetric resolves the metric for partial-order search and
// records its dimensionality in the stats (on multi-node machines the
// network links add coordinates, so this makes the dimension growth
// observable in explain output).
func (s *Searcher) defaultPartialMetric() Metric {
	metric := s.opt.Metric
	if metric == nil {
		metric = OrderedMetric{Base: ResourceVectorMetric{L: s.opt.Model.Dim()}}
	}
	s.stats.MetricDims = metric.Dims()
	return metric
}

// newCover builds a cover set honoring the CoverCap option.
func (s *Searcher) newCover(metric Metric) *CoverSet {
	if s.opt.CoverCap > 0 {
		// Evict the worst plan under the final comparator.
		return NewBeamCoverSet(metric, s.opt.CoverCap, func(a, b *Candidate) bool {
			return !s.opt.Final(b, a) // keep a if b is not strictly better
		})
	}
	return NewCoverSet(metric)
}

// insert adds a candidate to a cover set, tracking statistics. A rejected
// candidate is classified by what rejected it: the Theorem 3 dominance test
// (some stored plan covers it) or beam eviction (it survived dominance but
// was the cap's eviction victim).
func (s *Searcher) insert(cs *CoverSet, c *Candidate) {
	rejected := cs.Rejected
	if !cs.Insert(c) {
		s.stats.Pruned++
		if cs.Rejected > rejected {
			s.stats.PrunedDominance++
		} else {
			s.stats.PrunedBeam++
		}
	}
	if cs.Len() > s.stats.MaxCoverSize {
		s.stats.MaxCoverSize = cs.Len()
	}
}

// noteOrderClasses updates the bindings statistic: distinct orderings in a
// finalized cover.
func (s *Searcher) noteOrderClasses(cs *CoverSet) {
	seen := map[string]bool{}
	for _, c := range cs.Plans() {
		seen[c.Order().String()] = true
	}
	if len(seen) > s.stats.MaxOrderClasses {
		s.stats.MaxOrderClasses = len(seen)
	}
}

// finish extracts the result from the full set's cover.
func (s *Searcher) finish(cs *CoverSet) (*Result, error) {
	if cs == nil || cs.Empty() {
		s.emitFinal(nil)
		return &Result{Stats: s.stats}, nil
	}
	frontier := append([]*Candidate(nil), cs.Plans()...)
	best := s.bestOf(frontier)
	s.emitFinal(best)
	return &Result{
		Best:     best,
		Frontier: frontier,
		Stats:    s.stats,
	}, nil
}
