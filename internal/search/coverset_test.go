package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paropt/internal/cost"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// vecCand builds a candidate with a given last-tuple work vector; times are
// the vector max, first-tuple usage zero.
func vecCand(name string, w ...float64) *Candidate {
	v := cost.Vec(w)
	return &Candidate{
		Node: &plan.Node{Relation: name},
		Desc: cost.ResDescriptor{
			First: cost.ZeroRV(len(w)),
			Last:  cost.RV(v.Max(), v),
		},
	}
}

func TestCoverSetInsert(t *testing.T) {
	cs := NewCoverSet(ResourceVectorMetric{L: 2})
	a := vecCand("a", 1, 5)
	b := vecCand("b", 5, 1)
	c := vecCand("c", 6, 6) // dominated by both
	d := vecCand("d", 0, 0) // dominates everything

	if !cs.Insert(a) || !cs.Insert(b) {
		t.Fatal("incomparable candidates must both be kept")
	}
	if cs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cs.Len())
	}
	if cs.Insert(c) {
		t.Error("dominated candidate must be rejected")
	}
	if !cs.Insert(d) {
		t.Error("dominating candidate must be kept")
	}
	if cs.Len() != 1 || cs.Plans()[0] != d {
		t.Fatalf("cover after dominator = %d plans", cs.Len())
	}
	if cs.Inserted != 3 || cs.Rejected != 1 {
		t.Errorf("counters: inserted=%d rejected=%d", cs.Inserted, cs.Rejected)
	}
	if cs.Empty() {
		t.Error("Empty wrong")
	}
}

func TestCoverSetPairwiseIncomparable(t *testing.T) {
	m := ResourceVectorMetric{L: 3}
	cs := NewCoverSet(m)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		cs.Insert(vecCand("x", rng.Float64(), rng.Float64(), rng.Float64()))
	}
	plans := cs.Plans()
	for i := range plans {
		for j := range plans {
			if i != j && m.Dominates(plans[i], plans[j]) {
				t.Fatalf("stored plans %d and %d are comparable", i, j)
			}
		}
	}
}

// Property: after any insertion sequence, every offered candidate is covered
// by some member of the cover set.
func TestQuickCoverSetCovers(t *testing.T) {
	m := ResourceVectorMetric{L: 2}
	f := func(raw []uint16) bool {
		cs := NewCoverSet(m)
		var offered []*Candidate
		for i := 0; i+1 < len(raw); i += 2 {
			c := vecCand("p", float64(raw[i]%64), float64(raw[i+1]%64))
			offered = append(offered, c)
			cs.Insert(c)
		}
		for _, o := range offered {
			covered := false
			for _, p := range cs.Plans() {
				if m.Dominates(p, o) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetricDominance(t *testing.T) {
	cheapFast := vecCand("a", 1, 1)
	dearSlow := vecCand("b", 3, 3)
	skewA := vecCand("c", 1, 4)
	skewB := vecCand("d", 4, 1)

	w := WorkMetric{}
	if !w.Dominates(cheapFast, dearSlow) || w.Dominates(dearSlow, cheapFast) {
		t.Error("WorkMetric dominance wrong")
	}
	if !w.Dominates(skewA, skewB) || !w.Dominates(skewB, skewA) {
		t.Error("WorkMetric is a total order: equal work is mutually dominant")
	}
	if w.Dims() != 1 || w.Name() != "work" {
		t.Error("WorkMetric metadata wrong")
	}

	r := RTMetric{}
	if !r.Dominates(cheapFast, dearSlow) {
		t.Error("RTMetric dominance wrong")
	}
	if r.Dims() != 1 || r.Name() != "response-time" {
		t.Error("RTMetric metadata wrong")
	}

	v := ResourceVectorMetric{L: 2}
	if v.Dominates(skewA, skewB) || v.Dominates(skewB, skewA) {
		t.Error("skewed vectors must be incomparable under the vector metric")
	}
	if !v.Dominates(cheapFast, skewA) {
		t.Error("componentwise-smaller vector must dominate")
	}
	if v.Dims() != 6 {
		t.Errorf("vector metric dims = %d, want 2(l+1) = 6", v.Dims())
	}
}

func TestOrderedMetric(t *testing.T) {
	colA := query.ColumnRef{Relation: "R", Column: "a"}
	ordered := vecCand("a", 1, 1)
	ordered.Node.Order = plan.Ordering{colA}
	unordered := vecCand("b", 2, 2)

	m := OrderedMetric{Base: ResourceVectorMetric{L: 2}}
	if !m.Dominates(ordered, unordered) {
		t.Error("cheaper+ordered must dominate dearer+unordered")
	}
	// The unordered plan can never dominate the ordered one, even if cheaper.
	cheapUnordered := vecCand("c", 0.5, 0.5)
	if m.Dominates(cheapUnordered, ordered) {
		t.Error("order dimension must block dominance")
	}
	if m.Dims() != 7 || m.Name() != "resource-vector+order" {
		t.Error("OrderedMetric metadata wrong")
	}
}

func TestBoundedMetric(t *testing.T) {
	base := WorkMetric{}
	m := BoundedMetric{Base: base, Limit: 3}
	small := vecCand("a", 1, 1) // work 2
	big := vecCand("b", 2, 2)   // work 4 > limit
	if m.Dominates(big, small) {
		t.Error("plan above the work limit must not dominate")
	}
	if !m.Dominates(small, big) {
		t.Error("plan under the limit retains base dominance")
	}
	if m.Dims() != 2 || m.Name() != "work+bound" {
		t.Error("BoundedMetric metadata wrong")
	}
}

func TestComparators(t *testing.T) {
	fast := vecCand("fast", 1, 3)   // rt 3, work 4
	cheap := vecCand("cheap", 2, 2) // rt 2, work 4
	if !ByRT(cheap, fast) || ByRT(fast, cheap) {
		t.Error("ByRT wrong")
	}
	dear := vecCand("dear", 5, 0) // rt 5, work 5
	if !ByWork(fast, dear) {
		t.Error("ByWork wrong")
	}
	// Ties fall through to the plan string.
	x := vecCand("a", 1, 1)
	y := vecCand("b", 1, 1)
	if !ByRT(x, y) || ByRT(y, x) {
		t.Error("ByRT tie-break by string wrong")
	}
	if !ByWork(x, y) || ByWork(y, x) {
		t.Error("ByWork tie-break by string wrong")
	}
}
