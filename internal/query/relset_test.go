package query

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewRelSet(t *testing.T) {
	s := NewRelSet(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
}

func TestFullSet(t *testing.T) {
	s := FullSet(4)
	if s != NewRelSet(0, 1, 2, 3) {
		t.Fatalf("FullSet(4) = %v", s)
	}
	if FullSet(0) != 0 {
		t.Fatal("FullSet(0) should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FullSet(64) should panic")
		}
	}()
	FullSet(64)
}

func TestAddRemove(t *testing.T) {
	s := NewRelSet(1)
	s = s.Add(3).Add(3)
	if s.Count() != 2 {
		t.Fatalf("Add should be idempotent: %v", s)
	}
	s = s.Remove(1)
	if s.Has(1) || !s.Has(3) {
		t.Fatalf("Remove wrong: %v", s)
	}
	if got := s.Remove(9); got != s {
		t.Error("removing absent member should not change set")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := NewRelSet(0, 1, 2)
	b := NewRelSet(2, 3)
	if got := a.Union(b); got != NewRelSet(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewRelSet(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != NewRelSet(0, 1) {
		t.Errorf("Minus = %v", got)
	}
	if !NewRelSet(1).SubsetOf(a) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !RelSet(0).Empty() || a.Empty() {
		t.Error("Empty wrong")
	}
}

func TestMembersAscending(t *testing.T) {
	s := NewRelSet(5, 1, 3)
	got := s.Members()
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestSingletons(t *testing.T) {
	s := NewRelSet(2, 4)
	var seen []int
	s.Singletons(func(i int, single RelSet) {
		if single != NewRelSet(i) {
			t.Errorf("singleton for %d = %v", i, single)
		}
		seen = append(seen, i)
	})
	if len(seen) != 2 || seen[0] != 2 || seen[1] != 4 {
		t.Fatalf("Singletons visited %v", seen)
	}
}

func TestProperSubsets(t *testing.T) {
	s := NewRelSet(0, 1, 2)
	count := 0
	s.ProperSubsets(func(t2, rest RelSet) {
		count++
		if t2.Empty() || t2 == s {
			t.Errorf("improper subset %v", t2)
		}
		if t2.Union(rest) != s || !t2.Intersect(rest).Empty() {
			t.Errorf("partition broken: %v + %v != %v", t2, rest, s)
		}
	})
	if count != 6 { // 2^3 - 2
		t.Fatalf("visited %d proper subsets, want 6", count)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	var got []RelSet
	SubsetsOfSize(5, 2, func(s RelSet) { got = append(got, s) })
	if len(got) != 10 {
		t.Fatalf("C(5,2) = %d subsets, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatal("subsets not in ascending numeric order")
		}
	}
	for _, s := range got {
		if s.Count() != 2 {
			t.Fatalf("subset %v has wrong size", s)
		}
	}
	// Degenerate cases.
	n := 0
	SubsetsOfSize(3, 0, func(s RelSet) {
		n++
		if s != 0 {
			t.Error("size-0 subset should be empty")
		}
	})
	if n != 1 {
		t.Error("exactly one empty subset expected")
	}
	SubsetsOfSize(3, 4, func(RelSet) { t.Error("no subsets of size > n") })
	SubsetsOfSize(3, -1, func(RelSet) { t.Error("no subsets of negative size") })
}

func TestRelSetString(t *testing.T) {
	if got := NewRelSet(0, 2, 10).String(); got != "{0,2,10}" {
		t.Errorf("String = %q", got)
	}
	if got := RelSet(0).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: Count agrees with popcount, and Members round-trips.
func TestQuickRelSetRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &= 1<<40 - 1
		s := RelSet(v)
		if s.Count() != bits.OnesCount64(v) {
			return false
		}
		return NewRelSet(s.Members()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ProperSubsets visits exactly 2^k - 2 partitions.
func TestQuickProperSubsetCount(t *testing.T) {
	f := func(v uint16) bool {
		s := RelSet(v & 0x3FF)
		n := 0
		s.ProperSubsets(func(_, _ RelSet) { n++ })
		want := 0
		if k := s.Count(); k >= 1 {
			want = 1<<uint(k) - 2
		}
		return n == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
