package query

import (
	"fmt"
	"math/rand"

	"paropt/internal/catalog"
)

// Shape selects the join-graph topology of a generated query.
type Shape int

const (
	// Chain connects R0-R1-...-Rn-1 in a line.
	Chain Shape = iota
	// Star joins R1..Rn-1 each to the hub R0 (decision-support shape).
	Star
	// Cycle is a chain with an extra edge closing the loop.
	Cycle
	// Clique joins every pair of relations. With a clique every join order
	// avoids cross products, which makes measured search-space sizes match
	// the closed forms of Table 1 (n!, n·2^{n-1}, ...) exactly.
	Clique
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Chain:
		return "chain"
	case Star:
		return "star"
	case Cycle:
		return "cycle"
	case Clique:
		return "clique"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// GenConfig controls random catalog+query generation.
type GenConfig struct {
	// Relations is the number of base relations (≥ 1).
	Relations int
	// Shape is the join-graph topology.
	Shape Shape
	// MinCard and MaxCard bound relation cardinalities.
	MinCard, MaxCard int64
	// Disks spreads relations round-robin (with jitter) over this many
	// disks. Zero means 1.
	Disks int
	// IndexProb is the probability that a relation gets an index on its
	// join column; clustered with probability 1/2 given an index.
	IndexProb float64
	// SortedProb is the probability a relation is stored sorted on its
	// join column (a free interesting order).
	SortedProb float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig returns a moderate 6-relation chain workload.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Relations:  6,
		Shape:      Chain,
		MinCard:    1_000,
		MaxCard:    1_000_000,
		Disks:      4,
		IndexProb:  0.5,
		SortedProb: 0.25,
		Seed:       1,
	}
}

// Generate builds a random catalog and a query over it according to cfg.
// Each relation Ri has columns "id" (key), "fk" (join column), "payload".
func Generate(cfg GenConfig) (*catalog.Catalog, *Query) {
	if cfg.Relations < 1 {
		cfg.Relations = 1
	}
	if cfg.MinCard < 1 {
		cfg.MinCard = 1
	}
	if cfg.MaxCard < cfg.MinCard {
		cfg.MaxCard = cfg.MinCard
	}
	if cfg.Disks < 1 {
		cfg.Disks = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := catalog.New()
	q := &Query{Name: fmt.Sprintf("%s-%d", cfg.Shape, cfg.Relations)}

	for i := 0; i < cfg.Relations; i++ {
		name := fmt.Sprintf("R%d", i)
		card := cfg.MinCard
		if cfg.MaxCard > cfg.MinCard {
			card += rng.Int63n(cfg.MaxCard - cfg.MinCard + 1)
		}
		rel := catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", NDV: card, Width: 8},
				{Name: "fk", NDV: maxI64(card/10, 1), Width: 8},
				{Name: "payload", NDV: maxI64(card/100, 1), Width: 64},
			},
			Card:  card,
			Pages: maxI64(card*80/8192, 1),
			Disk:  (i + rng.Intn(cfg.Disks)) % cfg.Disks,
		}
		if rng.Float64() < cfg.SortedProb {
			rel.SortedBy = "id"
		}
		cat.MustAddRelation(rel)
		if rng.Float64() < cfg.IndexProb {
			cat.MustAddIndex(catalog.Index{
				Name:      name + "_id",
				Relation:  name,
				Columns:   []string{"id"},
				Clustered: rng.Intn(2) == 0,
				Disk:      rng.Intn(cfg.Disks),
			})
		}
		q.Relations = append(q.Relations, name)
	}

	join := func(i, j int) {
		q.Joins = append(q.Joins, JoinPredicate{
			Left:  ColumnRef{Relation: q.Relations[i], Column: "id"},
			Right: ColumnRef{Relation: q.Relations[j], Column: "fk"},
		})
	}
	n := cfg.Relations
	switch cfg.Shape {
	case Chain:
		for i := 0; i+1 < n; i++ {
			join(i, i+1)
		}
	case Star:
		for i := 1; i < n; i++ {
			join(0, i)
		}
	case Cycle:
		for i := 0; i+1 < n; i++ {
			join(i, i+1)
		}
		if n > 2 {
			join(n-1, 0)
		}
	case Clique:
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				join(i, j)
			}
		}
	}
	return cat, q
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
