package query

import (
	"strings"
	"testing"

	"paropt/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, n := range []string{"R", "S", "T"} {
		cat.MustAddRelation(catalog.Relation{
			Name: n,
			Columns: []catalog.Column{
				{Name: "id", NDV: 1000, Width: 8},
				{Name: "fk", NDV: 100, Width: 8},
			},
			Card:  1000,
			Pages: 10,
		})
	}
	return cat
}

func chainQuery() *Query {
	return &Query{
		Name:      "chain3",
		Relations: []string{"R", "S", "T"},
		Joins: []JoinPredicate{
			{Left: ColumnRef{"R", "id"}, Right: ColumnRef{"S", "fk"}},
			{Left: ColumnRef{"S", "id"}, Right: ColumnRef{"T", "fk"}},
		},
	}
}

func TestValidateOK(t *testing.T) {
	cat := testCatalog(t)
	q := chainQuery()
	q.Selections = []Selection{{Column: ColumnRef{"R", "fk"}}}
	q.Projection = []ColumnRef{{"T", "id"}}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		name string
		mut  func(*Query)
	}{
		{"no relations", func(q *Query) { q.Relations = nil }},
		{"dup relation", func(q *Query) { q.Relations = append(q.Relations, "R") }},
		{"unknown relation", func(q *Query) { q.Relations[0] = "X" }},
		{"self join pred", func(q *Query) {
			q.Joins[0].Right = ColumnRef{"R", "fk"}
		}},
		{"unknown join column", func(q *Query) {
			q.Joins[0].Left.Column = "zz"
		}},
		{"join outside query", func(q *Query) {
			q.Joins[0].Left.Relation = "U"
		}},
		{"bad selection", func(q *Query) {
			q.Selections = []Selection{{Column: ColumnRef{"R", "zz"}}}
		}},
		{"bad projection", func(q *Query) {
			q.Projection = []ColumnRef{{"R", "zz"}}
		}},
	}
	for _, tc := range cases {
		q := chainQuery()
		tc.mut(q)
		if err := q.Validate(cat); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestPredicateHelpers(t *testing.T) {
	p := JoinPredicate{Left: ColumnRef{"R", "id"}, Right: ColumnRef{"S", "fk"}}
	if !p.Touches("R") || !p.Touches("S") || p.Touches("T") {
		t.Error("Touches wrong")
	}
	if o, ok := p.Other("R"); !ok || o != (ColumnRef{"S", "fk"}) {
		t.Errorf("Other(R) = %v, %v", o, ok)
	}
	if o, ok := p.Other("S"); !ok || o != (ColumnRef{"R", "id"}) {
		t.Errorf("Other(S) = %v, %v", o, ok)
	}
	if _, ok := p.Other("T"); ok {
		t.Error("Other(T) should be false")
	}
	if s, ok := p.Side("S"); !ok || s != (ColumnRef{"S", "fk"}) {
		t.Errorf("Side(S) = %v, %v", s, ok)
	}
	if _, ok := p.Side("T"); ok {
		t.Error("Side(T) should be false")
	}
	if got := p.String(); got != "R.id = S.fk" {
		t.Errorf("String = %q", got)
	}
}

func TestJoinsBetween(t *testing.T) {
	q := chainQuery()
	// R at 0, S at 1, T at 2. R-S joined, R-T not.
	rs := q.JoinsBetween(NewRelSet(0), NewRelSet(1))
	if len(rs) != 1 || rs[0].String() != "R.id = S.fk" {
		t.Fatalf("JoinsBetween(R,S) = %v", rs)
	}
	if got := q.JoinsBetween(NewRelSet(0), NewRelSet(2)); len(got) != 0 {
		t.Fatalf("JoinsBetween(R,T) = %v, want none", got)
	}
	// {R,S} vs {T}: the S-T edge crosses.
	if got := q.JoinsBetween(NewRelSet(0, 1), NewRelSet(2)); len(got) != 1 {
		t.Fatalf("JoinsBetween(RS,T) = %v", got)
	}
}

func TestSelectionsOn(t *testing.T) {
	q := chainQuery()
	q.Selections = []Selection{
		{Column: ColumnRef{"R", "fk"}},
		{Column: ColumnRef{"T", "id"}},
	}
	if got := q.SelectionsOn("R"); len(got) != 1 {
		t.Errorf("SelectionsOn(R) = %v", got)
	}
	if got := q.SelectionsOn("S"); len(got) != 0 {
		t.Errorf("SelectionsOn(S) = %v", got)
	}
}

func TestConnected(t *testing.T) {
	q := chainQuery()
	if !q.Connected(NewRelSet(0, 1)) {
		t.Error("{R,S} should be connected")
	}
	if q.Connected(NewRelSet(0, 2)) {
		t.Error("{R,T} should be disconnected in a chain")
	}
	if !q.Connected(NewRelSet(0, 1, 2)) {
		t.Error("{R,S,T} should be connected")
	}
	if !q.Connected(NewRelSet(1)) || !q.Connected(RelSet(0)) {
		t.Error("singletons and empty set are trivially connected")
	}
}

func TestRelationIndex(t *testing.T) {
	q := chainQuery()
	if q.RelationIndex("S") != 1 {
		t.Error("RelationIndex(S) != 1")
	}
	if q.RelationIndex("X") != -1 {
		t.Error("RelationIndex(X) != -1")
	}
}

func TestQueryString(t *testing.T) {
	q := chainQuery()
	got := q.String()
	for _, want := range []string{"SELECT *", "FROM R, S, T", "R.id = S.fk", "AND"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
	q.Projection = []ColumnRef{{"T", "id"}}
	q.Selections = []Selection{{Column: ColumnRef{"R", "fk"}}}
	got = q.String()
	if !strings.Contains(got, "SELECT T.id") || !strings.Contains(got, "R.fk = ?") {
		t.Errorf("String() = %q", got)
	}
}

func TestEquivalenceClasses(t *testing.T) {
	q := &Query{
		Relations: []string{"R", "S", "T"},
		Joins: []JoinPredicate{
			{Left: ColumnRef{"R", "id"}, Right: ColumnRef{"S", "fk"}},
			{Left: ColumnRef{"S", "fk"}, Right: ColumnRef{"T", "fk"}},
			{Left: ColumnRef{"S", "id"}, Right: ColumnRef{"T", "id"}},
		},
	}
	classes := q.EquivalenceClasses()
	if len(classes) != 2 {
		t.Fatalf("classes = %v, want 2", classes)
	}
	// First class sorted by relation/column: R.id, S.fk, T.fk.
	if len(classes[0]) != 3 || classes[0][0] != (ColumnRef{"R", "id"}) {
		t.Errorf("class 0 = %v", classes[0])
	}
	if len(classes[1]) != 2 || classes[1][0] != (ColumnRef{"S", "id"}) {
		t.Errorf("class 1 = %v", classes[1])
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, shape := range []Shape{Chain, Star, Cycle, Clique} {
		cfg := DefaultGenConfig()
		cfg.Shape = shape
		cfg.Relations = 5
		cat, q := Generate(cfg)
		if err := q.Validate(cat); err != nil {
			t.Fatalf("%v: generated invalid query: %v", shape, err)
		}
		wantJoins := map[Shape]int{Chain: 4, Star: 4, Cycle: 5, Clique: 10}[shape]
		if len(q.Joins) != wantJoins {
			t.Errorf("%v: %d joins, want %d", shape, len(q.Joins), wantJoins)
		}
		if !q.Connected(FullSet(5)) {
			t.Errorf("%v: query should be connected", shape)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	_, q1 := Generate(cfg)
	_, q2 := Generate(cfg)
	if q1.String() != q2.String() {
		t.Error("same seed must generate same query")
	}
	cfg.Seed = 99
	_, q3 := Generate(cfg)
	_ = q3 // different seed may or may not differ in joins; just must not panic
}

func TestGenerateDegenerate(t *testing.T) {
	cat, q := Generate(GenConfig{Relations: 0, Shape: Chain})
	if len(q.Relations) != 1 {
		t.Fatalf("Relations clamped to 1, got %d", len(q.Relations))
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	// Cycle with 2 relations must not duplicate the single edge.
	_, q2 := Generate(GenConfig{Relations: 2, Shape: Cycle, MinCard: 10, MaxCard: 10})
	if len(q2.Joins) != 1 {
		t.Errorf("2-cycle joins = %d, want 1", len(q2.Joins))
	}
}

func TestShapeString(t *testing.T) {
	if Chain.String() != "chain" || Clique.String() != "clique" {
		t.Error("Shape.String wrong")
	}
	if got := Shape(42).String(); got != "shape(42)" {
		t.Errorf("unknown shape = %q", got)
	}
}
