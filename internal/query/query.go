// Package query models Select-Project-Join (SPJ) queries — the class the
// paper optimizes — as a set of base relations, equijoin predicates forming
// a join graph, optional single-relation selections, and a projection list.
package query

import (
	"fmt"
	"sort"
	"strings"

	"paropt/internal/catalog"
)

// ColumnRef names a column of a specific relation.
type ColumnRef struct {
	Relation string
	Column   string
}

// String renders "R.a".
func (c ColumnRef) String() string { return c.Relation + "." + c.Column }

// JoinPredicate is an equijoin between two columns of distinct relations.
type JoinPredicate struct {
	Left, Right ColumnRef
	// Selectivity overrides the statistics-derived estimate when > 0.
	Selectivity float64
}

// String renders "R.a = S.b".
func (p JoinPredicate) String() string {
	return p.Left.String() + " = " + p.Right.String()
}

// Touches reports whether the predicate references the relation.
func (p JoinPredicate) Touches(rel string) bool {
	return p.Left.Relation == rel || p.Right.Relation == rel
}

// Other returns the column on the opposite side from rel, and whether the
// predicate touches rel at all.
func (p JoinPredicate) Other(rel string) (ColumnRef, bool) {
	switch rel {
	case p.Left.Relation:
		return p.Right, true
	case p.Right.Relation:
		return p.Left, true
	}
	return ColumnRef{}, false
}

// Side returns the column on rel's side, and whether the predicate touches
// rel.
func (p JoinPredicate) Side(rel string) (ColumnRef, bool) {
	switch rel {
	case p.Left.Relation:
		return p.Left, true
	case p.Right.Relation:
		return p.Right, true
	}
	return ColumnRef{}, false
}

// Selection is a single-relation equality predicate column = constant.
type Selection struct {
	Column ColumnRef
	// Value is the constant compared against (used by the execution
	// engine; the optimizer only needs the selectivity).
	Value int64
	// Selectivity overrides the statistics-derived 1/NDV estimate when > 0.
	Selectivity float64
}

// Query is an SPJ query over a catalog.
type Query struct {
	// Name labels the query in reports.
	Name string
	// Relations are the base relations, in declaration order. Order is
	// irrelevant semantically but fixed for deterministic enumeration.
	Relations []string
	// Joins are the equijoin predicates.
	Joins []JoinPredicate
	// Selections are per-relation filters applied at the leaves.
	Selections []Selection
	// Projection is the output column list; empty means all columns.
	Projection []ColumnRef
}

// Validate checks the query against the catalog: every relation exists,
// every referenced column exists, join predicates span two distinct
// relations of the query.
func (q *Query) Validate(cat *catalog.Catalog) error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query %s: no relations", q.Name)
	}
	seen := make(map[string]bool, len(q.Relations))
	for _, r := range q.Relations {
		if seen[r] {
			return fmt.Errorf("query %s: relation %s listed twice", q.Name, r)
		}
		seen[r] = true
		if _, ok := cat.Relation(r); !ok {
			return fmt.Errorf("query %s: unknown relation %s", q.Name, r)
		}
	}
	checkCol := func(c ColumnRef) error {
		if !seen[c.Relation] {
			return fmt.Errorf("query %s: column %s references a relation outside the query", q.Name, c)
		}
		rel, _ := cat.Relation(c.Relation)
		if !rel.HasColumn(c.Column) {
			return fmt.Errorf("query %s: unknown column %s", q.Name, c)
		}
		return nil
	}
	for _, j := range q.Joins {
		if j.Left.Relation == j.Right.Relation {
			return fmt.Errorf("query %s: join %s does not span two relations", q.Name, j)
		}
		if err := checkCol(j.Left); err != nil {
			return err
		}
		if err := checkCol(j.Right); err != nil {
			return err
		}
	}
	for _, s := range q.Selections {
		if err := checkCol(s.Column); err != nil {
			return err
		}
	}
	for _, p := range q.Projection {
		if err := checkCol(p); err != nil {
			return err
		}
	}
	return nil
}

// RelationIndex returns the position of rel in q.Relations, or -1.
func (q *Query) RelationIndex(rel string) int {
	for i, r := range q.Relations {
		if r == rel {
			return i
		}
	}
	return -1
}

// JoinsBetween returns the predicates connecting any relation in left to any
// relation in right, where the sets are bitmasks over q.Relations positions.
func (q *Query) JoinsBetween(left, right RelSet) []JoinPredicate {
	var out []JoinPredicate
	for _, j := range q.Joins {
		li := q.RelationIndex(j.Left.Relation)
		ri := q.RelationIndex(j.Right.Relation)
		if li < 0 || ri < 0 {
			continue
		}
		if (left.Has(li) && right.Has(ri)) || (left.Has(ri) && right.Has(li)) {
			out = append(out, j)
		}
	}
	return out
}

// SelectionsOn returns the selections applying to the relation.
func (q *Query) SelectionsOn(rel string) []Selection {
	var out []Selection
	for _, s := range q.Selections {
		if s.Column.Relation == rel {
			out = append(out, s)
		}
	}
	return out
}

// Connected reports whether the join graph restricted to the relation set is
// connected (joining it never needs a cross product).
func (q *Query) Connected(set RelSet) bool {
	n := set.Count()
	if n <= 1 {
		return true
	}
	start := -1
	for i := range q.Relations {
		if set.Has(i) {
			start = i
			break
		}
	}
	reached := NewRelSet(start)
	frontier := []int{start}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, j := range q.Joins {
			li := q.RelationIndex(j.Left.Relation)
			ri := q.RelationIndex(j.Right.Relation)
			var next int
			switch cur {
			case li:
				next = ri
			case ri:
				next = li
			default:
				continue
			}
			if set.Has(next) && !reached.Has(next) {
				reached = reached.Add(next)
				frontier = append(frontier, next)
			}
		}
	}
	return reached.Count() == n
}

// String renders a compact SQL-ish description.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(q.Projection) == 0 {
		b.WriteString("*")
	} else {
		parts := make([]string, len(q.Projection))
		for i, p := range q.Projection {
			parts[i] = p.String()
		}
		b.WriteString(strings.Join(parts, ", "))
	}
	b.WriteString(" FROM ")
	b.WriteString(strings.Join(q.Relations, ", "))
	var preds []string
	for _, j := range q.Joins {
		preds = append(preds, j.String())
	}
	for _, s := range q.Selections {
		preds = append(preds, s.Column.String()+" = ?")
	}
	if len(preds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(preds, " AND "))
	}
	return b.String()
}

// EquivalenceClasses groups query columns connected by equijoin predicates;
// columns in one class carry the same value in the join result. Classes are
// the paper's "bindings": an interesting order on one member is an
// interesting order on all. Each class is sorted for determinism.
func (q *Query) EquivalenceClasses() [][]ColumnRef {
	parent := map[ColumnRef]ColumnRef{}
	var find func(c ColumnRef) ColumnRef
	find = func(c ColumnRef) ColumnRef {
		p, ok := parent[c]
		if !ok {
			parent[c] = c
			return c
		}
		if p == c {
			return c
		}
		root := find(p)
		parent[c] = root
		return root
	}
	union := func(a, b ColumnRef) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, j := range q.Joins {
		union(j.Left, j.Right)
	}
	groups := map[ColumnRef][]ColumnRef{}
	for c := range parent {
		r := find(c)
		groups[r] = append(groups[r], c)
	}
	out := make([][]ColumnRef, 0, len(groups))
	for _, g := range groups {
		sort.Slice(g, func(i, j int) bool {
			if g[i].Relation != g[j].Relation {
				return g[i].Relation < g[j].Relation
			}
			return g[i].Column < g[j].Column
		})
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i][0], out[j][0]
		if a.Relation != b.Relation {
			return a.Relation < b.Relation
		}
		return a.Column < b.Column
	})
	return out
}
