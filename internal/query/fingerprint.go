package query

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// Query fingerprints: a deterministic canonical form that identifies an SPJ
// query up to the permutations that do not change its optimization problem.
// Two queries share a fingerprint exactly when they have the same relation
// multiset, the same join graph, the same selection columns, and the same
// projection — regardless of
//
//   - relation declaration order (the Relations list fixes enumeration order
//     only; semantically the FROM clause is a set),
//   - predicate order and predicate side (R.a = S.b vs S.b = R.a),
//   - selection literal values (column = 7 and column = 42 strip to
//     "column = ?", so parameter-varying instances of one query template
//     share a plan-cache entry; the optimizer's 1/NDV selectivity estimate
//     is literal-independent, so the shared plan is the right one),
//   - the Name label.
//
// Explicit Selectivity overrides on joins or selections DO enter the
// fingerprint: they change the estimates and hence the plan.
//
// The fingerprint deliberately does not cover the catalog, the machine, or
// optimizer options: serving layers compose it with a catalog version (see
// catalog.Fingerprint) and their own configuration hash to form cache keys.

// CanonicalString renders the query's canonical form. It is the preimage of
// Fingerprint and is exposed for debugging and tests; cache keys should use
// Fingerprint.
func CanonicalString(q *Query) string {
	rels := append([]string(nil), q.Relations...)
	sort.Strings(rels)

	joins := make([]string, 0, len(q.Joins))
	for _, j := range q.Joins {
		a, b := j.Left.String(), j.Right.String()
		if b < a {
			a, b = b, a
		}
		s := a + "=" + b
		if j.Selectivity > 0 {
			s += fmt.Sprintf("@%g", j.Selectivity)
		}
		joins = append(joins, s)
	}
	sort.Strings(joins)

	sels := make([]string, 0, len(q.Selections))
	for _, s := range q.Selections {
		t := s.Column.String() + "=?"
		if s.Selectivity > 0 {
			t += fmt.Sprintf("@%g", s.Selectivity)
		}
		sels = append(sels, t)
	}
	sort.Strings(sels)

	proj := make([]string, 0, len(q.Projection))
	for _, p := range q.Projection {
		proj = append(proj, p.String())
	}
	sort.Strings(proj)
	projStr := "*"
	if len(proj) > 0 {
		projStr = strings.Join(proj, ",")
	}

	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(projStr)
	b.WriteString(" from ")
	b.WriteString(strings.Join(rels, ","))
	b.WriteString(" join ")
	b.WriteString(strings.Join(joins, "&"))
	b.WriteString(" where ")
	b.WriteString(strings.Join(sels, "&"))
	return b.String()
}

// Fingerprint hashes the canonical form into a fixed-length hex digest.
func Fingerprint(q *Query) string {
	sum := sha256.Sum256([]byte(CanonicalString(q)))
	return hex.EncodeToString(sum[:])
}
