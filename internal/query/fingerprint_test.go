package query

import (
	"strings"
	"testing"

	"paropt/internal/catalog"
)

// fpChainCatalog builds R1–R4 with a/b columns for fingerprint tests.
func fpChainCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	for _, name := range []string{"R1", "R2", "R3", "R4"} {
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a", NDV: 1000, Width: 8},
				{Name: "b", NDV: 100, Width: 8},
			},
			Card:  10000,
			Pages: 100,
		})
	}
	return cat
}

func fpCol(rel, c string) ColumnRef { return ColumnRef{Relation: rel, Column: c} }

func fpChainQuery() *Query {
	return &Query{
		Name:      "chain",
		Relations: []string{"R1", "R2", "R3"},
		Joins: []JoinPredicate{
			{Left: fpCol("R1", "b"), Right: fpCol("R2", "a")},
			{Left: fpCol("R2", "b"), Right: fpCol("R3", "a")},
		},
		Selections: []Selection{{Column: fpCol("R1", "a"), Value: 7}},
	}
}

func TestFingerprintInvariantUnderRelationReorderAndPredicateFlips(t *testing.T) {
	cat := fpChainCatalog(t)
	base := fpChainQuery()
	if err := base.Validate(cat); err != nil {
		t.Fatal(err)
	}
	want := Fingerprint(base)

	// Same query with the FROM list reordered, both join predicates
	// flipped, the join list reversed, and a different name + literal.
	renamed := &Query{
		Name:      "other-label",
		Relations: []string{"R3", "R1", "R2"},
		Joins: []JoinPredicate{
			{Left: fpCol("R3", "a"), Right: fpCol("R2", "b")},
			{Left: fpCol("R2", "a"), Right: fpCol("R1", "b")},
		},
		Selections: []Selection{{Column: fpCol("R1", "a"), Value: 99}},
	}
	if err := renamed.Validate(cat); err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(renamed); got != want {
		t.Errorf("reordered/flipped/relabeled query changed fingerprint:\n  base    %s\n  renamed %s\ncanon base:    %s\ncanon renamed: %s",
			want, got, CanonicalString(base), CanonicalString(renamed))
	}
}

func TestFingerprintStripsLiterals(t *testing.T) {
	a, b := fpChainQuery(), fpChainQuery()
	b.Selections[0].Value = 123456
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("queries differing only in the selection literal should share a fingerprint")
	}
	if !strings.Contains(CanonicalString(a), "R1.a=?") {
		t.Errorf("canonical form should strip the literal: %s", CanonicalString(a))
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	base := fpChainQuery()
	fps := map[string]string{"base": Fingerprint(base)}

	// Different join graph: star instead of chain.
	star := fpChainQuery()
	star.Joins[1] = JoinPredicate{Left: fpCol("R1", "b"), Right: fpCol("R3", "a")}
	fps["star"] = Fingerprint(star)

	// Extra relation.
	wider := fpChainQuery()
	wider.Relations = append(wider.Relations, "R4")
	wider.Joins = append(wider.Joins, JoinPredicate{Left: fpCol("R3", "b"), Right: fpCol("R4", "a")})
	fps["wider"] = Fingerprint(wider)

	// Different selection column.
	sel := fpChainQuery()
	sel.Selections[0].Column = fpCol("R2", "b")
	fps["sel"] = Fingerprint(sel)

	// No selection at all.
	nosel := fpChainQuery()
	nosel.Selections = nil
	fps["nosel"] = Fingerprint(nosel)

	// Explicit selectivity override must change the fingerprint.
	selOverride := fpChainQuery()
	selOverride.Joins[0].Selectivity = 0.5
	fps["selOverride"] = Fingerprint(selOverride)

	// Projection differs.
	proj := fpChainQuery()
	proj.Projection = []ColumnRef{fpCol("R1", "a")}
	fps["proj"] = Fingerprint(proj)

	seen := map[string]string{}
	for name, fp := range fps {
		if prev, dup := seen[fp]; dup {
			t.Errorf("distinct queries %s and %s collide on fingerprint %s", prev, name, fp)
		}
		seen[fp] = name
	}
}

func TestCatalogFingerprintTracksStatistics(t *testing.T) {
	a := fpChainCatalog(t)
	b := fpChainCatalog(t)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical catalogs should share a fingerprint")
	}
	// A statistics refresh must version the catalog.
	c := catalog.New()
	for _, name := range []string{"R1", "R2", "R3", "R4"} {
		card := int64(10000)
		if name == "R2" {
			card = 20000
		}
		c.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "a", NDV: 1000, Width: 8},
				{Name: "b", NDV: 100, Width: 8},
			},
			Card:  card,
			Pages: 100,
		})
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("cardinality change should change the catalog fingerprint")
	}
	// An added index must version the catalog too.
	d := fpChainCatalog(t)
	d.MustAddIndex(catalog.Index{Name: "r1a", Relation: "R1", Columns: []string{"a"}})
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("added index should change the catalog fingerprint")
	}
}
