package query

import (
	"math/bits"
	"strings"
)

// RelSet is a bitmask over relation positions in Query.Relations. The
// dynamic-programming algorithms of the paper (Figures 1 and 2) enumerate
// subsets of relations; a bitmask makes subset identity, subset iteration
// and the optPlan table cheap. Limited to 64 relations, far beyond the
// practical reach of exhaustive search (the paper stops its analysis at
// n = 10).
type RelSet uint64

// NewRelSet returns the set of the given positions.
func NewRelSet(positions ...int) RelSet {
	var s RelSet
	for _, p := range positions {
		s |= 1 << uint(p)
	}
	return s
}

// FullSet returns {0, 1, ..., n-1}.
func FullSet(n int) RelSet {
	if n >= 64 {
		panic("query: RelSet supports at most 63 relations")
	}
	return RelSet(1)<<uint(n) - 1
}

// Has reports whether position i is in the set.
func (s RelSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Add returns the set with position i added.
func (s RelSet) Add(i int) RelSet { return s | 1<<uint(i) }

// Remove returns the set with position i removed.
func (s RelSet) Remove(i int) RelSet { return s &^ (1 << uint(i)) }

// Union returns the union of the two sets.
func (s RelSet) Union(t RelSet) RelSet { return s | t }

// Intersect returns the intersection of the two sets.
func (s RelSet) Intersect(t RelSet) RelSet { return s & t }

// Minus returns s with all members of t removed.
func (s RelSet) Minus(t RelSet) RelSet { return s &^ t }

// Count returns the cardinality of the set.
func (s RelSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s RelSet) Empty() bool { return s == 0 }

// SubsetOf reports whether every member of s is in t.
func (s RelSet) SubsetOf(t RelSet) bool { return s&^t == 0 }

// Members returns the positions in ascending order.
func (s RelSet) Members() []int {
	out := make([]int, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, i)
		v &^= 1 << uint(i)
	}
	return out
}

// Singletons calls fn for each single-member subset.
func (s RelSet) Singletons(fn func(i int, single RelSet)) {
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		fn(i, RelSet(1)<<uint(i))
		v &^= 1 << uint(i)
	}
}

// ProperSubsets calls fn for every nonempty proper subset t of s, paired
// with its complement within s. Each unordered partition {t, s−t} is visited
// twice (once per side), which is what bushy-tree enumeration wants; callers
// that want unordered partitions can filter on t < s.Minus(t).
func (s RelSet) ProperSubsets(fn func(t, rest RelSet)) {
	u := uint64(s)
	for sub := (u - 1) & u; sub != 0; sub = (sub - 1) & u {
		fn(RelSet(sub), RelSet(u&^sub))
	}
}

// SubsetsOfSize calls fn for every subset of {0..n-1} with exactly k
// members, in ascending numeric order, as the DP outer loop requires.
func SubsetsOfSize(n, k int, fn func(RelSet)) {
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	// Gosper's hack: iterate k-subsets in increasing numeric order.
	v := uint64(1)<<uint(k) - 1
	limit := uint64(1) << uint(n)
	for v < limit {
		fn(RelSet(v))
		c := v & (^v + 1)
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
	}
}

// String renders e.g. "{0,2,3}".
func (s RelSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, m := range s.Members() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(m))
	}
	b.WriteByte('}')
	return b.String()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
