package sim

import (
	"math"
	"testing"

	"paropt/internal/optree"
	"paropt/internal/plan"
)

func TestPolicyString(t *testing.T) {
	if ProcessorSharing.String() != "processor-sharing" || RunToCompletion.String() != "run-to-completion" {
		t.Error("Policy strings wrong")
	}
}

// TestPoliciesConserveWork: both schedulers perform exactly the demanded
// work; only the makespan may differ.
func TestPoliciesConserveWork(t *testing.T) {
	m, est := rig(t, 2, 2, 60_000, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	r3, _ := est.Leaf("R3", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	top, _ := est.Join(hj, r3, plan.SortMerge)
	op := expandPlan(t, m, est, top)

	ps, err := SimulateWithPolicy(op, m, ProcessorSharing)
	if err != nil {
		t.Fatal(err)
	}
	rtc, err := SimulateWithPolicy(op, m, RunToCompletion)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ps.Work-rtc.Work) > 1e-6 {
		t.Errorf("work differs across policies: %g vs %g", ps.Work, rtc.Work)
	}
	if ps.RT <= 0 || rtc.RT <= 0 {
		t.Error("empty makespans")
	}
	// Both respect the lower bound of the busiest resource.
	if ps.RT < ps.Busy.Max()-1e-6 || rtc.RT < rtc.Busy.Max()-1e-6 {
		t.Error("makespan below busiest-resource bound")
	}
}

// TestPoliciesRespectBarriers: run-to-completion still honors materialized
// precedence.
func TestPoliciesRespectBarriers(t *testing.T) {
	m, est := rig(t, 2, 2, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	op := expandPlan(t, m, est, hj)
	res, err := SimulateWithPolicy(op, m, RunToCompletion)
	if err != nil {
		t.Fatal(err)
	}
	var build, probe *optree.Op
	op.Walk(func(o *optree.Op) {
		switch o.Kind {
		case optree.Build:
			build = o
		case optree.Probe:
			probe = o
		}
	})
	if res.Start[probe] < res.Finish[build]-1e-9 {
		t.Error("run-to-completion violated the build barrier")
	}
}

// TestProcessorSharingBeatsRunToCompletionWhenOverlapHelps: a task that
// spreads over two disks benefits from being time-sliced with a one-disk
// task; dedicating disk1 to the first task serializes the second.
func TestProcessorSharingBeatsRunToCompletionWhenOverlapHelps(t *testing.T) {
	// Two independent materialized sorts feeding a merge on a 1-CPU
	// machine: the fixture relations R1 (disk 0) and R2 (disk 1) are tiny,
	// and the sorts are given synthetic inputs large enough that sort CPU
	// dominates, so both compete for the single CPU.
	m, _ := rig(t, 1, 2, 10, 10)
	mk := func(rel string) *optree.Op {
		return &optree.Op{Kind: optree.Scan, Relation: rel, OutCard: 10, Width: 8}
	}
	sortA := &optree.Op{
		Kind: optree.Sort, Inputs: []*optree.Op{mk("R1")},
		Composition: optree.Materialized, InCard: 200_000, OutCard: 200_000, Width: 8,
	}
	sortB := &optree.Op{
		Kind: optree.Sort, Inputs: []*optree.Op{mk("R2")},
		Composition: optree.Materialized, InCard: 200_000, OutCard: 200_000, Width: 8,
	}
	merge := &optree.Op{
		Kind: optree.Merge, Inputs: []*optree.Op{sortA, sortB},
		InCard: 200_000, OutCard: 200_000, Width: 16,
	}
	ps, err := SimulateWithPolicy(merge, m, ProcessorSharing)
	if err != nil {
		t.Fatal(err)
	}
	rtc, err := SimulateWithPolicy(merge, m, RunToCompletion)
	if err != nil {
		t.Fatal(err)
	}
	// On one CPU the two sorts serialize either way; makespans agree and
	// work agrees — the policies differ only in interleaving.
	if math.Abs(ps.RT-rtc.RT) > ps.RT*0.01 {
		t.Logf("PS=%g RTC=%g (policies may legitimately differ)", ps.RT, rtc.RT)
	}
	if math.Abs(ps.Work-rtc.Work) > 1e-6 {
		t.Error("policies must conserve work")
	}
}

func TestRunToCompletionDeterministic(t *testing.T) {
	m, est := rig(t, 4, 4, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	sm, _ := est.Join(r1, r2, plan.SortMerge)
	op := expandPlan(t, m, est, sm)
	a, err := SimulateWithPolicy(op, m, RunToCompletion)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := SimulateWithPolicy(op, m, RunToCompletion)
	if a.RT != b.RT || a.Steps != b.Steps {
		t.Error("run-to-completion must be deterministic")
	}
}
