package sim

import (
	"math"
	"sort"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/machine"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// rig builds a model over a chain query with the given machine shape.
func rig(t testing.TB, cpus, disks int, cards ...int64) (*cost.Model, *plan.Estimator) {
	t.Helper()
	cat := catalog.New()
	var rels []string
	for i, card := range cards {
		name := "R" + string(rune('1'+i))
		rels = append(rels, name)
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", NDV: card, Width: 8},
				{Name: "fk", NDV: maxI(card/10, 1), Width: 8},
			},
			Card:  card,
			Pages: maxI(card/50, 1),
			Disk:  i,
		})
	}
	q := &query.Query{Name: "sim", Relations: rels}
	for i := 0; i+1 < len(rels); i++ {
		q.Joins = append(q.Joins, query.JoinPredicate{
			Left:  query.ColumnRef{Relation: rels[i], Column: "id"},
			Right: query.ColumnRef{Relation: rels[i+1], Column: "fk"},
		})
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	est := plan.NewEstimator(cat, q)
	m := machine.New(machine.Config{CPUs: cpus, Disks: disks, Networks: 1})
	return cost.NewModel(cat, m, est, cost.DefaultParams()), est
}

func maxI(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func expandPlan(t testing.TB, m *cost.Model, est *plan.Estimator, n *plan.Node) *optree.Op {
	t.Helper()
	op, err := optree.Expand(n, est, optree.DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	optree.Annotate(op, m.M, est, optree.DefaultAnnotateOptions())
	return op
}

func TestSimulateSingleScan(t *testing.T) {
	m, est := rig(t, 2, 2, 50_000)
	leaf, _ := est.Leaf("R1", plan.SeqScan, nil)
	op := expandPlan(t, m, est, leaf)
	res, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	// A lone scan overlaps its I/O and (cloned) CPU: makespan = max demand.
	want := m.OwnDemands(op).Max()
	if math.Abs(res.RT-want) > 1e-6 {
		t.Errorf("RT = %g, want %g", res.RT, want)
	}
	if math.Abs(res.Work-m.OwnDemands(op).Sum()) > 1e-6 {
		t.Errorf("Work = %g", res.Work)
	}
	if res.Utilization() <= 0 || res.Utilization() > 1 {
		t.Errorf("Utilization = %g", res.Utilization())
	}
}

func TestSimulateErrors(t *testing.T) {
	m, _ := rig(t, 1, 1, 100)
	if _, err := Simulate(nil, m); err == nil {
		t.Error("nil tree should error")
	}
	bad := &optree.Op{Kind: optree.Merge} // arity violation
	if _, err := Simulate(bad, m); err == nil {
		t.Error("invalid tree should error")
	}
}

// TestIndependentParallelExecution: two materialized sorts on different
// disks overlap (makespan ≈ slower side); forcing both relations onto one
// disk serializes the I/O — the simulator realizes desideratum 1.
func TestIndependentParallelExecution(t *testing.T) {
	makespan := func(sameDisk bool) float64 {
		disks := 4
		m, est := rig(t, 4, disks, 80_000, 80_000)
		if sameDisk {
			m.Cat.MustRelation("R2").Disk = m.Cat.MustRelation("R1").Disk
		}
		r1, _ := est.Leaf("R1", plan.SeqScan, nil)
		r2, _ := est.Leaf("R2", plan.SeqScan, nil)
		sm, err := est.Join(r1, r2, plan.SortMerge)
		if err != nil {
			t.Fatal(err)
		}
		op := expandPlan(t, m, est, sm)
		res, err := Simulate(op, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.RT
	}
	apart := makespan(false)
	together := makespan(true)
	if together <= apart*1.2 {
		t.Errorf("contended RT %g should clearly exceed uncontended %g", together, apart)
	}
}

// TestPipelineBarrier: a hash probe cannot start before the build finishes.
func TestPipelineBarrier(t *testing.T) {
	m, est := rig(t, 2, 2, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	op := expandPlan(t, m, est, hj)
	res, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	var build, probe *optree.Op
	op.Walk(func(o *optree.Op) {
		switch o.Kind {
		case optree.Build:
			build = o
		case optree.Probe:
			probe = o
		}
	})
	if build == nil || probe == nil {
		t.Fatal("expansion lacks build/probe")
	}
	if res.Start[probe] < res.Finish[build]-1e-9 {
		t.Errorf("probe started at %g before build finished at %g",
			res.Start[probe], res.Finish[build])
	}
	if res.Finish[probe] != res.RT {
		t.Errorf("root should finish last: %g vs RT %g", res.Finish[probe], res.RT)
	}
}

// TestWorkConservation: simulated busy time equals demanded work, and the
// makespan is bracketed by the busiest resource and the total work.
func TestWorkConservation(t *testing.T) {
	m, est := rig(t, 4, 4, 60_000, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	r3, _ := est.Leaf("R3", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	top, _ := est.Join(hj, r3, plan.SortMerge)
	op := expandPlan(t, m, est, top)
	res, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	if res.RT < res.Busy.Max()-1e-6 {
		t.Errorf("RT %g below busiest resource %g", res.RT, res.Busy.Max())
	}
	if res.RT > res.Work+1e-6 {
		t.Errorf("RT %g exceeds total work %g", res.RT, res.Work)
	}
	if math.Abs(res.Work-res.Busy.Sum()) > 1e-6 {
		t.Errorf("work %g != busy sum %g", res.Work, res.Busy.Sum())
	}
}

// TestMoreParallelismHelps: the same plan on a bigger machine finishes no
// later.
func TestMoreParallelismHelps(t *testing.T) {
	run := func(cpus, disks int) float64 {
		m, est := rig(t, cpus, disks, 80_000, 60_000)
		r1, _ := est.Leaf("R1", plan.SeqScan, nil)
		r2, _ := est.Leaf("R2", plan.SeqScan, nil)
		sm, _ := est.Join(r1, r2, plan.SortMerge)
		op := expandPlan(t, m, est, sm)
		res, err := Simulate(op, m)
		if err != nil {
			t.Fatal(err)
		}
		return res.RT
	}
	big := run(8, 4)
	small := run(1, 1)
	if big >= small {
		t.Errorf("8-cpu RT %g should beat 1-cpu RT %g", big, small)
	}
}

// TestCostModelTracksSimulator: over a population of random plans, the
// calculus's RT estimate must rank plans like the simulator does (high rank
// correlation) — §5's claim that the cost model is "judicious".
func TestCostModelTracksSimulator(t *testing.T) {
	cfg := query.DefaultGenConfig()
	cfg.Relations = 5
	cfg.Shape = query.Chain
	cfg.Seed = 3
	cat, q := query.Generate(cfg)
	est := plan.NewEstimator(cat, q)
	mach := machine.New(machine.Config{CPUs: 4, Disks: 4, Networks: 1})
	model := cost.NewModel(cat, mach, est, cost.DefaultParams())

	// Enumerate a diverse plan population: all left-deep join orders with
	// alternating methods.
	var modelRT, simRT []float64
	perms := permutations([]int{0, 1, 2, 3, 4})
	for pi, perm := range perms {
		var cur *plan.Node
		ok := true
		for i, pos := range perm {
			leaf, err := est.Leaf(q.Relations[pos], plan.SeqScan, nil)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				cur = leaf
				continue
			}
			method := plan.AllJoinMethods[(pi+i)%len(plan.AllJoinMethods)]
			j, err := est.Join(cur, leaf, method)
			if err != nil {
				ok = false
				break
			}
			cur = j
		}
		if !ok {
			continue
		}
		op, err := optree.Expand(cur, est, optree.DefaultExpandOptions())
		if err != nil {
			continue
		}
		optree.Annotate(op, mach, est, optree.DefaultAnnotateOptions())
		res, err := Simulate(op, model)
		if err != nil {
			t.Fatal(err)
		}
		modelRT = append(modelRT, model.RT(op))
		simRT = append(simRT, res.RT)
	}
	if len(modelRT) < 20 {
		t.Fatalf("only %d plans costed", len(modelRT))
	}
	rho := spearman(modelRT, simRT)
	if rho < 0.8 {
		t.Errorf("rank correlation model vs simulator = %.3f, want ≥ 0.8", rho)
	}
}

// permutations returns all orderings of xs.
func permutations(xs []int) [][]int {
	if len(xs) <= 1 {
		return [][]int{append([]int(nil), xs...)}
	}
	var out [][]int
	for i := range xs {
		rest := make([]int, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{xs[i]}, p...))
		}
	}
	return out
}

// spearman computes the rank correlation of two paired samples.
func spearman(a, b []float64) float64 {
	ra := ranks(a)
	rb := ranks(b)
	n := float64(len(a))
	var ma, mb float64
	for i := range ra {
		ma += ra[i]
		mb += rb[i]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for i := range ra {
		da, db := ra[i]-ma, rb[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	r := make([]float64, len(xs))
	for rank, i := range idx {
		r[i] = float64(rank)
	}
	return r
}

// TestSimulatorDeterministic: repeated runs agree exactly.
func TestSimulatorDeterministic(t *testing.T) {
	m, est := rig(t, 4, 4, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	op := expandPlan(t, m, est, hj)
	a, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Simulate(op, m)
	if a.RT != b.RT || a.Work != b.Work || a.Steps != b.Steps {
		t.Error("simulation must be deterministic")
	}
}

// TestNLInnerSubsumed: the simulator, like the cost model, does not run a
// base-access NL inner as its own task.
func TestNLInnerSubsumed(t *testing.T) {
	m, est := rig(t, 2, 2, 20_000, 500)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	nl, _ := est.Join(r1, r2, plan.NestedLoops)
	op, err := optree.Expand(nl, est, optree.ExpandOptions{}) // no create-index
	if err != nil {
		t.Fatal(err)
	}
	optree.Annotate(op, m.M, est, optree.DefaultAnnotateOptions())
	res, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	inner := op.Inputs[1]
	if _, tracked := res.Finish[inner]; tracked {
		t.Error("subsumed inner must not be a separate task")
	}
}

// TestDeclusteredSimulation: the simulator realizes Gamma-style declustered
// scans — parallel fragment reads shrink the makespan while work is
// conserved.
func TestDeclusteredSimulation(t *testing.T) {
	m, est := rig(t, 4, 4, 80_000)
	leaf, err := est.Leaf("R1", plan.SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	op := expandPlan(t, m, est, leaf)
	base, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	m.Cat.MustRelation("R1").Decluster = 4
	defer func() { m.Cat.MustRelation("R1").Decluster = 0 }()
	spread, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	if spread.RT >= base.RT {
		t.Errorf("declustered RT %g should beat single-disk %g", spread.RT, base.RT)
	}
	if d := spread.Work - base.Work; d > 1e-9 || d < -1e-9 {
		t.Errorf("declustering changed simulated work: %g vs %g", spread.Work, base.Work)
	}
}
