package sim

import (
	"fmt"
	"sort"
	"strings"

	"paropt/internal/optree"
)

// Timeline renders the simulated execution as a text Gantt chart, one line
// per operator ordered by start time, with '=' spanning [start, finish]
// scaled to the given width. It makes pipelining and materialization
// barriers visible at a glance.
func (r *Result) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	type row struct {
		op            *optree.Op
		start, finish float64
	}
	rows := make([]row, 0, len(r.Start))
	for op, s := range r.Start {
		rows = append(rows, row{op: op, start: s, finish: r.Finish[op]})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].start != rows[j].start {
			return rows[i].start < rows[j].start
		}
		if rows[i].finish != rows[j].finish {
			return rows[i].finish < rows[j].finish
		}
		return opLabel(rows[i].op) < opLabel(rows[j].op)
	})
	scale := float64(width) / r.RT
	if r.RT == 0 {
		scale = 0
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline (rt=%.2f, %d operators)\n", r.RT, len(rows))
	for _, row := range rows {
		from := int(row.start * scale)
		to := int(row.finish * scale)
		if to > width {
			to = width
		}
		if to <= from {
			to = from + 1
			if to > width {
				from, to = width-1, width
			}
		}
		bar := strings.Repeat(" ", from) + strings.Repeat("=", to-from) +
			strings.Repeat(" ", width-to)
		fmt.Fprintf(&b, "%-26s |%s| %8.1f → %-8.1f\n", opLabel(row.op), bar, row.start, row.finish)
	}
	return b.String()
}

// opLabel names an operator for display.
func opLabel(op *optree.Op) string {
	if op.Relation != "" {
		return fmt.Sprintf("%s(%s)", op.Kind, op.Relation)
	}
	return op.Kind.String()
}
