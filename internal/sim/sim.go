// Package sim is a discrete-event simulator for parallel query execution: it
// executes an annotated operator tree on the machine model under exactly the
// assumptions the paper's cost model makes (§5.2.1) — preemptable resources,
// processor-sharing (uniform usage), materialized edges as precedence
// barriers, pipelined edges as co-running stages — and reports the realized
// response time and per-resource work. It is the referee for the cost
// model's predictions: the calculus estimates, the simulator executes.
package sim

import (
	"fmt"
	"math"

	"paropt/internal/cost"
	"paropt/internal/optree"
)

// Result is the outcome of one simulated execution.
type Result struct {
	// RT is the makespan: the finish time of the root operator.
	RT float64
	// Work is the total demanded work across all resources.
	Work float64
	// Busy is the per-resource busy time (equals the demands: the
	// simulator conserves work).
	Busy cost.Vec
	// Finish maps each operator to its completion time.
	Finish map[*optree.Op]float64
	// Start maps each operator to its activation time.
	Start map[*optree.Op]float64
	// Steps is the number of simulation events processed.
	Steps int
}

// Utilization is Work / (RT × resources): the mean fraction of the machine
// kept busy.
func (r *Result) Utilization() float64 {
	n := float64(len(r.Busy))
	if r.RT <= 0 || n == 0 {
		return 0
	}
	return r.Work / (r.RT * n)
}

// task is the simulator's view of one operator.
type task struct {
	op        *optree.Op
	remaining cost.Vec
	matDeps   []*task // must finish before this task activates
	pipeDeps  []*task // co-run; must finish before this task can finish
	active    bool
	done      bool
	start     float64
	finish    float64
}

func (t *task) workLeft() bool {
	for _, w := range t.remaining {
		if w > 1e-12 {
			return true
		}
	}
	return false
}

// Policy selects how contended resources are scheduled.
type Policy int

const (
	// ProcessorSharing time-slices each resource evenly among demanding
	// tasks — the paper's preemptability assumption (§5.2.1), under which
	// the stretching property holds.
	ProcessorSharing Policy = iota
	// RunToCompletion dedicates each resource to its earliest-activated
	// demanding task until that task needs it no more — a non-preemptive
	// scheduler, used to quantify what the stretching assumption buys.
	RunToCompletion
)

// String names the policy.
func (p Policy) String() string {
	if p == RunToCompletion {
		return "run-to-completion"
	}
	return "processor-sharing"
}

// Simulate executes the operator tree under the model's work demands with
// processor sharing (the paper's assumption).
func Simulate(root *optree.Op, m *cost.Model) (*Result, error) {
	return SimulateWithPolicy(root, m, ProcessorSharing)
}

// SimulateWithPolicy executes the operator tree under the given scheduler.
func SimulateWithPolicy(root *optree.Op, m *cost.Model, policy Policy) (*Result, error) {
	if root == nil {
		return nil, fmt.Errorf("sim: nil operator tree")
	}
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	tasks := buildTasks(root, m)

	res := &Result{
		Busy:   cost.NewVec(m.Dim()),
		Finish: make(map[*optree.Op]float64, len(tasks)),
		Start:  make(map[*optree.Op]float64, len(tasks)),
	}
	for _, t := range tasks {
		for i, w := range t.remaining {
			res.Busy[i] += w
			res.Work += w
		}
	}

	now := 0.0
	for {
		// Activate every task whose materialized prerequisites are done.
		progress := true
		for progress {
			progress = false
			for _, t := range tasks {
				if t.active || t.done {
					continue
				}
				ready := true
				for _, d := range t.matDeps {
					if !d.done {
						ready = false
						break
					}
				}
				if ready {
					t.active = true
					t.start = now
					progress = true
				}
			}
			// Completion without work: drained pipelines and zero-work ops.
			for _, t := range tasks {
				if t.done || !t.active || t.workLeft() {
					continue
				}
				if pipesDone(t) {
					t.done = true
					t.finish = now
					progress = true
				}
			}
		}

		allDone := true
		for _, t := range tasks {
			if !t.done {
				allDone = false
				break
			}
		}
		if allDone {
			break
		}

		// Per-resource rates under the scheduling policy.
		rates := resourceRates(tasks, m.Dim(), policy)
		// Advance to the next (task, resource) completion.
		dt := math.Inf(1)
		for ti, t := range tasks {
			if !t.active || t.done {
				continue
			}
			for r, w := range t.remaining {
				if w > 1e-12 && rates[ti][r] > 0 {
					if need := w / rates[ti][r]; need < dt {
						dt = need
					}
				}
			}
		}
		if math.IsInf(dt, 1) {
			// Active tasks exist but none can progress — they are waiting
			// on pipelined peers that are themselves blocked; this cannot
			// happen in a well-formed tree (children activate first).
			return nil, fmt.Errorf("sim: deadlock at t=%g", now)
		}
		now += dt
		res.Steps++
		for ti, t := range tasks {
			if !t.active || t.done {
				continue
			}
			for r := range t.remaining {
				if t.remaining[r] > 1e-12 && rates[ti][r] > 0 {
					t.remaining[r] -= dt * rates[ti][r]
					if t.remaining[r] < 1e-12 {
						t.remaining[r] = 0
					}
				}
			}
		}
	}

	for _, t := range tasks {
		res.Finish[t.op] = t.finish
		res.Start[t.op] = t.start
		if t.finish > res.RT {
			res.RT = t.finish
		}
	}
	return res, nil
}

// resourceRates assigns each (task, resource) a service rate in [0, 1].
func resourceRates(tasks []*task, dim int, policy Policy) [][]float64 {
	rates := make([][]float64, len(tasks))
	for i := range rates {
		rates[i] = make([]float64, dim)
	}
	switch policy {
	case RunToCompletion:
		// Each resource serves the earliest-activated demanding task.
		for r := 0; r < dim; r++ {
			chosen := -1
			for ti, t := range tasks {
				if !t.active || t.done || t.remaining[r] <= 1e-12 {
					continue
				}
				if chosen < 0 || t.start < tasks[chosen].start {
					chosen = ti
				}
			}
			if chosen >= 0 {
				rates[chosen][r] = 1
			}
		}
	default:
		// Processor sharing: split each resource evenly.
		for r := 0; r < dim; r++ {
			n := 0
			for _, t := range tasks {
				if t.active && !t.done && t.remaining[r] > 1e-12 {
					n++
				}
			}
			if n == 0 {
				continue
			}
			for ti, t := range tasks {
				if t.active && !t.done && t.remaining[r] > 1e-12 {
					rates[ti][r] = 1 / float64(n)
				}
			}
		}
	}
	return rates
}

// pipesDone reports whether every pipelined dependency has finished.
func pipesDone(t *task) bool {
	for _, d := range t.pipeDeps {
		if !d.done {
			return false
		}
	}
	return true
}

// buildTasks flattens the tree into tasks with dependency edges, mirroring
// the cost model's accounting: EffectiveInputs drops subsumed NL inners,
// redistribution transfers add to the producing child's demands.
func buildTasks(root *optree.Op, m *cost.Model) []*task {
	var tasks []*task
	var build func(op *optree.Op) *task
	build = func(op *optree.Op) *task {
		t := &task{op: op, remaining: m.OwnDemands(op)}
		for _, in := range op.EffectiveInputs() {
			child := build(in)
			if in.Redistribute {
				child.remaining = child.remaining.Add(m.TransferDemands(in))
			}
			if in.Composition == optree.Materialized {
				t.matDeps = append(t.matDeps, child)
			} else {
				t.pipeDeps = append(t.pipeDeps, child)
				// A consumer's first tuple waits for the materialized front
				// of its whole pipelined subtree (the calculus's tf rule):
				// inherit the child's barriers.
				t.matDeps = append(t.matDeps, child.matDeps...)
			}
		}
		tasks = append(tasks, t)
		return t
	}
	build(root)
	return tasks
}
