package sim

import (
	"strings"
	"testing"

	"paropt/internal/plan"
)

func TestTimeline(t *testing.T) {
	m, est := rig(t, 2, 2, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	op := expandPlan(t, m, est, hj)
	res, err := Simulate(op, m)
	if err != nil {
		t.Fatal(err)
	}
	tl := res.Timeline(40)
	for _, want := range []string{"timeline (rt=", "scan(R1)", "scan(R2)", "build", "probe", "="} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	// One line per operator plus the header.
	lines := strings.Count(strings.TrimSpace(tl), "\n")
	if lines != op.Count() {
		t.Errorf("timeline has %d rows, want %d operators", lines, op.Count())
	}
	// Tiny width is clamped rather than panicking.
	if got := res.Timeline(1); !strings.Contains(got, "probe") {
		t.Error("clamped-width timeline broken")
	}
}

func TestTimelineBarrierVisible(t *testing.T) {
	m, est := rig(t, 2, 2, 50_000, 40_000)
	r1, _ := est.Leaf("R1", plan.SeqScan, nil)
	r2, _ := est.Leaf("R2", plan.SeqScan, nil)
	hj, _ := est.Join(r1, r2, plan.HashJoin)
	op := expandPlan(t, m, est, hj)
	res, _ := Simulate(op, m)
	tl := res.Timeline(60)
	// The probe line must start strictly after column zero (it waits for
	// the build): its bar is indented.
	for _, line := range strings.Split(tl, "\n") {
		if strings.HasPrefix(line, "probe") {
			bar := line[strings.Index(line, "|")+1:]
			if strings.HasPrefix(bar, "=") {
				t.Errorf("probe bar starts at t=0 despite the build barrier:\n%s", tl)
			}
		}
	}
}
