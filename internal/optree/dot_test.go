package optree

import (
	"strings"
	"testing"

	"paropt/internal/machine"
)

func TestDot(t *testing.T) {
	_, _, e := fixture(t)
	op, err := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	Annotate(op, m, e, DefaultAnnotateOptions())
	dot := op.Dot("example1")
	for _, want := range []string{
		`digraph "example1"`, "rankdir=BT", "scan(R1)", "sort",
		"pure-nested-loops", "style=bold", "->", "card=",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot missing %q:\n%s", want, dot)
		}
	}
	// Node count: one per operator.
	if got := strings.Count(dot, "[label="); got != op.Count() {
		t.Errorf("dot has %d labeled nodes, want %d", got, op.Count())
	}
	// Edge count: one per parent-child pair.
	if got := strings.Count(dot, "->"); got != op.Count()-1 {
		t.Errorf("dot has %d edges, want %d", got, op.Count()-1)
	}
	// Default name.
	if !strings.Contains(op.Dot(""), `digraph "optree"`) {
		t.Error("default digraph name missing")
	}
}

func TestDotShowsCloning(t *testing.T) {
	_, _, e := fixture(t)
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	Annotate(op, m, e, AnnotateOptions{MinTuplesPerClone: 1000})
	dot := op.Dot("x")
	if !strings.Contains(dot, "×4") {
		t.Errorf("dot missing cloning degree:\n%s", dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("dot missing redistribution decoration:\n%s", dot)
	}
}
