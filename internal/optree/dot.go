package optree

import (
	"fmt"
	"strings"
)

// Dot renders the operator tree as a Graphviz digraph: one node per
// operator labeled with its kind, cardinality and cloning degree; solid
// edges for pipelined composition, bold edges for materialized edges,
// dashed decoration for redistribution.
func (o *Op) Dot(name string) string {
	if name == "" {
		name = "optree"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n", name)
	id := map[*Op]int{}
	next := 0
	var walk func(op *Op)
	walk = func(op *Op) {
		for _, in := range op.Inputs {
			walk(in)
		}
		id[op] = next
		next++
		label := op.Kind.String()
		if op.Relation != "" {
			label += "(" + op.Relation + ")"
		}
		label += fmt.Sprintf("\\ncard=%d", op.OutCard)
		if d := op.Clone.Degree(); d > 1 {
			label += fmt.Sprintf(" ×%d", d)
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", id[op], label)
		for _, in := range op.Inputs {
			attrs := []string{}
			if in.Composition == Materialized {
				attrs = append(attrs, "style=bold", `label="mat"`)
			}
			if in.Redistribute {
				attrs = append(attrs, "style=dashed", `color=red`)
			}
			attr := ""
			if len(attrs) > 0 {
				attr = " [" + strings.Join(attrs, ", ") + "]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", id[in], id[op], attr)
		}
	}
	walk(o)
	b.WriteString("}\n")
	return b.String()
}
