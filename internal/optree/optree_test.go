package optree

import (
	"strings"
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/machine"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// fixture: chain R1-R2-R3 mirroring Example 1 of the paper.
func fixture(t *testing.T) (*catalog.Catalog, *query.Query, *plan.Estimator) {
	t.Helper()
	cat := catalog.New()
	for i, card := range []int64{50_000, 40_000, 30_000} {
		name := []string{"R1", "R2", "R3"}[i]
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", NDV: card, Width: 8},
				{Name: "fk", NDV: card / 10, Width: 8},
			},
			Card:  card,
			Pages: card / 50,
			Disk:  i,
		})
	}
	q := &query.Query{
		Name:      "ex1",
		Relations: []string{"R1", "R2", "R3"},
		Joins: []query.JoinPredicate{
			{Left: query.ColumnRef{Relation: "R1", Column: "id"}, Right: query.ColumnRef{Relation: "R2", Column: "fk"}},
			{Left: query.ColumnRef{Relation: "R2", Column: "id"}, Right: query.ColumnRef{Relation: "R3", Column: "fk"}},
		},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	return cat, q, plan.NewEstimator(cat, q)
}

// example1Plan builds nested-loops(sort-merge(R1,R2), R3).
func example1Plan(t *testing.T, e *plan.Estimator) *plan.Node {
	t.Helper()
	r1, err := e.Leaf("R1", plan.SeqScan, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := e.Leaf("R2", plan.SeqScan, nil)
	r3, _ := e.Leaf("R3", plan.SeqScan, nil)
	sm, err := e.Join(r1, r2, plan.SortMerge)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := e.Join(sm, r3, plan.NestedLoops)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestExample1OperatorTree reproduces Example 1: the join tree
// NL(SM(R1,R2), R3) expands to
// pure-nested-loops(merge(sort(scan(R1)), sort(scan(R2))), create-index(scan(R3))).
func TestExample1OperatorTree(t *testing.T) {
	_, _, e := fixture(t)
	nl := example1Plan(t, e)
	op, err := Expand(nl, e, DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := "pure-nested-loops(merge(sort(scan(R1)), sort(scan(R2))), create-index(scan(R3)))"
	if got := op.String(); got != want {
		t.Fatalf("expanded tree =\n  %s\nwant\n  %s", got, want)
	}
	// Structure checks: sorts and create-index materialize, the rest pipeline.
	var mats, pipes int
	op.Walk(func(o *Op) {
		if o == op {
			return
		}
		if o.Composition == Materialized {
			mats++
		} else {
			pipes++
		}
	})
	if mats != 3 {
		t.Errorf("materialized edges = %d, want 3 (two sorts + create-index)", mats)
	}
	if err := op.Validate(); err != nil {
		t.Error(err)
	}
}

func TestExpandWithoutCreateIndex(t *testing.T) {
	_, _, e := fixture(t)
	nl := example1Plan(t, e)
	op, err := Expand(nl, e, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := "pure-nested-loops(merge(sort(scan(R1)), sort(scan(R2))), scan(R3))"
	if got := op.String(); got != want {
		t.Fatalf("expanded = %s, want %s", got, want)
	}
}

func TestSortElidedForSortedInput(t *testing.T) {
	cat := catalog.New()
	cat.MustAddRelation(catalog.Relation{
		Name:    "A",
		Columns: []catalog.Column{{Name: "k", NDV: 100, Width: 8}},
		Card:    100, Pages: 2, SortedBy: "k",
	})
	cat.MustAddRelation(catalog.Relation{
		Name:    "B",
		Columns: []catalog.Column{{Name: "k", NDV: 100, Width: 8}},
		Card:    100, Pages: 2,
	})
	q := &query.Query{
		Relations: []string{"A", "B"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "A", Column: "k"},
			Right: query.ColumnRef{Relation: "B", Column: "k"},
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	e := plan.NewEstimator(cat, q)
	a, _ := e.Leaf("A", plan.SeqScan, nil)
	b, _ := e.Leaf("B", plan.SeqScan, nil)
	sm, _ := e.Join(a, b, plan.SortMerge)
	op, err := Expand(sm, e, ExpandOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := op.String(), "merge(scan(A), sort(scan(B)))"; got != want {
		t.Fatalf("expanded = %s, want %s (A's sort elided)", got, want)
	}
}

func TestHashJoinExpansion(t *testing.T) {
	_, _, e := fixture(t)
	r1, _ := e.Leaf("R1", plan.SeqScan, nil)
	r2, _ := e.Leaf("R2", plan.SeqScan, nil)
	hj, _ := e.Join(r1, r2, plan.HashJoin)
	op, err := Expand(hj, e, DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := op.String(), "probe(scan(R1), build(scan(R2)))"; got != want {
		t.Fatalf("expanded = %s, want %s", got, want)
	}
	build := op.Inputs[1]
	if build.Kind != Build || build.Composition != Materialized {
		t.Error("build must materialize before probe")
	}
	front := op.MaterializedFront()
	if len(front) != 1 || front[0] != build {
		t.Errorf("materialized front = %v", front)
	}
}

func TestMaterializedFrontNested(t *testing.T) {
	_, _, e := fixture(t)
	nl := example1Plan(t, e)
	op, _ := Expand(nl, e, DefaultExpandOptions())
	front := op.MaterializedFront()
	// Fronts: sort(R1), sort(R2), create-index(R3). The sorts are maximal;
	// nothing nested beneath them is reported.
	if len(front) != 3 {
		t.Fatalf("front = %d subtrees, want 3", len(front))
	}
	kinds := map[Kind]int{}
	for _, f := range front {
		kinds[f.Kind]++
	}
	if kinds[Sort] != 2 || kinds[CreateIndex] != 1 {
		t.Errorf("front kinds = %v", kinds)
	}
}

func TestExpandErrors(t *testing.T) {
	_, _, e := fixture(t)
	if _, err := Expand(nil, e, ExpandOptions{}); err == nil {
		t.Error("nil plan should error")
	}
	r1, _ := e.Leaf("R1", plan.SeqScan, nil)
	r2, _ := e.Leaf("R2", plan.SeqScan, nil)
	bad := &plan.Node{Left: r1, Right: r2, Method: plan.JoinMethod(99)}
	bad.Rels = r1.Rels.Union(r2.Rels)
	if _, err := Expand(bad, e, ExpandOptions{}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestValidateArity(t *testing.T) {
	bad := &Op{Kind: Merge, Inputs: []*Op{{Kind: Scan, Relation: "R"}}}
	if err := bad.Validate(); err == nil {
		t.Error("merge with one input should fail validation")
	}
	badNested := &Op{Kind: Sort, Inputs: []*Op{{Kind: Probe}}}
	if err := badNested.Validate(); err == nil {
		t.Error("nested arity violation should be caught")
	}
}

func TestWalkAndCount(t *testing.T) {
	_, _, e := fixture(t)
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	// pureNL, merge, 2 sorts, 2 scans, create-index, scan = 8.
	if got := op.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	var order []Kind
	op.Walk(func(o *Op) { order = append(order, o.Kind) })
	if order[len(order)-1] != PureNL {
		t.Error("Walk must visit root last (bottom-up)")
	}
}

func TestAnnotate(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	Annotate(op, m, e, AnnotateOptions{MinTuplesPerClone: 10_000})
	op.Walk(func(o *Op) {
		if o.Clone.Degree() < 1 {
			t.Errorf("%s: degree < 1", o.Kind)
		}
		if o.Clone.Degree() > 4 {
			t.Errorf("%s: degree %d exceeds CPU count", o.Kind, o.Clone.Degree())
		}
		for _, r := range o.Clone.Resources {
			if m.Resource(r).Kind != machine.CPU {
				t.Errorf("%s: clone resource %v is not a CPU", o.Kind, r)
			}
		}
	})
	// A 50k-tuple scan at 10k per clone on 4 CPUs should clone fully.
	scans := 0
	op.Walk(func(o *Op) {
		if o.Kind == Scan && o.Relation == "R1" {
			scans++
			if o.Clone.Degree() != 4 {
				t.Errorf("scan(R1) degree = %d, want 4", o.Clone.Degree())
			}
		}
	})
	if scans != 1 {
		t.Fatalf("scan(R1) seen %d times", scans)
	}
}

func TestAnnotateMaxDegree(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 8, Disks: 2})
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	Annotate(op, m, e, AnnotateOptions{MaxDegree: 2, MinTuplesPerClone: 1})
	op.Walk(func(o *Op) {
		if o.Clone.Degree() > 2 {
			t.Errorf("%s: degree %d exceeds MaxDegree", o.Kind, o.Clone.Degree())
		}
	})
}

func TestAnnotateSequentialMachine(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 1, Disks: 1})
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	Annotate(op, m, e, DefaultAnnotateOptions())
	op.Walk(func(o *Op) {
		if o.Clone.Degree() != 1 {
			t.Errorf("%s cloned on a 1-CPU machine", o.Kind)
		}
		for _, in := range o.Inputs {
			if in.Redistribute {
				t.Errorf("%s: redistribution on a sequential machine", in.Kind)
			}
		}
	})
}

func TestRedistributionFlag(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	Annotate(op, m, e, AnnotateOptions{MinTuplesPerClone: 1000})
	// With everything cloned on rotating offsets, at least one edge must
	// repartition (the two merge inputs are partitioned on different attrs
	// originally or on different clone sets).
	redist := 0
	op.Walk(func(o *Op) {
		if o.Redistribute {
			redist++
		}
	})
	if redist == 0 {
		t.Error("expected at least one redistribution edge on a cloned plan")
	}
}

func TestAnnotationTable(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	op, _ := Expand(example1Plan(t, e), e, DefaultExpandOptions())
	Annotate(op, m, e, DefaultAnnotateOptions())
	tab := op.AnnotationTable()
	for _, want := range []string{"Node", "cloning", "comp. method", "redistr.", "scan(R1)", "merge", "pure-nested-loops"} {
		if !strings.Contains(tab, want) {
			t.Errorf("annotation table missing %q:\n%s", want, tab)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		Scan: "scan", IndexScanOp: "indexScan", Sort: "sort", Merge: "merge",
		Build: "build", Probe: "probe", PureNL: "pure-nested-loops",
		CreateIndex: "create-index", Kind(99): "op(99)",
	}
	for k, w := range want {
		if got := k.String(); got != w {
			t.Errorf("%d.String() = %q, want %q", k, got, w)
		}
	}
	if Pipelined.String() != "pipelined" || Materialized.String() != "materialized" {
		t.Error("Composition strings wrong")
	}
}

func TestCloningString(t *testing.T) {
	c := Cloning{}
	if c.String() != "-" || c.Degree() != 1 {
		t.Error("empty cloning wrong")
	}
	c = Cloning{
		Resources: []machine.ResourceID{1, 2},
		Attribute: query.ColumnRef{Relation: "R", Column: "a"},
	}
	if got := c.String(); got != "({1,2},R.a)" {
		t.Errorf("String = %q", got)
	}
	if c.Degree() != 2 {
		t.Error("Degree wrong")
	}
}

func TestIndexScanExpansion(t *testing.T) {
	cat, _, _ := fixture(t)
	cat.MustAddIndex(catalog.Index{Name: "R3_fk", Relation: "R3", Columns: []string{"fk"}, Clustered: true})
	q := &query.Query{
		Relations: []string{"R1", "R3"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "R1", Column: "id"},
			Right: query.ColumnRef{Relation: "R3", Column: "fk"},
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	e := plan.NewEstimator(cat, q)
	r1, _ := e.Leaf("R1", plan.SeqScan, nil)
	idx, _ := cat.Index("R3_fk")
	r3, err := e.Leaf("R3", plan.IndexScan, idx)
	if err != nil {
		t.Fatal(err)
	}
	nl, _ := e.Join(r1, r3, plan.NestedLoops)
	op, err := Expand(nl, e, DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Index already exists: no create-index inflection.
	if got, want := op.String(), "pure-nested-loops(scan(R1), indexScan(R3_fk))"; got != want {
		t.Fatalf("expanded = %s, want %s", got, want)
	}
}
