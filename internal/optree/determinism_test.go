package optree

import (
	"math/rand"
	"testing"

	"paropt/internal/machine"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// TestExpandDeterministic: expanding the same plan twice yields identical
// trees — the paper's "each annotated join tree is expanded to a *unique*
// operator tree".
func TestExpandDeterministic(t *testing.T) {
	_, _, e := fixture(t)
	p := example1Plan(t, e)
	a, err := Expand(p, e, DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Expand(p, e, DefaultExpandOptions())
	if a.String() != b.String() {
		t.Fatalf("expansion not deterministic: %s vs %s", a, b)
	}
	if a.Count() != b.Count() {
		t.Fatal("structure differs")
	}
}

// TestAnnotateDeterministic: annotation is a pure function of the tree and
// options.
func TestAnnotateDeterministic(t *testing.T) {
	_, _, e := fixture(t)
	m := machine.New(machine.Config{CPUs: 4, Disks: 4})
	mk := func() string {
		op, err := Expand(example1Plan(t, e), e, DefaultExpandOptions())
		if err != nil {
			t.Fatal(err)
		}
		Annotate(op, m, e, DefaultAnnotateOptions())
		return op.AnnotationTable()
	}
	if mk() != mk() {
		t.Fatal("annotation not deterministic")
	}
}

// TestQuickExpansionInvariants: for random plans over the fixture query,
// the expansion (1) validates, (2) has exactly one base access per plan
// leaf, (3) keeps join cardinalities, and (4) puts a materialized edge
// under every blocking operator.
func TestQuickExpansionInvariants(t *testing.T) {
	_, q, e := fixture(t)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		p := randomPlanOver(t, e, q, rng)
		op, err := Expand(p, e, DefaultExpandOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := op.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		leaves := 0
		op.Walk(func(o *Op) {
			switch o.Kind {
			case Scan, IndexScanOp:
				leaves++
			case Sort, Build, CreateIndex:
				if o.Composition != Materialized {
					t.Fatalf("trial %d: blocking op %v not materialized", trial, o.Kind)
				}
			}
		})
		if want := len(p.Leaves()); leaves != want {
			t.Fatalf("trial %d: %d base accesses, want %d", trial, leaves, want)
		}
		if op.OutCard != p.Card {
			t.Fatalf("trial %d: root card %d != plan card %d", trial, op.OutCard, p.Card)
		}
	}
}

// randomPlanOver builds a random bushy plan over the fixture's relations.
func randomPlanOver(t *testing.T, e *plan.Estimator, q *query.Query, rng *rand.Rand) *plan.Node {
	t.Helper()
	perm := rng.Perm(len(q.Relations))
	nodes := make([]*plan.Node, len(perm))
	for i, pos := range perm {
		leaf, err := e.Leaf(q.Relations[pos], plan.SeqScan, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = leaf
	}
	for len(nodes) > 1 {
		i := rng.Intn(len(nodes) - 1)
		m := plan.AllJoinMethods[rng.Intn(3)]
		if len(q.JoinsBetween(nodes[i].Rels, nodes[i+1].Rels)) == 0 {
			m = plan.NestedLoops
		}
		j, err := e.Join(nodes[i], nodes[i+1], m)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes[:i], append([]*plan.Node{j}, nodes[i+2:]...)...)
	}
	return nodes[0]
}
