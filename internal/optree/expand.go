package optree

import (
	"fmt"

	"paropt/internal/plan"
	"paropt/internal/query"
)

// ExpandOptions tunes the macro expansion.
type ExpandOptions struct {
	// CreateIndexThreshold: when a nested-loops inner is a plain heap scan
	// with at least this many tuples, expand with an explicit create-index
	// inflection (§4.2). Zero disables temporary index creation.
	CreateIndexThreshold int64
}

// DefaultExpandOptions builds temporary indexes for inners of 1000+ tuples.
func DefaultExpandOptions() ExpandOptions {
	return ExpandOptions{CreateIndexThreshold: 1000}
}

// Expand macro-expands an annotated join tree into its unique operator tree
// (§4.2). The estimator supplies canonicalized orderings so that sorts are
// elided for inputs that already carry the merge order (the paper: "if R2 is
// already sorted then only one sort operation needs to be stated").
func Expand(n *plan.Node, est *plan.Estimator, opts ExpandOptions) (*Op, error) {
	if n == nil {
		return nil, fmt.Errorf("optree: nil plan")
	}
	op, err := expand(n, est, opts)
	if err != nil {
		return nil, err
	}
	if err := op.Validate(); err != nil {
		return nil, err
	}
	return op, nil
}

func expand(n *plan.Node, est *plan.Estimator, opts ExpandOptions) (*Op, error) {
	if n.IsLeaf() {
		kind := Scan
		if n.Access == plan.IndexScan {
			kind = IndexScanOp
		}
		return &Op{
			Kind:        kind,
			Relation:    n.Relation,
			Index:       n.Index,
			Composition: Pipelined,
			OutCard:     n.Card,
			Width:       n.Width,
			Source:      n,
		}, nil
	}
	left, err := expand(n.Left, est, opts)
	if err != nil {
		return nil, err
	}
	right, err := expand(n.Right, est, opts)
	if err != nil {
		return nil, err
	}
	switch n.Method {
	case plan.SortMerge:
		var lKey, rKey query.ColumnRef
		if len(n.Preds) > 0 {
			lKey, rKey = n.Preds[0].Left, n.Preds[0].Right
			// Orient the predicate to the operands: its Left column may
			// belong to the plan's right subtree.
			if pos := est.Q.RelationIndex(lKey.Relation); pos >= 0 && !n.Left.Rels.Has(pos) {
				lKey, rKey = rKey, lKey
			}
		}
		lIn := sortIfNeeded(left, n.Left, est.MergeOrder(n.Preds, true), lKey, n)
		rIn := sortIfNeeded(right, n.Right, est.MergeOrder(n.Preds, false), rKey, n)
		return &Op{
			Kind:        Merge,
			Inputs:      []*Op{lIn, rIn},
			Composition: Pipelined,
			InCard:      n.Left.Card,
			OutCard:     n.Card,
			Width:       n.Width,
			Preds:       n.Preds,
			Source:      n,
		}, nil
	case plan.HashJoin:
		build := &Op{
			Kind:        Build,
			Inputs:      []*Op{right},
			Composition: Materialized, // probe cannot start before build completes
			InCard:      n.Right.Card,
			OutCard:     n.Right.Card,
			Width:       n.Right.Width,
			Source:      n,
		}
		return &Op{
			Kind:        Probe,
			Inputs:      []*Op{left, build},
			Composition: Pipelined,
			InCard:      n.Left.Card,
			OutCard:     n.Card,
			Width:       n.Width,
			Preds:       n.Preds,
			Source:      n,
		}, nil
	case plan.NestedLoops:
		inner := right
		// A non-base inner cannot be rescanned per outer tuple; it must be
		// materialized into a temporary the loop can rescan.
		if inner.Kind != Scan && inner.Kind != IndexScanOp {
			inner.Composition = Materialized
		}
		// Inflection: build a temporary index over a large heap-scanned
		// inner so each outer tuple probes instead of rescanning.
		if right.Kind == Scan && opts.CreateIndexThreshold > 0 &&
			n.Right.Card >= opts.CreateIndexThreshold && len(n.Preds) > 0 {
			inner = &Op{
				Kind:        CreateIndex,
				Inputs:      []*Op{right},
				Composition: Materialized,
				InCard:      n.Right.Card,
				OutCard:     n.Right.Card,
				Width:       n.Right.Width,
				Source:      n,
			}
		}
		return &Op{
			Kind:        PureNL,
			Inputs:      []*Op{left, inner},
			Composition: Pipelined,
			InCard:      n.Left.Card,
			OutCard:     n.Card,
			Width:       n.Width,
			Preds:       n.Preds,
			Source:      n,
		}, nil
	default:
		return nil, fmt.Errorf("optree: unknown join method %v", n.Method)
	}
}

// sortIfNeeded wraps in with an explicit Sort unless the plan subtree
// already delivers the required merge order. key is the raw (uncanonical)
// merge column on this side, recorded so the execution engine can sort.
func sortIfNeeded(in *Op, sub *plan.Node, want plan.Ordering, key query.ColumnRef, join *plan.Node) *Op {
	if !want.Empty() && want.Prefix(sub.Order) {
		// Already ordered: the child feeds the merge directly; the merge
		// can consume it pipelined but must still wait for the *other*
		// side's sort, which the calculus handles via the materialized
		// front.
		return in
	}
	return &Op{
		Kind:        Sort,
		Inputs:      []*Op{in},
		Composition: Materialized,
		InCard:      sub.Card,
		OutCard:     sub.Card,
		Width:       sub.Width,
		SortKey:     key,
		Source:      join,
	}
}
