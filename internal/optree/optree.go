// Package optree implements the operator trees of §4 of the paper: each
// annotated join tree macro-expands into a unique tree of scheduler-atomic
// operators (scan, sort, merge, build, probe, pure-nested-loops,
// create-index), annotated per (child, parent) edge with the composition
// method (pipelined or materialized), with cloning (intra-operator
// parallelism over a set of resources on a partitioning attribute), and
// with a data-redistribution flag.
package optree

import (
	"fmt"
	"strings"

	"paropt/internal/catalog"
	"paropt/internal/machine"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// Kind identifies an atomic operator.
type Kind uint8

const (
	// Scan reads a base relation's heap.
	Scan Kind = iota
	// IndexScanOp reads a base relation through an index.
	IndexScanOp
	// Sort orders its input; it materializes by nature.
	Sort
	// Merge combines two sorted inputs (the merge phase of sort-merge).
	Merge
	// Build constructs a hash table from its input; materializes.
	Build
	// Probe streams its left input against a built hash table.
	Probe
	// PureNL is a nested-loops join "without any inflections" (§4.2).
	PureNL
	// CreateIndex builds a temporary index on its input for a subsequent
	// nested-loops probe; materializes.
	CreateIndex
)

// String names the kind as in the paper's examples.
func (k Kind) String() string {
	switch k {
	case Scan:
		return "scan"
	case IndexScanOp:
		return "indexScan"
	case Sort:
		return "sort"
	case Merge:
		return "merge"
	case Build:
		return "build"
	case Probe:
		return "probe"
	case PureNL:
		return "pure-nested-loops"
	case CreateIndex:
		return "create-index"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Composition is the composition-method annotation for a (child, parent)
// pair, stored on the child (§4.2 annotation 1).
type Composition uint8

const (
	// Pipelined means the child produces partial output the parent consumes
	// as it arrives.
	Pipelined Composition = iota
	// Materialized means the child runs to completion before the parent
	// consumes anything; the cost calculus applies sync() to its descriptor.
	Materialized
)

// String names the composition method.
func (c Composition) String() string {
	if c == Materialized {
		return "materialized"
	}
	return "pipelined"
}

// Cloning is the intra-operator-parallelism annotation (§4.2 annotation 2):
// a set of resources and the attribute the input is partitioned on.
type Cloning struct {
	// Resources are the CPU resources the clones run on; empty means the
	// operator is not cloned.
	Resources []machine.ResourceID
	// Attribute is the partitioning attribute.
	Attribute query.ColumnRef
}

// Degree is the number of clones (1 if not cloned).
func (c Cloning) Degree() int {
	if len(c.Resources) == 0 {
		return 1
	}
	return len(c.Resources)
}

// String renders "({1,2},R.a)" or "-".
func (c Cloning) String() string {
	if len(c.Resources) == 0 {
		return "-"
	}
	parts := make([]string, len(c.Resources))
	for i, r := range c.Resources {
		parts[i] = fmt.Sprint(int(r))
	}
	return fmt.Sprintf("({%s},%s)", strings.Join(parts, ","), c.Attribute)
}

// Op is one node of an operator tree.
type Op struct {
	Kind Kind
	// Relation and Index identify the accessed object for Scan,
	// IndexScanOp and CreateIndex leaves.
	Relation string
	Index    *catalog.Index
	// Inputs are the child operators, producer-first. Scans have none;
	// Sort, Build, CreateIndex have one; Merge, Probe, PureNL have two.
	Inputs []*Op

	// Composition annotates the edge to the parent (meaningless on roots).
	Composition Composition
	// Clone annotates intra-operator parallelism.
	Clone Cloning
	// Redistribute is true when this node's output must be repartitioned
	// before its parent consumes it (§4.2 annotation 3).
	Redistribute bool
	// RedistTargets is the sorted set of shared-nothing nodes the
	// repartitioned output is sent to (the nodes hosting the parent's clone
	// set). Empty on single-node machines and on non-redistributed edges.
	RedistTargets []int
	// RedistAttr is the canonical attribute the parent repartitions this
	// node's output on (set only when Redistribute is true). The cost model
	// compares it against the placement map: a placed base-relation scan
	// repartitioned on its own placement column is already where it needs to
	// be, so the redistribution is free.
	RedistAttr query.ColumnRef

	// Derived size information for costing.

	// InCard and OutCard are input/output tuple counts (for two-input
	// operators InCard is the left/probe/outer input; the other input's
	// size is read from Inputs[1]).
	InCard, OutCard int64
	// Width is the output tuple byte width.
	Width int
	// Preds are the join predicates evaluated here (join operators only).
	Preds []query.JoinPredicate
	// SortKey is the column a Sort operator orders by (the merge column on
	// its side of the join); zero for other kinds.
	SortKey query.ColumnRef
	// Source is the join-tree node this operator was expanded from.
	Source *plan.Node
}

// NumInputsWant returns the arity the kind requires.
func (k Kind) NumInputsWant() int {
	switch k {
	case Scan, IndexScanOp:
		return 0
	case Sort, Build, CreateIndex:
		return 1
	case Merge, Probe, PureNL:
		return 2
	}
	return 0
}

// Validate checks structural arity recursively.
func (o *Op) Validate() error {
	if got, want := len(o.Inputs), o.Kind.NumInputsWant(); got != want {
		return fmt.Errorf("optree: %s has %d inputs, wants %d", o.Kind, got, want)
	}
	for _, in := range o.Inputs {
		if err := in.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// EffectiveInputs returns the children that execute as distinct tasks: a
// nested-loops inner that is a base access (heap or index) is not scanned
// once on its own — it is probed or rescanned per outer tuple, and that
// cost belongs to the loop itself. Cost model and simulator share this rule
// so their accounting agrees.
func (o *Op) EffectiveInputs() []*Op {
	if o.Kind == PureNL && len(o.Inputs) == 2 {
		switch o.Inputs[1].Kind {
		case Scan, IndexScanOp:
			return o.Inputs[:1]
		}
	}
	return o.Inputs
}

// Walk visits the tree bottom-up (children before parents).
func (o *Op) Walk(fn func(*Op)) {
	for _, in := range o.Inputs {
		in.Walk(fn)
	}
	fn(o)
}

// Count returns the number of operators in the tree.
func (o *Op) Count() int {
	n := 0
	o.Walk(func(*Op) { n++ })
	return n
}

// MaterializedFront returns the maximal subtrees whose roots carry the
// Materialized annotation — the paper's "materialized front" S2 of S1: the
// minimal set of subtrees that must finish before the first tuple of the
// whole tree is produced (§5, first-tuple descriptor). Fronts are collected
// top-down: a materialized node hides any materialized descendants.
func (o *Op) MaterializedFront() []*Op {
	var front []*Op
	var walk func(*Op)
	walk = func(op *Op) {
		for _, in := range op.Inputs {
			if in.Composition == Materialized {
				front = append(front, in)
			} else {
				walk(in)
			}
		}
	}
	walk(o)
	return front
}

// String renders the functional notation of the paper, e.g.
// "merge(sort(scan(R1)), sort(scan(R2)))".
func (o *Op) String() string {
	var b strings.Builder
	o.write(&b)
	return b.String()
}

func (o *Op) write(b *strings.Builder) {
	b.WriteString(o.Kind.String())
	b.WriteByte('(')
	switch o.Kind {
	case Scan:
		b.WriteString(o.Relation)
	case IndexScanOp:
		if o.Index != nil {
			b.WriteString(o.Index.Name)
		} else {
			b.WriteString(o.Relation)
		}
	default:
		for i, in := range o.Inputs {
			if i > 0 {
				b.WriteString(", ")
			}
			in.write(b)
		}
	}
	b.WriteByte(')')
}

// AnnotationTable renders one row per operator in the style of Example 1:
// node, cloning, composition method, redistribution.
func (o *Op) AnnotationTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-20s %-14s %s\n", "Node", "cloning", "comp. method", "redistr.")
	o.Walk(func(op *Op) {
		name := op.Kind.String()
		if op.Kind == Scan || op.Kind == IndexScanOp {
			name = fmt.Sprintf("%s(%s)", op.Kind, op.Relation)
		}
		redistr := "no"
		if op.Redistribute {
			redistr = "yes"
			if len(op.RedistTargets) > 0 {
				parts := make([]string, len(op.RedistTargets))
				for i, n := range op.RedistTargets {
					parts[i] = fmt.Sprintf("n%d", n)
				}
				redistr = "yes→{" + strings.Join(parts, ",") + "}"
			}
		}
		fmt.Fprintf(&b, "%-24s %-20s %-14s %s\n", name, op.Clone, op.Composition, redistr)
	})
	return b.String()
}
