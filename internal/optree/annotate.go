package optree

import (
	"sort"

	"paropt/internal/machine"
	"paropt/internal/plan"
	"paropt/internal/query"
)

// AnnotateOptions tunes the cloning and redistribution annotator.
type AnnotateOptions struct {
	// MaxDegree caps the number of clones per operator; 0 means the
	// machine's CPU count.
	MaxDegree int
	// MinTuplesPerClone avoids cloning small operators: the degree is at
	// most ceil(inputCard / MinTuplesPerClone). Zero means 10 000.
	MinTuplesPerClone int64
}

// DefaultAnnotateOptions clones down to 10k tuples per clone, machine-wide.
func DefaultAnnotateOptions() AnnotateOptions {
	return AnnotateOptions{MinTuplesPerClone: 10_000}
}

// Annotate assigns cloning and redistribution annotations to every operator
// of the tree (§4.2 annotations 2 and 3). The policy is deterministic:
//
//   - The cloning degree of an operator is proportional to its input size
//     (one clone per MinTuplesPerClone tuples) capped by MaxDegree and the
//     machine's CPU count; leaves are never cloned wider than their
//     relation's placement allows parallel reads.
//   - Clones run on CPUs assigned round-robin from a rotating offset so
//     independent subtrees land on different CPUs first.
//   - The partitioning attribute is the operator's join column when it has
//     predicates, otherwise the attribute inherited from its first input.
//   - Redistribute is set on a (child, parent) edge when the parent is
//     cloned and the child's partitioning attribute differs (after
//     canonicalization) from the parent's, or their degrees differ.
func Annotate(root *Op, m *machine.Machine, est *plan.Estimator, opts AnnotateOptions) {
	if opts.MinTuplesPerClone <= 0 {
		opts.MinTuplesPerClone = 10_000
	}
	maxDeg := len(m.CPUs())
	if opts.MaxDegree > 0 && opts.MaxDegree < maxDeg {
		maxDeg = opts.MaxDegree
	}
	offset := 0
	root.Walk(func(op *Op) {
		size := op.InCard
		if size < op.OutCard {
			size = op.OutCard
		}
		deg := int((size + opts.MinTuplesPerClone - 1) / opts.MinTuplesPerClone)
		if deg < 1 {
			deg = 1
		}
		if deg > maxDeg {
			deg = maxDeg
		}
		res := make([]machine.ResourceID, deg)
		for i := range res {
			res[i] = m.CPUFor(offset + i)
		}
		offset += deg
		op.Clone = Cloning{Resources: res, Attribute: partitionAttr(op, est)}
	})
	// Second pass: redistribution on edges. On multi-node machines the edge
	// also records which nodes the repartitioned stream is sent to (the
	// nodes hosting the parent's clone set), so the cost model can charge
	// the right interconnect links.
	root.Walk(func(op *Op) {
		for _, in := range op.Inputs {
			in.Redistribute = needsRedistribution(in, op, est)
			in.RedistTargets = nil
			in.RedistAttr = query.ColumnRef{}
			if in.Redistribute {
				in.RedistAttr = est.Canon(op.Clone.Attribute)
				if m.Nodes() > 1 {
					in.RedistTargets = cloneNodes(op.Clone, m)
				}
			}
		}
	})
}

// cloneNodes returns the sorted distinct nodes hosting a clone set.
func cloneNodes(c Cloning, m *machine.Machine) []int {
	res := c.Resources
	if len(res) == 0 {
		res = []machine.ResourceID{m.CPUFor(0)}
	}
	seen := map[int]bool{}
	var nodes []int
	for _, r := range res {
		n := m.NodeOf(r)
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	sort.Ints(nodes)
	return nodes
}

// partitionAttr picks the attribute an operator's input is partitioned on.
func partitionAttr(op *Op, est *plan.Estimator) query.ColumnRef {
	if len(op.Preds) > 0 {
		return est.Canon(op.Preds[0].Left)
	}
	switch op.Kind {
	case Scan, IndexScanOp:
		col := ""
		if op.Index != nil && len(op.Index.Columns) > 0 {
			col = op.Index.Columns[0]
		} else if rel, ok := est.Cat.Relation(op.Relation); ok && len(rel.Columns) > 0 {
			col = rel.Columns[0].Name
		}
		return est.Canon(query.ColumnRef{Relation: op.Relation, Column: col})
	default:
		if len(op.Inputs) > 0 {
			return op.Inputs[0].Clone.Attribute
		}
	}
	return query.ColumnRef{}
}

// needsRedistribution decides the redistribution flag for edge child→parent.
func needsRedistribution(child, parent *Op, est *plan.Estimator) bool {
	pd := parent.Clone.Degree()
	cd := child.Clone.Degree()
	if pd == 1 && cd == 1 {
		return false
	}
	// Build/probe pairs and merges need both inputs partitioned on the join
	// attribute across the same clone set.
	pAttr := est.Canon(parent.Clone.Attribute)
	cAttr := est.Canon(child.Clone.Attribute)
	if pAttr != cAttr {
		return true
	}
	if pd != cd {
		return true
	}
	for i := range parent.Clone.Resources {
		if parent.Clone.Resources[i] != child.Clone.Resources[i] {
			return true
		}
	}
	return false
}
