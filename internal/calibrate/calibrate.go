// Package calibrate fits the cost model's parameters to the measured
// behavior of the execution engine on the current machine, so the abstract
// time units of the §5 calculus become commensurate with wall-clock time.
// The paper assumes a calibrated work model as given (as System R did);
// this package is the missing procedure: it times the engine's physical
// micro-operations (tuple scan, sort comparison, hash build, hash probe) on
// generated data and solves for the per-unit CPU costs. I/O costs cannot be
// measured in an in-memory engine; they keep the conventional
// page-I/O-to-tuple-CPU ratio of the defaults, rescaled to the measured
// CPU unit.
package calibrate

import (
	"fmt"
	"math"
	"sort"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/cost"
	"paropt/internal/storage"
)

// Sample is one measured micro-operation.
type Sample struct {
	// Name identifies the micro-op.
	Name string
	// UnitNanos is nanoseconds per model unit (tuple, comparison, probe).
	UnitNanos float64
	// N is the operation count measured.
	N int64
}

// Report is the calibration outcome.
type Report struct {
	// Params is the fitted parameter set: CPU costs are measured, I/O and
	// network costs keep the default ratios rescaled to the measured
	// tuple-CPU unit.
	Params cost.Params
	// Samples are the raw measurements, by name.
	Samples map[string]Sample
	// UnitNanos is how many wall-clock nanoseconds one abstract time unit
	// of the fitted Params corresponds to.
	UnitNanos float64
}

// Run measures micro-operations over scale tuples (≥ 1000 recommended) and
// fits Params. Timing-based: results vary across machines, which is the
// point.
func Run(scale int64, seed int64) (*Report, error) {
	if scale < 1000 {
		scale = 1000
	}
	cat := catalog.New()
	rel, err := cat.AddRelation(catalog.Relation{
		Name: "cal",
		Columns: []catalog.Column{
			{Name: "k", NDV: scale / 4, Width: 8},
			{Name: "v", NDV: scale, Width: 8},
		},
		Card:  scale,
		Pages: scale / 100,
	})
	if err != nil {
		return nil, err
	}
	tab := storage.Generate(rel, seed)

	rep := &Report{Samples: map[string]Sample{}}

	// Tuple scan: touch every row once.
	scanNs := measure(func() {
		var sink int64
		for _, row := range tab.Rows {
			sink += row[0]
		}
		sinkhole = sink
	})
	rep.add("scan-tuple", scanNs/float64(scale), scale)

	// Sort: n log2 n comparisons.
	keys := make([]int64, scale)
	for i, row := range tab.Rows {
		keys[i] = row[0]
	}
	sortNs := measure(func() {
		cp := append([]int64(nil), keys...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
	})
	comparisons := float64(scale) * math.Log2(float64(scale))
	rep.add("sort-compare", sortNs/comparisons, int64(comparisons))

	// Hash build.
	var built map[int64][]int
	buildNs := measure(func() {
		built = make(map[int64][]int, scale)
		for i, row := range tab.Rows {
			built[row[0]] = append(built[row[0]], i)
		}
	})
	rep.add("hash-build", buildNs/float64(scale), scale)

	// Hash probe.
	probeNs := measure(func() {
		var sink int
		for _, row := range tab.Rows {
			sink += len(built[row[0]])
		}
		sinkhole = int64(sink)
	})
	rep.add("hash-probe", probeNs/float64(scale), scale)

	// Fit: keep the default parameter *ratios* for unmeasurable quantities
	// and rescale so one abstract unit == the default CPUTuple's measured
	// time. Measured CPU costs replace the defaults directly.
	def := cost.DefaultParams()
	unit := rep.Samples["scan-tuple"].UnitNanos / def.CPUTuple
	if unit <= 0 {
		return nil, fmt.Errorf("calibrate: degenerate measurement")
	}
	p := def
	p.CPUTuple = rep.Samples["scan-tuple"].UnitNanos / unit
	p.CPUCompare = rep.Samples["sort-compare"].UnitNanos / unit
	p.HashBuild = rep.Samples["hash-build"].UnitNanos / unit
	p.HashProbe = rep.Samples["hash-probe"].UnitNanos / unit
	p.IndexProbeCPU = 2 * p.HashProbe // B-tree descent ≈ a couple of probes
	rep.Params = p
	rep.UnitNanos = unit
	return rep, nil
}

// sinkhole defeats dead-code elimination in measured loops.
var sinkhole int64

// measure times fn once, with a repeat loop for very fast bodies.
func measure(fn func()) float64 {
	reps := 1
	for {
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		elapsed := time.Since(start)
		if elapsed >= 2*time.Millisecond || reps >= 1<<16 {
			return float64(elapsed.Nanoseconds()) / float64(reps)
		}
		reps *= 4
	}
}

func (r *Report) add(name string, unitNanos float64, n int64) {
	r.Samples[name] = Sample{Name: name, UnitNanos: unitNanos, N: n}
}

// String renders the report for CLI output.
func (r *Report) String() string {
	names := make([]string, 0, len(r.Samples))
	for n := range r.Samples {
		names = append(names, n)
	}
	sort.Strings(names)
	out := fmt.Sprintf("calibration: 1 model unit = %.1f ns\n", r.UnitNanos)
	for _, n := range names {
		s := r.Samples[n]
		out += fmt.Sprintf("  %-14s %8.2f ns/unit  (n=%d)\n", s.Name, s.UnitNanos, s.N)
	}
	out += fmt.Sprintf("fitted params: cpuTuple=%.4g cpuCompare=%.4g hashBuild=%.4g hashProbe=%.4g\n",
		r.Params.CPUTuple, r.Params.CPUCompare, r.Params.HashBuild, r.Params.HashProbe)
	return out
}
