package calibrate

import (
	"strings"
	"testing"

	"paropt/internal/workload"

	"paropt/internal/core"
	"paropt/internal/cost"
)

func TestRunProducesPositiveParams(t *testing.T) {
	rep, err := Run(20_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Params
	for name, v := range map[string]float64{
		"CPUTuple":   p.CPUTuple,
		"CPUCompare": p.CPUCompare,
		"HashBuild":  p.HashBuild,
		"HashProbe":  p.HashProbe,
		"IOPage":     p.IOPage,
	} {
		if v <= 0 {
			t.Errorf("%s = %g, want > 0", name, v)
		}
	}
	if rep.UnitNanos <= 0 {
		t.Error("unit must be positive")
	}
	if len(rep.Samples) != 4 {
		t.Errorf("samples = %d, want 4", len(rep.Samples))
	}
	for name, s := range rep.Samples {
		if s.UnitNanos <= 0 || s.N <= 0 {
			t.Errorf("sample %s degenerate: %+v", name, s)
		}
	}
}

func TestScaleFloor(t *testing.T) {
	rep, err := Run(10, 1) // clamped to 1000
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples["scan-tuple"].N < 1000 {
		t.Error("scale floor not applied")
	}
}

func TestReportString(t *testing.T) {
	rep, err := Run(5_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"calibration:", "scan-tuple", "sort-compare", "hash-build", "hash-probe", "fitted params"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestFittedParamsDriveOptimizer: the fitted parameter set must be usable
// as a drop-in cost model parameterization.
func TestFittedParamsDriveOptimizer(t *testing.T) {
	rep, err := Run(5_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	cat, q := workload.Portfolio(2)
	o, err := core.NewOptimizer(cat, q, core.Config{Params: &rep.Params})
	if err != nil {
		t.Fatal(err)
	}
	p, err := o.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if p.RT() <= 0 {
		t.Error("calibrated optimization produced no cost")
	}
}

// TestRelativeOrderSanity: a hash probe should not cost orders of magnitude
// more than a plain tuple touch; comparisons should be same order as
// touches. Very loose bounds — this is wall-clock measurement.
func TestRelativeOrderSanity(t *testing.T) {
	rep, err := Run(50_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	touch := rep.Samples["scan-tuple"].UnitNanos
	probe := rep.Samples["hash-probe"].UnitNanos
	if probe > touch*1000 || touch > probe*1000 {
		t.Errorf("implausible ratio: touch %.2f ns vs probe %.2f ns", touch, probe)
	}
	_ = cost.DefaultParams()
}
