package engine

import (
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/optree"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

// expandFor macro-expands a plan for the executor's query.
func expandFor(t *testing.T, e *Executor, est *plan.Estimator, n *plan.Node) *optree.Op {
	t.Helper()
	op, err := optree.Expand(n, est, optree.DefaultExpandOptions())
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestExecuteOpMatchesExecute: the central equivalence — running the
// macro-expanded operator tree yields exactly the join-tree result.
func TestExecuteOpMatchesExecute(t *testing.T) {
	e, est := rig(t, 300, 200, 150)
	shapes := []func() *plan.Node{
		func() *plan.Node {
			return join(t, est, join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.SortMerge),
				leaf(t, est, "R3"), plan.HashJoin)
		},
		func() *plan.Node {
			return join(t, est, join(t, est, leaf(t, est, "R2"), leaf(t, est, "R1"), plan.HashJoin),
				leaf(t, est, "R3"), plan.NestedLoops)
		},
		func() *plan.Node { // bushy with NL over a join subtree
			inner := join(t, est, leaf(t, est, "R2"), leaf(t, est, "R3"), plan.SortMerge)
			return join(t, est, leaf(t, est, "R1"), inner, plan.HashJoin)
		},
		func() *plan.Node {
			return join(t, est, join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.NestedLoops),
				leaf(t, est, "R3"), plan.SortMerge)
		},
	}
	for i, mk := range shapes {
		p := mk()
		want, err := e.Execute(p)
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		op := expandFor(t, e, est, p)
		got, err := e.ExecuteOp(op)
		if err != nil {
			t.Fatalf("shape %d (%s): %v", i, op, err)
		}
		if got.Len() != want.Len() || got.Fingerprint() != want.Fingerprint() {
			t.Errorf("shape %d (%s): op-tree result differs: %d vs %d rows",
				i, op, got.Len(), want.Len())
		}
	}
}

// TestExecuteOpSortElision: a pre-sorted relation skips its sort in the
// operator tree yet the merge result is still correct.
func TestExecuteOpSortElision(t *testing.T) {
	cat := catalog.New()
	cat.MustAddRelation(catalog.Relation{
		Name:    "A",
		Columns: []catalog.Column{{Name: "k", NDV: 40, Width: 8}},
		Card:    200, Pages: 2, SortedBy: "k",
	})
	cat.MustAddRelation(catalog.Relation{
		Name:    "B",
		Columns: []catalog.Column{{Name: "k", NDV: 40, Width: 8}},
		Card:    150, Pages: 2,
	})
	q := &query.Query{
		Relations: []string{"A", "B"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "A", Column: "k"},
			Right: query.ColumnRef{Relation: "B", Column: "k"},
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 5)
	e := &Executor{DB: db, Q: q, Parallel: 1}
	est := plan.NewEstimator(cat, q)
	a, _ := est.Leaf("A", plan.SeqScan, nil)
	b, _ := est.Leaf("B", plan.SeqScan, nil)
	sm, _ := est.Join(a, b, plan.SortMerge)
	op := expandFor(t, e, est, sm)
	if got, want := op.String(), "merge(scan(A), sort(scan(B)))"; got != want {
		t.Fatalf("expansion = %s, want %s", got, want)
	}
	got, err := e.ExecuteOp(op)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != ref.Fingerprint() {
		t.Error("elided-sort merge differs from reference")
	}
}

// TestExecuteOpCreateIndex: the create-index inflection path joins
// correctly.
func TestExecuteOpCreateIndex(t *testing.T) {
	e, est := rig(t, 2000, 1500)
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.NestedLoops)
	op := expandFor(t, e, est, p)
	if op.Inputs[1].Kind != optree.CreateIndex {
		t.Fatalf("expected create-index inner, got %v", op.Inputs[1].Kind)
	}
	got, err := e.ExecuteOp(op)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("create-index NL differs from join-tree execution")
	}
}

// TestExecuteOpWithSelectionsAndProjection: leaf filters and the final
// projection apply identically.
func TestExecuteOpWithSelectionsAndProjection(t *testing.T) {
	e, est := rig(t, 400, 300)
	e.Q.Selections = []query.Selection{{
		Column: query.ColumnRef{Relation: "R1", Column: "fk"}, Value: 5,
	}}
	e.Q.Projection = []query.ColumnRef{{Relation: "R2", Column: "id"}}
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
	op := expandFor(t, e, est, p)
	got, err := e.ExecuteOp(op)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != ref.Fingerprint() {
		t.Error("selection+projection differ from reference")
	}
	if len(got.Schema) != 1 {
		t.Errorf("projected schema = %v", got.Schema)
	}
}

func TestExecuteOpErrors(t *testing.T) {
	e, _ := rig(t, 50, 50)
	if _, err := e.ExecuteOp(nil); err == nil {
		t.Error("nil tree should error")
	}
	bad := &optree.Op{Kind: optree.Merge} // arity violation
	if _, err := e.ExecuteOp(bad); err == nil {
		t.Error("invalid arity should error")
	}
	// Sort with a key outside its schema.
	scan := &optree.Op{Kind: optree.Scan, Relation: "R1",
		Source: &plan.Node{Relation: "R1"}}
	srt := &optree.Op{Kind: optree.Sort, Inputs: []*optree.Op{scan},
		SortKey: query.ColumnRef{Relation: "ZZ", Column: "x"}}
	if _, err := e.ExecuteOp(srt); err == nil {
		t.Error("bad sort key should error")
	}
	// Unknown relation.
	ghost := &optree.Op{Kind: optree.Scan, Relation: "ghost"}
	if _, err := e.ExecuteOp(ghost); err == nil {
		t.Error("unknown relation should error")
	}
}

// TestExecuteOpCrossProduct: predicate-less operator joins degrade to cross
// products in all three join operators.
func TestExecuteOpCrossProduct(t *testing.T) {
	cat := catalog.New()
	cat.MustAddRelation(catalog.Relation{
		Name: "A", Columns: []catalog.Column{{Name: "x", NDV: 3}}, Card: 6, Pages: 1,
	})
	cat.MustAddRelation(catalog.Relation{
		Name: "B", Columns: []catalog.Column{{Name: "y", NDV: 3}}, Card: 4, Pages: 1,
	})
	q := &query.Query{Relations: []string{"A", "B"}}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 2)
	e := &Executor{DB: db, Q: q, Parallel: 1}
	est := plan.NewEstimator(cat, q)
	a, _ := est.Leaf("A", plan.SeqScan, nil)
	b, _ := est.Leaf("B", plan.SeqScan, nil)
	nl, _ := est.Join(a, b, plan.NestedLoops)
	op := expandFor(t, e, est, nl)
	got, err := e.ExecuteOp(op)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 24 {
		t.Errorf("cross product = %d rows, want 24", got.Len())
	}
}
