package engine

import (
	"fmt"
	"testing"

	"paropt/internal/engine/exchange"
	"paropt/internal/plan"
)

// BenchmarkExchangeJoin measures the same cloned hash join executed by the
// in-process engine and over a loopback worker cluster (real TCP exchange),
// at small and large input sizes — the EXPERIMENTS §DX1 numbers. The
// distributed rows pay serialization and a round trip per batch, so locality
// wins outright on small inputs; on large inputs the repartitioned stream
// amortizes the fixed costs and the gap narrows toward the wire bandwidth.
func BenchmarkExchangeJoin(b *testing.B) {
	sizes := []struct {
		name        string
		left, right int64
	}{
		{"small-2kx1k", 2_000, 1_000},
		{"large-200kx100k", 200_000, 100_000},
	}
	for _, sz := range sizes {
		e, est := rig(b, sz.left, sz.right)
		p := join(b, est, leaf(b, est, "R1"), leaf(b, est, "R2"), plan.HashJoin)
		e.Parallel = 4

		b.Run(fmt.Sprintf("%s/single-process", sz.name), func(b *testing.B) {
			e.Transport = nil
			for i := 0; i < b.N; i++ {
				if _, err := e.Execute(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, workers := range []int{2, 4} {
			b.Run(fmt.Sprintf("%s/loopback-%dw", sz.name, workers), func(b *testing.B) {
				lb, err := exchange.StartLoopback(workers, FragmentJoin)
				if err != nil {
					b.Fatal(err)
				}
				defer lb.Close()
				e.Transport = lb.Cluster(exchange.ClusterConfig{})
				defer func() { e.Transport = nil }()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := e.Execute(p); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
