package engine

import (
	"context"
	"fmt"

	"paropt/internal/engine/exchange"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

// parallelJoin is the cloned (intra-operator parallel) join of §4.1: both
// inputs are hash-redistributed on the join key across Parallel partitions
// (the exchange / data-redistribution annotation of §4.2), each partition
// pair is joined with the serial algorithm, and the partition outputs are
// merged. Equal keys land in equal partitions, so the union of the partition
// joins is exactly the serial join. The redistribution runs on
// e.Transport — in-process channels by default, worker processes over TCP
// with an exchange.Cluster. The input iterators are pumped into the
// transport's channels by per-side goroutines; the returned operator pulls
// merged result batches back out.
//
// lspec/rspec, when set, mark inputs the transport sources at the workers
// (leaf-scan shipping): that side's operator is nil and parts overrides the
// cloning degree with the relation's owning-worker count, so shard i of the
// placement is exactly stream partition i.
func (e *Executor) parallelJoin(n *plan.Node, lop, rop Operator, lkeys, rkeys []int, lspec, rspec *exchange.ScanSpec, parts int) Operator {
	if parts <= 0 {
		parts = e.Parallel
	}
	frag := exchange.Fragment{
		Method:    e.wireMethod(n.Method),
		LKeys:     lkeys,
		RKeys:     rkeys,
		Parts:     parts,
		BatchSize: e.batchSize(),
		LeftScan:  lspec,
		RightScan: rspec,
	}
	tr := e.Transport
	if tr == nil {
		// Local fragments inherit the executor's context so a cancelled run
		// unwinds inside the partition joins too, not only at the stream
		// edges.
		tr = &exchange.Local{Fn: func(f exchange.Fragment, l, r <-chan exchange.Batch, emit func(exchange.Batch) error) error {
			fe := &Executor{BatchSize: f.BatchSize, Ctx: e.Ctx}
			return fe.fragmentJoin(f, l, r, emit)
		}}
	}
	j, err := tr.Join(frag, e.pump(lop), e.pump(rop))
	if err != nil {
		e.fail(err)
		if j != nil {
			return &exchangeOp{e: e, n: n, j: j}
		}
		return &errOp{err: err}
	}
	return &exchangeOp{e: e, n: n, j: j}
}

// pump drives an input operator on its own goroutine, feeding its batches
// into a channel for the transport — the iterator-to-stream edge of the
// exchange. A nil operator (a shipped scan) yields a nil channel; errors
// land in the executor's async slot. Transports consume their inputs to
// exhaustion even on failure, so the pump never leaks.
func (e *Executor) pump(op Operator) <-chan Batch {
	if op == nil {
		return nil
	}
	ch := make(chan Batch, 4)
	go func() {
		defer close(ch)
		defer op.Close()
		ctx := e.ctx()
		for {
			b, err := op.Next(ctx)
			if err != nil {
				e.fail(err)
				return
			}
			if b == nil {
				return
			}
			ch <- b
		}
	}()
	return ch
}

// errOp is an operator that failed at build time: Next reports the error.
type errOp struct{ err error }

func (o *errOp) Next(context.Context) (Batch, error) { return nil, o.err }
func (o *errOp) Close()                              {}

// exchangeOp is the stream-to-iterator edge over an in-flight distributed
// join: Next pulls merged result batches from the transport, surfacing the
// join's first error at exhaustion and folding worker-side measurements
// into the exec stats.
type exchangeOp struct {
	e    *Executor
	n    *plan.Node
	j    exchange.Join
	done bool
}

func (o *exchangeOp) Next(ctx context.Context) (Batch, error) {
	if o.done {
		return nil, nil
	}
	if err := ctxErr(ctx); err != nil {
		o.Close()
		return nil, err
	}
	b, ok := <-o.j.Out()
	if !ok {
		o.done = true
		if err := o.j.Err(); err != nil {
			return nil, err
		}
		// Cluster joins report the workers' own measurements once drained;
		// fold them into the exec stats so EXPLAIN ANALYZE and the trace
		// merge can see across the wire. Local joins don't implement it.
		if o.e.Stats != nil {
			if sr, ok := o.j.(exchange.StatsReporter); ok {
				o.e.Stats.addRemote(o.n, o.e.nodeLabel(o.n), sr.FragmentStats())
			}
		}
		return nil, nil
	}
	return b, nil
}

// Close drains the remaining result batches on a helper goroutine so
// partition workers blocked on sends always unwind, even when the consumer
// abandoned the stream mid-join.
func (o *exchangeOp) Close() {
	if o.done {
		return
	}
	o.done = true
	out := o.j.Out()
	go func() {
		for range out {
		}
	}()
}

// FragmentJoin is the engine's JoinFunc for the exchange layer: it runs the
// serial join named by the fragment over one partition pair. Workers
// (cmd/paroptw) and the in-process Local transport both execute fragments
// through it, so single-process and distributed runs share one join
// implementation.
func FragmentJoin(frag exchange.Fragment, left, right <-chan exchange.Batch, emit func(exchange.Batch) error) error {
	e := &Executor{BatchSize: frag.BatchSize}
	return e.fragmentJoin(frag, left, right, emit)
}

// fragmentJoin runs one partition pair through the serial join on this
// executor: the input channels are wrapped as iterators, joined by the
// fragment's method, and the output pulled into emit. When e.Ctx is set
// (the Local transport's in-process fragments) a cancelled context unwinds
// the join and surfaces the cause. The inputs are always consumed to
// exhaustion — on error or cancellation by draining — so upstream producers
// never block.
func (e *Executor) fragmentJoin(frag exchange.Fragment, left, right <-chan exchange.Batch, emit func(exchange.Batch) error) error {
	op := e.joinFor(frag.Method, &chanOp{ch: left}, &chanOp{ch: right}, frag.LKeys, frag.RKeys)
	defer op.Close()
	ctx := e.ctx()
	for {
		b, err := op.Next(ctx)
		if err != nil {
			e.fail(err)
			break
		}
		if b == nil {
			break
		}
		if err := emit(b); err != nil {
			return err
		}
	}
	return e.asyncErr()
}

// chanOp adapts a transport input channel to the iterator interface —
// the stream-to-iterator edge on the consuming side of an exchange. Close
// drains the channel so the sender (wire demultiplexer or local partition
// goroutine) never blocks after an abandoned join.
type chanOp struct {
	ch <-chan Batch
}

func (o *chanOp) Next(ctx context.Context) (Batch, error) {
	if o.ch == nil {
		return nil, nil
	}
	select {
	case b, ok := <-o.ch:
		if !ok {
			return nil, nil
		}
		return b, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

func (o *chanOp) Close() {
	if o.ch == nil {
		return
	}
	for range o.ch {
	}
}

// wireMethod names a join method for fragment dispatch. Hash joins dispatch
// as the symmetric streaming variant when the executor asks for it — the
// name selects the worker-side join construction, so distributed symmetric
// joins need no new frame types.
func (e *Executor) wireMethod(m plan.JoinMethod) string {
	switch m {
	case plan.HashJoin:
		if e.Symmetric {
			return "sym"
		}
		return "hash"
	case plan.SortMerge:
		return "merge"
	default:
		return "nl"
	}
}

// PartitionImbalance hash-partitions a table's column into parts buckets
// and returns max/mean bucket size — 1.0 for perfectly balanced
// partitioning, growing with key skew. It quantifies the paper's §5.2.1
// caveat that the uniformity assumption "loses some ability to model hot
// spots": a cloned join's slowest clone is the hot partition, so real
// speedup degrades by roughly this factor while the cost model predicts an
// even split.
func PartitionImbalance(t *storage.Table, column string, parts int) (float64, error) {
	pos := t.ColIndex(column)
	if pos < 0 {
		return 0, fmt.Errorf("engine: table %s has no column %s", t.Rel.Name, column)
	}
	if parts < 1 {
		parts = 1
	}
	sizes := make([]int, parts)
	for _, row := range t.Rows {
		sizes[exchange.Partition(row[pos], parts)]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if t.NumRows() == 0 {
		return 1, nil
	}
	mean := float64(t.NumRows()) / float64(parts)
	return float64(max) / mean, nil
}

// ExecuteParallelDegrees is a convenience for experiments: run the same
// plan at several degrees and return the results, which callers typically
// fingerprint-compare and time.
func (e *Executor) ExecuteParallelDegrees(n *plan.Node, degrees []int) ([]*Resultset, error) {
	saved := e.Parallel
	defer func() { e.Parallel = saved }()
	out := make([]*Resultset, 0, len(degrees))
	for _, d := range degrees {
		e.Parallel = d
		res, err := e.Execute(n)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ReferenceJoin computes the query result by brute-force evaluation over
// the database — the oracle the engine is tested against. It joins the
// query's relations in declaration order with nested loops over all
// predicates and applies selections and projection.
func ReferenceJoin(e *Executor) (*Resultset, error) {
	rels := e.Q.Relations
	var schema Schema
	rows := []storage.Row{{}}
	for _, rel := range rels {
		tab, ok := e.DB.Table(rel)
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %s", rel)
		}
		var relSchema Schema
		for _, c := range tab.Rel.Columns {
			relSchema = append(relSchema, query.ColumnRef{Relation: rel, Column: c.Name})
		}
		sels := e.Q.SelectionsOn(rel)
		newSchema := append(append(Schema(nil), schema...), relSchema...)
		var next []storage.Row
		for _, acc := range rows {
			for _, row := range tab.Rows {
				keepSel := true
				for _, s := range sels {
					if row[tab.ColIndex(s.Column.Column)] != s.Value {
						keepSel = false
						break
					}
				}
				if !keepSel {
					continue
				}
				joined := make(storage.Row, 0, len(acc)+len(row))
				joined = append(joined, acc...)
				joined = append(joined, row...)
				if satisfiesAll(e, newSchema, joined) {
					next = append(next, joined)
				}
			}
		}
		rows = next
		schema = newSchema
	}
	res := &Resultset{Schema: schema, Rows: rows}
	if len(e.Q.Projection) > 0 {
		return res.Project(e.Q.Projection)
	}
	return res, nil
}

// satisfiesAll checks every join predicate whose columns are both present.
func satisfiesAll(e *Executor, schema Schema, row storage.Row) bool {
	for _, p := range e.Q.Joins {
		li := schema.IndexOf(p.Left)
		ri := schema.IndexOf(p.Right)
		if li < 0 || ri < 0 {
			continue
		}
		if row[li] != row[ri] {
			return false
		}
	}
	return true
}
