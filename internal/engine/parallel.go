package engine

import (
	"fmt"
	"sync"

	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

// parallelJoin is the cloned (intra-operator parallel) join of §4.1: both
// inputs are hash-redistributed on the join key across Parallel partitions
// (the exchange / data-redistribution annotation of §4.2), one worker
// goroutine joins each partition pair with the serial algorithm, and the
// partition outputs are merged. Equal keys land in equal partitions, so the
// union of the partition joins is exactly the serial join.
func (e *Executor) parallelJoin(n *plan.Node, ls, rs Stream, lkeys, rkeys []int) Stream {
	p := e.Parallel
	lparts := e.exchange(ls, lkeys[0], p)
	rparts := e.exchange(rs, rkeys[0], p)
	out := make(chan Batch, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		go func(i int) {
			defer wg.Done()
			worker := e.serialJoin(n.Method, lparts[i], rparts[i], lkeys, rkeys)
			for b := range worker {
				out <- b
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// exchange hash-partitions a stream into p streams on the key column.
func (e *Executor) exchange(in Stream, key int, p int) []Stream {
	chans := make([]chan Batch, p)
	streams := make([]Stream, p)
	for i := range chans {
		chans[i] = make(chan Batch, 4)
		streams[i] = chans[i]
	}
	bs := e.batchSize()
	go func() {
		defer func() {
			for i := range chans {
				close(chans[i])
			}
		}()
		batches := make([]Batch, p)
		for i := range batches {
			batches[i] = make(Batch, 0, bs)
		}
		for b := range in {
			for _, row := range b {
				part := int(hash64(row[key]) % uint64(p))
				batches[part] = append(batches[part], row)
				if len(batches[part]) == bs {
					chans[part] <- batches[part]
					batches[part] = make(Batch, 0, bs)
				}
			}
		}
		for i, batch := range batches {
			if len(batch) > 0 {
				chans[i] <- batch
			}
		}
	}()
	return streams
}

// PartitionImbalance hash-partitions a table's column into parts buckets
// and returns max/mean bucket size — 1.0 for perfectly balanced
// partitioning, growing with key skew. It quantifies the paper's §5.2.1
// caveat that the uniformity assumption "loses some ability to model hot
// spots": a cloned join's slowest clone is the hot partition, so real
// speedup degrades by roughly this factor while the cost model predicts an
// even split.
func PartitionImbalance(t *storage.Table, column string, parts int) (float64, error) {
	pos := t.ColIndex(column)
	if pos < 0 {
		return 0, fmt.Errorf("engine: table %s has no column %s", t.Rel.Name, column)
	}
	if parts < 1 {
		parts = 1
	}
	sizes := make([]int, parts)
	for _, row := range t.Rows {
		sizes[int(hash64(row[pos])%uint64(parts))]++
	}
	max := 0
	for _, s := range sizes {
		if s > max {
			max = s
		}
	}
	if t.NumRows() == 0 {
		return 1, nil
	}
	mean := float64(t.NumRows()) / float64(parts)
	return float64(max) / mean, nil
}

// hash64 mixes a key for partitioning (splitmix64 finalizer).
func hash64(v int64) uint64 {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ExecuteParallelDegrees is a convenience for experiments: run the same
// plan at several degrees and return the results, which callers typically
// fingerprint-compare and time.
func (e *Executor) ExecuteParallelDegrees(n *plan.Node, degrees []int) ([]*Resultset, error) {
	saved := e.Parallel
	defer func() { e.Parallel = saved }()
	out := make([]*Resultset, 0, len(degrees))
	for _, d := range degrees {
		e.Parallel = d
		res, err := e.Execute(n)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// ReferenceJoin computes the query result by brute-force evaluation over
// the database — the oracle the engine is tested against. It joins the
// query's relations in declaration order with nested loops over all
// predicates and applies selections and projection.
func ReferenceJoin(e *Executor) (*Resultset, error) {
	rels := e.Q.Relations
	var schema Schema
	rows := []storage.Row{{}}
	for _, rel := range rels {
		tab, ok := e.DB.Table(rel)
		if !ok {
			return nil, fmt.Errorf("engine: no data for relation %s", rel)
		}
		var relSchema Schema
		for _, c := range tab.Rel.Columns {
			relSchema = append(relSchema, query.ColumnRef{Relation: rel, Column: c.Name})
		}
		sels := e.Q.SelectionsOn(rel)
		newSchema := append(append(Schema(nil), schema...), relSchema...)
		var next []storage.Row
		for _, acc := range rows {
			for _, row := range tab.Rows {
				keepSel := true
				for _, s := range sels {
					if row[tab.ColIndex(s.Column.Column)] != s.Value {
						keepSel = false
						break
					}
				}
				if !keepSel {
					continue
				}
				joined := make(storage.Row, 0, len(acc)+len(row))
				joined = append(joined, acc...)
				joined = append(joined, row...)
				if satisfiesAll(e, newSchema, joined) {
					next = append(next, joined)
				}
			}
		}
		rows = next
		schema = newSchema
	}
	res := &Resultset{Schema: schema, Rows: rows}
	if len(e.Q.Projection) > 0 {
		return res.Project(e.Q.Projection)
	}
	return res, nil
}

// satisfiesAll checks every join predicate whose columns are both present.
func satisfiesAll(e *Executor, schema Schema, row storage.Row) bool {
	for _, p := range e.Q.Joins {
		li := schema.IndexOf(p.Left)
		ri := schema.IndexOf(p.Right)
		if li < 0 || ri < 0 {
			continue
		}
		if row[li] != row[ri] {
			return false
		}
	}
	return true
}
