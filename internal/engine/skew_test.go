package engine

import (
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

// skewTable generates a 1-column table with the given Zipf skew.
func skewTable(t *testing.T, skew float64, card int64) *storage.Table {
	t.Helper()
	cat := catalog.New()
	rel := cat.MustAddRelation(catalog.Relation{
		Name:    "S",
		Columns: []catalog.Column{{Name: "k", NDV: card / 4, Width: 8, Skew: skew}},
		Card:    card,
		Pages:   card / 100,
	})
	return storage.Generate(rel, 5)
}

func TestPartitionImbalanceUniform(t *testing.T) {
	tab := skewTable(t, 0, 40_000)
	imb, err := PartitionImbalance(tab, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	if imb < 1 || imb > 1.2 {
		t.Errorf("uniform imbalance = %.3f, want ≈ 1", imb)
	}
}

func TestPartitionImbalanceSkewed(t *testing.T) {
	uniform := skewTable(t, 0, 40_000)
	skewed := skewTable(t, 1.0, 40_000)
	iu, err := PartitionImbalance(uniform, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	is, err := PartitionImbalance(skewed, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	if is < iu*1.5 {
		t.Errorf("skewed imbalance %.3f should clearly exceed uniform %.3f", is, iu)
	}
	// A Zipf hot key can dominate a partition: with s=2 the mode takes a
	// large fraction of all rows.
	if is < 2 {
		t.Errorf("zipf(2) imbalance = %.3f, want ≥ 2", is)
	}
}

// keyTable builds a one-column table directly from the given key values.
func keyTable(keys []int64) *storage.Table {
	rel := &catalog.Relation{
		Name:    "K",
		Columns: []catalog.Column{{Name: "k", NDV: int64(len(keys)), Width: 8}},
		Card:    int64(len(keys)),
	}
	rows := make([]storage.Row, len(keys))
	for i, k := range keys {
		rows[i] = storage.Row{k}
	}
	return &storage.Table{Rel: rel, Cols: map[string]int{"k": 0}, Rows: rows}
}

// TestPartitionImbalanceSequentialKeys: sequential keys (the classic
// auto-increment ID) must stay balanced at every partition count. Mixing
// the partition count into the hash *before* finalizing — or reducing with
// `%` on a weak hash — aliases consecutive keys into few buckets for
// non-power-of-two counts.
func TestPartitionImbalanceSequentialKeys(t *testing.T) {
	keys := make([]int64, 60_000)
	for i := range keys {
		keys[i] = int64(i)
	}
	tab := keyTable(keys)
	for _, parts := range []int{2, 3, 5, 7, 8, 12, 16} {
		imb, err := PartitionImbalance(tab, "k", parts)
		if err != nil {
			t.Fatal(err)
		}
		if imb > 1.1 {
			t.Errorf("parts=%d: sequential-key imbalance = %.3f, want ≤ 1.1", parts, imb)
		}
	}
}

// TestPartitionImbalanceLowCardinalityKeys: with far more distinct keys than
// partitions but few keys overall (e.g. 64 distinct status codes across 8
// partitions), the imbalance is bounded by balls-in-bins variance, not by
// systematic aliasing.
func TestPartitionImbalanceLowCardinalityKeys(t *testing.T) {
	const distinct, repeat = 64, 1_000
	keys := make([]int64, 0, distinct*repeat)
	for k := 0; k < distinct; k++ {
		for r := 0; r < repeat; r++ {
			keys = append(keys, int64(k)*10) // strided, low-entropy values
		}
	}
	tab := keyTable(keys)
	for _, parts := range []int{2, 4, 8} {
		imb, err := PartitionImbalance(tab, "k", parts)
		if err != nil {
			t.Fatal(err)
		}
		// 64 keys over ≤8 buckets: expected max/mean for a random spread
		// stays well under 2; systematic aliasing would push it toward
		// parts (all keys in one bucket).
		if imb >= 2 {
			t.Errorf("parts=%d: low-cardinality imbalance = %.3f, want < 2", parts, imb)
		}
	}
}

func TestPartitionImbalanceErrors(t *testing.T) {
	tab := skewTable(t, 0, 100)
	if _, err := PartitionImbalance(tab, "zz", 4); err == nil {
		t.Error("unknown column should error")
	}
	if got, err := PartitionImbalance(tab, "k", 0); err != nil || got != 1 {
		t.Errorf("parts clamp: %v %v", got, err)
	}
}

// TestSkewedJoinStillCorrect: parallel joins over skewed keys remain
// semantically exact — skew costs time, never correctness.
func TestSkewedJoinStillCorrect(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"A", "B"} {
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "k", NDV: 50, Width: 8, Skew: 1.2},
			},
			Card:  2_000,
			Pages: 20,
		})
	}
	q := &query.Query{
		Relations: []string{"A", "B"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "A", Column: "k"},
			Right: query.ColumnRef{Relation: "B", Column: "k"},
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 8)
	e := &Executor{DB: db, Q: q, Parallel: 1}
	est := plan.NewEstimator(cat, q)
	a, _ := est.Leaf("A", plan.SeqScan, nil)
	b, _ := est.Leaf("B", plan.SeqScan, nil)
	hj, _ := est.Join(a, b, plan.HashJoin)
	serial, err := e.Execute(hj)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 6
	par, err := e.Execute(hj)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != par.Fingerprint() {
		t.Error("skewed parallel join differs from serial")
	}
	ref, err := ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != ref.Fingerprint() {
		t.Error("skewed join differs from reference")
	}
	if serial.Len() == 0 {
		t.Error("skewed join produced nothing; fixture broken")
	}
}

// TestParallelScanCorrect: striped parallel heap scans deliver exactly the
// serial row multiset, and sorted relations keep their serial (ordered)
// scan path.
func TestParallelScanCorrect(t *testing.T) {
	e, est := rigScan(t)
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
	e.Parallel = 1
	serial, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 5
	par, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != par.Fingerprint() {
		t.Error("parallel scan changed the result")
	}
}

func rigScan(t *testing.T) (*Executor, *plan.Estimator) {
	t.Helper()
	e, est := rig(t, 3000, 2000)
	e.Q.Selections = []query.Selection{{
		Column: query.ColumnRef{Relation: "R1", Column: "fk"}, Value: 9,
	}}
	return e, est
}
