package engine

import (
	"testing"

	"paropt/internal/catalog"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
)

// skewTable generates a 1-column table with the given Zipf skew.
func skewTable(t *testing.T, skew float64, card int64) *storage.Table {
	t.Helper()
	cat := catalog.New()
	rel := cat.MustAddRelation(catalog.Relation{
		Name:    "S",
		Columns: []catalog.Column{{Name: "k", NDV: card / 4, Width: 8, Skew: skew}},
		Card:    card,
		Pages:   card / 100,
	})
	return storage.Generate(rel, 5)
}

func TestPartitionImbalanceUniform(t *testing.T) {
	tab := skewTable(t, 0, 40_000)
	imb, err := PartitionImbalance(tab, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	if imb < 1 || imb > 1.2 {
		t.Errorf("uniform imbalance = %.3f, want ≈ 1", imb)
	}
}

func TestPartitionImbalanceSkewed(t *testing.T) {
	uniform := skewTable(t, 0, 40_000)
	skewed := skewTable(t, 1.0, 40_000)
	iu, err := PartitionImbalance(uniform, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	is, err := PartitionImbalance(skewed, "k", 8)
	if err != nil {
		t.Fatal(err)
	}
	if is < iu*1.5 {
		t.Errorf("skewed imbalance %.3f should clearly exceed uniform %.3f", is, iu)
	}
	// A Zipf hot key can dominate a partition: with s=2 the mode takes a
	// large fraction of all rows.
	if is < 2 {
		t.Errorf("zipf(2) imbalance = %.3f, want ≥ 2", is)
	}
}

func TestPartitionImbalanceErrors(t *testing.T) {
	tab := skewTable(t, 0, 100)
	if _, err := PartitionImbalance(tab, "zz", 4); err == nil {
		t.Error("unknown column should error")
	}
	if got, err := PartitionImbalance(tab, "k", 0); err != nil || got != 1 {
		t.Errorf("parts clamp: %v %v", got, err)
	}
}

// TestSkewedJoinStillCorrect: parallel joins over skewed keys remain
// semantically exact — skew costs time, never correctness.
func TestSkewedJoinStillCorrect(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"A", "B"} {
		cat.MustAddRelation(catalog.Relation{
			Name: name,
			Columns: []catalog.Column{
				{Name: "k", NDV: 50, Width: 8, Skew: 1.2},
			},
			Card:  2_000,
			Pages: 20,
		})
	}
	q := &query.Query{
		Relations: []string{"A", "B"},
		Joins: []query.JoinPredicate{{
			Left:  query.ColumnRef{Relation: "A", Column: "k"},
			Right: query.ColumnRef{Relation: "B", Column: "k"},
		}},
	}
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 8)
	e := &Executor{DB: db, Q: q, Parallel: 1}
	est := plan.NewEstimator(cat, q)
	a, _ := est.Leaf("A", plan.SeqScan, nil)
	b, _ := est.Leaf("B", plan.SeqScan, nil)
	hj, _ := est.Join(a, b, plan.HashJoin)
	serial, err := e.Execute(hj)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 6
	par, err := e.Execute(hj)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != par.Fingerprint() {
		t.Error("skewed parallel join differs from serial")
	}
	ref, err := ReferenceJoin(e)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != ref.Fingerprint() {
		t.Error("skewed join differs from reference")
	}
	if serial.Len() == 0 {
		t.Error("skewed join produced nothing; fixture broken")
	}
}

// TestParallelScanCorrect: striped parallel heap scans deliver exactly the
// serial row multiset, and sorted relations keep their serial (ordered)
// scan path.
func TestParallelScanCorrect(t *testing.T) {
	e, est := rigScan(t)
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
	e.Parallel = 1
	serial, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Parallel = 5
	par, err := e.Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Fingerprint() != par.Fingerprint() {
		t.Error("parallel scan changed the result")
	}
}

func rigScan(t *testing.T) (*Executor, *plan.Estimator) {
	t.Helper()
	e, est := rig(t, 3000, 2000)
	e.Q.Selections = []query.Selection{{
		Column: query.ColumnRef{Relation: "R1", Column: "fk"}, Value: 9,
	}}
	return e, est
}
