package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"paropt/internal/catalog"
	"paropt/internal/engine/exchange"
	"paropt/internal/plan"
	"paropt/internal/query"
	"paropt/internal/storage"
	"paropt/internal/vec"
)

// skewRig builds a two-relation world whose join columns have only two
// distinct values — the hot-key regime where every probe hits a long chain
// and hash partitioning is maximally imbalanced.
func skewRig(t testing.TB, lcard, rcard int64) (*Executor, *plan.Estimator) {
	t.Helper()
	cat := catalog.New()
	for i, card := range []int64{lcard, rcard} {
		cat.MustAddRelation(catalog.Relation{
			Name: "S" + string(rune('1'+i)),
			Columns: []catalog.Column{
				{Name: "id", NDV: 2, Width: 8},
				{Name: "fk", NDV: 2, Width: 8},
			},
			Card:  card,
			Pages: maxI(card/50, 1),
		})
	}
	q := &query.Query{Name: "skew", Relations: []string{"S1", "S2"}}
	q.Joins = append(q.Joins, query.JoinPredicate{
		Left:  query.ColumnRef{Relation: "S1", Column: "id"},
		Right: query.ColumnRef{Relation: "S2", Column: "fk"},
	})
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 42)
	est := plan.NewEstimator(cat, q)
	return &Executor{DB: db, Q: q, Parallel: 1}, est
}

// TestSymmetricJoinDifferential is the differential property test of the
// vectorized engine: the same plan through the serial blocking join, the
// serial symmetric hash join, the locally-parallel symmetric join, and the
// distributed path (loopback workers over TCP, both wire methods) must all
// produce row-identical Resultset fingerprints — including skewed keys and
// empty inputs.
func TestSymmetricJoinDifferential(t *testing.T) {
	lb, err := exchange.StartLoopback(2, FragmentJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	cases := []struct {
		name     string
		mk       func(t *testing.T) (*Executor, *plan.Estimator)
		plan     func(t *testing.T, est *plan.Estimator) *plan.Node
		wantRows bool
	}{
		{
			name: "balanced",
			mk:   func(t *testing.T) (*Executor, *plan.Estimator) { return rig(t, 3_000, 2_000) },
			plan: func(t *testing.T, est *plan.Estimator) *plan.Node {
				return join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
			},
			wantRows: true,
		},
		{
			name: "chain3",
			mk:   func(t *testing.T) (*Executor, *plan.Estimator) { return rig(t, 600, 500, 400) },
			plan: func(t *testing.T, est *plan.Estimator) *plan.Node {
				j1 := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
				return join(t, est, j1, leaf(t, est, "R3"), plan.HashJoin)
			},
			wantRows: true,
		},
		{
			name: "skewed-keys",
			mk:   func(t *testing.T) (*Executor, *plan.Estimator) { return skewRig(t, 400, 300) },
			plan: func(t *testing.T, est *plan.Estimator) *plan.Node {
				return join(t, est, leaf(t, est, "S1"), leaf(t, est, "S2"), plan.HashJoin)
			},
			wantRows: true,
		},
		{
			name: "empty-left",
			mk: func(t *testing.T) (*Executor, *plan.Estimator) {
				e, est := rig(t, 300, 200)
				e.Q.Selections = []query.Selection{{
					Column: query.ColumnRef{Relation: "R1", Column: "fk"},
					Value:  -1, // generated values are non-negative: no row survives
				}}
				return e, est
			},
			plan: func(t *testing.T, est *plan.Estimator) *plan.Node {
				return join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
			},
		},
		{
			name: "empty-both",
			mk: func(t *testing.T) (*Executor, *plan.Estimator) {
				e, est := rig(t, 300, 200)
				e.Q.Selections = []query.Selection{
					{Column: query.ColumnRef{Relation: "R1", Column: "fk"}, Value: -1},
					{Column: query.ColumnRef{Relation: "R2", Column: "id"}, Value: -1},
				}
				return e, est
			},
			plan: func(t *testing.T, est *plan.Estimator) *plan.Node {
				return join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, est := tc.mk(t)
			p := tc.plan(t, est)
			ref, err := ReferenceJoin(e)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantRows && ref.Len() == 0 {
				t.Fatal("fixture produced no rows")
			}
			if !tc.wantRows && ref.Len() != 0 {
				t.Fatalf("empty fixture produced %d rows", ref.Len())
			}
			want := ref.Fingerprint()

			paths := []struct {
				name      string
				symmetric bool
				parallel  int
				transport exchange.Transport
			}{
				{"blocking-serial", false, 1, nil},
				{"symmetric-serial", true, 1, nil},
				{"symmetric-parallel", true, 4, nil},
				{"blocking-distributed", false, 4, lb.Cluster(exchange.ClusterConfig{})},
				{"symmetric-distributed", true, 4, lb.Cluster(exchange.ClusterConfig{})},
			}
			for _, path := range paths {
				e.Symmetric = path.symmetric
				e.Parallel = path.parallel
				e.Transport = path.transport
				got, err := e.Execute(p)
				e.Symmetric, e.Parallel, e.Transport = false, 1, nil
				if err != nil {
					t.Fatalf("%s: %v", path.name, err)
				}
				if got.Len() != ref.Len() || got.Fingerprint() != want {
					t.Errorf("%s: %d rows (fp %x), want %d rows (fp %x)",
						path.name, got.Len(), got.Fingerprint(), ref.Len(), want)
				}
			}
		})
	}
}

// heapNow returns the post-GC live heap.
func heapNow() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// TestSymmetricHeapBound: on balanced streams the symmetric join — which
// buffers BOTH inputs but indexes them with compact chained hash tables —
// must hold less peak heap than the blocking build-probe join's map-based
// build of ONE input. The peak is sampled mid-run (post-GC live heap while
// the operator's structures are reachable); output batches are discarded on
// both sides so only the join state differs.
func TestSymmetricHeapBound(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement on 2×100k rows")
	}
	const n = 100_000
	e, est := rig(t, n, n)
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
	// Warm the tables' columnar caches so neither measurement pays for them.
	for _, rel := range []string{"R1", "R2"} {
		nd := leaf(t, est, rel)
		op, _, err := e.scan(nd)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := drainBuffer(context.Background(), op); err != nil {
			t.Fatal(err)
		}
	}

	peakOf := func(symmetric bool) uint64 {
		e.Symmetric = symmetric
		defer func() { e.Symmetric = false }()
		lop, _, err := e.scan(p.Left)
		if err != nil {
			t.Fatal(err)
		}
		rop, _, err := e.scan(p.Right)
		if err != nil {
			t.Fatal(err)
		}
		lkeys := []int{0} // R1.id
		rkeys := []int{1} // R2.fk
		base := heapNow()
		op := e.joinFor(e.wireMethod(plan.HashJoin), lop, rop, lkeys, rkeys)
		defer op.Close()
		ctx := context.Background()
		var peak uint64
		batches := 0
		for {
			b, err := op.Next(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if batches%16 == 0 {
				if h := heapNow(); h > base && h-base > peak {
					peak = h - base
				}
			}
			batches++
			if b == nil {
				break
			}
		}
		return peak
	}

	blocking := peakOf(false)
	symmetric := peakOf(true)
	t.Logf("peak heap over base: blocking build = %d B, symmetric = %d B (%.1f%%)",
		blocking, symmetric, 100*float64(symmetric)/float64(blocking))
	if symmetric >= blocking {
		t.Errorf("symmetric join peak heap %d B is not below the blocking build's %d B", symmetric, blocking)
	}
}

// TestSymmetricEarlyFree: once the inputs are exhausted the symmetric join
// must have released both sides' buffers and tables on the spot — the
// exhausted side sends no more probes, so the opposite structures are
// unreachable before Close.
func TestSymmetricEarlyFree(t *testing.T) {
	e, est := rig(t, 2_000, 1_500)
	lop, _, err := e.scan(leaf(t, est, "R1"))
	if err != nil {
		t.Fatal(err)
	}
	rop, _, err := e.scan(leaf(t, est, "R2"))
	if err != nil {
		t.Fatal(err)
	}
	op := newSymJoinOp(e, lop, rop, []int{0}, []int{1})
	defer op.Close()
	ctx := context.Background()
	rows := 0
	for {
		b, err := op.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		rows += b.Len()
	}
	if rows == 0 {
		t.Fatal("fixture produced no rows")
	}
	if !op.l.freed || !op.r.freed {
		t.Errorf("sides not freed at exhaustion: left=%v right=%v", op.l.freed, op.r.freed)
	}
	if op.l.buf != nil || op.r.buf != nil {
		t.Error("buffers still referenced after both inputs exhausted")
	}
}

// firehoseOp emits the same batch forever and never checks its context —
// the adversarial child that catches a drain loop relying on the child's
// own cancellation checkpoints.
type firehoseOp struct{ b Batch }

func (o *firehoseOp) Next(context.Context) (Batch, error) { return o.b, nil }
func (o *firehoseOp) Close()                              {}

// TestDrainCancelBetweenBatches: drainBuffer and drainRows must notice a
// dead context between batches even when the child never does.
func TestDrainCancelBetweenBatches(t *testing.T) {
	fire := &firehoseOp{b: vec.FromRows([]storage.Row{{1, 2}})}
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errTestCancel)
	if _, err := drainBuffer(ctx, fire); !errors.Is(err, errTestCancel) {
		t.Errorf("drainBuffer: err = %v, want cause %v", err, errTestCancel)
	}
	if _, err := drainRows(ctx, fire); !errors.Is(err, errTestCancel) {
		t.Errorf("drainRows: err = %v, want cause %v", err, errTestCancel)
	}
}

// TestCrossProductCancelBetweenBatches: a cross product far too large to
// materialize must unwind promptly on cancel instead of draining the
// buffered inner to completion.
func TestCrossProductCancelBetweenBatches(t *testing.T) {
	cat := catalog.New()
	for _, name := range []string{"A", "B"} {
		cat.MustAddRelation(catalog.Relation{
			Name: name, Columns: []catalog.Column{{Name: "x", NDV: 1000}}, Card: 20_000, Pages: 400,
		})
	}
	q := &query.Query{Relations: []string{"A", "B"}} // no predicates: 4×10⁸ output rows
	if err := q.Validate(cat); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(cat, 9)
	ctx, cancel := context.WithCancelCause(context.Background())
	e := &Executor{DB: db, Q: q, Parallel: 1, Ctx: ctx}
	est := plan.NewEstimator(cat, q)
	p := join(t, est, leaf(t, est, "A"), leaf(t, est, "B"), plan.NestedLoops)
	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(p)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel(errTestCancel)
	select {
	case err := <-done:
		if !errors.Is(err, errTestCancel) {
			t.Fatalf("err = %v, want cause %v", err, errTestCancel)
		}
	case <-time.After(5 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("cross product did not unwind within 5s of cancel\n%s", buf[:runtime.Stack(buf, true)])
	}
}
