package engine

import (
	"encoding/binary"
	"fmt"
	"sort"

	"paropt/internal/query"
)

// GroupedRow is one group of a grouped aggregation.
type GroupedRow struct {
	// Key holds the group's key values, in the order requested.
	Key []int64
	// Count is the number of input rows in the group.
	Count int64
	// Sum is the sum of the aggregated column over the group.
	Sum int64
}

// GroupBy aggregates the result by the key columns, computing COUNT(*) and
// SUM(sumOf) per group, returned in ascending key order. It is the
// post-processing the paper's §1 scenario implies ("graphing the results by
// many categories of stocks"): strictly downstream of the SPJ query the
// optimizer handles.
func (r *Resultset) GroupBy(keys []query.ColumnRef, sumOf query.ColumnRef) ([]GroupedRow, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: GroupBy needs at least one key column")
	}
	keyPos := make([]int, len(keys))
	for i, k := range keys {
		pos := r.Schema.IndexOf(k)
		if pos < 0 {
			return nil, fmt.Errorf("engine: group key %v not in schema", k)
		}
		keyPos[i] = pos
	}
	sumPos := r.Schema.IndexOf(sumOf)
	if sumPos < 0 {
		return nil, fmt.Errorf("engine: aggregate column %v not in schema", sumOf)
	}
	type agg struct {
		count, sum int64
	}
	// Group identity is the fixed-width binary encoding of the key values —
	// exact (no formatting, no collisions) and allocation-free on the hot
	// path: the map lookup with string(kb) doesn't copy, and only new groups
	// materialize their key slice.
	groups := map[string]*agg{}
	keyOf := map[string][]int64{}
	kb := make([]byte, 0, 8*len(keyPos))
	for _, row := range r.Rows {
		kb = kb[:0]
		for _, p := range keyPos {
			kb = binary.LittleEndian.AppendUint64(kb, uint64(row[p]))
		}
		g, ok := groups[string(kb)]
		if !ok {
			kv := make([]int64, len(keyPos))
			for i, p := range keyPos {
				kv[i] = row[p]
			}
			g = &agg{}
			groups[string(kb)] = g
			keyOf[string(kb)] = kv
		}
		g.count++
		g.sum += row[sumPos]
	}
	out := make([]GroupedRow, 0, len(groups))
	for id, g := range groups {
		out = append(out, GroupedRow{Key: keyOf[id], Count: g.count, Sum: g.sum})
	}
	sort.Slice(out, func(a, b int) bool {
		ka, kb := out[a].Key, out[b].Key
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	})
	return out, nil
}
