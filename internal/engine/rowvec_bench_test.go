package engine

import (
	"context"
	"sync"
	"testing"

	"paropt/internal/plan"
	"paropt/internal/storage"
)

// The pre-refactor engine moved rows one at a time: operators were goroutines
// connected by channels of []storage.Row batches, and the serial hash join
// built a map[int64][]storage.Row before probing row by row, concatenating a
// freshly allocated output row per match. That execution model is preserved
// below — verbatim in structure, minus cancellation plumbing — as the
// baseline for the vectorized engine (EXPERIMENTS §VE1).
// BenchmarkPairJoinRow drives it over a 2M-row pair join;
// BenchmarkPairJoinVec pulls the same plan through the columnar Volcano
// iterators, and scripts/vec_bench_smoke.sh asserts the vectorized engine at
// least matches the row baseline's throughput. Both sides end at the same
// point — counting joined rows — so neither pays a final materialization the
// other skips.

// rowBenchBatch is the old engine's default channel batch size.
const rowBenchBatch = 256

// rowScan batches a table's rows over a channel, as the old scan operator did.
func rowScan(t *storage.Table) <-chan []storage.Row {
	out := make(chan []storage.Row, 4)
	go func() {
		defer close(out)
		for i := 0; i < len(t.Rows); i += rowBenchBatch {
			j := i + rowBenchBatch
			if j > len(t.Rows) {
				j = len(t.Rows)
			}
			out <- t.Rows[i:j]
		}
	}()
	return out
}

// rowHashJoin is the old blocking build-then-probe hash join: map build on
// the right input, per-row probe of the left, one allocation per output row.
func rowHashJoin(ls, rs <-chan []storage.Row, lkey, rkey int) <-chan []storage.Row {
	out := make(chan []storage.Row, 4)
	go func() {
		defer close(out)
		build := make(map[int64][]storage.Row)
		for b := range rs {
			for _, row := range b {
				build[row[rkey]] = append(build[row[rkey]], row)
			}
		}
		batch := make([]storage.Row, 0, rowBenchBatch)
		for b := range ls {
			for _, l := range b {
				for _, r := range build[l[lkey]] {
					row := make(storage.Row, 0, len(l)+len(r))
					row = append(row, l...)
					row = append(row, r...)
					batch = append(batch, row)
					if len(batch) == rowBenchBatch {
						out <- batch
						batch = make([]storage.Row, 0, rowBenchBatch)
					}
				}
			}
		}
		if len(batch) > 0 {
			out <- batch
		}
	}()
	return out
}

// pairBench holds the shared 2M-row fixture so repeated -count runs do not
// regenerate the tables.
var pairBench struct {
	once sync.Once
	e    *Executor
	p    *plan.Node
}

func pairRig(b *testing.B) (*Executor, *plan.Node) {
	pairBench.once.Do(func() {
		e, est := rig(b, 1_000_000, 1_000_000)
		pairBench.e = e
		pairBench.p = join(b, est, leaf(b, est, "R1"), leaf(b, est, "R2"), plan.HashJoin)
		// Pre-warm the columnar caches so neither benchmark pays the
		// one-time transposition inside its timed region.
		for _, rel := range []string{"R1", "R2"} {
			e.DB.Tables[rel].Columns()
		}
	})
	return pairBench.e, pairBench.p
}

// BenchmarkPairJoinRow: the row-at-a-time baseline on the 2M-row pair join
// (R1.id = R2.fk, 1M rows a side).
func BenchmarkPairJoinRow(b *testing.B) {
	e, _ := pairRig(b)
	l, r := e.DB.Tables["R1"], e.DB.Tables["R2"]
	lkey, rkey := l.ColIndex("id"), r.ColIndex("fk")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for batch := range rowHashJoin(rowScan(l), rowScan(r), lkey, rkey) {
			n += len(batch)
		}
		if n == 0 {
			b.Fatal("row join produced no rows")
		}
	}
}

// BenchmarkPairJoinVec: the same join pulled through the vectorized
// iterators (blocking columnar build-probe, serial).
func BenchmarkPairJoinVec(b *testing.B) {
	e, p := pairRig(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, _, err := e.run(p)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			batch, err := op.Next(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
			n += batch.Len()
		}
		op.Close()
		if n == 0 {
			b.Fatal("vec join produced no rows")
		}
	}
}

// BenchmarkPairJoinSym: the symmetric (pipelining) hash join on the same
// pair, for the §VE1 memory/throughput comparison.
func BenchmarkPairJoinSym(b *testing.B) {
	e, p := pairRig(b)
	ctx := context.Background()
	e.Symmetric = true
	defer func() { e.Symmetric = false }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, _, err := e.run(p)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			batch, err := op.Next(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if batch == nil {
				break
			}
			n += batch.Len()
		}
		op.Close()
		if n == 0 {
			b.Fatal("sym join produced no rows")
		}
	}
}
