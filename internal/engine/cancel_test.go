package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"paropt/internal/plan"
)

// errTestCancel is the typed cause the tests install, mirroring the
// service's QueryCancelledError.
var errTestCancel = errors.New("test: query cancelled")

// chainPlan builds an R1⋈R2⋈R3 tree over the given methods.
func chainPlan(t *testing.T, est *plan.Estimator, m plan.JoinMethod) *plan.Node {
	t.Helper()
	j1 := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), m)
	return join(t, est, j1, leaf(t, est, "R3"), m)
}

// TestCancelPreCancelled: an already-dead context must surface its cause
// without executing anything, for every join method and both the serial and
// parallel paths.
func TestCancelPreCancelled(t *testing.T) {
	for _, par := range []int{1, 4} {
		for _, m := range plan.AllJoinMethods {
			e, est := rig(t, 2000, 1500, 1000)
			e.Parallel = par
			ctx, cancel := context.WithCancelCause(context.Background())
			cancel(errTestCancel)
			e.Ctx = ctx
			_, err := e.Execute(chainPlan(t, est, m))
			if !errors.Is(err, errTestCancel) {
				t.Errorf("par=%d method=%v: err = %v, want cause %v", par, m, err, errTestCancel)
			}
		}
	}
}

// TestCancelMidExecution cancels a running multi-join and requires the
// executor to return the installed cause promptly. The plan is big enough
// that execution cannot finish before the cancel lands.
func TestCancelMidExecution(t *testing.T) {
	for _, par := range []int{1, 4} {
		e, est := rig(t, 60000, 60000, 40000)
		e.Parallel = par
		ctx, cancel := context.WithCancelCause(context.Background())
		e.Ctx = ctx
		p := chainPlan(t, est, plan.HashJoin)
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := e.Execute(p)
			done <- err
		}()
		time.Sleep(2 * time.Millisecond)
		cancel(errTestCancel)
		select {
		case err := <-done:
			// A very fast machine may finish the join inside the 2ms window;
			// only a non-nil error must be the cancel cause.
			if err != nil && !errors.Is(err, errTestCancel) {
				t.Fatalf("par=%d: err = %v, want cause %v", par, err, errTestCancel)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("par=%d: execution did not return within 5s of cancel (started %s ago)", par, time.Since(start))
		}
	}
}

// TestCancelDeadline: a context deadline preempts execution with
// context.DeadlineExceeded — the end-to-end RequestTimeout path.
func TestCancelDeadline(t *testing.T) {
	e, est := rig(t, 60000, 60000, 40000)
	e.Parallel = 2
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	e.Ctx = ctx
	_, err := e.Execute(chainPlan(t, est, plan.SortMerge))
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if err == nil {
		t.Skip("execution finished inside 1ms; nothing to assert")
	}
}

// TestCancelNoGoroutineLeak: cancelled executions must unwind every operator
// goroutine — consumers keep draining after a cancel precisely so producers
// blocked on channel sends can exit.
func TestCancelNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		e, est := rig(t, 30000, 30000, 20000)
		e.Parallel = 4
		ctx, cancel := context.WithCancelCause(context.Background())
		e.Ctx = ctx
		go func() {
			time.Sleep(time.Millisecond)
			cancel(errTestCancel)
		}()
		_, _ = e.Execute(chainPlan(t, est, plan.HashJoin))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d, want ≤ %d (+2 slack): cancelled executions leaked operators", runtime.NumGoroutine(), base+2)
}

// TestCancelParallelLocalFragments: the in-process Local transport inherits
// the executor context, so a cancel unwinds inside the partition joins too.
func TestCancelParallelLocalFragments(t *testing.T) {
	e, est := rig(t, 60000, 60000)
	e.Parallel = 4
	ctx, cancel := context.WithCancelCause(context.Background())
	e.Ctx = ctx
	p := join(t, est, leaf(t, est, "R1"), leaf(t, est, "R2"), plan.HashJoin)
	done := make(chan error, 1)
	go func() {
		_, err := e.Execute(p)
		done <- err
	}()
	time.Sleep(2 * time.Millisecond)
	cancel(errTestCancel)
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, errTestCancel) {
			t.Fatalf("err = %v, want cause %v", err, errTestCancel)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parallel execution did not return within 5s of cancel")
	}
}

// TestCancelledResultNotReturned: success after a cancel is fine (the race
// is inherent), but a cancelled error must never come with partial rows
// being mistaken for a result — Execute returns nil on error.
func TestCancelledResultNotReturned(t *testing.T) {
	e, est := rig(t, 60000, 60000, 40000)
	e.Parallel = 2
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errTestCancel)
	e.Ctx = ctx
	res, err := e.Execute(chainPlan(t, est, plan.HashJoin))
	if err == nil {
		t.Fatal("pre-cancelled execution succeeded")
	}
	if res != nil {
		t.Fatalf("cancelled execution returned a resultset (%d rows)", res.Len())
	}
}
