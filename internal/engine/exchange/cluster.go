package exchange

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ClusterConfig tunes the multi-worker transport.
type ClusterConfig struct {
	// Window is the per-direction credit window per link; 0 means
	// DefaultWindow.
	Window int
	// MaxFrame bounds incoming frames; 0 means DefaultMaxFrame.
	MaxFrame uint32
	// DialTimeout bounds worker dials; 0 means 5s.
	DialTimeout time.Duration
}

// Cluster is the multi-worker transport: each join fragment is dispatched on
// its own TCP connection to a worker (partition i goes to addrs[i mod n]),
// both inputs are hash-partitioned and streamed out under credit windows,
// and result batches are merged. Per-link traffic counters accumulate across
// joins for /metrics.
type Cluster struct {
	addrs     []string
	cfg       ClusterConfig
	fragments atomic.Int64

	mu    sync.Mutex
	links map[string]*LinkStats
}

// NewCluster builds a transport over the given worker addresses.
func NewCluster(addrs []string, cfg ClusterConfig) *Cluster {
	return &Cluster{
		addrs: append([]string(nil), addrs...),
		cfg:   cfg,
		links: make(map[string]*LinkStats),
	}
}

// Addrs returns the worker addresses the cluster dispatches to.
func (c *Cluster) Addrs() []string { return c.addrs }

// Fragments counts fragments dispatched since the cluster was built.
func (c *Cluster) Fragments() int64 { return c.fragments.Load() }

// Links snapshots per-link traffic counters, sorted by address.
func (c *Cluster) Links() []LinkSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LinkSnapshot, 0, len(c.links))
	for _, ls := range c.links {
		out = append(out, ls.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Close is a no-op: connections live per join, not per cluster.
func (c *Cluster) Close() error { return nil }

func (c *Cluster) linkFor(addr string) *LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls, ok := c.links[addr]
	if !ok {
		ls = &LinkStats{Addr: addr}
		c.links[addr] = ls
	}
	return ls
}

func (c *Cluster) window() int {
	if c.cfg.Window > 0 {
		return c.cfg.Window
	}
	return DefaultWindow
}

func (c *Cluster) maxFrame() uint32 {
	if c.cfg.MaxFrame > 0 {
		return c.cfg.MaxFrame
	}
	return DefaultMaxFrame
}

func (c *Cluster) dialTimeout() time.Duration {
	if c.cfg.DialTimeout > 0 {
		return c.cfg.DialTimeout
	}
	return 5 * time.Second
}

// workerConn is one coordinator↔worker link of one join.
type workerConn struct {
	conn     net.Conn
	addr     string
	stats    *LinkStats
	wmu      sync.Mutex
	leftWin  *window
	rightWin *window
}

func (wc *workerConn) send(typ byte, payload []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	if err := writeFrame(wc.conn, typ, payload); err != nil {
		return err
	}
	wc.stats.BytesSent.Add(int64(5 + len(payload)))
	return nil
}

type clusterJoin struct {
	out   chan Batch
	abort chan struct{}
	conns []*workerConn

	once sync.Once
	mu   sync.Mutex
	err  error
}

func (j *clusterJoin) Out() <-chan Batch { return j.out }

func (j *clusterJoin) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// fail records the first error and tears the join down: windows close so
// partitioners stop sending, connections close so receivers unblock.
func (j *clusterJoin) fail(err error) {
	j.once.Do(func() {
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()
		close(j.abort)
		for _, wc := range j.conns {
			wc.leftWin.close()
			wc.rightWin.close()
			wc.conn.Close()
		}
	})
}

// Join dials one connection per partition, streams both partitioned inputs,
// and merges the result streams. On any failure the join aborts with a typed
// *WorkerError, and both input streams are still consumed to exhaustion so
// upstream operators never block.
func (c *Cluster) Join(frag Fragment, left, right <-chan Batch) (Join, error) {
	if len(c.addrs) == 0 {
		go drainBatches(left)
		go drainBatches(right)
		return nil, errors.New("exchange: cluster has no workers")
	}
	p := frag.Parts
	if p < 1 {
		p = 1
	}
	bs := frag.BatchSize
	if bs <= 0 {
		bs = 256
	}
	win := c.window()
	maxFrame := c.maxFrame()

	j := &clusterJoin{out: make(chan Batch, p), abort: make(chan struct{})}
	for i := 0; i < p; i++ {
		addr := c.addrs[i%len(c.addrs)]
		conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
		if err == nil {
			err = conn.SetDeadline(time.Time{})
		}
		wc := &workerConn{conn: conn, addr: addr, stats: c.linkFor(addr), leftWin: newWindow(win), rightWin: newWindow(win)}
		if err == nil {
			f := frag
			f.Part = i
			f.Parts = p
			f.BatchSize = bs
			var payload []byte
			payload, err = json.Marshal(f)
			if err == nil {
				err = wc.send(frameFragment, payload)
			}
		}
		if err != nil {
			for _, prev := range j.conns {
				prev.conn.Close()
			}
			if conn != nil {
				conn.Close()
			}
			go drainBatches(left)
			go drainBatches(right)
			return nil, &WorkerError{Addr: addr, Err: err}
		}
		c.fragments.Add(1)
		j.conns = append(j.conns, wc)
	}

	var sendWG, recvWG sync.WaitGroup
	partition := func(in <-chan Batch, key int, typ, endTyp byte, winOf func(*workerConn) *window) {
		defer sendWG.Done()
		pending := make([]Batch, p)
		for i := range pending {
			pending[i] = make(Batch, 0, bs)
		}
		aborted := false
		flush := func(i int) bool {
			if len(pending[i]) == 0 {
				return true
			}
			wc := j.conns[i]
			if !winOf(wc).acquire() {
				return false
			}
			if err := wc.send(typ, encodeBatch(pending[i])); err != nil {
				j.fail(&WorkerError{Addr: wc.addr, Err: fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)})
				return false
			}
			wc.stats.BatchesSent.Add(1)
			pending[i] = make(Batch, 0, bs)
			return true
		}
		for b := range in {
			if aborted {
				continue // keep draining so upstream never blocks
			}
			for _, row := range b {
				part := Partition(row[key], p)
				pending[part] = append(pending[part], row)
				if len(pending[part]) == bs && !flush(part) {
					aborted = true
					break
				}
			}
		}
		for i := range pending {
			if aborted {
				break
			}
			if !flush(i) {
				aborted = true
			}
		}
		if !aborted {
			for _, wc := range j.conns {
				if err := wc.send(endTyp, nil); err != nil {
					j.fail(&WorkerError{Addr: wc.addr, Err: fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)})
					break
				}
			}
		}
	}
	sendWG.Add(2)
	go partition(left, frag.LKeys[0], frameLeft, frameEndLeft, func(wc *workerConn) *window { return wc.leftWin })
	go partition(right, frag.RKeys[0], frameRight, frameEndRight, func(wc *workerConn) *window { return wc.rightWin })

	recv := func(wc *workerConn) {
		defer recvWG.Done()
		for {
			typ, payload, err := readFrame(wc.conn, maxFrame)
			if err != nil {
				select {
				case <-j.abort: // teardown closed the conn; keep the first error
				default:
					if err == io.EOF {
						err = ErrWorkerDisconnected
					} else {
						err = fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)
					}
					j.fail(&WorkerError{Addr: wc.addr, Err: err})
				}
				return
			}
			wc.stats.BytesRecv.Add(int64(5 + len(payload)))
			switch typ {
			case frameResult:
				b, derr := decodeBatch(payload)
				if derr != nil {
					j.fail(&WorkerError{Addr: wc.addr, Err: derr})
					return
				}
				wc.stats.BatchesRecv.Add(1)
				select {
				case j.out <- b:
				case <-j.abort:
					return
				}
				_ = wc.send(frameCredit, []byte{creditResult})
			case frameCredit:
				if len(payload) == 1 {
					switch payload[0] {
					case creditLeft:
						wc.leftWin.release(1)
					case creditRight:
						wc.rightWin.release(1)
					}
				}
			case frameEndResult:
				return
			case frameError:
				j.fail(&WorkerError{Addr: wc.addr, Err: errors.New(string(payload))})
				return
			}
		}
	}
	recvWG.Add(len(j.conns))
	for _, wc := range j.conns {
		go recv(wc)
	}

	go func() {
		recvWG.Wait()
		sendWG.Wait()
		for _, wc := range j.conns {
			wc.conn.Close()
		}
		close(j.out)
	}()
	return j, nil
}
