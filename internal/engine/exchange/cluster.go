package exchange

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"paropt/internal/vec"
)

// DefaultRetries is the extra dispatch attempts per fully-shipped fragment
// after its first attempt fails.
const DefaultRetries = 2

// ErrJoinCancelled aborts in-flight joins when the coordinator cancels the
// query (client cancel, deadline, or daemon shutdown).
var ErrJoinCancelled = errors.New("exchange: join cancelled")

// DefaultRetryBackoff is the pause before each fragment re-dispatch.
const DefaultRetryBackoff = 50 * time.Millisecond

// ClusterConfig tunes the multi-worker transport.
type ClusterConfig struct {
	// Window is the per-direction credit window per link; 0 means
	// DefaultWindow.
	Window int
	// MaxFrame bounds incoming frames; 0 means DefaultMaxFrame.
	MaxFrame uint32
	// DialTimeout bounds worker dials; 0 means 5s.
	DialTimeout time.Duration
	// Owners maps relation name → owning worker addresses in shard order
	// (from the placement map). Non-empty entries enable leaf-scan shipping
	// for that relation: the engine asks via ShipScan, fragment i is
	// dispatched to owner i, and the worker sources the shard locally.
	Owners map[string][]string
	// Members returns the live worker addresses and the membership epoch;
	// consulted when re-dispatching a failed fully-shipped fragment, so
	// mid-query deregistrations shrink the retry candidate set instead of
	// failing the query. Nil freezes membership at the construction addrs.
	Members func() (addrs []string, epoch int64)
	// Retries is the extra dispatch attempts per fully-shipped fragment
	// after the first fails; 0 means DefaultRetries, negative disables
	// retries entirely.
	Retries int
	// RetryBackoff is the pause before each re-dispatch; 0 means
	// DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Store and Fn enable coordinator fallback: when every dispatch of a
	// fully-shipped fragment fails, the coordinator sources the partitions
	// from Store and runs Fn in-process rather than failing the query.
	Store Store
	Fn    JoinFunc
	// TraceID, when set, is stamped into every dispatched fragment so
	// workers tie their FragmentStats to the originating request trace.
	TraceID string
}

// Cluster is the multi-worker transport: each join fragment is dispatched on
// its own TCP connection to a worker, both inputs are hash-partitioned and
// streamed out under credit windows, and result batches are merged. With a
// placement map (Owners) leaf scans ship to the data instead: fragments go
// to the owning workers, which source their shards locally, and only join
// outputs cross the wire. Fully-shipped fragments are retried on surviving
// workers after a failure and fall back to the coordinator when no worker
// can run them. Per-link traffic counters accumulate across joins for
// /metrics.
type Cluster struct {
	addrs     []string
	cfg       ClusterConfig
	fragments atomic.Int64
	shipped   atomic.Int64
	retries   atomic.Int64
	fallbacks atomic.Int64
	cancelled atomic.Bool

	mu              sync.Mutex
	links           map[string]*LinkStats
	fallbackReasons map[string]int64

	// In-flight state Cancel tears down: streamed joins (cancelled with a
	// frameCancel per link plus the usual fail teardown) and the open
	// connections of shipped dispatch attempts (sent a frameCancel and
	// write-half-closed, so the worker abandons the fragment and frees its
	// staged partitions gracefully).
	actMu    sync.Mutex
	actJoins map[*clusterJoin]struct{}
	actConns map[net.Conn]*shippedConn
}

// shippedConn pairs a dispatch attempt's connection with a write mutex so
// Cancel can inject a clean frameCancel between the attempt's own frames —
// writeFrame is two Writes, so unsynchronized writers could interleave
// mid-frame and corrupt the stream.
type shippedConn struct {
	conn net.Conn
	wmu  sync.Mutex
}

func (sc *shippedConn) send(typ byte, payload []byte) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return writeFrame(sc.conn, typ, payload)
}

// NewCluster builds a transport over the given worker addresses.
func NewCluster(addrs []string, cfg ClusterConfig) *Cluster {
	return &Cluster{
		addrs:           append([]string(nil), addrs...),
		cfg:             cfg,
		links:           make(map[string]*LinkStats),
		fallbackReasons: make(map[string]int64),
		actJoins:        make(map[*clusterJoin]struct{}),
		actConns:        make(map[net.Conn]*shippedConn),
	}
}

// Cancelled reports whether Cancel has been called.
func (c *Cluster) Cancelled() bool { return c.cancelled.Load() }

// cancelGrace bounds how long a cancelled shipped attempt may keep reading
// while the worker unwinds; a hung worker surfaces as a read timeout.
const cancelGrace = time.Second

// Cancel aborts every in-flight join and blocks new dispatches: streamed
// joins get a best-effort frameCancel on each worker link before the usual
// fail teardown; shipped dispatch attempts get a frameCancel followed by a
// write-half close (the worker sees the cancel, abandons the fragment, and
// frees its staged partitions — its final stats/error frames still drain
// cleanly instead of being reset away), with a read deadline as backstop
// against hung workers. Pending retries or fallbacks are skipped.
// Idempotent and safe concurrently with running joins.
func (c *Cluster) Cancel() {
	c.cancelled.Store(true)
	c.actMu.Lock()
	joins := make([]*clusterJoin, 0, len(c.actJoins))
	for j := range c.actJoins {
		joins = append(joins, j)
	}
	conns := make([]*shippedConn, 0, len(c.actConns))
	for _, sc := range c.actConns {
		conns = append(conns, sc)
	}
	c.actMu.Unlock()
	for _, j := range joins {
		j.cancel()
	}
	for _, sc := range conns {
		_ = sc.send(frameCancel, nil)
		if tc, ok := sc.conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		} else {
			sc.conn.Close()
			continue
		}
		_ = sc.conn.SetReadDeadline(time.Now().Add(cancelGrace))
	}
}

// trackJoin registers a streamed join for Cancel teardown.
func (c *Cluster) trackJoin(j *clusterJoin) {
	c.actMu.Lock()
	c.actJoins[j] = struct{}{}
	c.actMu.Unlock()
}

func (c *Cluster) untrackJoin(j *clusterJoin) {
	c.actMu.Lock()
	delete(c.actJoins, j)
	c.actMu.Unlock()
}

// trackConn registers a shipped attempt's connection for Cancel teardown
// and returns its write handle; it returns nil — without registering —
// when the cluster is already cancelled, so the attempt aborts instead of
// racing the teardown.
func (c *Cluster) trackConn(cn net.Conn) *shippedConn {
	c.actMu.Lock()
	defer c.actMu.Unlock()
	if c.cancelled.Load() {
		return nil
	}
	sc := &shippedConn{conn: cn}
	c.actConns[cn] = sc
	return sc
}

func (c *Cluster) untrackConn(cn net.Conn) {
	c.actMu.Lock()
	delete(c.actConns, cn)
	c.actMu.Unlock()
}

// Addrs returns the worker addresses the cluster dispatches to.
func (c *Cluster) Addrs() []string { return c.addrs }

// Fragments counts fragment dispatches since the cluster was built
// (re-dispatches of the same fragment count again).
func (c *Cluster) Fragments() int64 { return c.fragments.Load() }

// ShippedScans counts leaf-scan sides sourced at workers instead of
// streamed from the coordinator.
func (c *Cluster) ShippedScans() int64 { return c.shipped.Load() }

// Retries counts fragment re-dispatches after a worker failure.
func (c *Cluster) Retries() int64 { return c.retries.Load() }

// Fallbacks counts fragments the coordinator ran itself after every worker
// dispatch failed.
func (c *Cluster) Fallbacks() int64 { return c.fallbacks.Load() }

// FallbackReasons returns fallback counts keyed by typed reason
// ("worker_unreachable", "worker_died", "worker_error") — why the last
// dispatch attempt before each fallback failed.
func (c *Cluster) FallbackReasons() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.fallbackReasons))
	for k, v := range c.fallbackReasons {
		out[k] = v
	}
	return out
}

// failureReason classifies a dispatch failure for the fallback counter and
// span annotation: did the worker die mid-stream, was it never reachable,
// or did it run the fragment and report an error?
func failureReason(err error) string {
	switch {
	case err == nil:
		return "none"
	case errors.Is(err, ErrWorkerDisconnected), errors.Is(err, ErrTruncatedFrame):
		return "worker_died"
	default:
		var op *net.OpError
		if errors.As(err, &op) {
			return "worker_unreachable"
		}
		return "worker_error"
	}
}

func (c *Cluster) countFallback(reason string) {
	c.fallbacks.Add(1)
	c.mu.Lock()
	c.fallbackReasons[reason]++
	c.mu.Unlock()
}

// Links snapshots per-link traffic counters, sorted by address.
func (c *Cluster) Links() []LinkSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]LinkSnapshot, 0, len(c.links))
	for _, ls := range c.links {
		out = append(out, ls.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Close is a no-op: connections live per join, not per cluster.
func (c *Cluster) Close() error { return nil }

// ShipScan implements ScanShipper: scans of a relation with placed owners
// can be shipped, partitioned across the owner count.
func (c *Cluster) ShipScan(relation string) (int, bool) {
	owners := c.cfg.Owners[relation]
	return len(owners), len(owners) > 0
}

func (c *Cluster) linkFor(addr string) *LinkStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls, ok := c.links[addr]
	if !ok {
		ls = &LinkStats{Addr: addr}
		c.links[addr] = ls
	}
	return ls
}

func (c *Cluster) window() int {
	if c.cfg.Window > 0 {
		return c.cfg.Window
	}
	return DefaultWindow
}

func (c *Cluster) maxFrame() uint32 {
	if c.cfg.MaxFrame > 0 {
		return c.cfg.MaxFrame
	}
	return DefaultMaxFrame
}

func (c *Cluster) dialTimeout() time.Duration {
	if c.cfg.DialTimeout > 0 {
		return c.cfg.DialTimeout
	}
	return 5 * time.Second
}

func (c *Cluster) retryBudget() int {
	if c.cfg.Retries < 0 {
		return 0
	}
	if c.cfg.Retries == 0 {
		return DefaultRetries
	}
	return c.cfg.Retries
}

func (c *Cluster) retryBackoff() time.Duration {
	if c.cfg.RetryBackoff > 0 {
		return c.cfg.RetryBackoff
	}
	return DefaultRetryBackoff
}

// members returns the live worker set and epoch: the Members callback when
// installed, else the static construction addresses.
func (c *Cluster) members() ([]string, int64) {
	if c.cfg.Members != nil {
		return c.cfg.Members()
	}
	return c.addrs, 0
}

// ownerFor returns the preferred dispatch address for partition part of a
// fragment: the shipped side's owner in shard order, else round-robin over
// the static worker set.
func (c *Cluster) ownerFor(frag *Fragment, part int) string {
	for _, spec := range []*ScanSpec{frag.LeftScan, frag.RightScan} {
		if spec == nil {
			continue
		}
		if owners := c.cfg.Owners[spec.Relation]; len(owners) > 0 {
			return owners[part%len(owners)]
		}
	}
	return c.addrs[part%len(c.addrs)]
}

// countShipped bumps the shipped-scan counter for each worker-sourced side
// of a dispatched fragment.
func (c *Cluster) countShipped(frag *Fragment) {
	if frag.LeftScan != nil {
		c.shipped.Add(1)
	}
	if frag.RightScan != nil {
		c.shipped.Add(1)
	}
}

// workerConn is one coordinator↔worker link of one join.
type workerConn struct {
	conn       net.Conn
	addr       string
	stats      *LinkStats
	dispatched time.Time
	wmu        sync.Mutex
	leftWin    *window
	rightWin   *window
}

func (wc *workerConn) send(typ byte, payload []byte) error {
	wc.wmu.Lock()
	defer wc.wmu.Unlock()
	start := nowNanos()
	if err := writeFrame(wc.conn, typ, payload); err != nil {
		return err
	}
	wc.stats.SendNanos.Add(nowNanos() - start)
	wc.stats.BytesSent.Add(int64(5 + len(payload)))
	return nil
}

type clusterJoin struct {
	out   chan Batch
	abort chan struct{}
	conns []*workerConn

	once   sync.Once
	mu     sync.Mutex
	err    error
	fstats []*FragmentStats
}

func (j *clusterJoin) Out() <-chan Batch { return j.out }

func (j *clusterJoin) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// FragmentStats implements StatsReporter: the worker-side measurements
// collected from frameStats frames, valid once Out is closed.
func (j *clusterJoin) FragmentStats() []*FragmentStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fstats
}

func (j *clusterJoin) addStats(fs *FragmentStats) {
	j.mu.Lock()
	j.fstats = append(j.fstats, fs)
	j.mu.Unlock()
}

// cancel sends a best-effort frameCancel on every link — letting workers
// abandon the fragment gracefully and free staged partitions — then runs
// the usual fail teardown.
func (j *clusterJoin) cancel() {
	for _, wc := range j.conns {
		_ = wc.send(frameCancel, nil)
	}
	j.fail(ErrJoinCancelled)
}

// fail records the first error and tears the join down: windows close so
// partitioners stop sending, connections close so receivers unblock.
func (j *clusterJoin) fail(err error) {
	j.once.Do(func() {
		j.mu.Lock()
		j.err = err
		j.mu.Unlock()
		close(j.abort)
		for _, wc := range j.conns {
			wc.leftWin.close()
			wc.rightWin.close()
			wc.conn.Close()
		}
	})
}

// Join dispatches the fragment's partitions to workers and merges the
// result streams. Fully-shipped fragments (both inputs worker-sourced) run
// on the fault-tolerant path: per-fragment retry on surviving members, then
// coordinator fallback. Fragments with coordinator-streamed inputs keep
// fail-fast semantics — their inputs are not replayable — and on any
// failure the join aborts with a typed *WorkerError, with both input
// streams still consumed to exhaustion so upstream operators never block.
func (c *Cluster) Join(frag Fragment, left, right <-chan Batch) (Join, error) {
	if c.cancelled.Load() {
		go drainBatches(left)
		go drainBatches(right)
		return nil, ErrJoinCancelled
	}
	if len(c.addrs) == 0 {
		go drainBatches(left)
		go drainBatches(right)
		return nil, errors.New("exchange: cluster has no workers")
	}
	p := frag.Parts
	if p < 1 {
		p = 1
	}
	bs := frag.BatchSize
	if bs <= 0 {
		bs = 256
	}
	if _, epoch := c.members(); epoch > 0 {
		frag.Epoch = epoch
	}
	if frag.TraceID == "" {
		frag.TraceID = c.cfg.TraceID
	}
	if frag.FullyShipped() {
		// No coordinator-streamed inputs: nothing to drain, every partition
		// is independently retryable.
		return c.joinShipped(frag, p, bs)
	}
	return c.joinStreamed(frag, left, right, p, bs)
}

// joinStreamed is the streaming path: inputs not sourced at the workers are
// hash-partitioned here and streamed out under credit windows. At most one
// side may be shipped.
func (c *Cluster) joinStreamed(frag Fragment, left, right <-chan Batch, p, bs int) (Join, error) {
	win := c.window()
	maxFrame := c.maxFrame()

	j := &clusterJoin{out: make(chan Batch, p), abort: make(chan struct{})}
	drainInputs := func() {
		if frag.LeftScan == nil {
			go drainBatches(left)
		}
		if frag.RightScan == nil {
			go drainBatches(right)
		}
	}
	for i := 0; i < p; i++ {
		addr := c.ownerFor(&frag, i)
		conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
		if err == nil {
			err = conn.SetDeadline(time.Time{})
		}
		wc := &workerConn{conn: conn, addr: addr, stats: c.linkFor(addr), dispatched: time.Now(), leftWin: newWindow(win), rightWin: newWindow(win)}
		if err == nil {
			f := frag
			f.Part = i
			f.Parts = p
			f.BatchSize = bs
			var payload []byte
			payload, err = json.Marshal(f)
			if err == nil {
				err = wc.send(frameFragment, payload)
			}
		}
		if err != nil {
			for _, prev := range j.conns {
				prev.conn.Close()
			}
			if conn != nil {
				conn.Close()
			}
			drainInputs()
			return nil, &WorkerError{Addr: addr, Err: err}
		}
		c.fragments.Add(1)
		c.countShipped(&frag)
		j.conns = append(j.conns, wc)
	}

	var sendWG, recvWG sync.WaitGroup
	partition := func(in <-chan Batch, key int, typ, endTyp byte, winOf func(*workerConn) *window) {
		defer sendWG.Done()
		var builders []*vec.Builder
		aborted := false
		ship := func(i int, v Batch) bool {
			wc := j.conns[i]
			if !winOf(wc).acquire() {
				return false
			}
			if err := wc.send(typ, encodeBatch(v)); err != nil {
				j.fail(&WorkerError{Addr: wc.addr, Err: fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)})
				return false
			}
			wc.stats.BatchesSent.Add(1)
			return true
		}
		for b := range in {
			if aborted {
				continue // keep draining so upstream never blocks
			}
			if builders == nil {
				builders = make([]*vec.Builder, p)
				for i := range builders {
					builders[i] = vec.NewBuilder(b.Width(), bs)
				}
			}
			if !scatterVec(b, key, p, builders, ship) {
				aborted = true
			}
		}
		for i, bld := range builders {
			if aborted {
				break
			}
			if v := bld.Flush(); v != nil && !ship(i, v) {
				aborted = true
			}
		}
		if !aborted {
			for _, wc := range j.conns {
				if err := wc.send(endTyp, nil); err != nil {
					j.fail(&WorkerError{Addr: wc.addr, Err: fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)})
					break
				}
			}
		}
	}
	if frag.LeftScan == nil {
		sendWG.Add(1)
		go partition(left, frag.LKeys[0], frameLeft, frameEndLeft, func(wc *workerConn) *window { return wc.leftWin })
	}
	if frag.RightScan == nil {
		sendWG.Add(1)
		go partition(right, frag.RKeys[0], frameRight, frameEndRight, func(wc *workerConn) *window { return wc.rightWin })
	}

	recv := func(wc *workerConn) {
		defer recvWG.Done()
		for {
			typ, payload, err := readFrame(wc.conn, maxFrame)
			if err != nil {
				select {
				case <-j.abort: // teardown closed the conn; keep the first error
				default:
					if err == io.EOF {
						err = ErrWorkerDisconnected
					} else {
						err = fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)
					}
					j.fail(&WorkerError{Addr: wc.addr, Err: err})
				}
				return
			}
			wc.stats.BytesRecv.Add(int64(5 + len(payload)))
			switch typ {
			case frameResult:
				b, derr := decodeBatch(payload)
				if derr != nil {
					j.fail(&WorkerError{Addr: wc.addr, Err: derr})
					return
				}
				wc.stats.BatchesRecv.Add(1)
				select {
				case j.out <- b:
				case <-j.abort:
					return
				}
				_ = wc.send(frameCredit, []byte{creditResult})
			case frameCredit:
				if len(payload) == 1 {
					switch payload[0] {
					case creditLeft:
						wc.leftWin.release(1)
					case creditRight:
						wc.rightWin.release(1)
					}
				}
			case frameStats:
				var fs FragmentStats
				if json.Unmarshal(payload, &fs) == nil {
					fs.Addr = wc.addr
					fs.Dispatched = wc.dispatched
					wc.stats.StallResult.Add(fs.ResultStallNanos)
					j.addStats(&fs)
				}
			case frameEndResult:
				return
			case frameError:
				j.fail(&WorkerError{Addr: wc.addr, Err: errors.New(string(payload))})
				return
			}
		}
	}
	recvWG.Add(len(j.conns))
	for _, wc := range j.conns {
		go recv(wc)
	}

	// Register for Cancel teardown, then re-check: a Cancel that landed
	// between the cancelled-check in Join and this registration would have
	// missed the join.
	c.trackJoin(j)
	if c.cancelled.Load() {
		j.cancel()
	}

	go func() {
		recvWG.Wait()
		sendWG.Wait()
		for _, wc := range j.conns {
			// Fold this join's input-window stalls into the cumulative link
			// counters — the per-direction backpressure /metrics reads.
			wc.stats.StallLeft.Add(wc.leftWin.stallNanos())
			wc.stats.StallRight.Add(wc.rightWin.stallNanos())
			wc.conn.Close()
		}
		c.untrackJoin(j)
		close(j.out)
	}()
	return j, nil
}

// shippedJoin merges the independently-dispatched partitions of a
// fully-shipped fragment.
type shippedJoin struct {
	out    chan Batch
	mu     sync.Mutex
	err    error
	fstats []*FragmentStats
}

func (j *shippedJoin) Out() <-chan Batch { return j.out }

func (j *shippedJoin) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *shippedJoin) setErr(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
	}
	j.mu.Unlock()
}

// FragmentStats implements StatsReporter: one entry per committed attempt
// (stats of failed attempts are discarded along with their staged results;
// coordinator fallbacks appear with Worker = "coordinator").
func (j *shippedJoin) FragmentStats() []*FragmentStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fstats
}

func (j *shippedJoin) addStats(fs *FragmentStats) {
	j.mu.Lock()
	j.fstats = append(j.fstats, fs)
	j.mu.Unlock()
}

// joinShipped runs a fully-shipped fragment: each partition is dispatched
// to its owning worker on its own goroutine and retried elsewhere on
// failure. Results of an attempt are staged and only merged into the output
// once the worker finishes cleanly, so a retry never duplicates rows.
func (c *Cluster) joinShipped(frag Fragment, p, bs int) (Join, error) {
	j := &shippedJoin{out: make(chan Batch, p)}
	var wg sync.WaitGroup
	wg.Add(p)
	for i := 0; i < p; i++ {
		f := frag
		f.Part = i
		f.Parts = p
		f.BatchSize = bs
		go func(f Fragment) {
			defer wg.Done()
			if err := c.runShipped(f, j); err != nil {
				j.setErr(err)
			}
		}(f)
	}
	go func() {
		wg.Wait()
		close(j.out)
	}()
	return j, nil
}

// runShipped dispatches one fully-shipped fragment: first to its preferred
// owner, then — after a backoff, consulting live membership — to workers
// not yet tried, and finally to the coordinator's own store. Only a clean
// frameEndResult commits an attempt's staged results.
func (c *Cluster) runShipped(f Fragment, j *shippedJoin) error {
	tried := map[string]bool{}
	addr := c.ownerFor(&f, f.Part)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if c.cancelled.Load() {
			return ErrJoinCancelled
		}
		if attempt > 0 {
			c.retries.Add(1)
			time.Sleep(c.retryBackoff())
			addrs, epoch := c.members()
			f.Epoch = epoch
			addr = ""
			for _, a := range addrs {
				if !tried[a] {
					addr = a
					break
				}
			}
			if addr == "" {
				break // every live member tried
			}
		}
		tried[addr] = true
		staged, fs, err := c.attemptShipped(f, addr)
		if err == nil {
			for _, b := range staged {
				j.out <- b
			}
			if fs != nil {
				if attempt > 0 {
					fs.Retried = attempt
				}
				j.addStats(fs)
			}
			return nil
		}
		lastErr = err
		if errors.Is(err, ErrJoinCancelled) || attempt >= c.retryBudget() {
			break
		}
	}
	if c.cancelled.Load() {
		return ErrJoinCancelled
	}
	if c.cfg.Store != nil && c.cfg.Fn != nil {
		reason := failureReason(lastErr)
		c.countFallback(reason)
		fb := &FragmentStats{
			TraceID:        f.TraceID,
			Worker:         "coordinator",
			Part:           f.Part,
			Parts:          f.Parts,
			FallbackReason: reason,
			Dispatched:     time.Now(),
		}
		if err := c.runFallback(f, j, fb); err != nil {
			return err
		}
		j.addStats(fb)
		return nil
	}
	return lastErr
}

// attemptShipped runs one dispatch attempt of a fully-shipped fragment,
// returning the staged result batches and the worker's FragmentStats (nil
// when the worker predates the stats frame) on clean completion.
func (c *Cluster) attemptShipped(f Fragment, addr string) ([]Batch, *FragmentStats, error) {
	conn, err := net.DialTimeout("tcp", addr, c.dialTimeout())
	if err != nil {
		return nil, nil, &WorkerError{Addr: addr, Err: err}
	}
	defer conn.Close()
	sc := c.trackConn(conn)
	if sc == nil {
		return nil, nil, ErrJoinCancelled
	}
	defer c.untrackConn(conn)
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, nil, &WorkerError{Addr: addr, Err: err}
	}
	stats := c.linkFor(addr)
	dispatched := time.Now()
	payload, err := json.Marshal(f)
	if err != nil {
		return nil, nil, err
	}
	sendStart := nowNanos()
	if err := sc.send(frameFragment, payload); err != nil {
		return nil, nil, &WorkerError{Addr: addr, Err: err}
	}
	stats.SendNanos.Add(nowNanos() - sendStart)
	stats.BytesSent.Add(int64(5 + len(payload)))
	c.fragments.Add(1)
	c.countShipped(&f)

	maxFrame := c.maxFrame()
	var staged []Batch
	var fstats *FragmentStats
	for {
		typ, payload, err := readFrame(conn, maxFrame)
		if err != nil {
			if err == io.EOF {
				err = ErrWorkerDisconnected
			} else {
				err = fmt.Errorf("%w: %v", ErrWorkerDisconnected, err)
			}
			return nil, nil, &WorkerError{Addr: addr, Err: err}
		}
		stats.BytesRecv.Add(int64(5 + len(payload)))
		switch typ {
		case frameResult:
			b, derr := decodeBatch(payload)
			if derr != nil {
				return nil, nil, &WorkerError{Addr: addr, Err: derr}
			}
			stats.BatchesRecv.Add(1)
			staged = append(staged, b)
			if err := sc.send(frameCredit, []byte{creditResult}); err != nil {
				return nil, nil, &WorkerError{Addr: addr, Err: err}
			}
			stats.BytesSent.Add(6)
		case frameStats:
			var fs FragmentStats
			if json.Unmarshal(payload, &fs) == nil {
				fs.Addr = addr
				fs.Dispatched = dispatched
				stats.StallResult.Add(fs.ResultStallNanos)
				fstats = &fs
			}
		case frameEndResult:
			return staged, fstats, nil
		case frameError:
			return nil, nil, &WorkerError{Addr: addr, Err: errors.New(string(payload))}
		}
	}
}

// runFallback executes a fully-shipped fragment in the coordinator process:
// both partitions are sourced from the configured store and joined with the
// configured join function — the no-replica-left degradation of last
// resort. Measurements land in fb so the fallback is as observable as a
// worker-run fragment.
func (c *Cluster) runFallback(f Fragment, j *shippedJoin, fb *FragmentStats) error {
	t0 := nowNanos()
	since := func() int64 { return nowNanos() - t0 }
	root := &RemoteSpan{Name: "fragment", Attrs: map[string]string{
		"method":   f.Method,
		"worker":   "coordinator",
		"fallback": fb.FallbackReason,
	}}
	fb.Span = root
	source := func(spec *ScanSpec) (chan Batch, error) {
		rows, err := c.cfg.Store.ScanPartition(*spec, f.Part, f.Parts)
		if err != nil {
			return nil, err
		}
		ch := make(chan Batch, 1)
		go func() {
			defer close(ch)
			for _, b := range vec.Batches(rows, f.BatchSize) {
				ch <- b
			}
		}()
		return ch, nil
	}
	left, err := source(f.LeftScan)
	if err != nil {
		return fmt.Errorf("exchange: fallback scan: %w", err)
	}
	right, err := source(f.RightScan)
	if err != nil {
		go drainBatches(left)
		return fmt.Errorf("exchange: fallback scan: %w", err)
	}
	joinSpan := root.child("join", since())
	var staged []Batch
	emit := func(b Batch) error {
		off := since()
		if fb.FirstNanos == 0 {
			fb.FirstNanos = off
			joinSpan.FirstNanos = off
		}
		fb.LastNanos = off
		fb.Rows += int64(b.Len())
		fb.Batches++
		staged = append(staged, b)
		return nil
	}
	if err := c.cfg.Fn(f, left, right, emit); err != nil {
		return fmt.Errorf("exchange: fallback join: %w", err)
	}
	joinSpan.EndNanos = since()
	root.EndNanos = joinSpan.EndNanos
	if fb.LastNanos == 0 {
		fb.LastNanos = joinSpan.EndNanos
	}
	for _, b := range staged {
		j.out <- b
	}
	return nil
}
