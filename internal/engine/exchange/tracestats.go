package exchange

import (
	"sync/atomic"
	"time"
)

// This file is the observability side of the wire protocol: the compact
// span tree and per-fragment measurements a worker ships back in a
// frameStats frame, plus the process-wide counters a worker exports on its
// own /metrics. Workers and coordinators have no clock agreement, so every
// timestamp in a RemoteSpan/FragmentStats is a nanosecond offset relative
// to the fragment's receipt at the worker; the coordinator anchors the tree
// at its own dispatch time when merging it into the request trace.

// RemoteSpan is one node of a worker-side span tree. Names are stable
// ("fragment", "scan-left", "scan-right", "join") so coordinators and smoke
// tests can find them after the merge.
type RemoteSpan struct {
	Name string `json:"name"`
	// StartNanos/EndNanos bound the span; FirstNanos is the first-output
	// mark (the measured tf of the paper's two-parameter descriptors), 0
	// when the span produced no output. All offsets from fragment receipt.
	StartNanos int64             `json:"start_nanos"`
	FirstNanos int64             `json:"first_nanos,omitempty"`
	EndNanos   int64             `json:"end_nanos"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*RemoteSpan     `json:"children,omitempty"`
}

// child appends and returns a new child span starting now (relative to t0).
func (s *RemoteSpan) child(name string, start int64) *RemoteSpan {
	c := &RemoteSpan{Name: name, StartNanos: start}
	s.Children = append(s.Children, c)
	return c
}

// FragmentStats is the frameStats payload: what one worker measured while
// running one fragment. It is sent once per attempt, immediately before
// frameEndResult or frameError. FirstNanos/LastNanos are the fragment's
// measured (tf, tl) — offsets from receipt to first and last result rows.
type FragmentStats struct {
	TraceID          string      `json:"trace_id,omitempty"`
	Worker           string      `json:"worker,omitempty"`
	Part             int         `json:"part"`
	Parts            int         `json:"parts"`
	Rows             int64       `json:"rows"`
	Batches          int64       `json:"batches"`
	FirstNanos       int64       `json:"first_nanos,omitempty"`
	LastNanos        int64       `json:"last_nanos,omitempty"`
	ResultStallNanos int64       `json:"result_stall_nanos,omitempty"`
	Error            string      `json:"error,omitempty"`
	Span             *RemoteSpan `json:"span,omitempty"`

	// Coordinator-side annotations, stamped on receipt — never on the wire.
	Addr           string    `json:"-"` // link the stats arrived on
	Dispatched     time.Time `json:"-"` // when the committed attempt was dispatched
	Retried        int       `json:"-"` // failed attempts before this one committed
	FallbackReason string    `json:"-"` // set on synthesized fallback stats
}

// StatsReporter is implemented by joins that collected worker-side
// FragmentStats (the Cluster transport's joins). The engine checks for it
// once a join's output is drained; Local joins don't implement it.
type StatsReporter interface {
	// FragmentStats returns the collected per-fragment stats, one entry per
	// committed dispatch attempt (retried attempts that failed are dropped;
	// coordinator fallbacks appear with Worker = "coordinator").
	FragmentStats() []*FragmentStats
}

// WorkerStats is a worker process's cumulative counters, shared across all
// fragment connections and exported by cmd/paroptw on /metrics and
// /healthz. All fields are safe for concurrent use; the zero value is ready.
type WorkerStats struct {
	FragmentsServed  atomic.Int64 // fragments finished cleanly
	FragmentsFailed  atomic.Int64 // fragments that ended in a frame error
	ShippedScans     atomic.Int64 // scan sides sourced from the local store
	RowsEmitted      atomic.Int64 // result rows streamed back
	BatchesEmitted   atomic.Int64 // result batches streamed back
	ResultStallNanos atomic.Int64 // ns blocked on the result credit window
	ActiveFragments  atomic.Int64 // fragments currently executing (gauge)
	StagedBytes      atomic.Int64 // bytes of shipped-scan partitions currently staged (gauge)
	Cancelled        atomic.Int64 // fragments abandoned on a coordinator cancel
}

// WorkerSnapshot is a point-in-time copy of WorkerStats for /healthz.
type WorkerSnapshot struct {
	FragmentsServed    int64   `json:"fragments_served"`
	FragmentsFailed    int64   `json:"fragments_failed"`
	ShippedScans       int64   `json:"shipped_scans"`
	RowsEmitted        int64   `json:"rows_emitted"`
	BatchesEmitted     int64   `json:"batches_emitted"`
	ResultStallSeconds float64 `json:"result_stall_seconds"`
	ActiveFragments    int64   `json:"active_fragments"`
	StagedBytes        int64   `json:"staged_bytes"`
	Cancelled          int64   `json:"cancelled"`
}

// Snapshot reads the counters (individually, not as a group).
func (s *WorkerStats) Snapshot() WorkerSnapshot {
	return WorkerSnapshot{
		FragmentsServed:    s.FragmentsServed.Load(),
		FragmentsFailed:    s.FragmentsFailed.Load(),
		ShippedScans:       s.ShippedScans.Load(),
		RowsEmitted:        s.RowsEmitted.Load(),
		BatchesEmitted:     s.BatchesEmitted.Load(),
		ResultStallSeconds: float64(s.ResultStallNanos.Load()) / 1e9,
		ActiveFragments:    s.ActiveFragments.Load(),
		StagedBytes:        s.StagedBytes.Load(),
		Cancelled:          s.Cancelled.Load(),
	}
}
