package exchange

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"

	"paropt/internal/vec"
)

var errStoreMissing = errors.New("exchange: fragment ships scans but worker has no store")

// Worker serves join fragments over TCP: per connection it reads a Fragment,
// demultiplexes left/right input batches into channels, runs Join over them,
// and streams result batches back — all under per-direction credit windows
// so neither side buffers unboundedly. Each fragment is measured (span tree,
// rows, first/last-output offsets, result-window stall) and the measurements
// ship back in a frameStats frame before the final result frame.
type Worker struct {
	// Join runs one fragment; required.
	Join JoinFunc
	// Store sources shipped leaf scans (fragments with LeftScan/RightScan).
	// Nil rejects shipped fragments with a frame error, which the
	// coordinator turns into a retry elsewhere or a local fallback.
	Store Store
	// Window is the per-direction credit window; 0 means DefaultWindow.
	Window int
	// MaxFrame bounds incoming frames; 0 means DefaultMaxFrame.
	MaxFrame uint32
	// ID names this worker in the FragmentStats it ships back (usually its
	// advertised address). Empty is fine — the coordinator stamps the link
	// address on receipt anyway.
	ID string
	// Stats, when set, accumulates process-wide counters across fragments
	// (exported by cmd/paroptw on /metrics and /healthz). Nil disables.
	Stats *WorkerStats
}

func (w *Worker) window() int {
	if w.Window > 0 {
		return w.Window
	}
	return DefaultWindow
}

func (w *Worker) maxFrame() uint32 {
	if w.MaxFrame > 0 {
		return w.MaxFrame
	}
	return DefaultMaxFrame
}

// Serve accepts fragment connections until the listener closes, handling
// each on its own goroutine. It returns the listener's Accept error.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// handle runs one fragment connection to completion.
//
// Deadlock-freedom: the reader goroutine delivers into channels whose buffer
// equals the credit window, and credits are granted only after the join
// takes a batch — so at most Window un-credited batches exist per direction
// and the reader never blocks on delivery. It therefore always stays
// responsive to result credits, whatever order the join consumes its inputs.
func (w *Worker) handle(conn net.Conn) {
	defer conn.Close()
	maxFrame := w.maxFrame()
	win := w.window()
	var wmu sync.Mutex
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, typ, payload)
	}

	typ, payload, err := readFrame(conn, maxFrame)
	if err != nil || typ != frameFragment {
		return
	}
	var frag Fragment
	if err := json.Unmarshal(payload, &frag); err != nil {
		_ = send(frameError, []byte("exchange: bad fragment: "+err.Error()))
		return
	}

	// Every timestamp below is an offset from t0 (fragment receipt): the
	// coordinator re-anchors the whole tree at its dispatch time, so the two
	// processes never need to agree on a wall clock.
	t0 := nowNanos()
	since := func() int64 { return nowNanos() - t0 }
	resWin := newWindow(win)
	if w.Stats != nil {
		w.Stats.ActiveFragments.Add(1)
		defer w.Stats.ActiveFragments.Add(-1)
	}
	root := &RemoteSpan{Name: "fragment", Attrs: map[string]string{
		"method": frag.Method,
		"worker": w.ID,
	}}
	fs := &FragmentStats{
		TraceID: frag.TraceID,
		Worker:  w.ID,
		Part:    frag.Part,
		Parts:   frag.Parts,
		Span:    root,
	}
	// finish seals the stats and ships them ahead of the final frame. The
	// stats frame is always sent — on errors too — so the coordinator can
	// annotate failed attempts; old coordinators skip the unknown frame type.
	finish := func(failErr error) {
		root.EndNanos = since()
		fs.ResultStallNanos = resWin.stallNanos()
		if failErr != nil {
			fs.Error = failErr.Error()
			root.Attrs["error"] = failErr.Error()
		}
		if w.Stats != nil {
			if failErr != nil {
				w.Stats.FragmentsFailed.Add(1)
			} else {
				w.Stats.FragmentsServed.Add(1)
			}
			w.Stats.RowsEmitted.Add(fs.Rows)
			w.Stats.BatchesEmitted.Add(fs.Batches)
			w.Stats.ResultStallNanos.Add(fs.ResultStallNanos)
		}
		if sp, err := json.Marshal(fs); err == nil {
			_ = send(frameStats, sp)
		}
		if failErr != nil {
			_ = send(frameError, []byte(failErr.Error()))
		} else {
			_ = send(frameEndResult, nil)
		}
	}

	// Shipped sides are sourced from the local store before the join runs,
	// so a store failure surfaces as a frame error with no results emitted —
	// the coordinator can re-dispatch the fragment cleanly. Staged partition
	// bytes are metered on the StagedBytes gauge and must reach zero again on
	// every exit path, error paths included.
	var lrows, rrows []Batch
	var lbytes, rbytes int64
	addStaged := func(n int64) {
		if w.Stats != nil && n != 0 {
			w.Stats.StagedBytes.Add(n)
		}
	}
	if frag.LeftScan != nil || frag.RightScan != nil {
		if w.Store == nil {
			finish(errStoreMissing)
			return
		}
		bs := frag.BatchSize
		if bs <= 0 {
			bs = 256
		}
		scan := func(name string, spec *ScanSpec) ([]Batch, int64, error) {
			if spec == nil {
				return nil, 0, nil
			}
			sp := root.child(name, since())
			rows, err := w.Store.ScanPartition(*spec, frag.Part, frag.Parts)
			sp.EndNanos = since()
			sp.Attrs = map[string]string{
				"relation": spec.Relation,
				"rows":     strconv.FormatInt(int64(len(rows)), 10),
			}
			if err != nil {
				return nil, 0, err
			}
			if w.Stats != nil {
				w.Stats.ShippedScans.Add(1)
			}
			bats := vec.Batches(rows, bs)
			var bytes int64
			if len(rows) > 0 {
				bytes = int64(len(rows)) * int64(len(rows[0])) * 8
			}
			addStaged(bytes)
			return bats, bytes, nil
		}
		var err error
		if lrows, lbytes, err = scan("scan-left", frag.LeftScan); err == nil {
			rrows, rbytes, err = scan("scan-right", frag.RightScan)
		}
		if err != nil {
			// Free whatever was staged before the failure: without this a
			// fragment whose second scan fails fast pins the first side's
			// partition bytes on the gauge until process exit.
			addStaged(-(lbytes + rbytes))
			finish(fmt.Errorf("exchange: shipped scan: %w", err))
			return
		}
	}

	left := make(chan Batch, win)
	right := make(chan Batch, win)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		leftOpen, rightOpen := frag.LeftScan == nil, frag.RightScan == nil
		defer func() {
			if leftOpen {
				close(left)
			}
			if rightOpen {
				close(right)
			}
			resWin.close()
		}()
		for {
			typ, payload, err := readFrame(conn, maxFrame)
			if err != nil {
				return
			}
			switch typ {
			case frameLeft:
				b, err := decodeBatch(payload)
				if err != nil {
					return
				}
				left <- b
			case frameRight:
				b, err := decodeBatch(payload)
				if err != nil {
					return
				}
				right <- b
			case frameEndLeft:
				if leftOpen {
					close(left)
					leftOpen = false
				}
			case frameEndRight:
				if rightOpen {
					close(right)
					rightOpen = false
				}
			case frameCredit:
				if len(payload) == 1 && payload[0] == creditResult {
					resWin.release(1)
				}
			case frameCancel:
				// Coordinator abandoned the fragment: return so the deferred
				// closes tear down the input streams and the result window —
				// the join unwinds, staged partitions are freed, and the
				// final error frame tells the coordinator we are done.
				if w.Stats != nil {
					w.Stats.Cancelled.Add(1)
				}
				return
			}
		}
	}()

	// Pumps hand batches to the join and grant a credit per batch consumed.
	// A shipped side is fed from the prefetched store rows instead — no
	// wire traffic, no credits.
	leftOut := make(chan Batch)
	rightOut := make(chan Batch)
	pump := func(in <-chan Batch, out chan<- Batch, dir byte) {
		defer close(out)
		for b := range in {
			out <- b
			_ = send(frameCredit, []byte{dir})
		}
	}
	feed := func(rows []Batch, out chan<- Batch, bytes int64) {
		defer close(out)
		defer addStaged(-bytes)
		for i := range rows {
			b := rows[i]
			rows[i] = nil // drop the staged reference as each batch ships
			out <- b
		}
	}
	if frag.LeftScan != nil {
		go feed(lrows, leftOut, lbytes)
	} else {
		go pump(left, leftOut, creditLeft)
	}
	if frag.RightScan != nil {
		go feed(rrows, rightOut, rbytes)
	} else {
		go pump(right, rightOut, creditRight)
	}

	joinSpan := root.child("join", since())
	emit := func(b Batch) error {
		if !resWin.acquire() {
			return ErrWorkerDisconnected
		}
		off := since()
		if fs.FirstNanos == 0 {
			fs.FirstNanos = off
			joinSpan.FirstNanos = off
		}
		fs.LastNanos = off
		fs.Rows += int64(b.Len())
		fs.Batches++
		return send(frameResult, encodeBatch(b))
	}
	joinErr := w.Join(frag, leftOut, rightOut, emit)
	joinSpan.EndNanos = since()
	joinSpan.Attrs = map[string]string{
		"method": frag.Method,
		"rows":   strconv.FormatInt(fs.Rows, 10),
	}
	if fs.LastNanos == 0 {
		fs.LastNanos = joinSpan.EndNanos
	}
	// Unblock the pumps if the join bailed before exhausting its inputs.
	go drainBatches(leftOut)
	go drainBatches(rightOut)
	finish(joinErr)
	// Wait for the coordinator to close its side before closing ours: a
	// result credit can still be in flight for the last batch, and closing
	// with unread data pending makes TCP reset the connection — discarding
	// the final result/end/error frames from the coordinator's receive
	// buffer mid-frame. The coordinator always closes once it has read the
	// end (or failed), which surfaces here as the reader's EOF.
	<-readerDone
}
