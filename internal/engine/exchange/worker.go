package exchange

import (
	"encoding/json"
	"net"
	"sync"
)

// Worker serves join fragments over TCP: per connection it reads a Fragment,
// demultiplexes left/right input batches into channels, runs Join over them,
// and streams result batches back — all under per-direction credit windows
// so neither side buffers unboundedly.
type Worker struct {
	// Join runs one fragment; required.
	Join JoinFunc
	// Window is the per-direction credit window; 0 means DefaultWindow.
	Window int
	// MaxFrame bounds incoming frames; 0 means DefaultMaxFrame.
	MaxFrame uint32
}

func (w *Worker) window() int {
	if w.Window > 0 {
		return w.Window
	}
	return DefaultWindow
}

func (w *Worker) maxFrame() uint32 {
	if w.MaxFrame > 0 {
		return w.MaxFrame
	}
	return DefaultMaxFrame
}

// Serve accepts fragment connections until the listener closes, handling
// each on its own goroutine. It returns the listener's Accept error.
func (w *Worker) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// handle runs one fragment connection to completion.
//
// Deadlock-freedom: the reader goroutine delivers into channels whose buffer
// equals the credit window, and credits are granted only after the join
// takes a batch — so at most Window un-credited batches exist per direction
// and the reader never blocks on delivery. It therefore always stays
// responsive to result credits, whatever order the join consumes its inputs.
func (w *Worker) handle(conn net.Conn) {
	defer conn.Close()
	maxFrame := w.maxFrame()
	win := w.window()
	var wmu sync.Mutex
	send := func(typ byte, payload []byte) error {
		wmu.Lock()
		defer wmu.Unlock()
		return writeFrame(conn, typ, payload)
	}

	typ, payload, err := readFrame(conn, maxFrame)
	if err != nil || typ != frameFragment {
		return
	}
	var frag Fragment
	if err := json.Unmarshal(payload, &frag); err != nil {
		_ = send(frameError, []byte("exchange: bad fragment: "+err.Error()))
		return
	}

	left := make(chan Batch, win)
	right := make(chan Batch, win)
	resWin := newWindow(win)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		leftOpen, rightOpen := true, true
		defer func() {
			if leftOpen {
				close(left)
			}
			if rightOpen {
				close(right)
			}
			resWin.close()
		}()
		for {
			typ, payload, err := readFrame(conn, maxFrame)
			if err != nil {
				return
			}
			switch typ {
			case frameLeft:
				b, err := decodeBatch(payload)
				if err != nil {
					return
				}
				left <- b
			case frameRight:
				b, err := decodeBatch(payload)
				if err != nil {
					return
				}
				right <- b
			case frameEndLeft:
				if leftOpen {
					close(left)
					leftOpen = false
				}
			case frameEndRight:
				if rightOpen {
					close(right)
					rightOpen = false
				}
			case frameCredit:
				if len(payload) == 1 && payload[0] == creditResult {
					resWin.release(1)
				}
			}
		}
	}()

	// Pumps hand batches to the join and grant a credit per batch consumed.
	leftOut := make(chan Batch)
	rightOut := make(chan Batch)
	pump := func(in <-chan Batch, out chan<- Batch, dir byte) {
		defer close(out)
		for b := range in {
			out <- b
			_ = send(frameCredit, []byte{dir})
		}
	}
	go pump(left, leftOut, creditLeft)
	go pump(right, rightOut, creditRight)

	emit := func(b Batch) error {
		if !resWin.acquire() {
			return ErrWorkerDisconnected
		}
		return send(frameResult, encodeBatch(b))
	}
	joinErr := w.Join(frag, leftOut, rightOut, emit)
	// Unblock the pumps if the join bailed before exhausting its inputs.
	go drainBatches(leftOut)
	go drainBatches(rightOut)
	if joinErr != nil {
		_ = send(frameError, []byte(joinErr.Error()))
	} else {
		_ = send(frameEndResult, nil)
	}
	// Wait for the coordinator to close its side before closing ours: a
	// result credit can still be in flight for the last batch, and closing
	// with unread data pending makes TCP reset the connection — discarding
	// the final result/end/error frames from the coordinator's receive
	// buffer mid-frame. The coordinator always closes once it has read the
	// end (or failed), which surfaces here as the reader's EOF.
	<-readerDone
}
