package exchange

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"paropt/internal/vec"
)

// nowNanos is a monotonic nanosecond clock (durations are immune to wall
// clock adjustments).
var clockBase = time.Now()

func nowNanos() int64 { return int64(time.Since(clockBase)) }

// Wire format: length-prefixed frames
//
//	[u32 length][u8 type][payload (length-1 bytes)]
//
// The length covers the type byte plus the payload, so a frame is never
// empty. Batch payloads are [u32 rows][u32 width] followed by rows×width
// little-endian int64 values; fragment payloads are JSON; error payloads are
// UTF-8 messages; credit payloads are a single direction byte.
const (
	frameFragment  byte = 1 // coordinator → worker: JSON Fragment, first frame
	frameLeft      byte = 2 // coordinator → worker: left-input batch
	frameRight     byte = 3 // coordinator → worker: right-input batch
	frameEndLeft   byte = 4 // coordinator → worker: left input exhausted
	frameEndRight  byte = 5 // coordinator → worker: right input exhausted
	frameResult    byte = 6 // worker → coordinator: result batch
	frameEndResult byte = 7 // worker → coordinator: join finished cleanly
	frameError     byte = 8 // worker → coordinator: join failed, payload = message
	frameCredit    byte = 9 // either direction: window credit, payload = direction
	// frameStats is the observability frame: worker → coordinator, JSON
	// FragmentStats, sent once immediately before frameEndResult (or
	// frameError). Old coordinators ignore unknown frame types and old
	// workers never send it, so the frame is compatible in both directions.
	frameStats byte = 10
	// frameCancel is the cancellation frame: coordinator → worker, no
	// payload. The worker abandons the fragment — tears down its input
	// streams so the join unwinds — and frees any staged partitions. Old
	// workers ignore the unknown type (the coordinator also closes the
	// connection, which aborts them the pre-cancel way).
	frameCancel byte = 11
)

// Credit directions.
const (
	creditLeft   byte = 0 // worker consumed one left batch
	creditRight  byte = 1 // worker consumed one right batch
	creditResult byte = 2 // coordinator consumed one result batch
)

// DefaultMaxFrame bounds a single frame (16 MiB) — a corrupt or hostile
// length prefix fails fast instead of allocating unbounded memory.
const DefaultMaxFrame = 16 << 20

// DefaultWindow is the per-direction credit window: at most this many
// un-acknowledged batches in flight per link direction.
const DefaultWindow = 16

// ErrTruncatedFrame reports a frame cut short — a short read inside the
// length prefix or body, or a batch payload whose size disagrees with its
// header. Mid-stream it usually means the peer died.
var ErrTruncatedFrame = errors.New("exchange: truncated frame")

// ErrWorkerDisconnected reports a worker connection lost before the join
// finished.
var ErrWorkerDisconnected = errors.New("exchange: worker disconnected mid-stream")

// WorkerError attributes a transport failure to one worker link.
type WorkerError struct {
	Addr string
	Err  error
}

func (e *WorkerError) Error() string { return fmt.Sprintf("exchange: worker %s: %v", e.Addr, e.Err) }
func (e *WorkerError) Unwrap() error { return e.Err }

// writeFrame writes one frame. Callers serialize concurrent writers.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame. A clean EOF at a frame boundary returns io.EOF;
// a short read inside a frame returns ErrTruncatedFrame.
func readFrame(r io.Reader, maxFrame uint32) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame length %d out of range (max %d)", ErrTruncatedFrame, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrTruncatedFrame, err)
	}
	return body[0], body[1:], nil
}

// encodeBatch serializes a batch as [u32 rows][u32 width] + fixed-width
// little-endian values in row-major order — the tuple-batch frame layout —
// directly from the vector's columns, applying any selection as it goes (a
// filtered batch ships only its live rows).
func encodeBatch(b Batch) []byte {
	rows := b.Len()
	width := b.Width()
	out := make([]byte, 8+rows*width*8)
	binary.LittleEndian.PutUint32(out[0:4], uint32(rows))
	binary.LittleEndian.PutUint32(out[4:8], uint32(width))
	off := 8
	for i := 0; i < rows; i++ {
		r := i
		if b.Sel != nil {
			r = int(b.Sel[i])
		}
		for _, col := range b.Cols {
			binary.LittleEndian.PutUint64(out[off:], uint64(col[r]))
			off += 8
		}
	}
	return out
}

// decodeBatch parses an encoded batch into a dense columnar vector,
// tolerating truncation by reporting ErrTruncatedFrame rather than
// panicking. Column storage is one allocation for the whole batch.
func decodeBatch(p []byte) (Batch, error) {
	if len(p) < 8 {
		return nil, fmt.Errorf("%w: batch header %d bytes", ErrTruncatedFrame, len(p))
	}
	rows := int(binary.LittleEndian.Uint32(p[0:4]))
	width := int(binary.LittleEndian.Uint32(p[4:8]))
	if want := 8 + rows*width*8; len(p) != want {
		return nil, fmt.Errorf("%w: batch payload %d bytes, want %d", ErrTruncatedFrame, len(p), want)
	}
	backing := make([]int64, rows*width)
	b := &vec.Vec{Cols: make([][]int64, width)}
	for c := range b.Cols {
		b.Cols[c] = backing[c*rows : (c+1)*rows : (c+1)*rows]
	}
	off := 8
	for i := 0; i < rows; i++ {
		for c := 0; c < width; c++ {
			b.Cols[c][i] = int64(binary.LittleEndian.Uint64(p[off:]))
			off += 8
		}
	}
	return b, nil
}

// LinkStats counts traffic and backpressure on one coordinator↔worker link.
// The stall counters are the direct measurement of the paper's pipeline sync
// penalty δ(k): cumulative nanoseconds senders spent blocked on an empty
// credit window, per direction. StallLeft/StallRight are coordinator-side
// (waiting for the worker to credit an input batch); StallResult is
// worker-side (waiting for the coordinator to credit a result batch, shipped
// back in the FragmentStats frame). SendNanos is time spent inside frame
// writes — the observed wire time of the link's sent bytes.
type LinkStats struct {
	Addr        string
	BytesSent   atomic.Int64
	BytesRecv   atomic.Int64
	BatchesSent atomic.Int64
	BatchesRecv atomic.Int64
	StallLeft   atomic.Int64 // ns blocked sending left-input batches
	StallRight  atomic.Int64 // ns blocked sending right-input batches
	StallResult atomic.Int64 // ns the worker was blocked emitting results
	SendNanos   atomic.Int64 // ns inside frame writes (observed wire time)
}

// LinkSnapshot is a point-in-time copy of LinkStats.
type LinkSnapshot struct {
	Addr             string `json:"addr"`
	BytesSent        int64  `json:"bytes_sent"`
	BytesRecv        int64  `json:"bytes_recv"`
	BatchesSent      int64  `json:"batches_sent"`
	BatchesRecv      int64  `json:"batches_recv"`
	StallLeftNanos   int64  `json:"stall_left_nanos,omitempty"`
	StallRightNanos  int64  `json:"stall_right_nanos,omitempty"`
	StallResultNanos int64  `json:"stall_result_nanos,omitempty"`
	SendNanos        int64  `json:"send_nanos,omitempty"`
}

// Snapshot reads the counters atomically (individually, not as a group).
func (s *LinkStats) Snapshot() LinkSnapshot {
	return LinkSnapshot{
		Addr:             s.Addr,
		BytesSent:        s.BytesSent.Load(),
		BytesRecv:        s.BytesRecv.Load(),
		BatchesSent:      s.BatchesSent.Load(),
		BatchesRecv:      s.BatchesRecv.Load(),
		StallLeftNanos:   s.StallLeft.Load(),
		StallRightNanos:  s.StallRight.Load(),
		StallResultNanos: s.StallResult.Load(),
		SendNanos:        s.SendNanos.Load(),
	}
}

// window is a closable credit counter: senders acquire one credit per batch
// and block while the window is empty; the receiver's credits release them.
// Closing wakes all waiters with acquire() = false, aborting the stream.
// Every acquire that actually blocks accumulates its blocked duration into
// stall — the per-direction backpressure measurement exported on /metrics.
type window struct {
	mu     sync.Mutex
	cond   *sync.Cond
	avail  int
	closed bool
	stall  atomic.Int64 // cumulative ns acquirers spent blocked
}

func newWindow(n int) *window {
	w := &window{avail: n}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire takes one credit, blocking until one is available; it returns
// false when the window was closed. Time spent blocked is added to the
// window's cumulative stall counter — the fast path (credit available)
// never reads the clock.
func (w *window) acquire() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.avail == 0 && !w.closed {
		start := nowNanos()
		for w.avail == 0 && !w.closed {
			w.cond.Wait()
		}
		w.stall.Add(nowNanos() - start)
	}
	if w.closed {
		return false
	}
	w.avail--
	return true
}

// release returns credits to the window.
func (w *window) release(n int) {
	w.mu.Lock()
	w.avail += n
	w.mu.Unlock()
	w.cond.Broadcast()
}

// close aborts the window: all current and future acquires return false.
func (w *window) close() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
	w.cond.Broadcast()
}

// stallNanos reads the cumulative blocked time. Safe concurrently with
// acquirers (in-progress stalls are counted when they end).
func (w *window) stallNanos() int64 { return w.stall.Load() }

// depth reads the currently available credits — the instantaneous window
// depth for the direction this window guards.
func (w *window) depth() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.avail
}
