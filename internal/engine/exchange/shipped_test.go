package exchange

import (
	"errors"
	"reflect"
	"testing"

	"paropt/internal/storage"
	"paropt/internal/vec"
)

// memStore is a test Store: full relations held in memory, shards computed
// on demand with the same hash/partition functions the stream partitioner
// uses, so shipped and streamed runs agree row-for-row.
type memStore struct {
	rels map[string][]storage.Row
}

func (m *memStore) ScanPartition(spec ScanSpec, part, parts int) ([]storage.Row, error) {
	rows, ok := m.rels[spec.Relation]
	if !ok {
		return nil, errors.New("memStore: unknown relation " + spec.Relation)
	}
	var out []storage.Row
	for _, r := range rows {
		if Partition(r[spec.HashCol], parts) != part {
			continue
		}
		keep := true
		for _, f := range spec.Filters {
			if r[f.Col] != f.Val {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, nil
}

// shippedFrag is a fully-shipped two-relation hash-join fragment.
func shippedFrag(parts int) Fragment {
	return Fragment{
		Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: parts, BatchSize: 32,
		LeftScan:  &ScanSpec{Relation: "L", HashCol: 0},
		RightScan: &ScanSpec{Relation: "R", HashCol: 0},
	}
}

// collect merges a Join's output and returns rows + final error.
func collect(j Join) ([]storage.Row, error) {
	var rows []storage.Row
	for b := range j.Out() {
		rows = b.AppendRows(rows)
	}
	return rows, j.Err()
}

// TestShippedJoinMatchesStreamedAndCutsBytes: a fully-shipped fragment must
// produce exactly the streamed result while moving far less through the
// coordinator — the ISSUE's ≥50% byte cut, asserted at the transport layer.
func TestShippedJoinMatchesStreamedAndCutsBytes(t *testing.T) {
	lrows, rrows := rowsOf(5_000, 97), rowsOf(1_000, 97)
	store := &memStore{rels: map[string][]storage.Row{"L": lrows, "R": rrows}}
	lb, err := StartLoopbackWorkers([]*Worker{
		{Join: testHashJoin, Store: store},
		{Join: testHashJoin, Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	owners := map[string][]string{"L": lb.Addrs(), "R": lb.Addrs()}

	// Baseline: same workers, everything streamed from the coordinator.
	streamedCluster := lb.Cluster(ClusterConfig{})
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 32}
	streamedRows, err := runJoin(t, streamedCluster, frag, lrows, rrows)
	if err != nil {
		t.Fatalf("streamed: %v", err)
	}
	if len(streamedRows) == 0 {
		t.Fatal("streamed join produced no rows; fixture broken")
	}

	shippedCluster := lb.Cluster(ClusterConfig{Owners: owners})
	j, err := shippedCluster.Join(shippedFrag(2), nil, nil)
	if err != nil {
		t.Fatalf("shipped dispatch: %v", err)
	}
	shippedRows, err := collect(j)
	if err != nil {
		t.Fatalf("shipped: %v", err)
	}

	if !reflect.DeepEqual(multiset(streamedRows), multiset(shippedRows)) {
		t.Fatalf("shipped rows differ from streamed (%d vs %d rows)",
			len(shippedRows), len(streamedRows))
	}
	if got := shippedCluster.ShippedScans(); got != 4 {
		t.Errorf("ShippedScans = %d, want 4 (2 sides × 2 fragments)", got)
	}
	if got := shippedCluster.Retries(); got != 0 {
		t.Errorf("Retries = %d, want 0 on a healthy cluster", got)
	}

	sent := func(c *Cluster) int64 {
		var n int64
		for _, l := range c.Links() {
			n += l.BytesSent
		}
		return n
	}
	base, shipped := sent(streamedCluster), sent(shippedCluster)
	if shipped*2 > base {
		t.Errorf("coordinator sent %d bytes shipped vs %d streamed; want ≥50%% cut", shipped, base)
	}
}

// TestShippedRetryRedispatchesAndDiscardsStagedResults: the owner of
// partition 0 emits a poison batch and then dies mid-fragment. The
// coordinator must discard the staged partial output, re-dispatch the
// fragment to the surviving worker, and deliver exactly the healthy result.
func TestShippedRetryRedispatchesAndDiscardsStagedResults(t *testing.T) {
	lrows, rrows := rowsOf(2_000, 53), rowsOf(500, 53)
	store := &memStore{rels: map[string][]storage.Row{"L": lrows, "R": rrows}}
	poison := storage.Row{-1, -1, -1, -1}
	dying := func(frag Fragment, left, right <-chan Batch, emit func(Batch) error) error {
		_ = emit(vec.FromRows([]storage.Row{poison})) // partial output the coordinator must discard
		drainBatches(left)
		drainBatches(right)
		return errors.New("worker killed mid-fragment")
	}
	lb, err := StartLoopbackWorkers([]*Worker{
		{Join: dying, Store: store},
		{Join: testHashJoin, Store: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	addrs := lb.Addrs()

	cluster := lb.Cluster(ClusterConfig{
		Owners:       map[string][]string{"L": addrs, "R": addrs},
		Members:      func() ([]string, int64) { return addrs, 7 },
		RetryBackoff: 1, // keep the test fast
	})
	j, err := cluster.Join(shippedFrag(2), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collect(j)
	if err != nil {
		t.Fatalf("join with one dead owner must still complete: %v", err)
	}

	want, err := runJoin(t, &Local{Fn: testHashJoin},
		Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 32},
		lrows, rrows)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if reflect.DeepEqual(r, poison) {
			t.Fatal("staged partial batch from the dead worker leaked into the result")
		}
	}
	if !reflect.DeepEqual(multiset(want), multiset(got)) {
		t.Fatalf("re-dispatched join rows differ (%d vs %d rows)", len(got), len(want))
	}
	if cluster.Retries() < 1 {
		t.Errorf("Retries = %d, want ≥1", cluster.Retries())
	}
	if cluster.Fallbacks() != 0 {
		t.Errorf("Fallbacks = %d, want 0 (a live replica existed)", cluster.Fallbacks())
	}
}

// TestShippedFallbackToCoordinator: when every worker dispatch fails, the
// coordinator sources the partitions from its own store and runs the join
// in-process instead of failing the query.
func TestShippedFallbackToCoordinator(t *testing.T) {
	lrows, rrows := rowsOf(1_000, 31), rowsOf(300, 31)
	store := &memStore{rels: map[string][]storage.Row{"L": lrows, "R": rrows}}
	boom := func(frag Fragment, left, right <-chan Batch, emit func(Batch) error) error {
		drainBatches(left)
		drainBatches(right)
		return errors.New("no capacity")
	}
	lb, err := StartLoopbackWorkers([]*Worker{{Join: boom, Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	addrs := lb.Addrs()

	cluster := lb.Cluster(ClusterConfig{
		Owners:       map[string][]string{"L": addrs, "R": addrs},
		Members:      func() ([]string, int64) { return addrs, 1 },
		RetryBackoff: 1,
		Store:        store,
		Fn:           testHashJoin,
	})
	j, err := cluster.Join(shippedFrag(2), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collect(j)
	if err != nil {
		t.Fatalf("coordinator fallback must complete the join: %v", err)
	}
	want, err := runJoin(t, &Local{Fn: testHashJoin},
		Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 32},
		lrows, rrows)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(multiset(want), multiset(got)) {
		t.Fatalf("fallback rows differ (%d vs %d rows)", len(got), len(want))
	}
	if cluster.Fallbacks() < 1 {
		t.Errorf("Fallbacks = %d, want ≥1", cluster.Fallbacks())
	}
	// The fallback carries a typed reason (a worker-side join error, not a
	// death or an unreachable host) and synthesizes observable stats.
	reasons := cluster.FallbackReasons()
	if reasons["worker_error"] < 1 {
		t.Errorf("FallbackReasons = %v, want worker_error ≥ 1", reasons)
	}
	sr, ok := j.(StatsReporter)
	if !ok {
		t.Fatalf("shipped join %T does not implement StatsReporter", j)
	}
	sawFallback := false
	for _, fs := range sr.FragmentStats() {
		if fs.FallbackReason != "" {
			sawFallback = true
			if fs.Worker != "coordinator" {
				t.Errorf("fallback stats Worker = %q, want coordinator", fs.Worker)
			}
			if fs.Span == nil || fs.Span.Name != "fragment" {
				t.Errorf("fallback stats missing fragment span: %+v", fs.Span)
			}
		}
	}
	if !sawFallback {
		t.Error("no FragmentStats carried a fallback reason")
	}
}

// TestShippedNoFallbackWithoutStore: every replica dead and no coordinator
// store configured → the typed worker error must surface, not a hang.
func TestShippedNoFallbackWithoutStore(t *testing.T) {
	store := &memStore{rels: map[string][]storage.Row{
		"L": rowsOf(100, 7), "R": rowsOf(100, 7),
	}}
	boom := func(frag Fragment, left, right <-chan Batch, emit func(Batch) error) error {
		drainBatches(left)
		drainBatches(right)
		return errors.New("down")
	}
	lb, err := StartLoopbackWorkers([]*Worker{{Join: boom, Store: store}})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	addrs := lb.Addrs()
	cluster := lb.Cluster(ClusterConfig{
		Owners:       map[string][]string{"L": addrs, "R": addrs},
		RetryBackoff: 1,
	})
	j, err := cluster.Join(shippedFrag(1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collect(j); err == nil {
		t.Fatal("expected the worker failure to surface without a fallback store")
	} else {
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("err = %v (%T), want *WorkerError", err, err)
		}
	}
	if cluster.Fallbacks() != 0 {
		t.Errorf("Fallbacks = %d, want 0 without Store/Fn", cluster.Fallbacks())
	}
}
