package exchange

import (
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterCollectsFragmentStats: a streamed cluster join must come back
// with one FragmentStats per partition, carrying the propagated trace ID,
// the worker's identity and measurements, and a span tree whose stable names
// the coordinator-side trace merge relies on.
func TestClusterCollectsFragmentStats(t *testing.T) {
	lb, err := StartLoopbackWorkers([]*Worker{
		{Join: testHashJoin, ID: "w0"},
		{Join: testHashJoin, ID: "w1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	cluster := lb.Cluster(ClusterConfig{Window: 4, TraceID: "trace-42"})
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 4, BatchSize: 32}
	rows, err := runJoin(t, cluster, frag, rowsOf(2_000, 97), rowsOf(500, 97))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("join produced no rows; fixture is broken")
	}

	j, err := cluster.Join(frag, streamOf(rowsOf(10, 3), 32), streamOf(rowsOf(10, 3), 32))
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := j.(StatsReporter)
	if !ok {
		t.Fatalf("cluster join %T does not implement StatsReporter", j)
	}
	drainBatches(j.Out())
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	fstats := sr.FragmentStats()
	if len(fstats) != frag.Parts {
		t.Fatalf("FragmentStats = %d entries, want %d", len(fstats), frag.Parts)
	}
	var totalRows int64
	for _, fs := range fstats {
		if fs.TraceID != "trace-42" {
			t.Errorf("part %d: TraceID = %q, want trace-42", fs.Part, fs.TraceID)
		}
		if fs.Worker != "w0" && fs.Worker != "w1" {
			t.Errorf("part %d: Worker = %q, want w0 or w1", fs.Part, fs.Worker)
		}
		if fs.Addr == "" {
			t.Errorf("part %d: Addr not stamped on receipt", fs.Part)
		}
		if fs.Dispatched.IsZero() {
			t.Errorf("part %d: Dispatched not stamped", fs.Part)
		}
		if fs.Span == nil || fs.Span.Name != "fragment" {
			t.Fatalf("part %d: missing fragment root span: %+v", fs.Part, fs.Span)
		}
		if fs.Span.EndNanos <= 0 {
			t.Errorf("part %d: root span never ended", fs.Part)
		}
		var join *RemoteSpan
		for _, c := range fs.Span.Children {
			if c.Name == "join" {
				join = c
			}
		}
		if join == nil {
			t.Fatalf("part %d: no join child span", fs.Part)
		}
		if fs.Rows > 0 {
			if fs.FirstNanos <= 0 || fs.LastNanos < fs.FirstNanos {
				t.Errorf("part %d: (tf, tl) = (%d, %d) out of order", fs.Part, fs.FirstNanos, fs.LastNanos)
			}
			if join.FirstNanos != fs.FirstNanos {
				t.Errorf("part %d: join span tf %d != fragment tf %d", fs.Part, join.FirstNanos, fs.FirstNanos)
			}
		}
		totalRows += fs.Rows
	}
	// 10 rows per side over 3 keys: per-key cross product = 4+3·9... just
	// compare against what the coordinator actually received.
	var got []Batch
	j2, err := cluster.Join(frag, streamOf(rowsOf(10, 3), 32), streamOf(rowsOf(10, 3), 32))
	if err != nil {
		t.Fatal(err)
	}
	for b := range j2.Out() {
		got = append(got, b)
	}
	var wantRows int64
	for _, b := range got {
		wantRows += int64(b.Len())
	}
	if totalRows != wantRows {
		t.Errorf("workers reported %d rows, coordinator received %d", totalRows, wantRows)
	}
}

// TestFragmentTraceIDRoundTrip pins the wire form: the trace ID survives the
// fragment codec, and a fragment written by a coordinator that predates the
// field (no trace_id key) decodes with an empty TraceID instead of failing.
func TestFragmentTraceIDRoundTrip(t *testing.T) {
	in := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{1}, Parts: 2, TraceID: "abc-1"}
	payload, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Fragment
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID != "abc-1" {
		t.Errorf("TraceID = %q after round trip, want abc-1", out.TraceID)
	}
	var old Fragment
	if err := json.Unmarshal([]byte(`{"method":"hash","parts":2,"batch_size":16}`), &old); err != nil {
		t.Fatalf("old-coordinator fragment failed to decode: %v", err)
	}
	if old.TraceID != "" {
		t.Errorf("old fragment decoded with TraceID %q, want empty", old.TraceID)
	}
}

// TestWorkerServesOldCoordinatorFrames drives a worker over a raw connection
// the way a pre-observability coordinator would: a fragment frame without
// trace fields, immediate end-of-input frames, no stats awareness. The
// worker must execute the (empty) join, ship a stats frame the old
// coordinator would skip, and still terminate the stream with frameEndResult.
func TestWorkerServesOldCoordinatorFrames(t *testing.T) {
	lb, err := StartLoopback(1, testHashJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	conn, err := net.Dial("tcp", lb.Addrs()[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	frag := []byte(`{"method":"hash","lkeys":[0],"rkeys":[0],"part":0,"parts":1,"batch_size":16}`)
	for _, f := range []struct {
		typ     byte
		payload []byte
	}{{frameFragment, frag}, {frameEndLeft, nil}, {frameEndRight, nil}} {
		if err := writeFrame(conn, f.typ, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	sawStats := false
	for {
		typ, payload, err := readFrame(conn, DefaultMaxFrame)
		if err != nil {
			t.Fatalf("stream ended before frameEndResult: %v", err)
		}
		switch typ {
		case frameStats:
			sawStats = true
			var fs FragmentStats
			if err := json.Unmarshal(payload, &fs); err != nil {
				t.Fatalf("bad stats payload: %v", err)
			}
			if fs.TraceID != "" {
				t.Errorf("stats TraceID = %q for a fragment without one", fs.TraceID)
			}
		case frameError:
			t.Fatalf("worker failed the fragment: %s", payload)
		case frameEndResult:
			if !sawStats {
				t.Error("no stats frame before frameEndResult")
			}
			return
		}
	}
}

// TestWindowStallMonotonic: the stall counter only ever grows, is safe under
// concurrent acquire/release, and actually accumulates when the window runs
// dry — the property the per-link stall metric depends on.
func TestWindowStallMonotonic(t *testing.T) {
	w := newWindow(1)
	const rounds = 200
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // sampler: stallNanos must never decrease
		defer wg.Done()
		var last int64
		for !stop.Load() {
			if s := w.stallNanos(); s < last {
				t.Errorf("stall went backwards: %d -> %d", last, s)
				return
			} else {
				last = s
			}
		}
	}()
	wg.Add(1)
	go func() { // releaser: trickle credits so the acquirer keeps blocking
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			time.Sleep(100 * time.Microsecond)
			w.release(1)
		}
	}()
	for i := 0; i < rounds+1; i++ { // +1: the initial credit from newWindow(1)
		if !w.acquire() {
			t.Fatal("window closed unexpectedly")
		}
	}
	stop.Store(true)
	wg.Wait()
	if w.stallNanos() <= 0 {
		t.Error("acquirer outpaced a trickling releaser but recorded no stall")
	}
	if d := w.depth(); d != 0 {
		t.Errorf("depth = %d after balanced acquire/release, want 0", d)
	}
}
