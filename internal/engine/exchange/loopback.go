package exchange

import "net"

// Loopback is an in-process cluster harness for tests and smoke runs: n
// Workers listening on ephemeral localhost ports inside the current process,
// exercising the whole TCP path without real hosts.
type Loopback struct {
	lns   []net.Listener
	addrs []string
}

// StartLoopback launches n workers on 127.0.0.1 ephemeral ports, all running
// the given join function.
func StartLoopback(n int, join JoinFunc) (*Loopback, error) {
	workers := make([]*Worker, n)
	for i := range workers {
		workers[i] = &Worker{Join: join}
	}
	return StartLoopbackWorkers(workers)
}

// StartLoopbackWorkers launches the given pre-configured workers (each with
// its own Join/Store, e.g. per-worker fault injection or placement stores)
// on 127.0.0.1 ephemeral ports, in order — Addrs()[i] serves workers[i].
func StartLoopbackWorkers(workers []*Worker) (*Loopback, error) {
	lb := &Loopback{}
	for _, w := range workers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			lb.Close()
			return nil, err
		}
		go func(w *Worker, ln net.Listener) { _ = w.Serve(ln) }(w, ln)
		lb.lns = append(lb.lns, ln)
		lb.addrs = append(lb.addrs, ln.Addr().String())
	}
	return lb, nil
}

// Addrs returns the workers' listen addresses.
func (l *Loopback) Addrs() []string { return l.addrs }

// Cluster builds a transport over the loopback workers.
func (l *Loopback) Cluster(cfg ClusterConfig) *Cluster { return NewCluster(l.addrs, cfg) }

// Close shuts the listeners down. In-flight fragment connections finish on
// their own; new dials fail.
func (l *Loopback) Close() error {
	var first error
	for _, ln := range l.lns {
		if err := ln.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
