package exchange

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"paropt/internal/storage"
	"paropt/internal/vec"
)

// testHashJoin is a minimal JoinFunc for transport tests: hash join on the
// first key pair, concatenating matching rows.
func testHashJoin(frag Fragment, left, right <-chan Batch, emit func(Batch) error) error {
	build := map[int64][]storage.Row{}
	for b := range right {
		for _, r := range b.AppendRows(nil) {
			build[r[frag.RKeys[0]]] = append(build[r[frag.RKeys[0]]], r)
		}
	}
	bs := frag.BatchSize
	if bs <= 0 {
		bs = 256
	}
	var out []storage.Row
	for b := range left {
		for _, l := range b.AppendRows(nil) {
			for _, r := range build[l[frag.LKeys[0]]] {
				row := make(storage.Row, 0, len(l)+len(r))
				row = append(append(row, l...), r...)
				out = append(out, row)
				if len(out) == bs {
					if err := emit(vec.FromRows(out)); err != nil {
						drainBatches(left)
						return err
					}
					out = nil
				}
			}
		}
	}
	if len(out) > 0 {
		return emit(vec.FromRows(out))
	}
	return nil
}

// multiset canonicalizes a row multiset for comparison.
func multiset(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

// runJoin drives a transport end to end and returns the merged rows.
func runJoin(t *testing.T, tr Transport, frag Fragment, lrows, rrows []storage.Row) ([]storage.Row, error) {
	t.Helper()
	j, err := tr.Join(frag, streamOf(lrows, frag.BatchSize), streamOf(rrows, frag.BatchSize))
	if err != nil {
		return nil, err
	}
	var rows []storage.Row
	for b := range j.Out() {
		rows = b.AppendRows(rows)
	}
	return rows, j.Err()
}

func TestLoopbackClusterMatchesLocal(t *testing.T) {
	lb, err := StartLoopback(2, testHashJoin)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()

	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 4, BatchSize: 32}
	lrows := rowsOf(5_000, 97)
	rrows := rowsOf(1_000, 97)

	localRows, err := runJoin(t, &Local{Fn: testHashJoin}, frag, lrows, rrows)
	if err != nil {
		t.Fatalf("local: %v", err)
	}
	cluster := lb.Cluster(ClusterConfig{Window: 4})
	clusterRows, err := runJoin(t, cluster, frag, lrows, rrows)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if len(localRows) == 0 {
		t.Fatal("join produced no rows; fixture is broken")
	}
	lm, cm := multiset(localRows), multiset(clusterRows)
	if len(lm) != len(cm) {
		t.Fatalf("row counts differ: local %d, cluster %d", len(lm), len(cm))
	}
	for i := range lm {
		if lm[i] != cm[i] {
			t.Fatalf("row %d differs: %s vs %s", i, lm[i], cm[i])
		}
	}

	if got := cluster.Fragments(); got != 4 {
		t.Errorf("Fragments = %d, want 4", got)
	}
	links := cluster.Links()
	if len(links) != 2 {
		t.Fatalf("links = %d, want 2", len(links))
	}
	for _, l := range links {
		if l.BytesSent == 0 || l.BytesRecv == 0 || l.BatchesSent == 0 || l.BatchesRecv == 0 {
			t.Errorf("link %s has zero counters: %+v", l.Addr, l)
		}
	}
}

// TestWorkerDisconnectMidStream: a worker that dies mid-join must surface as
// a typed *WorkerError wrapping ErrWorkerDisconnected — and the inputs must
// still drain so upstream producers never hang.
func TestWorkerDisconnectMidStream(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// A fake worker: accept, read the fragment frame, die.
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				_, _, _ = readFrame(conn, DefaultMaxFrame)
				conn.Close()
			}(conn)
		}
	}()

	cluster := NewCluster([]string{ln.Addr().String()}, ClusterConfig{Window: 2})
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 16}
	// Far more input than the send windows hold: only error teardown lets
	// the partitioners drain it, so completion itself proves no hang.
	done := make(chan error, 1)
	go func() {
		_, err := runJoin(t, cluster, frag, rowsOf(50_000, 1_000), rowsOf(50_000, 1_000))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the dead worker")
		}
		var we *WorkerError
		if !errors.As(err, &we) {
			t.Fatalf("err = %v (%T), want *WorkerError", err, err)
		}
		if !errors.Is(err, ErrWorkerDisconnected) {
			t.Errorf("err = %v, want to wrap ErrWorkerDisconnected", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("join hung after worker disconnect")
	}
}

// TestWorkerJoinErrorPropagates: a join function failing on the worker
// reaches the coordinator as a WorkerError carrying the message.
func TestWorkerJoinErrorPropagates(t *testing.T) {
	boom := func(frag Fragment, left, right <-chan Batch, emit func(Batch) error) error {
		drainBatches(left)
		drainBatches(right)
		return errors.New("synthetic fragment failure")
	}
	lb, err := StartLoopback(1, boom)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 16}
	_, err = runJoin(t, lb.Cluster(ClusterConfig{}), frag, rowsOf(100, 10), rowsOf(100, 10))
	var we *WorkerError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v (%T), want *WorkerError", err, err)
	}
	if we.Err.Error() != "synthetic fragment failure" {
		t.Errorf("message = %q, want the worker's error text", we.Err)
	}
}

// TestClusterNoWorkers: joining on an empty cluster fails fast and still
// drains the inputs.
func TestClusterNoWorkers(t *testing.T) {
	cluster := NewCluster(nil, ClusterConfig{})
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 2, BatchSize: 16}
	in := streamOf(rowsOf(1_000, 10), 16)
	if _, err := cluster.Join(frag, in, streamOf(nil, 16)); err == nil {
		t.Fatal("expected an error from an empty cluster")
	}
	// The input must end up drained even though the join never started.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("inputs not drained after failed dispatch")
		}
	}
}

// TestLocalTransportSmallBatches exercises partition flush boundaries.
func TestLocalTransportSmallBatches(t *testing.T) {
	frag := Fragment{Method: "hash", LKeys: []int{0}, RKeys: []int{0}, Parts: 3, BatchSize: 1}
	rows, err := runJoin(t, &Local{Fn: testHashJoin}, frag, rowsOf(50, 7), rowsOf(50, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Each key 0..6 appears ⌈50/7⌉ or ⌊50/7⌋ times per side; the join is a
	// per-key cross product.
	want := 0
	per := map[int64]int{}
	for i := 0; i < 50; i++ {
		per[int64(i)%7]++
	}
	for _, n := range per {
		want += n * n
	}
	if len(rows) != want {
		t.Errorf("rows = %d, want %d", len(rows), want)
	}
}
